// Reproduces paper Figure 8: throughput of the four protocols with five
// replicas on a "local cluster" (here: five replica threads in one process
// with real message serialization and in-memory logging, matching the
// paper's memory-logging setup) for small (10B), medium (100B) and large
// (1000B) commands.
//
// Expected shape (paper Section VI-D): Clock-RSM and Mencius-bcast are
// similar at all sizes (same communication pattern); Paxos/Paxos-bcast are
// ahead for small/medium commands thanks to leader-side batching, but the
// leader becomes the bottleneck for large commands; Paxos edges Paxos-bcast
// (lower message complexity).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "runtime/throughput.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  // Saturating closed-loop runtime measurement; --seed accepted for
  // interface uniformity (clients send fixed-size puts, nothing random).
  const BenchArgs args = parse_bench_args(argc, argv);
  JsonResult jr("fig8_throughput");
  if (!args.json) {
    std::printf("Figure 8: throughput (kops/s), five replicas, in-process "
                "cluster, memory logging\n\n");
  }

  struct Proto {
    const char* label;
    RtCluster::ProtocolFactory factory;
  };
  const std::size_t n = 5;
  const std::vector<Proto> protos = {
      {"Clock-RSM", clock_rsm_factory(n)},
      {"Mencius-bcast", mencius_factory(n)},
      {"Paxos", paxos_factory(n, 0, false)},
      {"Paxos-bcast", paxos_factory(n, 0, true)},
  };

  // "cluster kops/s" divides committed ops by the busiest replica's CPU
  // time: the throughput an N-machine cluster would sustain. On a host with
  // >= N cores it matches the raw measurement; on smaller hosts it is the
  // number to compare against the paper, because Figure 8's story is about
  // which replica saturates first (the Paxos leader vs. everyone evenly).
  Table t({"protocol", "10B cluster kops/s", "100B cluster kops/s",
           "1000B cluster kops/s", "1000B max CPU share", "raw 1000B kops/s"});
  struct WireRow {
    const char* label;
    ThroughputResult r;  // 100B run
  };
  std::vector<WireRow> wire_rows;
  for (const Proto& p : protos) {
    std::vector<std::string> row = {p.label};
    double last_share = 0.0, last_raw = 0.0;
    for (const std::size_t size : {std::size_t{10}, std::size_t{100},
                                   std::size_t{1000}}) {
      ThroughputOptions opt;
      opt.num_replicas = n;
      opt.clients_per_replica = 32;
      opt.payload_bytes = size;
      opt.warmup_s = 0.5;
      opt.duration_s = 2.0;
      const ThroughputResult r = run_throughput(opt, p.factory);
      jr.add(metric_key(p.label) + "_" + std::to_string(size) + "b_kops",
             r.kops_per_sec_bottleneck);
      row.push_back(fmt_count(r.kops_per_sec_bottleneck));
      if (size == 100) wire_rows.push_back({p.label, r});
      last_share = r.max_cpu_share;
      last_raw = r.kops_per_sec;
    }
    row.push_back(fmt_pct(last_share));
    row.push_back(fmt_count(last_raw));
    t.add_row(std::move(row));
  }
  for (const WireRow& w : wire_rows) {
    jr.add(metric_key(w.label) + "_msgs_per_cmd", w.r.msgs_per_cmd);
    jr.add(metric_key(w.label) + "_bytes_per_cmd", w.r.bytes_per_cmd);
    jr.add(metric_key(w.label) + "_encodes_per_cmd", w.r.encodes_per_cmd);
    jr.add(metric_key(w.label) + "_flushes_per_cmd", w.r.flushes_per_cmd);
    jr.add(metric_key(w.label) + "_frames_per_flush", w.r.frames_per_flush);
  }
  if (args.json) {
    jr.print(std::cout);
    return 0;
  }
  t.print(std::cout);

  // Wire-pipeline counters (100B commands). With the encode-once fan-out
  // pipeline, encodes/cmd is ~msgs/cmd divided by the broadcast fan-out;
  // flushes/cmd counts queue handoffs (== msgs/cmd here: this figure runs
  // unbatched; the fig10 sweep shows coalescing pull it below msgs/cmd).
  std::printf("\nWire counters per committed command (100B):\n");
  for (const WireRow& w : wire_rows) {
    std::printf("  %-14s msgs/cmd %6.2f   flushes/cmd %6.2f   bytes/cmd %8.1f"
                "   encodes/cmd %6.2f\n",
                w.label, w.r.msgs_per_cmd, w.r.flushes_per_cmd,
                w.r.bytes_per_cmd, w.r.encodes_per_cmd);
  }

  std::printf("\nPaper shape to check: Clock-RSM ~ Mencius-bcast at all "
              "sizes; the Paxos leader\nconcentrates CPU (max share >> 20%%) "
              "and becomes the bottleneck for 1000B\ncommands, where the "
              "multi-leader protocols win.\n");
  return 0;
}
