// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "util/topology.h"

namespace crsm::bench {

// The paper's workload (Section VI-B): 40 clients per active replica, 64 B
// update commands, think time U(0, 80) ms, CLOCKTIME extension with
// delta = 5 ms, NTP-grade clocks.
inline LatencyExperimentOptions paper_options(LatencyMatrix m,
                                              std::uint64_t seed = 42) {
  LatencyExperimentOptions o;
  o.matrix = std::move(m);
  o.workload.clients_per_replica = 40;
  o.workload.think_min_ms = 0.0;
  o.workload.think_max_ms = 80.0;
  o.workload.payload_bytes = 64;
  o.seed = seed;
  o.warmup_s = 2.0;
  o.duration_s = 20.0;
  o.clock_skew_ms = 2.0;
  o.jitter_ms = 0.5;
  return o;
}

struct ProtocolRun {
  std::string label;
  LatencyExperimentResult result;
};

// Runs the four protocols of the paper on one scenario. `leader` applies to
// Paxos and Paxos-bcast.
inline std::vector<ProtocolRun> run_four_protocols(
    const LatencyExperimentOptions& opt, ReplicaId leader) {
  const std::size_t n = opt.matrix.size();
  std::vector<ProtocolRun> runs;
  runs.push_back({"Paxos", run_latency_experiment(
                               opt, paxos_factory(n, leader, false))});
  runs.push_back({"Mencius-bcast",
                  run_latency_experiment(opt, mencius_factory(n))});
  runs.push_back({"Paxos-bcast", run_latency_experiment(
                                     opt, paxos_factory(n, leader, true))});
  runs.push_back({"Clock-RSM",
                  run_latency_experiment(opt, clock_rsm_factory(n))});
  return runs;
}

// Prints the per-replica average and 95th-percentile table that the paper's
// bar figures (1, 2 and 5) report.
inline void print_latency_figure(const std::vector<ProtocolRun>& runs,
                                 const std::vector<std::size_t>& sites,
                                 ReplicaId leader) {
  std::vector<std::string> headers = {"protocol"};
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::string site = ec2_site_name(sites[i]);
    if (static_cast<ReplicaId>(i) == leader) site += " (L)";
    headers.push_back(site + " avg");
    headers.push_back(site + " p95");
  }
  Table t(headers);
  for (const ProtocolRun& run : runs) {
    std::vector<std::string> row = {run.label};
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const LatencyStats& s = run.result.per_replica[i];
      row.push_back(s.empty() ? "-" : fmt_ms(s.mean()));
      row.push_back(s.empty() ? "-" : fmt_ms(s.percentile(95)));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace crsm::bench
