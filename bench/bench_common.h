// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "runtime/throughput.h"
#include "util/topology.h"

namespace crsm::bench {

// The CLI contract every bench binary shares (micro_* excepted: those are
// google-benchmark binaries and follow its --benchmark_* conventions):
//   --seed N            re-seeds the workload/jitter RNG (default 42)
//   --json              print one flat JSON object on stdout instead of tables
//   --stage-breakdown   benches with a TCP-runtime component (fig10, fig11)
//                       additionally trace the commit pipeline and report
//                       per-stage p50/p99 (queue/broadcast/wal/ack/
//                       stability/execute/reply); ignored elsewhere
struct BenchArgs {
  std::uint64_t seed = 42;
  bool json = false;
  bool stage_breakdown = false;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--seed" && i + 1 < argc) {
      char* end = nullptr;
      const char* raw = argv[++i];
      args.seed = std::strtoull(raw, &end, 10);
      if (end == raw || *end != '\0') {
        std::fprintf(stderr, "bad --seed '%s' (want an integer)\n", raw);
        std::exit(2);
      }
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--stage-breakdown") {
      args.stage_breakdown = true;
    } else if (flag == "--help" || flag == "-h") {
      std::printf("usage: %s [--seed N] [--json] [--stage-breakdown]\n",
                  argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      std::exit(2);
    }
  }
  return args;
}

// Accumulates key results and prints them as one flat JSON object — the
// entire stdout of a bench binary run with --json, so results are
// machine-scrapeable across the whole suite.
class JsonResult {
 public:
  explicit JsonResult(const std::string& bench) { add("bench", bench); }

  JsonResult& add(const std::string& key, const std::string& v) {
    std::string escaped;
    for (char c : v) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    fields_.push_back("\"" + key + "\": \"" + escaped + "\"");
    return *this;
  }
  JsonResult& add(const std::string& key, const char* v) {
    return add(key, std::string(v));
  }
  JsonResult& add(const std::string& key, double v) {
    std::ostringstream os;
    os << v;
    fields_.push_back("\"" + key + "\": " + os.str());
    return *this;
  }
  JsonResult& add(const std::string& key, std::uint64_t v) {
    fields_.push_back("\"" + key + "\": " + std::to_string(v));
    return *this;
  }

  void print(std::ostream& os) const {
    os << "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      os << (i ? ", " : "") << fields_[i];
    }
    os << "}\n";
  }

 private:
  std::vector<std::string> fields_;
};

// The shared tail of every bench main: one JSON object in --json mode,
// the human-readable table otherwise.
inline void print_result(const BenchArgs& args, const JsonResult& jr,
                         const Table& t) {
  if (args.json) {
    jr.print(std::cout);
  } else {
    t.print(std::cout);
  }
}

// The batching-efficiency columns, reported identically by every
// throughput bench: protocol-level batching as cmds/PREPARE (client write
// commands per protocol submission, from the runtime's batch accounting)
// and wire coalescing as frames/flush (frames per kernel handoff, from
// TransportStats wire_flushes). One source of truth for both ratios —
// ablation_batching used to derive its own batches/cmd figure that
// disagreed with the transport's wire_flushes accounting.
inline void add_batching_columns(JsonResult& jr, const std::string& prefix,
                                 const ThroughputResult& r) {
  jr.add(prefix + "cmds_per_prepare", r.cmds_per_prepare);
  jr.add(prefix + "frames_per_flush", r.frames_per_flush);
}

// Emits a TCP-runtime commit-pipeline stage breakdown (--stage-breakdown)
// as `<prefix>stage_<name>_{p50,p99}_us` JSON fields and, when `t` is
// given, one table row per stage.
inline void add_stage_breakdown(JsonResult& jr, const std::string& prefix,
                                const std::vector<StageLatency>& stages,
                                Table* t = nullptr,
                                const std::string& row_label = "") {
  for (const StageLatency& s : stages) {
    jr.add(prefix + "stage_" + s.stage + "_p50_us", s.p50_us);
    jr.add(prefix + "stage_" + s.stage + "_p99_us", s.p99_us);
    if (t != nullptr) {
      t->add_row({row_label, s.stage, std::to_string(s.count),
                  fmt_count(s.p50_us, 1), fmt_count(s.p99_us, 1)});
    }
  }
}

// JSON-friendly metric key: lowercase, [a-z0-9_] only ("Paxos-bcast" ->
// "paxos_bcast").
inline std::string metric_key(const std::string& label) {
  std::string key;
  for (char c : label) {
    if (c >= 'A' && c <= 'Z') {
      key.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      key.push_back(c);
    } else if (!key.empty() && key.back() != '_') {
      key.push_back('_');
    }
  }
  return key;
}

// The paper's workload (Section VI-B): 40 clients per active replica, 64 B
// update commands, think time U(0, 80) ms, CLOCKTIME extension with
// delta = 5 ms, NTP-grade clocks.
inline LatencyExperimentOptions paper_options(LatencyMatrix m,
                                              std::uint64_t seed = 42) {
  LatencyExperimentOptions o;
  o.matrix = std::move(m);
  o.workload.clients_per_replica = 40;
  o.workload.think_min_ms = 0.0;
  o.workload.think_max_ms = 80.0;
  o.workload.payload_bytes = 64;
  o.seed = seed;
  o.warmup_s = 2.0;
  o.duration_s = 20.0;
  o.clock_skew_ms = 2.0;
  o.jitter_ms = 0.5;
  return o;
}

struct ProtocolRun {
  std::string label;
  LatencyExperimentResult result;
};

// Runs the four protocols of the paper on one scenario. `leader` applies to
// Paxos and Paxos-bcast.
inline std::vector<ProtocolRun> run_four_protocols(
    const LatencyExperimentOptions& opt, ReplicaId leader) {
  const std::size_t n = opt.matrix.size();
  std::vector<ProtocolRun> runs;
  runs.push_back({"Paxos", run_latency_experiment(
                               opt, paxos_factory(n, leader, false))});
  runs.push_back({"Mencius-bcast",
                  run_latency_experiment(opt, mencius_factory(n))});
  runs.push_back({"Paxos-bcast", run_latency_experiment(
                                     opt, paxos_factory(n, leader, true))});
  runs.push_back({"Clock-RSM",
                  run_latency_experiment(opt, clock_rsm_factory(n))});
  return runs;
}

// The shared summary tail of the CDF figures (3, 4 and 6): per-protocol
// p50/p95 at the featured replica, as JSON or as the min/p50/p95/max table
// mirroring the paper's reading of each figure.
inline void print_cdf_summary(const BenchArgs& args, const char* bench_name,
                              const std::vector<ProtocolRun>& runs,
                              std::size_t replica) {
  JsonResult jr(bench_name);
  jr.add("seed", args.seed);
  Table t({"protocol", "min", "p50", "p95", "max"});
  for (const ProtocolRun& run : runs) {
    const LatencyStats& s = run.result.per_replica[replica];
    jr.add(metric_key(run.label) + "_p50_ms", s.percentile(50));
    jr.add(metric_key(run.label) + "_p95_ms", s.percentile(95));
    t.add_row({run.label, fmt_ms(s.min()), fmt_ms(s.percentile(50)),
               fmt_ms(s.percentile(95)), fmt_ms(s.max())});
  }
  print_result(args, jr, t);
}

// Prints the per-replica average and 95th-percentile table that the paper's
// bar figures (1, 2 and 5) report.
inline void print_latency_figure(const std::vector<ProtocolRun>& runs,
                                 const std::vector<std::size_t>& sites,
                                 ReplicaId leader) {
  std::vector<std::string> headers = {"protocol"};
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::string site = ec2_site_name(sites[i]);
    if (static_cast<ReplicaId>(i) == leader) site += " (L)";
    headers.push_back(site + " avg");
    headers.push_back(site + " p95");
  }
  Table t(headers);
  for (const ProtocolRun& run : runs) {
    std::vector<std::string> row = {run.label};
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const LatencyStats& s = run.result.per_replica[i];
      row.push_back(s.empty() ? "-" : fmt_ms(s.mean()));
      row.push_back(s.empty() ? "-" : fmt_ms(s.percentile(95)));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace crsm::bench
