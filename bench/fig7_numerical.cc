// Reproduces paper Figure 7: numerical (closed-form) average commit latency
// of Clock-RSM vs Paxos-bcast over ALL combinations of three, five and seven
// replicas at the EC2 sites of Table III. "all" averages every replica of
// every group; "highest" averages each group's worst replica. Paxos-bcast
// always gets its best leader.
#include <cstdio>
#include <iostream>

#include "analysis/latency_model.h"
#include "bench_common.h"
#include "harness/report.h"
#include "util/topology.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  // Closed-form model sweep: deterministic, so --seed is accepted for
  // interface uniformity but has nothing to randomize.
  const BenchArgs args = parse_bench_args(argc, argv);
  JsonResult jr("fig7_numerical");
  if (!args.json) {
    std::printf("Figure 7: average commit latency over all EC2 placement "
                "combinations (ms)\n\n");
  }
  Table t({"group size", "groups", "Paxos-bcast all", "Clock-RSM all",
           "Paxos-bcast highest", "Clock-RSM highest"});
  for (std::size_t k : {3u, 5u, 7u}) {
    const GroupSweepResult r = sweep_groups(ec2_matrix(), k);
    const std::string prefix = std::to_string(k) + "r_";
    jr.add(prefix + "paxos_bcast_all_ms", r.paxos_bcast_avg_all);
    jr.add(prefix + "clock_rsm_all_ms", r.clock_rsm_avg_all);
    jr.add(prefix + "paxos_bcast_highest_ms", r.paxos_bcast_avg_highest);
    jr.add(prefix + "clock_rsm_highest_ms", r.clock_rsm_avg_highest);
    t.add_row({std::to_string(k) + " replicas", std::to_string(r.num_groups),
               fmt_ms(r.paxos_bcast_avg_all), fmt_ms(r.clock_rsm_avg_all),
               fmt_ms(r.paxos_bcast_avg_highest),
               fmt_ms(r.clock_rsm_avg_highest)});
  }
  if (args.json) {
    jr.print(std::cout);
    return 0;
  }
  t.print(std::cout);

  std::printf("\nPaper shape: Clock-RSM lower for 5 and 7 replicas on both "
              "metrics,\nwith a larger gap on the highest-latency replica; "
              "Paxos-bcast slightly\nbetter with 3 replicas.\n");
  return 0;
}
