// Reproduces paper Figure 2: average and 95th-percentile commit latency at
// each of three replicas {CA, VA, IR} under balanced workloads, with the
// Paxos / Paxos-bcast leader at (a) CA and (b) VA.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const std::vector<std::size_t> sites = {0, 1, 2};  // CA VA IR
  const LatencyMatrix m = ec2_matrix().submatrix(sites);

  JsonResult jr("fig2_latency_3r_balanced");
  jr.add("seed", args.seed);
  for (const ReplicaId leader : {ReplicaId{0}, ReplicaId{1}}) {
    if (!args.json) {
      std::printf("\nFigure 2(%c): three replicas, balanced workload, leader at %s\n",
                  leader == 0 ? 'a' : 'b', ec2_site_name(sites[leader]));
      std::printf("(commit latency in ms; avg and 95th percentile per replica)\n\n");
    }
    const auto runs = run_four_protocols(paper_options(m, args.seed), leader);
    for (const ProtocolRun& run : runs) {
      const LatencyStats all = run.result.aggregate();
      const std::string prefix =
          metric_key(run.label) + (leader == 0 ? "_leader_ca" : "_leader_va");
      jr.add(prefix + "_avg_ms", all.mean());
      jr.add(prefix + "_p95_ms", all.percentile(95));
    }
    if (!args.json) print_latency_figure(runs, sites, leader);
  }
  if (args.json) jr.print(std::cout);
  return 0;
}
