// Reproduces paper Figure 4: commit latency distribution (CDF) at the CA
// replica with three replicas {CA, VA, IR}, leader at VA, balanced workload.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace crsm;
  using namespace crsm::bench;

  const std::vector<std::size_t> sites = {0, 1, 2};
  const std::size_t ca = 0;
  const LatencyMatrix m = ec2_matrix().submatrix(sites);

  std::printf("Figure 4: latency CDF at CA, three replicas, leader at VA, "
              "balanced workload\n\n");
  const auto runs = run_four_protocols(paper_options(m), /*leader=*/1);
  for (const ProtocolRun& run : runs) {
    print_cdf(std::cout, run.label, run.result.per_replica[ca].cdf(20));
    std::printf("\n");
  }

  Table t({"protocol", "min", "p50", "p95", "max"});
  for (const ProtocolRun& run : runs) {
    const LatencyStats& s = run.result.per_replica[ca];
    t.add_row({run.label, fmt_ms(s.min()), fmt_ms(s.percentile(50)),
               fmt_ms(s.percentile(95)), fmt_ms(s.max())});
  }
  t.print(std::cout);
  return 0;
}
