// Reproduces paper Figure 4: commit latency distribution (CDF) at the CA
// replica with three replicas {CA, VA, IR}, leader at VA, balanced workload.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const std::vector<std::size_t> sites = {0, 1, 2};
  const std::size_t ca = 0;
  const LatencyMatrix m = ec2_matrix().submatrix(sites);

  if (!args.json) std::printf("Figure 4: latency CDF at CA, three replicas, leader at VA, "
              "balanced workload\n\n");
  const auto runs = run_four_protocols(paper_options(m, args.seed), /*leader=*/1);
  if (!args.json) {
    for (const ProtocolRun& run : runs) {
      print_cdf(std::cout, run.label, run.result.per_replica[ca].cdf(20));
      std::printf("\n");
    }
  }

  print_cdf_summary(args, "fig4_cdf_ca", runs, ca);
  return 0;
}
