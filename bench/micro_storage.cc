// Microbenchmarks: command log append and recovery replay (google-benchmark).
#include <benchmark/benchmark.h>

#include "storage/command_log.h"
#include "storage/recovery.h"

namespace {

using namespace crsm;

LogRecord make_prepare(Tick t, std::size_t payload) {
  Command c;
  c.client = 1;
  c.seq = t;
  c.payload.assign(payload, 'x');
  return LogRecord::prepare(Timestamp{t, 0}, std::move(c));
}

void BM_MemLogAppend(benchmark::State& state) {
  MemLog log;
  Tick t = 1;
  for (auto _ : state) {
    log.append(make_prepare(t, static_cast<std::size_t>(state.range(0))));
    log.append(LogRecord::commit(Timestamp{t, 0}));
    ++t;
  }
}
BENCHMARK(BM_MemLogAppend)->Arg(64)->Arg(1000);

void BM_ReplayLog(benchmark::State& state) {
  std::vector<LogRecord> records;
  const auto n = static_cast<Tick>(state.range(0));
  for (Tick t = 1; t <= n; ++t) {
    records.push_back(make_prepare(t, 64));
    records.push_back(LogRecord::commit(Timestamp{t, 0}));
  }
  for (auto _ : state) {
    ReplayResult r = replay_log(records);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ReplayLog)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
