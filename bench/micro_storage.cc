// Storage microbenchmark: the group-commit batch-size sweep.
//
// Measures the append+fsync path of the WAL under the durability discipline
// the runtime actually uses: every record demands a durability point
// (CommandLog::sync), and GroupCommitLog amortizes B of them into one
// fdatasync (the event-loop pass-end flush). Sweeping B shows why group
// commit is what makes a FileLog-backed node competitive with MemLog —
// records/s climbs roughly linearly with the batch until the write() cost
// dominates — and the MemLog and no-fsync rows bound the range. A replay
// row covers the recovery side: how fast a WAL scans back into memory.
//
// Follows the shared bench CLI contract (--seed N, --json); results land in
// BENCH_storage.json at the repo root. Unlike micro_codec this needs no
// Google Benchmark: timings are plain steady_clock over fixed record
// counts, dominated by syscalls.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"
#include "storage/recovery.h"
#include "storage/replica_storage.h"

namespace {

using namespace crsm;

LogRecord make_prepare(Tick t, std::size_t payload) {
  Command c;
  c.client = 1;
  c.seq = t;
  c.payload.assign(payload, 'x');
  return LogRecord::prepare(Timestamp{t, 0}, std::move(c));
}

constexpr std::size_t kPayload = 64;   // the paper's command size
constexpr std::size_t kRecords = 2000; // appends per measured run

double records_per_sec(std::size_t n, std::chrono::steady_clock::duration d) {
  const double secs = std::chrono::duration<double>(d).count();
  return secs > 0 ? static_cast<double>(n) / secs : 0.0;
}

// Appends kRecords prepares through a GroupCommitLog in batches of `batch`
// sync requests per flush; returns records/s.
double run_batched(const std::string& path, std::size_t batch) {
  std::filesystem::remove(path);
  GroupCommitLog log(std::make_unique<FileLog>(path), /*defer_sync=*/true);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kRecords; ++i) {
    log.append(make_prepare(static_cast<Tick>(i + 1), kPayload));
    log.sync();  // the protocol's per-record durability request
    if ((i + 1) % batch == 0) (void)log.flush();
  }
  (void)log.flush();
  const auto t1 = std::chrono::steady_clock::now();
  std::filesystem::remove(path);
  return records_per_sec(kRecords, t1 - t0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  (void)args.seed;  // fixed workload; accepted for CLI uniformity

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("crsm_micro_storage_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  const std::string wal = dir + "/wal.log";

  JsonResult jr("micro_storage");
  Table t({"log", "fsync batch", "records/s"});
  const auto add = [&](const std::string& label, const std::string& batch,
                       const std::string& key, double rps) {
    jr.add(key, rps);
    t.add_row({label, batch, fmt_count(rps, 0)});
  };

  // Bounds: pure in-memory appends, and file appends with no fsync at all.
  {
    MemLog log;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kRecords; ++i) {
      log.append(make_prepare(static_cast<Tick>(i + 1), kPayload));
    }
    const auto t1 = std::chrono::steady_clock::now();
    add("MemLog", "-", "memlog_records_per_sec", records_per_sec(kRecords, t1 - t0));
  }
  {
    std::filesystem::remove(wal);
    FileLog log(wal);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kRecords; ++i) {
      log.append(make_prepare(static_cast<Tick>(i + 1), kPayload));
    }
    const auto t1 = std::chrono::steady_clock::now();
    add("FileLog (no fsync)", "-", "filelog_nosync_records_per_sec",
        records_per_sec(kRecords, t1 - t0));
  }

  // The sweep: one fdatasync per B durability requests.
  for (const std::size_t batch : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const double rps = run_batched(wal, batch);
    add("FileLog + group commit", std::to_string(batch),
        "batch_" + std::to_string(batch) + "_records_per_sec", rps);
  }

  // Recovery replay: reload the WAL and rebuild the committed sequence.
  {
    std::filesystem::remove(wal);
    {
      FileLog log(wal);
      for (std::size_t i = 0; i < kRecords; ++i) {
        const auto ts = Timestamp{static_cast<Tick>(i + 1), 0};
        log.append(make_prepare(ts.ticks, kPayload));
        log.append(LogRecord::commit(ts));
      }
      log.sync();
    }
    const auto t0 = std::chrono::steady_clock::now();
    FileLog reopened(wal);
    const ReplayResult rr = replay_log(reopened.records());
    const auto t1 = std::chrono::steady_clock::now();
    if (rr.committed.size() != kRecords) {
      std::fprintf(stderr, "replay mismatch: %zu committed\n", rr.committed.size());
      return 1;
    }
    add("FileLog replay", "-", "replay_records_per_sec",
        records_per_sec(kRecords, t1 - t0));
  }

  std::filesystem::remove_all(dir);

  if (args.json) {
    jr.print(std::cout);
    return 0;
  }
  std::printf("Storage microbenchmark: %zu records, %zuB payload\n\n", kRecords,
              kPayload);
  t.print(std::cout);
  std::printf(
      "\nShape to check: records/s at batch 1 is fsync-bound (one fdatasync "
      "per record);\nthroughput grows with the batch until write() cost "
      "dominates, closing most of the\ngap to the no-fsync bound. That gap "
      "closure is what the runtime's per-pass group\ncommit buys a durable "
      "node.\n");
  return 0;
}
