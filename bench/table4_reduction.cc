// Reproduces paper Table IV: per-replica latency reduction of Clock-RSM
// over best-leader Paxos-bcast across all EC2 placement combinations.
// Negative reduction means Clock-RSM provides higher latency.
#include <cstdio>
#include <iostream>

#include "analysis/latency_model.h"
#include "bench_common.h"
#include "harness/report.h"
#include "util/topology.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);  // deterministic sweep
  JsonResult jr("table4_reduction");
  if (!args.json) {
    std::printf("Table IV: latency reduction of Clock-RSM over Paxos-bcast\n\n");
  }
  Table t({"replicas", "percentage", "absolute reduction", "relative reduction"});
  for (std::size_t k : {3u, 5u, 7u}) {
    const GroupSweepResult r = sweep_groups(ec2_matrix(), k);
    const std::string prefix = std::to_string(k) + "r_";
    jr.add(prefix + "improved_fraction", r.improved_fraction);
    jr.add(prefix + "improved_abs_ms", r.improved_abs_ms);
    jr.add(prefix + "regressed_fraction", r.regressed_fraction);
    jr.add(prefix + "regressed_abs_ms", r.regressed_abs_ms);
    t.add_row({std::to_string(k) + " replicas", fmt_pct(r.improved_fraction),
               fmt_ms(r.improved_abs_ms) + "ms", fmt_pct(r.improved_rel)});
    t.add_row({"", fmt_pct(r.regressed_fraction),
               "-" + fmt_ms(r.regressed_abs_ms) + "ms",
               "-" + fmt_pct(r.regressed_rel)});
  }
  if (args.json) {
    jr.print(std::cout);
    return 0;
  }
  t.print(std::cout);

  std::printf("\nPaper reference: 3r: 0%% / 100%% (-9.9ms, -6.2%%); "
              "5r: 68.6%% (+31.9ms, 15.2%%) / 31.4%% (-30.6ms, -14.6%%); "
              "7r: 85.7%% (+50.2ms, 21.5%%) / 14.3%% (-39.4ms, -16.9%%).\n");
  return 0;
}
