// Ablation: batching in the commit pipeline (paper Section VI-A/VI-D).
// Two independent layers amortize per-command fixed costs:
//
//   sender batching   — the thread runtime's per-pass wire coalescing:
//                       frames queued to one peer during a pass leave as
//                       one handoff. Amortizes the per-send kernel cost;
//                       the Paxos leader — which sends the most messages
//                       per command — benefits the most, the paper's
//                       explanation for Paxos beating the multi-leader
//                       protocols on small commands.
//   protocol batching — the TCP runtime's command batching: client writes
//                       arriving within one event-loop pass replicate as a
//                       single envelope (one PREPARE, one ack round, one
//                       WAL record). Reported as cmds/PREPARE.
//
// Both layers report through the shared bench_common columns: cmds/PREPARE
// for protocol batching and frames/flush for wire coalescing, so the
// ratios here agree with fig10's and with TransportStats.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "runtime/throughput.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);  // fixed-size workload
  JsonResult jr("ablation_batching");
  if (!args.json) {
    std::printf("Ablation: sender-side batching, five replicas, 100B commands "
                "(cluster-equivalent kops/s)\n\n");
  }

  struct Proto {
    const char* label;
    RtCluster::ProtocolFactory factory;
  };
  const std::size_t n = 5;
  const std::vector<Proto> protos = {
      {"Clock-RSM", clock_rsm_factory(n)},
      {"Mencius-bcast", mencius_factory(n)},
      {"Paxos", paxos_factory(n, 0, false)},
      {"Paxos-bcast", paxos_factory(n, 0, true)},
  };

  Table t({"protocol", "unbatched kops/s", "batched kops/s", "speedup",
           "frames/flush", "batched max CPU share"});
  for (const Proto& p : protos) {
    double results[2] = {0.0, 0.0};
    double share = 0.0, frames_per_flush = 0.0;
    for (int batched = 0; batched < 2; ++batched) {
      ThroughputOptions opt;
      opt.num_replicas = n;
      opt.clients_per_replica = 32;
      opt.payload_bytes = 100;
      opt.warmup_s = 0.5;
      opt.duration_s = 2.0;
      opt.sender_batching = batched == 1;
      const ThroughputResult r = run_throughput(opt, p.factory);
      results[batched] = r.kops_per_sec_bottleneck;
      const std::string prefix =
          metric_key(p.label) + (batched ? "_batched_" : "_unbatched_");
      add_batching_columns(jr, prefix, r);
      if (batched == 1) {
        share = r.max_cpu_share;
        frames_per_flush = r.frames_per_flush;
      }
    }
    jr.add(metric_key(p.label) + "_unbatched_kops", results[0]);
    jr.add(metric_key(p.label) + "_batched_kops", results[1]);
    t.add_row({p.label, fmt_count(results[0]), fmt_count(results[1]),
               fmt_count(results[1] / std::max(results[0], 1e-9), 2) + "x",
               fmt_count(frames_per_flush, 2), fmt_pct(share)});
  }
  if (args.json) {
    jr.print(std::cout);
    return 0;
  }
  t.print(std::cout);

  std::printf("\nExpected shape: every protocol gains; the leader-based "
              "protocols gain the most\nbecause their leader amortizes the "
              "deepest send batches (paper Section VI-D).\nframes/flush is "
              "the achieved batching depth — the same wire_flushes "
              "accounting\nfig10 reports, so the two benches agree on what "
              "a \"batch\" is.\n");
  return 0;
}
