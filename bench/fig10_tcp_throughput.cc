// Figure 10 (extension, not in the paper): ThreadTransport vs TcpTransport
// throughput on one host.
//
// Both runtimes host the same protocol reactors and the same encode-once /
// zero-copy wire pipeline; what changes is the link: in-process FIFO byte
// queues with an emulated per-byte kernel cost (ThreadTransport, the
// Figure 8 runtime) versus real loopback TCP sockets through the epoll
// event loop (TcpTransport). Reported per transport: committed cmds/s and
// the per-command wire counters (msgs, bytes, encodes) — the counters must
// match across transports (same protocol, same framing) while throughput
// shows what the real kernel path costs.
//
// A third Clock-RSM row adds durability: the same TCP cluster on a FileLog
// WAL with per-pass group commit. The acceptance bound for the durable
// runtime is cmds/s within 3x of the MemLog TCP row — group commit is what
// makes that hold (one fdatasync per event-loop pass, not per PREPARE).
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "runtime/throughput.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);  // fixed-size workload
  JsonResult jr("fig10_tcp_throughput");
  if (!args.json) {
    std::printf("Figure 10: ThreadTransport vs TcpTransport (loopback "
                "sockets), three replicas,\n100B commands, closed-loop "
                "clients\n\n");
  }

  struct Proto {
    const char* label;
    RtCluster::ProtocolFactory factory;
  };
  const std::size_t n = 3;
  const std::vector<Proto> protos = {
      {"Clock-RSM", clock_rsm_factory(n)},
      {"Paxos", paxos_factory(n, 0, false)},
  };

  Table t({"protocol", "transport", "kcmds/s", "msgs/cmd", "bytes/cmd",
           "encodes/cmd", "wire MB/s"});
  for (const Proto& p : protos) {
    ThroughputOptions opt;
    opt.num_replicas = n;
    opt.clients_per_replica = 16;
    opt.payload_bytes = 100;
    opt.warmup_s = 0.5;
    opt.duration_s = 2.0;

    const ThroughputResult thread_r = run_throughput(opt, p.factory);
    const ThroughputResult tcp_r = run_tcp_throughput(opt, p.factory);

    ThroughputResult wal_r;
    const bool durable_row = std::string(p.label) == "Clock-RSM";
    if (durable_row) {
      const std::string dir =
          (std::filesystem::temp_directory_path() /
           ("fig10_wal_" + std::to_string(::getpid())))
              .string();
      TcpClusterOptions copt;
      copt.log_dir = dir;
      wal_r = run_tcp_throughput(opt, p.factory, copt);
      std::filesystem::remove_all(dir);
    }

    const auto add = [&](const char* transport, const ThroughputResult& r) {
      const std::string prefix =
          metric_key(p.label) + "_" + metric_key(transport) + "_";
      jr.add(prefix + "kcmds_per_sec", r.kops_per_sec);
      jr.add(prefix + "msgs_per_cmd", r.msgs_per_cmd);
      jr.add(prefix + "bytes_per_cmd", r.bytes_per_cmd);
      jr.add(prefix + "encodes_per_cmd", r.encodes_per_cmd);
      t.add_row({p.label, transport, fmt_count(r.kops_per_sec, 2),
                 fmt_count(r.msgs_per_cmd, 2), fmt_count(r.bytes_per_cmd, 1),
                 fmt_count(r.encodes_per_cmd, 2),
                 fmt_count(r.mb_per_sec_wire, 2)});
    };
    add("thread", thread_r);
    add("tcp", tcp_r);
    if (durable_row) {
      add("tcp+wal", wal_r);
      const double ratio =
          wal_r.kops_per_sec > 0 ? tcp_r.kops_per_sec / wal_r.kops_per_sec : 0.0;
      jr.add("clock_rsm_wal_slowdown", ratio);
    }
  }
  if (args.json) {
    jr.print(std::cout);
    return 0;
  }
  t.print(std::cout);

  std::printf("\nShape to check: per-command msgs/bytes/encodes match across "
              "transports (same\nprotocol, same frames; encodes/cmd ~ "
              "msgs/cmd / fan-out proves encode-once\nsurvives the socket "
              "path). Thread vs TCP cmds/s quantifies the real kernel\n"
              "send/recv cost that Section VI-D identifies as the local-area "
              "bottleneck.\nThe tcp+wal row (FileLog + per-pass group commit) "
              "must stay within ~3x of the\nMemLog tcp row — the durable "
              "deployment's acceptance bound.\n");
  return 0;
}
