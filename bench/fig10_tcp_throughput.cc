// Figure 10 (extension, not in the paper): transport / io-backend /
// coalescing sweep on one host.
//
// All rows host the same protocol reactors and the same encode-once /
// zero-copy wire pipeline; what changes is the link and how bytes reach the
// kernel:
//
//   thread             — in-process FIFO byte queues with an emulated
//                        per-byte kernel cost (the Figure 8 runtime).
//   tcp epoll|uring    — real loopback TCP sockets, driven by the epoll or
//                        the io_uring event-loop backend.
//   coalesce off|on    — per-pass wire coalescing: frames queued to one
//                        peer during an event-loop pass leave as a single
//                        writev (epoll) or a single SENDMSG SQE (uring).
//
// Reported per row: committed cmds/s, the per-command wire counters (msgs,
// flushes — flushes/cmd < msgs/cmd is coalescing at work), the achieved
// frames-per-flush batching factor, and on uring the SQEs handed over per
// io_uring_enter. The msgs/bytes/encodes counters must match across rows
// (same protocol, same framing) while throughput shows what each kernel
// path costs.
//
// The wal rows add durability: the same TCP cluster on a FileLog WAL with
// per-pass group commit. The acceptance bound for the durable runtime is
// cmds/s within 3x of the MemLog tcp row — group commit is what makes that
// hold (one fdatasync per event-loop pass, not per PREPARE).
//
// The batch rows sweep protocol-level command batching on the durable
// cluster (--max-batch-cmds 4/16/64): client writes arriving within one
// event-loop pass replicate as a single envelope — one PREPARE, one ack
// round, one WAL record inside the same group-commit fsync. Reported as
// cmds/PREPARE (the achieved batch depth); throughput should climb with
// depth until envelope size stops being the bottleneck.
//
// io_uring rows are skipped (with a note) when the kernel refuses the
// backend; the factory's epoll fallback never silently pollutes a "uring"
// row.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "net/event_loop.h"
#include "runtime/throughput.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);  // fixed-size workload
  JsonResult jr("fig10_tcp_throughput");
  const bool uring_ok = net::uring_available();
  jr.add("uring_available", uring_ok ? 1.0 : 0.0);
  if (!args.json) {
    std::printf("Figure 10: transport x io-backend x coalescing sweep, three "
                "replicas,\n100B commands, closed-loop clients\n");
    if (!uring_ok) {
      std::printf("(io_uring unavailable on this kernel: uring rows "
                  "skipped)\n");
    }
    std::printf("\n");
  }

  struct Proto {
    const char* label;
    RtCluster::ProtocolFactory factory;
  };
  const std::size_t n = 3;
  const std::vector<Proto> protos = {
      {"Clock-RSM", clock_rsm_factory(n)},
      {"Paxos", paxos_factory(n, 0, false)},
  };

  // One sweep point: which link, which backend drives it, coalescing on or
  // off, and whether the nodes log to a WAL. Coalescing "on" uses the
  // default 256 KiB per-pass budget; "off" flushes every send immediately
  // (the pre-coalescing behaviour).
  struct Row {
    const char* transport;  // thread | tcp | tcp+wal
    net::IoBackend backend = net::IoBackend::kEpoll;
    bool coalesce = true;
    bool all_protos = true;  // false: Clock-RSM only (the durable rows)
    std::size_t batch = 1;   // protocol-level command batching (1 = off)
  };
  const std::vector<Row> rows = {
      {"thread", net::IoBackend::kEpoll, true, true},
      {"tcp", net::IoBackend::kEpoll, false, true},
      {"tcp", net::IoBackend::kEpoll, true, true},
      {"tcp", net::IoBackend::kUring, false, false},
      {"tcp", net::IoBackend::kUring, true, true},
      {"tcp+wal", net::IoBackend::kEpoll, true, false},
      {"tcp+wal", net::IoBackend::kEpoll, true, false, 4},
      {"tcp+wal", net::IoBackend::kEpoll, true, false, 16},
      {"tcp+wal", net::IoBackend::kEpoll, true, false, 64},
      {"tcp+wal", net::IoBackend::kUring, true, false},
      {"tcp+wal", net::IoBackend::kUring, true, false, 4},
      {"tcp+wal", net::IoBackend::kUring, true, false, 16},
      {"tcp+wal", net::IoBackend::kUring, true, false, 64},
  };

  Table t({"protocol", "transport", "backend", "coalesce", "batch", "kcmds/s",
           "cmds/prep", "msgs/cmd", "flushes/cmd", "frames/flush",
           "sqes/submit"});
  Table stage_t({"row", "stage", "count", "p50 us", "p99 us"});
  for (const Proto& p : protos) {
    ThroughputOptions opt;
    opt.num_replicas = n;
    opt.clients_per_replica = 16;
    opt.payload_bytes = 100;
    opt.warmup_s = 0.5;
    opt.duration_s = 2.0;
    opt.stage_breakdown = args.stage_breakdown;  // TCP rows only

    double tcp_baseline = 0.0, wal_kops = 0.0;
    for (const Row& row : rows) {
      const bool is_thread = std::string(row.transport) == "thread";
      const bool is_wal = std::string(row.transport) == "tcp+wal";
      if (!row.all_protos && std::string(p.label) != "Clock-RSM") continue;
      const bool uring_row = row.backend == net::IoBackend::kUring;
      const char* backend_label =
          is_thread ? "-" : net::io_backend_name(row.backend);
      // Batch-1 rows keep their pre-sweep key names; batch rows add _bN.
      const std::string prefix =
          metric_key(p.label) + "_" + metric_key(row.transport) + "_" +
          (is_thread ? "" : metric_key(backend_label) + "_") +
          (row.coalesce ? "coalesce_" : "nocoalesce_") +
          (row.batch > 1 ? "b" + std::to_string(row.batch) + "_" : "");
      if (uring_row && !uring_ok) {
        if (!args.json) {
          t.add_row({p.label, row.transport, backend_label,
                     row.coalesce ? "on" : "off", std::to_string(row.batch),
                     "skipped", "-", "-", "-", "-", "-"});
        }
        continue;
      }

      ThroughputResult r;
      if (is_thread) {
        opt.sender_batching = row.coalesce;
        r = run_throughput(opt, p.factory);
        opt.sender_batching = false;
      } else {
        TcpClusterOptions copt;
        copt.io_backend = row.backend;
        copt.max_coalesce_bytes = row.coalesce ? 256 * 1024 : 0;
        opt.max_batch_cmds = row.batch;
        std::string dir;
        if (is_wal) {
          dir = (std::filesystem::temp_directory_path() /
                 ("fig10_wal_" + std::to_string(::getpid()) + "_" +
                  metric_key(backend_label) + "_b" +
                  std::to_string(row.batch)))
                    .string();
          copt.log_dir = dir;
        }
        r = run_tcp_throughput(opt, p.factory, copt);
        opt.max_batch_cmds = 1;
        if (!dir.empty()) std::filesystem::remove_all(dir);
      }

      jr.add(prefix + "kcmds_per_sec", r.kops_per_sec);
      jr.add(prefix + "msgs_per_cmd", r.msgs_per_cmd);
      jr.add(prefix + "bytes_per_cmd", r.bytes_per_cmd);
      jr.add(prefix + "encodes_per_cmd", r.encodes_per_cmd);
      jr.add(prefix + "flushes_per_cmd", r.flushes_per_cmd);
      add_batching_columns(jr, prefix, r);
      if (uring_row) jr.add(prefix + "sqes_per_submit", r.sqes_per_submit);
      if (!r.stages.empty()) {
        add_stage_breakdown(jr, prefix, r.stages,
                            args.json ? nullptr : &stage_t,
                            std::string(p.label) + " " + row.transport + "/" +
                                backend_label);
      }
      t.add_row({p.label, row.transport, backend_label,
                 row.coalesce ? "on" : "off", std::to_string(row.batch),
                 fmt_count(r.kops_per_sec, 2),
                 fmt_count(r.cmds_per_prepare, 2),
                 fmt_count(r.msgs_per_cmd, 2), fmt_count(r.flushes_per_cmd, 2),
                 fmt_count(r.frames_per_flush, 2),
                 uring_row ? fmt_count(r.sqes_per_submit, 2) : "-"});

      // The durable acceptance ratio tracks the matching-backend tcp row.
      if (!is_thread && !is_wal && row.backend == net::IoBackend::kEpoll &&
          row.coalesce && row.batch == 1) {
        tcp_baseline = r.kops_per_sec;
      }
      if (is_wal && row.backend == net::IoBackend::kEpoll && row.batch == 1) {
        wal_kops = r.kops_per_sec;
      }
    }
    if (tcp_baseline > 0 && wal_kops > 0) {
      jr.add(metric_key(p.label) + "_wal_slowdown", tcp_baseline / wal_kops);
    }
  }
  if (args.json) {
    jr.print(std::cout);
    return 0;
  }
  t.print(std::cout);
  if (args.stage_breakdown) {
    std::printf("\nCommit-pipeline stage breakdown (sampled, per-stage "
                "latency at the origin):\n");
    stage_t.print(std::cout);
  }

  std::printf("\nShape to check: per-command msgs/bytes/encodes match across "
              "rows (same\nprotocol, same frames). Coalescing shows up as "
              "flushes/cmd well under msgs/cmd\nand frames/flush > 1 — the "
              "same frames, fewer kernel handoffs. The uring rows\nadd SQE "
              "batching on top (sqes/submit ~ SQEs per io_uring_enter). The "
              "tcp+wal\nrows (FileLog + per-pass group commit) must stay "
              "within ~3x of the matching\ntcp row — the durable "
              "deployment's acceptance bound. The batch rows sweep\n"
              "protocol-level command batching (cmds/prep is the achieved "
              "depth): durable\nthroughput should climb with batch size as "
              "PREPARE/ack/WAL costs amortize.\n");
  return 0;
}
