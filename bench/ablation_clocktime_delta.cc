// Ablation: the CLOCKTIME broadcast interval (Algorithm 2's delta).
//
// The paper argues the extension only matters for a lightly loaded lone
// proposer: latency goes from 2*max one-way (no extension) to roughly
// max(2*median, max + delta). This sweep measures a lone command's commit
// latency on the five-site EC2 topology for several delta values.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const LatencyMatrix m = ec2_matrix().submatrix({0, 1, 2, 3, 4});
  JsonResult jr("ablation_clocktime_delta");
  jr.add("seed", args.seed);
  if (!args.json) {
    std::printf("Ablation: CLOCKTIME interval delta vs lone-command latency "
                "(light imbalanced load at CA, five replicas; ms)\n\n");
  }

  Table t({"delta", "avg latency", "p95 latency", "CLOCKTIME msgs/s/replica"});
  for (const double delta_ms : {-1.0, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    LatencyExperimentOptions opt = paper_options(m, args.seed);
    // Light load: a single client with long think time at CA only.
    opt.workload.clients_per_replica = 1;
    opt.workload.think_min_ms = 200.0;
    opt.workload.think_max_ms = 400.0;
    opt.workload.active_replicas = {0};
    opt.duration_s = 60.0;

    const bool enabled = delta_ms >= 0.0;
    const Tick delta_us = enabled ? ms_to_us(delta_ms) : 5'000;
    const auto result = run_latency_experiment(
        opt, clock_rsm_factory(m.size(), enabled, delta_us));
    const LatencyStats& s = result.per_replica[0];
    // Rough CLOCKTIME rate: broadcasts happen at most every delta.
    const std::string rate =
        enabled ? fmt_count(1000.0 / std::max(delta_ms, 1.0), 1) : "0 (disabled)";
    jr.add((enabled ? "delta_" + fmt_ms(delta_ms, 0) + "ms" : "delta_off") +
               "_avg_ms",
           s.mean());
    t.add_row({enabled ? fmt_ms(delta_ms, 0) + "ms" : "off", fmt_ms(s.mean()),
               fmt_ms(s.percentile(95)), rate});
  }
  if (args.json) {
    jr.print(std::cout);
    return 0;
  }
  t.print(std::cout);

  std::printf("\nExpected shape: latency roughly max(2*median, max one-way + "
              "delta) while enabled,\nrising with delta toward the "
              "2*max-one-way cost of the disabled case.\n");
  return 0;
}
