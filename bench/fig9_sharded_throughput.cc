// Figure 9 (extension, not in the paper): aggregate throughput of a sharded
// Clock-RSM deployment as the number of independent replica groups grows.
//
// The paper's protocols totally order every command through one replica
// group, so a single group's commit pipeline caps throughput. This bench
// partitions the key space across 1/2/4/8 groups (src/shard), each a
// three-replica Clock-RSM deployment over the paper's {CA, VA, IR} EC2
// topology with the paper's balanced workload attached per group, and
// reports aggregate committed-commands/sec.
//
// Expected shape: aggregate throughput grows close to linearly with the
// shard count (groups share nothing), while per-command commit latency
// stays that of a single group.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "harness/sharded_experiment.h"
#include "harness/report.h"
#include "util/topology.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  JsonResult jr("fig9_sharded_throughput");
  jr.add("seed", args.seed);
  if (!args.json) {
    std::printf("Figure 9: sharded Clock-RSM aggregate throughput, three-replica\n"
                "groups on {CA, VA, IR}, paper balanced workload per group\n\n");
  }

  ShardedExperimentOptions base;
  base.matrix = ec2_matrix().submatrix({0, 1, 2});
  base.workload.clients_per_replica = 40;
  base.workload.think_min_ms = 0.0;
  base.workload.think_max_ms = 80.0;
  base.workload.payload_bytes = 64;
  base.workload.key_space = 1000;
  base.seed = args.seed;
  base.warmup_s = 1.0;
  base.duration_s = 10.0;
  base.clock_skew_ms = 2.0;
  base.jitter_ms = 0.5;

  const std::size_t n = base.matrix.size();

  Table t({"shards", "clients", "agg kcmds/s", "speedup", "lat avg", "lat p95"});
  std::vector<double> rates;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{8}}) {
    ShardedExperimentOptions opt = base;
    opt.num_shards = shards;
    const ShardedExperimentResult r =
        run_sharded_experiment(opt, clock_rsm_factory(n));
    rates.push_back(r.commands_per_sec());
    const LatencyStats lat = r.aggregate_latency();
    jr.add("shards_" + std::to_string(shards) + "_cmds_per_sec",
           r.commands_per_sec());
    jr.add("shards_" + std::to_string(shards) + "_lat_avg_ms", lat.mean());
    t.add_row({std::to_string(shards),
               std::to_string(shards * n * opt.workload.clients_per_replica),
               fmt_count(r.commands_per_sec() / 1000.0, 2),
               fmt_count(rates.back() / rates.front(), 2) + "x",
               fmt_ms(lat.mean()), fmt_ms(lat.percentile(95))});
  }
  // 1 -> 4 shards covers rates[0..2]; 8 shards is reported for the curve.
  bool monotonic = rates[1] > rates[0] && rates[2] > rates[1];
  if (args.json) {
    jr.add("monotonic_1_to_4", std::uint64_t{monotonic ? 1u : 0u});
    jr.print(std::cout);
    return monotonic ? 0 : 1;
  }
  t.print(std::cout);
  std::printf("\n1 -> 4 shard aggregate throughput monotonically increasing: %s\n",
              monotonic ? "yes" : "NO (unexpected)");
  std::printf("Shape to check: near-linear speedup (groups share nothing) with\n"
              "flat commit latency across shard counts.\n");
  return monotonic ? 0 : 1;
}
