// Reproduces paper Figure 3: commit latency distribution (CDF) at the JP
// replica with five replicas {CA, VA, IR, JP, SG}, leader at CA, balanced
// workload.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const std::vector<std::size_t> sites = {0, 1, 2, 3, 4};
  const std::size_t jp = 3;
  const LatencyMatrix m = ec2_matrix().submatrix(sites);

  if (!args.json) std::printf("Figure 3: latency CDF at JP, five replicas, leader at CA, "
              "balanced workload\n\n");
  const auto runs = run_four_protocols(paper_options(m, args.seed), /*leader=*/0);
  if (!args.json) {
    for (const ProtocolRun& run : runs) {
      print_cdf(std::cout, run.label, run.result.per_replica[jp].cdf(20));
      std::printf("\n");
    }
  }

  // Summary row mirroring the paper's reading of the figure.
  print_cdf_summary(args, "fig3_cdf_jp", runs, jp);
  return 0;
}
