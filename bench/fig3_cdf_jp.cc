// Reproduces paper Figure 3: commit latency distribution (CDF) at the JP
// replica with five replicas {CA, VA, IR, JP, SG}, leader at CA, balanced
// workload.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace crsm;
  using namespace crsm::bench;

  const std::vector<std::size_t> sites = {0, 1, 2, 3, 4};
  const std::size_t jp = 3;
  const LatencyMatrix m = ec2_matrix().submatrix(sites);

  std::printf("Figure 3: latency CDF at JP, five replicas, leader at CA, "
              "balanced workload\n\n");
  const auto runs = run_four_protocols(paper_options(m), /*leader=*/0);
  for (const ProtocolRun& run : runs) {
    print_cdf(std::cout, run.label, run.result.per_replica[jp].cdf(20));
    std::printf("\n");
  }

  // Summary row mirroring the paper's reading of the figure.
  Table t({"protocol", "min", "p50", "p95", "max"});
  for (const ProtocolRun& run : runs) {
    const LatencyStats& s = run.result.per_replica[jp];
    t.add_row({run.label, fmt_ms(s.min()), fmt_ms(s.percentile(50)),
               fmt_ms(s.percentile(95)), fmt_ms(s.max())});
  }
  t.print(std::cout);
  return 0;
}
