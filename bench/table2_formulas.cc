// Reproduces paper Table II (closed-form commit latency per protocol) by
// evaluating the formulas on the paper's deployments, and prints the
// Table III latency matrix the models consume.
#include <cstdio>
#include <iostream>

#include "analysis/latency_model.h"
#include "bench_common.h"
#include "harness/report.h"
#include "util/topology.h"

namespace {

using namespace crsm;

void print_table3() {
  std::printf("Table III: average round-trip latencies (ms) between EC2 "
              "data centers\n\n");
  std::vector<std::string> headers = {""};
  for (std::size_t j = 0; j < kNumEc2Sites; ++j) headers.push_back(ec2_site_name(j));
  Table t(headers);
  for (std::size_t i = 0; i < kNumEc2Sites; ++i) {
    std::vector<std::string> row = {ec2_site_name(i)};
    for (std::size_t j = 0; j < kNumEc2Sites; ++j) {
      row.push_back(i == j ? "-" : fmt_ms(ec2_matrix().rtt_ms(i, j), 0));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

void print_formula_eval(const std::vector<std::size_t>& sites, std::size_t leader) {
  const LatencyMatrix m = ec2_matrix().submatrix(sites);
  LatencyModel model(m);
  std::printf("\nTable II evaluated on {%s}, leader at %s (balanced "
              "workload; ms)\n\n",
              group_name(sites).c_str(), ec2_site_name(sites[leader]));
  Table t({"replica", "Paxos", "Paxos-bcast", "Mencius-bcast [lo, hi]",
           "Clock-RSM"});
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto [mlo, mhi] = model.mencius_bcast_balanced(i);
    std::string name = ec2_site_name(sites[i]);
    if (i == leader) name += " (L)";
    t.add_row({name, fmt_ms(model.paxos(leader, i)),
               fmt_ms(model.paxos_bcast_precise(leader, i)),
               "[" + fmt_ms(mlo) + ", " + fmt_ms(mhi) + "]",
               fmt_ms(model.clock_rsm_balanced(i))});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);  // deterministic models
  if (args.json) {
    // The five-replica Fig. 1(a) deployment, leader at CA: the headline
    // closed-form numbers of Table II.
    const LatencyMatrix m = ec2_matrix().submatrix({0, 1, 2, 3, 4});
    LatencyModel model(m);
    JsonResult jr("table2_formulas");
    for (std::size_t i = 0; i < 5; ++i) {
      const std::string site = metric_key(ec2_site_name(i));
      jr.add("paxos_" + site + "_ms", model.paxos(0, i));
      jr.add("paxos_bcast_" + site + "_ms", model.paxos_bcast_precise(0, i));
      jr.add("clock_rsm_" + site + "_ms", model.clock_rsm_balanced(i));
    }
    jr.print(std::cout);
    return 0;
  }

  print_table3();

  std::printf("\nTable II: steps / message complexity\n\n");
  Table t({"protocol", "steps", "complexity"});
  t.add_row({"Paxos", "4 / 2", "O(N)"});
  t.add_row({"Paxos-bcast", "3 / 2", "O(N^2)"});
  t.add_row({"Mencius-bcast", "2", "O(N^2)"});
  t.add_row({"Clock-RSM", "2", "O(N^2)"});
  t.print(std::cout);

  print_formula_eval({0, 1, 2, 3, 4}, /*leader=*/0);  // Fig. 1(a) deployment
  print_formula_eval({0, 1, 2, 3, 4}, /*leader=*/1);  // Fig. 1(b)
  print_formula_eval({0, 1, 2}, /*leader=*/1);        // Fig. 2(b)
  return 0;
}
