// Microbenchmarks: message serialization (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/codec.h"
#include "common/message.h"
#include "common/wire_frame.h"

namespace {

using namespace crsm;

Message make_prepare(std::size_t payload) {
  Message m;
  m.type = MsgType::kPrepare;
  m.from = 3;
  m.epoch = 1;
  m.ts = Timestamp{123456789, 3};
  m.cmd.client = 42;
  m.cmd.seq = 7;
  m.cmd.payload.assign(payload, 'x');
  return m;
}

void BM_EncodePrepare(benchmark::State& state) {
  const Message m = make_prepare(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::string out = m.encode();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.encode().size()));
}
BENCHMARK(BM_EncodePrepare)->Arg(10)->Arg(100)->Arg(1000);

void BM_DecodePrepare(benchmark::State& state) {
  const std::string wire = make_prepare(static_cast<std::size_t>(state.range(0))).encode();
  for (auto _ : state) {
    Message m = Message::decode(wire);
    benchmark::DoNotOptimize(m);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_DecodePrepare)->Arg(10)->Arg(100)->Arg(1000);

// Zero-copy decode: payloads stay views into the receive buffer (the
// transport hot path). Compare against BM_DecodePrepare (owning).
void BM_DecodePrepareView(benchmark::State& state) {
  const std::string wire = make_prepare(static_cast<std::size_t>(state.range(0))).encode();
  for (auto _ : state) {
    std::size_t pos = 0;
    Message m = Message::decode_stream_view(wire, &pos);
    benchmark::DoNotOptimize(m);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_DecodePrepareView)->Arg(10)->Arg(100)->Arg(1000);

// Fan-out cost for a 5-replica broadcast: per-destination encode (the old
// pipeline) vs one WireFrame shared by every link (encode-once).
void BM_Broadcast5EncodePerLink(benchmark::State& state) {
  const Message m = make_prepare(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (int dst = 0; dst < 5; ++dst) {
      std::string out = m.encode();
      benchmark::DoNotOptimize(out);
    }
  }
}
BENCHMARK(BM_Broadcast5EncodePerLink)->Arg(10)->Arg(100)->Arg(1000);

void BM_Broadcast5EncodeOnce(benchmark::State& state) {
  const Message m = make_prepare(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    WireFrame f(m);
    for (int dst = 0; dst < 5; ++dst) {
      std::string_view bytes = f.bytes();
      benchmark::DoNotOptimize(bytes);
    }
  }
}
BENCHMARK(BM_Broadcast5EncodeOnce)->Arg(10)->Arg(100)->Arg(1000);

void BM_VarintEncode(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    Encoder e;
    e.var(v++);
    benchmark::DoNotOptimize(e.str());
  }
}
BENCHMARK(BM_VarintEncode);

}  // namespace

BENCHMARK_MAIN();
