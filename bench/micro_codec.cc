// Microbenchmarks: message serialization (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/codec.h"
#include "common/message.h"

namespace {

using namespace crsm;

Message make_prepare(std::size_t payload) {
  Message m;
  m.type = MsgType::kPrepare;
  m.from = 3;
  m.epoch = 1;
  m.ts = Timestamp{123456789, 3};
  m.cmd.client = 42;
  m.cmd.seq = 7;
  m.cmd.payload.assign(payload, 'x');
  return m;
}

void BM_EncodePrepare(benchmark::State& state) {
  const Message m = make_prepare(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::string out = m.encode();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.encode().size()));
}
BENCHMARK(BM_EncodePrepare)->Arg(10)->Arg(100)->Arg(1000);

void BM_DecodePrepare(benchmark::State& state) {
  const std::string wire = make_prepare(static_cast<std::size_t>(state.range(0))).encode();
  for (auto _ : state) {
    Message m = Message::decode(wire);
    benchmark::DoNotOptimize(m);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_DecodePrepare)->Arg(10)->Arg(100)->Arg(1000);

void BM_VarintEncode(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    Encoder e;
    e.var(v++);
    benchmark::DoNotOptimize(e.str());
  }
}
BENCHMARK(BM_VarintEncode);

}  // namespace

BENCHMARK_MAIN();
