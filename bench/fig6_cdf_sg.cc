// Reproduces paper Figure 6: commit latency distribution (CDF) at the SG
// replica with five replicas, imbalanced workload (clients only at SG),
// leader of Paxos / Paxos-bcast at CA.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const std::vector<std::size_t> sites = {0, 1, 2, 3, 4};
  const std::size_t sg = 4;
  LatencyExperimentOptions opt = paper_options(ec2_matrix().submatrix(sites), args.seed);
  opt.workload.active_replicas = {static_cast<ReplicaId>(sg)};

  if (!args.json) std::printf("Figure 6: latency CDF at SG, five replicas, imbalanced "
              "workload, leader at CA\n\n");
  const auto runs = run_four_protocols(opt, /*leader=*/0);
  if (!args.json) {
    for (const ProtocolRun& run : runs) {
      print_cdf(std::cout, run.label, run.result.per_replica[sg].cdf(20));
      std::printf("\n");
    }
  }

  print_cdf_summary(args, "fig6_cdf_sg", runs, sg);
  return 0;
}
