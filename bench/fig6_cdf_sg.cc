// Reproduces paper Figure 6: commit latency distribution (CDF) at the SG
// replica with five replicas, imbalanced workload (clients only at SG),
// leader of Paxos / Paxos-bcast at CA.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace crsm;
  using namespace crsm::bench;

  const std::vector<std::size_t> sites = {0, 1, 2, 3, 4};
  const std::size_t sg = 4;
  LatencyExperimentOptions opt = paper_options(ec2_matrix().submatrix(sites));
  opt.workload.active_replicas = {static_cast<ReplicaId>(sg)};

  std::printf("Figure 6: latency CDF at SG, five replicas, imbalanced "
              "workload, leader at CA\n\n");
  const auto runs = run_four_protocols(opt, /*leader=*/0);
  for (const ProtocolRun& run : runs) {
    print_cdf(std::cout, run.label, run.result.per_replica[sg].cdf(20));
    std::printf("\n");
  }

  Table t({"protocol", "min", "p50", "p95", "max"});
  for (const ProtocolRun& run : runs) {
    const LatencyStats& s = run.result.per_replica[sg];
    t.add_row({run.label, fmt_ms(s.min()), fmt_ms(s.percentile(50)),
               fmt_ms(s.percentile(95)), fmt_ms(s.max())});
  }
  t.print(std::cout);
  return 0;
}
