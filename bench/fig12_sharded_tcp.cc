// Figure 12 (extension, not in the paper): multi-group scaling over real
// sockets.
//
// fig9 established the sharding story on the in-process thread runtime; this
// bench re-runs it on the production shape — ShardedTcpCluster boots
// `groups` independent Clock-RSM groups, each a full three-replica TCP
// cluster with its own event-loop threads, loopback sockets and durable WAL
// (per-pass group commit) under <tmp>/group-<g>, exactly the topology a set
// of multi-group crsm_node processes forms. Closed-loop clients are
// partitioned by key: each client owns keys that hash (kv_key_hash, the
// ShardRouter mapping) to its group, so no command ever crosses a group —
// the independence that lets aggregate throughput scale.
//
// Reported per row (groups in {1, 2, 4}): aggregate committed cmds/s, the
// per-group split (a lopsided split means the key partition or the host is
// skewed, not the protocol), and client-observed p50/p99 — per-command
// latency should stay that of a single group while aggregate throughput
// climbs. The speedup_2/speedup_4 JSON keys are the acceptance ratios CI
// asserts (2 groups > 1.5x of 1 group on a multi-core runner). On hosts
// with fewer cores than groups the protocol threads time-share and the
// scaling flattens toward the core count; the fsync overlap across groups
// is then the remaining win.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "kv/kv_store.h"
#include "runtime/sharded_tcp_cluster.h"
#include "shard/shard_router.h"
#include "util/stats.h"
#include "workload/workload.h"

namespace {

using namespace crsm;

// One outstanding request per client; the reply hook flips the flag.
struct Completion {
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t done_upto = 0;

  void complete(std::uint64_t seq) {
    {
      std::lock_guard<std::mutex> lk(mu);
      done_upto = std::max(done_upto, seq);
    }
    cv.notify_one();
  }
  bool wait_for_seq(std::uint64_t seq, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, timeout, [&] { return done_upto >= seq; });
  }
};

struct GroupsResult {
  double agg_cmds_per_sec = 0.0;
  std::vector<double> per_group_cmds_per_sec;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

GroupsResult run_groups(std::size_t groups, std::size_t replicas,
                        std::size_t clients_per_group,
                        std::size_t payload_bytes, double warmup_s,
                        double duration_s, std::uint64_t seed) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("fig12_wal_" + std::to_string(::getpid()) + "_g" +
        std::to_string(groups)))
          .string();

  ShardedTcpClusterOptions opt;
  opt.groups = groups;
  opt.replicas = replicas;
  opt.pin_cores = true;
  opt.base.log_dir = dir;
  opt.base.max_batch_cmds = 16;  // the durable sweet spot from fig10

  ShardedTcpCluster cluster(opt, clock_rsm_factory(replicas),
                            [] { return std::make_unique<KvStore>(); });

  // Per-group key sets: scan "key-<i>" until every group owns kKeysPerGroup
  // keys under the cluster's own router. Payloads are pre-encoded once.
  constexpr std::size_t kKeysPerGroup = 16;
  std::vector<std::vector<std::string>> payloads(groups);
  for (std::size_t i = 0; payloads.back().size() < kKeysPerGroup ||
                          payloads.front().size() < kKeysPerGroup;
       ++i) {
    const std::string key = "key-" + std::to_string(i);
    const ShardId g = cluster.router().shard_of_key(key);
    if (payloads[g].size() < kKeysPerGroup) {
      payloads[g].push_back(KvRequest::sized_put(key, payload_bytes).encode());
    }
    bool done = true;
    for (const auto& p : payloads) done = done && p.size() >= kKeysPerGroup;
    if (done) break;
  }

  std::unordered_map<ClientId, std::unique_ptr<Completion>> completions;
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t c = 0; c < clients_per_group; ++c) {
      const ReplicaId home = static_cast<ReplicaId>(c % replicas);
      completions.emplace(
          make_sharded_client_id(static_cast<std::uint32_t>(g), home, c),
          std::make_unique<Completion>());
    }
  }
  cluster.set_reply_hook([&completions](ShardId, ReplicaId,
                                        const Command& cmd) {
    auto it = completions.find(cmd.client);
    if (it != completions.end()) it->second->complete(cmd.seq);
  });

  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> group_ops;
  for (std::size_t g = 0; g < groups; ++g) {
    group_ops.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  std::mutex lat_mu;
  LatencyStats lat;

  cluster.start();

  std::vector<std::thread> clients;
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t c = 0; c < clients_per_group; ++c) {
      clients.emplace_back([&, g, c] {
        const ReplicaId home = static_cast<ReplicaId>(c % replicas);
        const ClientId id =
            make_sharded_client_id(static_cast<std::uint32_t>(g), home, c);
        Rng rng(seed ^ id);
        LatencyStats local;
        std::uint64_t seq = 0;
        while (!stop.load(std::memory_order_acquire)) {
          Command cmd;
          cmd.client = id;
          cmd.seq = ++seq;
          cmd.payload = payloads[g][static_cast<std::size_t>(
              rng.uniform_int(0, payloads[g].size() - 1))];
          const auto t0 = std::chrono::steady_clock::now();
          cluster.group(static_cast<ShardId>(g)).submit(home, std::move(cmd));
          auto* comp = completions.at(id).get();
          if (!comp->wait_for_seq(seq, std::chrono::milliseconds(2000))) {
            break;  // stuck or shutting down
          }
          if (measuring.load(std::memory_order_relaxed)) {
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            local.add(ms);
            group_ops[g]->fetch_add(1, std::memory_order_relaxed);
          }
        }
        std::lock_guard<std::mutex> lk(lat_mu);
        lat.merge(local);
      });
    }
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(warmup_s));
  measuring.store(true);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  measuring.store(false);
  const auto t1 = std::chrono::steady_clock::now();

  stop.store(true);
  for (std::thread& t : clients) t.join();
  cluster.stop();
  std::filesystem::remove_all(dir);

  GroupsResult res;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  for (std::size_t g = 0; g < groups; ++g) {
    const double ops = static_cast<double>(group_ops[g]->load());
    res.per_group_cmds_per_sec.push_back(ops / secs);
    res.agg_cmds_per_sec += ops / secs;
  }
  if (!lat.empty()) {
    res.p50_ms = lat.percentile(50);
    res.p99_ms = lat.percentile(99);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  JsonResult jr("fig12_sharded_tcp");
  const long ncpu = ::sysconf(_SC_NPROCESSORS_ONLN);
  jr.add("host_cores", static_cast<std::uint64_t>(ncpu > 0 ? ncpu : 1));

  const std::size_t replicas = 3;
  const std::size_t clients_per_group = 8;
  if (!args.json) {
    std::printf("Figure 12: multi-group scaling, %zu-replica Clock-RSM "
                "groups over loopback\nTCP, durable WAL (group commit), "
                "batch 16, %zu closed-loop clients per group,\nkeys "
                "partitioned by kv_key_hash. Host: %ld core(s).\n\n",
                replicas, clients_per_group, ncpu);
  }

  Table t({"groups", "agg kcmds/s", "per-group kcmds/s", "p50 ms", "p99 ms",
           "speedup"});
  double base = 0.0;
  for (const std::size_t groups : {1u, 2u, 4u}) {
    const GroupsResult r =
        run_groups(groups, replicas, clients_per_group, /*payload=*/100,
                   /*warmup=*/0.5, /*duration=*/2.0, args.seed);
    const std::string prefix = "groups_" + std::to_string(groups) + "_";
    jr.add(prefix + "cmds_per_sec", r.agg_cmds_per_sec);
    jr.add(prefix + "p50_ms", r.p50_ms);
    jr.add(prefix + "p99_ms", r.p99_ms);
    std::string split;
    for (std::size_t g = 0; g < groups; ++g) {
      jr.add(prefix + "group_" + std::to_string(g) + "_cmds_per_sec",
             r.per_group_cmds_per_sec[g]);
      if (!split.empty()) split += "/";
      split += fmt_count(r.per_group_cmds_per_sec[g] / 1000.0, 1);
    }
    if (groups == 1) base = r.agg_cmds_per_sec;
    const double speedup = base > 0 ? r.agg_cmds_per_sec / base : 0.0;
    if (groups > 1) {
      jr.add("speedup_" + std::to_string(groups), speedup);
    }
    t.add_row({std::to_string(groups), fmt_count(r.agg_cmds_per_sec / 1000.0, 2),
               split, fmt_count(r.p50_ms, 2), fmt_count(r.p99_ms, 2),
               groups > 1 ? fmt_count(speedup, 2) + "x" : "-"});
  }

  if (args.json) {
    jr.print(std::cout);
    return 0;
  }
  t.print(std::cout);
  std::printf("\nShape to check: aggregate cmds/s grows with the group count "
              "while p50 stays\nflat — groups never synchronize, so each one "
              "brings a full commit pipeline.\nOn hosts with fewer cores than "
              "protocol threads the curve bends toward the\ncore count; the "
              "per-group split staying even is the routing sanity check.\n");
  return 0;
}
