// Ablation: clock synchronization quality vs Clock-RSM commit latency.
//
// Correctness never depends on skew (Section II-A); latency does, through
// the line-8 wait (a replica delays its PREPAREOK until its clock passes
// the command timestamp) and through stable-order waits. This sweep runs
// the balanced five-site workload at increasing skew bounds.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const LatencyMatrix m = ec2_matrix().submatrix({0, 1, 2, 3, 4});
  JsonResult jr("ablation_clock_skew");
  jr.add("seed", args.seed);
  if (!args.json) {
    std::printf("Ablation: clock skew bound vs Clock-RSM latency (balanced "
                "workload, five replicas; ms)\n\n");
  }

  Table t({"skew bound", "avg latency", "p95 latency"});
  for (const double skew_ms : {0.0, 2.0, 10.0, 50.0, 100.0, 250.0}) {
    LatencyExperimentOptions opt = paper_options(m, args.seed);
    opt.clock_skew_ms = skew_ms;
    opt.duration_s = 10.0;
    const auto result = run_latency_experiment(opt, clock_rsm_factory(m.size()));
    const LatencyStats all = result.aggregate();
    jr.add("skew_" + fmt_ms(skew_ms, 0) + "ms_avg_ms", all.mean());
    t.add_row({"±" + fmt_ms(skew_ms, 0) + "ms", fmt_ms(all.mean()),
               fmt_ms(all.percentile(95))});
  }
  if (args.json) {
    jr.print(std::cout);
    return 0;
  }
  t.print(std::cout);

  std::printf("\nExpected shape: flat while skew stays below one-way WAN "
              "latencies (NTP regime),\ndegrading once skew rivals them "
              "(clocks ahead force receivers to wait).\n");
  return 0;
}
