// Reproduces paper Figure 5: average and 95th-percentile commit latency at
// each of five replicas under an IMBALANCED workload — for each bar, clients
// issue requests to only that one replica. Leader of Paxos / Paxos-bcast at
// CA.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);

  const std::vector<std::size_t> sites = {0, 1, 2, 3, 4};  // CA VA IR JP SG
  const LatencyMatrix m = ec2_matrix().submatrix(sites);
  const ReplicaId leader = 0;  // CA

  if (!args.json) {
    std::printf("Figure 5: five replicas, imbalanced workload (clients at one "
                "replica per run), leader at CA\n");
    std::printf("(commit latency in ms at the active replica)\n\n");
  }

  struct Row {
    std::string label;
    std::vector<double> avg, p95;
  };
  std::vector<Row> rows = {{"Paxos", {}, {}},
                           {"Mencius-bcast", {}, {}},
                           {"Paxos-bcast", {}, {}},
                           {"Clock-RSM", {}, {}}};

  for (std::size_t active = 0; active < sites.size(); ++active) {
    LatencyExperimentOptions opt = paper_options(m, args.seed + active);
    opt.workload.active_replicas = {static_cast<ReplicaId>(active)};
    const auto runs = run_four_protocols(opt, leader);
    for (std::size_t p = 0; p < runs.size(); ++p) {
      const LatencyStats& s = runs[p].result.per_replica[active];
      rows[p].avg.push_back(s.mean());
      rows[p].p95.push_back(s.percentile(95));
    }
  }

  std::vector<std::string> headers = {"protocol"};
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::string site = ec2_site_name(sites[i]);
    if (static_cast<ReplicaId>(i) == leader) site += " (L)";
    headers.push_back(site + " avg");
    headers.push_back(site + " p95");
  }
  JsonResult jr("fig5_latency_5r_imbalanced");
  jr.add("seed", args.seed);
  Table t(headers);
  for (const Row& r : rows) {
    std::vector<std::string> cells = {r.label};
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const std::string prefix =
          metric_key(r.label) + "_" + metric_key(ec2_site_name(sites[i]));
      jr.add(prefix + "_avg_ms", r.avg[i]);
      jr.add(prefix + "_p95_ms", r.p95[i]);
      cells.push_back(fmt_ms(r.avg[i]));
      cells.push_back(fmt_ms(r.p95[i]));
    }
    t.add_row(std::move(cells));
  }
  print_result(args, jr, t);
  return 0;
}
