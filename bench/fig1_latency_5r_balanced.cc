// Reproduces paper Figure 1: average and 95th-percentile commit latency at
// each of five replicas {CA, VA, IR, JP, SG} under balanced workloads, with
// the Paxos / Paxos-bcast leader at (a) CA and (b) VA.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace crsm;
  using namespace crsm::bench;

  const std::vector<std::size_t> sites = {0, 1, 2, 3, 4};  // CA VA IR JP SG
  const LatencyMatrix m = ec2_matrix().submatrix(sites);

  for (const ReplicaId leader : {ReplicaId{0}, ReplicaId{1}}) {
    std::printf("\nFigure 1(%c): five replicas, balanced workload, leader at %s\n",
                leader == 0 ? 'a' : 'b', ec2_site_name(sites[leader]));
    std::printf("(commit latency in ms; avg and 95th percentile per replica)\n\n");
    const auto runs = run_four_protocols(paper_options(m), leader);
    print_latency_figure(runs, sites, leader);
  }
  return 0;
}
