// Read-scaling sweep for the stability-based local read path (the repo's
// "Figure 11": read fraction x replica count, Clock-RSM on the paper's EC2
// topologies). Writes pay a replicated commit at every replica, so write
// throughput is flat-to-falling as replicas are added; local reads execute
// only at the replica that receives them, so AGGREGATE read throughput
// grows with the replica count. The >= 90/10 mixes make the contrast
// sharpest: that is the acceptance shape to check (r5 reads/s > r3 reads/s
// at mix 0.9 and 0.95).
//
// Read latency is also reported: a local read waits roughly one CLOCKTIME
// round for its stability point (one-way max latency + delta), well under
// the write's commit latency on geo links.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "util/topology.h"

int main(int argc, char** argv) {
  using namespace crsm;
  using namespace crsm::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  JsonResult jr("fig11_read_scaling");
  jr.add("seed", args.seed);
  if (!args.json) {
    std::printf("Figure 11: read scaling, Clock-RSM, EC2 topologies, 40 "
                "closed-loop clients per replica\n\n");
  }

  Table t({"replicas", "read mix", "writes/s", "reads/s", "total ops/s",
           "write p50 ms", "read p50 ms", "read p95 ms"});
  for (const std::size_t n : {std::size_t{3}, std::size_t{5}}) {
    const LatencyMatrix m = n == 3 ? ec2_matrix().submatrix({0, 1, 2})
                                   : ec2_matrix().submatrix({0, 1, 2, 3, 4});
    for (const double mix : {0.0, 0.5, 0.9, 0.95}) {
      LatencyExperimentOptions opt = paper_options(m, args.seed);
      opt.warmup_s = 1.0;
      opt.duration_s = 10.0;
      opt.workload.read_fraction = mix;
      const LatencyExperimentResult r =
          run_latency_experiment(opt, clock_rsm_factory(n));

      const double writes_s =
          static_cast<double>(r.total_commands) / opt.duration_s;
      const double reads_s =
          static_cast<double>(r.total_reads) / opt.duration_s;
      const LatencyStats w = r.aggregate();
      const LatencyStats rd = r.aggregate_reads();

      const std::string key = "r" + std::to_string(n) + "_mix" +
                              std::to_string(static_cast<int>(mix * 100));
      jr.add(key + "_writes_per_sec", writes_s);
      jr.add(key + "_reads_per_sec", reads_s);
      jr.add(key + "_ops_per_sec", writes_s + reads_s);
      if (!w.empty()) jr.add(key + "_write_p50_ms", w.percentile(50));
      if (!rd.empty()) {
        jr.add(key + "_read_p50_ms", rd.percentile(50));
        jr.add(key + "_read_p95_ms", rd.percentile(95));
      }

      t.add_row({std::to_string(n),
                 std::to_string(static_cast<int>(mix * 100)) + "% reads",
                 fmt_count(writes_s), fmt_count(reads_s),
                 fmt_count(writes_s + reads_s),
                 w.empty() ? "-" : fmt_ms(w.percentile(50)),
                 rd.empty() ? "-" : fmt_ms(rd.percentile(50)),
                 rd.empty() ? "-" : fmt_ms(rd.percentile(95))});
    }
  }

  Table stage_t({"row", "stage", "count", "p50 us", "p99 us"});
  if (args.stage_breakdown) {
    // Supplemental TCP-runtime run (3 replicas, 90 % reads, loopback): the
    // simulated sweep above has no commit-pipeline tracing, so record the
    // read path's decomposition — stability wait vs serve — from the real
    // event-loop runtime alongside it.
    ThroughputOptions topt;
    topt.num_replicas = 3;
    topt.clients_per_replica = 16;
    topt.payload_bytes = 64;
    topt.warmup_s = 0.5;
    topt.duration_s = 2.0;
    topt.read_fraction = 0.9;
    topt.stage_breakdown = true;
    const ThroughputResult tr =
        run_tcp_throughput(topt, clock_rsm_factory(3));
    jr.add("tcp_mix90_ops_per_sec", tr.kops_per_sec * 1000.0);
    jr.add("tcp_mix90_reads_per_sec", tr.reads_per_sec);
    add_stage_breakdown(jr, "tcp_mix90_", tr.stages,
                        args.json ? nullptr : &stage_t,
                        "clock-rsm tcp 90% reads");
  }

  print_result(args, jr, t);
  if (args.stage_breakdown && !args.json) {
    std::printf("\nTCP-runtime stage breakdown (3 replicas, 90%% reads, "
                "loopback):\n");
    stage_t.print(std::cout);
  }
  if (!args.json) {
    std::printf("\nPaper shape to check: reads/s grows 3 -> 5 replicas at "
                "the 90%% and 95%% mixes\n(each added replica serves its own "
                "clients' reads locally), while writes/s\ndoes not.\n");
  }
  return 0;
}
