// crsm_node: one replica of a real TCP deployment.
//
// Hosts a NodeRuntime (any of the four protocols) given the cluster's full
// address table. Peers connect on the same port as clients; see
// docs/DEPLOYMENT.md for a 3-node walkthrough.
//
//   crsm_node --id 0 --peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//             [--protocol clockrsm|paxos|paxos-bcast|mencius] [--stats-every 5] \
//             [--log-dir DIR] [--checkpoint-every N] [--no-group-commit] \
//             [--io-backend epoll|uring] [--max-coalesce-bytes N] \
//             [--max-batch-cmds N] [--max-batch-bytes N] \
//             [--groups N] [--pin-cores] \
//             [--metrics-port P] [--trace-sample N] [--slow-ms MS]
//
// The listen address is peers[id]. Runs until SIGINT/SIGTERM, printing a
// periodic one-line metrics snapshot (sorted k=v pairs) to stderr.
//
// --groups N hosts N independent replica groups in this process (one event
// loop thread each; --pin-cores pins group g to core g). Group g listens on
// peers[id].port + g and dials peers at their base port + g, logs under
// --log-dir/group-<g>, serves /metrics on --metrics-port + g with every
// series labeled {group="g"}, and rejects client commands whose ShardRouter
// owner is another group (kClientRedirect). Drive it with crsm_client
// --servers (one endpoint per group). The stats line becomes one line per
// group, tagged crsm_node[id/gG].
//
// --metrics-port serves GET /metrics (Prometheus text exposition 0.0.4) and
// GET /metrics.json from the node's loop thread — one unified registry
// covering wire, WAL, protocol, KV, commit-pipeline stage histograms and
// event-loop pass profile (see docs/OPERATIONS.md for the series reference).
// --trace-sample N stamps every Nth origin command through the commit
// pipeline (0 disables tracing); --slow-ms prints a rate-limited per-stage
// breakdown for traced commands slower than MS milliseconds.
//
// With --log-dir the node is durable and restartable: commands are logged
// to DIR/wal.log (group-commit fsync batching unless --no-group-commit), a
// checkpoint of the state machine is written to DIR/checkpoint.bin every N
// committed commands (--checkpoint-every, 0 = never), and a restarted node
// recovers from checkpoint + WAL, then (Clock-RSM) catches up over TCP from
// live peers. See docs/OPERATIONS.md for the full walkthrough.
//
// --io-backend uring drives the node's event loop through io_uring
// (multishot recv, one submit per pass); on a kernel without io_uring the
// node logs a warning and runs on epoll. --max-coalesce-bytes bounds the
// per-pass wire coalescing budget (0 disables coalescing entirely).
//
// --max-batch-cmds N > 1 turns on protocol-level command batching: client
// writes arriving within one event-loop pass replicate as one batch
// envelope (one PREPARE, one ack round, one WAL record), cut early at N
// commands or --max-batch-bytes of payload. See docs/OPERATIONS.md for
// tuning guidance.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clockrsm/clock_rsm.h"
#include "harness/latency_experiment.h"
#include "kv/kv_store.h"
#include "net/event_loop.h"
#include "runtime/multi_group_node.h"
#include "runtime/node.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --id N --peers host:port,host:port,... \\\n"
               "          [--protocol clockrsm|paxos|paxos-bcast|mencius] "
               "[--stats-every SECONDS] \\\n"
               "          [--log-dir DIR] [--checkpoint-every N] "
               "[--no-group-commit] \\\n"
               "          [--io-backend epoll|uring] "
               "[--max-coalesce-bytes N] \\\n"
               "          [--max-batch-cmds N] [--max-batch-bytes N] \\\n"
               "          [--groups N] [--pin-cores] \\\n"
               "          [--metrics-port P] [--trace-sample N] "
               "[--slow-ms MS]\n",
               argv0);
  std::exit(2);
}

std::vector<crsm::TcpPeer> parse_peers(const std::string& arg) {
  std::vector<crsm::TcpPeer> peers;
  std::size_t start = 0;
  while (start <= arg.size()) {
    std::size_t comma = arg.find(',', start);
    if (comma == std::string::npos) comma = arg.size();
    const std::string entry = arg.substr(start, comma - start);
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad peer '%s' (want host:port)\n", entry.c_str());
      std::exit(2);
    }
    crsm::TcpPeer p;
    p.host = entry.substr(0, colon);
    p.port = static_cast<std::uint16_t>(std::stoul(entry.substr(colon + 1)));
    peers.push_back(std::move(p));
    start = comma + 1;
  }
  return peers;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crsm;

  ReplicaId id = kNoReplica;
  std::vector<TcpPeer> peers;
  std::string protocol = "clockrsm";
  int stats_every = 5;
  StorageOptions storage;
  net::IoBackend io_backend = net::IoBackend::kEpoll;
  std::size_t max_coalesce_bytes = 256 * 1024;
  std::size_t max_batch_cmds = 1;
  std::size_t max_batch_bytes = 256 * 1024;
  MultiGroupOptions mg;
  NodeObsOptions obs;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (a == "--id") {
        id = static_cast<ReplicaId>(std::stoul(next()));
      } else if (a == "--peers") {
        peers = parse_peers(next());
      } else if (a == "--protocol") {
        protocol = next();
      } else if (a == "--stats-every") {
        stats_every = std::atoi(next().c_str());
      } else if (a == "--log-dir") {
        storage.dir = next();
      } else if (a == "--checkpoint-every") {
        storage.checkpoint_every = std::stoull(next());
      } else if (a == "--no-group-commit") {
        storage.group_commit = false;
      } else if (a == "--io-backend") {
        const std::string b = next();
        if (!net::parse_io_backend(b, &io_backend)) {
          std::fprintf(stderr, "unknown io backend '%s' (epoll|uring)\n",
                       b.c_str());
          usage(argv[0]);
        }
      } else if (a == "--max-coalesce-bytes") {
        max_coalesce_bytes = std::stoull(next());
      } else if (a == "--max-batch-cmds") {
        max_batch_cmds = std::stoull(next());
        if (max_batch_cmds == 0) max_batch_cmds = 1;
      } else if (a == "--max-batch-bytes") {
        max_batch_bytes = std::stoull(next());
      } else if (a == "--groups") {
        mg.groups = std::stoull(next());
        if (mg.groups == 0) mg.groups = 1;
      } else if (a == "--pin-cores") {
        mg.pin_cores = true;
      } else if (a == "--metrics-port") {
        obs.metrics_http = true;
        obs.metrics_host = "0.0.0.0";
        obs.metrics_port = static_cast<std::uint16_t>(std::stoul(next()));
      } else if (a == "--trace-sample") {
        obs.trace_sample_every = static_cast<std::uint32_t>(std::stoul(next()));
      } else if (a == "--slow-ms") {
        obs.trace_slow_us = std::stoull(next()) * 1000;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", a.c_str());
        usage(argv[0]);
      }
    }
  } catch (const std::exception& e) {  // stoul/stod on malformed numbers
    std::fprintf(stderr, "bad argument: %s\n", e.what());
    usage(argv[0]);
  }
  if (id == kNoReplica || peers.empty() || id >= peers.size()) usage(argv[0]);

  const std::size_t n = peers.size();
  if (!storage.dir.empty() && protocol != "clockrsm") {
    // The other protocols would append to the WAL but have no replay or
    // catch-up path: a restart would silently diverge while paying the
    // full durability cost. Refuse rather than pretend.
    std::fprintf(stderr,
                 "--log-dir requires --protocol clockrsm (crash-restart "
                 "recovery is not wired for %s)\n",
                 protocol.c_str());
    return 2;
  }
  NodeRuntime::ProtocolFactory factory;
  if (protocol == "clockrsm") {
    ClockRsmOptions copt;
    // A durable node that reboots with prior state must refetch what it
    // missed before it resumes ordering.
    copt.catchup_on_recovery = !storage.dir.empty();
    factory = clock_rsm_factory(n, copt);
  } else if (protocol == "paxos") {
    factory = paxos_factory(n, 0, false);
  } else if (protocol == "paxos-bcast") {
    factory = paxos_factory(n, 0, true);
  } else if (protocol == "mencius") {
    factory = mencius_factory(n);
  } else {
    std::fprintf(stderr, "unknown protocol '%s'\n", protocol.c_str());
    usage(argv[0]);
  }

  NodeConfig cfg;
  cfg.id = id;
  cfg.transport.listen_host = peers[id].host;
  cfg.transport.listen_port = peers[id].port;
  cfg.transport.max_coalesce_bytes = max_coalesce_bytes;
  cfg.storage = storage;
  cfg.io_backend = io_backend;
  cfg.max_batch_cmds = max_batch_cmds;
  cfg.max_batch_bytes = max_batch_bytes;
  cfg.obs = obs;

  MultiGroupNode node(cfg, mg, factory,
                      [] { return std::make_unique<KvStore>(); });
  const std::size_t groups = node.num_groups();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  node.start(peers);
  // The banner names the backend actually running, not the one requested:
  // a uring request on a kernel without it has already fallen back (and
  // logged a warning) by this point.
  std::fprintf(stderr,
               "crsm_node: replica %u (%s) listening on %s:%u, %zu peers "
               "| io %s%s | coalesce %zu bytes | batch %zu cmds%s\n",
               id, protocol.c_str(), peers[id].host.c_str(),
               node.group(0).port(), n - 1,
               net::io_backend_name(node.group(0).io_backend()),
               node.group(0).io_fell_back() ? " (fell back from uring)" : "",
               max_coalesce_bytes, max_batch_cmds,
               groups > 1
                   ? (" | " + std::to_string(groups) + " groups (port stride)" +
                      (mg.pin_cores ? ", pinned" : ""))
                         .c_str()
                   : "");
  if (!storage.dir.empty()) {
    // One line per group: each has its own WAL dir and recovers on its own.
    for (std::size_t g = 0; g < groups; ++g) {
      const std::string dir =
          groups > 1 ? storage.dir + "/group-" + std::to_string(g)
                     : storage.dir;
      std::fprintf(stderr, "crsm_node[%u]: durable in %s (%s)%s\n", id,
                   dir.c_str(),
                   storage.group_commit ? "group commit" : "sync per append",
                   node.group(g).recovering()
                       ? ", recovering from prior state"
                       : "");
    }
  }
  if (obs.metrics_http) {
    for (std::size_t g = 0; g < groups; ++g) {
      std::fprintf(stderr, "crsm_node[%u]: metrics on http://%s:%u/metrics%s\n",
                   id, obs.metrics_host.c_str(), node.group(g).metrics_port(),
                   groups > 1 ? (" (group " + std::to_string(g) + ")").c_str()
                              : "");
    }
  }

  std::vector<std::uint64_t> last_executed(groups, 0);
  auto last = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const auto now = std::chrono::steady_clock::now();
    if (stats_every > 0 &&
        now - last >= std::chrono::seconds(stats_every)) {
      const double secs = std::chrono::duration<double>(now - last).count();
      // One unified registry snapshot per group in stable sorted k=v order:
      // wire, WAL, protocol (incl. reads served, catch-up rounds), KV, held
      // messages — greppable field-by-field across runs and across groups.
      // Single-group keeps the historic crsm_node[id] tag; multi-group tags
      // each line crsm_node[id/gG].
      for (std::size_t g = 0; g < groups; ++g) {
        const std::uint64_t exec = node.group(g).executed();
        const obs::Snapshot snap = node.group(g).metrics_snapshot();
        if (groups == 1) {
          std::fprintf(stderr, "crsm_node[%u]: %.0f cmds/s %s\n", id,
                       static_cast<double>(exec - last_executed[g]) / secs,
                       obs::to_kv_line(snap).c_str());
        } else {
          std::fprintf(stderr, "crsm_node[%u/g%zu]: %.0f cmds/s %s\n", id, g,
                       static_cast<double>(exec - last_executed[g]) / secs,
                       obs::to_kv_line(snap).c_str());
        }
        last_executed[g] = exec;
      }
      last = now;
    }
  }
  std::fprintf(stderr, "crsm_node[%u]: shutting down\n", id);
  node.stop();
  return 0;
}
