#!/usr/bin/env bash
# End-to-end kill -9 / restart smoke over the real binaries: boots a
# 3-process durable crsm_node cluster, drives client load, SIGKILLs one
# replica, restarts it from its --log-dir and drives load again — through
# the restarted replica, which only accepts submissions once recovery and
# catch-up complete. Exercises exactly the path docs/OPERATIONS.md
# documents; CI runs it against the Release build.
#
# usage: tools/kill_restart_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD=${1:-build}
NODE=$BUILD/tools/crsm_node
CLIENT=$BUILD/tools/crsm_client
[[ -x $NODE && -x $CLIENT ]] || { echo "build tools first: cmake --build $BUILD -j --target crsm_node crsm_client"; exit 2; }

WORK=$(mktemp -d /tmp/crsm_smoke.XXXXXX)
BASE=$(( 21000 + RANDOM % 20000 ))
PEERS=127.0.0.1:$BASE,127.0.0.1:$((BASE + 1)),127.0.0.1:$((BASE + 2))
declare -a PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  [[ ${KEEP_WORK:-0} = 1 ]] || rm -rf "$WORK"
}
trap cleanup EXIT

MBASE=$(( BASE + 100 ))  # metrics ports: MBASE..MBASE+2

start_node() {  # $1 = replica id; sets NODE_PID
  "$NODE" --id "$1" --peers "$PEERS" --log-dir "$WORK/node-$1" \
      --checkpoint-every 2000 --stats-every 2 \
      --metrics-port $(( MBASE + $1 )) \
      2>>"$WORK/node-$1.log" &
  NODE_PID=$!
}

scrape_metrics() {  # $1 = replica id, $2 = output file
  curl -fsS --max-time 5 "http://127.0.0.1:$(( MBASE + $1 ))/metrics" > "$2" \
    || { echo "metrics scrape of replica $1 failed"; return 1; }
  # Fail on malformed Prometheus text exposition: every non-comment line
  # must be `name{labels} value`, histograms must carry a +Inf bucket, and
  # the series the pipeline always touches must be present.
  python3 - "$2" <<'EOF'
import re, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "empty exposition"
series = set()
hist_types = set()
for ln in lines:
    if not ln:
        continue
    if ln.startswith("#"):
        m = re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$", ln)
        assert m, f"malformed comment line: {ln!r}"
        if m.group(1) == "TYPE" and ln.rstrip().endswith("histogram"):
            hist_types.add(ln.split()[2])
        continue
    m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? '
                 r'([0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|NaN)$', ln)
    assert m, f"malformed sample line: {ln!r}"
    series.add(m.group(1))
for h in hist_types:
    assert any(f'{h}_bucket' in ln and 'le="+Inf"' in ln for ln in lines), \
        f"histogram {h} lacks a +Inf bucket"
for required in ("crsm_executed_total", "crsm_storage_appends_total",
                 "crsm_transport_messages_sent_total"):
    assert required in series, f"missing series {required}"
print(f"  {sys.argv[1]}: {len(series)} series, {len(hist_types)} histograms, well-formed")
EOF
}

wait_for_port() {  # $1 = port
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.1
  done
  echo "port $1 never came up"; return 1
}

check_phase() {  # $1 = json file, $2 = phase name
  python3 - "$1" "$2" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
ops, errors = r["ops"], r["errors"]
print(f"{sys.argv[2]}: {ops} ops, {errors} errors, "
      f"{r['cmds_per_sec']:.0f} cmds/s, p50 {r['latency_p50_ms']:.2f} ms")
assert ops > 0, f"{sys.argv[2]}: no operation completed"
assert errors == 0, f"{sys.argv[2]}: client errors"
EOF
}

echo "== boot 3-node durable cluster (ports $BASE-$((BASE + 2)), state in $WORK)"
for i in 0 1 2; do start_node "$i"; PIDS[$i]=$NODE_PID; done
for i in 0 1 2; do wait_for_port $((BASE + i)); done

echo "== phase 1: drive load through replica 0"
"$CLIENT" --server "127.0.0.1:$BASE" --clients 4 --duration 2 --json > "$WORK/phase1.json"
check_phase "$WORK/phase1.json" "phase 1"

echo "== scrape /metrics from all replicas before the kill"
for i in 0 1 2; do scrape_metrics "$i" "$WORK/metrics-pre-$i.txt"; done

echo "== kill -9 replica 2"
kill -9 "${PIDS[2]}"
wait "${PIDS[2]}" 2>/dev/null || true
sleep 0.5

echo "== restart replica 2 from $WORK/node-2"
start_node 2; PIDS[2]=$NODE_PID
wait_for_port $((BASE + 2))

echo "== phase 2: drive load through the RESTARTED replica 2"
# Replica 2 defers client submissions until WAL replay + TCP catch-up
# finish, so completed ops here prove the whole recovery path.
"$CLIENT" --server "127.0.0.1:$((BASE + 2))" --clients 4 --duration 2 --json > "$WORK/phase2.json"
check_phase "$WORK/phase2.json" "phase 2"

grep -q "recovering from prior state" "$WORK/node-2.log" \
  || { echo "restarted node did not report recovery"; tail -5 "$WORK/node-2.log"; exit 1; }

echo "== scrape /metrics from the restarted replica"
scrape_metrics 2 "$WORK/metrics-post-2.txt"
# Counters reset on restart but phase 2 ran through replica 2, so its
# executed counter must be live again.
python3 - "$WORK/metrics-post-2.txt" <<'EOF'
import sys
for ln in open(sys.argv[1]):
    if ln.startswith("crsm_executed_total "):
        assert float(ln.split()[1]) > 0, "restarted replica executed nothing"
        break
else:
    sys.exit("restarted replica exports no crsm_executed_total")
EOF

echo "== smoke OK: killed replica rejoined and served traffic"
