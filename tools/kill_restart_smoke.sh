#!/usr/bin/env bash
# End-to-end kill -9 / restart smoke over the real binaries: boots a
# 3-process durable crsm_node cluster, drives client load, SIGKILLs one
# replica, restarts it from its --log-dir and drives load again — through
# the restarted replica, which only accepts submissions once recovery and
# catch-up complete. Exercises exactly the path docs/OPERATIONS.md
# documents; CI runs it against the Release build.
#
# usage: tools/kill_restart_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD=${1:-build}
NODE=$BUILD/tools/crsm_node
CLIENT=$BUILD/tools/crsm_client
[[ -x $NODE && -x $CLIENT ]] || { echo "build tools first: cmake --build $BUILD -j --target crsm_node crsm_client"; exit 2; }

WORK=$(mktemp -d /tmp/crsm_smoke.XXXXXX)
BASE=$(( 21000 + RANDOM % 20000 ))
PEERS=127.0.0.1:$BASE,127.0.0.1:$((BASE + 1)),127.0.0.1:$((BASE + 2))
declare -a PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  [[ ${KEEP_WORK:-0} = 1 ]] || rm -rf "$WORK"
}
trap cleanup EXIT

start_node() {  # $1 = replica id; sets NODE_PID
  "$NODE" --id "$1" --peers "$PEERS" --log-dir "$WORK/node-$1" \
      --checkpoint-every 2000 --stats-every 2 \
      2>>"$WORK/node-$1.log" &
  NODE_PID=$!
}

wait_for_port() {  # $1 = port
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.1
  done
  echo "port $1 never came up"; return 1
}

check_phase() {  # $1 = json file, $2 = phase name
  python3 - "$1" "$2" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
ops, errors = r["ops"], r["errors"]
print(f"{sys.argv[2]}: {ops} ops, {errors} errors, "
      f"{r['cmds_per_sec']:.0f} cmds/s, p50 {r['latency_p50_ms']:.2f} ms")
assert ops > 0, f"{sys.argv[2]}: no operation completed"
assert errors == 0, f"{sys.argv[2]}: client errors"
EOF
}

echo "== boot 3-node durable cluster (ports $BASE-$((BASE + 2)), state in $WORK)"
for i in 0 1 2; do start_node "$i"; PIDS[$i]=$NODE_PID; done
for i in 0 1 2; do wait_for_port $((BASE + i)); done

echo "== phase 1: drive load through replica 0"
"$CLIENT" --server "127.0.0.1:$BASE" --clients 4 --duration 2 --json > "$WORK/phase1.json"
check_phase "$WORK/phase1.json" "phase 1"

echo "== kill -9 replica 2"
kill -9 "${PIDS[2]}"
wait "${PIDS[2]}" 2>/dev/null || true
sleep 0.5

echo "== restart replica 2 from $WORK/node-2"
start_node 2; PIDS[2]=$NODE_PID
wait_for_port $((BASE + 2))

echo "== phase 2: drive load through the RESTARTED replica 2"
# Replica 2 defers client submissions until WAL replay + TCP catch-up
# finish, so completed ops here prove the whole recovery path.
"$CLIENT" --server "127.0.0.1:$((BASE + 2))" --clients 4 --duration 2 --json > "$WORK/phase2.json"
check_phase "$WORK/phase2.json" "phase 2"

grep -q "recovering from prior state" "$WORK/node-2.log" \
  || { echo "restarted node did not report recovery"; tail -5 "$WORK/node-2.log"; exit 1; }

echo "== smoke OK: killed replica rejoined and served traffic"
