#!/usr/bin/env bash
# End-to-end kill -9 / restart smoke over the real binaries: boots a
# 3-process durable cluster where every process hosts TWO replica groups
# (--groups 2: one loop thread, WAL dir and metrics namespace per group,
# port stride base+g), drives sharded client load across both groups,
# SIGKILLs one process — taking one replica of EVERY group down at once —
# restarts it from its --log-dir and drives load again through the
# restarted process, which only accepts submissions once recovery and
# catch-up complete on each group. Exercises exactly the path
# docs/OPERATIONS.md documents; CI runs it against the Release build.
#
# usage: tools/kill_restart_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD=${1:-build}
NODE=$BUILD/tools/crsm_node
CLIENT=$BUILD/tools/crsm_client
[[ -x $NODE && -x $CLIENT ]] || { echo "build tools first: cmake --build $BUILD -j --target crsm_node crsm_client"; exit 2; }

GROUPS_N=2
WORK=$(mktemp -d /tmp/crsm_smoke.XXXXXX)
# Port stride: group g of process p listens at its base port + g, so base
# ports (and metrics base ports) are spaced GROUPS_N apart.
BASE=$(( 21000 + RANDOM % 20000 ))
P0=$BASE; P1=$(( BASE + GROUPS_N )); P2=$(( BASE + 2 * GROUPS_N ))
PEERS=127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2
declare -a PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  [[ ${KEEP_WORK:-0} = 1 ]] || rm -rf "$WORK"
}
trap cleanup EXIT

MBASE=$(( BASE + 100 ))  # process p serves group g at MBASE + p*GROUPS_N + g

base_port() { echo $(( BASE + $1 * GROUPS_N )); }

start_node() {  # $1 = replica id; sets NODE_PID
  "$NODE" --id "$1" --peers "$PEERS" --log-dir "$WORK/node-$1" \
      --groups $GROUPS_N \
      --checkpoint-every 2000 --stats-every 2 \
      --metrics-port $(( MBASE + $1 * GROUPS_N )) \
      2>>"$WORK/node-$1.log" &
  NODE_PID=$!
}

scrape_metrics() {  # $1 = replica id, $2 = group, $3 = output file
  curl -fsS --max-time 5 \
      "http://127.0.0.1:$(( MBASE + $1 * GROUPS_N + $2 ))/metrics" > "$3" \
    || { echo "metrics scrape of replica $1 group $2 failed"; return 1; }
  # Fail on malformed Prometheus text exposition: every non-comment line
  # must be `name{labels} value`, histograms must carry a +Inf bucket, the
  # series the pipeline always touches must be present, and every sample
  # must carry exactly this group's label — each group endpoint exports a
  # disjoint label set, so one Prometheus can scrape them all.
  python3 - "$3" "$2" <<'EOF'
import re, sys
lines = open(sys.argv[1]).read().splitlines()
group = sys.argv[2]
assert lines, "empty exposition"
series = set()
hist_types = set()
groups_seen = set()
for ln in lines:
    if not ln:
        continue
    if ln.startswith("#"):
        m = re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$", ln)
        assert m, f"malformed comment line: {ln!r}"
        if m.group(1) == "TYPE" and ln.rstrip().endswith("histogram"):
            hist_types.add(ln.split()[2])
        continue
    m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? '
                 r'([0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|NaN)$', ln)
    assert m, f"malformed sample line: {ln!r}"
    series.add(m.group(1))
    g = re.search(r'group="([^"]*)"', m.group(2) or "")
    assert g, f"sample without a group label: {ln!r}"
    groups_seen.add(g.group(1))
for h in hist_types:
    assert any(f'{h}_bucket' in ln and 'le="+Inf"' in ln for ln in lines), \
        f"histogram {h} lacks a +Inf bucket"
for required in ("crsm_executed_total", "crsm_storage_appends_total",
                 "crsm_transport_messages_sent_total", "crsm_group"):
    assert required in series, f"missing series {required}"
assert groups_seen == {group}, \
    f"expected only group={group!r} series, saw {sorted(groups_seen)}"
print(f"  {sys.argv[1]}: {len(series)} series, {len(hist_types)} histograms, "
      f"well-formed, all labeled group=\"{group}\"")
EOF
}

wait_for_port() {  # $1 = port
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.1
  done
  echo "port $1 never came up"; return 1
}

check_phase() {  # $1 = json file, $2 = phase name
  python3 - "$1" "$2" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
ops, errors = r["ops"], r["errors"]
print(f"{sys.argv[2]}: {ops} ops, {errors} errors, "
      f"{r['cmds_per_sec']:.0f} cmds/s, p50 {r['latency_p50_ms']:.2f} ms "
      f"({r.get('groups', 1)} groups)")
assert ops > 0, f"{sys.argv[2]}: no operation completed"
assert errors == 0, f"{sys.argv[2]}: client errors"
EOF
}

servers_at() {  # $1 = replica id: that process's group endpoints, comma-joined
  local p; p=$(base_port "$1")
  echo "127.0.0.1:$p,127.0.0.1:$(( p + 1 ))"
}

echo "== boot 3-process x $GROUPS_N-group durable cluster (base ports $P0/$P1/$P2, state in $WORK)"
for i in 0 1 2; do start_node "$i"; PIDS[$i]=$NODE_PID; done
for i in 0 1 2; do
  for g in 0 1; do wait_for_port $(( $(base_port $i) + g )); done
done

echo "== phase 1: drive sharded load through process 0 (both groups)"
"$CLIENT" --servers "$(servers_at 0)" --clients 4 --duration 2 --json > "$WORK/phase1.json"
check_phase "$WORK/phase1.json" "phase 1"

echo "== scrape /metrics from every group endpoint before the kill"
for i in 0 1 2; do
  for g in 0 1; do scrape_metrics "$i" "$g" "$WORK/metrics-pre-$i-g$g.txt"; done
done

echo "== kill -9 process 2 (one replica of BOTH groups at once)"
kill -9 "${PIDS[2]}"
wait "${PIDS[2]}" 2>/dev/null || true
sleep 0.5

echo "== restart process 2 from $WORK/node-2"
start_node 2; PIDS[2]=$NODE_PID
for g in 0 1; do wait_for_port $(( $(base_port 2) + g )); done

echo "== phase 2: drive sharded load through the RESTARTED process 2"
# Each group of process 2 defers client submissions until its WAL replay +
# TCP catch-up finish, so completed ops here prove recovery on both groups.
"$CLIENT" --servers "$(servers_at 2)" --clients 4 --duration 2 --json > "$WORK/phase2.json"
check_phase "$WORK/phase2.json" "phase 2"

REC=$(grep -c "recovering from prior state" "$WORK/node-2.log" || true)
[[ $REC -ge $GROUPS_N ]] \
  || { echo "restarted process reported recovery on $REC/$GROUPS_N groups"; tail -8 "$WORK/node-2.log"; exit 1; }

echo "== scrape /metrics from both groups of the restarted process"
for g in 0 1; do scrape_metrics 2 "$g" "$WORK/metrics-post-2-g$g.txt"; done
# Counters reset on restart but phase 2 ran through process 2, so each
# group's executed counter must be live again.
for g in 0 1; do
  python3 - "$WORK/metrics-post-2-g$g.txt" "$g" <<'EOF'
import re, sys
for ln in open(sys.argv[1]):
    m = re.match(r'^crsm_executed_total(\{[^}]*\})? ([0-9.eE+]+)$', ln)
    if m:
        assert float(m.group(2)) > 0, \
            f"restarted group {sys.argv[2]} executed nothing"
        break
else:
    sys.exit(f"restarted group {sys.argv[2]} exports no crsm_executed_total")
EOF
done

echo "== smoke OK: killed process rejoined and served traffic on both groups"
