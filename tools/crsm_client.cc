// crsm_client: closed-loop load driver for a crsm_node cluster.
//
//   crsm_client --server host:port [--clients K] [--duration S]
//               [--payload BYTES] [--read-fraction F] [--seed N] [--json]
//               [--servers h:p,h:p,...] [--key-space N]
//
// Opens K connections to one node, each running a closed loop of KV ops
// (one outstanding request per connection) and reports throughput plus
// client-observed latency percentiles. With --read-fraction F each op is a
// kClientRead get with probability F and a kClientRequest put otherwise;
// reads are served from the connected replica's local stability point (any
// replica, not just a leader) and are reported separately from writes.
//
// --servers drives a multi-group deployment (crsm_node --groups): one
// endpoint per replica group, in group order. Each client becomes a
// ShardedSyncClient routing every op by its key's ShardRouter owner, so
// the endpoint count must equal the cluster's group count. --key-space N
// spreads ops uniformly over N keys (key-0..key-<N-1>) instead of the
// single default key — required for sharded runs (one key would load one
// group) and useful for contention-free single-group runs too. Sharded
// runs default to 16 keys per group when --key-space is not given.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "kv/kv_store.h"
#include "net/sync_client.h"
#include "obs/metrics_http.h"
#include "shard/sharded_client.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/workload.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --server host:port [--clients K] [--duration S]\n"
               "          [--payload BYTES] [--read-fraction F] [--seed N]\n"
               "          [--json] [--stage-breakdown host:port]\n"
               "          [--servers h:p,h:p,... (one per group)] "
               "[--key-space N]\n",
               argv0);
  std::exit(2);
}

// Pulls the commit-pipeline fields out of the node's flat /metrics.json
// object: every "key": number pair whose key starts with crsm_stage_,
// crsm_commit_ or crsm_read_ and carries a _count/_p50_us/_p99_us suffix.
std::vector<std::pair<std::string, double>> extract_stage_fields(
    const std::string& json) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t pos = 0;
  while ((pos = json.find('"', pos)) != std::string::npos) {
    const std::size_t end = json.find('"', pos + 1);
    if (end == std::string::npos) break;
    const std::string key = json.substr(pos + 1, end - pos - 1);
    pos = end + 1;
    const std::size_t colon = json.find(':', pos);
    if (colon == std::string::npos) break;
    const bool stage_key = key.rfind("crsm_stage_", 0) == 0 ||
                           key.rfind("crsm_commit_", 0) == 0 ||
                           key.rfind("crsm_read_", 0) == 0;
    const bool wanted_suffix =
        key.size() > 7 && (key.compare(key.size() - 6, 6, "_count") == 0 ||
                           key.compare(key.size() - 7, 7, "_p50_us") == 0 ||
                           key.compare(key.size() - 7, 7, "_p99_us") == 0);
    if (stage_key && wanted_suffix) {
      out.emplace_back(key, std::strtod(json.c_str() + colon + 1, nullptr));
    }
    pos = colon + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crsm;

  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::vector<ShardEndpoint> servers;  // --servers: one endpoint per group
  std::size_t key_space = 0;           // 0 = default (1, or 16/group sharded)
  std::size_t clients = 8;
  double duration_s = 5.0;
  std::size_t payload = 64;
  double read_fraction = 0.0;
  std::uint64_t seed = 42;
  bool json = false;
  std::string metrics_host;
  std::uint16_t metrics_port = 0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (a == "--server") {
        const std::string entry = next();
        const std::size_t colon = entry.rfind(':');
        if (colon == std::string::npos) usage(argv[0]);
        host = entry.substr(0, colon);
        port = static_cast<std::uint16_t>(std::stoul(entry.substr(colon + 1)));
      } else if (a == "--servers") {
        const std::string arg = next();
        std::size_t start = 0;
        while (start <= arg.size()) {
          std::size_t comma = arg.find(',', start);
          if (comma == std::string::npos) comma = arg.size();
          const std::string entry = arg.substr(start, comma - start);
          const std::size_t colon = entry.rfind(':');
          if (colon == std::string::npos) usage(argv[0]);
          servers.push_back(ShardEndpoint{
              entry.substr(0, colon),
              static_cast<std::uint16_t>(std::stoul(entry.substr(colon + 1)))});
          start = comma + 1;
        }
      } else if (a == "--key-space") {
        key_space = std::stoul(next());
      } else if (a == "--clients") {
        clients = std::stoul(next());
      } else if (a == "--duration") {
        duration_s = std::stod(next());
      } else if (a == "--payload") {
        payload = std::stoul(next());
      } else if (a == "--read-fraction") {
        read_fraction = std::stod(next());
        if (read_fraction < 0.0 || read_fraction > 1.0) usage(argv[0]);
      } else if (a == "--seed") {
        seed = std::stoull(next());
      } else if (a == "--json") {
        json = true;
      } else if (a == "--stage-breakdown") {
        // The node's --metrics-port address: after the run, scrape
        // /metrics.json and report the server-side stage histograms next to
        // the client-observed latency.
        const std::string entry = next();
        const std::size_t colon = entry.rfind(':');
        if (colon == std::string::npos) usage(argv[0]);
        metrics_host = entry.substr(0, colon);
        metrics_port =
            static_cast<std::uint16_t>(std::stoul(entry.substr(colon + 1)));
      } else {
        std::fprintf(stderr, "unknown flag %s\n", a.c_str());
        usage(argv[0]);
      }
    }
  } catch (const std::exception& e) {  // stoul/stod on malformed numbers
    std::fprintf(stderr, "bad argument: %s\n", e.what());
    usage(argv[0]);
  }
  if (port == 0 && servers.empty()) usage(argv[0]);

  // Disambiguate client ids across concurrently running crsm_client
  // processes: the node routes replies by (client, seq), so two drivers
  // reusing index 0..K-1 would consume each other's replies. Folding the
  // pid into the per-process index base keeps ids unique in practice.
  const std::size_t index_base =
      static_cast<std::size_t>(::getpid() % 0xFFFF) * 0x10000;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> errors{0};
  std::mutex stats_mu;
  LatencyStats latency;
  LatencyStats read_latency;

  // Pre-encode one put and one get payload per key. --key-space 0 keeps the
  // historic single hot key for unsharded runs; sharded runs need a spread
  // (every key lives on exactly one group) and default to 16 keys per group.
  std::size_t nkeys = key_space;
  if (nkeys == 0) nkeys = servers.size() > 1 ? 16 * servers.size() : 1;
  std::vector<std::string> put_payloads;
  std::vector<std::string> get_payloads;
  put_payloads.reserve(nkeys);
  get_payloads.reserve(nkeys);
  for (std::size_t k = 0; k < nkeys; ++k) {
    const std::string key = nkeys == 1 ? "key" : "key-" + std::to_string(k);
    put_payloads.push_back(KvRequest::sized_put(key, payload).encode());
    KvRequest r;
    r.op = KvOp::kGet;
    r.key = key;
    get_payloads.push_back(r.encode());
  }

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        // One connection per group (sharded) or to the one --server node.
        std::unique_ptr<ShardedSyncClient> sharded;
        std::unique_ptr<net::SyncClient> single;
        if (!servers.empty()) {
          sharded = std::make_unique<ShardedSyncClient>(servers);
        } else {
          single = std::make_unique<net::SyncClient>(host, port);
        }
        const ClientId id = make_client_id(
            sharded ? sharded->group(0).server_id() : single->server_id(),
            index_base + c);
        Rng rng(seed + c);
        LatencyStats local;
        LatencyStats local_reads;
        std::uint64_t seq = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const bool is_read =
              read_fraction > 0.0 && rng.bernoulli(read_fraction);
          const std::size_t k =
              nkeys == 1 ? 0 : rng.uniform_int(0, nkeys - 1);
          Command cmd;
          cmd.client = id;
          cmd.seq = ++seq;
          cmd.payload = is_read ? get_payloads[k] : put_payloads[k];
          const auto t0 = std::chrono::steady_clock::now();
          if (is_read) {
            (void)(sharded ? sharded->read_call(cmd, /*timeout_ms=*/10'000)
                           : single->read_call(cmd, /*timeout_ms=*/10'000));
          } else {
            (void)(sharded ? sharded->call(cmd, /*timeout_ms=*/10'000)
                           : single->call(cmd, /*timeout_ms=*/10'000));
          }
          const auto t1 = std::chrono::steady_clock::now();
          const double ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
          if (is_read) {
            local_reads.add(ms);
            reads.fetch_add(1, std::memory_order_relaxed);
          } else {
            local.add(ms);
            writes.fetch_add(1, std::memory_order_relaxed);
          }
        }
        std::lock_guard<std::mutex> lk(stats_mu);
        latency.merge(local);
        read_latency.merge(local_reads);
      } catch (const std::exception& e) {
        errors.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "client %zu: %s\n", c, e.what());
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::uint64_t total_ops = writes.load() + reads.load();
  const double cmds_per_sec = static_cast<double>(total_ops) / secs;

  std::vector<std::pair<std::string, double>> stage_fields;
  if (metrics_port != 0) {
    try {
      stage_fields = extract_stage_fields(
          obs::http_get(metrics_host, metrics_port, "/metrics.json"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "stage-breakdown scrape failed: %s\n", e.what());
    }
  }
  std::string server_desc;
  if (servers.empty()) {
    server_desc = host + ":" + std::to_string(port);
  } else {
    for (const ShardEndpoint& e : servers) {
      if (!server_desc.empty()) server_desc += ",";
      server_desc += e.host + ":" + std::to_string(e.port);
    }
  }
  if (json) {
    bench::JsonResult jr("crsm_client");
    jr.add("server", server_desc);
    jr.add("groups",
           static_cast<std::uint64_t>(servers.empty() ? 1 : servers.size()));
    jr.add("key_space", static_cast<std::uint64_t>(nkeys));
    jr.add("clients", static_cast<std::uint64_t>(clients));
    jr.add("payload_bytes", static_cast<std::uint64_t>(payload));
    jr.add("read_fraction", read_fraction);
    jr.add("duration_s", secs);
    jr.add("ops", total_ops);
    jr.add("writes", writes.load());
    jr.add("reads", reads.load());
    jr.add("cmds_per_sec", cmds_per_sec);
    jr.add("reads_per_sec", static_cast<double>(reads.load()) / secs);
    jr.add("errors", errors.load());
    jr.add("latency_mean_ms", latency.empty() ? 0.0 : latency.mean());
    jr.add("latency_p50_ms", latency.empty() ? 0.0 : latency.percentile(50));
    jr.add("latency_p95_ms", latency.empty() ? 0.0 : latency.percentile(95));
    jr.add("latency_p99_ms", latency.empty() ? 0.0 : latency.percentile(99));
    jr.add("read_latency_mean_ms",
           read_latency.empty() ? 0.0 : read_latency.mean());
    jr.add("read_latency_p50_ms",
           read_latency.empty() ? 0.0 : read_latency.percentile(50));
    jr.add("read_latency_p95_ms",
           read_latency.empty() ? 0.0 : read_latency.percentile(95));
    jr.add("read_latency_p99_ms",
           read_latency.empty() ? 0.0 : read_latency.percentile(99));
    for (const auto& [key, value] : stage_fields) {
      jr.add("server_" + key, value);
    }
    jr.print(std::cout);
  } else {
    std::printf("crsm_client: %llu ops (%llu writes, %llu reads) in %.2fs -> "
                "%.1f ops/s (%zu clients, %zuB payload)\n",
                static_cast<unsigned long long>(total_ops),
                static_cast<unsigned long long>(writes.load()),
                static_cast<unsigned long long>(reads.load()), secs,
                cmds_per_sec, clients, payload);
    if (!latency.empty()) {
      std::printf("write ms: mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
                  latency.mean(), latency.percentile(50), latency.percentile(95),
                  latency.percentile(99), latency.max());
    }
    if (!read_latency.empty()) {
      std::printf("read ms:  mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
                  read_latency.mean(), read_latency.percentile(50),
                  read_latency.percentile(95), read_latency.percentile(99),
                  read_latency.max());
    }
    if (!stage_fields.empty()) {
      std::printf("server commit-pipeline (sampled, cumulative):\n");
      for (const auto& [key, value] : stage_fields) {
        std::printf("  %s = %.1f\n", key.c_str(), value);
      }
    }
    if (errors.load() > 0) {
      std::printf("errors: %llu\n", static_cast<unsigned long long>(errors.load()));
    }
  }
  return errors.load() == 0 ? 0 : 1;
}
