// dst_swarm: deterministic simulation-testing swarm driver.
//
// Fans generated fault scenarios (src/dst) across worker processes, one
// seed per scenario, and prints a pass/fail table. Every failure is written
// to --out as a replayable spec (plus the run trace), greedily shrunk to a
// locally minimal fault schedule first, and the table shows the exact
// replay command line. Worker processes also isolate the swarm from a
// crashing scenario: a dead worker marks its remaining seeds CRASH instead
// of taking the swarm down.
//
// Usage:
//   dst_swarm [--seeds N] [--start-seed S] [--protocol P] [--jobs W]
//             [--no-shrink] [--verify-determinism] [--inject-bug sync-noop]
//             [--read-heavy] [--batching] [--out DIR]
//   dst_swarm --seed S [--protocol P] [...]     replay one generated seed
//   dst_swarm --spec FILE [...]                 replay a written spec file
//
// --protocol: clockrsm | paxos | paxos-bcast | mencius | consensus | all
// --inject-bug sync-noop: harness self-test — log fsync becomes a no-op, so
//   power-loss crashes lose acknowledged state; the swarm MUST fail with
//   durability violations (and shrink them to a handful of crash events).
// --read-heavy: every Clock-RSM scenario carries a read-heavy workload
//   (read fraction in [0.5, 0.95]) for dedicated stale-read hunting;
//   without it roughly a third of Clock-RSM seeds are read-heavy anyway.
// --batching: every replicating-protocol scenario runs with protocol-level
//   command batching (max_batch_cmds in {4, 8, 16}) for dedicated
//   batch-boundary hunting; without it roughly 30% of seeds batch anyway.
// Exit status: 0 iff every scenario passed.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dst/generator.h"
#include "dst/runner.h"
#include "dst/scenario.h"
#include "dst/shrink.h"

using namespace crsm;
using namespace crsm::dst;

namespace {

struct Args {
  std::uint64_t seeds = 20;
  std::uint64_t start_seed = 1;
  std::string protocol = "all";
  std::size_t jobs = 0;  // 0 = auto
  bool shrink = true;
  bool verify_determinism = false;
  bool inject_sync_noop = false;
  bool read_heavy = false;
  bool batching = false;
  std::string out_dir = "dst-failures";
  // Single-run modes.
  bool have_single_seed = false;
  std::uint64_t single_seed = 0;
  std::string spec_file;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "dst_swarm: %s (try --help)\n", msg.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const char* raw, const char* flag) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    usage_error(std::string("bad value for ") + flag + ": '" + raw + "'");
  }
  return v;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) usage_error(std::string(what) + " needs a value");
      return argv[++i];
    };
    if (flag == "--seeds") {
      a.seeds = parse_u64(next("--seeds"), "--seeds");
    } else if (flag == "--start-seed") {
      a.start_seed = parse_u64(next("--start-seed"), "--start-seed");
    } else if (flag == "--protocol") {
      a.protocol = next("--protocol");
    } else if (flag == "--jobs") {
      a.jobs = parse_u64(next("--jobs"), "--jobs");
    } else if (flag == "--no-shrink") {
      a.shrink = false;
    } else if (flag == "--verify-determinism") {
      a.verify_determinism = true;
    } else if (flag == "--inject-bug") {
      const std::string bug = next("--inject-bug");
      if (bug != "sync-noop") usage_error("unknown --inject-bug '" + bug + "'");
      a.inject_sync_noop = true;
    } else if (flag == "--read-heavy") {
      a.read_heavy = true;
    } else if (flag == "--batching") {
      a.batching = true;
    } else if (flag == "--out") {
      a.out_dir = next("--out");
    } else if (flag == "--seed") {
      a.have_single_seed = true;
      a.single_seed = parse_u64(next("--seed"), "--seed");
    } else if (flag == "--spec") {
      a.spec_file = next("--spec");
    } else if (flag == "--help" || flag == "-h") {
      std::printf(
          "usage: dst_swarm [--seeds N] [--start-seed S] [--protocol P]\n"
          "                 [--jobs W] [--no-shrink] [--verify-determinism]\n"
          "                 [--inject-bug sync-noop] [--read-heavy]\n"
          "                 [--batching] [--out DIR]\n"
          "       dst_swarm --seed S [--protocol P]\n"
          "       dst_swarm --spec FILE\n"
          "protocols: clockrsm paxos paxos-bcast mencius consensus all\n");
      std::exit(0);
    } else {
      usage_error("unknown flag " + flag);
    }
  }
  if (a.protocol != "all") {
    Protocol p;
    if (!protocol_from_name(a.protocol, &p)) {
      usage_error("unknown protocol '" + a.protocol + "'");
    }
  }
  return a;
}

GeneratorOptions generator_options(const Args& a) {
  GeneratorOptions g;
  if (a.protocol != "all") {
    Protocol p;
    protocol_from_name(a.protocol, &p);
    g.protocol = p;
  }
  g.inject_sync_noop_bug = a.inject_sync_noop;
  g.read_heavy = a.read_heavy;
  g.batching = a.batching;
  return g;
}

// Scenario category for the timing summary: which fault families the
// schedule exercises (crash, netsplit, clock, noise — joined with '+'),
// with a "/reads" suffix for read-heavy Clock-RSM schedules. Derived from
// the spec so replays and generated seeds classify identically.
std::string scenario_category(const ScenarioSpec& spec) {
  bool crash = false, split = false, clock = false, noise = false;
  for (const FaultEvent& f : spec.faults) {
    switch (f.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRestart:
        crash = true;
        break;
      case FaultKind::kPartition:
      case FaultKind::kHeal:
      case FaultKind::kOneWay:
      case FaultKind::kOneWayHeal:
        split = true;
        break;
      case FaultKind::kClockJump:
      case FaultKind::kClockDrift:
        clock = true;
        break;
      case FaultKind::kDelaySpike:
      case FaultKind::kDelayClear:
      case FaultKind::kDupStart:
      case FaultKind::kDupStop:
      case FaultKind::kDropStart:
      case FaultKind::kDropStop:
        noise = true;
        break;
    }
  }
  std::string cat;
  auto append = [&](const char* part) {
    if (!cat.empty()) cat += '+';
    cat += part;
  };
  if (crash) append("crash");
  if (split) append("netsplit");
  if (clock) append("clock");
  if (noise) append("noise");
  if (cat.empty()) cat = "faultless";
  if (spec.read_fraction > 0.0) cat += "/reads";
  if (spec.max_batch_cmds > 1) cat += "/batch";
  return cat;
}

// Runs one scenario with the swarm's options; returns the (possibly shrunk)
// failing state. `category` is empty on pass.
struct Outcome {
  bool ok = true;
  std::string category;
  std::string detail;
  ScenarioSpec spec;
  RunResult run;
};

Outcome run_one(const ScenarioSpec& spec, const Args& a) {
  Outcome out;
  out.spec = spec;
  out.run = run_scenario(spec);
  if (out.run.ok && a.verify_determinism) {
    const RunResult again = run_scenario(spec);
    if (again.trace != out.run.trace) {
      out.ok = false;
      out.category = "determinism";
      out.detail = "two runs of the same spec produced different traces";
      // Make the written artifact diagnosable: record the violation and
      // keep BOTH traces (the divergence between them is the evidence).
      out.run.ok = false;
      out.run.failure = "determinism: two runs of the same spec produced "
                        "different traces";
      out.run.trace += "--- second run of the same spec (should be "
                       "byte-identical) ---\n" +
                       again.trace;
      return out;
    }
  }
  if (out.run.ok) return out;
  out.ok = false;
  if (a.shrink) {
    ShrinkResult s = shrink_scenario(spec);
    out.spec = std::move(s.spec);
    out.run = std::move(s.run);
  }
  out.category = failure_category(out.run.failure);
  out.detail = out.run.failure;
  return out;
}

// Writes the failing spec + trace under out_dir; returns the spec path.
std::string write_failure(const Outcome& out, const Args& a, std::uint64_t seed) {
  std::error_code ec;
  std::filesystem::create_directories(a.out_dir, ec);
  const std::string base = a.out_dir + "/seed-" + std::to_string(seed);
  {
    std::ofstream f(base + ".spec");
    f << "# " << out.run.failure << '\n'
      << "# replay: dst_swarm --spec " << base << ".spec\n"
      << out.spec.encode();
  }
  {
    std::ofstream f(base + ".trace");
    f << out.run.trace;
  }
  return base + ".spec";
}

int run_single_spec(const ScenarioSpec& spec, const Args& a, std::uint64_t seed) {
  const Outcome out = run_one(spec, a);
  std::fputs(out.run.trace.c_str(), stdout);
  if (out.ok) {
    std::printf("PASS %s\n", spec.summary().c_str());
    return 0;
  }
  std::printf("FAIL %s\n  %s\n", out.spec.summary().c_str(), out.detail.c_str());
  if (a.shrink && out.spec.faults.size() != spec.faults.size()) {
    std::printf("shrunk: %zu -> %zu fault events\n", spec.faults.size(),
                out.spec.faults.size());
  }
  const std::string path = write_failure(out, a, seed);
  std::printf("spec written to %s\n", path.c_str());
  return 1;
}

// One worker: handles every seed s in [start, start+count) with
// s %% stripe == lane, writing one result line per seed into `fd` as soon
// as the seed finishes — so a scenario that crashes the worker loses only
// the seeds that never ran, not the results already produced.
void worker_main(int fd, const Args& a, std::size_t lane, std::size_t stripe) {
  const GeneratorOptions gopt = generator_options(a);
  for (std::uint64_t k = 0; k < a.seeds; ++k) {
    if (k % stripe != lane) continue;
    const std::uint64_t seed = a.start_seed + k;
    const ScenarioSpec spec = generate_scenario(seed, gopt);
    const auto t0 = std::chrono::steady_clock::now();
    const Outcome out = run_one(spec, a);
    // Per-seed wall-time: the full cost of the seed as the swarm paid it,
    // including determinism re-runs and shrinking on failure.
    const std::uint64_t wall_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    std::string spec_path = "-";
    if (!out.ok) spec_path = write_failure(out, a, seed);
    std::ostringstream line;
    line << "R " << seed << ' ' << protocol_name(out.spec.protocol) << ' '
         << (out.ok ? 1 : 0) << ' ' << out.run.completed_ops << ' '
         << out.spec.faults.size() << ' ' << wall_ms << ' '
         << scenario_category(spec) << ' ' << (out.ok ? "-" : out.category)
         << ' ' << spec_path << '\n';
    const std::string s = line.str();
    std::size_t off = 0;
    while (off < s.size()) {
      const ssize_t w = ::write(fd, s.data() + off, s.size() - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
  }
  ::close(fd);
  std::_Exit(0);
}

struct SeedRow {
  std::uint64_t seed = 0;
  std::string protocol;
  bool ok = false;
  std::uint64_t ops = 0;
  std::uint64_t faults = 0;
  std::uint64_t wall_ms = 0;
  std::string scenario;
  std::string category;
  std::string spec_path;
  bool reported = false;
};

int run_swarm(const Args& a) {
  std::size_t jobs = a.jobs;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 4 : hw;
  }
  jobs = std::max<std::size_t>(1, std::min<std::size_t>(jobs, a.seeds));

  std::vector<pid_t> pids(jobs);
  std::vector<int> read_fds(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      std::perror("pipe");
      return 2;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 2;
    }
    if (pid == 0) {
      ::close(pipefd[0]);
      for (std::size_t prev = 0; prev < w; ++prev) ::close(read_fds[prev]);
      worker_main(pipefd[1], a, w, jobs);
    }
    ::close(pipefd[1]);
    pids[w] = pid;
    read_fds[w] = pipefd[0];
  }

  std::map<std::uint64_t, SeedRow> rows;
  for (std::uint64_t k = 0; k < a.seeds; ++k) {
    SeedRow row;
    row.seed = a.start_seed + k;
    rows[row.seed] = row;
  }

  bool worker_crashed = false;
  for (std::size_t w = 0; w < jobs; ++w) {
    std::string buf;
    char chunk[4096];
    for (;;) {
      const ssize_t r = ::read(read_fds[w], chunk, sizeof chunk);
      if (r <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(r));
    }
    ::close(read_fds[w]);
    int status = 0;
    ::waitpid(pids[w], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) worker_crashed = true;

    std::istringstream in(buf);
    std::string tag;
    while (in >> tag) {
      if (tag != "R") break;
      SeedRow row;
      int ok = 0;
      in >> row.seed >> row.protocol >> ok >> row.ops >> row.faults >>
          row.wall_ms >> row.scenario >> row.category >> row.spec_path;
      row.ok = ok != 0;
      row.reported = true;
      rows[row.seed] = row;
    }
  }

  std::size_t passed = 0, failed = 0, crashed = 0;
  std::printf("%-8s %-12s %-7s %6s %7s %7s %-22s %s\n", "seed", "protocol",
              "result", "ops", "faults", "ms", "scenario", "detail");
  for (const auto& [seed, row] : rows) {
    if (!row.reported) {
      ++crashed;
      std::printf("%-8llu %-12s %-7s %6s %7s %7s %-22s worker died; replay: dst_swarm --seed %llu%s\n",
                  static_cast<unsigned long long>(seed), "?", "CRASH", "-", "-",
                  "-", "-", static_cast<unsigned long long>(seed),
                  a.protocol == "all" ? "" : (" --protocol " + a.protocol).c_str());
      continue;
    }
    if (row.ok) {
      ++passed;
      std::printf("%-8llu %-12s %-7s %6llu %7llu %7llu %-22s\n",
                  static_cast<unsigned long long>(seed), row.protocol.c_str(),
                  "PASS", static_cast<unsigned long long>(row.ops),
                  static_cast<unsigned long long>(row.faults),
                  static_cast<unsigned long long>(row.wall_ms),
                  row.scenario.c_str());
    } else {
      ++failed;
      std::printf("%-8llu %-12s %-7s %6llu %7llu %7llu %-22s %s; replay: dst_swarm --spec %s  (or --seed %llu%s%s)\n",
                  static_cast<unsigned long long>(seed), row.protocol.c_str(),
                  "FAIL", static_cast<unsigned long long>(row.ops),
                  static_cast<unsigned long long>(row.faults),
                  static_cast<unsigned long long>(row.wall_ms),
                  row.scenario.c_str(),
                  row.category.c_str(), row.spec_path.c_str(),
                  static_cast<unsigned long long>(seed),
                  a.protocol == "all" ? "" : " --protocol ",
                  a.protocol == "all" ? "" : a.protocol.c_str());
    }
  }

  // Scenario-category timing rollup: where the swarm's wall-clock went.
  struct CatStat {
    std::size_t seeds = 0, failures = 0;
    std::uint64_t total_ms = 0, max_ms = 0;
  };
  std::map<std::string, CatStat> cats;
  for (const auto& [seed, row] : rows) {
    if (!row.reported) continue;
    CatStat& c = cats[row.scenario];
    ++c.seeds;
    if (!row.ok) ++c.failures;
    c.total_ms += row.wall_ms;
    c.max_ms = std::max(c.max_ms, row.wall_ms);
  }
  if (!cats.empty()) {
    std::printf("\nscenario-category timing:\n");
    std::printf("%-22s %6s %6s %9s %8s %8s\n", "category", "seeds", "fails",
                "total ms", "mean ms", "max ms");
    for (const auto& [name, c] : cats) {
      std::printf("%-22s %6zu %6zu %9llu %8.0f %8llu\n", name.c_str(), c.seeds,
                  c.failures, static_cast<unsigned long long>(c.total_ms),
                  static_cast<double>(c.total_ms) /
                      static_cast<double>(c.seeds),
                  static_cast<unsigned long long>(c.max_ms));
    }
  }

  std::printf("\n%zu/%llu passed", passed,
              static_cast<unsigned long long>(a.seeds));
  if (failed) std::printf(", %zu FAILED (specs in %s/)", failed, a.out_dir.c_str());
  if (crashed) std::printf(", %zu CRASHED", crashed);
  std::printf("\n");
  return failed == 0 && crashed == 0 && !worker_crashed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);

  if (!a.spec_file.empty()) {
    std::ifstream f(a.spec_file);
    if (!f) {
      std::fprintf(stderr, "dst_swarm: cannot open %s\n", a.spec_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << f.rdbuf();
    ScenarioSpec spec;
    try {
      spec = ScenarioSpec::decode(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dst_swarm: %s\n", e.what());
      return 2;
    }
    return run_single_spec(spec, a, spec.seed);
  }

  if (a.have_single_seed) {
    const ScenarioSpec spec =
        generate_scenario(a.single_seed, generator_options(a));
    std::fputs(spec.encode().c_str(), stdout);
    return run_single_spec(spec, a, a.single_seed);
  }

  return run_swarm(a);
}
