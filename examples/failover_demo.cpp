// Failure handling end to end (paper Section V): a replica crashes, the
// failure detector triggers reconfiguration, the survivors keep committing,
// and the recovered replica replays its log and reintegrates.
//
// Build & run:  ./build/examples/failover_demo
#include <cstdio>
#include <memory>

#include "clockrsm/clock_rsm.h"
#include "kv/kv_store.h"
#include "sim/sim_world.h"
#include "util/topology.h"

using namespace crsm;

namespace {

ClockRsmReplica& replica(SimWorld& w, ReplicaId r) {
  return static_cast<ClockRsmReplica&>(w.protocol(r));
}

void show_status(SimWorld& w, const char* what) {
  std::printf("\n--- %s (t = %.1f ms) ---\n", what, us_to_ms(w.sim().now()));
  for (ReplicaId r = 0; r < w.num_replicas(); ++r) {
    if (w.crashed(r)) {
      std::printf("  replica %u: CRASHED\n", r);
      continue;
    }
    auto& p = replica(w, r);
    std::printf("  replica %u: epoch %llu, config size %zu, executed %zu, "
                "digest %016llx\n",
                r, static_cast<unsigned long long>(p.epoch()),
                p.config().size(), w.execution(r).size(),
                static_cast<unsigned long long>(
                    w.state_machine(r).state_digest()));
  }
}

void put(SimWorld& w, ReplicaId at, ClientId client, std::uint64_t seq,
         const std::string& key, const std::string& value) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.payload = KvRequest{KvOp::kPut, key, value}.encode();
  w.submit(at, c);
}

}  // namespace

int main() {
  SimWorldOptions opts;
  opts.matrix = LatencyMatrix::uniform(3, 15.0);  // three sites, 15 ms one-way
  opts.seed = 7;
  opts.clock_skew_ms = 2.0;

  ClockRsmOptions proto;
  proto.reconfig_enabled = true;        // failure detector + Algorithm 3
  proto.fd_timeout_us = 500'000;        // suspect after 500 ms of silence
  proto.fd_check_interval_us = 100'000;

  std::vector<ReplicaId> spec = {0, 1, 2};
  SimWorld world(
      opts,
      [&](ProtocolEnv& env, ReplicaId) {
        return std::make_unique<ClockRsmReplica>(env, spec, proto);
      },
      [] { return std::make_unique<KvStore>(); });
  world.start();

  put(world, 0, 1, 1, "answer", "42");
  put(world, 1, 2, 1, "city", "Lausanne");
  world.sim().run_until(ms_to_us(300.0));
  show_status(world, "healthy cluster after two writes");

  std::printf("\n*** crashing replica 2 ***\n");
  world.crash(2);
  world.sim().run_until(ms_to_us(2'500.0));
  show_status(world, "after failure detection and reconfiguration");

  put(world, 0, 1, 2, "during-outage", "still-available");
  world.sim().run_until(ms_to_us(3'000.0));
  show_status(world, "survivors keep committing");

  std::printf("\n*** restarting replica 2 (log survives, soft state lost) ***\n");
  world.restart(2);
  world.sim().run_until(ms_to_us(9'000.0));
  show_status(world, "after recovery and reintegration");

  put(world, 2, 3, 1, "back", "online");
  world.sim().run_until(ms_to_us(10'000.0));
  show_status(world, "rejoined replica serves clients again");

  const bool digests_match =
      world.state_machine(0).state_digest() == world.state_machine(2).state_digest();
  std::printf("\nresult: replica 2 %s the cluster state\n",
              digests_match ? "converged with" : "DIVERGED from");
  return digests_match ? 0 : 1;
}
