// Scenario runner: a small CLI over the simulation harness for custom
// experiments beyond the paper's fixed figures.
//
// Usage:
//   scenario_runner [--protocol clockrsm|paxos|paxos-bcast|mencius]
//                   [--sites CA,VA,IR,...]      (default CA,VA,IR,JP,SG)
//                   [--leader SITE]             (paxos modes; default best)
//                   [--clients N]               (per site, default 40)
//                   [--imbalanced SITE]         (clients at one site only)
//                   [--duration SECONDS]        (default 15)
//                   [--seed N] [--skew MS] [--jitter MS]
//                   [--csv]                     (emit per-site CSV rows)
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/latency_model.h"
#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "util/topology.h"

using namespace crsm;

namespace {

int site_index(const std::string& name) {
  for (std::size_t s = 0; s < kNumEc2Sites; ++s) {
    if (name == ec2_site_name(s)) return static_cast<int>(s);
  }
  return -1;
}

std::vector<std::size_t> parse_sites(const std::string& arg) {
  std::vector<std::size_t> sites;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string tok =
        arg.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!tok.empty()) {
      const int s = site_index(tok);
      if (s < 0) {
        std::fprintf(stderr, "unknown site '%s'\n", tok.c_str());
        std::exit(1);
      }
      sites.push_back(static_cast<std::size_t>(s));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return sites;
}

}  // namespace

int main(int argc, char** argv) {
  std::string protocol = "clockrsm";
  std::vector<std::size_t> sites = {0, 1, 2, 3, 4};
  int leader = -1;
  int imbalanced = -1;
  LatencyExperimentOptions opt;
  opt.workload.clients_per_replica = 40;
  opt.duration_s = 15.0;
  opt.warmup_s = 1.5;
  opt.clock_skew_ms = 2.0;
  bool csv = false;

  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    auto next = [&]() -> std::string {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(1);
      }
      return argv[++a];
    };
    if (flag == "--protocol") {
      protocol = next();
    } else if (flag == "--sites") {
      sites = parse_sites(next());
    } else if (flag == "--leader") {
      leader = site_index(next());
    } else if (flag == "--clients") {
      opt.workload.clients_per_replica = std::stoul(next());
    } else if (flag == "--imbalanced") {
      imbalanced = site_index(next());
    } else if (flag == "--duration") {
      opt.duration_s = std::stod(next());
    } else if (flag == "--seed") {
      opt.seed = std::stoull(next());
    } else if (flag == "--skew") {
      opt.clock_skew_ms = std::stod(next());
    } else if (flag == "--jitter") {
      opt.jitter_ms = std::stod(next());
    } else if (flag == "--csv") {
      csv = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
  }

  if (sites.size() < 3) {
    std::fprintf(stderr, "need at least 3 sites\n");
    return 1;
  }
  opt.matrix = ec2_matrix().submatrix(sites);
  const std::size_t n = sites.size();

  // Map global site choices to group-local indices.
  auto local_index = [&sites](int global) -> int {
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (sites[i] == static_cast<std::size_t>(global)) return static_cast<int>(i);
    }
    return -1;
  };
  if (imbalanced >= 0) {
    const int li = local_index(imbalanced);
    if (li < 0) {
      std::fprintf(stderr, "--imbalanced site not in --sites\n");
      return 1;
    }
    opt.workload.active_replicas = {static_cast<ReplicaId>(li)};
  }
  ReplicaId leader_local = 0;
  if (leader >= 0) {
    const int li = local_index(leader);
    if (li < 0) {
      std::fprintf(stderr, "--leader site not in --sites\n");
      return 1;
    }
    leader_local = static_cast<ReplicaId>(li);
  } else {
    leader_local =
        static_cast<ReplicaId>(LatencyModel(opt.matrix).best_leader_paxos_bcast());
  }

  SimWorld::ProtocolFactory factory;
  if (protocol == "clockrsm") {
    factory = clock_rsm_factory(n);
  } else if (protocol == "paxos") {
    factory = paxos_factory(n, leader_local, false);
  } else if (protocol == "paxos-bcast") {
    factory = paxos_factory(n, leader_local, true);
  } else if (protocol == "mencius") {
    factory = mencius_factory(n);
  } else {
    std::fprintf(stderr, "unknown protocol %s\n", protocol.c_str());
    return 1;
  }

  const LatencyExperimentResult r = run_latency_experiment(opt, factory);

  if (csv) {
    std::printf("site,count,avg_ms,p50_ms,p95_ms,p99_ms,max_ms\n");
    for (std::size_t i = 0; i < n; ++i) {
      const LatencyStats& s = r.per_replica[i];
      std::printf("%s,%zu,%.2f,%.2f,%.2f,%.2f,%.2f\n", ec2_site_name(sites[i]),
                  s.count(), s.mean(), s.percentile(50), s.percentile(95),
                  s.percentile(99), s.max());
    }
    return 0;
  }

  std::printf("%s over {%s}%s, %zu clients/site, %.0fs simulated, "
              "%llu commands, %llu messages\n\n",
              r.protocol.c_str(), group_name(sites).c_str(),
              protocol.rfind("paxos", 0) == 0
                  ? (std::string(", leader ") + ec2_site_name(sites[leader_local]))
                        .c_str()
                  : "",
              opt.workload.clients_per_replica, opt.duration_s,
              static_cast<unsigned long long>(r.total_commands),
              static_cast<unsigned long long>(r.messages_sent));
  Table t({"site", "ops", "avg ms", "p50 ms", "p95 ms", "p99 ms"});
  for (std::size_t i = 0; i < n; ++i) {
    const LatencyStats& s = r.per_replica[i];
    t.add_row({ec2_site_name(sites[i]), std::to_string(s.count()),
               fmt_ms(s.mean()), fmt_ms(s.percentile(50)),
               fmt_ms(s.percentile(95)), fmt_ms(s.percentile(99))});
  }
  t.print(std::cout);
  return 0;
}
