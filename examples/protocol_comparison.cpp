// Protocol playground: pick any subset of the paper's EC2 sites and compare
// analytical commit latency (Table II formulas) with the simulator for all
// four protocols.
//
// Build & run:  ./build/examples/protocol_comparison CA VA IR JP SG
//               ./build/examples/protocol_comparison CA IR BR
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/latency_model.h"
#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "util/topology.h"

using namespace crsm;

int main(int argc, char** argv) {
  // Parse site names (default: the paper's five-replica deployment).
  std::vector<std::size_t> sites;
  for (int a = 1; a < argc; ++a) {
    bool found = false;
    for (std::size_t s = 0; s < kNumEc2Sites; ++s) {
      if (std::strcmp(argv[a], ec2_site_name(s)) == 0) {
        sites.push_back(s);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown site '%s' (use CA VA IR JP SG AU BR)\n",
                   argv[a]);
      return 1;
    }
  }
  if (sites.empty()) sites = {0, 1, 2, 3, 4};
  if (sites.size() < 3) {
    std::fprintf(stderr, "need at least 3 sites\n");
    return 1;
  }

  const LatencyMatrix m = ec2_matrix().submatrix(sites);
  LatencyModel model(m);
  const std::size_t leader = model.best_leader_paxos_bcast();
  const std::size_t n = sites.size();

  std::printf("Deployment {%s}; best Paxos leader: %s\n\n",
              group_name(sites).c_str(), ec2_site_name(sites[leader]));

  // Analytical prediction (balanced workload).
  std::printf("Analytical commit latency (Table II, balanced; ms):\n\n");
  Table a({"replica", "Paxos", "Paxos-bcast", "Mencius [lo,hi]", "Clock-RSM"});
  for (std::size_t i = 0; i < n; ++i) {
    const auto [lo, hi] = model.mencius_bcast_balanced(i);
    a.add_row({std::string(ec2_site_name(sites[i])) + (i == leader ? " (L)" : ""),
               fmt_ms(model.paxos(leader, i)),
               fmt_ms(model.paxos_bcast_precise(leader, i)),
               "[" + fmt_ms(lo) + "," + fmt_ms(hi) + "]",
               fmt_ms(model.clock_rsm_balanced(i))});
  }
  a.print(std::cout);

  // Simulation (paper workload, shortened).
  LatencyExperimentOptions opt;
  opt.matrix = m;
  opt.duration_s = 8.0;
  opt.warmup_s = 1.0;
  opt.clock_skew_ms = 2.0;

  std::printf("\nSimulated average commit latency (40 clients/site; ms):\n\n");
  Table s({"replica", "Paxos", "Paxos-bcast", "Mencius-bcast", "Clock-RSM"});
  const auto paxos = run_latency_experiment(
      opt, paxos_factory(n, static_cast<ReplicaId>(leader), false));
  const auto pbcast = run_latency_experiment(
      opt, paxos_factory(n, static_cast<ReplicaId>(leader), true));
  const auto mencius = run_latency_experiment(opt, mencius_factory(n));
  const auto clock = run_latency_experiment(opt, clock_rsm_factory(n));
  for (std::size_t i = 0; i < n; ++i) {
    s.add_row({std::string(ec2_site_name(sites[i])) + (i == leader ? " (L)" : ""),
               fmt_ms(paxos.per_replica[i].mean()),
               fmt_ms(pbcast.per_replica[i].mean()),
               fmt_ms(mencius.per_replica[i].mean()),
               fmt_ms(clock.per_replica[i].mean())});
  }
  s.print(std::cout);
  return 0;
}
