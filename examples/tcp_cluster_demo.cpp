// TCP cluster demo: boots a 3-replica Clock-RSM cluster on loopback
// sockets (TcpCluster — the same runtime crsm_node deploys across
// machines), commits commands from every replica, reads a value back
// through a real client socket, and shows that all replicas converge to
// the same state digest.
//
//   ./build/examples/tcp_cluster_demo
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "harness/latency_experiment.h"
#include "kv/kv_store.h"
#include "net/sync_client.h"
#include "runtime/tcp_cluster.h"
#include "workload/workload.h"

using namespace crsm;

namespace {

Command put(ClientId client, std::uint64_t seq, const std::string& key,
            const std::string& value) {
  Command c;
  c.client = client;
  c.seq = seq;
  KvRequest r;
  r.op = KvOp::kPut;
  r.key = key;
  r.value = value;
  c.payload = r.encode();
  return c;
}

}  // namespace

int main() {
  TcpCluster cluster(3, clock_rsm_factory(3),
                     [] { return std::make_unique<KvStore>(); });
  std::atomic<int> replies{0};
  cluster.set_reply_hook([&](ReplicaId, const Command&) { ++replies; });
  cluster.start();
  std::printf("3-replica Clock-RSM cluster on 127.0.0.1 ports %u/%u/%u\n",
              cluster.port(0), cluster.port(1), cluster.port(2));

  // Submit one command at each replica (multi-leader: every replica
  // originates commands; no forwarding to a leader).
  for (ReplicaId r = 0; r < 3; ++r) {
    cluster.submit(r, put(make_client_id(r, 0), 1, "city-" + std::to_string(r),
                          "replica-" + std::to_string(r)));
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (replies.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf("committed %d commands via in-process submits\n", replies.load());

  // Talk to replica 2 the way crsm_client does: a real TCP connection
  // speaking kClientRequest/kClientReply frames.
  net::SyncClient client("127.0.0.1", cluster.port(2));
  const std::string ok =
      client.call(put(make_client_id(client.server_id(), 9), 1, "greeting",
                      "hello over TCP"),
                  /*timeout_ms=*/5000);
  std::printf("socket client PUT -> \"%s\" (server replica %u)\n", ok.c_str(),
              client.server_id());

  // Every replica must reach the same state — wait for the non-origin
  // replicas to finish executing the socket client's command too.
  const auto all_executed = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((cluster.executed(0) < 4 || cluster.executed(1) < 4 ||
          cluster.executed(2) < 4) &&
         std::chrono::steady_clock::now() < all_executed) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::uint64_t d0 = cluster.node(0).state_digest();
  const std::uint64_t d1 = cluster.node(1).state_digest();
  const std::uint64_t d2 = cluster.node(2).state_digest();
  std::printf("state digests: %016llx %016llx %016llx -> %s\n",
              static_cast<unsigned long long>(d0),
              static_cast<unsigned long long>(d1),
              static_cast<unsigned long long>(d2),
              (d0 == d1 && d1 == d2) ? "AGREE" : "DIVERGED");

  const TransportStats s = cluster.stats();
  std::printf("wire: %llu msgs, %llu bytes, %llu encodes (encode-once: "
              "%.2f msgs/encode)\n",
              static_cast<unsigned long long>(s.messages_sent),
              static_cast<unsigned long long>(s.bytes_sent),
              static_cast<unsigned long long>(s.encode_calls),
              s.encode_calls ? static_cast<double>(s.messages_sent) /
                                   static_cast<double>(s.encode_calls)
                             : 0.0);
  cluster.stop();
  return (d0 == d1 && d1 == d2) ? 0 : 1;
}
