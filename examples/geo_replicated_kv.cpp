// Geo-replicated key-value service: the paper's five-data-center deployment
// under a realistic balanced workload, comparing the user-visible commit
// latency of all four protocols at every site.
//
// Build & run:  ./build/examples/geo_replicated_kv [seconds]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/latency_experiment.h"
#include "harness/report.h"
#include "util/topology.h"

using namespace crsm;

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;

  const std::vector<std::size_t> sites = {0, 1, 2, 3, 4};  // CA VA IR JP SG
  LatencyExperimentOptions opt;
  opt.matrix = ec2_matrix().submatrix(sites);
  opt.workload.clients_per_replica = 40;
  opt.workload.payload_bytes = 64;
  opt.duration_s = seconds;
  opt.warmup_s = 1.0;
  opt.clock_skew_ms = 2.0;
  opt.jitter_ms = 0.5;

  std::printf("Geo-replicated KV store across %zu EC2 data centers, "
              "%zu clients/site, %.0fs simulated\n\n",
              sites.size(), opt.workload.clients_per_replica, seconds);

  struct Entry {
    const char* label;
    SimWorld::ProtocolFactory factory;
  };
  const std::size_t n = sites.size();
  const std::vector<Entry> protocols = {
      {"Clock-RSM", clock_rsm_factory(n)},
      {"Paxos-bcast (leader VA)", paxos_factory(n, 1, true)},
      {"Paxos (leader VA)", paxos_factory(n, 1, false)},
      {"Mencius-bcast", mencius_factory(n)},
  };

  Table t({"protocol", "site", "avg ms", "p50 ms", "p95 ms", "p99 ms", "ops"});
  for (const Entry& e : protocols) {
    const LatencyExperimentResult r = run_latency_experiment(opt, e.factory);
    for (std::size_t i = 0; i < n; ++i) {
      const LatencyStats& s = r.per_replica[i];
      t.add_row({i == 0 ? e.label : "", ec2_site_name(sites[i]),
                 fmt_ms(s.mean()), fmt_ms(s.percentile(50)),
                 fmt_ms(s.percentile(95)), fmt_ms(s.percentile(99)),
                 std::to_string(s.count())});
    }
  }
  t.print(std::cout);

  std::printf("\nReading the table: Clock-RSM keeps latency uniform across "
              "sites because every\nreplica commits via its own majority; "
              "leader-based protocols privilege the\nleader site and tax "
              "everyone else with a forwarding hop.\n");
  return 0;
}
