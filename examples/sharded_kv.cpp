// Sharded KV: partition the key space across two independent Clock-RSM
// replica groups and watch commands route, commit and stay isolated.
//
// Build & run:  ./build/examples/sharded_kv
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "clockrsm/clock_rsm.h"
#include "kv/kv_store.h"
#include "shard/sharded_cluster.h"
#include "util/topology.h"

using namespace crsm;

int main() {
  // 1. Describe one replica group: the paper's CA / VA / IR EC2 sites.
  //    Every group uses the same three-site topology.
  ShardedClusterOptions opts;
  opts.num_shards = 2;
  opts.world.matrix = ec2_matrix().submatrix({0, 1, 2});
  opts.world.seed = 1;
  opts.world.clock_skew_ms = 2.0;

  // 2. Build the cluster: each group runs Clock-RSM over its own KvStore.
  std::vector<ReplicaId> spec = {0, 1, 2};
  ShardedCluster cluster(
      opts,
      [&spec](ProtocolEnv& env, ReplicaId) {
        return std::make_unique<ClockRsmReplica>(env, spec);
      },
      [] { return std::make_unique<KvStore>(); });

  // 3. Observe commits cluster-wide; the hook also reports which group
  //    committed the command.
  cluster.set_commit_hook([](ShardId s, ReplicaId r, const Command& cmd,
                             Timestamp ts, bool local_origin) {
    if (!local_origin) return;
    const KvRequest req = KvRequest::decode(cmd.payload);
    std::printf("  shard %u replica %u committed %s=%s (ts %s)\n", s, r,
                req.key.c_str(), req.value.c_str(), ts.to_string().c_str());
  });

  cluster.start();

  // 4. Submit writes; the router hashes each key to its owning group.
  const std::vector<std::pair<std::string, std::string>> writes = {
      {"user:42", "alice"}, {"user:43", "bob"},
      {"cart:42", "book"},  {"cart:43", "pen"},
  };
  std::printf("routing %zu writes across %zu groups:\n", writes.size(),
              cluster.num_shards());
  ClientId client = 1;
  for (const auto& [key, value] : writes) {
    Command cmd;
    cmd.client = client++;
    cmd.seq = 1;
    cmd.payload = KvRequest{KvOp::kPut, key, value}.encode();
    const ShardId s = cluster.submit(/*home=*/0, cmd);
    std::printf("  %s -> shard %u\n", key.c_str(), s);
  }

  // 5. Run half a simulated second and inspect each group's state: groups
  //    hold disjoint key sets, so their digests evolve independently.
  std::printf("commits:\n");
  cluster.run_until(ms_to_us(500.0));

  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    auto& kv = static_cast<KvStore&>(cluster.shard(s).state_machine(0));
    std::printf("shard %u holds %zu keys, digest %016llx, committed %llu\n", s,
                kv.size(),
                static_cast<unsigned long long>(cluster.shard_digest(s)),
                static_cast<unsigned long long>(cluster.committed(s)));
  }

  // 6. Reads go to the key's owning group.
  for (const auto& [key, value] : writes) {
    const ShardId s = cluster.router().shard_of_key(key);
    auto& kv = static_cast<KvStore&>(cluster.shard(s).state_machine(0));
    const std::string* got = kv.get(key);
    std::printf("read %s from shard %u: %s\n", key.c_str(), s,
                got ? got->c_str() : "<none>");
  }
  return 0;
}
