// Real threads, not simulation: run the replicated KV store on an
// in-process multithreaded cluster and measure throughput, like the paper's
// local-cluster experiment (Section VI-D).
//
// Build & run:  ./build/examples/local_cluster_throughput [payload_bytes]
#include <cstdio>
#include <cstdlib>

#include "harness/latency_experiment.h"
#include "runtime/throughput.h"

using namespace crsm;

int main(int argc, char** argv) {
  const std::size_t payload = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;

  ThroughputOptions opt;
  opt.num_replicas = 3;
  opt.clients_per_replica = 16;
  opt.payload_bytes = payload;
  opt.warmup_s = 0.3;
  opt.duration_s = 1.5;

  std::printf("Three replica threads, %zu closed-loop clients/replica, "
              "%zuB commands\n\n",
              opt.clients_per_replica, payload);

  struct Entry {
    const char* label;
    RtCluster::ProtocolFactory factory;
  };
  const Entry entries[] = {
      {"Clock-RSM", clock_rsm_factory(opt.num_replicas)},
      {"Paxos (leader r0)", paxos_factory(opt.num_replicas, 0, false)},
      {"Mencius-bcast", mencius_factory(opt.num_replicas)},
  };
  for (const Entry& e : entries) {
    const ThroughputResult r = run_throughput(opt, e.factory);
    std::printf("%-18s %8.1f kops/s wall, %8.1f kops/s cluster-equivalent, "
                "busiest replica %4.1f%% of CPU, %.1f MB/s wire\n",
                e.label, r.kops_per_sec, r.kops_per_sec_bottleneck,
                r.max_cpu_share * 100.0, r.mb_per_sec_wire);
  }
  std::printf("\n'cluster-equivalent' divides ops by the busiest replica's "
              "CPU time — the\nthroughput an N-machine deployment would "
              "sustain.\n");
  return 0;
}
