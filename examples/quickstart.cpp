// Quickstart: replicate a key-value store with Clock-RSM across three
// simulated data centers and read your own writes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "clockrsm/clock_rsm.h"
#include "kv/kv_store.h"
#include "sim/sim_world.h"
#include "util/topology.h"

using namespace crsm;

int main() {
  // 1. Describe the deployment: three replicas, one-way latencies in ms.
  //    (Here: the paper's CA / VA / IR EC2 sites, Table III.)
  const LatencyMatrix topology = ec2_matrix().submatrix({0, 1, 2});

  // 2. Build a simulated world running Clock-RSM over a KvStore.
  SimWorldOptions opts;
  opts.matrix = topology;
  opts.seed = 1;
  opts.clock_skew_ms = 2.0;  // NTP-grade loose synchronization

  std::vector<ReplicaId> spec = {0, 1, 2};
  SimWorld world(
      opts,
      [&spec](ProtocolEnv& env, ReplicaId) {
        return std::make_unique<ClockRsmReplica>(env, spec);
      },
      [] { return std::make_unique<KvStore>(); });

  // 3. Observe commits: the hook fires at every replica, in commit order;
  //    `local_origin` marks the replica that owes its client the reply.
  world.set_commit_hook([&world](ReplicaId r, const Command& cmd, Timestamp ts,
                                 bool local_origin) {
    if (!local_origin) return;
    const KvRequest req = KvRequest::decode(cmd.payload);
    std::printf("[%6.1f ms] replica %u committed %s=%s (ts %s)\n",
                us_to_ms(world.sim().now()), r, req.key.c_str(),
                req.value.c_str(), ts.to_string().c_str());
  });

  world.start();

  // 4. Issue writes from different data centers.
  Command c1;
  c1.client = 1;
  c1.seq = 1;
  c1.payload = KvRequest{KvOp::kPut, "user:42", "alice"}.encode();
  world.submit(0, c1);  // from CA

  Command c2;
  c2.client = 2;
  c2.seq = 1;
  c2.payload = KvRequest{KvOp::kPut, "user:43", "bob"}.encode();
  world.submit(1, c2);  // from VA

  // 5. Run half a simulated second and inspect the replicated state.
  world.sim().run_until(ms_to_us(500.0));

  for (ReplicaId r = 0; r < 3; ++r) {
    auto& kv = static_cast<KvStore&>(world.state_machine(r));
    std::printf("replica %u sees user:42=%s user:43=%s (digest %016llx)\n", r,
                kv.get("user:42") ? kv.get("user:42")->c_str() : "<none>",
                kv.get("user:43") ? kv.get("user:43")->c_str() : "<none>",
                static_cast<unsigned long long>(kv.state_digest()));
  }
  return 0;
}
