#include "util/topology.h"

#include <array>
#include <stdexcept>

namespace crsm {

void LatencyMatrix::set_rtt_ms(std::size_t i, std::size_t j, double rtt_ms) {
  set_oneway_ms(i, j, rtt_ms / 2.0);
}

void LatencyMatrix::set_oneway_ms(std::size_t i, std::size_t j, double ms) {
  if (i >= n_ || j >= n_) throw std::out_of_range("LatencyMatrix::set");
  oneway_ms_[i * n_ + j] = ms;
  oneway_ms_[j * n_ + i] = ms;
}

double LatencyMatrix::oneway_ms(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) throw std::out_of_range("LatencyMatrix::get");
  return oneway_ms_[i * n_ + j];
}

std::vector<double> LatencyMatrix::row(std::size_t i) const {
  std::vector<double> r(n_);
  for (std::size_t j = 0; j < n_; ++j) r[j] = oneway_ms(i, j);
  return r;
}

LatencyMatrix LatencyMatrix::submatrix(const std::vector<std::size_t>& sites) const {
  LatencyMatrix m(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = 0; j < sites.size(); ++j) {
      m.set_oneway_ms(i, j, oneway_ms(sites[i], sites[j]));
    }
  }
  return m;
}

LatencyMatrix LatencyMatrix::uniform(std::size_t n, double oneway) {
  LatencyMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) m.set_oneway_ms(i, j, oneway);
  }
  return m;
}

const char* ec2_site_name(std::size_t site) {
  static constexpr std::array<const char*, kNumEc2Sites> kNames = {
      "CA", "VA", "IR", "JP", "SG", "AU", "BR"};
  if (site >= kNames.size()) throw std::out_of_range("ec2_site_name");
  return kNames[site];
}

const LatencyMatrix& ec2_matrix() {
  static const LatencyMatrix kMatrix = [] {
    // Round-trip milliseconds from paper Table III.
    LatencyMatrix m(kNumEc2Sites);
    const auto CA = static_cast<std::size_t>(Ec2Site::CA);
    const auto VA = static_cast<std::size_t>(Ec2Site::VA);
    const auto IR = static_cast<std::size_t>(Ec2Site::IR);
    const auto JP = static_cast<std::size_t>(Ec2Site::JP);
    const auto SG = static_cast<std::size_t>(Ec2Site::SG);
    const auto AU = static_cast<std::size_t>(Ec2Site::AU);
    const auto BR = static_cast<std::size_t>(Ec2Site::BR);
    m.set_rtt_ms(CA, VA, 83);
    m.set_rtt_ms(CA, IR, 170);
    m.set_rtt_ms(CA, JP, 125);
    m.set_rtt_ms(CA, SG, 171);
    m.set_rtt_ms(CA, AU, 187);
    m.set_rtt_ms(CA, BR, 212);
    m.set_rtt_ms(VA, IR, 101);
    m.set_rtt_ms(VA, JP, 215);
    m.set_rtt_ms(VA, SG, 254);
    m.set_rtt_ms(VA, AU, 220);
    m.set_rtt_ms(VA, BR, 137);
    m.set_rtt_ms(IR, JP, 280);
    m.set_rtt_ms(IR, SG, 216);
    m.set_rtt_ms(IR, AU, 305);
    m.set_rtt_ms(IR, BR, 216);
    m.set_rtt_ms(JP, SG, 77);
    m.set_rtt_ms(JP, AU, 129);
    m.set_rtt_ms(JP, BR, 368);
    m.set_rtt_ms(SG, AU, 188);
    m.set_rtt_ms(SG, BR, 369);
    m.set_rtt_ms(AU, BR, 349);
    return m;
  }();
  return kMatrix;
}

std::vector<std::vector<std::size_t>> combinations(std::size_t n, std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  if (k > n) return out;
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    out.push_back(idx);
    // Advance the rightmost index that can still move.
    std::size_t i = k;
    while (i > 0 && idx[i - 1] == n - k + (i - 1)) --i;
    if (i == 0) break;
    ++idx[i - 1];
    for (std::size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
  return out;
}

std::string group_name(const std::vector<std::size_t>& sites) {
  std::string s;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (i > 0) s += "+";
    s += ec2_site_name(sites[i]);
  }
  return s;
}

}  // namespace crsm
