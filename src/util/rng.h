// Deterministic pseudo-random numbers for simulations and workloads.
#pragma once

#include <cstdint>
#include <random>

namespace crsm {

// Thin wrapper over a seeded mt19937_64 so every experiment is reproducible
// from its seed. All simulation randomness (think times, key choice, clock
// skew, network jitter) flows through one of these.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(gen_);
  }

  // Derives an independent child generator; useful to give each replica or
  // client its own stream while staying reproducible from the root seed.
  [[nodiscard]] Rng fork() { return Rng(gen_()); }

  [[nodiscard]] std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace crsm
