// Latency statistics: mean, percentiles, CDFs, histograms.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace crsm::obs {
class LatencyHistogram;
}  // namespace crsm::obs

namespace crsm {

// Accumulates latency samples (milliseconds) and answers the summary
// questions the paper's figures ask: average, 95th percentile, CDF series.
//
// Memory is bounded: up to `exact_cap` samples are retained exactly (the
// paper figures' regime — sorting-based percentiles and CDFs stay precise),
// after which the sample vector is folded into a fixed-size log-scale
// histogram (obs/metrics.h, ~2.5 KB, <= 6.25 % relative error on
// percentiles) and only running moments plus the histogram grow-free state
// are kept. Long-running nodes and the open-loop harness can therefore
// record forever; exact() reports which regime an instance is in, and
// samples() is only meaningful while exact.
class LatencyStats {
 public:
  static constexpr std::size_t kDefaultExactCap = 1 << 16;

  LatencyStats();
  explicit LatencyStats(std::size_t exact_cap);
  LatencyStats(const LatencyStats& other);
  LatencyStats& operator=(const LatencyStats& other);
  LatencyStats(LatencyStats&&) noexcept;
  LatencyStats& operator=(LatencyStats&&) noexcept;
  ~LatencyStats();

  void add(double sample_ms);
  void merge(const LatencyStats& other);
  void clear();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  // True while every sample is still held exactly (below the cap and never
  // merged with a degraded instance).
  [[nodiscard]] bool exact() const { return hist_ == nullptr; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  // Nearest-rank percentile, p in [0, 100]. Exact while exact(); bounded by
  // the histogram bucket width (<= 6.25 % of the value) after.
  [[nodiscard]] double percentile(double p) const;

  // (latency, cumulative fraction in [0,1]) pairs at `points` evenly spaced
  // ranks, suitable for plotting the paper's CDF figures (Figs. 3, 4, 6).
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(std::size_t points = 100) const;

  // Fixed-width histogram over [lo, hi) with `buckets` bins; out-of-range
  // samples clamp into the first/last bin.
  [[nodiscard]] std::vector<std::size_t> histogram(double lo, double hi,
                                                   std::size_t buckets) const;

  // The retained exact samples. Empty once degraded — check exact().
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void sort_if_needed() const;
  void note_moments(double sample_ms, std::size_t n = 1);
  // Folds samples_ into hist_ (allocating it) and drops the vector.
  void degrade();
  obs::LatencyHistogram& ensure_hist();

  std::size_t exact_cap_ = kDefaultExactCap;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;

  // Running moments, maintained in both regimes (merge needs them even
  // while exact, and they keep mean/stddev drift-free after degradation).
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;

  // Microsecond-resolution bounded histogram; allocated on first degrade.
  std::unique_ptr<obs::LatencyHistogram> hist_;
};

// Median as used throughout the paper's latency analysis (Section IV): the
// element at index floor(n/2) of the ascending sort. For a set that includes
// the zero self-distance this is exactly the cost of reaching a majority.
[[nodiscard]] double paper_median(std::vector<double> v);

[[nodiscard]] double mean_of(const std::vector<double>& v);
[[nodiscard]] double max_of(const std::vector<double>& v);

}  // namespace crsm
