// Latency statistics: mean, percentiles, CDFs, histograms.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace crsm {

// Accumulates latency samples (milliseconds) and answers the summary
// questions the paper's figures ask: average, 95th percentile, CDF series.
class LatencyStats {
 public:
  void add(double sample_ms);
  void merge(const LatencyStats& other);
  void clear();

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  // Nearest-rank percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  // (latency, cumulative fraction in [0,1]) pairs at `points` evenly spaced
  // ranks, suitable for plotting the paper's CDF figures (Figs. 3, 4, 6).
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(std::size_t points = 100) const;

  // Fixed-width histogram over [lo, hi) with `buckets` bins; out-of-range
  // samples clamp into the first/last bin.
  [[nodiscard]] std::vector<std::size_t> histogram(double lo, double hi,
                                                   std::size_t buckets) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void sort_if_needed() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Median as used throughout the paper's latency analysis (Section IV): the
// element at index floor(n/2) of the ascending sort. For a set that includes
// the zero self-distance this is exactly the cost of reaching a majority.
[[nodiscard]] double paper_median(std::vector<double> v);

[[nodiscard]] double mean_of(const std::vector<double>& v);
[[nodiscard]] double max_of(const std::vector<double>& v);

}  // namespace crsm
