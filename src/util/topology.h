// Inter-datacenter latency topology (paper Table III) and group enumeration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace crsm {

// A symmetric matrix of one-way message latencies (milliseconds) between N
// replica sites, with zero diagonal. This is the input to both the
// analytical latency models (Section IV) and the discrete-event simulator.
class LatencyMatrix {
 public:
  LatencyMatrix() = default;
  explicit LatencyMatrix(std::size_t n) : n_(n), oneway_ms_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  // Sets the round-trip latency between i and j (symmetric).
  void set_rtt_ms(std::size_t i, std::size_t j, double rtt_ms);
  void set_oneway_ms(std::size_t i, std::size_t j, double ms);

  [[nodiscard]] double oneway_ms(std::size_t i, std::size_t j) const;
  [[nodiscard]] double rtt_ms(std::size_t i, std::size_t j) const {
    return 2.0 * oneway_ms(i, j);
  }
  [[nodiscard]] Tick oneway_us(std::size_t i, std::size_t j) const {
    return ms_to_us(oneway_ms(i, j));
  }

  // Row of one-way latencies from replica i to every replica (incl. self=0).
  [[nodiscard]] std::vector<double> row(std::size_t i) const;

  // Restriction of this matrix to the given subset of sites, preserving
  // the subset's order. Used for sweeping replica-placement groups (Fig. 7).
  [[nodiscard]] LatencyMatrix submatrix(const std::vector<std::size_t>& sites) const;

  // A uniform topology where every distinct pair has the same one-way
  // latency; handy for tests and ablations.
  [[nodiscard]] static LatencyMatrix uniform(std::size_t n, double oneway_ms);

 private:
  std::size_t n_ = 0;
  std::vector<double> oneway_ms_;
};

// The seven EC2 sites of Table III, in the paper's order.
enum class Ec2Site : std::size_t { CA = 0, VA = 1, IR = 2, JP = 3, SG = 4, AU = 5, BR = 6 };
inline constexpr std::size_t kNumEc2Sites = 7;

[[nodiscard]] const char* ec2_site_name(std::size_t site);

// Average round-trip latencies between EC2 data centers as measured by the
// paper (Table III), returned as a one-way (RTT/2) latency matrix over
// {CA, VA, IR, JP, SG, AU, BR}.
[[nodiscard]] const LatencyMatrix& ec2_matrix();

// All k-subsets of {0..n-1} in lexicographic order.
[[nodiscard]] std::vector<std::vector<std::size_t>> combinations(std::size_t n,
                                                                 std::size_t k);

// Human-readable name of a site group, e.g. "CA+VA+IR".
[[nodiscard]] std::string group_name(const std::vector<std::size_t>& sites);

}  // namespace crsm
