#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace crsm {

namespace {

// Samples are millisecond doubles; the bounded histogram is integer
// microseconds. Sub-microsecond and negative values land in bucket 0.
std::uint64_t to_us(double ms) {
  const double us = ms * 1000.0;
  if (us <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(us));
}

double to_ms(double us) { return us / 1000.0; }

}  // namespace

LatencyStats::LatencyStats() = default;

LatencyStats::LatencyStats(std::size_t exact_cap) : exact_cap_(exact_cap) {}

LatencyStats::LatencyStats(const LatencyStats& other)
    : exact_cap_(other.exact_cap_),
      samples_(other.samples_),
      count_(other.count_),
      sum_(other.sum_),
      sumsq_(other.sumsq_),
      min_(other.min_),
      max_(other.max_) {
  if (other.hist_) {
    hist_ = std::make_unique<obs::LatencyHistogram>();
    hist_->merge(*other.hist_);
  }
}

LatencyStats& LatencyStats::operator=(const LatencyStats& other) {
  if (this == &other) return *this;
  LatencyStats copy(other);
  *this = std::move(copy);
  return *this;
}

LatencyStats::LatencyStats(LatencyStats&&) noexcept = default;
LatencyStats& LatencyStats::operator=(LatencyStats&&) noexcept = default;
LatencyStats::~LatencyStats() = default;

void LatencyStats::note_moments(double sample_ms, std::size_t n) {
  if (count_ == 0) {
    min_ = max_ = sample_ms;
  } else {
    min_ = std::min(min_, sample_ms);
    max_ = std::max(max_, sample_ms);
  }
  count_ += n;
  sum_ += sample_ms * static_cast<double>(n);
  sumsq_ += sample_ms * sample_ms * static_cast<double>(n);
}

obs::LatencyHistogram& LatencyStats::ensure_hist() {
  if (!hist_) hist_ = std::make_unique<obs::LatencyHistogram>();
  return *hist_;
}

void LatencyStats::degrade() {
  auto& h = ensure_hist();
  for (double s : samples_) h.observe(to_us(s));
  samples_.clear();
  samples_.shrink_to_fit();
  sorted_.clear();
  sorted_.shrink_to_fit();
  sorted_valid_ = false;
}

void LatencyStats::add(double sample_ms) {
  note_moments(sample_ms);
  if (hist_) {
    hist_->observe(to_us(sample_ms));
    return;
  }
  samples_.push_back(sample_ms);
  sorted_valid_ = false;
  if (samples_.size() > exact_cap_) degrade();
}

void LatencyStats::merge(const LatencyStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sumsq_ += other.sumsq_;

  if (!hist_ && !other.hist_ && samples_.size() + other.samples_.size() <= exact_cap_) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_valid_ = false;
    return;
  }
  // Either side already degraded, or the union would blow the cap: fold
  // everything into the histogram.
  if (!hist_) degrade();
  auto& h = ensure_hist();
  for (double s : other.samples_) h.observe(to_us(s));
  if (other.hist_) h.merge(*other.hist_);
}

void LatencyStats::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  count_ = 0;
  sum_ = 0.0;
  sumsq_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  hist_.reset();
}

void LatencyStats::sort_if_needed() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double LatencyStats::mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double LatencyStats::min() const { return count_ == 0 ? 0.0 : min_; }

double LatencyStats::max() const { return count_ == 0 ? 0.0 : max_; }

double LatencyStats::stddev() const {
  if (count_ < 2) return 0.0;
  if (!hist_) {
    // Two-pass over retained samples: numerically safest for the paper figs.
    const double m = mean();
    double acc = 0.0;
    for (double s : samples_) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  const double var = (sumsq_ - n * m * m) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double LatencyStats::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  if (!hist_) {
    sort_if_needed();
    if (p == 0.0) return sorted_.front();
    const auto n = static_cast<double>(sorted_.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank == 0) rank = 1;
    return sorted_[rank - 1];
  }
  // Degraded: bucket-accurate, but pin the ends to the exactly tracked
  // extremes so p0/p100 never show bucket rounding.
  if (p == 0.0) return min_;
  if (p == 100.0) return max_;
  return std::clamp(to_ms(hist_->percentile_us(p)), min_, max_);
}

std::vector<std::pair<double, double>> LatencyStats::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (count_ == 0 || points == 0) return out;
  out.reserve(points);
  const std::size_t n = count_;
  if (!hist_) {
    sort_if_needed();
    for (std::size_t i = 1; i <= points; ++i) {
      const std::size_t rank = std::max<std::size_t>(1, i * n / points);
      out.emplace_back(sorted_[rank - 1],
                       static_cast<double>(rank) / static_cast<double>(n));
    }
    return out;
  }
  double prev = min_;
  for (std::size_t i = 1; i <= points; ++i) {
    const std::size_t rank = std::max<std::size_t>(1, i * n / points);
    const double frac = static_cast<double>(rank) / static_cast<double>(n);
    // Monotone by construction; the final point reports the exact max so the
    // curve still ends at (max, 1.0).
    double v = rank == n ? max_
                         : std::clamp(to_ms(hist_->percentile_us(frac * 100.0)),
                                      min_, max_);
    v = std::max(v, prev);
    prev = v;
    out.emplace_back(v, frac);
  }
  return out;
}

std::vector<std::size_t> LatencyStats::histogram(double lo, double hi,
                                                 std::size_t buckets) const {
  if (buckets == 0 || hi <= lo) throw std::invalid_argument("bad histogram spec");
  std::vector<std::size_t> bins(buckets, 0);
  const double width = (hi - lo) / static_cast<double>(buckets);
  const auto bin_of = [&](double s) {
    auto idx = static_cast<long>((s - lo) / width);
    return static_cast<std::size_t>(
        std::clamp<long>(idx, 0, static_cast<long>(buckets) - 1));
  };
  for (double s : samples_) bins[bin_of(s)]++;
  if (hist_) {
    // Attribute each log-scale bucket's count to the fixed-width bin of its
    // midpoint — coarse, but bounded by the same 6.25 % bucket width.
    for (std::size_t i = 0; i < obs::LatencyHistogram::kNumBuckets; ++i) {
      const std::uint64_t c = hist_->bucket_count(i);
      if (c == 0) continue;
      const double mid =
          to_ms(static_cast<double>(obs::LatencyHistogram::bucket_lower_us(i) +
                                    obs::LatencyHistogram::bucket_upper_us(i)) /
                2.0);
      bins[bin_of(mid)] += c;
    }
  }
  return bins;
}

double paper_median(std::vector<double> v) {
  if (v.empty()) throw std::invalid_argument("median of empty set");
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double max_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

}  // namespace crsm
