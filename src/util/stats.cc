#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace crsm {

void LatencyStats::add(double sample_ms) {
  samples_.push_back(sample_ms);
  sorted_valid_ = false;
}

void LatencyStats::merge(const LatencyStats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_valid_ = false;
}

void LatencyStats::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void LatencyStats::sort_if_needed() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double LatencyStats::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double LatencyStats::min() const {
  sort_if_needed();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double LatencyStats::max() const {
  sort_if_needed();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double LatencyStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double LatencyStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  sort_if_needed();
  if (p == 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  return sorted_[rank - 1];
}

std::vector<std::pair<double, double>> LatencyStats::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  sort_if_needed();
  out.reserve(points);
  const std::size_t n = sorted_.size();
  for (std::size_t i = 1; i <= points; ++i) {
    const std::size_t rank = std::max<std::size_t>(1, i * n / points);
    out.emplace_back(sorted_[rank - 1],
                     static_cast<double>(rank) / static_cast<double>(n));
  }
  return out;
}

std::vector<std::size_t> LatencyStats::histogram(double lo, double hi,
                                                 std::size_t buckets) const {
  if (buckets == 0 || hi <= lo) throw std::invalid_argument("bad histogram spec");
  std::vector<std::size_t> bins(buckets, 0);
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (double s : samples_) {
    auto idx = static_cast<long>((s - lo) / width);
    idx = std::clamp<long>(idx, 0, static_cast<long>(buckets) - 1);
    bins[static_cast<std::size_t>(idx)]++;
  }
  return bins;
}

double paper_median(std::vector<double> v) {
  if (v.empty()) throw std::invalid_argument("median of empty set");
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double max_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

}  // namespace crsm
