// Simulated wide-area network with non-uniform latencies.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/message.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/topology.h"

namespace crsm {

// Reliable, per-link FIFO message transport over a LatencyMatrix, with
// optional symmetric jitter, crash and partition injection, and traffic
// accounting (used to verify the paper's message-complexity claims).
//
// Replica ids are indices into the latency matrix.
class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;

  struct Options {
    double jitter_ms = 0.0;  // uniform [0, jitter_ms) added per message
    bool count_bytes = false;
  };

  SimNetwork(Simulator& sim, LatencyMatrix matrix, Rng rng, Options opt);
  SimNetwork(Simulator& sim, LatencyMatrix matrix, Rng rng)
      : SimNetwork(sim, std::move(matrix), rng, Options{}) {}

  void register_replica(ReplicaId id, Handler handler);

  // Sends `m` from -> to. Drops it if either endpoint is crashed (at send or
  // delivery time) or the link is partitioned. Delivery preserves FIFO order
  // per (from, to) link even under jitter.
  void send(ReplicaId from, ReplicaId to, Message m);

  void crash(ReplicaId id);
  void recover(ReplicaId id);
  [[nodiscard]] bool crashed(ReplicaId id) const;

  // Blocks/unblocks both directions between a and b.
  void set_partitioned(ReplicaId a, ReplicaId b, bool blocked);

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return messages_delivered_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return messages_dropped_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

  [[nodiscard]] const LatencyMatrix& matrix() const { return matrix_; }

 private:
  struct LinkState {
    Tick last_arrival = 0;
    bool blocked = false;
  };

  [[nodiscard]] std::size_t link_index(ReplicaId from, ReplicaId to) const;

  Simulator& sim_;
  LatencyMatrix matrix_;
  Rng rng_;
  Options opt_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::vector<LinkState> links_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace crsm
