// Backward-compatible name for the simulator-side transport. The link,
// jitter, crash and partition logic lives in transport/sim_transport.h,
// sharing the Transport interface with the real-thread runtime.
#pragma once

#include "transport/sim_transport.h"

namespace crsm {

using SimNetwork = SimTransport;

}  // namespace crsm
