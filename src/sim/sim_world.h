// Builds and drives a simulated cluster of replicas for experiments/tests.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "clock/sim_clock.h"
#include "common/command.h"
#include "common/types.h"
#include "rsm/protocol.h"
#include "rsm/state_machine.h"
#include "sim/sim_network.h"
#include "sim/simulator.h"
#include "storage/command_log.h"
#include "util/rng.h"
#include "util/topology.h"

namespace crsm {

// One executed command, as observed at a replica; tests compare these
// sequences across replicas to verify agreement and total order.
struct ExecRecord {
  Timestamp ts;
  Command cmd;
  Tick sim_time_us = 0;
  // Position inside the batch envelope this command rode in (0 for
  // singletons): members of one batch share ts, so per-replica execution
  // order is the lexicographic (ts, sub).
  std::uint32_t sub = 0;
};

struct SimWorldOptions {
  LatencyMatrix matrix;              // defines the number of replicas
  std::uint64_t seed = 1;
  double jitter_ms = 0.0;            // network jitter
  double clock_skew_ms = 0.0;        // per-replica skew ~ U(-skew, +skew)
  double clock_drift = 0.0;          // per-replica rate ~ 1 ± U(0, drift)
  bool count_bytes = false;
  // When non-empty, replicas use durable FileLogs at
  // <log_dir>/replica-<i>.log instead of in-memory logs; restart() then
  // exercises the real on-disk recovery path.
  std::string log_dir;
  // Power-loss crash semantics (DST): in-memory logs become CrashLossyLogs
  // and crash(i) discards the replica's un-synced log tail, so protocols
  // must sync at their durability points to survive. Ignored when log_dir is
  // set (FileLog already persists exactly what reached the OS).
  bool lossy_crash = false;
  // Deliberate bug injection for DST harness validation: log sync() becomes
  // a no-op, so every crash loses the full tail even though the protocol
  // called sync at the right points. Only meaningful with lossy_crash.
  bool sync_is_noop = false;
  // Protocol-level command batching: writes submitted at the same simulated
  // instant at a replica accumulate and replicate as one batch envelope,
  // cut at this many commands (1 = off). Deterministic: the flush runs as a
  // same-time simulator event, after every already-enqueued submit. A crash
  // drops the replica's un-submitted buffer (those commands were never
  // acknowledged).
  std::size_t max_batch_cmds = 1;
};

// Owns the simulator, network, clocks, logs, state machines and protocol
// instances of an N-replica deployment. Protocol-agnostic: the caller
// supplies factories.
class SimWorld {
 public:
  using ProtocolFactory =
      std::function<std::unique_ptr<ReplicaProtocol>(ProtocolEnv&, ReplicaId)>;
  using StateMachineFactory = std::function<std::unique_ptr<StateMachine>()>;
  // (replica, cmd, ts, local_origin) for every delivery at every replica.
  using CommitHook = std::function<void(ReplicaId, const Command&, Timestamp, bool)>;
  // (replica, cmd, read_ts, output) for every locally served read. Reads
  // never appear in execution() traces: they are not part of the replicated
  // order, and per-replica read interleavings would fail the agreement
  // checks that compare those traces.
  using ReadHook =
      std::function<void(ReplicaId, const Command&, Timestamp, std::string_view)>;

  SimWorld(SimWorldOptions opt, ProtocolFactory protocol_factory,
           StateMachineFactory sm_factory);
  ~SimWorld();

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  // Calls start() on every replica; must be called once before running.
  void start();

  [[nodiscard]] std::size_t num_replicas() const { return replicas_.size(); }
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] SimNetwork& network() { return *network_; }
  [[nodiscard]] ReplicaProtocol& protocol(ReplicaId i);
  [[nodiscard]] StateMachine& state_machine(ReplicaId i);
  [[nodiscard]] CommandLog& log(ReplicaId i);
  [[nodiscard]] SimClock& clock(ReplicaId i);
  [[nodiscard]] Rng& rng() { return rng_; }

  // Enqueues a client command at replica i (runs via the event loop).
  void submit(ReplicaId i, Command cmd);

  // Enqueues a read-only client command at replica i. Protocols with a local
  // read path answer it via the read hook once the replica's stability point
  // passes the read timestamp; others ride it through the log (commit hook).
  void submit_read(ReplicaId i, Command cmd);

  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }
  void set_read_hook(ReadHook hook) { read_hook_ = std::move(hook); }

  // Local reads served at replica i since construction (cumulative across
  // restarts).
  [[nodiscard]] std::uint64_t reads_served(ReplicaId i) const;

  // Executed commands in execution order, per replica.
  [[nodiscard]] const std::vector<ExecRecord>& execution(ReplicaId i) const;

  // --- failure injection ---
  // Crashes replica i: drops its traffic, stops its handlers and timers.
  void crash(ReplicaId i);
  [[nodiscard]] bool crashed(ReplicaId i) const;
  // Restarts replica i with a fresh protocol instance built by the factory;
  // the replica keeps its log and checkpoint (stable storage survives
  // crashes) but loses soft state; its state machine is rebuilt from the
  // checkpoint (if any) plus log replay in start().
  void restart(ReplicaId i);

  // --- checkpointing (Section V-B) ---
  // Snapshots replica i's state machine as of commit timestamp
  // `last_applied` and truncates the covered log prefix. The checkpoint is
  // durable: it survives crash() and is installed on restart().
  void take_checkpoint(ReplicaId i, Timestamp last_applied, Epoch epoch);
  [[nodiscard]] bool has_checkpoint(ReplicaId i) const;

 private:
  struct ReplicaCtx;

  SimWorldOptions opt_;
  ProtocolFactory protocol_factory_;
  StateMachineFactory sm_factory_;
  Rng rng_;
  Simulator sim_;
  std::unique_ptr<SimNetwork> network_;
  std::vector<std::unique_ptr<ReplicaCtx>> replicas_;
  CommitHook commit_hook_;
  ReadHook read_hook_;
};

}  // namespace crsm
