#include "sim/sim_world.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "common/batch.h"
#include "storage/checkpoint.h"

namespace crsm {

// Per-replica execution context: env implementation plus owned state. A
// `generation` counter invalidates pending timers across crash/restart.
struct SimWorld::ReplicaCtx final : public ProtocolEnv {
  SimWorld* world = nullptr;
  ReplicaId id = kNoReplica;
  std::unique_ptr<SimClock> clk;
  std::unique_ptr<CommandLog> log_store;
  std::unique_ptr<StateMachine> sm;
  std::unique_ptr<ReplicaProtocol> proto;
  std::vector<ExecRecord> executed;
  std::uint64_t reads_served = 0;  // cumulative, survives restart()
  bool alive = true;
  std::uint64_t generation = 0;
  std::optional<Checkpoint> checkpoint;  // durable across crash/restart
  Timestamp floor = kZeroTimestamp;      // installed checkpoint's coverage
  std::string log_path;                  // non-empty when file-backed
  CrashLossyLog* lossy_log = nullptr;    // set when opt.lossy_crash

  // Submit-side batch accumulator (opt.max_batch_cmds > 1). The flush is a
  // same-time simulator event scheduled when the buffer goes non-empty, so
  // it runs after every submit already enqueued at this instant — batching
  // is deterministic. A crash clears the buffer (commands never reached the
  // protocol, so nothing was acknowledged).
  std::vector<Command> batch;
  std::uint64_t batch_counter = 0;
  bool flush_scheduled = false;

  void enqueue_write(const Command& cmd) {
    if (world->opt_.max_batch_cmds <= 1) {
      proto->submit(cmd);
      return;
    }
    batch.push_back(cmd);
    if (batch.size() >= world->opt_.max_batch_cmds) {
      flush_batch();
      return;
    }
    if (flush_scheduled) return;
    flush_scheduled = true;
    const std::uint64_t gen = generation;
    world->sim_.after(0, [this, gen] {
      flush_scheduled = false;
      if (alive && generation == gen) flush_batch();
    });
  }

  void flush_batch() {
    if (batch.empty()) return;
    if (batch.size() == 1) {
      const Command single = std::move(batch.front());
      batch.clear();
      proto->submit(single);
      return;
    }
    const Command env = make_batch(batch, id, batch_counter++);
    batch.clear();
    proto->submit(env);
  }

  // --- ProtocolEnv ---
  [[nodiscard]] ReplicaId self() const override { return id; }

  void send(ReplicaId to, const Message& m) override {
    world->network_->send(id, to, FrameWriter(id).frame(m));
  }

  // One frame per fan-out: the Message is copied and (when byte counting is
  // on) serialized once, then shared by every destination link.
  void multicast(const std::vector<ReplicaId>& tos, const Message& m) override {
    world->network_->multicast(id, tos, FrameWriter(id).frame(m));
  }

  [[nodiscard]] Tick clock_now() override { return clk->now_us(); }

  void schedule_after(Tick delay_us, std::function<void()> fn) override {
    const std::uint64_t gen = generation;
    world->sim_.after(clk->local_delay_to_sim(delay_us),
                      [this, gen, fn = std::move(fn)]() {
                        if (alive && generation == gen) fn();
                      });
  }

  [[nodiscard]] CommandLog& log() override { return *log_store; }

  [[nodiscard]] Timestamp recovery_floor() const override { return floor; }

  void deliver(const Command& cmd, Timestamp ts, bool local_origin) override {
    if (is_batch(cmd)) {
      std::uint32_t sub = 0;
      for (const Command& member : split_batch(cmd)) {
        apply_one(member, ts, sub++, local_origin);
      }
      return;
    }
    apply_one(cmd, ts, 0, local_origin);
  }

  void apply_one(const Command& cmd, Timestamp ts, std::uint32_t sub,
                 bool local_origin) {
    const std::string out = sm->apply(cmd);
    executed.push_back(ExecRecord{ts, cmd, world->sim_.now(), sub});
    if (world->commit_hook_) world->commit_hook_(id, cmd, ts, local_origin);
  }

  void deliver_read(const Command& cmd, Timestamp read_ts) override {
    const std::string out = sm->apply_read(cmd);
    ++reads_served;
    if (world->read_hook_) world->read_hook_(id, cmd, read_ts, out);
  }
};

SimWorld::SimWorld(SimWorldOptions opt, ProtocolFactory protocol_factory,
                   StateMachineFactory sm_factory)
    : opt_(std::move(opt)),
      protocol_factory_(std::move(protocol_factory)),
      sm_factory_(std::move(sm_factory)),
      rng_(opt_.seed) {
  const std::size_t n = opt_.matrix.size();
  if (n == 0) throw std::invalid_argument("SimWorld needs at least one replica");

  network_ = std::make_unique<SimNetwork>(
      sim_, opt_.matrix, rng_.fork(),
      SimNetwork::Options{.jitter_ms = opt_.jitter_ms, .count_bytes = opt_.count_bytes});

  Rng clock_rng = rng_.fork();
  for (std::size_t i = 0; i < n; ++i) {
    auto ctx = std::make_unique<ReplicaCtx>();
    ctx->world = this;
    ctx->id = static_cast<ReplicaId>(i);
    const double skew_us =
        opt_.clock_skew_ms > 0.0
            ? clock_rng.uniform(-opt_.clock_skew_ms, opt_.clock_skew_ms) * 1000.0
            : 0.0;
    const double rate =
        opt_.clock_drift > 0.0
            ? 1.0 + clock_rng.uniform(-opt_.clock_drift, opt_.clock_drift)
            : 1.0;
    ctx->clk = std::make_unique<SimClock>([this] { return sim_.now(); }, skew_us, rate);
    if (opt_.log_dir.empty() && opt_.lossy_crash) {
      auto lossy = std::make_unique<CrashLossyLog>();
      lossy->set_sync_is_noop(opt_.sync_is_noop);
      ctx->lossy_log = lossy.get();
      ctx->log_store = std::move(lossy);
    } else if (opt_.log_dir.empty()) {
      ctx->log_store = std::make_unique<MemLog>();
    } else {
      ctx->log_path = opt_.log_dir + "/replica-" + std::to_string(i) + ".log";
      ctx->log_store = std::make_unique<FileLog>(ctx->log_path);
    }
    ctx->sm = sm_factory_();
    ctx->proto = protocol_factory_(*ctx, ctx->id);
    replicas_.push_back(std::move(ctx));
  }

  for (std::size_t i = 0; i < n; ++i) {
    ReplicaCtx* ctx = replicas_[i].get();
    network_->register_replica(static_cast<ReplicaId>(i), [ctx](const Message& m) {
      if (ctx->alive) ctx->proto->on_message(m);
    });
  }
}

SimWorld::~SimWorld() = default;

void SimWorld::start() {
  for (auto& r : replicas_) r->proto->start();
}

ReplicaProtocol& SimWorld::protocol(ReplicaId i) { return *replicas_.at(i)->proto; }
StateMachine& SimWorld::state_machine(ReplicaId i) { return *replicas_.at(i)->sm; }
CommandLog& SimWorld::log(ReplicaId i) { return *replicas_.at(i)->log_store; }
SimClock& SimWorld::clock(ReplicaId i) { return *replicas_.at(i)->clk; }

void SimWorld::submit(ReplicaId i, Command cmd) {
  ReplicaCtx* ctx = replicas_.at(i).get();
  sim_.after(0, [ctx, cmd = std::move(cmd)]() {
    if (ctx->alive) ctx->enqueue_write(cmd);
  });
}

void SimWorld::submit_read(ReplicaId i, Command cmd) {
  ReplicaCtx* ctx = replicas_.at(i).get();
  sim_.after(0, [ctx, cmd = std::move(cmd)]() {
    if (ctx->alive) ctx->proto->submit_read(cmd);
  });
}

std::uint64_t SimWorld::reads_served(ReplicaId i) const {
  return replicas_.at(i)->reads_served;
}

const std::vector<ExecRecord>& SimWorld::execution(ReplicaId i) const {
  return replicas_.at(i)->executed;
}

void SimWorld::crash(ReplicaId i) {
  ReplicaCtx* ctx = replicas_.at(i).get();
  ctx->alive = false;
  ++ctx->generation;
  // Un-submitted batch buffer dies with the replica: nothing in it was
  // acknowledged or replicated.
  ctx->batch.clear();
  // Power loss: the un-fsynced log tail does not survive the crash.
  if (ctx->lossy_log) ctx->lossy_log->drop_unsynced();
  network_->crash(i);
}

bool SimWorld::crashed(ReplicaId i) const { return !replicas_.at(i)->alive; }

void SimWorld::restart(ReplicaId i) {
  ReplicaCtx* ctx = replicas_.at(i).get();
  if (ctx->alive) throw std::logic_error("restart of a live replica");
  ++ctx->generation;
  ctx->alive = true;
  ctx->executed.clear();
  ctx->sm = sm_factory_();  // volatile state is lost; rebuilt below
  if (!ctx->log_path.empty()) {
    // Genuine restart: close and reopen the on-disk log, replaying it.
    ctx->log_store.reset();
    ctx->log_store = std::make_unique<FileLog>(ctx->log_path);
  }
  if (ctx->checkpoint) {
    ctx->sm->restore(ctx->checkpoint->state);
    ctx->floor = ctx->checkpoint->last_applied;
  } else {
    ctx->floor = kZeroTimestamp;
  }
  ctx->proto = protocol_factory_(*ctx, ctx->id);
  network_->recover(i);
  ctx->proto->start();
}

void SimWorld::take_checkpoint(ReplicaId i, Timestamp last_applied, Epoch epoch) {
  ReplicaCtx* ctx = replicas_.at(i).get();
  ctx->checkpoint = crsm::take_checkpoint(*ctx->sm, last_applied, epoch);
  truncate_covered_prefix(*ctx->log_store, *ctx->checkpoint);
}

bool SimWorld::has_checkpoint(ReplicaId i) const {
  return replicas_.at(i)->checkpoint.has_value();
}

}  // namespace crsm
