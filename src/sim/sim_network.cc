#include "sim/sim_network.h"

#include <stdexcept>
#include <utility>

namespace crsm {

SimNetwork::SimNetwork(Simulator& sim, LatencyMatrix matrix, Rng rng, Options opt)
    : sim_(sim),
      matrix_(std::move(matrix)),
      rng_(rng),
      opt_(opt),
      handlers_(matrix_.size()),
      crashed_(matrix_.size(), false),
      links_(matrix_.size() * matrix_.size()) {}

void SimNetwork::register_replica(ReplicaId id, Handler handler) {
  if (id >= handlers_.size()) throw std::out_of_range("register_replica");
  handlers_[id] = std::move(handler);
}

std::size_t SimNetwork::link_index(ReplicaId from, ReplicaId to) const {
  return static_cast<std::size_t>(from) * matrix_.size() + to;
}

void SimNetwork::send(ReplicaId from, ReplicaId to, Message m) {
  if (from >= handlers_.size() || to >= handlers_.size()) {
    throw std::out_of_range("SimNetwork::send");
  }
  ++messages_sent_;
  if (opt_.count_bytes) bytes_sent_ += m.encode().size();

  LinkState& link = links_[link_index(from, to)];
  if (crashed_[from] || crashed_[to] || link.blocked) {
    ++messages_dropped_;
    return;
  }

  Tick arrival = sim_.now() + matrix_.oneway_us(from, to);
  if (opt_.jitter_ms > 0.0 && from != to) {
    arrival += ms_to_us(rng_.uniform(0.0, opt_.jitter_ms));
  }
  // FIFO per link: never deliver before an earlier message on the same link.
  if (arrival <= link.last_arrival) arrival = link.last_arrival + 1;
  link.last_arrival = arrival;

  sim_.at(arrival, [this, to, m = std::move(m)]() {
    if (crashed_[to] || !handlers_[to]) {
      ++messages_dropped_;
      return;
    }
    ++messages_delivered_;
    handlers_[to](m);
  });
}

void SimNetwork::crash(ReplicaId id) {
  if (id >= crashed_.size()) throw std::out_of_range("crash");
  crashed_[id] = true;
}

void SimNetwork::recover(ReplicaId id) {
  if (id >= crashed_.size()) throw std::out_of_range("recover");
  crashed_[id] = false;
}

bool SimNetwork::crashed(ReplicaId id) const {
  if (id >= crashed_.size()) throw std::out_of_range("crashed");
  return crashed_[id];
}

void SimNetwork::set_partitioned(ReplicaId a, ReplicaId b, bool blocked) {
  links_[link_index(a, b)].blocked = blocked;
  links_[link_index(b, a)].blocked = blocked;
}

}  // namespace crsm
