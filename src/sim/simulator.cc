#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace crsm {

void Simulator::at(Tick t, Fn fn) {
  if (t < now_) t = now_;  // clamp; scheduling in the past means "immediately"
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the event is copied out so the
  // handler may schedule further events safely.
  Event e = queue_.top();
  queue_.pop();
  now_ = e.time;
  ++executed_;
  e.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Tick t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (now_ < t) now_ = t;
}

}  // namespace crsm
