// Deterministic discrete-event simulator core.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace crsm {

// A virtual-time event loop. Events at equal times run in scheduling order
// (a monotone sequence number breaks ties), which makes every run with the
// same seed bit-for-bit reproducible.
class Simulator {
 public:
  using Fn = std::function<void()>;

  [[nodiscard]] Tick now() const { return now_; }

  // Schedules `fn` at absolute virtual time `t` (>= now).
  void at(Tick t, Fn fn);
  // Schedules `fn` after `delay` microseconds of virtual time.
  void after(Tick delay, Fn fn) { at(now_ + delay, std::move(fn)); }

  // Runs one event; returns false if the queue is empty.
  bool step();
  // Runs until the queue drains.
  void run();
  // Runs events with time <= t, then sets now to t.
  void run_until(Tick t);

  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Tick time;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace crsm
