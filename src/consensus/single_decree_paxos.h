// Single-decree Paxos: the PROPOSE/DECIDE primitive of Algorithm 3.
//
// The reconfiguration protocol runs one instance per epoch over all replicas
// in Spec; two or more replicas may propose different next configurations
// and consensus picks one. This is a textbook synod: phase 1 (prepare /
// promise), phase 2 (accept / accepted), plus a learner broadcast (decide)
// and an answer-stragglers rule (a decided acceptor replies DECIDE to any
// later prepare, so replicas that missed the decision catch up).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/message.h"
#include "common/types.h"
#include "rsm/protocol.h"

namespace crsm {

class SingleDecreePaxos {
 public:
  using DecideFn = std::function<void(const std::string& value)>;

  // `instance` keys the messages (Message::epoch). `retry_us` is the phase
  // timeout after which a proposer retries with a higher ballot.
  SingleDecreePaxos(ProtocolEnv& env, std::vector<ReplicaId> participants,
                    Epoch instance, DecideFn on_decide, Tick retry_us = 500'000);

  // Starts proposing `value`. Idempotent; a second call is ignored.
  void propose(std::string value);

  // Feeds a kCons* message whose epoch matches this instance.
  void on_message(const Message& m);

  [[nodiscard]] bool decided() const { return decided_.has_value(); }
  [[nodiscard]] const std::string& decision() const { return *decided_; }
  [[nodiscard]] Epoch instance() const { return instance_; }

 private:
  [[nodiscard]] std::uint64_t next_ballot();
  void begin_round();
  void arm_retry();
  void decide(std::string_view value);
  void bcast(Message m);

  ProtocolEnv& env_;
  std::vector<ReplicaId> participants_;
  Epoch instance_;
  DecideFn on_decide_;
  Tick retry_us_;

  // proposer. Quorums track *distinct* responders: channels may deliver
  // duplicates (crash-restart re-sends, DST duplicate injection), and a
  // plain counter would let one acceptor's duplicated PROMISE/ACCEPTED form
  // a fake majority — two dueling proposers could then decide differently.
  bool proposing_ = false;
  std::string my_value_;
  std::uint64_t ballot_ = 0;        // current round's ballot (0 = none)
  std::uint64_t round_ = 0;
  std::set<ReplicaId> promised_from_;
  std::uint64_t best_accepted_ballot_ = 0;
  std::string best_accepted_value_;
  std::string phase2_value_;
  std::set<ReplicaId> accepted_from_;
  bool in_phase2_ = false;
  std::uint64_t retry_token_ = 0;   // invalidates stale retry timers

  // acceptor
  std::uint64_t promised_ = 0;
  std::uint64_t accepted_ballot_ = 0;
  std::string accepted_value_;

  // learner
  std::optional<std::string> decided_;
};

}  // namespace crsm
