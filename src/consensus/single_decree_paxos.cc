#include "consensus/single_decree_paxos.h"

#include <utility>

namespace crsm {

SingleDecreePaxos::SingleDecreePaxos(ProtocolEnv& env,
                                     std::vector<ReplicaId> participants,
                                     Epoch instance, DecideFn on_decide,
                                     Tick retry_us)
    : env_(env),
      participants_(std::move(participants)),
      instance_(instance),
      on_decide_(std::move(on_decide)),
      retry_us_(retry_us) {}

std::uint64_t SingleDecreePaxos::next_ballot() {
  ++round_;
  // Globally unique, increasing per proposer: round * N + self + 1.
  return round_ * participants_.size() + env_.self() + 1;
}

void SingleDecreePaxos::bcast(Message m) {
  m.epoch = instance_;
  env_.multicast(participants_, m);
}

void SingleDecreePaxos::propose(std::string value) {
  if (proposing_ || decided_) return;
  proposing_ = true;
  my_value_ = std::move(value);
  begin_round();
}

void SingleDecreePaxos::begin_round() {
  if (decided_) return;
  ballot_ = next_ballot();
  promised_from_.clear();
  accepted_from_.clear();
  in_phase2_ = false;
  best_accepted_ballot_ = 0;
  best_accepted_value_.clear();
  Message m;
  m.type = MsgType::kConsPrepare;
  m.a = ballot_;
  bcast(std::move(m));
  arm_retry();
}

void SingleDecreePaxos::arm_retry() {
  const std::uint64_t token = ++retry_token_;
  // Stagger retries by replica id so dueling proposers eventually separate.
  const Tick delay = retry_us_ + retry_us_ / 4 * env_.self();
  env_.schedule_after(delay, [this, token] {
    if (decided_ || token != retry_token_ || !proposing_) return;
    begin_round();
  });
}

void SingleDecreePaxos::decide(std::string_view value) {
  if (decided_) return;
  decided_ = std::string(value);
  if (on_decide_) on_decide_(*decided_);
}

void SingleDecreePaxos::on_message(const Message& m) {
  switch (m.type) {
    case MsgType::kConsPrepare: {
      if (decided_) {
        Message d;
        d.type = MsgType::kConsDecide;
        d.epoch = instance_;
        d.blob = *decided_;
        env_.send(m.from, d);
        return;
      }
      if (m.a > promised_) {
        promised_ = m.a;
        Message r;
        r.type = MsgType::kConsPromise;
        r.epoch = instance_;
        r.a = m.a;
        r.b = accepted_ballot_;
        r.blob = accepted_value_;
        env_.send(m.from, r);
      }
      return;
    }
    case MsgType::kConsPromise: {
      if (decided_ || !proposing_ || in_phase2_ || m.a != ballot_) return;
      promised_from_.insert(m.from);
      if (m.b > best_accepted_ballot_) {
        best_accepted_ballot_ = m.b;
        best_accepted_value_ = m.blob.str();  // retain: copy out of the frame
      }
      if (promised_from_.size() >= majority(participants_.size())) {
        in_phase2_ = true;
        phase2_value_ =
            best_accepted_ballot_ > 0 ? best_accepted_value_ : my_value_;
        Message a;
        a.type = MsgType::kConsAccept;
        a.a = ballot_;
        a.blob = phase2_value_;
        bcast(std::move(a));
        arm_retry();
      }
      return;
    }
    case MsgType::kConsAccept: {
      if (decided_) {
        Message d;
        d.type = MsgType::kConsDecide;
        d.epoch = instance_;
        d.blob = *decided_;
        env_.send(m.from, d);
        return;
      }
      if (m.a >= promised_) {
        promised_ = m.a;
        accepted_ballot_ = m.a;
        accepted_value_ = m.blob.str();  // retain: copy out of the frame
        Message r;
        r.type = MsgType::kConsAccepted;
        r.epoch = instance_;
        r.a = m.a;
        env_.send(m.from, r);
      }
      return;
    }
    case MsgType::kConsAccepted: {
      if (decided_ || !proposing_ || !in_phase2_ || m.a != ballot_) return;
      accepted_from_.insert(m.from);
      if (accepted_from_.size() >= majority(participants_.size())) {
        Message d;
        d.type = MsgType::kConsDecide;
        d.blob = phase2_value_;
        bcast(std::move(d));
        decide(phase2_value_);
      }
      return;
    }
    case MsgType::kConsDecide:
      decide(m.blob);
      return;
    default:
      return;  // not a consensus message
  }
}

}  // namespace crsm
