#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace crsm::obs {

std::uint64_t trace_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kRecv:
      return "recv";
    case Stage::kSubmit:
      return "submit";
    case Stage::kBroadcast:
      return "broadcast";
    case Stage::kWalAppend:
      return "wal";
    case Stage::kQuorumAck:
      return "ack";
    case Stage::kStable:
      return "stability";
    case Stage::kExecute:
      return "execute";
    case Stage::kReply:
      return "reply";
  }
  return "?";
}

namespace {

// Histogram names follow the stage the *delta ends at*: crsm_stage_ack_us is
// the time from WAL durability to the quorum ack, etc.
constexpr const char* kStageHistName[kNumStages] = {
    nullptr,  // kRecv starts the span; no delta ends here
    "crsm_stage_queue_us",
    "crsm_stage_broadcast_us",
    "crsm_stage_wal_us",
    "crsm_stage_ack_us",
    "crsm_stage_stability_us",
    "crsm_stage_execute_us",
    "crsm_stage_reply_us",
};
constexpr const char* kStageHistHelp[kNumStages] = {
    nullptr,
    "client recv to protocol submit",
    "submit to PREPARE broadcast",
    "broadcast to own WAL record durable",
    "WAL durable to majority PREPAREOK",
    "quorum ack to stability (commit point)",
    "commit point to state-machine apply",
    "apply to reply on the wire",
};

}  // namespace

CommitTracer::CommitTracer(Registry& reg, Options opt) : opt_(opt) {
  for (std::size_t i = 1; i < kNumStages; ++i) {
    stage_hist_[i] = &reg.histogram(kStageHistName[i], kStageHistHelp[i]);
  }
  commit_total_ =
      &reg.histogram("crsm_commit_total_us", "client recv to reply, writes");
  read_wait_ =
      &reg.histogram("crsm_read_wait_us", "read recv to stability wait done");
  read_total_ = &reg.histogram("crsm_read_total_us", "read recv to serve");
  spans_total_ = &reg.counter("crsm_trace_spans_total", "commands traced");
  slow_total_ =
      &reg.counter("crsm_trace_slow_total", "traced commands over slow_us");
  dropped_total_ = &reg.counter("crsm_trace_dropped_total",
                                "spans evicted before completion");
}

std::uint64_t CommitTracer::span_key(ClientId client, std::uint64_t seq) {
  // splitmix64-style mix of the pair; collisions merely mis-attribute one
  // sampled span, they cannot affect correctness.
  std::uint64_t x = client * 0x9e3779b97f4a7c15ULL ^ seq;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x | 1;  // never 0 (0 = "no key")
}

CommitTracer::Span* CommitTracer::find(ClientId client, std::uint64_t seq) {
  auto it = spans_.find(span_key(client, seq));
  return it == spans_.end() ? nullptr : &it->second;
}

void CommitTracer::unbind_ts(std::uint64_t ts_key, std::uint64_t span_key) {
  auto it = by_ts_.find(ts_key);
  if (it == by_ts_.end()) return;
  std::vector<std::uint64_t>& keys = it->second;
  std::erase(keys, span_key);
  if (keys.empty()) by_ts_.erase(it);
}

void CommitTracer::evict_oldest() {
  while (!order_.empty() && spans_.size() >= opt_.max_spans) {
    const std::uint64_t key = order_.front();
    order_.pop_front();
    auto it = spans_.find(key);
    if (it == spans_.end()) continue;  // already finished
    if (it->second.ts_key != 0) unbind_ts(it->second.ts_key, key);
    spans_.erase(it);
    dropped_total_->inc();
  }
  // Groups whose envelope never got a timestamp bound (e.g. a protocol that
  // does not bind_ts) must not accumulate.
  while (group_order_.size() > opt_.max_spans) {
    groups_.erase(group_order_.front());
    group_order_.pop_front();
  }
}

bool CommitTracer::begin(ClientId client, std::uint64_t seq,
                         std::uint64_t now_us) {
  if (!enabled()) return false;
  if (decide_counter_++ % opt_.sample_every != 0) return false;
  evict_oldest();
  const std::uint64_t key = span_key(client, seq);
  Span& s = spans_[key];
  s.t[static_cast<std::size_t>(Stage::kRecv)] = now_us;
  order_.push_back(key);
  return true;
}

bool CommitTracer::begin_read(ClientId client, std::uint64_t seq,
                              std::uint64_t now_us) {
  if (!begin(client, seq, now_us)) return false;
  find(client, seq)->read = true;
  return true;
}

void CommitTracer::stamp(ClientId client, std::uint64_t seq, Stage st,
                         std::uint64_t now_us) {
  Span* s = find(client, seq);
  if (s == nullptr) return;
  std::uint64_t& slot = s->t[static_cast<std::size_t>(st)];
  if (slot == 0) slot = now_us;  // first arrival wins (retries re-stamp)
}

void CommitTracer::bind_ts(ClientId client, std::uint64_t seq, Timestamp ts) {
  const std::uint64_t key = span_key(client, seq);
  Span* s = find(client, seq);
  if (s != nullptr) {
    s->ts_key = pack_ts(ts);
    by_ts_[s->ts_key].push_back(key);
    return;
  }
  // A batch envelope has no span of its own: fan the alias out to every
  // member span registered by bind_batch.
  auto git = groups_.find(key);
  if (git == groups_.end()) return;
  const std::uint64_t packed = pack_ts(ts);
  for (std::uint64_t member : git->second) {
    auto sit = spans_.find(member);
    if (sit == spans_.end()) continue;
    sit->second.ts_key = packed;
    by_ts_[packed].push_back(member);
  }
  groups_.erase(git);
}

void CommitTracer::bind_batch(
    ClientId env_client, std::uint64_t env_seq,
    const std::vector<std::pair<ClientId, std::uint64_t>>& members) {
  if (!enabled()) return;
  std::vector<std::uint64_t> keys;
  for (const auto& [client, seq] : members) {
    const std::uint64_t key = span_key(client, seq);
    if (spans_.contains(key)) keys.push_back(key);
  }
  if (keys.empty()) return;
  const std::uint64_t env_key = span_key(env_client, env_seq);
  if (groups_.emplace(env_key, std::move(keys)).second) {
    group_order_.push_back(env_key);
  }
}

void CommitTracer::stamp_ts(Timestamp ts, Stage st, std::uint64_t now_us) {
  auto it = by_ts_.find(pack_ts(ts));
  if (it == by_ts_.end()) return;
  for (std::uint64_t key : it->second) {
    auto sit = spans_.find(key);
    if (sit == spans_.end()) continue;
    std::uint64_t& slot = sit->second.t[static_cast<std::size_t>(st)];
    if (slot == 0) slot = now_us;
  }
}

void CommitTracer::record(const Span& s, std::uint64_t now_us) {
  const std::uint64_t recv = s.t[static_cast<std::size_t>(Stage::kRecv)];
  spans_total_->inc();
  if (s.read) {
    const std::uint64_t stable = s.t[static_cast<std::size_t>(Stage::kStable)];
    if (stable >= recv && stable != 0) read_wait_->observe(stable - recv);
    if (now_us >= recv) read_total_->observe(now_us - recv);
    return;
  }
  // Delta between consecutive *stamped* stages: a skipped stage (e.g. no
  // broadcast on a single-replica config) folds into the next delta.
  std::uint64_t prev = recv;
  for (std::size_t i = 1; i < kNumStages; ++i) {
    const std::uint64_t t = s.t[i];
    if (t == 0) continue;
    if (t >= prev) stage_hist_[i]->observe(t - prev);
    prev = t;
  }
  if (now_us >= recv) commit_total_->observe(now_us - recv);
}

void CommitTracer::finish(ClientId client, std::uint64_t seq,
                          std::uint64_t now_us) {
  const std::uint64_t key = span_key(client, seq);
  auto it = spans_.find(key);
  if (it == spans_.end()) return;
  Span& s = it->second;
  s.t[static_cast<std::size_t>(Stage::kReply)] = now_us;
  record(s, now_us);

  const std::uint64_t recv = s.t[static_cast<std::size_t>(Stage::kRecv)];
  const std::uint64_t total = now_us >= recv ? now_us - recv : 0;
  if (opt_.slow_us != 0 && total >= opt_.slow_us) {
    slow_total_->inc();
    if (now_us - last_slow_log_us_ >= opt_.slow_log_interval_us) {
      last_slow_log_us_ = now_us;
      std::fprintf(stderr,
                   "slow-command client=%" PRIu64 " seq=%" PRIu64
                   " total_us=%" PRIu64,
                   client, seq, total);
      std::uint64_t prev = recv;
      for (std::size_t i = 1; i < kNumStages; ++i) {
        if (s.t[i] == 0) continue;
        const std::uint64_t d = s.t[i] >= prev ? s.t[i] - prev : 0;
        std::fprintf(stderr, " %s_us=%" PRIu64,
                     stage_name(static_cast<Stage>(i)), d);
        prev = s.t[i];
      }
      std::fprintf(stderr, "\n");
    }
  }

  if (s.ts_key != 0) unbind_ts(s.ts_key, key);
  spans_.erase(it);
}

}  // namespace crsm::obs
