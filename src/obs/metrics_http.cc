#include "obs/metrics_http.h"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace crsm::obs {

MetricsHttpServer::MetricsHttpServer(net::EventLoop& loop, Registry& registry,
                                     const std::string& host,
                                     std::uint16_t port)
    : loop_(loop), registry_(registry), acceptor_(loop, host, port) {
  scrapes_ = &registry_.counter("crsm_metrics_scrapes_total",
                                "metrics endpoint requests served");
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start() {
  acceptor_.start([this](net::Socket&& s) { on_accept(std::move(s)); });
}

void MetricsHttpServer::stop() {
  for (auto& [id, c] : conns_) {
    if (c->sock.valid()) loop_.del_fd(c->sock.fd());
  }
  conns_.clear();
  acceptor_.stop();
}

void MetricsHttpServer::on_accept(net::Socket&& s) {
  const std::uint64_t id = next_id_++;
  auto conn = std::make_unique<Conn>();
  conn->sock = std::move(s);
  const int fd = conn->sock.fd();
  conns_.emplace(id, std::move(conn));
  loop_.add_fd(fd, EPOLLIN, [this, id](std::uint32_t ev) { on_event(id, ev); });
}

void MetricsHttpServer::close_conn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (it->second->sock.valid()) loop_.del_fd(it->second->sock.fd());
  conns_.erase(it);
}

void MetricsHttpServer::on_event(std::uint64_t id, std::uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (events & (EPOLLERR | EPOLLHUP)) {
    close_conn(id);
    return;
  }
  if (c.responding) {
    try_write(id, c);
    return;
  }
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(c.sock.fd(), buf, sizeof(buf));
    if (n > 0) {
      c.in.append(buf, static_cast<std::size_t>(n));
      if (c.in.size() > 8192) {  // no legitimate scrape request is this big
        close_conn(id);
        return;
      }
      if (c.in.find("\r\n\r\n") != std::string::npos ||
          c.in.find("\n\n") != std::string::npos) {
        handle_request(id, c);
        return;
      }
      continue;
    }
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      close_conn(id);
    }
    return;  // EAGAIN: wait for more
  }
}

void MetricsHttpServer::handle_request(std::uint64_t id, Conn& c) {
  // Request line: METHOD SP PATH SP VERSION.
  std::string method;
  std::string path;
  {
    const std::size_t sp1 = c.in.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : c.in.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) {
      method = c.in.substr(0, sp1);
      path = c.in.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }

  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "method not allowed\n";
  } else if (path == "/metrics") {
    scrapes_->inc();
    body = to_prometheus(registry_.snapshot());
  } else if (path == "/metrics.json") {
    scrapes_->inc();
    content_type = "application/json";
    body = to_json(registry_.snapshot());
  } else {
    status = "404 Not Found";
    body = "not found; try /metrics or /metrics.json\n";
  }

  c.out = "HTTP/1.1 " + status +
          "\r\n"
          "Content-Type: " +
          content_type +
          "\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n"
          "\r\n" +
          body;
  c.responding = true;
  try_write(id, c);
}

void MetricsHttpServer::try_write(std::uint64_t id, Conn& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.sock.fd(), c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.mod_fd(c.sock.fd(), EPOLLOUT);  // finish off writability
      return;
    }
    break;  // peer gone
  }
  close_conn(id);
}

// --- http_get ---------------------------------------------------------------

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int timeout_ms) {
  bool in_progress = false;
  net::Socket sock = net::tcp_connect(host, port, &in_progress);
  if (in_progress) {
    pollfd pf{sock.fd(), POLLOUT, 0};
    if (::poll(&pf, 1, timeout_ms) <= 0) {
      throw net::NetError("http_get: connect timeout");
    }
    if (net::connect_result(sock.fd()) != 0) {
      throw net::NetError("http_get: connect failed");
    }
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n =
        ::send(sock.fd(), req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pf{sock.fd(), POLLOUT, 0};
      if (::poll(&pf, 1, timeout_ms) <= 0) {
        throw net::NetError("http_get: send timeout");
      }
      continue;
    }
    throw net::NetError("http_get: send failed");
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(sock.fd(), buf, sizeof(buf));
    if (n > 0) {
      resp.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // Connection: close delimits the body
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pf{sock.fd(), POLLIN, 0};
      if (::poll(&pf, 1, timeout_ms) <= 0) {
        throw net::NetError("http_get: read timeout");
      }
      continue;
    }
    throw net::NetError("http_get: read failed");
  }
  std::size_t hdr_end = resp.find("\r\n\r\n");
  std::size_t body_at = hdr_end + 4;
  if (hdr_end == std::string::npos) {
    hdr_end = resp.find("\n\n");
    body_at = hdr_end + 2;
  }
  if (hdr_end == std::string::npos) {
    throw net::NetError("http_get: malformed response (no header terminator)");
  }
  if (resp.rfind("HTTP/1.1 200", 0) != 0 && resp.rfind("HTTP/1.0 200", 0) != 0) {
    throw net::NetError("http_get: non-200 response: " +
                        resp.substr(0, resp.find('\n')));
  }
  return resp.substr(body_at);
}

}  // namespace crsm::obs
