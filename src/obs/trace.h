// Commit-pipeline stage tracing: sampled per-command spans.
//
// The commit path of one command crosses several pipeline stages (Section IV
// of the paper decomposes commit latency into exactly these): client recv →
// submit → broadcast → WAL append → quorum ack → stability → execute →
// reply; a local read crosses recv → stability wait → serve. CommitTracer
// samples every Nth command at its origin replica, timestamps each stage as
// the protocol/runtime reaches it, and on completion folds the per-stage
// deltas into registry histograms (crsm_stage_*_us) so /metrics shows where
// commit time goes. Outliers above a threshold additionally print a
// rate-limited slow-command line with the full breakdown.
//
// Identity: a span starts keyed by (client, seq) — the only identity the
// runtime has at recv time. Once Clock-RSM assigns the command its
// timestamp, bind_ts() registers a second key so protocol internals that
// only know the Timestamp (quorum accounting, the commit scan) can stamp
// without a pending-table lookup. Both maps are bounded; when full, the
// oldest span is evicted (counted in crsm_trace_dropped_total).
//
// Threading: loop-thread only, like the protocol it traces. The sampling
// decision is a deterministic counter (every sample_every-th origin
// command), so identical runs trace identical commands.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace crsm::obs {

// Pipeline stages in origin-replica real-time order. Read-path spans use
// kRecv / kStable (stability wait satisfied) / kReply (served).
enum class Stage : std::uint8_t {
  kRecv = 0,    // client frame decoded / submit() entered
  kSubmit,      // handed to the protocol reactor
  kBroadcast,   // PREPARE fan-out sent
  kWalAppend,   // own log record durable (self-PREPARE applied after sync)
  kQuorumAck,   // majority of PREPAREOKs in
  kStable,      // stability + prefix check passed (commit point)
  kExecute,     // applied to the state machine
  kReply,       // reply frame handed to the transport
};
inline constexpr std::size_t kNumStages = 8;

[[nodiscard]] const char* stage_name(Stage s);

// Monotonic microseconds for stage stamps (steady_clock — the same timeline
// as net::EventLoop::mono_us(), redeclared here so protocol code can stamp
// without a net dependency).
[[nodiscard]] std::uint64_t trace_now_us();

class CommitTracer {
 public:
  struct Options {
    // Trace every Nth origin command (0 disables tracing entirely).
    std::uint32_t sample_every = 64;
    // Spans slower end-to-end than this print a breakdown line (0 = never).
    std::uint64_t slow_us = 0;
    // At most one slow-command line per this interval.
    std::uint64_t slow_log_interval_us = 1'000'000;
    // Bound on concurrently live spans; oldest evicted beyond it.
    std::size_t max_spans = 1024;
  };

  CommitTracer(Registry& reg, Options opt);

  [[nodiscard]] bool enabled() const { return opt_.sample_every != 0; }
  // Cheap fast path for stamp sites: no live span, nothing to do.
  [[nodiscard]] bool active() const { return !spans_.empty(); }

  // Sampling decision + span start for a write; returns true when this
  // command is traced. `now_us` also stamps kRecv.
  bool begin(ClientId client, std::uint64_t seq, std::uint64_t now_us);
  // Same for a local read (separate histograms on finish).
  bool begin_read(ClientId client, std::uint64_t seq, std::uint64_t now_us);

  void stamp(ClientId client, std::uint64_t seq, Stage st, std::uint64_t now_us);

  // Registers `ts` as an alias key for the span, so later stages can stamp
  // by timestamp alone. When (client, seq) is a batch envelope registered
  // via bind_batch, the alias fans out to every traced member span instead:
  // one PREPARE's ack/stability stamps land on each batched command.
  void bind_ts(ClientId client, std::uint64_t seq, Timestamp ts);
  void stamp_ts(Timestamp ts, Stage st, std::uint64_t now_us);

  // Declares (env_client, env_seq) — a batch envelope the runtime is about
  // to submit — as standing for the given member commands. Members without
  // a live span (unsampled) are skipped; the group is consumed by the
  // envelope's bind_ts.
  void bind_batch(ClientId env_client, std::uint64_t env_seq,
                  const std::vector<std::pair<ClientId, std::uint64_t>>& members);

  // Final stamp (kReply); folds the span into the stage histograms, maybe
  // emits a slow-command line, and retires the span.
  void finish(ClientId client, std::uint64_t seq, std::uint64_t now_us);

 private:
  struct Span {
    std::uint64_t t[kNumStages] = {};  // mono us; 0 = stage not reached
    std::uint64_t ts_key = 0;          // packed alias key, 0 = none
    bool read = false;
  };

  static std::uint64_t span_key(ClientId client, std::uint64_t seq);
  static std::uint64_t pack_ts(Timestamp ts) {
    return (ts.ticks << 8) | static_cast<std::uint64_t>(ts.origin & 0xff);
  }
  Span* find(ClientId client, std::uint64_t seq);
  void record(const Span& s, std::uint64_t now_us);
  void evict_oldest();

  Options opt_;
  std::uint64_t decide_counter_ = 0;

  void unbind_ts(std::uint64_t ts_key, std::uint64_t span_key);

  std::unordered_map<std::uint64_t, Span> spans_;
  // packed ts -> span keys. A batched PREPARE carries one timestamp for
  // many commands, so the alias is multi-valued; unbatched spans keep a
  // single entry.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> by_ts_;
  // envelope span key -> member span keys, pending the envelope's bind_ts.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> groups_;
  std::deque<std::uint64_t> order_;  // insertion order, for bounded eviction
  std::deque<std::uint64_t> group_order_;  // same, for unbound groups

  // Stage delta histograms (write path), indexed so that stage_hist_[i]
  // holds (t[i] - t[previous stamped stage]).
  LatencyHistogram* stage_hist_[kNumStages] = {};
  LatencyHistogram* commit_total_;
  LatencyHistogram* read_wait_;
  LatencyHistogram* read_total_;
  Counter* spans_total_;
  Counter* slow_total_;
  Counter* dropped_total_;

  std::uint64_t last_slow_log_us_ = 0;
};

}  // namespace crsm::obs
