#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace crsm::obs {

// --- LatencyHistogram -------------------------------------------------------

std::size_t LatencyHistogram::bucket_index(std::uint64_t us) {
  if (us < kSub) return static_cast<std::size_t>(us);
  int w = std::bit_width(us);  // >= kSubBits + 1
  if (w > 42) w = 42;          // clamp: everything above shares the top octave
  const std::uint64_t clamped =
      std::min<std::uint64_t>(us, (std::uint64_t{1} << 42) - 1);
  const int shift = w - kSubBits - 1;
  const std::uint64_t sub = (clamped >> shift) - kSub;
  return static_cast<std::size_t>(kSub + (w - kSubBits - 1) * kSub + sub);
}

std::uint64_t LatencyHistogram::bucket_lower_us(std::size_t idx) {
  if (idx < kSub) return idx;
  const std::uint64_t octave = (idx - kSub) / kSub;  // 0-based; width-4 first
  const std::uint64_t sub = (idx - kSub) % kSub;
  return (kSub + sub) << octave;
}

std::uint64_t LatencyHistogram::bucket_upper_us(std::size_t idx) {
  if (idx < kSub) return idx;
  const std::uint64_t octave = (idx - kSub) / kSub;
  return bucket_lower_us(idx) + (1ULL << octave) - 1;
}

void LatencyHistogram::observe(std::uint64_t us) {
  buckets_[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  // Monotone max via CAS; contention is nil (single writer in practice).
  std::uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (us > prev &&
         !max_us_.compare_exchange_weak(prev, us, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_us_.fetch_add(other.sum_us(), std::memory_order_relaxed);
  std::uint64_t om = other.max_us();
  std::uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (om > prev &&
         !max_us_.compare_exchange_weak(prev, om, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
}

double LatencyHistogram::mean_us() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_us()) / static_cast<double>(n);
}

double LatencyHistogram::percentile_us(double p) const {
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Interpolate linearly inside the bucket by the rank's position.
      const double lo = static_cast<double>(bucket_lower_us(i));
      const double hi = static_cast<double>(bucket_upper_us(i));
      const double frac =
          c == 1 ? 0.0
                 : static_cast<double>(rank - seen - 1) /
                       static_cast<double>(c - 1);
      return lo + (hi - lo) * frac;
    }
    seen += c;
  }
  return static_cast<double>(max_us());  // racing writer; best effort
}

// --- Registry ---------------------------------------------------------------

Registry::Entry& Registry::entry(std::string_view name, std::string_view help,
                                 MetricKind kind) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.help = std::string(help);
    e.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        e.hist = std::make_unique<LatencyHistogram>();
        break;
    }
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' re-registered as a different kind");
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  return *entry(name, help, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  return *entry(name, help, MetricKind::kGauge).gauge;
}

LatencyHistogram& Registry::histogram(std::string_view name,
                                      std::string_view help) {
  return *entry(name, help, MetricKind::kHistogram).hist;
}

void Registry::add_collector(std::function<void(Registry&)> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  collectors_.push_back(std::move(fn));
}

void Registry::set_labels(std::string labels) {
  std::lock_guard<std::mutex> lk(mu_);
  labels_ = std::move(labels);
}

Snapshot Registry::snapshot() {
  std::vector<std::function<void(Registry&)>> collectors;
  {
    std::lock_guard<std::mutex> lk(mu_);
    collectors = collectors_;
  }
  // Outside the lock: collectors register/update metrics themselves.
  for (auto& fn : collectors) fn(*this);

  Snapshot s;
  std::lock_guard<std::mutex> lk(mu_);
  s.labels = labels_;
  s.metrics.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    MetricValue v;
    v.name = name;
    v.help = e.help;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        v.counter = e.counter->value();
        break;
      case MetricKind::kGauge:
        v.gauge = e.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const LatencyHistogram& h = *e.hist;
        v.hist.count = h.count();
        v.hist.sum_us = h.sum_us();
        v.hist.max_us = h.max_us();
        v.hist.p50_us = h.percentile_us(50);
        v.hist.p90_us = h.percentile_us(90);
        v.hist.p99_us = h.percentile_us(99);
        // Coarse cumulative view at power-of-two boundaries: enough shape
        // for dashboards without emitting all fine-grained buckets.
        std::uint64_t cum = 0;
        std::size_t bucket = 0;
        for (int k = 0; k <= 30; ++k) {
          const std::uint64_t le = 1ULL << k;
          while (bucket < LatencyHistogram::kNumBuckets &&
                 LatencyHistogram::bucket_upper_us(bucket) <= le) {
            cum += h.bucket_count(bucket);
            ++bucket;
          }
          v.hist.cumulative.emplace_back(le, cum);
        }
        break;
      }
    }
    s.metrics.push_back(std::move(v));
  }
  return s;
}

const MetricValue* Snapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::uint64_t Snapshot::counter_value(std::string_view name) const {
  const MetricValue* m = find(name);
  return m == nullptr ? 0 : m->counter;
}

// --- export -----------------------------------------------------------------

namespace {

// %g-style but never scientific for integers; Prometheus accepts both, JSON
// consumers prefer plain numbers.
std::string fmt_double(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string to_prometheus(const Snapshot& s) {
  std::string out;
  out.reserve(4096);
  // With snapshot labels set, every sample carries them: `name{group="2"}`,
  // and histogram buckets splice `le` after them. An empty label set renders
  // the exact pre-label format (no braces) so existing scrapers see no diff.
  const std::string plain = s.labels.empty() ? "" : "{" + s.labels + "}";
  const std::string le_prefix =
      s.labels.empty() ? "{le=\"" : "{" + s.labels + ",le=\"";
  for (const MetricValue& m : s.metrics) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " " + m.help + "\n";
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + m.name + " counter\n";
        out += m.name + plain + " " + std::to_string(m.counter) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + m.name + " gauge\n";
        out += m.name + plain + " " + fmt_double(m.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + m.name + " histogram\n";
        for (const auto& [le, cum] : m.hist.cumulative) {
          out += m.name + "_bucket" + le_prefix + std::to_string(le) + "\"} " +
                 std::to_string(cum) + "\n";
        }
        out += m.name + "_bucket" + le_prefix + "+Inf\"} " +
               std::to_string(m.hist.count) + "\n";
        out += m.name + "_sum" + plain + " " + std::to_string(m.hist.sum_us) +
               "\n";
        out += m.name + "_count" + plain + " " + std::to_string(m.hist.count) +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_json(const Snapshot& s) {
  std::string out = "{";
  bool first = true;
  auto emit = [&](const std::string& key, const std::string& value) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + key + "\": " + value;
  };
  for (const MetricValue& m : s.metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        emit(m.name, std::to_string(m.counter));
        break;
      case MetricKind::kGauge:
        emit(m.name, fmt_double(m.gauge));
        break;
      case MetricKind::kHistogram:
        emit(m.name + "_count", std::to_string(m.hist.count));
        emit(m.name + "_sum_us", std::to_string(m.hist.sum_us));
        emit(m.name + "_p50_us", fmt_double(m.hist.p50_us));
        emit(m.name + "_p90_us", fmt_double(m.hist.p90_us));
        emit(m.name + "_p99_us", fmt_double(m.hist.p99_us));
        emit(m.name + "_max_us", std::to_string(m.hist.max_us));
        break;
    }
  }
  out += "}\n";
  return out;
}

std::string to_kv_line(const Snapshot& s) {
  std::string out;
  auto emit = [&](const std::string& key, const std::string& value) {
    if (!out.empty()) out += ' ';
    out += key + "=" + value;
  };
  for (const MetricValue& m : s.metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        emit(m.name, std::to_string(m.counter));
        break;
      case MetricKind::kGauge:
        emit(m.name, fmt_double(m.gauge));
        break;
      case MetricKind::kHistogram:
        emit(m.name + "_count", std::to_string(m.hist.count));
        emit(m.name + "_p99_us", fmt_double(m.hist.p99_us));
        break;
    }
  }
  return out;
}

}  // namespace crsm::obs
