// Per-pass event-loop profiler: where each reactor pass spends its time.
//
// One EventLoop pass is poll → fd dispatch → posted tasks/timers → pass-end
// hook (group-commit fsync) → wire-flush hook (outbound coalescing). The
// profiler implements net::LoopObserver: run() stamps the phase boundaries,
// the backend reports how long it actually blocked inside the kernel wait,
// and the runtime reports how many commands each durability flush released.
// Every pass folds into registry histograms:
//
//   crsm_loop_pass_us        full pass duration
//   crsm_loop_poll_wait_us   blocked in epoll_wait / io_uring_enter
//   crsm_loop_io_dispatch_us poll phase minus the kernel wait (fd callbacks,
//                            i.e. frame decode + protocol inbound handling)
//   crsm_loop_protocol_us    posted tasks + timers (submits, retries)
//   crsm_loop_fsync_us       pass-end hook (WAL group commit)
//   crsm_loop_wire_flush_us  wire-flush hook (writev/SQE per peer)
//   crsm_loop_busy_us        pass minus wait — the real CPU cost per pass
//   crsm_loop_cmds_per_pass  commands released per durability flush
//
// busy vs pass matters: an idle node has huge pass times (it blocks in
// poll) but tiny busy times; saturation shows up as busy ≈ pass.
//
// All entry points are loop-thread only, like everything else in the loop.
#pragma once

#include <cstdint>

#include "net/event_loop.h"
#include "obs/metrics.h"

namespace crsm::obs {

class LoopProfiler final : public net::LoopObserver {
 public:
  explicit LoopProfiler(Registry& reg);

  void begin_pass(std::uint64_t now_us) override;
  void poll_done(std::uint64_t now_us) override;
  void tasks_done(std::uint64_t now_us) override;
  void fsync_done(std::uint64_t now_us) override;
  void end_pass(std::uint64_t now_us) override;
  void note_poll_wait(std::uint64_t wait_us) override;

  // Commands released by one durability flush (NodeRuntime group commit).
  void note_batch(std::uint64_t n);

 private:
  LatencyHistogram* pass_us_;
  LatencyHistogram* poll_wait_us_;
  LatencyHistogram* io_dispatch_us_;
  LatencyHistogram* protocol_us_;
  LatencyHistogram* fsync_us_;
  LatencyHistogram* wire_flush_us_;
  LatencyHistogram* busy_us_;
  LatencyHistogram* cmds_per_pass_;
  Counter* passes_total_;

  std::uint64_t t_begin_ = 0;
  std::uint64_t t_poll_ = 0;
  std::uint64_t t_tasks_ = 0;
  std::uint64_t t_fsync_ = 0;
  std::uint64_t wait_us_ = 0;
};

}  // namespace crsm::obs
