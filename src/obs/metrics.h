// Observability substrate: named counters, gauges and bounded log-scale
// latency histograms with atomic snapshots and Prometheus/JSON export.
//
// The paper's whole argument is a latency *decomposition* (Section IV):
// where commit time goes across clock wait, quorum acks and stability. The
// runtime layers each grew their own counter structs (TransportStats,
// StorageStats, IoRingStats, ClockRsmReplica::Stats) but nothing unified
// them, and nothing measured distributions. MetricsRegistry is the one
// source of truth: every layer either owns registry metrics directly or is
// folded in at snapshot time by a collector, and one snapshot feeds every
// consumer — the /metrics HTTP endpoint (metrics_http.h), the crsm_node
// periodic stats line and the bench harness stage breakdowns.
//
// Threading contract: metric *values* are relaxed atomics — the hot-path
// writer (the node's event-loop thread) never takes a lock, and snapshot()
// may read them from any thread. Metric *registration* and collector
// installation take a mutex; they happen at startup and are cheap.
// Collectors, however, may read loop-thread-only state (protocol internals)
// — a registry whose collectors do must only be snapshotted from the loop
// thread (NodeRuntime::metrics_snapshot posts for exactly this reason).
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace crsm::obs {

// Monotonically increasing event count. set() exists for adapter use only:
// collectors folding an externally maintained cumulative counter (e.g.
// TransportStats::messages_sent) overwrite the value at snapshot time.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Point-in-time value (queue depths, batch sizes, 0/1 flags).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

// Bounded log-scale histogram of microsecond samples.
//
// HdrHistogram-style bucketing: values below 2^kSubBits are exact; above,
// each power-of-two octave is split into 2^kSubBits sub-buckets, so any
// recorded value is off by at most 1/2^(kSubBits+1) (6.25 % with 3 sub-bits)
// of itself. Memory is a fixed ~2.5 KB of relaxed atomics regardless of how
// many samples are recorded — safe for multi-day nodes — and two histograms
// merge by adding bucket counts, which is what lets per-replica and
// per-client instances aggregate without keeping samples.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr std::uint64_t kSub = 1ULL << kSubBits;  // sub-buckets/octave
  // Values clamp to ~2^42 us (= 52 days); octaves above that share the top
  // bucket. 8 exact low buckets + 8 per octave for widths 4..42.
  static constexpr std::size_t kNumBuckets = kSub + (42 - kSubBits) * kSub;

  void observe(std::uint64_t us);
  void merge(const LatencyHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum_us() const {
    return sum_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_us() const {
    return max_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_us() const;
  // Nearest-rank percentile with linear interpolation inside the landing
  // bucket; p in [0, 100]. Relative error bounded by the bucket width
  // (<= 6.25 % of the value).
  [[nodiscard]] double percentile_us(double p) const;

  // Which bucket a value lands in, and that bucket's inclusive value range.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t us);
  [[nodiscard]] static std::uint64_t bucket_lower_us(std::size_t idx);
  [[nodiscard]] static std::uint64_t bucket_upper_us(std::size_t idx);

  [[nodiscard]] std::uint64_t bucket_count(std::size_t idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

// --- snapshots --------------------------------------------------------------

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  // Cumulative counts at power-of-two microsecond boundaries (le = 2^k us,
  // k = 0..30, then +Inf) — the coarse view the Prometheus exposition emits.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cumulative;
};

struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  HistogramSnapshot hist;
};

// One atomic-enough view of the registry: every value read once, metrics
// sorted by name (so two snapshots diff cleanly and the kv line is stable).
struct Snapshot {
  std::vector<MetricValue> metrics;
  // Label set stamped on every Prometheus sample, e.g. `group="2"` — set via
  // Registry::set_labels by multi-group nodes so N registries scraped into
  // one Prometheus stay disjoint series. Empty (the default) renders the
  // unlabeled exposition format exactly as before.
  std::string labels;

  // nullptr when the name is absent.
  [[nodiscard]] const MetricValue* find(std::string_view name) const;
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
};

class Registry {
 public:
  // Idempotent by name: re-registering returns the existing metric (the
  // help string of the first registration wins). A name registered as one
  // kind must not be re-registered as another (throws std::logic_error).
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  LatencyHistogram& histogram(std::string_view name, std::string_view help = "");

  // Runs at every snapshot(), before values are read — the fold-in point
  // for externally maintained stats structs. Collectors that touch
  // single-threaded state restrict which threads may call snapshot(); see
  // the file comment.
  void add_collector(std::function<void(Registry&)> fn);

  // Inner Prometheus label pairs (`k="v"` comma-joined, no braces) attached
  // to every sample this registry exports; see Snapshot::labels.
  void set_labels(std::string labels);

  [[nodiscard]] Snapshot snapshot();

 private:
  struct Entry {
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> hist;
  };
  Entry& entry(std::string_view name, std::string_view help, MetricKind kind);

  mutable std::mutex mu_;  // registration + collector list only
  std::map<std::string, Entry, std::less<>> metrics_;
  std::vector<std::function<void(Registry&)>> collectors_;
  std::string labels_;
};

// --- export -----------------------------------------------------------------

// Prometheus text exposition format (version 0.0.4): HELP/TYPE comments,
// counters/gauges as bare samples, histograms as cumulative `_bucket{le=}`
// series (boundaries in microseconds) plus `_sum`/`_count`.
[[nodiscard]] std::string to_prometheus(const Snapshot& s);

// One flat JSON object: counters/gauges by name; histograms expanded to
// name_count/name_sum_us/name_p50_us/name_p90_us/name_p99_us/name_max_us.
[[nodiscard]] std::string to_json(const Snapshot& s);

// One `k=v k=v ...` line in sorted-name order — the crsm_node periodic
// stats format. Histograms contribute name_count and name_p99_us.
[[nodiscard]] std::string to_kv_line(const Snapshot& s);

}  // namespace crsm::obs
