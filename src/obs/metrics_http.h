// Minimal metrics HTTP endpoint on the node's EventLoop.
//
// Serves GET /metrics (Prometheus text exposition 0.0.4) and GET
// /metrics.json (one flat JSON object) straight off the loop thread:
// snapshot(), registration collectors and all — which is exactly why the
// registry's loop-thread-only collectors are safe to install. One request
// per connection (Connection: close); requests are tiny, responses are a
// few KB, and scrapers reconnect per scrape, so there is no keep-alive
// machinery to get wrong. Partial writes are finished off EPOLLOUT
// readiness before the connection closes.
//
// Lifecycle mirrors Acceptor: construction binds (so an ephemeral port is
// readable before the loop runs), start()/stop() are loop-thread only.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/acceptor.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace crsm::obs {

class MetricsHttpServer {
 public:
  MetricsHttpServer(net::EventLoop& loop, Registry& registry,
                    const std::string& host, std::uint16_t port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return acceptor_.port(); }

  // Loop-thread only.
  void start();
  void stop();

 private:
  struct Conn {
    net::Socket sock;
    std::string in;       // request bytes until the blank line
    std::string out;      // response; sent from out_off
    std::size_t out_off = 0;
    bool responding = false;
  };

  void on_accept(net::Socket&& s);
  void on_event(std::uint64_t id, std::uint32_t events);
  void handle_request(std::uint64_t id, Conn& c);
  void try_write(std::uint64_t id, Conn& c);
  void close_conn(std::uint64_t id);

  net::EventLoop& loop_;
  Registry& registry_;
  net::Acceptor acceptor_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_id_ = 1;
  Counter* scrapes_;
};

// Blocking one-shot HTTP GET helper for tests and the bench client: fetches
// http://host:port/path with a timeout and returns the response *body*
// (headers stripped). Throws net::NetError on connect/timeout/protocol
// failure. Runs on the caller's thread — never call from a loop thread.
[[nodiscard]] std::string http_get(const std::string& host, std::uint16_t port,
                                   const std::string& path,
                                   int timeout_ms = 2000);

}  // namespace crsm::obs
