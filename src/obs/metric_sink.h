// The dependency-free seam between instrumented components and the metrics
// registry. Components that keep their own cumulative counters (a protocol's
// Stats struct, a state machine's op counts) expose them by implementing a
// fill_metrics(MetricSink) virtual; the NodeRuntime collector calls it at
// snapshot time and folds each (name, value) pair into the registry. Names
// ending in "_total" register as Prometheus counters, anything else as a
// gauge. This keeps src/rsm and src/kv free of any obs dependency beyond
// this one header of std types.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

namespace crsm::obs {

using MetricSink =
    std::function<void(std::string_view name, std::uint64_t value)>;

}  // namespace crsm::obs
