#include "obs/loop_profiler.h"

namespace crsm::obs {

LoopProfiler::LoopProfiler(Registry& reg) {
  pass_us_ = &reg.histogram("crsm_loop_pass_us", "full event-loop pass");
  poll_wait_us_ = &reg.histogram("crsm_loop_poll_wait_us",
                                 "blocked in the kernel I/O wait");
  io_dispatch_us_ = &reg.histogram("crsm_loop_io_dispatch_us",
                                   "fd event dispatch (poll minus wait)");
  protocol_us_ =
      &reg.histogram("crsm_loop_protocol_us", "posted tasks and timers");
  fsync_us_ = &reg.histogram("crsm_loop_fsync_us",
                             "pass-end hook (WAL group commit)");
  wire_flush_us_ =
      &reg.histogram("crsm_loop_wire_flush_us", "outbound coalescing flush");
  busy_us_ = &reg.histogram("crsm_loop_busy_us", "pass minus kernel wait");
  cmds_per_pass_ = &reg.histogram("crsm_loop_cmds_per_pass",
                                  "commands released per durability flush");
  passes_total_ = &reg.counter("crsm_loop_passes_total", "event-loop passes");
}

void LoopProfiler::begin_pass(std::uint64_t now_us) {
  t_begin_ = now_us;
  wait_us_ = 0;
}

void LoopProfiler::note_poll_wait(std::uint64_t wait_us) {
  wait_us_ += wait_us;
}

void LoopProfiler::poll_done(std::uint64_t now_us) {
  t_poll_ = now_us;
  const std::uint64_t poll = now_us - t_begin_;
  poll_wait_us_->observe(wait_us_ < poll ? wait_us_ : poll);
  io_dispatch_us_->observe(poll > wait_us_ ? poll - wait_us_ : 0);
}

void LoopProfiler::tasks_done(std::uint64_t now_us) {
  t_tasks_ = now_us;
  protocol_us_->observe(now_us - t_poll_);
}

void LoopProfiler::fsync_done(std::uint64_t now_us) {
  t_fsync_ = now_us;
  fsync_us_->observe(now_us - t_tasks_);
}

void LoopProfiler::end_pass(std::uint64_t now_us) {
  wire_flush_us_->observe(now_us - t_fsync_);
  const std::uint64_t pass = now_us - t_begin_;
  pass_us_->observe(pass);
  busy_us_->observe(pass > wait_us_ ? pass - wait_us_ : 0);
  passes_total_->inc();
}

void LoopProfiler::note_batch(std::uint64_t n) { cmds_per_pass_->observe(n); }

}  // namespace crsm::obs
