#include "runtime/multi_group_node.h"

#include <unistd.h>

#include <string>

namespace crsm {

MultiGroupNode::MultiGroupNode(const NodeConfig& base, MultiGroupOptions opt,
                               const ProtocolFactory& protocol_factory,
                               const StateMachineFactory& sm_factory) {
  const std::size_t n = opt.groups == 0 ? 1 : opt.groups;
  const long ncpu_raw = ::sysconf(_SC_NPROCESSORS_ONLN);
  const int ncpu = static_cast<int>(ncpu_raw > 0 ? ncpu_raw : 1);
  groups_.reserve(n);
  for (std::size_t g = 0; g < n; ++g) {
    NodeConfig cfg = base;
    cfg.group = static_cast<ShardId>(g);
    cfg.num_groups = n;
    if (opt.pin_cores) cfg.pin_core = static_cast<int>(g) % ncpu;
    if (n > 1) {
      // Port stride: group g of every process listens at base port + g. A
      // base of 0 (tests) keeps every listener ephemeral instead.
      if (cfg.transport.listen_port != 0) {
        cfg.transport.listen_port =
            static_cast<std::uint16_t>(base.transport.listen_port + g);
      }
      if (!cfg.storage.dir.empty()) {
        cfg.storage.dir += "/group-" + std::to_string(g);
      }
      if (cfg.obs.metrics_http && cfg.obs.metrics_port != 0) {
        cfg.obs.metrics_port =
            static_cast<std::uint16_t>(base.obs.metrics_port + g);
      }
    }
    groups_.push_back(
        std::make_unique<NodeRuntime>(cfg, protocol_factory, sm_factory));
  }
}

void MultiGroupNode::start(const std::vector<TcpPeer>& base_peers) {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    std::vector<TcpPeer> peers = base_peers;
    if (groups_.size() > 1) {
      for (TcpPeer& p : peers) {
        p.port = static_cast<std::uint16_t>(p.port + g);
      }
    }
    groups_[g]->start(std::move(peers));
  }
}

void MultiGroupNode::stop() {
  for (auto& node : groups_) node->stop();
}

std::uint64_t MultiGroupNode::executed() const {
  std::uint64_t total = 0;
  for (const auto& node : groups_) total += node->executed();
  return total;
}

std::uint64_t MultiGroupNode::reads_served() const {
  std::uint64_t total = 0;
  for (const auto& node : groups_) total += node->reads_served();
  return total;
}

bool MultiGroupNode::recovering() const {
  for (const auto& node : groups_) {
    if (node->recovering()) return true;
  }
  return false;
}

}  // namespace crsm
