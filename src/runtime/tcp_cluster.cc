#include "runtime/tcp_cluster.h"

#include <unistd.h>

#include <stdexcept>
#include <utility>

namespace crsm {

std::unique_ptr<NodeRuntime> TcpCluster::make_node(ReplicaId id,
                                                   std::uint16_t port) const {
  NodeConfig cfg;
  cfg.id = id;
  cfg.transport.listen_host = "127.0.0.1";
  cfg.transport.listen_port = port;  // 0 = ephemeral; resolved before start()
  cfg.transport.max_pending_bytes = opt_.max_pending_bytes;
  cfg.transport.policy = opt_.policy;
  cfg.transport.max_coalesce_bytes = opt_.max_coalesce_bytes;
  cfg.io_backend = opt_.io_backend;
  cfg.max_batch_cmds = opt_.max_batch_cmds;
  cfg.max_batch_bytes = opt_.max_batch_bytes;
  cfg.group = opt_.group;
  cfg.num_groups = opt_.num_groups;
  if (opt_.pin_core_base >= 0) {
    const long ncpu = ::sysconf(_SC_NPROCESSORS_ONLN);
    cfg.pin_core = (opt_.pin_core_base + static_cast<int>(id)) %
                   static_cast<int>(ncpu > 0 ? ncpu : 1);
  }
  cfg.obs = opt_.obs;
  cfg.obs.metrics_port = 0;  // per-node ephemeral; fixed ports would collide
  if (!opt_.log_dir.empty()) {
    cfg.storage.dir = opt_.log_dir + "/node-" + std::to_string(id);
    cfg.storage.group_commit = opt_.group_commit;
    cfg.storage.checkpoint_every = opt_.checkpoint_every;
    cfg.storage.test_fsync_delay_us = opt_.test_fsync_delay_us;
  }
  return std::make_unique<NodeRuntime>(cfg, protocol_factory_, sm_factory_);
}

void TcpCluster::install_hooks(NodeRuntime& node) const {
  if (reply_hook_) {
    node.set_reply_hook([hook = reply_hook_, r = node.id()](const Command& cmd) {
      hook(r, cmd);
    });
  }
  if (commit_hook_) {
    node.set_commit_hook([hook = commit_hook_, r = node.id()](
                             const Command& cmd, Timestamp ts, bool local) {
      hook(r, cmd, ts, local);
    });
  }
  if (read_hook_) {
    node.set_read_hook([hook = read_hook_, r = node.id()](
                           const Command& cmd, std::string_view output) {
      hook(r, cmd, output);
    });
  }
}

std::vector<TcpPeer> TcpCluster::peer_table() const {
  std::vector<TcpPeer> peers;
  peers.reserve(ports_.size());
  for (std::uint16_t p : ports_) peers.push_back(TcpPeer{"127.0.0.1", p});
  return peers;
}

TcpCluster::TcpCluster(std::size_t n, ProtocolFactory protocol_factory,
                       StateMachineFactory sm_factory, Options opt)
    : protocol_factory_(std::move(protocol_factory)),
      sm_factory_(std::move(sm_factory)),
      opt_(std::move(opt)) {
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.push_back(make_node(static_cast<ReplicaId>(i), 0));
    // The kernel-assigned port is the node's address for the whole cluster
    // lifetime: a restarted node rebinds it (SO_REUSEADDR) so peers' redial
    // loops find the replacement at the same place.
    ports_.push_back(nodes_.back()->port());
  }
}

TcpCluster::~TcpCluster() { stop(); }

void TcpCluster::set_reply_hook(ReplyHook hook) {
  reply_hook_ = std::move(hook);
  for (auto& node : nodes_) {
    if (node) install_hooks(*node);
  }
}

void TcpCluster::set_commit_hook(CommitHook hook) {
  commit_hook_ = std::move(hook);
  for (auto& node : nodes_) {
    if (node) install_hooks(*node);
  }
}

void TcpCluster::set_read_hook(ReadHook hook) {
  read_hook_ = std::move(hook);
  for (auto& node : nodes_) {
    if (node) install_hooks(*node);
  }
}

void TcpCluster::start() {
  if (started_) return;
  started_ = true;
  // Every listener was bound in the constructor, so the full address table
  // is known before any node dials. A node killed before this start stays
  // down until restart(r).
  for (auto& node : nodes_) {
    if (node) node->start(peer_table());
  }
}

void TcpCluster::stop() {
  if (!started_) return;
  started_ = false;
  for (auto& node : nodes_) {
    if (node) node->stop();
  }
}

void TcpCluster::kill(ReplicaId r) {
  nodes_.at(r).reset();
}

void TcpCluster::restart(ReplicaId r) {
  if (nodes_.at(r)) return;
  auto node = make_node(r, ports_.at(r));
  install_hooks(*node);
  if (started_) node->start(peer_table());
  nodes_.at(r) = std::move(node);
}

void TcpCluster::submit(ReplicaId r, Command cmd) {
  auto& node = nodes_.at(r);
  if (!node) throw std::runtime_error("TcpCluster::submit: replica killed");
  node->submit(std::move(cmd));
}

void TcpCluster::submit_read(ReplicaId r, Command cmd) {
  auto& node = nodes_.at(r);
  if (!node) throw std::runtime_error("TcpCluster::submit_read: replica killed");
  node->submit_read(std::move(cmd));
}

TransportStats TcpCluster::stats() const {
  TransportStats total;
  for (const auto& node : nodes_) {
    if (!node) continue;
    const TransportStats s = node->transport_stats();
    total.messages_sent += s.messages_sent;
    total.messages_delivered += s.messages_delivered;
    total.messages_dropped += s.messages_dropped;
    total.bytes_sent += s.bytes_sent;
    total.encode_calls += s.encode_calls;
    total.backpressure_blocks += s.backpressure_blocks;
    total.wire_flushes += s.wire_flushes;
    total.frames_flushed += s.frames_flushed;
    total.sqe_submits += s.sqe_submits;
    total.sqes_submitted += s.sqes_submitted;
    total.uring_fallbacks += s.uring_fallbacks;
  }
  return total;
}

NodeRuntime::BatchStats TcpCluster::batch_stats() const {
  NodeRuntime::BatchStats total;
  for (const auto& node : nodes_) {
    if (!node) continue;
    const NodeRuntime::BatchStats s = node->batch_stats();
    total.cmds += s.cmds;
    total.submissions += s.submissions;
  }
  return total;
}

}  // namespace crsm
