#include "runtime/tcp_cluster.h"

#include <utility>

namespace crsm {

TcpCluster::TcpCluster(std::size_t n, ProtocolFactory protocol_factory,
                       StateMachineFactory sm_factory, Options opt) {
  for (std::size_t i = 0; i < n; ++i) {
    NodeConfig cfg;
    cfg.id = static_cast<ReplicaId>(i);
    cfg.transport.listen_host = "127.0.0.1";
    cfg.transport.listen_port = 0;  // ephemeral; resolved before start()
    cfg.transport.max_pending_bytes = opt.max_pending_bytes;
    cfg.transport.policy = opt.policy;
    nodes_.push_back(std::make_unique<NodeRuntime>(cfg, protocol_factory,
                                                   sm_factory));
  }
}

TcpCluster::~TcpCluster() { stop(); }

void TcpCluster::set_reply_hook(ReplyHook hook) {
  for (auto& node : nodes_) {
    node->set_reply_hook(
        [hook, r = node->id()](const Command& cmd) { hook(r, cmd); });
  }
}

void TcpCluster::set_commit_hook(CommitHook hook) {
  for (auto& node : nodes_) {
    node->set_commit_hook([hook, r = node->id()](const Command& cmd,
                                                 Timestamp ts, bool local) {
      hook(r, cmd, ts, local);
    });
  }
}

void TcpCluster::start() {
  if (started_) return;
  started_ = true;
  // Every listener was bound in the constructor, so the full address table
  // is known before any node dials.
  std::vector<TcpPeer> peers;
  peers.reserve(nodes_.size());
  for (auto& node : nodes_) {
    peers.push_back(TcpPeer{"127.0.0.1", node->port()});
  }
  for (auto& node : nodes_) node->start(peers);
}

void TcpCluster::stop() {
  if (!started_) return;
  started_ = false;
  for (auto& node : nodes_) node->stop();
}

void TcpCluster::submit(ReplicaId r, Command cmd) {
  nodes_.at(r)->submit(std::move(cmd));
}

TransportStats TcpCluster::stats() const {
  TransportStats total;
  for (const auto& node : nodes_) {
    const TransportStats s = node->transport_stats();
    total.messages_sent += s.messages_sent;
    total.messages_delivered += s.messages_delivered;
    total.messages_dropped += s.messages_dropped;
    total.bytes_sent += s.bytes_sent;
    total.encode_calls += s.encode_calls;
    total.backpressure_blocks += s.backpressure_blocks;
  }
  return total;
}

}  // namespace crsm
