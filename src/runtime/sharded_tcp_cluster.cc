#include "runtime/sharded_tcp_cluster.h"

#include <utility>

namespace crsm {

ShardedTcpCluster::ShardedTcpCluster(Options opt,
                                     ProtocolFactory protocol_factory,
                                     StateMachineFactory sm_factory)
    : opt_(std::move(opt)), router_(opt_.groups) {
  clusters_.reserve(opt_.groups);
  for (std::size_t g = 0; g < opt_.groups; ++g) {
    TcpClusterOptions copt = opt_.base;
    copt.group = static_cast<ShardId>(g);
    copt.num_groups = opt_.groups;
    if (!copt.log_dir.empty()) {
      copt.log_dir += "/group-" + std::to_string(g);
    }
    if (opt_.pin_cores) {
      copt.pin_core_base = static_cast<int>(g * opt_.replicas);
    }
    if (opt_.tweak) opt_.tweak(static_cast<ShardId>(g), copt);
    clusters_.push_back(std::make_unique<TcpCluster>(
        opt_.replicas, protocol_factory, sm_factory, std::move(copt)));
  }
}

void ShardedTcpCluster::set_reply_hook(ReplyHook hook) {
  for (std::size_t g = 0; g < clusters_.size(); ++g) {
    clusters_[g]->set_reply_hook(
        [hook, g](ReplicaId r, const Command& cmd) {
          hook(static_cast<ShardId>(g), r, cmd);
        });
  }
}

void ShardedTcpCluster::set_commit_hook(CommitHook hook) {
  for (std::size_t g = 0; g < clusters_.size(); ++g) {
    clusters_[g]->set_commit_hook(
        [hook, g](ReplicaId r, const Command& cmd, Timestamp ts, bool local) {
          hook(static_cast<ShardId>(g), r, cmd, ts, local);
        });
  }
}

void ShardedTcpCluster::set_read_hook(ReadHook hook) {
  for (std::size_t g = 0; g < clusters_.size(); ++g) {
    clusters_[g]->set_read_hook(
        [hook, g](ReplicaId r, const Command& cmd, std::string_view output) {
          hook(static_cast<ShardId>(g), r, cmd, output);
        });
  }
}

void ShardedTcpCluster::start() {
  for (auto& c : clusters_) c->start();
}

void ShardedTcpCluster::stop() {
  for (auto& c : clusters_) c->stop();
}

void ShardedTcpCluster::submit(ReplicaId r, Command cmd) {
  clusters_.at(router_.shard_of(cmd))->submit(r, std::move(cmd));
}

void ShardedTcpCluster::submit_read(ReplicaId r, Command cmd) {
  clusters_.at(router_.shard_of(cmd))->submit_read(r, std::move(cmd));
}

void ShardedTcpCluster::kill_process(ReplicaId r) {
  for (auto& c : clusters_) c->kill(r);
}

void ShardedTcpCluster::restart_process(ReplicaId r) {
  for (auto& c : clusters_) c->restart(r);
}

std::uint64_t ShardedTcpCluster::total_executed() const {
  std::uint64_t total = 0;
  for (const auto& c : clusters_) total += c->executed(0);
  return total;
}

std::vector<ShardEndpoint> ShardedTcpCluster::endpoints(ReplicaId r) const {
  std::vector<ShardEndpoint> out;
  out.reserve(clusters_.size());
  for (const auto& c : clusters_) {
    out.push_back(ShardEndpoint{"127.0.0.1", c->port(r)});
  }
  return out;
}

}  // namespace crsm
