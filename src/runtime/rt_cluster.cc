#include "runtime/rt_cluster.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "clock/system_clock.h"
#include "common/wire_frame.h"
#include "storage/replica_storage.h"

namespace crsm {

// One replica thread plus its environment. All protocol entry points run on
// the owning thread; cross-thread interaction happens only through the
// transport's byte queues and the submit queue. Storage is the shared
// StorageBackedEnv seam with no directory: a volatile in-memory log,
// matching the paper's throughput setup ("replicas log commands to main
// memory").
struct RtCluster::Replica final : public StorageBackedEnv {
  Replica() : StorageBackedEnv(StorageOptions{}) {}

  RtCluster* cluster = nullptr;
  ReplicaId id = kNoReplica;

  std::mutex submit_mu;
  std::deque<Command> submits;

  struct Timer {
    Tick deadline;
    std::function<void()> fn;
  };
  std::vector<Timer> timers;  // small; scanned each loop iteration

  std::mutex wake_mu;
  std::condition_variable wake_cv;
  bool has_work = false;

  SystemClock clock;
  std::unique_ptr<StateMachine> sm;
  std::unique_ptr<ReplicaProtocol> proto;
  std::thread thread;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> busy_us{0};

  // --- ProtocolEnv (called from this replica's thread only) ---
  [[nodiscard]] ReplicaId self() const override { return id; }

  void send(ReplicaId to, const Message& m) override {
    cluster->transport_.send(id, to, FrameWriter(id).frame(m));
  }

  // The fan-out hot path: one Message copy, one serialization, N links.
  void multicast(const std::vector<ReplicaId>& tos, const Message& m) override {
    cluster->transport_.multicast(id, tos, FrameWriter(id).frame(m));
  }

  [[nodiscard]] Tick clock_now() override { return clock.now_us(); }

  void schedule_after(Tick delay_us, std::function<void()> fn) override {
    timers.push_back(Timer{clock.now_us() + delay_us, std::move(fn)});
  }

  void deliver(const Command& cmd, Timestamp ts, bool local_origin) override {
    (void)ts;
    sm->apply(cmd);
    executed.fetch_add(1, std::memory_order_relaxed);
    if (local_origin && cluster->reply_hook_) cluster->reply_hook_(id, cmd);
  }

  void wake() {
    {
      std::lock_guard<std::mutex> lk(wake_mu);
      has_work = true;
    }
    wake_cv.notify_one();
  }

  void run() {
    proto->start();
    std::deque<Command> local_submits;
    while (cluster->running_.load(std::memory_order_acquire)) {
      bool did_work = false;
      const auto iter_start = std::chrono::steady_clock::now();

      // 1. Client submissions.
      {
        std::lock_guard<std::mutex> lk(submit_mu);
        local_submits.swap(submits);
      }
      for (Command& c : local_submits) {
        proto->submit(std::move(c));
        did_work = true;
      }
      local_submits.clear();

      // 2. Inbound messages, one link at a time (FIFO per link), decoded
      // zero-copy out of the transport's pooled receive buffer.
      if (cluster->transport_.poll(id)) did_work = true;

      // 3. Due timers.
      if (!timers.empty()) {
        const Tick now = clock.now_us();
        for (std::size_t i = 0; i < timers.size();) {
          if (timers[i].deadline <= now) {
            auto fn = std::move(timers[i].fn);
            timers.erase(timers.begin() + static_cast<long>(i));
            fn();
            did_work = true;
          } else {
            ++i;
          }
        }
      }

      // Flush unconditionally: start() or timers may have produced output
      // even on passes that saw no inbound work.
      cluster->transport_.flush(id);

      if (did_work) {
        const auto spent = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - iter_start);
        busy_us.fetch_add(static_cast<std::uint64_t>(spent.count()),
                          std::memory_order_relaxed);
      } else {
        std::unique_lock<std::mutex> lk(wake_mu);
        wake_cv.wait_for(lk, std::chrono::microseconds(200),
                         [this] { return has_work; });
        has_work = false;
      }
    }
  }
};

RtCluster::RtCluster(std::size_t n, ProtocolFactory protocol_factory,
                     StateMachineFactory sm_factory, Options opt)
    : transport_(n, opt) {
  for (std::size_t i = 0; i < n; ++i) {
    auto r = std::make_unique<Replica>();
    r->cluster = this;
    r->id = static_cast<ReplicaId>(i);
    r->sm = sm_factory();
    transport_.register_replica(
        r->id, [rp = r.get()](const Message& m) { rp->proto->on_message(m); },
        [rp = r.get()] { rp->wake(); });
    replicas_.push_back(std::move(r));
  }
  // Protocol construction happens after all replicas exist so factories may
  // capture cluster-wide state safely.
  for (auto& r : replicas_) {
    r->proto = protocol_factory(*r, r->id);
  }
}

RtCluster::~RtCluster() { stop(); }

void RtCluster::start() {
  if (running_.exchange(true)) return;
  for (auto& r : replicas_) {
    r->thread = std::thread([rp = r.get()] { rp->run(); });
  }
}

void RtCluster::stop() {
  if (!running_.exchange(false)) return;
  // Release any sender stalled in bounded-queue backpressure before
  // joining: its receiver may already have left its drain loop.
  transport_.shutdown();
  for (auto& r : replicas_) {
    r->wake();
    if (r->thread.joinable()) r->thread.join();
  }
}

void RtCluster::submit(ReplicaId r, Command cmd) {
  Replica& rep = *replicas_.at(r);
  {
    std::lock_guard<std::mutex> lk(rep.submit_mu);
    rep.submits.push_back(std::move(cmd));
  }
  rep.wake();
}

std::uint64_t RtCluster::executed(ReplicaId r) const {
  return replicas_.at(r)->executed.load(std::memory_order_relaxed);
}

std::uint64_t RtCluster::busy_us(ReplicaId r) const {
  return replicas_.at(r)->busy_us.load(std::memory_order_relaxed);
}

}  // namespace crsm
