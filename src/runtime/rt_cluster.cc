#include "runtime/rt_cluster.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <utility>

#include "clock/system_clock.h"
#include "storage/command_log.h"

namespace crsm {

// One replica thread plus its environment. All protocol entry points run on
// the owning thread; cross-thread interaction happens only through the
// byte queues and the submit queue.
struct RtCluster::Replica final : public ProtocolEnv {
  RtCluster* cluster = nullptr;
  ReplicaId id = kNoReplica;

  // Per-sender FIFO inbound links carrying framed message bytes. Senders
  // append under the link mutex; the receiver swaps the buffer out, which
  // batches decoding opportunistically (the paper's implementations batch
  // the same way: "whenever possible ... without waiting intentionally").
  struct Link {
    std::mutex mu;
    std::string buf;
  };
  std::vector<std::unique_ptr<Link>> in;

  std::mutex submit_mu;
  std::deque<Command> submits;

  struct Timer {
    Tick deadline;
    std::function<void()> fn;
  };
  std::vector<Timer> timers;  // small; scanned each loop iteration

  std::mutex wake_mu;
  std::condition_variable wake_cv;
  bool has_work = false;

  SystemClock clock;
  MemLog log_store;
  std::unique_ptr<StateMachine> sm;
  std::unique_ptr<ReplicaProtocol> proto;
  std::thread thread;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> busy_us{0};

  // Sender-side batch buffers (one per destination), flushed at the end of
  // each processing pass when Options::sender_batching is on.
  std::vector<std::string> out_bufs;

  // --- ProtocolEnv (called from this replica's thread only) ---
  [[nodiscard]] ReplicaId self() const override { return id; }

  void send(ReplicaId to, const Message& m) override {
    Message copy = m;
    copy.from = id;
    if (cluster->opt_.sender_batching && to != id) {
      cluster->encode_for_link(id, to, copy, &out_bufs[to]);
      return;
    }
    cluster->route(id, to, copy);
  }

  void flush_out_bufs() {
    for (std::size_t to = 0; to < out_bufs.size(); ++to) {
      if (out_bufs[to].empty()) continue;
      cluster->deliver_bytes(id, static_cast<ReplicaId>(to),
                             std::move(out_bufs[to]));
      out_bufs[to].clear();
    }
  }

  [[nodiscard]] Tick clock_now() override { return clock.now_us(); }

  void schedule_after(Tick delay_us, std::function<void()> fn) override {
    timers.push_back(Timer{clock.now_us() + delay_us, std::move(fn)});
  }

  [[nodiscard]] CommandLog& log() override { return log_store; }

  void deliver(const Command& cmd, Timestamp ts, bool local_origin) override {
    (void)ts;
    sm->apply(cmd);
    executed.fetch_add(1, std::memory_order_relaxed);
    if (local_origin && cluster->reply_hook_) cluster->reply_hook_(id, cmd);
  }

  void wake() {
    {
      std::lock_guard<std::mutex> lk(wake_mu);
      has_work = true;
    }
    wake_cv.notify_one();
  }

  void run() {
    proto->start();
    std::string batch;
    std::deque<Command> local_submits;
    while (cluster->running_.load(std::memory_order_acquire)) {
      bool did_work = false;
      const auto iter_start = std::chrono::steady_clock::now();

      // 1. Client submissions.
      {
        std::lock_guard<std::mutex> lk(submit_mu);
        local_submits.swap(submits);
      }
      for (Command& c : local_submits) {
        proto->submit(std::move(c));
        did_work = true;
      }
      local_submits.clear();

      // 2. Inbound messages, one link at a time (FIFO per link).
      for (auto& link : in) {
        {
          std::lock_guard<std::mutex> lk(link->mu);
          batch.swap(link->buf);
        }
        if (batch.empty()) continue;
        std::size_t pos = 0;
        while (pos < batch.size()) {
          proto->on_message(Message::decode_stream(batch, &pos));
        }
        batch.clear();
        did_work = true;
      }

      // 3. Due timers.
      if (!timers.empty()) {
        const Tick now = clock.now_us();
        for (std::size_t i = 0; i < timers.size();) {
          if (timers[i].deadline <= now) {
            auto fn = std::move(timers[i].fn);
            timers.erase(timers.begin() + static_cast<long>(i));
            fn();
            did_work = true;
          } else {
            ++i;
          }
        }
      }

      // Flush unconditionally: start() or timers may have produced output
      // even on passes that saw no inbound work.
      if (cluster->opt_.sender_batching) flush_out_bufs();

      if (did_work) {
        const auto spent = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - iter_start);
        busy_us.fetch_add(static_cast<std::uint64_t>(spent.count()),
                          std::memory_order_relaxed);
      } else {
        std::unique_lock<std::mutex> lk(wake_mu);
        wake_cv.wait_for(lk, std::chrono::microseconds(200),
                         [this] { return has_work; });
        has_work = false;
      }
    }
  }
};

RtCluster::RtCluster(std::size_t n, ProtocolFactory protocol_factory,
                     StateMachineFactory sm_factory, Options opt)
    : opt_(opt) {
  for (std::size_t i = 0; i < n; ++i) {
    auto r = std::make_unique<Replica>();
    r->cluster = this;
    r->id = static_cast<ReplicaId>(i);
    r->out_bufs.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      r->in.push_back(std::make_unique<Replica::Link>());
    }
    r->sm = sm_factory();
    replicas_.push_back(std::move(r));
  }
  // Protocol construction happens after all replicas exist so factories may
  // capture cluster-wide state safely.
  for (auto& r : replicas_) {
    r->proto = protocol_factory(*r, r->id);
  }
}

RtCluster::~RtCluster() { stop(); }

void RtCluster::start() {
  if (running_.exchange(true)) return;
  for (auto& r : replicas_) {
    r->thread = std::thread([rp = r.get()] { rp->run(); });
  }
}

void RtCluster::stop() {
  if (!running_.exchange(false)) return;
  for (auto& r : replicas_) {
    r->wake();
    if (r->thread.joinable()) r->thread.join();
  }
}

namespace {

// Burns sender-side CPU proportional to message size, standing in for the
// kernel network stack (copies + checksum) a socket-based deployment pays.
std::uint64_t wire_work(std::string_view bytes, unsigned passes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned p = 0; p < passes; ++p) {
    for (unsigned char c : bytes) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace

void RtCluster::encode_for_link(ReplicaId from, ReplicaId to, const Message& m,
                                std::string* buf) {
  const std::size_t before = buf->size();
  m.encode(buf);
  if (opt_.wire_passes_per_byte > 0 && to != from) {
    // Only the newly appended bytes pay the per-byte stack cost.
    volatile std::uint64_t sink =
        wire_work(std::string_view(buf->data() + before, buf->size() - before),
                  opt_.wire_passes_per_byte);
    (void)sink;
  }
  bytes_sent_.fetch_add(buf->size() - before, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
}

void RtCluster::deliver_bytes(ReplicaId from, ReplicaId to, std::string bytes) {
  Replica& dst = *replicas_.at(to);
  Replica::Link& link = *dst.in.at(from);
  {
    std::lock_guard<std::mutex> lk(link.mu);
    link.buf.append(bytes);
  }
  if (to != from) dst.wake();  // self-sends are drained by the current loop pass
}

void RtCluster::route(ReplicaId from, ReplicaId to, const Message& m) {
  std::string bytes;
  encode_for_link(from, to, m, &bytes);
  deliver_bytes(from, to, std::move(bytes));
}

void RtCluster::submit(ReplicaId r, Command cmd) {
  Replica& rep = *replicas_.at(r);
  {
    std::lock_guard<std::mutex> lk(rep.submit_mu);
    rep.submits.push_back(std::move(cmd));
  }
  rep.wake();
}

std::uint64_t RtCluster::executed(ReplicaId r) const {
  return replicas_.at(r)->executed.load(std::memory_order_relaxed);
}

std::uint64_t RtCluster::busy_us(ReplicaId r) const {
  return replicas_.at(r)->busy_us.load(std::memory_order_relaxed);
}

}  // namespace crsm
