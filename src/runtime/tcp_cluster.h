// In-process N-node TCP cluster on loopback: the test/bench harness for
// the real-socket runtime.
//
// Boots N NodeRuntimes — each with its own epoll loop thread, listening on
// an ephemeral 127.0.0.1 port — wires them into a full mesh and exposes the
// same submit/reply surface as RtCluster, so throughput drivers and
// agreement tests can run unchanged against real TCP sockets. Every
// inter-replica message genuinely crosses the kernel: encoded once,
// writev'd per link, reassembled and decoded zero-copy at the receiver.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/command.h"
#include "common/types.h"
#include "runtime/node.h"

namespace crsm {

struct TcpClusterOptions {
  // Applied to every node (listen host/port are managed by the cluster).
  std::size_t max_pending_bytes = 0;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
};

class TcpCluster {
 public:
  using ProtocolFactory = NodeRuntime::ProtocolFactory;
  using StateMachineFactory = NodeRuntime::StateMachineFactory;
  using ReplyHook = std::function<void(ReplicaId, const Command&)>;
  using CommitHook =
      std::function<void(ReplicaId, const Command&, Timestamp, bool)>;
  using Options = TcpClusterOptions;

  // Binds every node's listener (ephemeral ports) but starts nothing.
  TcpCluster(std::size_t n, ProtocolFactory protocol_factory,
             StateMachineFactory sm_factory, Options opt = {});
  ~TcpCluster();

  TcpCluster(const TcpCluster&) = delete;
  TcpCluster& operator=(const TcpCluster&) = delete;

  // Hooks run on the owning node's loop thread; install before start().
  void set_reply_hook(ReplyHook hook);
  void set_commit_hook(CommitHook hook);

  // Starts all nodes. Links come up asynchronously; messages sent before a
  // link finishes connecting queue at the transport and flush on connect.
  void start();
  void stop();

  [[nodiscard]] std::size_t num_replicas() const { return nodes_.size(); }
  [[nodiscard]] NodeRuntime& node(ReplicaId r) { return *nodes_.at(r); }
  [[nodiscard]] std::uint16_t port(ReplicaId r) const {
    return nodes_.at(r)->port();
  }

  // Thread-safe: submits a client command at replica r.
  void submit(ReplicaId r, Command cmd);

  [[nodiscard]] std::uint64_t executed(ReplicaId r) const {
    return nodes_.at(r)->executed();
  }

  // Aggregate wire counters across every node's transport.
  [[nodiscard]] TransportStats stats() const;

 private:
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  bool started_ = false;
};

}  // namespace crsm
