// In-process N-node TCP cluster on loopback: the test/bench harness for
// the real-socket runtime.
//
// Boots N NodeRuntimes — each with its own epoll loop thread, listening on
// an ephemeral 127.0.0.1 port — wires them into a full mesh and exposes the
// same submit/reply surface as RtCluster, so throughput drivers and
// agreement tests can run unchanged against real TCP sockets. Every
// inter-replica message genuinely crosses the kernel: encoded once,
// writev'd per link, reassembled and decoded zero-copy at the receiver.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/command.h"
#include "common/types.h"
#include "net/event_loop.h"
#include "runtime/node.h"

namespace crsm {

struct TcpClusterOptions {
  // Applied to every node (listen host/port are managed by the cluster).
  std::size_t max_pending_bytes = 0;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  // Durable nodes: replica i logs to <log_dir>/node-<i> (WAL + checkpoint).
  // Empty = volatile MemLog. With a log dir set, kill()/restart() give the
  // crash-restart story its in-process harness.
  std::string log_dir;
  bool group_commit = true;
  std::uint64_t checkpoint_every = 0;
  // I/O backend for every node's event loop. kUring falls back to epoll
  // (logged, counted in stats().uring_fallbacks) when the kernel refuses.
  net::IoBackend io_backend = net::IoBackend::kEpoll;
  // Per-pass wire coalescing budget per connection; 0 disables coalescing
  // (every send flushes immediately). See TcpTransportOptions.
  std::size_t max_coalesce_bytes = 256 * 1024;
  // Protocol-level command batching, applied to every node (see
  // NodeConfig::max_batch_cmds / max_batch_bytes). 1 = batching off.
  std::size_t max_batch_cmds = 1;
  std::size_t max_batch_bytes = 256 * 1024;
  // Sharded topologies (ShardedTcpCluster): every node of this cluster
  // serves replica group `group` of `num_groups` (wrong-key rejection +
  // group-labeled metrics, see NodeConfig). Defaults = unsharded.
  ShardId group = 0;
  std::size_t num_groups = 1;
  // >= 0: pin replica r's loop thread to core pin_core_base + r (mod the
  // online core count). -1 = unpinned.
  int pin_core_base = -1;
  // Fault injection: per-fsync sleep applied to every node's WAL (see
  // StorageOptions::test_fsync_delay_us). Isolation tests stall one group.
  std::uint64_t test_fsync_delay_us = 0;
  // Observability knobs applied to every node (metrics_port stays 0:
  // ephemeral per node, readable via node(r).metrics_port()).
  NodeObsOptions obs;
};

class TcpCluster {
 public:
  using ProtocolFactory = NodeRuntime::ProtocolFactory;
  using StateMachineFactory = NodeRuntime::StateMachineFactory;
  using ReplyHook = std::function<void(ReplicaId, const Command&)>;
  using CommitHook =
      std::function<void(ReplicaId, const Command&, Timestamp, bool)>;
  using ReadHook =
      std::function<void(ReplicaId, const Command&, std::string_view)>;
  using Options = TcpClusterOptions;

  // Binds every node's listener (ephemeral ports) but starts nothing.
  TcpCluster(std::size_t n, ProtocolFactory protocol_factory,
             StateMachineFactory sm_factory, Options opt = {});
  ~TcpCluster();

  TcpCluster(const TcpCluster&) = delete;
  TcpCluster& operator=(const TcpCluster&) = delete;

  // Hooks run on the owning node's loop thread; install before start().
  void set_reply_hook(ReplyHook hook);
  void set_commit_hook(CommitHook hook);
  void set_read_hook(ReadHook hook);

  // Starts all nodes. Links come up asynchronously; messages sent before a
  // link finishes connecting queue at the transport and flush on connect.
  void start();
  void stop();

  // Hard-kills replica r: destroys its runtime with no protocol-level
  // goodbye — the in-process stand-in for `kill -9`. A durable node keeps
  // exactly what reached its WAL/checkpoint; peers see the connections die
  // and redial with backoff. Call from the thread that owns start()/stop(),
  // and only while no submit(r)/executed(r)/node(r) call for THIS replica
  // can be in flight on another thread (kill/restart swap the node pointer
  // unsynchronized; accessors to other replicas are unaffected). While r is
  // dead, submit(r) throws and executed(r) reads 0 — check alive(r).
  void kill(ReplicaId r);
  // Recreates replica r from its log directory, rebinds the same port and
  // starts it; the node replays its WAL and (Clock-RSM with catch-up
  // enabled) fetches what it missed from live peers.
  void restart(ReplicaId r);
  [[nodiscard]] bool alive(ReplicaId r) const { return nodes_.at(r) != nullptr; }

  [[nodiscard]] std::size_t num_replicas() const { return nodes_.size(); }
  [[nodiscard]] NodeRuntime& node(ReplicaId r) { return *nodes_.at(r); }
  [[nodiscard]] std::uint16_t port(ReplicaId r) const { return ports_.at(r); }

  // Thread-safe: submits a client command at replica r.
  void submit(ReplicaId r, Command cmd);
  // Thread-safe: submits a read-only command at replica r (answered via the
  // read hook; served locally when the protocol supports it).
  void submit_read(ReplicaId r, Command cmd);

  [[nodiscard]] std::uint64_t executed(ReplicaId r) const {
    const auto& node = nodes_.at(r);
    return node ? node->executed() : 0;
  }
  [[nodiscard]] std::uint64_t reads_served(ReplicaId r) const {
    const auto& node = nodes_.at(r);
    return node ? node->reads_served() : 0;
  }

  // Aggregate wire counters across every node's transport.
  [[nodiscard]] TransportStats stats() const;

  // Aggregate batching counters across every live node (cmds accepted /
  // protocol submissions; their ratio is the achieved cmds-per-PREPARE).
  [[nodiscard]] NodeRuntime::BatchStats batch_stats() const;

 private:
  [[nodiscard]] std::unique_ptr<NodeRuntime> make_node(ReplicaId id,
                                                       std::uint16_t port) const;
  void install_hooks(NodeRuntime& node) const;
  [[nodiscard]] std::vector<TcpPeer> peer_table() const;

  ProtocolFactory protocol_factory_;
  StateMachineFactory sm_factory_;
  Options opt_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  std::vector<std::uint16_t> ports_;  // stable across kill/restart
  ReplyHook reply_hook_;
  CommitHook commit_hook_;
  ReadHook read_hook_;
  bool started_ = false;
};

}  // namespace crsm
