// MultiGroupNode: one process hosting one replica of N independent replica
// groups — the production shape of the sharded deployment.
//
// Each group is a full NodeRuntime: its own event-loop thread (optionally
// affinity-pinned to its own core), TcpTransport, WAL/group-commit pipeline
// under <dir>/group-<g>, and metrics registry labeled group="g". Group g of
// the process listens on base port + g (the port-stride convention every
// process of the cluster follows), so one `--peers` table of base addresses
// describes the whole groups x replicas topology. crsm_node wraps this
// class; ShardedTcpCluster is its loopback test-harness analogue.
//
// Protocol CPU was the single-core ceiling (~34k durable cmds/s at batch
// 64, ROADMAP); with one loop thread per group, every group brings its own
// commit pipeline — the per-core unit of scale the paper's throughput story
// assumes when it shards the key space across groups.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/node.h"

namespace crsm {

struct MultiGroupOptions {
  std::size_t groups = 1;
  // Pin group g's loop thread to core g (mod the online core count).
  bool pin_cores = false;
};

class MultiGroupNode {
 public:
  using ProtocolFactory = NodeRuntime::ProtocolFactory;
  using StateMachineFactory = NodeRuntime::StateMachineFactory;

  // `base` carries the per-process knobs (replica id, listen address and
  // base port, storage base dir, io backend, batching, obs with base
  // metrics port); the per-group configs are derived: port/metrics port
  // striped by +g, storage under <dir>/group-<g>, group/num_groups set.
  // With groups == 1 the base config is used untouched (no /group-0 nesting,
  // no label) — a 1-group MultiGroupNode is exactly a NodeRuntime.
  MultiGroupNode(const NodeConfig& base, MultiGroupOptions opt,
                 const ProtocolFactory& protocol_factory,
                 const StateMachineFactory& sm_factory);

  MultiGroupNode(const MultiGroupNode&) = delete;
  MultiGroupNode& operator=(const MultiGroupNode&) = delete;

  // base_peers[p] is process p's base address; group g of every process is
  // dialed at base port + g.
  void start(const std::vector<TcpPeer>& base_peers);
  void stop();

  [[nodiscard]] std::size_t num_groups() const { return groups_.size(); }
  [[nodiscard]] NodeRuntime& group(std::size_t g) { return *groups_.at(g); }

  // Sum over groups — the process-wide commit counter the stats line rates.
  [[nodiscard]] std::uint64_t executed() const;
  [[nodiscard]] std::uint64_t reads_served() const;
  // True when any group found prior durable state on boot.
  [[nodiscard]] bool recovering() const;

 private:
  std::vector<std::unique_ptr<NodeRuntime>> groups_;
};

}  // namespace crsm
