#include "runtime/node.h"

#include <future>
#include <utility>

namespace crsm {

NodeRuntime::NodeRuntime(NodeConfig cfg, ProtocolFactory protocol_factory,
                         StateMachineFactory sm_factory)
    : cfg_(cfg),
      transport_(loop_, cfg.id, cfg.transport),
      sm_(sm_factory()),
      proto_(protocol_factory(*this, cfg.id)) {
  transport_.register_handler([this](const Message& m) { on_peer_message(m); });
  transport_.set_client_handlers(
      [this](std::uint64_t conn, const Message& m) { on_client_message(conn, m); },
      [this](std::uint64_t conn) { on_client_closed(conn); });
}

NodeRuntime::~NodeRuntime() { stop(); }

void NodeRuntime::start(std::vector<TcpPeer> peers) {
  if (started_) return;
  started_ = true;
  // All initialization that touches the loop (fd registration, protocol
  // timers) runs as the loop's first task, on the loop thread.
  loop_.post([this, peers = std::move(peers)]() mutable {
    transport_.start(std::move(peers));
    proto_->start();
  });
  thread_ = std::thread([this] { loop_.run(); });
}

void NodeRuntime::stop() {
  if (!started_) return;
  started_ = false;
  loop_.post([this] { transport_.shutdown(); });
  loop_.stop();
  if (thread_.joinable()) thread_.join();
}

void NodeRuntime::submit(Command cmd) {
  loop_.post([this, cmd = std::move(cmd)]() mutable {
    proto_->submit(std::move(cmd));
  });
}

std::uint64_t NodeRuntime::state_digest() {
  // Stopped (or never started): the loop thread is gone, so a posted task
  // would never run — but with no loop thread the state machine is also
  // safe to read directly.
  if (!started_) return sm_->state_digest();
  std::promise<std::uint64_t> p;
  auto f = p.get_future();
  loop_.post([this, &p] { p.set_value(sm_->state_digest()); });
  return f.get();
}

// --- ProtocolEnv -----------------------------------------------------------

void NodeRuntime::send(ReplicaId to, const Message& m) {
  transport_.send(cfg_.id, to, FrameWriter(cfg_.id).frame(m));
}

void NodeRuntime::multicast(const std::vector<ReplicaId>& tos, const Message& m) {
  transport_.multicast(cfg_.id, tos, FrameWriter(cfg_.id).frame(m));
}

void NodeRuntime::schedule_after(Tick delay_us, std::function<void()> fn) {
  (void)loop_.schedule_after(delay_us, std::move(fn));
}

void NodeRuntime::deliver(const Command& cmd, Timestamp ts, bool local_origin) {
  const std::string output = sm_->apply(cmd);
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (commit_hook_) commit_hook_(cmd, ts, local_origin);
  if (!local_origin) return;
  if (reply_hook_) reply_hook_(cmd);
  // Networked client: route the reply to the socket that carried the
  // request (if it is still up; a vanished client just loses its reply and
  // retries, Section II-B's at-least-once client contract).
  auto it = client_routes_.find(cmd.client);
  if (it == client_routes_.end()) return;
  Message reply;
  reply.type = MsgType::kClientReply;
  reply.cmd.client = cmd.client;
  reply.cmd.seq = cmd.seq;
  reply.blob = output;
  transport_.send_to_client(it->second, FrameWriter(cfg_.id).frame(reply));
}

// --- inbound ---------------------------------------------------------------

void NodeRuntime::on_peer_message(const Message& m) { proto_->on_message(m); }

void NodeRuntime::on_client_message(std::uint64_t conn, const Message& m) {
  if (m.type != MsgType::kClientRequest) return;  // protocol misuse; ignore
  client_routes_[m.cmd.client] = conn;
  // The decoded command views the connection's receive buffer; copying into
  // an owned Command here is the copy-on-retain point.
  Command owned = m.cmd;
  proto_->submit(std::move(owned));
}

void NodeRuntime::on_client_closed(std::uint64_t conn) {
  for (auto it = client_routes_.begin(); it != client_routes_.end();) {
    if (it->second == conn) {
      it = client_routes_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace crsm
