#include "runtime/node.h"

#include <future>
#include <utility>

namespace crsm {

NodeRuntime::NodeRuntime(NodeConfig cfg, ProtocolFactory protocol_factory,
                         StateMachineFactory sm_factory)
    : StorageBackedEnv(cfg.storage),
      cfg_(cfg),
      loop_(net::make_event_loop(cfg.io_backend, &io_fell_back_)),
      transport_(*loop_, cfg.id, cfg.transport),
      sm_(sm_factory()) {
  // The checkpoint (if any) must be in the state machine before the
  // protocol exists: start() replays the WAL only above recovery_floor().
  storage_.restore_into(*sm_);
  proto_ = protocol_factory(*this, cfg_.id);
  transport_.register_handler([this](const Message& m) { on_peer_message(m); });
  transport_.set_client_handlers(
      [this](std::uint64_t conn, const Message& m) { on_client_message(conn, m); },
      [this](std::uint64_t conn) { on_client_closed(conn); });
  loop_->set_pass_end_hook([this] { flush_durability(); });
}

NodeRuntime::~NodeRuntime() { stop(); }

void NodeRuntime::start(std::vector<TcpPeer> peers) {
  if (started_) return;
  started_ = true;
  // All initialization that touches the loop (fd registration, protocol
  // timers) runs as the loop's first task, on the loop thread.
  loop_->post([this, peers = std::move(peers)]() mutable {
    transport_.start(std::move(peers));
    proto_->start();
  });
  thread_ = std::thread([this] { loop_->run(); });
}

void NodeRuntime::stop() {
  if (!started_) return;
  started_ = false;
  loop_->post([this] { transport_.shutdown(); });
  loop_->stop();
  if (thread_.joinable()) thread_.join();
}

void NodeRuntime::submit(Command cmd) {
  loop_->post([this, cmd = std::move(cmd)]() mutable {
    proto_->submit(std::move(cmd));
  });
}

void NodeRuntime::submit_read(Command cmd) {
  loop_->post([this, cmd = std::move(cmd)]() mutable {
    if (!proto_->supports_local_reads()) {
      logged_reads_.insert({cmd.client, cmd.seq});
    }
    proto_->submit_read(std::move(cmd));
  });
}

std::uint64_t NodeRuntime::state_digest() {
  // Stopped (or never started): the loop thread is gone, so a posted task
  // would never run — but with no loop thread the state machine is also
  // safe to read directly.
  if (!started_) return sm_->state_digest();
  std::promise<std::uint64_t> p;
  auto f = p.get_future();
  loop_->post([this, &p] { p.set_value(sm_->state_digest()); });
  return f.get();
}

// --- ProtocolEnv -----------------------------------------------------------

void NodeRuntime::dispatch(HeldSend&& send) {
  // Group commit: any frame produced while the WAL owes a durability point
  // waits for the pass-end fsync — in particular the PREPAREOK acknowledging
  // the append that made the sync owed. Held frames keep their order, and
  // once anything is held, everything later in the pass queues behind it
  // even if the sync was meanwhile satisfied (e.g. a checkpoint truncation
  // rewrote + synced the WAL): per-link FIFO in increasing-timestamp order
  // is what Clock-RSM's stability argument rests on.
  if (storage_.sync_pending() || !held_.empty()) {
    storage_.count_held_message();
    held_.push_back(std::move(send));
    return;
  }
  if (send.to_client) {
    transport_.send_to_client(send.client_conn, send.frame);
  } else {
    transport_.multicast(cfg_.id, send.tos, send.frame);
  }
}

void NodeRuntime::flush_durability() {
  storage_.flush();  // one fdatasync covers the whole pass's appends
  if (held_.empty()) return;
  std::vector<HeldSend> held;
  held.swap(held_);
  for (HeldSend& h : held) dispatch(std::move(h));
}

void NodeRuntime::send(ReplicaId to, const Message& m) {
  // Volatile nodes never owe a durability point: skip the HeldSend wrapper
  // (and its vector allocation) on that hot path entirely.
  if (!storage_.durable()) {
    transport_.send(cfg_.id, to, FrameWriter(cfg_.id).frame(m));
    return;
  }
  dispatch(HeldSend{{to}, 0, false, FrameWriter(cfg_.id).frame(m)});
}

void NodeRuntime::multicast(const std::vector<ReplicaId>& tos, const Message& m) {
  if (!storage_.durable()) {
    transport_.multicast(cfg_.id, tos, FrameWriter(cfg_.id).frame(m));
    return;
  }
  dispatch(HeldSend{tos, 0, false, FrameWriter(cfg_.id).frame(m)});
}

void NodeRuntime::schedule_after(Tick delay_us, std::function<void()> fn) {
  (void)loop_->schedule_after(delay_us, std::move(fn));
}

void NodeRuntime::install_checkpoint(std::string_view blob) {
  storage_.install_checkpoint(blob, *sm_);
}

void NodeRuntime::deliver(const Command& cmd, Timestamp ts, bool local_origin) {
  const std::string output = sm_->apply(cmd);
  executed_.fetch_add(1, std::memory_order_relaxed);
  storage_.note_commit(*sm_, ts);
  if (commit_hook_) commit_hook_(cmd, ts, local_origin);
  if (!local_origin) return;
  // A read that rode the log (protocol without a local read path) completes
  // here; it owes a read reply, not a write acknowledgment.
  const auto rit = logged_reads_.find({cmd.client, cmd.seq});
  if (rit != logged_reads_.end()) {
    logged_reads_.erase(rit);
    reads_served_.fetch_add(1, std::memory_order_relaxed);
    finish_read(cmd, output);
    return;
  }
  if (reply_hook_) reply_hook_(cmd);
  // Networked client: route the reply to the socket that carried the
  // request (if it is still up; a vanished client just loses its reply and
  // retries, Section II-B's at-least-once client contract).
  auto it = client_routes_.find(cmd.client);
  if (it == client_routes_.end()) return;
  Message reply;
  reply.type = MsgType::kClientReply;
  reply.cmd.client = cmd.client;
  reply.cmd.seq = cmd.seq;
  reply.blob = output;
  if (!storage_.durable()) {
    transport_.send_to_client(it->second, FrameWriter(cfg_.id).frame(reply));
    return;
  }
  dispatch(HeldSend{{}, it->second, true, FrameWriter(cfg_.id).frame(reply)});
}

void NodeRuntime::deliver_read(const Command& cmd, Timestamp read_ts) {
  (void)read_ts;
  const std::string output = sm_->apply_read(cmd);
  reads_served_.fetch_add(1, std::memory_order_relaxed);
  finish_read(cmd, output);
}

void NodeRuntime::finish_read(const Command& cmd, const std::string& output) {
  if (read_hook_) read_hook_(cmd, output);
  auto it = client_routes_.find(cmd.client);
  if (it == client_routes_.end()) return;
  Message reply;
  reply.type = MsgType::kClientReadReply;
  reply.cmd.client = cmd.client;
  reply.cmd.seq = cmd.seq;
  reply.blob = output;
  if (!storage_.durable()) {
    transport_.send_to_client(it->second, FrameWriter(cfg_.id).frame(reply));
    return;
  }
  // The read itself owes no durability, but its reply must not overtake
  // frames held for the pass-end fsync on the same connection (FIFO).
  dispatch(HeldSend{{}, it->second, true, FrameWriter(cfg_.id).frame(reply)});
}

// --- inbound ---------------------------------------------------------------

void NodeRuntime::on_peer_message(const Message& m) { proto_->on_message(m); }

void NodeRuntime::on_client_message(std::uint64_t conn, const Message& m) {
  if (m.type == MsgType::kClientRead) {
    client_routes_[m.cmd.client] = conn;
    Command owned = m.cmd;  // copy-on-retain: m views the receive buffer
    if (!proto_->supports_local_reads()) {
      logged_reads_.insert({owned.client, owned.seq});
    }
    proto_->submit_read(std::move(owned));
    return;
  }
  if (m.type != MsgType::kClientRequest) return;  // protocol misuse; ignore
  client_routes_[m.cmd.client] = conn;
  // The decoded command views the connection's receive buffer; copying into
  // an owned Command here is the copy-on-retain point.
  Command owned = m.cmd;
  proto_->submit(std::move(owned));
}

void NodeRuntime::on_client_closed(std::uint64_t conn) {
  for (auto it = client_routes_.begin(); it != client_routes_.end();) {
    if (it->second == conn) {
      it = client_routes_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace crsm
