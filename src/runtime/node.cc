#include "runtime/node.h"

#include <pthread.h>
#include <sched.h>

#include <cstdio>
#include <future>
#include <utility>

#include "common/batch.h"
#include "common/codec.h"
#include "kv/kv_store.h"

namespace crsm {

NodeRuntime::NodeRuntime(NodeConfig cfg, ProtocolFactory protocol_factory,
                         StateMachineFactory sm_factory)
    : StorageBackedEnv(cfg.storage),
      cfg_(cfg),
      loop_(net::make_event_loop(cfg.io_backend, &io_fell_back_)),
      transport_(*loop_, cfg.id, cfg.transport),
      sm_(sm_factory()) {
  if (cfg_.num_groups > 1) {
    // Disjoint Prometheus series per group: a process scraping its N group
    // registries into one page must not collapse them into one timeline.
    registry_.set_labels("group=\"" + std::to_string(cfg_.group) + "\"");
  }
  if (cfg_.obs.trace_sample_every != 0) {
    obs::CommitTracer::Options topt;
    topt.sample_every = cfg_.obs.trace_sample_every;
    topt.slow_us = cfg_.obs.trace_slow_us;
    tracer_ = std::make_unique<obs::CommitTracer>(registry_, topt);
  }
  if (cfg_.obs.profile_loop) {
    profiler_ = std::make_unique<obs::LoopProfiler>(registry_);
    loop_->set_observer(profiler_.get());
  }
  if (cfg_.obs.metrics_http) {
    // Binds now, so an ephemeral port is readable before start().
    metrics_http_ = std::make_unique<obs::MetricsHttpServer>(
        *loop_, registry_, cfg_.obs.metrics_host, cfg_.obs.metrics_port);
  }
  if (cfg_.max_batch_cmds > 1) {
    batch_.reserve(cfg_.max_batch_cmds);
    batch_size_hist_ = &registry_.histogram(
        "crsm_batch_cmds", "commands per protocol submission (batch size)");
  }
  registry_.add_collector([this](obs::Registry& r) { collect_metrics(r); });
  // The checkpoint (if any) must be in the state machine before the
  // protocol exists: start() replays the WAL only above recovery_floor().
  storage_.restore_into(*sm_);
  proto_ = protocol_factory(*this, cfg_.id);  // caches tracer() — after it
  transport_.register_handler([this](const Message& m) { on_peer_message(m); });
  transport_.set_client_handlers(
      [this](std::uint64_t conn, const Message& m) { on_client_message(conn, m); },
      [this](std::uint64_t conn) { on_client_closed(conn); });
  // Pass-end order matters: cut the pass's command batch first so its WAL
  // append lands inside the same fsync the durability flush issues.
  loop_->set_pass_end_hook([this] {
    flush_batch();
    flush_durability();
  });
}

NodeRuntime::~NodeRuntime() { stop(); }

void NodeRuntime::start(std::vector<TcpPeer> peers) {
  if (started_) return;
  started_ = true;
  // All initialization that touches the loop (fd registration, protocol
  // timers) runs as the loop's first task, on the loop thread.
  loop_->post([this, peers = std::move(peers)]() mutable {
    transport_.start(std::move(peers));
    if (metrics_http_) metrics_http_->start();
    proto_->start();
  });
  thread_ = std::thread([this] { loop_->run(); });
  if (cfg_.pin_core >= 0) {
    // Affinity-pin the loop thread: each group of a multi-group process owns
    // one core, so protocol CPU scales with groups instead of timeslicing.
    // Best effort — a core count below the pin target just logs and runs
    // unpinned (CI containers routinely expose fewer cores than production).
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cfg_.pin_core, &set);
    if (pthread_setaffinity_np(thread_.native_handle(), sizeof(set), &set) !=
        0) {
      std::fprintf(stderr,
                   "crsm_node[%u]: could not pin loop thread to core %d; "
                   "running unpinned\n",
                   cfg_.id, cfg_.pin_core);
    }
  }
}

void NodeRuntime::stop() {
  if (!started_) return;
  started_ = false;
  loop_->post([this] {
    if (metrics_http_) metrics_http_->stop();
    transport_.shutdown();
  });
  loop_->stop();
  if (thread_.joinable()) thread_.join();
}

void NodeRuntime::submit(Command cmd) {
  loop_->post([this, cmd = std::move(cmd)]() mutable {
    if (tracer_) tracer_->begin(cmd.client, cmd.seq, net::EventLoop::mono_us());
    enqueue_write(std::move(cmd));
  });
}

void NodeRuntime::submit_read(Command cmd) {
  loop_->post([this, cmd = std::move(cmd)]() mutable {
    if (!proto_->supports_local_reads()) {
      logged_reads_.insert({cmd.client, cmd.seq});
    }
    if (tracer_) tracer_->begin_read(cmd.client, cmd.seq, net::EventLoop::mono_us());
    proto_->submit_read(std::move(cmd));
  });
}

std::uint64_t NodeRuntime::state_digest() {
  // Stopped (or never started): the loop thread is gone, so a posted task
  // would never run — but with no loop thread the state machine is also
  // safe to read directly.
  if (!started_) return sm_->state_digest();
  std::promise<std::uint64_t> p;
  auto f = p.get_future();
  loop_->post([this, &p] { p.set_value(sm_->state_digest()); });
  return f.get();
}

obs::Snapshot NodeRuntime::metrics_snapshot() {
  // Same posting discipline as state_digest(): the registry's collector
  // reads protocol and state-machine internals owned by the loop thread.
  if (!started_) return registry_.snapshot();
  std::promise<obs::Snapshot> p;
  auto f = p.get_future();
  loop_->post([this, &p] { p.set_value(registry_.snapshot()); });
  return f.get();
}

void NodeRuntime::collect_metrics(obs::Registry& r) {
  // Fold every externally maintained stats struct into the registry. Runs
  // on the loop thread at snapshot time; set() overwrites with the current
  // cumulative value, so scrapes stay monotone as long as the sources are.
  const obs::MetricSink sink = [&r](std::string_view name, std::uint64_t v) {
    if (name.size() > 6 && name.substr(name.size() - 6) == "_total") {
      r.counter(name).set(v);
    } else {
      r.gauge(name).set(static_cast<double>(v));
    }
  };

  const TransportStats ts = transport_stats();
  sink("crsm_transport_messages_sent_total", ts.messages_sent);
  sink("crsm_transport_messages_delivered_total", ts.messages_delivered);
  sink("crsm_transport_messages_dropped_total", ts.messages_dropped);
  sink("crsm_transport_bytes_sent_total", ts.bytes_sent);
  sink("crsm_transport_encode_calls_total", ts.encode_calls);
  sink("crsm_transport_backpressure_blocks_total", ts.backpressure_blocks);
  sink("crsm_transport_wire_flushes_total", ts.wire_flushes);
  sink("crsm_transport_frames_flushed_total", ts.frames_flushed);
  sink("crsm_io_uring_fallbacks_total", ts.uring_fallbacks);

  const net::IoRingStats rs = loop_->ring_stats();
  sink("crsm_io_sqe_submits_total", rs.sqe_submits);
  sink("crsm_io_sqes_submitted_total", rs.sqes_submitted);
  sink("crsm_io_uring_active",
       loop_->backend() == net::IoBackend::kUring ? 1 : 0);

  const StorageStats ss = storage_.stats();
  sink("crsm_storage_appends_total", ss.appends);
  sink("crsm_storage_sync_requests_total", ss.sync_requests);
  sink("crsm_storage_syncs_total", ss.syncs);
  sink("crsm_storage_held_messages_total", ss.held_messages);
  sink("crsm_storage_checkpoints_total", ss.checkpoints);
  sink("crsm_storage_max_batch", ss.max_batch);

  sink("crsm_executed_total", executed_.load(std::memory_order_relaxed));
  sink("crsm_reads_served_total",
       reads_served_.load(std::memory_order_relaxed));
  if (cfg_.num_groups > 1) {
    r.gauge("crsm_group").set(static_cast<double>(cfg_.group));
    sink("crsm_wrong_group_rejections_total",
         wrong_group_rejections_.load(std::memory_order_relaxed));
  }

  const BatchStats bs = batch_stats();
  sink("crsm_batch_cmds_total", bs.cmds);
  sink("crsm_batch_submissions_total", bs.submissions);
  r.gauge("crsm_cmds_per_prepare")
      .set(bs.submissions == 0
               ? 0.0
               : static_cast<double>(bs.cmds) /
                     static_cast<double>(bs.submissions));

  proto_->fill_metrics(sink);
  sm_->fill_metrics(sink);
}

// --- ProtocolEnv -----------------------------------------------------------

void NodeRuntime::dispatch(HeldSend&& send) {
  // Group commit: any frame produced while the WAL owes a durability point
  // waits for the pass-end fsync — in particular the PREPAREOK acknowledging
  // the append that made the sync owed. Held frames keep their order, and
  // once anything is held, everything later in the pass queues behind it
  // even if the sync was meanwhile satisfied (e.g. a checkpoint truncation
  // rewrote + synced the WAL): per-link FIFO in increasing-timestamp order
  // is what Clock-RSM's stability argument rests on.
  if (storage_.sync_pending() || !held_.empty()) {
    storage_.count_held_message();
    held_.push_back(std::move(send));
    return;
  }
  if (send.to_client) {
    transport_.send_to_client(send.client_conn, send.frame);
  } else {
    transport_.multicast(cfg_.id, send.tos, send.frame);
  }
}

void NodeRuntime::enqueue_write(Command cmd) {
  batch_cmds_.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.max_batch_cmds <= 1) {
    // Batching off: the pre-batching submit path, one protocol submission
    // per command. kSubmit coincides with acceptance.
    if (tracer_ && tracer_->active()) {
      tracer_->stamp(cmd.client, cmd.seq, obs::Stage::kSubmit,
                     net::EventLoop::mono_us());
    }
    batch_submissions_.fetch_add(1, std::memory_order_relaxed);
    proto_->submit(std::move(cmd));
    return;
  }
  // Byte cap: cut the running batch before a command that would overflow
  // it. An oversized command lands in the (now empty) buffer and ships as a
  // singleton at the next cut — the cap bounds envelopes, not commands.
  if (!batch_.empty() && cfg_.max_batch_bytes != 0 &&
      batch_bytes_ + cmd.payload.size() > cfg_.max_batch_bytes) {
    flush_batch();
  }
  batch_bytes_ += cmd.payload.size();
  batch_.push_back(std::move(cmd));
  if (batch_.size() >= cfg_.max_batch_cmds) flush_batch();
}

void NodeRuntime::flush_batch() {
  if (batch_.empty()) return;
  batch_submissions_.fetch_add(1, std::memory_order_relaxed);
  if (batch_size_hist_) batch_size_hist_->observe(batch_.size());
  const bool traced = tracer_ && tracer_->active();
  if (traced) {
    // The batched command's kSubmit is the batch cut: queue-delay up to
    // here is time spent waiting for the batch to fill / the pass to end.
    const std::uint64_t now = net::EventLoop::mono_us();
    for (const Command& c : batch_) {
      tracer_->stamp(c.client, c.seq, obs::Stage::kSubmit, now);
    }
  }
  if (batch_.size() == 1) {
    // Singleton cut: no envelope, the bare command replicates as before.
    Command single = std::move(batch_.front());
    batch_.clear();
    batch_bytes_ = 0;
    proto_->submit(std::move(single));
    return;
  }
  Command env = make_batch(batch_, cfg_.id, batch_counter_++);
  if (traced) {
    std::vector<std::pair<ClientId, std::uint64_t>> members;
    members.reserve(batch_.size());
    for (const Command& c : batch_) members.emplace_back(c.client, c.seq);
    tracer_->bind_batch(env.client, env.seq, members);
  }
  batch_.clear();
  batch_bytes_ = 0;
  proto_->submit(std::move(env));
}

void NodeRuntime::flush_durability() {
  storage_.flush();  // one fdatasync covers the whole pass's appends
  if (held_.empty()) return;
  std::vector<HeldSend> held;
  held.swap(held_);
  if (profiler_) profiler_->note_batch(held.size());
  for (HeldSend& h : held) dispatch(std::move(h));
}

void NodeRuntime::send(ReplicaId to, const Message& m) {
  // Volatile nodes never owe a durability point: skip the HeldSend wrapper
  // (and its vector allocation) on that hot path entirely.
  if (!storage_.durable()) {
    transport_.send(cfg_.id, to, FrameWriter(cfg_.id).frame(m));
    return;
  }
  dispatch(HeldSend{{to}, 0, false, FrameWriter(cfg_.id).frame(m)});
}

void NodeRuntime::multicast(const std::vector<ReplicaId>& tos, const Message& m) {
  if (!storage_.durable()) {
    transport_.multicast(cfg_.id, tos, FrameWriter(cfg_.id).frame(m));
    return;
  }
  dispatch(HeldSend{tos, 0, false, FrameWriter(cfg_.id).frame(m)});
}

void NodeRuntime::schedule_after(Tick delay_us, std::function<void()> fn) {
  (void)loop_->schedule_after(delay_us, std::move(fn));
}

void NodeRuntime::install_checkpoint(std::string_view blob) {
  storage_.install_checkpoint(blob, *sm_);
}

void NodeRuntime::deliver(const Command& cmd, Timestamp ts, bool local_origin) {
  if (is_batch(cmd)) {
    // One replicated entry, many client commands: apply them in envelope
    // order (every replica splits identically, so execution order agrees).
    for (const Command& member : split_batch(cmd)) {
      apply_and_reply(member, ts, local_origin);
    }
  } else {
    apply_and_reply(cmd, ts, local_origin);
  }
  // One checkpoint decision per delivered entry, after the whole batch has
  // applied: a mid-batch checkpoint would cover ts with only a prefix of
  // the batch in the snapshot.
  storage_.note_commit(*sm_, ts);
}

void NodeRuntime::apply_and_reply(const Command& cmd, Timestamp ts,
                                  bool local_origin) {
  const std::string output = sm_->apply(cmd);
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (commit_hook_) commit_hook_(cmd, ts, local_origin);
  if (!local_origin) return;
  const bool traced = tracer_ && tracer_->active();
  if (traced) {
    tracer_->stamp(cmd.client, cmd.seq, obs::Stage::kExecute,
                   net::EventLoop::mono_us());
  }
  // A read that rode the log (protocol without a local read path) completes
  // here; it owes a read reply, not a write acknowledgment.
  const auto rit = logged_reads_.find({cmd.client, cmd.seq});
  if (rit != logged_reads_.end()) {
    logged_reads_.erase(rit);
    reads_served_.fetch_add(1, std::memory_order_relaxed);
    finish_read(cmd, output);
    return;
  }
  if (reply_hook_) reply_hook_(cmd);
  // Networked client: route the reply to the socket that carried the
  // request (if it is still up; a vanished client just loses its reply and
  // retries, Section II-B's at-least-once client contract).
  auto it = client_routes_.find(cmd.client);
  if (it != client_routes_.end()) {
    Message reply;
    reply.type = MsgType::kClientReply;
    reply.cmd.client = cmd.client;
    reply.cmd.seq = cmd.seq;
    reply.blob = output;
    if (!storage_.durable()) {
      transport_.send_to_client(it->second, FrameWriter(cfg_.id).frame(reply));
    } else {
      dispatch(HeldSend{{}, it->second, true, FrameWriter(cfg_.id).frame(reply)});
    }
  }
  if (traced) tracer_->finish(cmd.client, cmd.seq, net::EventLoop::mono_us());
}

void NodeRuntime::deliver_read(const Command& cmd, Timestamp read_ts) {
  (void)read_ts;
  const std::string output = sm_->apply_read(cmd);
  reads_served_.fetch_add(1, std::memory_order_relaxed);
  finish_read(cmd, output);
}

void NodeRuntime::finish_read(const Command& cmd, const std::string& output) {
  if (tracer_ && tracer_->active()) {
    tracer_->finish(cmd.client, cmd.seq, net::EventLoop::mono_us());
  }
  if (read_hook_) read_hook_(cmd, output);
  auto it = client_routes_.find(cmd.client);
  if (it == client_routes_.end()) return;
  Message reply;
  reply.type = MsgType::kClientReadReply;
  reply.cmd.client = cmd.client;
  reply.cmd.seq = cmd.seq;
  reply.blob = output;
  if (!storage_.durable()) {
    transport_.send_to_client(it->second, FrameWriter(cfg_.id).frame(reply));
    return;
  }
  // The read itself owes no durability, but its reply must not overtake
  // frames held for the pass-end fsync on the same connection (FIFO).
  dispatch(HeldSend{{}, it->second, true, FrameWriter(cfg_.id).frame(reply)});
}

// --- inbound ---------------------------------------------------------------

void NodeRuntime::on_peer_message(const Message& m) { proto_->on_message(m); }

bool NodeRuntime::reject_wrong_group(std::uint64_t conn, const Command& cmd) {
  if (cfg_.num_groups <= 1) return false;
  ShardId owner;
  try {
    owner = ShardRouter(cfg_.num_groups).shard_of(cmd);
  } catch (const CodecError&) {
    return false;  // not a KV command; nothing to route by
  }
  if (owner == cfg_.group) return false;
  // Client and server disagree on the key's owner (a stale or buggy client
  // router). Applying here would split the key across two groups' logs —
  // the one failure sharding must never produce — so bounce the command,
  // echoing (client, seq) and naming the owner for the client to redial.
  wrong_group_rejections_.fetch_add(1, std::memory_order_relaxed);
  Message redirect;
  redirect.type = MsgType::kClientRedirect;
  redirect.cmd.client = cmd.client;
  redirect.cmd.seq = cmd.seq;
  redirect.a = owner;
  if (!storage_.durable()) {
    transport_.send_to_client(conn, FrameWriter(cfg_.id).frame(redirect));
  } else {
    // FIFO with frames held for the pass-end fsync on this connection.
    dispatch(HeldSend{{}, conn, true, FrameWriter(cfg_.id).frame(redirect)});
  }
  return true;
}

void NodeRuntime::on_client_message(std::uint64_t conn, const Message& m) {
  if (m.type == MsgType::kClientRead) {
    if (reject_wrong_group(conn, m.cmd)) return;
    client_routes_[m.cmd.client] = conn;
    Command owned = m.cmd;  // copy-on-retain: m views the receive buffer
    if (!proto_->supports_local_reads()) {
      logged_reads_.insert({owned.client, owned.seq});
    }
    if (tracer_) {
      tracer_->begin_read(owned.client, owned.seq, net::EventLoop::mono_us());
    }
    proto_->submit_read(std::move(owned));
    return;
  }
  if (m.type != MsgType::kClientRequest) return;  // protocol misuse; ignore
  if (reject_wrong_group(conn, m.cmd)) return;
  client_routes_[m.cmd.client] = conn;
  // The decoded command views the connection's receive buffer; copying into
  // an owned Command here is the copy-on-retain point.
  Command owned = m.cmd;
  if (tracer_) tracer_->begin(owned.client, owned.seq, net::EventLoop::mono_us());
  enqueue_write(std::move(owned));
}

void NodeRuntime::on_client_closed(std::uint64_t conn) {
  for (auto it = client_routes_.begin(); it != client_routes_.end();) {
    if (it->second == conn) {
      it = client_routes_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace crsm
