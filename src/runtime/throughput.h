// Closed-loop saturating throughput measurement on the RtCluster
// (paper Figure 8 methodology).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/rt_cluster.h"
#include "runtime/tcp_cluster.h"

namespace crsm {

struct ThroughputOptions {
  std::size_t num_replicas = 5;
  std::size_t clients_per_replica = 32;  // enough to saturate
  std::size_t payload_bytes = 100;
  double warmup_s = 0.5;
  double duration_s = 2.0;
  // Imbalanced option (clients at one replica only); -1 = all replicas.
  int only_replica = -1;
  // Forwarded to RtCluster::Options::sender_batching.
  bool sender_batching = false;
  // Forwarded to RtCluster::Options::max_coalesce_bytes (per-pass
  // coalescing budget of the thread transport; 0 = unbounded batch).
  std::size_t thread_coalesce_bytes = 256 * 1024;
  // Fraction of each client's ops issued as local reads (TCP runtime only;
  // run_throughput requires 0 — the thread runtime has no read API here).
  double read_fraction = 0.0;
  // Enable commit-pipeline tracing on every node and fill
  // ThroughputResult::stages from the nodes' stage histograms (TCP runtime
  // only). Sampled (every 16th origin command), so the overhead it measures
  // is also the overhead it costs.
  bool stage_breakdown = false;
  // Protocol-level command batching on every node (TCP runtime only; see
  // NodeConfig::max_batch_cmds / max_batch_bytes). 1 = off; the thread
  // runtime always reports cmds_per_prepare = 1.
  std::size_t max_batch_cmds = 1;
  std::size_t max_batch_bytes = 256 * 1024;
};

// One commit-pipeline stage over the whole run: count-weighted p50/p99
// across replicas (each replica traces its own origin commands).
struct StageLatency {
  std::string stage;  // queue, broadcast, wal, ack, stability, execute,
                      // reply, total, read_wait, read_total
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct ThroughputResult {
  double kops_per_sec = 0.0;       // committed commands per second (origin view)
  double mb_per_sec_wire = 0.0;    // wire bytes moved per second
  std::uint64_t total_ops = 0;
  // Throughput implied by the busiest replica's CPU time: what an N-machine
  // cluster would sustain (ops / max-replica busy seconds). On hosts with
  // >= N cores this converges to kops_per_sec; on smaller hosts it is the
  // meaningful number for comparing protocols whose load distribution
  // differs (the Paxos leader vs the symmetric multi-leader protocols).
  double kops_per_sec_bottleneck = 0.0;
  // Busiest replica's share of total protocol CPU (1/N = perfectly even).
  double max_cpu_share = 0.0;
  // Wire-pipeline counters over the measurement window, normalized per
  // committed command. encodes_per_cmd < msgs_per_cmd shows fan-out
  // encode-once at work (a 5-replica broadcast encodes once, sends 5).
  double msgs_per_cmd = 0.0;
  double bytes_per_cmd = 0.0;
  double encodes_per_cmd = 0.0;
  // Wire coalescing at work: kernel/queue handoffs per committed command
  // (flushes_per_cmd < msgs_per_cmd means frames shared a flush) and frames
  // carried per flush (the achieved batching factor). Zero when the
  // transport doesn't coalesce.
  double flushes_per_cmd = 0.0;
  double frames_per_flush = 0.0;
  // io_uring submission batching: SQEs per io_uring_enter that submitted
  // work. Zero on epoll / thread runtimes.
  double sqes_per_submit = 0.0;
  // Protocol batching at work: client write commands carried per protocol
  // submission (PREPARE round at the origin) over the measurement window.
  // 1.0 with batching off and on the thread runtime.
  double cmds_per_prepare = 1.0;
  // Committed reads per second (only with ThroughputOptions::read_fraction;
  // reads are excluded from the write-pipeline per-cmd counters above).
  double reads_per_sec = 0.0;
  // Commit-pipeline stage breakdown (ThroughputOptions::stage_breakdown;
  // TCP runtime only). Cumulative over warmup + measurement.
  std::vector<StageLatency> stages;
};

// Spawns closed-loop client threads against an RtCluster running the given
// protocol and measures committed ops/s over the measurement window.
[[nodiscard]] ThroughputResult run_throughput(
    const ThroughputOptions& opt, const RtCluster::ProtocolFactory& factory);

// Same closed-loop measurement against a TcpCluster: N node processes'
// worth of runtime in one process, every inter-replica message over a real
// loopback TCP socket. `sender_batching` is ignored (the TCP write path
// batches via writev); the CPU-share fields are zero (per-replica busy time
// is not tracked by the event-loop runtime), so compare `kops_per_sec`.
// `copt` configures the cluster (durable WAL nodes via copt.log_dir: the
// group-commit cost measurement).
[[nodiscard]] ThroughputResult run_tcp_throughput(
    const ThroughputOptions& opt, const RtCluster::ProtocolFactory& factory,
    const TcpClusterOptions& copt = {});

}  // namespace crsm
