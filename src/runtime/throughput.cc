#include "runtime/throughput.h"

#include <array>
#include <atomic>
#include <chrono>
#include <iterator>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kv/kv_store.h"
#include "runtime/tcp_cluster.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace crsm {

namespace {

// One outstanding request per client; the reply hook flips the flag.
struct Completion {
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t done_upto = 0;  // highest seq acknowledged

  void complete(std::uint64_t seq) {
    {
      std::lock_guard<std::mutex> lk(mu);
      done_upto = std::max(done_upto, seq);
    }
    cv.notify_one();
  }

  // Returns false on timeout (cluster stopping).
  bool wait_for_seq(std::uint64_t seq, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, timeout, [&] { return done_upto >= seq; });
  }
};

// The shared closed-loop driver behind both runtimes. Works against any
// cluster exposing set_reply_hook/(start|stop)/submit with the RtCluster
// signatures. The caller snapshots its own counters in the two callbacks,
// which run right before and right after the measurement window while the
// cluster is live.
struct LoopWindow {
  std::uint64_t ops = 0;    // all completed ops in the window (incl. reads)
  std::uint64_t reads = 0;  // reads among them
  double secs = 0.0;
};
template <typename Cluster>
LoopWindow drive_closed_loop(
    Cluster& cluster, const ThroughputOptions& opt,
    const std::function<void()>& on_measure_start,
    const std::function<void()>& on_measure_end) {
  std::unordered_map<ClientId, std::unique_ptr<Completion>> completions;
  for (ReplicaId r = 0; r < opt.num_replicas; ++r) {
    if (opt.only_replica >= 0 && static_cast<int>(r) != opt.only_replica) continue;
    for (std::size_t c = 0; c < opt.clients_per_replica; ++c) {
      completions.emplace(make_client_id(r, c), std::make_unique<Completion>());
    }
  }
  cluster.set_reply_hook([&completions](ReplicaId, const Command& cmd) {
    auto it = completions.find(cmd.client);
    if (it != completions.end()) it->second->complete(cmd.seq);
  });
  if constexpr (requires { cluster.set_read_hook(TcpCluster::ReadHook{}); }) {
    if (opt.read_fraction > 0.0) {
      cluster.set_read_hook(
          [&completions](ReplicaId, const Command& cmd, std::string_view) {
            auto it = completions.find(cmd.client);
            if (it != completions.end()) it->second->complete(cmd.seq);
          });
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::atomic<std::uint64_t> measured_ops{0};
  std::atomic<std::uint64_t> measured_reads{0};

  cluster.start();

  const std::string payload =
      KvRequest::sized_put("key", opt.payload_bytes).encode();
  std::string read_payload;
  {
    KvRequest r;
    r.op = KvOp::kGet;
    r.key = "key";
    read_payload = r.encode();
  }

  std::vector<std::thread> clients;
  for (auto& [id, completion] : completions) {
    clients.emplace_back([&, id = id, comp = completion.get()] {
      const ReplicaId home = client_home(id);
      Rng rng(0x7470ull ^ id);
      std::uint64_t seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const bool is_read =
            opt.read_fraction > 0.0 && rng.bernoulli(opt.read_fraction);
        Command cmd;
        cmd.client = id;
        cmd.seq = ++seq;
        cmd.payload = is_read ? read_payload : payload;
        if (is_read) {
          // Only the TCP cluster exposes submit_read; callers enforce
          // read_fraction == 0 on the thread runtime.
          if constexpr (requires { cluster.submit_read(home, std::move(cmd)); }) {
            cluster.submit_read(home, std::move(cmd));
          }
        } else {
          cluster.submit(home, std::move(cmd));
        }
        if (!comp->wait_for_seq(seq, std::chrono::milliseconds(2000))) {
          break;  // stuck or shutting down
        }
        if (measuring.load(std::memory_order_relaxed)) {
          measured_ops.fetch_add(1, std::memory_order_relaxed);
          if (is_read) measured_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(opt.warmup_s));
  on_measure_start();
  measuring.store(true);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(opt.duration_s));
  measuring.store(false);
  const auto t1 = std::chrono::steady_clock::now();
  on_measure_end();

  stop.store(true);
  for (std::thread& t : clients) t.join();
  cluster.stop();

  return {measured_ops.load(), measured_reads.load(),
          std::chrono::duration<double>(t1 - t0).count()};
}

void fill_per_cmd(ThroughputResult* res, const TransportStats& before,
                  const TransportStats& after, double secs) {
  res->mb_per_sec_wire =
      static_cast<double>(after.bytes_sent - before.bytes_sent) / secs / 1e6;
  if (res->total_ops == 0) return;
  const double ops = static_cast<double>(res->total_ops);
  res->msgs_per_cmd =
      static_cast<double>(after.messages_sent - before.messages_sent) / ops;
  res->bytes_per_cmd =
      static_cast<double>(after.bytes_sent - before.bytes_sent) / ops;
  res->encodes_per_cmd =
      static_cast<double>(after.encode_calls - before.encode_calls) / ops;
  const std::uint64_t flushes = after.wire_flushes - before.wire_flushes;
  const std::uint64_t frames = after.frames_flushed - before.frames_flushed;
  res->flushes_per_cmd = static_cast<double>(flushes) / ops;
  if (flushes > 0) {
    res->frames_per_flush =
        static_cast<double>(frames) / static_cast<double>(flushes);
  }
  const std::uint64_t submits = after.sqe_submits - before.sqe_submits;
  if (submits > 0) {
    res->sqes_per_submit =
        static_cast<double>(after.sqes_submitted - before.sqes_submitted) /
        static_cast<double>(submits);
  }
}

}  // namespace

ThroughputResult run_throughput(const ThroughputOptions& optin,
                                const RtCluster::ProtocolFactory& factory) {
  ThroughputOptions opt = optin;
  opt.read_fraction = 0.0;  // reads/stage tracing are TCP-runtime options
  opt.stage_breakdown = false;
  RtCluster::Options copt;
  copt.sender_batching = opt.sender_batching;
  copt.max_coalesce_bytes = opt.thread_coalesce_bytes;
  RtCluster cluster(opt.num_replicas, factory,
                    [] { return std::make_unique<KvStore>(); }, copt);

  TransportStats before, after;
  std::vector<std::uint64_t> busy_before(opt.num_replicas);
  std::uint64_t max_busy = 0, total_busy = 0;
  const LoopWindow w = drive_closed_loop(
      cluster, opt,
      [&] {
        before = cluster.transport().stats();
        for (ReplicaId r = 0; r < opt.num_replicas; ++r) {
          busy_before[r] = cluster.busy_us(r);
        }
      },
      [&] {
        after = cluster.transport().stats();
        for (ReplicaId r = 0; r < opt.num_replicas; ++r) {
          const std::uint64_t b = cluster.busy_us(r) - busy_before[r];
          max_busy = std::max(max_busy, b);
          total_busy += b;
        }
      });
  const std::uint64_t ops = w.ops;
  const double secs = w.secs;

  ThroughputResult res;
  res.total_ops = ops;
  res.kops_per_sec = res.total_ops / secs / 1000.0;
  if (max_busy > 0) {
    res.kops_per_sec_bottleneck =
        static_cast<double>(res.total_ops) / (static_cast<double>(max_busy) / 1e6) /
        1000.0;
    res.max_cpu_share = static_cast<double>(max_busy) / static_cast<double>(total_busy);
  }
  fill_per_cmd(&res, before, after, secs);
  return res;
}

ThroughputResult run_tcp_throughput(const ThroughputOptions& opt,
                                    const RtCluster::ProtocolFactory& factory,
                                    const TcpClusterOptions& coptin) {
  TcpClusterOptions copt = coptin;
  if (opt.stage_breakdown) {
    copt.obs.trace_sample_every = 16;  // dense enough for 2 s windows
  }
  copt.max_batch_cmds = opt.max_batch_cmds;
  copt.max_batch_bytes = opt.max_batch_bytes;
  TcpCluster cluster(opt.num_replicas, factory,
                     [] { return std::make_unique<KvStore>(); }, copt);

  // Stage histogram metric -> short stage label. The hists are cumulative
  // over the run; collected in the end-of-window callback while nodes live.
  static constexpr struct {
    const char* metric;
    const char* stage;
  } kStages[] = {
      {"crsm_stage_queue_us", "queue"},
      {"crsm_stage_broadcast_us", "broadcast"},
      {"crsm_stage_wal_us", "wal"},
      {"crsm_stage_ack_us", "ack"},
      {"crsm_stage_stability_us", "stability"},
      {"crsm_stage_execute_us", "execute"},
      {"crsm_stage_reply_us", "reply"},
      {"crsm_commit_total_us", "total"},
      {"crsm_read_wait_us", "read_wait"},
      {"crsm_read_total_us", "read_total"},
  };
  constexpr std::size_t kNumStages = std::size(kStages);
  std::array<StageLatency, kNumStages> stages{};

  TransportStats before, after;
  NodeRuntime::BatchStats bbefore, bafter;
  const LoopWindow w = drive_closed_loop(
      cluster, opt,
      [&] {
        before = cluster.stats();
        bbefore = cluster.batch_stats();
      },
      [&] {
        after = cluster.stats();
        bafter = cluster.batch_stats();
        if (!opt.stage_breakdown) return;
        for (ReplicaId r = 0; r < opt.num_replicas; ++r) {
          if (!cluster.alive(r)) continue;
          const obs::Snapshot snap = cluster.node(r).metrics_snapshot();
          for (std::size_t i = 0; i < kNumStages; ++i) {
            const obs::MetricValue* m = snap.find(kStages[i].metric);
            if (m == nullptr || m->hist.count == 0) continue;
            const auto c = static_cast<double>(m->hist.count);
            stages[i].count += m->hist.count;
            stages[i].p50_us += m->hist.p50_us * c;  // weighted; divided below
            stages[i].p99_us += m->hist.p99_us * c;
          }
        }
      });
  const std::uint64_t ops = w.ops;
  const double secs = w.secs;

  ThroughputResult res;
  res.total_ops = ops;
  res.kops_per_sec = res.total_ops / secs / 1000.0;
  res.reads_per_sec = static_cast<double>(w.reads) / secs;
  if (opt.stage_breakdown) {
    for (std::size_t i = 0; i < kNumStages; ++i) {
      if (stages[i].count == 0) continue;
      const auto c = static_cast<double>(stages[i].count);
      res.stages.push_back(StageLatency{kStages[i].stage, stages[i].count,
                                        stages[i].p50_us / c,
                                        stages[i].p99_us / c});
    }
  }
  const std::uint64_t bsubs = bafter.submissions - bbefore.submissions;
  if (bsubs > 0) {
    res.cmds_per_prepare = static_cast<double>(bafter.cmds - bbefore.cmds) /
                           static_cast<double>(bsubs);
  }
  // Per-replica busy time is not tracked by the event-loop runtime;
  // kops_per_sec_bottleneck/max_cpu_share stay zero (see throughput.h).
  fill_per_cmd(&res, before, after, secs);
  return res;
}

}  // namespace crsm
