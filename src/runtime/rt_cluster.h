// Multithreaded in-process cluster: the substrate for the paper's
// local-cluster throughput experiment (Section VI-D).
//
// Each replica is one thread running the same single-threaded protocol
// reactors used in the simulator. Messages are genuinely serialized to
// bytes on the sender thread and decoded on the receiver thread over
// per-(sender,receiver) FIFO queues, so per-command CPU cost scales with
// command size and message count exactly as a socket-based deployment's
// would (minus the kernel). Replicas log to memory, matching the paper's
// throughput setup ("replicas log commands to main memory").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/command.h"
#include "common/message.h"
#include "common/types.h"
#include "rsm/protocol.h"
#include "rsm/state_machine.h"

namespace crsm {

class RtCluster {
 public:
  using ProtocolFactory =
      std::function<std::unique_ptr<ReplicaProtocol>(ProtocolEnv&, ReplicaId)>;
  using StateMachineFactory = std::function<std::unique_ptr<StateMachine>()>;
  // Runs on the origin replica's thread whenever one of its own commands
  // executes; used by clients to unblock.
  using ReplyHook = std::function<void(ReplicaId, const Command&)>;

  struct Options {
    // Emulated network-stack cost, in extra per-byte passes executed on the
    // sender thread for every message. An in-process queue moves a byte for
    // ~1 cheap memcpy, while a real send costs several kernel copies plus
    // checksumming (the paper's local-cluster bottleneck: "message sending
    // and receiving is the major consumer of CPU cycles"). 0 disables.
    unsigned wire_passes_per_byte = 8;
    // Opportunistic sender-side batching (paper Section VI-A: "batches the
    // same type of messages being processed whenever possible ... without
    // waiting intentionally"): messages produced during one processing pass
    // are buffered per destination and handed over with a single queue
    // operation at the end of the pass. Amortizes the per-send fixed cost —
    // most beneficial to the Paxos leader, which sends the most messages.
    bool sender_batching = false;
  };

  RtCluster(std::size_t n, ProtocolFactory protocol_factory,
            StateMachineFactory sm_factory, Options opt);
  RtCluster(std::size_t n, ProtocolFactory protocol_factory,
            StateMachineFactory sm_factory)
      : RtCluster(n, std::move(protocol_factory), std::move(sm_factory),
                  Options{}) {}
  ~RtCluster();

  RtCluster(const RtCluster&) = delete;
  RtCluster& operator=(const RtCluster&) = delete;

  void set_reply_hook(ReplyHook hook) { reply_hook_ = std::move(hook); }

  // Starts the replica threads (calls start() on each protocol instance).
  void start();
  // Stops and joins all replica threads.
  void stop();

  [[nodiscard]] std::size_t num_replicas() const { return replicas_.size(); }

  // Thread-safe: enqueues a client command at replica r.
  void submit(ReplicaId r, Command cmd);

  // Total commands executed at replica r (any origin).
  [[nodiscard]] std::uint64_t executed(ReplicaId r) const;
  // Cumulative time replica r's thread spent doing protocol work
  // (microseconds). On a host with fewer cores than replicas, this is the
  // basis for estimating the throughput an N-machine cluster would reach:
  // the busiest replica is the bottleneck.
  [[nodiscard]] std::uint64_t busy_us(ReplicaId r) const;
  // Total wire bytes moved (all links).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_.load(); }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_.load(); }

 private:
  struct Replica;

  void route(ReplicaId from, ReplicaId to, const Message& m);
  // Serializes `m` (paying the emulated wire cost) into a batch buffer.
  void encode_for_link(ReplicaId from, ReplicaId to, const Message& m,
                       std::string* buf);
  // Hands a buffer of framed messages to the destination's inbound link.
  void deliver_bytes(ReplicaId from, ReplicaId to, std::string bytes);

  std::vector<std::unique_ptr<Replica>> replicas_;
  ReplyHook reply_hook_;
  Options opt_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
};

}  // namespace crsm
