// Multithreaded in-process cluster: the substrate for the paper's
// local-cluster throughput experiment (Section VI-D).
//
// Each replica is one thread running the same single-threaded protocol
// reactors used in the simulator. The wire pipeline is a ThreadTransport
// (src/transport): messages are genuinely serialized to bytes on the sender
// thread — at most once per fan-out — and decoded zero-copy on the receiver
// thread over per-(sender,receiver) FIFO queues, so per-command CPU cost
// scales with command size and message count exactly as a socket-based
// deployment's would (minus the kernel). Replicas log to memory, matching
// the paper's throughput setup ("replicas log commands to main memory").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/command.h"
#include "common/message.h"
#include "common/types.h"
#include "rsm/protocol.h"
#include "rsm/state_machine.h"
#include "transport/thread_transport.h"

namespace crsm {

class RtCluster {
 public:
  using ProtocolFactory =
      std::function<std::unique_ptr<ReplicaProtocol>(ProtocolEnv&, ReplicaId)>;
  using StateMachineFactory = std::function<std::unique_ptr<StateMachine>()>;
  // Runs on the origin replica's thread whenever one of its own commands
  // executes; used by clients to unblock.
  using ReplyHook = std::function<void(ReplicaId, const Command&)>;

  // Wire behavior lives in the transport; see ThreadTransport::Options.
  using Options = ThreadTransport::Options;

  RtCluster(std::size_t n, ProtocolFactory protocol_factory,
            StateMachineFactory sm_factory, Options opt);
  RtCluster(std::size_t n, ProtocolFactory protocol_factory,
            StateMachineFactory sm_factory)
      : RtCluster(n, std::move(protocol_factory), std::move(sm_factory),
                  Options{}) {}
  ~RtCluster();

  RtCluster(const RtCluster&) = delete;
  RtCluster& operator=(const RtCluster&) = delete;

  void set_reply_hook(ReplyHook hook) { reply_hook_ = std::move(hook); }

  // Starts the replica threads (calls start() on each protocol instance).
  void start();
  // Stops and joins all replica threads.
  void stop();

  [[nodiscard]] std::size_t num_replicas() const { return replicas_.size(); }

  // Thread-safe: enqueues a client command at replica r.
  void submit(ReplicaId r, Command cmd);

  // Total commands executed at replica r (any origin).
  [[nodiscard]] std::uint64_t executed(ReplicaId r) const;
  // Cumulative time replica r's thread spent doing protocol work
  // (microseconds). On a host with fewer cores than replicas, this is the
  // basis for estimating the throughput an N-machine cluster would reach:
  // the busiest replica is the bottleneck.
  [[nodiscard]] std::uint64_t busy_us(ReplicaId r) const;

  // --- wire counters (all links) ---
  [[nodiscard]] std::uint64_t bytes_sent() const { return transport_.bytes_sent(); }
  [[nodiscard]] std::uint64_t messages_sent() const { return transport_.messages_sent(); }
  // Actual Message serializations; < messages_sent() proves fan-out
  // encode-once is in effect (a 5-replica broadcast encodes once, sends 5).
  [[nodiscard]] std::uint64_t encode_calls() const { return transport_.encode_calls(); }

  [[nodiscard]] const ThreadTransport& transport() const { return transport_; }

 private:
  struct Replica;

  std::vector<std::unique_ptr<Replica>> replicas_;
  ThreadTransport transport_;
  ReplyHook reply_hook_;
  std::atomic<bool> running_{false};
};

}  // namespace crsm
