// NodeRuntime: one replica of a real TCP deployment.
//
// Hosts any ReplicaProtocol (Clock-RSM, Paxos, Mencius) over a TcpTransport
// on a single epoll EventLoop thread: inbound frames, protocol timers,
// client requests and in-process submits all execute there, so protocol
// code keeps the strictly single-threaded reactor model it has under the
// simulator and the thread runtime (ProtocolEnv contract).
//
// Clients reach the node through the same listening port as peers (the
// hello preamble tells them apart) speaking kClientRequest/kClientReply
// frames; the node routes each reply to the socket that carried the
// request. The crsm_node binary is a thin CLI around this class, and
// TcpCluster (tcp_cluster.h) boots N of them on loopback for tests.
//
// Durability (NodeConfig::storage): with a log directory configured the
// node runs on a FileLog WAL with group commit — protocol durability
// requests (CommandLog::sync) accumulate over one event-loop pass, every
// outbound message produced while a sync is owed is held back, and the
// loop's pass-end hook issues a single fdatasync and then releases the held
// frames. PREPAREOK therefore never precedes the durability point it
// acknowledges, at one fsync per pass instead of one per append. On boot
// the node restores the checkpoint (if any) into the state machine and the
// hosted protocol replays the WAL; Clock-RSM with catchup_on_recovery then
// fetches whatever it missed from live peers (see clock_rsm.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clock/system_clock.h"
#include "common/command.h"
#include "common/message.h"
#include "common/types.h"
#include "common/wire_frame.h"
#include "net/event_loop.h"
#include "obs/loop_profiler.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "obs/trace.h"
#include "rsm/protocol.h"
#include "rsm/state_machine.h"
#include "shard/shard_router.h"
#include "storage/replica_storage.h"
#include "transport/tcp_transport.h"

namespace crsm {

// Observability knobs (src/obs). The registry itself always exists — its
// hot-path cost is a handful of relaxed atomics — these only control the
// optional machinery around it.
struct NodeObsOptions {
  // Serve GET /metrics and /metrics.json from the node's loop thread.
  // metrics_port 0 binds an ephemeral port, readable via
  // NodeRuntime::metrics_port() (tests); crsm_node passes a fixed one.
  bool metrics_http = false;
  std::string metrics_host = "127.0.0.1";
  std::uint16_t metrics_port = 0;
  // Commit-pipeline tracing: stamp every Nth origin command through the
  // pipeline stages (obs/trace.h). 0 disables tracing entirely (the
  // protocol sees a null tracer and pays nothing).
  std::uint32_t trace_sample_every = 64;
  // Traced commands slower than this print a rate-limited breakdown line.
  std::uint64_t trace_slow_us = 0;
  // Per-pass event-loop phase profiling (obs/loop_profiler.h).
  bool profile_loop = true;
};

struct NodeConfig {
  ReplicaId id = 0;
  TcpTransport::Options transport;
  // storage.dir empty = volatile MemLog (PR 3 behavior); set = durable,
  // restartable node. See StorageOptions.
  StorageOptions storage;
  // Which kernel I/O interface drives the node's event loop. Requesting
  // kUring on a kernel/seccomp profile without io_uring falls back to epoll
  // with a logged warning (io_backend() reports what actually runs).
  net::IoBackend io_backend = net::IoBackend::kEpoll;
  // Protocol-level command batching: client write commands arriving within
  // one event-loop pass accumulate and are replicated as one batch-envelope
  // command (one PREPARE, one timestamp/ack round, one WAL record). 1
  // disables batching (every command submits alone); a batch is cut early
  // when it reaches max_batch_cmds commands or adding a command would push
  // it past max_batch_bytes of payload (0 = no byte cap; a single oversized
  // command always ships, alone). Reads are never batched.
  std::size_t max_batch_cmds = 1;
  std::size_t max_batch_bytes = 256 * 1024;
  // Sharded deployments: this replica serves replica group `group` of
  // `num_groups` (ShardRouter key space partitioning). With num_groups > 1
  // the node (a) rejects client commands whose key the router assigns to
  // another group — kClientRedirect carrying the owner instead of a silent
  // misapply — and (b) stamps its metrics with a `group` label so the N
  // registries of one process scrape as disjoint Prometheus series.
  // num_groups == 1 is the pre-sharding behavior: no checks, no label.
  ShardId group = 0;
  std::size_t num_groups = 1;
  // Pin the loop thread to this CPU core (-1 = unpinned). Multi-group
  // processes pin one group per core so groups scale instead of timeslicing.
  int pin_core = -1;
  NodeObsOptions obs;
};

class NodeRuntime final : private StorageBackedEnv {
 public:
  using ProtocolFactory =
      std::function<std::unique_ptr<ReplicaProtocol>(ProtocolEnv&, ReplicaId)>;
  using StateMachineFactory = std::function<std::unique_ptr<StateMachine>()>;
  // Runs on the node's loop thread when a locally originated command
  // executes; in-process harnesses use it the way RtCluster does.
  using ReplyHook = std::function<void(const Command&)>;
  // Runs on the loop thread for every executed command (any origin), in
  // execution order — the basis for agreement/linearizability checks.
  using CommitHook = std::function<void(const Command&, Timestamp ts, bool local)>;
  // Runs on the loop thread when a read submitted at this node completes
  // (locally via the protocol's stability-gated read path, or — for
  // protocols without one — through the replicated log).
  using ReadHook = std::function<void(const Command&, std::string_view output)>;

  // Binds the listening socket immediately: with transport.listen_port == 0
  // the kernel-assigned port is readable via port() before start().
  NodeRuntime(NodeConfig cfg, ProtocolFactory protocol_factory,
              StateMachineFactory sm_factory);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  [[nodiscard]] std::uint16_t port() const { return transport_.port(); }
  [[nodiscard]] ReplicaId id() const { return cfg_.id; }
  [[nodiscard]] ShardId group() const { return cfg_.group; }
  // Client commands bounced with kClientRedirect because their key belongs
  // to another group (always 0 when num_groups == 1).
  [[nodiscard]] std::uint64_t wrong_group_rejections() const {
    return wrong_group_rejections_.load(std::memory_order_relaxed);
  }

  void set_reply_hook(ReplyHook hook) { reply_hook_ = std::move(hook); }
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }
  void set_read_hook(ReadHook hook) { read_hook_ = std::move(hook); }

  // Spawns the loop thread, starts accepting/dialing (peers[id] is this
  // node's own address) and calls the protocol's start().
  void start(std::vector<TcpPeer> peers);
  // Stops the loop, closes every connection and joins. Idempotent.
  void stop();

  // Thread-safe: submits a client command at this replica (the in-process
  // equivalent of a kClientRequest).
  void submit(Command cmd);

  // Thread-safe: submits a read-only command at this replica (the
  // in-process equivalent of a kClientRead). Served locally once stability
  // passes the read timestamp when the protocol supports it, else through
  // the log; either way the read hook fires with the output.
  void submit_read(Command cmd);

  [[nodiscard]] std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  // Protocol-batching counters: write commands accepted into the submit
  // path vs. submissions handed to the protocol (each = one PREPARE round
  // at the origin). cmds / submissions is the achieved cmds-per-PREPARE.
  struct BatchStats {
    std::uint64_t cmds = 0;
    std::uint64_t submissions = 0;
  };
  [[nodiscard]] BatchStats batch_stats() const {
    return {batch_cmds_.load(std::memory_order_relaxed),
            batch_submissions_.load(std::memory_order_relaxed)};
  }
  [[nodiscard]] std::uint64_t reads_served() const {
    return reads_served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] TransportStats transport_stats() const {
    TransportStats s = transport_.stats();
    if (io_fell_back_) s.uring_fallbacks = 1;
    return s;
  }
  // The backend actually running (kEpoll after a uring fallback).
  [[nodiscard]] net::IoBackend io_backend() const {
    return loop_->backend();
  }
  [[nodiscard]] bool io_fell_back() const { return io_fell_back_; }
  [[nodiscard]] StorageStats storage_stats() const { return storage_.stats(); }
  // True when boot found prior durable state (the node is a restart).
  [[nodiscard]] bool recovering() const { return storage_.recovering(); }
  [[nodiscard]] const TcpTransport& transport() const { return transport_; }
  // Digest of the replica's state machine. While running, executes on the
  // loop thread (posted, blocking the caller); once stopped, reads
  // directly. Call from the thread that controls start()/stop().
  [[nodiscard]] std::uint64_t state_digest();

  // One unified metrics snapshot: registry values plus every folded stats
  // struct (transport, storage, io ring, protocol, state machine). The
  // registry's collectors touch loop-thread-only state, so while running
  // this posts to the loop thread (blocking the caller, like
  // state_digest()); once stopped it reads directly.
  [[nodiscard]] obs::Snapshot metrics_snapshot();
  // The /metrics listening port (0 when obs.metrics_http is off). Readable
  // before start(), like port().
  [[nodiscard]] std::uint16_t metrics_port() const {
    return metrics_http_ ? metrics_http_->port() : 0;
  }

 private:
  // --- ProtocolEnv (loop thread only; log()/recovery_floor()/
  // encoded_checkpoint() come from StorageBackedEnv) ---
  [[nodiscard]] ReplicaId self() const override { return cfg_.id; }
  void send(ReplicaId to, const Message& m) override;
  void multicast(const std::vector<ReplicaId>& tos, const Message& m) override;
  [[nodiscard]] Tick clock_now() override { return clock_.now_us(); }
  void schedule_after(Tick delay_us, std::function<void()> fn) override;
  void deliver(const Command& cmd, Timestamp ts, bool local_origin) override;
  void deliver_read(const Command& cmd, Timestamp read_ts) override;
  void install_checkpoint(std::string_view blob) override;
  [[nodiscard]] obs::CommitTracer* tracer() override { return tracer_.get(); }

  void finish_read(const Command& cmd, const std::string& output);
  // num_groups > 1 only: if the router assigns cmd's key to another group,
  // bounce it with kClientRedirect (naming the owner) and return true.
  bool reject_wrong_group(std::uint64_t conn, const Command& cmd);
  void collect_metrics(obs::Registry& r);  // loop-thread collector body
  void on_peer_message(const Message& m);
  void on_client_message(std::uint64_t conn, const Message& m);
  void on_client_closed(std::uint64_t conn);

  // Group commit: outbound frames produced while a WAL sync is owed wait
  // here; the loop's pass-end hook fsyncs once, then releases them in order.
  struct HeldSend {
    std::vector<ReplicaId> tos;  // peer fan-out (empty for client sends)
    std::uint64_t client_conn = 0;
    bool to_client = false;
    WireFrame frame;
  };
  void dispatch(HeldSend&& send);
  void flush_durability();

  // Protocol batching: buffers a client write for the pass's batch (or
  // submits it straight through when batching is off) and cuts the batch
  // at the caps / at pass end.
  void enqueue_write(Command cmd);
  void flush_batch();
  // The shared per-command tail of deliver(): apply, count, hooks, reply.
  void apply_and_reply(const Command& cmd, Timestamp ts, bool local_origin);

  NodeConfig cfg_;
  bool io_fell_back_ = false;
  obs::Registry registry_;  // before everything that registers metrics
  std::unique_ptr<net::EventLoop> loop_;  // before transport_ (uses it)
  TcpTransport transport_;
  std::unique_ptr<obs::CommitTracer> tracer_;  // before proto_ (caches it)
  std::unique_ptr<obs::LoopProfiler> profiler_;
  std::unique_ptr<obs::MetricsHttpServer> metrics_http_;
  SystemClock clock_;
  std::unique_ptr<StateMachine> sm_;
  std::unique_ptr<ReplicaProtocol> proto_;
  ReplyHook reply_hook_;
  CommitHook commit_hook_;
  ReadHook read_hook_;
  std::vector<HeldSend> held_;

  // Loop-thread-only batch accumulator (flushed at the caps / pass end).
  std::vector<Command> batch_;
  std::size_t batch_bytes_ = 0;
  std::uint64_t batch_counter_ = 0;  // envelope seq counter for this origin
  obs::LatencyHistogram* batch_size_hist_ = nullptr;
  std::atomic<std::uint64_t> batch_cmds_{0};
  std::atomic<std::uint64_t> batch_submissions_{0};

  // client id -> client connection that most recently requested with it.
  std::unordered_map<ClientId, std::uint64_t> client_routes_;
  // Reads riding the replicated log (protocols without a local read path):
  // their delivery must answer with kClientReadReply, not kClientReply.
  std::set<std::pair<ClientId, std::uint64_t>> logged_reads_;

  std::thread thread_;
  bool started_ = false;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> reads_served_{0};
  std::atomic<std::uint64_t> wrong_group_rejections_{0};
};

}  // namespace crsm
