// In-process groups x replicas TCP topology on loopback: the multi-group
// extension of TcpCluster, and the test/bench harness for the sharded
// runtime.
//
// Boots `groups` independent TcpClusters — every node a full NodeRuntime
// with its own loop thread, real sockets, and (durable) its own WAL dir
// under <log_dir>/group-<g>/node-<r> — all carrying group/num_groups in
// their NodeConfig, so wrong-key rejection and group-labeled metrics are
// exercised exactly as in a production multi-group process. Submits route
// by key through a ShardRouter built with the same group count the nodes
// were given.
//
// Process-level faults: in a real deployment replica r of every group lives
// in one crsm_node process (MultiGroupNode), so kill -9 takes one replica
// of every group down at once. kill_process(r)/restart_process(r) reproduce
// exactly that cut across all groups; per-group kill/restart is reachable
// through group(g).kill(r).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/command.h"
#include "common/types.h"
#include "runtime/tcp_cluster.h"
#include "shard/shard_router.h"
#include "shard/sharded_client.h"

namespace crsm {

struct ShardedTcpClusterOptions {
  std::size_t groups = 2;
  std::size_t replicas = 3;
  // Applied to every group's TcpCluster. group/num_groups are overwritten
  // per group; a non-empty log_dir is suffixed with /group-<g>.
  TcpClusterOptions base;
  // Pin node (g, r) to core g * replicas + r (mod the online core count):
  // each group's pipeline owns distinct cores when the host has them.
  bool pin_cores = false;
  // Per-group option overrides, applied after the defaults above — the seam
  // for asymmetric fault injection (e.g. stall only group 0's fsyncs).
  std::function<void(ShardId, TcpClusterOptions&)> tweak;
};

class ShardedTcpCluster {
 public:
  using ProtocolFactory = NodeRuntime::ProtocolFactory;
  using StateMachineFactory = NodeRuntime::StateMachineFactory;
  // Hooks run on the owning node's loop thread, like TcpCluster's.
  using ReplyHook = std::function<void(ShardId, ReplicaId, const Command&)>;
  using CommitHook = std::function<void(ShardId, ReplicaId, const Command&,
                                        Timestamp, bool)>;
  using ReadHook = std::function<void(ShardId, ReplicaId, const Command&,
                                      std::string_view)>;
  using Options = ShardedTcpClusterOptions;

  // The factory pair is shared by every group (each group instantiates its
  // own protocol/state-machine objects from it; build it for `replicas`).
  ShardedTcpCluster(Options opt, ProtocolFactory protocol_factory,
                    StateMachineFactory sm_factory);

  ShardedTcpCluster(const ShardedTcpCluster&) = delete;
  ShardedTcpCluster& operator=(const ShardedTcpCluster&) = delete;

  void set_reply_hook(ReplyHook hook);
  void set_commit_hook(CommitHook hook);
  void set_read_hook(ReadHook hook);

  void start();
  void stop();

  [[nodiscard]] std::size_t num_groups() const { return clusters_.size(); }
  [[nodiscard]] std::size_t num_replicas() const { return opt_.replicas; }
  [[nodiscard]] const ShardRouter& router() const { return router_; }
  [[nodiscard]] TcpCluster& group(ShardId g) { return *clusters_.at(g); }

  [[nodiscard]] ShardId shard_of(const Command& cmd) const {
    return router_.shard_of(cmd);
  }

  // Thread-safe: routes by the command's KV key to the owning group and
  // submits at that group's replica r.
  void submit(ReplicaId r, Command cmd);
  void submit_read(ReplicaId r, Command cmd);

  // The in-process kill -9 of the whole process hosting replica r: every
  // group's replica r dies at once (same caveats as TcpCluster::kill).
  void kill_process(ReplicaId r);
  void restart_process(ReplicaId r);

  [[nodiscard]] std::uint64_t executed(ShardId g, ReplicaId r) const {
    return clusters_.at(g)->executed(r);
  }
  // Sum of group-leader executed counts — the aggregate commit throughput
  // counter fig12 rates (replica 0 of each group; any fixed replica works,
  // every replica of a group executes every command).
  [[nodiscard]] std::uint64_t total_executed() const;

  // Client-facing endpoints of replica r across groups, in ShardId order —
  // exactly the vector ShardedSyncClient wants.
  [[nodiscard]] std::vector<ShardEndpoint> endpoints(ReplicaId r) const;

 private:
  Options opt_;
  ShardRouter router_;
  std::vector<std::unique_ptr<TcpCluster>> clusters_;
};

}  // namespace crsm
