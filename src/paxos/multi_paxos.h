// Multi-Paxos baseline (Section IV-B), classic and phase-2b-broadcast modes.
//
// A designated leader orders all commands: non-leader replicas forward
// client commands to the leader; the leader assigns consecutive slots and
// runs phase 2 with all replicas (phase 1 is implicit for a stable leader).
//
//  * kClassic ("Paxos"): acceptors send phase-2b to the leader only; the
//    leader broadcasts a commit notification once a majority accepted.
//    Non-leader commit latency: 2*d(i,l) + 2*median(d(l,*)).
//  * kBroadcast ("Paxos-bcast"): acceptors broadcast phase-2b; every replica
//    learns commits directly. Non-leader commit latency:
//    d(i,l) + median_k(d(l,k) + d(k,i)).
//
// Leader election/failover is out of scope for the latency study (the paper
// fixes the leader per experiment); the leader is a constructor parameter.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/message.h"
#include "common/types.h"
#include "rsm/protocol.h"

namespace crsm {

enum class PaxosMode {
  kClassic,
  kBroadcast,
};

class PaxosReplica final : public ReplicaProtocol {
 public:
  PaxosReplica(ProtocolEnv& env, std::vector<ReplicaId> replicas,
               ReplicaId leader, PaxosMode mode);

  // Crash-restart recovery: re-delivers the committed prefix from the log,
  // restages unresolved PREPAREs and (leader) never reuses an assigned
  // slot. A restarted replica that missed commits while down resumes as a
  // stale-but-safe learner: it executes nothing past the first gap (there
  // is no retransmission), but never diverges. Leader failover remains out
  // of scope (see above).
  void start() override;
  void submit(Command cmd) override;
  void on_message(const Message& m) override;
  [[nodiscard]] std::string name() const override {
    return mode_ == PaxosMode::kClassic ? "Paxos" : "Paxos-bcast";
  }

  [[nodiscard]] bool is_leader() const { return env_.self() == leader_; }
  [[nodiscard]] ReplicaId leader() const { return leader_; }
  [[nodiscard]] Slot executed_upto() const { return next_exec_; }

  struct Stats {
    std::uint64_t proposed = 0;   // slots assigned (leader only)
    std::uint64_t forwarded = 0;  // commands forwarded to the leader
    std::uint64_t executed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct SlotState {
    Command cmd;
    ReplicaId origin = kNoReplica;
    bool has_cmd = false;
    bool committed = false;
    std::set<ReplicaId> acks;
  };

  void leader_propose(Command cmd, ReplicaId origin);
  void handle_phase2a(const Message& m);
  void handle_phase2b(const Message& m);
  void handle_commit_notify(const Message& m);
  void try_execute();
  void broadcast(const Message& m);

  ProtocolEnv& env_;
  std::vector<ReplicaId> replicas_;
  ReplicaId leader_;
  PaxosMode mode_;

  std::map<Slot, SlotState> slots_;
  Slot next_slot_ = 0;  // leader: next slot to assign
  Slot next_exec_ = 0;  // next slot to execute, at every replica
  Stats stats_;
};

}  // namespace crsm
