#include "paxos/multi_paxos.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "storage/recovery.h"

namespace crsm {

PaxosReplica::PaxosReplica(ProtocolEnv& env, std::vector<ReplicaId> replicas,
                           ReplicaId leader, PaxosMode mode)
    : env_(env), replicas_(std::move(replicas)), leader_(leader), mode_(mode) {
  if (replicas_.empty()) throw std::invalid_argument("empty replica set");
  if (std::find(replicas_.begin(), replicas_.end(), leader_) == replicas_.end()) {
    throw std::invalid_argument("leader not in replica set");
  }
}

void PaxosReplica::broadcast(const Message& m) {
  // Encode-once fan-out via the environment's transport.
  env_.multicast(replicas_, m);
}

void PaxosReplica::start() {
  const auto& records = env_.log().records();
  if (records.empty()) return;
  // Crash recovery: committed slots replay in slot order; unresolved
  // PREPAREs are restaged so a later commit notification can still execute
  // them. next_slot_ advances past every slot this replica has ever logged —
  // with the write-ahead append in leader_propose that covers every slot a
  // restarted leader could have proposed, so slots are never reused.
  ReplayResult rr = replay_log(records);
  for (const LogRecord& r : rr.committed) {
    ++stats_.executed;
    env_.deliver(r.cmd, r.ts, /*local_origin=*/false);
  }
  if (!rr.committed.empty()) next_exec_ = rr.committed.back().ts.ticks + 1;
  for (const LogRecord& r : rr.unresolved) {
    if (r.ts.ticks < next_exec_) continue;
    SlotState& st = slots_[r.ts.ticks];
    st.cmd = r.cmd;
    st.origin = r.ts.origin;
    st.has_cmd = true;
  }
  for (const LogRecord& r : records) {
    next_slot_ = std::max(next_slot_, r.ts.ticks + 1);
  }
}

void PaxosReplica::submit(Command cmd) {
  if (is_leader()) {
    leader_propose(std::move(cmd), env_.self());
    return;
  }
  // Forward to the leader; it will tag the command with our id so we can
  // answer our client once we learn the commit.
  Message m;
  m.type = MsgType::kForward;
  m.a = env_.self();
  m.cmd = std::move(cmd);
  ++stats_.forwarded;
  env_.send(leader_, m);
}

void PaxosReplica::leader_propose(Command cmd, ReplicaId origin) {
  const Slot slot = next_slot_++;
  ++stats_.proposed;
  // Write-ahead: the slot assignment reaches stable storage before any
  // replica can learn of it, so a leader that crashes mid-broadcast can
  // never reuse the slot for a different command after restart.
  env_.log().append(LogRecord::prepare(Timestamp{slot, origin}, cmd));
  env_.log().sync();
  Message m;
  m.type = MsgType::kPhase2a;
  m.slot = slot;
  m.a = origin;
  m.cmd = std::move(cmd);
  broadcast(m);  // includes self: the leader accepts via loopback like others
}

void PaxosReplica::on_message(const Message& m) {
  switch (m.type) {
    case MsgType::kForward:
      if (is_leader()) leader_propose(m.cmd, static_cast<ReplicaId>(m.a));
      return;
    case MsgType::kPhase2a:
      handle_phase2a(m);
      return;
    case MsgType::kPhase2b:
      handle_phase2b(m);
      return;
    case MsgType::kCommitNotify:
      handle_commit_notify(m);
      return;
    default:
      return;
  }
}

void PaxosReplica::handle_phase2a(const Message& m) {
  SlotState& st = slots_[m.slot];
  st.cmd = m.cmd;
  st.origin = static_cast<ReplicaId>(m.a);
  st.has_cmd = true;
  // The leader's own loopback already hit stable storage in leader_propose
  // (write-ahead); re-appending would double the WAL and pay a second
  // fsync per locally-assigned slot.
  if (m.from != env_.self()) {
    env_.log().append(
        LogRecord::prepare(Timestamp{m.slot, st.origin}, st.cmd));
    env_.log().sync();
  }

  Message ack;
  ack.type = MsgType::kPhase2b;
  ack.slot = m.slot;
  if (mode_ == PaxosMode::kClassic) {
    env_.send(leader_, ack);
  } else {
    broadcast(ack);  // Paxos-bcast: every replica learns commits directly
  }
  // The payload may arrive after the slot already gathered a quorum of
  // broadcast acks (different links race); unblock execution if so.
  try_execute();
}

void PaxosReplica::handle_phase2b(const Message& m) {
  if (m.slot < next_exec_) return;  // already executed
  SlotState& st = slots_[m.slot];
  st.acks.insert(m.from);
  if (st.committed || st.acks.size() < majority(replicas_.size())) return;

  if (mode_ == PaxosMode::kClassic) {
    // Only the leader counts 2b messages; it notifies everyone.
    st.committed = true;
    Message c;
    c.type = MsgType::kCommitNotify;
    c.slot = m.slot;
    broadcast(c);
    try_execute();
  } else {
    st.committed = true;
    try_execute();
  }
}

void PaxosReplica::handle_commit_notify(const Message& m) {
  if (m.slot < next_exec_) return;
  slots_[m.slot].committed = true;
  try_execute();
}

void PaxosReplica::try_execute() {
  // Execute strictly in slot order; a committed slot waits for its phase-2a
  // payload if the acknowledgements outran it.
  for (;;) {
    auto it = slots_.find(next_exec_);
    if (it == slots_.end() || !it->second.committed || !it->second.has_cmd) return;
    SlotState st = std::move(it->second);
    slots_.erase(it);
    const Timestamp ts{next_exec_, st.origin};
    env_.log().append(LogRecord::commit(ts));
    env_.log().sync();  // durability point for the client reply
    ++next_exec_;
    ++stats_.executed;
    env_.deliver(st.cmd, ts, st.origin == env_.self());
  }
}

}  // namespace crsm
