// Records appended to the replicated command log (Section III-A / V-B).
#pragma once

#include <cstdint>

#include "common/command.h"
#include "common/types.h"

namespace crsm {

// Clock-RSM logs two kinds of entries: PREPARE entries carrying a command
// and its timestamp (not necessarily in timestamp order), and COMMIT marks
// carrying a timestamp only, always appended in timestamp order. The Paxos
// and Mencius implementations reuse PREPARE entries keyed by slot number
// (stored in Timestamp::ticks with origin = slot owner / leader).
enum class LogType : std::uint8_t {
  kPrepare = 1,
  kCommit = 2,
};

struct LogRecord {
  LogType type = LogType::kPrepare;
  Timestamp ts;
  Command cmd;  // empty for kCommit

  friend bool operator==(const LogRecord&, const LogRecord&) = default;

  [[nodiscard]] static LogRecord prepare(Timestamp ts, Command cmd) {
    return LogRecord{LogType::kPrepare, ts, std::move(cmd)};
  }
  [[nodiscard]] static LogRecord commit(Timestamp ts) {
    return LogRecord{LogType::kCommit, ts, Command{}};
  }
};

}  // namespace crsm
