// Lightweight structured event tracing for protocol debugging and the
// examples. Not a general-purpose logger: a bounded in-memory ring of
// protocol events with optional mirroring to stderr, designed so traces can
// be asserted on in tests and dumped when a simulation misbehaves.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace crsm {

enum class TraceLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
};

[[nodiscard]] const char* trace_level_name(TraceLevel level);

struct TraceEvent {
  Tick time_us = 0;        // domain time (simulated or monotonic)
  ReplicaId replica = kNoReplica;
  TraceLevel level = TraceLevel::kInfo;
  std::string category;    // e.g. "prepare", "commit", "reconfig"
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

// A bounded ring buffer of trace events. Thread-compatible (callers
// serialize); the simulator and each runtime replica own their own tracer
// or share one guarded externally.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(TraceEvent ev);
  void log(Tick time_us, ReplicaId replica, TraceLevel level,
           std::string category, std::string message);

  // Events in arrival order (oldest first).
  [[nodiscard]] const std::deque<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  void clear();

  // All events matching the category, oldest first.
  [[nodiscard]] std::vector<TraceEvent> by_category(const std::string& category) const;
  [[nodiscard]] std::size_t count(const std::string& category) const;

  // Mirrors every recorded event at or above `level` to the stream.
  void mirror_to(std::ostream* os, TraceLevel level = TraceLevel::kInfo);

  // Dumps all buffered events to the stream.
  void dump(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::size_t dropped_ = 0;
  std::ostream* mirror_ = nullptr;
  TraceLevel mirror_level_ = TraceLevel::kInfo;
};

}  // namespace crsm
