#include "common/message.h"

#include "common/codec.h"

namespace crsm {

const char* msg_type_name(MsgType t) {
  switch (t) {
#define CRSM_MSG_NAME_CASE(id, value, name) \
  case MsgType::id:                         \
    return name;
    CRSM_MSG_TYPE_LIST(CRSM_MSG_NAME_CASE)
#undef CRSM_MSG_NAME_CASE
  }
  return "UNKNOWN";
}

namespace {

// Shared field decoders. In view mode, byte fields borrow the decoder's
// input buffer (zero-copy); otherwise they own their bytes.
Bytes decode_payload(Decoder& d, bool view_mode) {
  std::string_view v = d.bytes_view();
  return view_mode ? Bytes::view(v) : Bytes(std::string(v));
}

Command decode_command_impl(Decoder& d, bool view_mode) {
  Command c;
  c.client = d.var();
  c.seq = d.var();
  c.payload = decode_payload(d, view_mode);
  return c;
}

LogRecord decode_log_record_impl(Decoder& d, bool view_mode) {
  LogRecord r;
  r.type = static_cast<LogType>(d.u8());
  if (r.type != LogType::kPrepare && r.type != LogType::kCommit) {
    throw CodecError("bad log record type");
  }
  r.ts = d.timestamp();
  if (r.type == LogType::kPrepare) r.cmd = decode_command_impl(d, view_mode);
  return r;
}

}  // namespace

void encode_command(const Command& c, std::string* out) {
  Encoder e(out);
  e.var(c.client);
  e.var(c.seq);
  e.bytes(c.payload);
}

Command decode_command(Decoder& d) {
  return decode_command_impl(d, /*view_mode=*/false);
}

void encode_log_record(const LogRecord& r, std::string* out) {
  Encoder e(out);
  e.u8(static_cast<std::uint8_t>(r.type));
  e.timestamp(r.ts);
  if (r.type == LogType::kPrepare) encode_command(r.cmd, out);
}

LogRecord decode_log_record(Decoder& d) {
  return decode_log_record_impl(d, /*view_mode=*/false);
}

namespace {

// Field presence per message type, so the wire representation stays compact.
struct Shape {
  bool ts = false;
  bool clock_ts = false;
  bool slot = false;
  bool a = false;
  bool b = false;
  bool cmd = false;
  bool cmds = false;
  bool records = false;
  bool blob = false;
};

Shape shape_of(MsgType t) {
  switch (t) {
    case MsgType::kPrepare: return {.ts = true, .cmd = true};
    case MsgType::kPrepareOk: return {.ts = true, .clock_ts = true};
    case MsgType::kClockTime: return {.clock_ts = true};
    case MsgType::kCmdBatch: return {.cmds = true};
    case MsgType::kForward: return {.a = true, .cmd = true};
    case MsgType::kPhase2a: return {.slot = true, .a = true, .cmd = true};
    case MsgType::kPhase2b: return {.slot = true};
    case MsgType::kCommitNotify: return {.slot = true};
    case MsgType::kMenPropose: return {.slot = true, .cmd = true};
    case MsgType::kMenAck: return {.slot = true, .a = true};
    case MsgType::kSuspend: return {.ts = true};
    case MsgType::kSuspendOk: return {.records = true};
    case MsgType::kRetrieveCmds: return {.ts = true, .clock_ts = true, .a = true};
    case MsgType::kRetrieveReply:
      // ts = the serving replica's last commit bound: the requester may only
      // treat the transferred range as complete once some reply's bound
      // covers it (a server behind the range can serve a committed subset).
      return {.ts = true, .a = true, .records = true};
    case MsgType::kCatchupReq: return {.ts = true};
    case MsgType::kCatchupReply:
      // ts = responder's last commit bound; a = 1 when blob carries the
      // responder's checkpoint (needed when its log was truncated past the
      // requested range); records = PREPARE entries above the request's ts.
      return {.ts = true, .a = true, .records = true, .blob = true};
    case MsgType::kConsPrepare: return {.a = true};
    case MsgType::kConsPromise: return {.a = true, .b = true, .blob = true};
    case MsgType::kConsAccept: return {.a = true, .blob = true};
    case MsgType::kConsAccepted: return {.a = true};
    case MsgType::kConsDecide: return {.blob = true};
    case MsgType::kClientRequest: return {.cmd = true};
    case MsgType::kClientReply: return {.cmd = true, .blob = true};
    case MsgType::kClientRead: return {.cmd = true};
    case MsgType::kClientReadReply: return {.cmd = true, .blob = true};
    case MsgType::kClientRedirect:
      // a = the group that owns the command's key. A multi-group node sends
      // this instead of applying a command the ShardRouter assigns elsewhere;
      // the echoed (client, seq) lets the client match it to its request.
      return {.a = true, .cmd = true};
  }
  return {};
}

Message decode_stream_impl(std::string_view buf, std::size_t* pos,
                           bool view_mode) {
  std::string_view rest = buf.substr(*pos);
  Decoder frame(rest);
  // The frame body is a view either way; only field payloads differ in
  // ownership. This removes the per-message body copy from every decode.
  std::string_view body = frame.bytes_view();
  *pos += rest.size() - frame.remaining();

  Decoder d(body);
  Message m;
  m.type = static_cast<MsgType>(d.u8());
  m.from = d.u32();
  m.epoch = d.var();
  const Shape s = shape_of(m.type);
  if (s.ts) m.ts = d.timestamp();
  if (s.clock_ts) m.clock_ts = d.u64();
  if (s.slot) m.slot = d.var();
  if (s.a) m.a = d.var();
  if (s.b) m.b = d.var();
  if (s.cmd) m.cmd = decode_command_impl(d, view_mode);
  if (s.cmds) {
    std::uint64_t n = d.var();
    // Every command costs >= 3 bytes on the wire (two varints + a length),
    // so a count above the remaining body is malformed; check before
    // reserve() so corrupt counts become CodecError, not giant allocations.
    if (n > d.remaining()) throw CodecError("implausible command count");
    m.cmds.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      m.cmds.push_back(decode_command_impl(d, view_mode));
    }
  }
  if (s.records) {
    std::uint64_t n = d.var();
    // Every record costs >= 13 bytes on the wire, so a count larger than the
    // remaining body is malformed; checking before reserve() keeps corrupt
    // counts from turning into huge allocations instead of CodecError.
    if (n > d.remaining()) throw CodecError("implausible record count");
    m.records.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      m.records.push_back(decode_log_record_impl(d, view_mode));
    }
  }
  if (s.blob) m.blob = decode_payload(d, view_mode);
  if (!d.done()) throw CodecError("trailing bytes in message body");
  return m;
}

}  // namespace

void Message::encode(std::string* out) const {
  std::string body;
  Encoder e(&body);
  e.u8(static_cast<std::uint8_t>(type));
  e.u32(from);
  e.var(epoch);
  const Shape s = shape_of(type);
  if (s.ts) e.timestamp(ts);
  if (s.clock_ts) e.u64(clock_ts);
  if (s.slot) e.var(slot);
  if (s.a) e.var(a);
  if (s.b) e.var(b);
  if (s.cmd) encode_command(cmd, &body);
  if (s.cmds) {
    e.var(cmds.size());
    for (const Command& c : cmds) encode_command(c, &body);
  }
  if (s.records) {
    e.var(records.size());
    for (const LogRecord& r : records) encode_log_record(r, &body);
  }
  if (s.blob) e.bytes(blob);

  Encoder frame(out);
  frame.bytes(body);
}

std::string Message::encode() const {
  std::string out;
  encode(&out);
  return out;
}

Message Message::decode_stream(std::string_view buf, std::size_t* pos) {
  return decode_stream_impl(buf, pos, /*view_mode=*/false);
}

Message Message::decode_stream_view(std::string_view buf, std::size_t* pos) {
  return decode_stream_impl(buf, pos, /*view_mode=*/true);
}

Message Message::decode(std::string_view framed) {
  std::size_t pos = 0;
  Message m = decode_stream(framed, &pos);
  if (pos != framed.size()) throw CodecError("trailing bytes after message");
  return m;
}

}  // namespace crsm
