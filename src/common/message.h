// Wire messages for all replication protocols in this repository.
//
// A single tagged struct keeps the simulator, the real-thread runtime and
// the tests protocol-agnostic: every protocol reactor consumes `Message`.
// Encoding is per-type and writes only the fields the type uses, so message
// sizes on the wire stay honest for the throughput experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/command.h"
#include "common/log_record.h"
#include "common/types.h"

namespace crsm {

// The single authoritative list of wire message types: X(identifier, value,
// wire-name). The enum, the canonical kAllMsgTypes array (which the codec
// property tests and both wire fuzzers iterate) and msg_type_name are all
// generated from it, so adding a type here automatically puts it under
// round-trip, truncation and frame-stream fuzz coverage — forgetting is a
// compile error, not a review hazard (PR 3 and PR 4 each had to patch the
// fuzzers' hand-written lists).
//
// Groups (values leave gaps for future members):
//   1..4   Clock-RSM (Algorithm 1 + 2) + the batch envelope
//  10..13  Multi-Paxos / Paxos-bcast
//  20..21  Mencius-bcast
//  30..33  Reconfiguration (Algorithm 3)
//  34..35  Crash-restart catch-up (Section V-B, durable runtime)
//  40..44  Single-decree Paxos used by reconfiguration PROPOSE/DECIDE
//  50..53  Client <-> node wire protocol (crsm_node / crsm_client)
#define CRSM_MSG_TYPE_LIST(X)                                                  \
  X(kPrepare, 1, "PREPARE")         /* <PREPARE cmd, ts> */                    \
  X(kPrepareOk, 2, "PREPAREOK")     /* <PREPAREOK ts, clockTs> */              \
  X(kClockTime, 3, "CLOCKTIME")     /* <CLOCKTIME ts> */                       \
  X(kCmdBatch, 4, "CMDBATCH")       /* batch envelope: cmds replicated as 1 */ \
  X(kForward, 10, "FORWARD")        /* non-leader forwards a cmd to leader */  \
  X(kPhase2a, 11, "PHASE2A")        /* leader -> all: accept(slot, cmd) */     \
  X(kPhase2b, 12, "PHASE2B")        /* acceptor ack (to leader or bcast) */    \
  X(kCommitNotify, 13, "COMMIT")    /* leader -> all (classic mode only) */    \
  X(kMenPropose, 20, "M-PROPOSE")   /* owner -> all: propose(slot, cmd) */     \
  X(kMenAck, 21, "M-ACK")           /* bcast ack(slot) + sender skip bound */  \
  X(kSuspend, 30, "SUSPEND")        /* <SUSPEND e, cts> */                     \
  X(kSuspendOk, 31, "SUSPENDOK")    /* <SUSPENDOK e, cmds> */                  \
  X(kRetrieveCmds, 32, "RETRIEVECMDS")   /* <RETRIEVECMDS from, to> */         \
  X(kRetrieveReply, 33, "RETRIEVEREPLY") /* <RETRIEVEREPLY cmds> */            \
  X(kCatchupReq, 34, "CATCHUPREQ")  /* <CATCHUPREQ from-ts>, open-ended */     \
  X(kCatchupReply, 35, "CATCHUPREPLY") /* <commit-bound, prepares, ckpt?> */   \
  X(kConsPrepare, 40, "C-PREPARE")  /* phase 1a (ballot) */                    \
  X(kConsPromise, 41, "C-PROMISE")  /* phase 1b (ballot, accepted b, value) */ \
  X(kConsAccept, 42, "C-ACCEPT")    /* phase 2a (ballot, value) */             \
  X(kConsAccepted, 43, "C-ACCEPTED") /* phase 2b (ballot) */                   \
  X(kConsDecide, 44, "C-DECIDE")    /* learned decision (value) */             \
  X(kClientRequest, 50, "CLIENTREQ") /* client -> node: cmd to replicate */    \
  X(kClientReply, 51, "CLIENTREPLY") /* node -> client: echo + output blob */  \
  X(kClientRead, 52, "CLIENTREAD")   /* client -> node: local read cmd */      \
  X(kClientReadReply, 53, "CLIENTREADREPLY") /* node -> client: read output */ \
  X(kClientRedirect, 54, "CLIENTREDIRECT") /* node -> client: wrong group */

enum class MsgType : std::uint8_t {
#define CRSM_MSG_ENUM_MEMBER(id, value, name) id = value,
  CRSM_MSG_TYPE_LIST(CRSM_MSG_ENUM_MEMBER)
#undef CRSM_MSG_ENUM_MEMBER
};

// Every wire message type, in declaration order.
inline constexpr MsgType kAllMsgTypes[] = {
#define CRSM_MSG_ARRAY_MEMBER(id, value, name) MsgType::id,
    CRSM_MSG_TYPE_LIST(CRSM_MSG_ARRAY_MEMBER)
#undef CRSM_MSG_ARRAY_MEMBER
};
inline constexpr std::size_t kNumMsgTypes =
    sizeof(kAllMsgTypes) / sizeof(kAllMsgTypes[0]);

[[nodiscard]] const char* msg_type_name(MsgType t);

struct Message {
  MsgType type{};
  ReplicaId from = kNoReplica;
  Epoch epoch = 0;  // Clock-RSM epoch, or consensus instance id

  Timestamp ts;       // command timestamp (Clock-RSM); reconfig cts
  Tick clock_ts = 0;  // PREPAREOK/CLOCKTIME physical clock value
  Slot slot = 0;      // Paxos / Mencius slot; RETRIEVECMDS `from` bound
  std::uint64_t a = 0;  // generic: origin replica, skip bound, ballot, `to` bound
  std::uint64_t b = 0;  // generic: accepted ballot

  Command cmd;
  std::vector<Command> cmds;       // CMDBATCH envelope member commands
  std::vector<LogRecord> records;  // SUSPENDOK / RETRIEVEREPLY payloads
  Bytes blob;                      // consensus value (encoded ReconfigDecision)

  // Serialization. `encode` appends to `out`, framed with a length prefix so
  // streams of messages can be concatenated; `decode_stream` consumes one
  // framed message and advances `pos`. The returned message owns all its
  // payload bytes.
  void encode(std::string* out) const;
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static Message decode(std::string_view framed);
  [[nodiscard]] static Message decode_stream(std::string_view buf, std::size_t* pos);

  // Zero-copy variant for the transport hot path: payload fields (`cmd`,
  // `records`, `blob`) decode into views borrowing `buf`, so no payload byte
  // is copied. The returned message must not outlive `buf`; anything a
  // handler stores becomes an owned copy via Bytes' copy-on-retain.
  [[nodiscard]] static Message decode_stream_view(std::string_view buf,
                                                  std::size_t* pos);
};

void encode_command(const Command& c, std::string* out);
[[nodiscard]] Command decode_command(class Decoder& d);
void encode_log_record(const LogRecord& r, std::string* out);
[[nodiscard]] LogRecord decode_log_record(class Decoder& d);

}  // namespace crsm
