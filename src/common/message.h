// Wire messages for all replication protocols in this repository.
//
// A single tagged struct keeps the simulator, the real-thread runtime and
// the tests protocol-agnostic: every protocol reactor consumes `Message`.
// Encoding is per-type and writes only the fields the type uses, so message
// sizes on the wire stay honest for the throughput experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/command.h"
#include "common/log_record.h"
#include "common/types.h"

namespace crsm {

enum class MsgType : std::uint8_t {
  // --- Clock-RSM (Algorithm 1 + 2) ---
  kPrepare = 1,    // <PREPARE cmd, ts>
  kPrepareOk = 2,  // <PREPAREOK ts, clockTs>
  kClockTime = 3,  // <CLOCKTIME ts>

  // --- Multi-Paxos / Paxos-bcast ---
  kForward = 10,   // non-leader forwards a client command to the leader
  kPhase2a = 11,   // leader -> all: accept(slot, cmd, origin)
  kPhase2b = 12,   // acceptor ack; to leader (classic) or broadcast (bcast)
  kCommitNotify = 13,  // leader -> all (classic mode only)

  // --- Mencius-bcast ---
  kMenPropose = 20,  // owner -> all: propose(slot, cmd)
  kMenAck = 21,      // broadcast ack(slot) carrying the sender's skip bound

  // --- Reconfiguration (Algorithm 3) ---
  kSuspend = 30,        // <SUSPEND e, cts>
  kSuspendOk = 31,      // <SUSPENDOK e, cmds>
  kRetrieveCmds = 32,   // <RETRIEVECMDS from, to>
  kRetrieveReply = 33,  // <RETRIEVEREPLY cmds>

  // --- Crash-restart catch-up (Section V-B, durable runtime) ---
  kCatchupReq = 34,    // <CATCHUPREQ from-ts>: log-range retrieve, open-ended
  kCatchupReply = 35,  // <CATCHUPREPLY commit-bound, prepares, checkpoint?>

  // --- Single-decree Paxos used by reconfiguration PROPOSE/DECIDE ---
  kConsPrepare = 40,   // phase 1a (ballot)
  kConsPromise = 41,   // phase 1b (ballot, accepted ballot, accepted value)
  kConsAccept = 42,    // phase 2a (ballot, value)
  kConsAccepted = 43,  // phase 2b (ballot)
  kConsDecide = 44,    // learned decision (value)

  // --- Client <-> node wire protocol (crsm_node / crsm_client) ---
  kClientRequest = 50,  // client -> node: cmd to replicate
  kClientReply = 51,    // node -> client: cmd (client/seq echo), blob = output
};

[[nodiscard]] const char* msg_type_name(MsgType t);

struct Message {
  MsgType type{};
  ReplicaId from = kNoReplica;
  Epoch epoch = 0;  // Clock-RSM epoch, or consensus instance id

  Timestamp ts;       // command timestamp (Clock-RSM); reconfig cts
  Tick clock_ts = 0;  // PREPAREOK/CLOCKTIME physical clock value
  Slot slot = 0;      // Paxos / Mencius slot; RETRIEVECMDS `from` bound
  std::uint64_t a = 0;  // generic: origin replica, skip bound, ballot, `to` bound
  std::uint64_t b = 0;  // generic: accepted ballot

  Command cmd;
  std::vector<LogRecord> records;  // SUSPENDOK / RETRIEVEREPLY payloads
  Bytes blob;                      // consensus value (encoded ReconfigDecision)

  // Serialization. `encode` appends to `out`, framed with a length prefix so
  // streams of messages can be concatenated; `decode_stream` consumes one
  // framed message and advances `pos`. The returned message owns all its
  // payload bytes.
  void encode(std::string* out) const;
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static Message decode(std::string_view framed);
  [[nodiscard]] static Message decode_stream(std::string_view buf, std::size_t* pos);

  // Zero-copy variant for the transport hot path: payload fields (`cmd`,
  // `records`, `blob`) decode into views borrowing `buf`, so no payload byte
  // is copied. The returned message must not outlive `buf`; anything a
  // handler stores becomes an owned copy via Bytes' copy-on-retain.
  [[nodiscard]] static Message decode_stream_view(std::string_view buf,
                                                  std::size_t* pos);
};

void encode_command(const Command& c, std::string* out);
[[nodiscard]] Command decode_command(class Decoder& d);
void encode_log_record(const LogRecord& r, std::string* out);
[[nodiscard]] LogRecord decode_log_record(class Decoder& d);

}  // namespace crsm
