// Protocol-level command batching: the batch envelope.
//
// A batch of client commands travels through the commit pipeline as ONE
// opaque Command whose payload is an encoded kCmdBatch Message (the member
// commands, length-prefixed — see docs/WIRE_FORMAT.md "Batch envelope").
// The protocols (Clock-RSM, Paxos, Mencius), the WAL, catch-up and
// reconfiguration never look inside a command payload, so a batch gets one
// PREPARE, one timestamp/ack round and one WAL record with no protocol
// changes; the runtimes split the envelope back into member commands at
// execution time (NodeRuntime::deliver, SimWorld's replica deliver) and
// fan replies out per member.
//
// The envelope command's identity: `client` is the kBatchClient sentinel
// (never a real client id, so it can't collide with client routing or
// history checking) and `seq` packs (origin replica << 40 | counter) for
// uniqueness across concurrent origins. Nothing dedups on the envelope's
// identity, so a restarted origin reusing counters is harmless.
#pragma once

#include <cstdint>
#include <vector>

#include "common/command.h"
#include "common/types.h"

namespace crsm {

// Sentinel client id marking a batch envelope. Real client ids are
// make_client_id(replica, index) and never reach this value.
inline constexpr ClientId kBatchClient = ~ClientId{0};

// True iff `cmd` is a batch envelope produced by make_batch().
[[nodiscard]] inline bool is_batch(const Command& cmd) {
  return cmd.client == kBatchClient;
}

// Packs `origin`'s `counter`-th batch into one envelope command. Requires
// cmds.size() >= 1; a runtime that cut a singleton batch should submit the
// bare command instead (no envelope overhead for batch size 1).
[[nodiscard]] Command make_batch(const std::vector<Command>& cmds,
                                 ReplicaId origin, std::uint64_t counter);

// Splits an envelope back into its member commands (owned copies). Throws
// CodecError on a corrupt envelope — fail-stop, like any other corrupt
// replicated state.
[[nodiscard]] std::vector<Command> split_batch(const Command& envelope);

}  // namespace crsm
