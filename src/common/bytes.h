// Copy-on-retain byte buffer for wire payloads.
//
// The zero-copy receive path (ThreadTransport::poll) decodes messages whose
// payload fields are *views* into the pooled receive buffer: no bytes are
// copied while a message is merely inspected and routed. The moment protocol
// code stores a payload past the handler call — ClockRSM's pending map,
// Paxos/Mencius slot state, a command-log append — the store goes through
// Bytes' copy constructor/assignment, which always materializes an owned
// copy. That single rule ("a copy owns") is what makes view payloads safe to
// hand to unmodified protocol code.
//
// Ownership rules:
//  * Bytes built from std::string / const char* own their bytes.
//  * Bytes::view(v) borrows `v`; the borrow is only valid while the backing
//    buffer is (one transport poll pass). Views never escape the handler
//    unless copied, because copying produces an owned Bytes.
//  * Moving preserves the mode: moving a view moves the borrow (still only
//    valid within the handler scope); moving an owned Bytes transfers the
//    owned storage.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace crsm {

class Bytes {
 public:
  Bytes() = default;

  // Owning constructors (implicit: payloads are assigned from encoded
  // strings all over the tests and examples).
  Bytes(std::string s) : owned_(std::move(s)), view_(owned_), is_view_(false) {}
  Bytes(const char* s) : Bytes(std::string(s)) {}

  // Borrows `v` without copying. Only the decode path should create these.
  [[nodiscard]] static Bytes view(std::string_view v) {
    Bytes b;
    b.view_ = v;
    b.is_view_ = true;
    return b;
  }

  // Copying always yields an owned Bytes: this is the copy-on-retain point.
  Bytes(const Bytes& o) : owned_(o.view_), view_(owned_), is_view_(false) {}
  Bytes& operator=(const Bytes& o) {
    if (this != &o) {
      // Materialize through a temporary: `o` may be a view into owned_.
      std::string tmp(o.view_);
      owned_ = std::move(tmp);
      view_ = owned_;
      is_view_ = false;
    }
    return *this;
  }

  Bytes(Bytes&& o) noexcept { steal(std::move(o)); }
  Bytes& operator=(Bytes&& o) noexcept {
    if (this != &o) steal(std::move(o));
    return *this;
  }

  Bytes& operator=(std::string s) {
    owned_ = std::move(s);
    view_ = owned_;
    is_view_ = false;
    return *this;
  }
  Bytes& operator=(const char* s) { return *this = std::string(s); }

  [[nodiscard]] std::string_view view() const { return view_; }
  operator std::string_view() const { return view_; }  // NOLINT(google-explicit-constructor)

  [[nodiscard]] const char* data() const { return view_.data(); }
  [[nodiscard]] std::size_t size() const { return view_.size(); }
  [[nodiscard]] bool empty() const { return view_.empty(); }
  [[nodiscard]] bool is_view() const { return is_view_; }

  // Owned copy of the contents (for code that needs a std::string).
  [[nodiscard]] std::string str() const { return std::string(view_); }

  void clear() {
    owned_.clear();
    view_ = owned_;
    is_view_ = false;
  }

  void assign(std::size_t n, char c) {
    owned_.assign(n, c);
    view_ = owned_;
    is_view_ = false;
  }

  // Converts a view in place into an owned copy (no-op when already owned).
  void ensure_owned() {
    if (is_view_) {
      owned_.assign(view_.begin(), view_.end());
      view_ = owned_;
      is_view_ = false;
    }
  }

  // Strings and literals compare via the implicit owning constructors; a
  // dedicated string_view overload would make those comparisons ambiguous.
  friend bool operator==(const Bytes& a, const Bytes& b) {
    return a.view_ == b.view_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Bytes& b) {
    return os << b.view_;
  }

 private:
  void steal(Bytes&& o) noexcept {
    if (o.is_view_) {
      view_ = o.view_;
      is_view_ = true;
      owned_.clear();
    } else {
      owned_ = std::move(o.owned_);
      view_ = owned_;  // the moved string's data pointer may have changed
      is_view_ = false;
    }
    o.owned_.clear();
    o.view_ = o.owned_;
    o.is_view_ = false;
  }

  std::string owned_;
  std::string_view view_;  // always valid: points into owned_ or a borrow
  bool is_view_ = false;
};

}  // namespace crsm
