// Client commands replicated by the state machine protocols.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/types.h"

namespace crsm {

// An opaque state machine command issued by a client. `payload` carries the
// application-level operation (for the bundled key-value store, an encoded
// PUT/GET/DEL); the replication protocols never interpret it. The payload is
// a copy-on-retain Bytes so the transport receive path can decode commands
// as views into its pooled buffer (see common/bytes.h).
struct Command {
  ClientId client = 0;
  std::uint64_t seq = 0;  // client-local sequence number, unique per client
  Bytes payload;

  friend bool operator==(const Command&, const Command&) = default;

  [[nodiscard]] bool empty() const { return client == 0 && seq == 0 && payload.empty(); }
};

}  // namespace crsm
