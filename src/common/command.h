// Client commands replicated by the state machine protocols.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace crsm {

// An opaque state machine command issued by a client. `payload` carries the
// application-level operation (for the bundled key-value store, an encoded
// PUT/GET/DEL); the replication protocols never interpret it.
struct Command {
  ClientId client = 0;
  std::uint64_t seq = 0;  // client-local sequence number, unique per client
  std::string payload;

  friend bool operator==(const Command&, const Command&) = default;

  [[nodiscard]] bool empty() const { return client == 0 && seq == 0 && payload.empty(); }
};

}  // namespace crsm
