// Minimal binary serialization used on the wire and in the on-disk log.
//
// The paper uses Google Protocol Buffers; this codec is the offline
// substitute (see DESIGN.md). It encodes integers little-endian (fixed or
// varint) and byte strings with a varint length prefix, so per-message cost
// scales with payload size the same way a protobuf encoding would.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/types.h"

namespace crsm {

// The fixed-width integer paths memcpy host-order bytes straight onto the
// wire, so the documented little-endian assumption must hold at compile
// time. A big-endian port needs byte-swap fallbacks in u32/u64 (and the
// matching decoders) before this assert may be relaxed.
static_assert(std::endian::native == std::endian::little,
              "codec.h assumes a little-endian host; add byte-swapping to "
              "Encoder/Decoder u32/u64 before porting to big-endian");

// Thrown when decoding malformed or truncated input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

// Appends primitive values to a byte buffer.
class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(std::string* out) : external_(out) {}

  void u8(std::uint8_t v) { buf().push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    char b[4];
    std::memcpy(b, &v, 4);  // little-endian hosts only (x86-64/aarch64)
    buf().append(b, 4);
  }

  void u64(std::uint64_t v) {
    char b[8];
    std::memcpy(b, &v, 8);
    buf().append(b, 8);
  }

  // LEB128 unsigned varint.
  void var(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  void bytes(std::string_view s) {
    var(s.size());
    buf().append(s.data(), s.size());
  }

  void timestamp(const Timestamp& ts) {
    u64(ts.ticks);
    u32(ts.origin);
  }

  [[nodiscard]] const std::string& str() const { return external_ ? *external_ : owned_; }
  [[nodiscard]] std::string take() { return std::move(owned_); }

 private:
  std::string& buf() { return external_ ? *external_ : owned_; }

  std::string owned_;
  std::string* external_ = nullptr;
};

// Reads primitive values back; throws CodecError on truncation or overflow.
class Decoder {
 public:
  explicit Decoder(std::string_view in) : in_(in) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(in_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, in_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, in_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::uint64_t var() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift > 63) throw CodecError("varint overflow");
      std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  // Zero-copy variant: the returned view borrows the decoder's input and is
  // only valid while that buffer is.
  [[nodiscard]] std::string_view bytes_view() {
    std::uint64_t n = var();
    need(n);
    std::string_view s = in_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::string bytes() { return std::string(bytes_view()); }

  [[nodiscard]] Timestamp timestamp() {
    Timestamp ts;
    ts.ticks = u64();
    ts.origin = u32();
    return ts;
  }

  [[nodiscard]] bool done() const { return pos_ == in_.size(); }
  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }

 private:
  void need(std::uint64_t n) const {
    // Compare against the remaining length rather than `pos_ + n`: an
    // adversarial varint length near UINT64_MAX would wrap the addition and
    // slip truncated input past the bounds check.
    if (n > in_.size() - pos_) throw CodecError("truncated input");
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace crsm
