// Encode-once wire frames for the fan-out send path.
//
// The paper's throughput experiment (Section VI-D) pins the local-cluster
// bottleneck on message sending/receiving CPU. Every protocol here is
// broadcast-heavy: a PREPARE or PHASE2A goes to all N replicas. Serializing
// the same Message once per link made encoding cost scale with fan-out; a
// WireFrame serializes it at most once and hands the same bytes to every
// link it is sent on.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/message.h"
#include "common/types.h"

namespace crsm {

// One outgoing message, shared by every link it travels. Holds the decoded
// struct (so in-process transports can deliver without re-decoding) and a
// lazily produced, cached encoding (so byte-stream transports serialize at
// most once regardless of fan-out).
//
// Not thread-safe: a frame is built, encoded and handed to links on the
// sending thread; receivers only ever see the immutable byte copies/shared
// message, never the frame itself.
class WireFrame {
 public:
  // The message is moved into shared storage up front: SimTransport's
  // delivery events retain it past the send call without a second deep
  // copy, and the byte-stream path pays only this one control-block
  // allocation per frame (amortized over the fan-out; the encoding itself
  // is cached inline, not behind another allocation).
  explicit WireFrame(Message m)
      : msg_(std::make_shared<const Message>(std::move(m))) {}

  [[nodiscard]] const Message& msg() const { return *msg_; }
  [[nodiscard]] const std::shared_ptr<const Message>& shared_msg() const {
    return msg_;
  }

  // True once bytes() has produced the encoding (lets transports count
  // actual encode calls).
  [[nodiscard]] bool encoded_yet() const { return encoded_; }

  // Framed wire bytes (length-prefixed, concatenable). Encoded on first use
  // and cached; the view is valid for this frame's lifetime.
  [[nodiscard]] std::string_view bytes() const {
    if (!encoded_) {
      msg_->encode(&bytes_);
      encoded_ = true;
    }
    return bytes_;
  }

 private:
  std::shared_ptr<const Message> msg_;
  mutable std::string bytes_;  // filled at most once
  mutable bool encoded_ = false;
};

// Per-sender helper: stamps outgoing messages with the sender id (protocols
// leave Message::from blank; the environment owns identity) and wraps them
// into frames.
class FrameWriter {
 public:
  explicit FrameWriter(ReplicaId self) : self_(self) {}

  [[nodiscard]] WireFrame frame(const Message& m) const {
    Message copy = m;
    copy.from = self_;
    return WireFrame(std::move(copy));
  }

 private:
  ReplicaId self_;
};

}  // namespace crsm
