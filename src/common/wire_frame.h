// Encode-once wire frames for the fan-out send path.
//
// The paper's throughput experiment (Section VI-D) pins the local-cluster
// bottleneck on message sending/receiving CPU. Every protocol here is
// broadcast-heavy: a PREPARE or PHASE2A goes to all N replicas. Serializing
// the same Message once per link made encoding cost scale with fan-out; a
// WireFrame serializes it at most once and hands the same bytes to every
// link it is sent on.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/codec.h"
#include "common/message.h"
#include "common/types.h"

namespace crsm {

// Upper bound on a single frame body. Real messages are far smaller (the
// largest are RETRIEVEREPLY record batches); anything bigger coming off a
// socket is a corrupt or hostile length prefix, and rejecting it here keeps
// stream reassembly from buffering gigabytes before the decoder ever runs.
inline constexpr std::uint64_t kMaxFrameBody = 1ull << 30;

// Scans the frame header (the varint body-length prefix every encoded
// Message starts with) at the front of `buf`. Returns the total size of the
// first frame — header plus body — or 0 if `buf` does not yet hold a
// complete frame. Throws CodecError on a malformed or implausible header,
// the signal for a stream reader to drop the connection.
[[nodiscard]] inline std::size_t frame_size(std::string_view buf) {
  std::uint64_t len = 0;
  int shift = 0;
  std::size_t header = 0;
  for (;;) {
    // Overflow first: ten continuation bytes are malformed no matter how
    // many more bytes arrive, so this must not be mistaken for "partial".
    if (shift > 63) throw CodecError("frame header varint overflow");
    if (header >= buf.size()) return 0;  // header itself still partial
    const auto b = static_cast<std::uint8_t>(buf[header++]);
    len |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  if (len > kMaxFrameBody) throw CodecError("implausible frame length");
  if (buf.size() - header < len) return 0;  // body still partial
  return header + static_cast<std::size_t>(len);
}

// One outgoing message, shared by every link it travels. Holds the decoded
// struct (so in-process transports can deliver without re-decoding) and a
// lazily produced, cached encoding (so byte-stream transports serialize at
// most once regardless of fan-out).
//
// Not thread-safe: a frame is built, encoded and handed to links on the
// sending thread; receivers only ever see the immutable byte copies/shared
// message, never the frame itself.
class WireFrame {
 public:
  // The message is moved into shared storage up front: SimTransport's
  // delivery events retain it past the send call without a second deep
  // copy. The cached encoding is shared storage too, so socket transports
  // can queue the same buffer on every outbound link; both allocations are
  // per frame, amortized over the fan-out.
  explicit WireFrame(Message m)
      : msg_(std::make_shared<const Message>(std::move(m))) {}

  [[nodiscard]] const Message& msg() const { return *msg_; }
  [[nodiscard]] const std::shared_ptr<const Message>& shared_msg() const {
    return msg_;
  }

  // True once bytes() has produced the encoding (lets transports count
  // actual encode calls).
  [[nodiscard]] bool encoded_yet() const { return encoded_; }

  // Framed wire bytes (length-prefixed, concatenable). Encoded on first use
  // and cached; the view is valid for this frame's lifetime.
  [[nodiscard]] std::string_view bytes() const { return *shared_bytes(); }

  // The same cached encoding behind shared ownership, for transports whose
  // links outlive the frame (TcpTransport queues the encoding on N per-peer
  // send queues: one serialization, one buffer, N references).
  [[nodiscard]] const std::shared_ptr<const std::string>& shared_bytes() const {
    if (!encoded_) {
      auto b = std::make_shared<std::string>();
      msg_->encode(b.get());
      bytes_ = std::move(b);
      encoded_ = true;
    }
    return bytes_;
  }

 private:
  std::shared_ptr<const Message> msg_;
  mutable std::shared_ptr<const std::string> bytes_;  // filled at most once
  mutable bool encoded_ = false;
};

// Per-sender helper: stamps outgoing messages with the sender id (protocols
// leave Message::from blank; the environment owns identity) and wraps them
// into frames.
class FrameWriter {
 public:
  explicit FrameWriter(ReplicaId self) : self_(self) {}

  [[nodiscard]] WireFrame frame(const Message& m) const {
    Message copy = m;
    copy.from = self_;
    return WireFrame(std::move(copy));
  }

 private:
  ReplicaId self_;
};

}  // namespace crsm
