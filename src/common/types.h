// Core identifier and timestamp types shared by every module.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace crsm {

// Identifies a replica. Replica ids are dense indices into the system
// specification (Spec) chosen by the administrator, stable for the lifetime
// of the system.
using ReplicaId = std::uint32_t;

// Reconfiguration epoch (Algorithm 3). Starts at 0 and increases by one per
// reconfiguration.
using Epoch = std::uint64_t;

// Consensus / Mencius / Paxos log position.
using Slot = std::uint64_t;

// Identifies a client process.
using ClientId = std::uint64_t;

// Physical clock reading in microseconds. Clock-RSM only assumes loose
// synchronization; ticks from different replicas are comparable but may be
// skewed.
using Tick = std::uint64_t;

inline constexpr ReplicaId kNoReplica = std::numeric_limits<ReplicaId>::max();

// A Clock-RSM command timestamp: the originating replica's physical clock
// reading, with the replica id breaking ties so that timestamps form a total
// order (Section III-B, step 1).
struct Timestamp {
  Tick ticks = 0;
  ReplicaId origin = kNoReplica;

  friend auto operator<=>(const Timestamp&, const Timestamp&) = default;

  [[nodiscard]] bool is_zero() const { return ticks == 0; }
  [[nodiscard]] std::string to_string() const {
    return std::to_string(ticks) + "." + std::to_string(origin);
  }
};

inline constexpr Timestamp kZeroTimestamp{0, 0};

// Size of a majority quorum of `n` processes.
[[nodiscard]] constexpr std::size_t majority(std::size_t n) { return n / 2 + 1; }

// Milliseconds/microseconds helpers; all protocol code works in microseconds.
[[nodiscard]] constexpr Tick ms_to_us(double ms) {
  return static_cast<Tick>(ms * 1000.0);
}
[[nodiscard]] constexpr double us_to_ms(Tick us) {
  return static_cast<double>(us) / 1000.0;
}

}  // namespace crsm
