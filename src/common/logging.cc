#include "common/logging.h"

#include <ostream>
#include <utility>

namespace crsm {

const char* trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::kDebug: return "DEBUG";
    case TraceLevel::kInfo: return "INFO";
    case TraceLevel::kWarn: return "WARN";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::string s;
  s += "[" + std::to_string(time_us) + "us r";
  s += replica == kNoReplica ? "?" : std::to_string(replica);
  s += " ";
  s += trace_level_name(level);
  s += " " + category + "] " + message;
  return s;
}

void Tracer::record(TraceEvent ev) {
  if (mirror_ && ev.level >= mirror_level_) {
    *mirror_ << ev.to_string() << '\n';
  }
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(ev));
}

void Tracer::log(Tick time_us, ReplicaId replica, TraceLevel level,
                 std::string category, std::string message) {
  record(TraceEvent{time_us, replica, level, std::move(category),
                    std::move(message)});
}

void Tracer::clear() {
  events_.clear();
  dropped_ = 0;
}

std::vector<TraceEvent> Tracer::by_category(const std::string& category) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

std::size_t Tracer::count(const std::string& category) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.category == category) ++n;
  }
  return n;
}

void Tracer::mirror_to(std::ostream* os, TraceLevel level) {
  mirror_ = os;
  mirror_level_ = level;
}

void Tracer::dump(std::ostream& os) const {
  for (const TraceEvent& e : events_) os << e.to_string() << '\n';
}

}  // namespace crsm
