#include "common/batch.h"

#include <string>
#include <utility>

#include "common/codec.h"
#include "common/message.h"

namespace crsm {

Command make_batch(const std::vector<Command>& cmds, ReplicaId origin,
                   std::uint64_t counter) {
  Message env;
  env.type = MsgType::kCmdBatch;
  env.from = origin;
  env.cmds = cmds;
  Command out;
  out.client = kBatchClient;
  out.seq = (static_cast<std::uint64_t>(origin) << 40) | (counter & ((1ULL << 40) - 1));
  out.payload = Bytes(env.encode());
  return out;
}

std::vector<Command> split_batch(const Command& envelope) {
  Message env = Message::decode(envelope.payload.view());
  if (env.type != MsgType::kCmdBatch) {
    throw CodecError("batch envelope has wrong message type");
  }
  if (env.cmds.empty()) throw CodecError("empty batch envelope");
  return std::move(env.cmds);
}

}  // namespace crsm
