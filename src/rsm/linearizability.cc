#include "rsm/linearizability.h"

#include <algorithm>
#include <limits>

namespace crsm {

namespace {

std::string op_name(const OpRecord& op) {
  return "op(client=" + std::to_string(op.client) +
         ", seq=" + std::to_string(op.seq) + ")";
}

}  // namespace

LinearizabilityResult check_real_time_order(std::vector<OpRecord> ops) {
  LinearizabilityResult res;
  for (const OpRecord& op : ops) {
    if (op.response_us < op.invoke_us) {
      res.ok = false;
      res.violation = op_name(op) + " responded before it was invoked";
      return res;
    }
  }

  std::sort(ops.begin(), ops.end(), [](const OpRecord& a, const OpRecord& b) {
    return a.order_index < b.order_index;
  });
  for (std::size_t i = 1; i < ops.size(); ++i) {
    if (ops[i].order_index == ops[i - 1].order_index) {
      res.ok = false;
      res.violation = op_name(ops[i]) + " and " + op_name(ops[i - 1]) +
                      " share order index " + std::to_string(ops[i].order_index);
      return res;
    }
  }

  // suffix_min_resp[i] = smallest response time among ops[i..]. If an op
  // ordered *after* b responded before b was invoked, real time is violated.
  const std::size_t n = ops.size();
  std::vector<Tick> suffix_min_resp(n + 1, std::numeric_limits<Tick>::max());
  std::vector<std::size_t> suffix_argmin(n + 1, n);
  for (std::size_t i = n; i-- > 0;) {
    if (ops[i].response_us < suffix_min_resp[i + 1]) {
      suffix_min_resp[i] = ops[i].response_us;
      suffix_argmin[i] = i;
    } else {
      suffix_min_resp[i] = suffix_min_resp[i + 1];
      suffix_argmin[i] = suffix_argmin[i + 1];
    }
  }
  for (std::size_t b = 0; b < n; ++b) {
    if (suffix_min_resp[b + 1] < ops[b].invoke_us) {
      const OpRecord& a = ops[suffix_argmin[b + 1]];
      res.ok = false;
      res.violation = op_name(a) + " completed at " +
                      std::to_string(a.response_us) + "us, before " +
                      op_name(ops[b]) + " was invoked at " +
                      std::to_string(ops[b].invoke_us) +
                      "us, yet is ordered after it";
      return res;
    }
  }
  return res;
}

}  // namespace crsm
