#include "rsm/failure_detector.h"

#include <algorithm>

namespace crsm {

FailureDetector::FailureDetector(std::vector<ReplicaId> peers, Tick timeout_us)
    : timeout_us_(timeout_us) {
  for (ReplicaId p : peers) last_seen_[p] = 0;
}

void FailureDetector::heartbeat(ReplicaId peer, Tick now) {
  auto it = last_seen_.find(peer);
  if (it == last_seen_.end()) return;  // not monitored
  it->second = std::max(it->second, now);
}

std::vector<ReplicaId> FailureDetector::suspects(Tick now) const {
  std::vector<ReplicaId> out;
  for (const auto& [peer, seen] : last_seen_) {
    if (now > seen && now - seen > timeout_us_) out.push_back(peer);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool FailureDetector::is_suspect(ReplicaId peer, Tick now) const {
  auto it = last_seen_.find(peer);
  if (it == last_seen_.end()) return false;
  return now > it->second && now - it->second > timeout_us_;
}

void FailureDetector::reset_all(Tick now) {
  for (auto& [peer, seen] : last_seen_) seen = now;
}

}  // namespace crsm
