// Client-visible history accounting for fault-injection harnesses.
//
// Wraps the real-time-order linearizability checker (linearizability.h) with
// the two properties it cannot see on its own:
//
//  * durability — an operation whose client got the reply must appear in the
//    agreed total order afterwards, no matter which replicas crashed (the
//    paper's majority-logged commit rule is exactly what makes this hold);
//  * uniqueness — an operation commits at most once, unless the caller
//    explicitly allows at-least-once duplicates (transport-level duplicate
//    injection can legitimately double-propose a forwarded command).
//
// Used by the DST scenario runner (src/dst) and reusable by any harness that
// observes invokes, responses and one replica's commit order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "rsm/linearizability.h"

namespace crsm {

class HistoryChecker {
 public:
  // A client issued (client, seq) at local time `now_us`.
  void on_invoke(ClientId client, std::uint64_t seq, Tick now_us);
  // The client received the reply (the op committed at its home replica).
  void on_response(ClientId client, std::uint64_t seq, Tick now_us);
  // Feed the agreed total order, one committed command at a time, in order
  // (use the longest live replica's execution trace). Commands that are not
  // tracked client ops (probes, background traffic) are ignored.
  void on_commit(ClientId client, std::uint64_t seq);

  struct Report {
    bool ok = true;
    std::string violation;  // first failure, human-readable
    std::size_t invoked = 0;
    std::size_t completed = 0;  // responses received
    std::size_t committed = 0;  // tracked ops present in the total order

    explicit operator bool() const { return ok; }
  };

  // Verifies durability (every completed op is in the commit order),
  // commit uniqueness (unless `allow_duplicates`; the first occurrence then
  // defines the op's order index) and linearizability of the completed
  // history via check_real_time_order.
  [[nodiscard]] Report check(bool allow_duplicates = false) const;

  [[nodiscard]] std::size_t completed_ops() const;

 private:
  struct Op {
    Tick invoke_us = 0;
    Tick response_us = 0;
    bool responded = false;
    bool committed = false;
    std::uint64_t order_index = 0;  // first commit position
    std::size_t commit_count = 0;
  };

  std::map<std::pair<ClientId, std::uint64_t>, Op> ops_;
  std::uint64_t next_order_index_ = 0;
};

}  // namespace crsm
