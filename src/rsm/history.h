// Client-visible history accounting for fault-injection harnesses.
//
// Wraps the real-time-order linearizability checker (linearizability.h) with
// the two properties it cannot see on its own:
//
//  * durability — an operation whose client got the reply must appear in the
//    agreed total order afterwards, no matter which replicas crashed (the
//    paper's majority-logged commit rule is exactly what makes this hold);
//  * uniqueness — an operation commits at most once, unless the caller
//    explicitly allows at-least-once duplicates (transport-level duplicate
//    injection can legitimately double-propose a forwarded command).
//
// Used by the DST scenario runner (src/dst) and reusable by any harness that
// observes invokes, responses and one replica's commit order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "rsm/linearizability.h"

namespace crsm {

class HistoryChecker {
 public:
  // A client issued (client, seq) at local time `now_us`.
  void on_invoke(ClientId client, std::uint64_t seq, Tick now_us);
  // Like on_invoke, but records the write's key and value so read-only ops
  // on the same key can be checked (see on_invoke_read). Read checking
  // assumes values are unique per key across the workload — harnesses
  // issuing reads must encode a unique token (e.g. "client:seq") into every
  // value.
  void on_invoke_write(ClientId client, std::uint64_t seq, std::string key,
                       std::string value, Tick now_us);
  // The client received the reply (the op committed at its home replica).
  void on_response(ClientId client, std::uint64_t seq, Tick now_us);
  // A client issued a read-only op on `key`. Reads never enter the commit
  // order (local reads bypass the log entirely), so they linearize by the
  // value they return plus real-time bounds instead of a commit index:
  //  * no stale read — the returned value must be at least as new as the
  //    newest write to the key whose response preceded the read's invoke;
  //  * no future read — the returned value must come from a write that was
  //    invoked before the read responded (or be the initial empty state);
  //  * read monotonicity — of two reads on a key ordered by real time
  //    (response before invoke), the later read must not return an older
  //    version, regardless of which clients or replicas were involved.
  void on_invoke_read(ClientId client, std::uint64_t seq, std::string key,
                      Tick now_us);
  // The read returned `value` ("" = key absent). A read with no response
  // recorded is treated as never completed and constrains nothing.
  void on_response_read(ClientId client, std::uint64_t seq, std::string value,
                        Tick now_us);
  // Feed the agreed total order, one committed command at a time, in order
  // (use the longest live replica's execution trace). Commands that are not
  // tracked client ops (probes, background traffic, reads that rode the
  // log) are ignored.
  void on_commit(ClientId client, std::uint64_t seq);

  struct Report {
    bool ok = true;
    std::string violation;  // first failure, human-readable
    std::size_t invoked = 0;
    std::size_t completed = 0;  // responses received
    std::size_t committed = 0;  // tracked ops present in the total order
    std::size_t reads = 0;            // read ops invoked
    std::size_t reads_completed = 0;  // read responses received

    explicit operator bool() const { return ok; }
  };

  // Verifies durability (every completed op is in the commit order),
  // commit uniqueness (unless `allow_duplicates`; the first occurrence then
  // defines the op's order index) and linearizability of the completed
  // history via check_real_time_order. Read violations are reported with a
  // "stale-read: " prefix so harnesses can categorize them separately.
  [[nodiscard]] Report check(bool allow_duplicates = false) const;

  [[nodiscard]] std::size_t completed_ops() const;
  [[nodiscard]] std::size_t completed_reads() const;

 private:
  struct Op {
    Tick invoke_us = 0;
    Tick response_us = 0;
    bool responded = false;
    bool committed = false;
    std::uint64_t order_index = 0;  // first commit position
    std::size_t commit_count = 0;
    bool has_kv = false;  // registered via on_invoke_write
    std::string key;
    std::string value;
  };

  struct ReadOp {
    Tick invoke_us = 0;
    Tick response_us = 0;
    bool responded = false;
    std::string key;
    std::string value;  // returned value; "" = key absent
  };

  [[nodiscard]] std::string check_reads() const;  // "" = ok

  std::map<std::pair<ClientId, std::uint64_t>, Op> ops_;
  std::map<std::pair<ClientId, std::uint64_t>, ReadOp> reads_;
  std::uint64_t next_order_index_ = 0;
};

}  // namespace crsm
