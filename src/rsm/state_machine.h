// Deterministic state machine interface (Section II-B).
#pragma once

#include <string>

#include "common/command.h"
#include "obs/metric_sink.h"

namespace crsm {

// The application replicated by the protocols. `apply` must be
// deterministic: identical command sequences produce identical states and
// outputs at every replica.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  // Executes one command atomically and returns its output.
  virtual std::string apply(const Command& cmd) = 0;

  // Executes a read-only command against the current state and returns its
  // output. Must not mutate state: the read path (Section "Linearizable
  // local reads" in docs/ARCHITECTURE.md) serves these outside the
  // replicated log, so any side effect would silently diverge replicas.
  // The default refuses, so only state machines that opt in are readable.
  [[nodiscard]] virtual std::string apply_read(const Command& cmd) const {
    (void)cmd;
    return {};
  }

  // A digest of the current state, used by tests to check replica agreement.
  [[nodiscard]] virtual std::uint64_t state_digest() const = 0;

  // Serializes the full state for checkpointing (Section V-B). Must be
  // deterministic: equal states produce equal snapshots.
  [[nodiscard]] virtual std::string snapshot() const = 0;
  // Replaces the current state with a previously taken snapshot.
  virtual void restore(const std::string& snapshot) = 0;

  // Reports application-level counters (op counts, sizes) into `sink` at
  // metrics-snapshot time, on the replica's execution thread. Names ending
  // in "_total" register as counters, others as gauges. Default: nothing.
  virtual void fill_metrics(const obs::MetricSink& sink) const { (void)sink; }
};

}  // namespace crsm
