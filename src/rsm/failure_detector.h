// Timeout-based eventually-perfect failure detector (Section II-A).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace crsm {

// Tracks the last time a message was received from each peer and reports
// peers silent for longer than the timeout as suspected. May be wrong
// (premature suspicion) — Clock-RSM's reconfiguration tolerates that; it
// only needs eventual completeness and eventual accuracy for liveness.
class FailureDetector {
 public:
  FailureDetector(std::vector<ReplicaId> peers, Tick timeout_us);

  // Records life signs from `peer` at local time `now`.
  void heartbeat(ReplicaId peer, Tick now);

  // Peers whose last heartbeat is older than the timeout at time `now`.
  [[nodiscard]] std::vector<ReplicaId> suspects(Tick now) const;

  [[nodiscard]] bool is_suspect(ReplicaId peer, Tick now) const;

  // Resets the deadline of all peers to `now` (e.g. after reconfiguration).
  void reset_all(Tick now);

  [[nodiscard]] Tick timeout_us() const { return timeout_us_; }

 private:
  std::unordered_map<ReplicaId, Tick> last_seen_;
  Tick timeout_us_;
};

}  // namespace crsm
