// Interfaces between replication protocols and their execution environment.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/command.h"
#include "common/message.h"
#include "common/types.h"
#include "obs/metric_sink.h"
#include "storage/command_log.h"

namespace crsm {

namespace obs {
class CommitTracer;
}  // namespace obs

// Everything a protocol reactor may do to the outside world. Implemented by
// the discrete-event simulator (SimEnv) and by the real-thread runtime
// (RtEnv); protocol code is engine-agnostic and strictly single-threaded.
//
// Guarantees provided by every implementation:
//  * send(): reliable, per-(sender,receiver) FIFO delivery (Section II-A
//    assumes FIFO channels); sending to self enqueues a local delivery and
//    never re-enters the protocol synchronously.
//  * clock_now(): strictly increasing local physical time in microseconds,
//    loosely synchronized across replicas.
//  * schedule_after(): fires `fn` once after the delay, in the replica's
//    execution context (never concurrently with message handling).
class ProtocolEnv {
 public:
  virtual ~ProtocolEnv() = default;

  [[nodiscard]] virtual ReplicaId self() const = 0;

  virtual void send(ReplicaId to, const Message& m) = 0;

  // Fan-out send: `m` goes to every replica in `tos` (FIFO per link, same
  // guarantees as send). Environments backed by a Transport serialize the
  // message at most once regardless of fan-out; this default keeps scripted
  // test environments and the send() contract unchanged.
  virtual void multicast(const std::vector<ReplicaId>& tos, const Message& m) {
    for (ReplicaId to : tos) send(to, m);
  }

  [[nodiscard]] virtual Tick clock_now() = 0;
  virtual void schedule_after(Tick delay_us, std::function<void()> fn) = 0;
  [[nodiscard]] virtual CommandLog& log() = 0;

  // Reports a command as committed and executed at this replica, in the
  // protocol's total order. `local_origin` is true iff this replica
  // originated the command (and therefore owes its client a reply).
  virtual void deliver(const Command& cmd, Timestamp ts, bool local_origin) = 0;

  // Reports a read-only command as servable against the replica's current
  // state: every write with a timestamp <= `read_ts` has been executed here
  // and no smaller-timestamped write can still arrive. The environment
  // executes it via StateMachine::apply_read and routes the output to the
  // waiting client. Reads never enter the replicated log or the execution
  // trace, so this is distinct from deliver(). Default no-op: environments
  // that never issue reads need no read plumbing.
  virtual void deliver_read(const Command& cmd, Timestamp read_ts) {
    (void)cmd;
    (void)read_ts;
  }

  // Highest commit timestamp covered by an installed checkpoint, if any
  // (Section V-B). Recovery replays the log only above this floor; the
  // environment is responsible for restoring the state machine from the
  // checkpoint before start().
  [[nodiscard]] virtual Timestamp recovery_floor() const { return kZeroTimestamp; }

  // Latest checkpoint, serialized (Checkpoint::encode; "" = none). Served to
  // recovering peers whose catch-up request predates our recovery floor —
  // the covered log prefix is gone, so the snapshot stands in for it.
  [[nodiscard]] virtual std::string encoded_checkpoint() const { return {}; }

  // Installs a checkpoint received from a peer during catch-up: restores the
  // state machine from it, truncates the covered log prefix and advances
  // recovery_floor(). Default no-op: scripted/simulated environments do not
  // support remote checkpoints.
  virtual void install_checkpoint(std::string_view blob) { (void)blob; }

  // Commit-pipeline tracer (obs/trace.h), or nullptr when the environment
  // does not trace (simulator, scripted tests). Protocols cache the pointer
  // at construction and stamp pipeline stages through it; every stamp site
  // must tolerate nullptr, so untraced environments stay zero-cost.
  [[nodiscard]] virtual obs::CommitTracer* tracer() { return nullptr; }
};

// A replication protocol instance at one replica: an event-driven reactor.
// All entry points run in the replica's single execution context.
class ReplicaProtocol {
 public:
  virtual ~ReplicaProtocol() = default;

  // Called once before any message; protocols start periodic timers here.
  virtual void start() {}

  // A local client's <REQUEST cmd>.
  virtual void submit(Command cmd) = 0;

  // A local client's read-only command. Protocols with a stability-based
  // local read path (Clock-RSM) serve it at this replica via
  // ProtocolEnv::deliver_read once it is safe; the default falls back to the
  // replicated log, so reads stay linearizable everywhere at full commit
  // cost.
  virtual void submit_read(Command cmd) { submit(std::move(cmd)); }

  // True iff submit_read() bypasses the log (answers via deliver_read).
  // Runtimes use this to decide which reply path a read will take.
  [[nodiscard]] virtual bool supports_local_reads() const { return false; }

  // A message from a peer replica.
  virtual void on_message(const Message& m) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  // Reports the protocol's cumulative counters into `sink`, one
  // (name, value) pair per counter (names end in "_total"). Called at
  // metrics-snapshot time on the protocol's execution thread. Default:
  // nothing to report.
  virtual void fill_metrics(const obs::MetricSink& sink) const { (void)sink; }
};

}  // namespace crsm
