// Linearizability checking for replicated command histories (Section II-B,
// Claim 5).
//
// The protocols in this repository establish a single total execution order
// (verified separately by the agreement tests). Given that order, an
// execution is linearizable iff the order respects real time: whenever
// operation `a` completed (its client got the reply) before operation `b`
// was invoked, `a` must precede `b` in the total order. This checker
// verifies exactly that condition over recorded operation histories, in
// O(n log n).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace crsm {

// One client operation as observed at its origin replica.
struct OpRecord {
  ClientId client = 0;
  std::uint64_t seq = 0;
  Tick invoke_us = 0;    // when the client issued the command
  Tick response_us = 0;  // when the client received the reply
  std::uint64_t order_index = 0;  // position in the (agreed) total order
};

struct LinearizabilityResult {
  bool ok = true;
  std::string violation;  // human-readable description of the first failure

  explicit operator bool() const { return ok; }
};

// Checks that the total order respects real time:
//   response(a) < invoke(b)  =>  order_index(a) < order_index(b).
// Also validates basic sanity: response >= invoke for every op and
// order indexes are unique.
[[nodiscard]] LinearizabilityResult check_real_time_order(std::vector<OpRecord> ops);

}  // namespace crsm
