#include "rsm/history.h"

#include <algorithm>
#include <utility>

namespace crsm {

namespace {

std::string op_name(ClientId client, std::uint64_t seq) {
  return "op(client=" + std::to_string(client) + ", seq=" + std::to_string(seq) +
         ")";
}

std::string read_name(ClientId client, std::uint64_t seq) {
  return "read(client=" + std::to_string(client) + ", seq=" +
         std::to_string(seq) + ")";
}

}  // namespace

void HistoryChecker::on_invoke(ClientId client, std::uint64_t seq, Tick now_us) {
  Op& op = ops_[{client, seq}];
  op.invoke_us = now_us;
}

void HistoryChecker::on_invoke_write(ClientId client, std::uint64_t seq,
                                     std::string key, std::string value,
                                     Tick now_us) {
  Op& op = ops_[{client, seq}];
  op.invoke_us = now_us;
  op.has_kv = true;
  op.key = std::move(key);
  op.value = std::move(value);
}

void HistoryChecker::on_invoke_read(ClientId client, std::uint64_t seq,
                                    std::string key, Tick now_us) {
  ReadOp& op = reads_[{client, seq}];
  op.invoke_us = now_us;
  op.key = std::move(key);
}

void HistoryChecker::on_response_read(ClientId client, std::uint64_t seq,
                                      std::string value, Tick now_us) {
  auto it = reads_.find({client, seq});
  if (it == reads_.end()) return;  // response for a read we never saw invoked
  it->second.responded = true;
  it->second.response_us = now_us;
  it->second.value = std::move(value);
}

void HistoryChecker::on_response(ClientId client, std::uint64_t seq, Tick now_us) {
  auto it = ops_.find({client, seq});
  if (it == ops_.end()) return;  // response for an op we never saw invoked
  it->second.responded = true;
  it->second.response_us = now_us;
}

void HistoryChecker::on_commit(ClientId client, std::uint64_t seq) {
  auto it = ops_.find({client, seq});
  if (it == ops_.end()) return;  // untracked command (probe, background)
  Op& op = it->second;
  if (!op.committed) {
    op.committed = true;
    op.order_index = next_order_index_;
  }
  ++op.commit_count;
  ++next_order_index_;
}

std::size_t HistoryChecker::completed_ops() const {
  std::size_t n = 0;
  for (const auto& [key, op] : ops_) n += op.responded ? 1 : 0;
  return n;
}

std::size_t HistoryChecker::completed_reads() const {
  std::size_t n = 0;
  for (const auto& [key, op] : reads_) n += op.responded ? 1 : 0;
  return n;
}

HistoryChecker::Report HistoryChecker::check(bool allow_duplicates) const {
  Report rep;
  rep.reads = reads_.size();
  rep.reads_completed = completed_reads();
  std::vector<OpRecord> completed;
  for (const auto& [key, op] : ops_) {
    ++rep.invoked;
    if (op.committed) ++rep.committed;
    if (op.commit_count > 1 && !allow_duplicates) {
      rep.ok = false;
      rep.violation = op_name(key.first, key.second) + " committed " +
                      std::to_string(op.commit_count) + " times";
      return rep;
    }
    if (!op.responded) continue;
    ++rep.completed;
    if (!op.committed) {
      // The client got a reply but the op is gone from the total order: a
      // durability violation (e.g. an acked command lost to a crash).
      rep.ok = false;
      rep.violation = op_name(key.first, key.second) +
                      " was acknowledged to its client but is missing from "
                      "the committed order";
      return rep;
    }
    completed.push_back(OpRecord{key.first, key.second, op.invoke_us,
                                 op.response_us, op.order_index});
  }
  const LinearizabilityResult lin = check_real_time_order(std::move(completed));
  if (!lin.ok) {
    rep.ok = false;
    rep.violation = "linearizability: " + lin.violation;
    return rep;
  }
  const std::string read_violation = check_reads();
  if (!read_violation.empty()) {
    rep.ok = false;
    rep.violation = "stale-read: " + read_violation;
  }
  return rep;
}

std::string HistoryChecker::check_reads() const {
  if (reads_.empty()) return {};

  // Committed writes with key/value info, per key, in commit order. The
  // rank of a write within its key's list is the key's version number; a
  // read's returned value identifies the version it observed (values are
  // unique per key by the harness contract in history.h).
  struct Version {
    std::uint64_t order = 0;
    Tick invoke_us = 0;
    Tick response_us = 0;
    bool responded = false;
    const std::string* value = nullptr;
  };
  std::map<std::string, std::vector<Version>> by_key;
  for (const auto& [id, op] : ops_) {
    if (!op.committed || !op.has_kv) continue;
    by_key[op.key].push_back(
        Version{op.order_index, op.invoke_us, op.response_us, op.responded,
                &op.value});
  }
  for (auto& [k, versions] : by_key) {
    std::sort(versions.begin(), versions.end(),
              [](const Version& a, const Version& b) { return a.order < b.order; });
  }

  // Per-read version assignment plus the two point constraints.
  struct ReadPoint {
    Tick invoke_us = 0;
    Tick response_us = 0;
    long long rank = -1;  // -1 = initial (absent) state
    ClientId client = 0;
    std::uint64_t seq = 0;
  };
  std::map<std::string, std::vector<ReadPoint>> reads_by_key;
  for (const auto& [id, r] : reads_) {
    if (!r.responded) continue;
    const auto vit = by_key.find(r.key);
    const std::vector<Version>* versions =
        vit == by_key.end() ? nullptr : &vit->second;

    // The observed version: the newest committed write producing the
    // returned value that was invoked before the read responded ("" = the
    // initial absent state, rank -1).
    long long rank = -1;
    if (!r.value.empty()) {
      bool value_known = false;
      if (versions) {
        for (std::size_t i = versions->size(); i-- > 0;) {
          const Version& v = (*versions)[i];
          if (*v.value != r.value) continue;
          value_known = true;
          if (v.invoke_us <= r.response_us) {
            rank = static_cast<long long>(i);
            break;
          }
        }
      }
      if (rank < 0) {
        return read_name(id.first, id.second) + " on key '" + r.key +
               "' returned value '" + r.value +
               (value_known
                    ? "' written only by an op invoked after the read completed"
                    : "' that no committed write produced");
      }
    }

    // No stale read: every write to the key whose response preceded the
    // read's invoke must be covered by the observed version.
    long long newest_completed = -1;
    if (versions) {
      for (std::size_t i = versions->size(); i-- > 0;) {
        const Version& v = (*versions)[i];
        if (v.responded && v.response_us < r.invoke_us) {
          newest_completed = static_cast<long long>(i);
          break;
        }
      }
    }
    if (rank < newest_completed) {
      return read_name(id.first, id.second) + " on key '" + r.key +
             "' observed version " + std::to_string(rank) +
             " but a write of version " + std::to_string(newest_completed) +
             " completed before the read was invoked";
    }

    reads_by_key[r.key].push_back(
        ReadPoint{r.invoke_us, r.response_us, rank, id.first, id.second});
  }

  // Read monotonicity: of two reads on a key ordered by real time, the
  // later one must not observe an older version (catches cross-client read
  // reorder even when no write completed in between). Sweep in invoke
  // order, folding in completed reads as their responses pass.
  for (auto& [k, points] : reads_by_key) {
    std::vector<const ReadPoint*> by_invoke;
    std::vector<const ReadPoint*> by_response;
    by_invoke.reserve(points.size());
    for (const ReadPoint& p : points) {
      by_invoke.push_back(&p);
      by_response.push_back(&p);
    }
    std::sort(by_invoke.begin(), by_invoke.end(),
              [](const ReadPoint* a, const ReadPoint* b) {
                return a->invoke_us < b->invoke_us;
              });
    std::sort(by_response.begin(), by_response.end(),
              [](const ReadPoint* a, const ReadPoint* b) {
                return a->response_us < b->response_us;
              });
    std::size_t next = 0;
    const ReadPoint* best = nullptr;
    for (const ReadPoint* r : by_invoke) {
      while (next < by_response.size() &&
             by_response[next]->response_us < r->invoke_us) {
        if (!best || by_response[next]->rank > best->rank) {
          best = by_response[next];
        }
        ++next;
      }
      if (best && r->rank < best->rank) {
        return "reads on key '" + k + "' went backwards in real time: " +
               read_name(r->client, r->seq) + " observed version " +
               std::to_string(r->rank) + " after " +
               read_name(best->client, best->seq) + " observed version " +
               std::to_string(best->rank);
      }
    }
  }
  return {};
}

}  // namespace crsm
