#include "rsm/history.h"

namespace crsm {

namespace {

std::string op_name(ClientId client, std::uint64_t seq) {
  return "op(client=" + std::to_string(client) + ", seq=" + std::to_string(seq) +
         ")";
}

}  // namespace

void HistoryChecker::on_invoke(ClientId client, std::uint64_t seq, Tick now_us) {
  Op& op = ops_[{client, seq}];
  op.invoke_us = now_us;
}

void HistoryChecker::on_response(ClientId client, std::uint64_t seq, Tick now_us) {
  auto it = ops_.find({client, seq});
  if (it == ops_.end()) return;  // response for an op we never saw invoked
  it->second.responded = true;
  it->second.response_us = now_us;
}

void HistoryChecker::on_commit(ClientId client, std::uint64_t seq) {
  auto it = ops_.find({client, seq});
  if (it == ops_.end()) return;  // untracked command (probe, background)
  Op& op = it->second;
  if (!op.committed) {
    op.committed = true;
    op.order_index = next_order_index_;
  }
  ++op.commit_count;
  ++next_order_index_;
}

std::size_t HistoryChecker::completed_ops() const {
  std::size_t n = 0;
  for (const auto& [key, op] : ops_) n += op.responded ? 1 : 0;
  return n;
}

HistoryChecker::Report HistoryChecker::check(bool allow_duplicates) const {
  Report rep;
  std::vector<OpRecord> completed;
  for (const auto& [key, op] : ops_) {
    ++rep.invoked;
    if (op.committed) ++rep.committed;
    if (op.commit_count > 1 && !allow_duplicates) {
      rep.ok = false;
      rep.violation = op_name(key.first, key.second) + " committed " +
                      std::to_string(op.commit_count) + " times";
      return rep;
    }
    if (!op.responded) continue;
    ++rep.completed;
    if (!op.committed) {
      // The client got a reply but the op is gone from the total order: a
      // durability violation (e.g. an acked command lost to a crash).
      rep.ok = false;
      rep.violation = op_name(key.first, key.second) +
                      " was acknowledged to its client but is missing from "
                      "the committed order";
      return rep;
    }
    completed.push_back(OpRecord{key.first, key.second, op.invoke_us,
                                 op.response_us, op.order_index});
  }
  const LinearizabilityResult lin = check_real_time_order(std::move(completed));
  if (!lin.ok) {
    rep.ok = false;
    rep.violation = "linearizability: " + lin.violation;
  }
  return rep;
}

}  // namespace crsm
