// Minimal raw-syscall io_uring wrapper — the vendored replacement for
// liburing (which the build environment does not ship). Covers exactly what
// UringEventLoop needs:
//
//   - ring setup with CQSIZE clamp, SQ/CQ mmaps (single-mmap feature
//     required; every >= 6.x kernel has it),
//   - SQE acquisition with automatic mid-pass flush when the SQ fills,
//   - one submit_and_wait (io_uring_enter with EXT_ARG timeout) per pass,
//   - CQE reaping into a caller-owned vector,
//   - a provided-buffer pool (classic IORING_OP_PROVIDE_BUFFERS; see
//     register_buf_ring for why not IORING_REGISTER_PBUF_RING) backing
//     multishot recv, with per-buffer re-provide recycling.
//
// Throws NetError from the constructor when the kernel or seccomp profile
// refuses any required piece; callers treat that as "backend unavailable"
// and fall back to epoll.
#pragma once

#include <linux/io_uring.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace crsm::net {

class Uring {
 public:
  struct Cqe {
    std::uint64_t user_data;
    std::int32_t res;
    std::uint32_t flags;
  };

  Uring(unsigned sq_entries, unsigned cq_entries);
  ~Uring();

  Uring(const Uring&) = delete;
  Uring& operator=(const Uring&) = delete;

  // Next free SQE, zeroed. Flushes the ring to the kernel first if it is
  // full (counted as an extra submit).
  [[nodiscard]] io_uring_sqe* get_sqe();

  // Sequence number of the SQE most recently returned by get_sqe().
  // Sequence numbers identify a slot in the unbounded submission stream
  // (not a ring index), so a flushed-and-reused slot never matches.
  [[nodiscard]] unsigned last_sqe_seq() const { return sqe_tail_ - 1; }

  // If the SQE with sequence `seq` has not yet been handed to the kernel,
  // rewrites it in place to an IORING_OP_NOP that keeps `user_data` (so its
  // CQE still retires the caller's op) and returns true. Returns false when
  // the SQE was already submitted. Used to defuse a queued SENDMSG whose fd
  // is about to be closed: the raw fd number can be reused by an
  // accept/connect before the next io_uring_enter, and the stale send would
  // then write onto the wrong connection.
  bool neutralize_if_unsubmitted(unsigned seq, std::uint64_t user_data);

  // Publishes pending SQEs to the kernel without waiting for completions.
  void submit();

  // The once-per-pass syscall: submits everything queued since the last
  // submit and waits up to `timeout_ms` for at least one completion.
  void submit_and_wait(int timeout_ms);

  // Appends every available CQE to `out`; returns the number appended.
  std::size_t reap(std::vector<Cqe>& out);

  // Cancels every in-flight op (IORING_ASYNC_CANCEL_ANY|ALL) and drains the
  // resulting CQEs. Run before teardown: in-flight multishot polls/recvs
  // hold kernel file references on their sockets, and the ring's own exit
  // work releases them asynchronously — late enough that a restarted node
  // binding the same port races EADDRINUSE against the old listener.
  void quiesce();

  // Registers `entries` buffers of `buf_size` bytes as provided-buffer
  // group `bgid` for IOSQE_BUFFER_SELECT ops, and synchronously verifies
  // the kernel accepted them (throws NetError otherwise — the caller falls
  // back to epoll).
  void register_buf_ring(unsigned entries, unsigned buf_size,
                         unsigned short bgid);
  // The bytes a CQE with IORING_CQE_F_BUFFER delivered into buffer `bid`.
  [[nodiscard]] std::string_view buffer(unsigned short bid,
                                        std::size_t len) const;
  // Returns `bid` to the kernel's pool (an SQE on the next submit).
  void recycle(unsigned short bid);

  // user_data of buffer-provide SQEs; their CQEs are dropped by dispatch.
  static constexpr std::uint64_t kProvideUserData = ~0ULL;
  // user_data of quiesce()'s cancel-all SQE. Distinct from the provide
  // sentinel: a pending buffer-recycle CQE must not be mistaken for the
  // cancel's completion, or quiesce returns with ops still in flight.
  static constexpr std::uint64_t kCancelUserData = ~0ULL - 1;

  [[nodiscard]] std::uint64_t sqe_submits() const {
    return sqe_submits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sqes_submitted() const {
    return sqes_submitted_.load(std::memory_order_relaxed);
  }

 private:
  void count_submit(unsigned to_submit);
  // Hands every pending SQE to the kernel, advancing sqe_submitted_ by the
  // kernel's actual consume count; loops on EINTR and on EBUSY (reaping
  // CQEs into stash_ to clear the CQ backpressure that causes it). Returns
  // the number of SQEs submitted.
  unsigned flush_sqes();
  // Drains the kernel CQ ring into `out` (head advanced); the stash-aware
  // public reap() wraps this.
  std::size_t reap_ring(std::vector<Cqe>& out);

  int fd_ = -1;
  io_uring_params params_{};

  // Ring mappings (SQ and CQ share one mapping; IORING_FEAT_SINGLE_MMAP).
  void* ring_ptr_ = nullptr;
  std::size_t ring_sz_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_sz_ = 0;

  // SQ kernel-shared fields.
  unsigned* sq_khead_ = nullptr;
  unsigned* sq_ktail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_array_ = nullptr;
  // CQ kernel-shared fields.
  unsigned* cq_khead_ = nullptr;
  unsigned* cq_ktail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  unsigned sqe_tail_ = 0;       // next SQE slot we will fill
  unsigned sqe_submitted_ = 0;  // SQEs already handed to the kernel

  // CQEs reaped early (to relieve EBUSY backpressure during submission);
  // delivered ahead of ring CQEs by the next reap().
  std::vector<Cqe> stash_;

  // Provided-buffer pool.
  char* buf_pool_ = nullptr;
  std::size_t buf_pool_sz_ = 0;
  unsigned buf_entries_ = 0;
  unsigned buf_size_ = 0;
  unsigned short buf_bgid_ = 0;

  // Read from stats() off-thread; written only by the loop thread.
  std::atomic<std::uint64_t> sqe_submits_{0};
  std::atomic<std::uint64_t> sqes_submitted_{0};
};

}  // namespace crsm::net
