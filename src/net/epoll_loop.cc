#include "net/epoll_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/socket.h"

namespace crsm::net {

namespace {
constexpr int kMaxEvents = 64;
}  // namespace

EpollEventLoop::EpollEventLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw NetError("epoll_create1 failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd();
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd(), &ev) < 0) {
    ::close(epfd_);
    epfd_ = -1;
    throw NetError("epoll_ctl(wake_fd) failed");
  }
}

EpollEventLoop::~EpollEventLoop() {
  if (epfd_ >= 0) ::close(epfd_);
}

void EpollEventLoop::add_fd(int fd, std::uint32_t interest, FdCallback cb) {
  epoll_event ev{};
  ev.events = interest;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw NetError(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
  fds_[fd] = std::move(cb);
}

void EpollEventLoop::mod_fd(int fd, std::uint32_t interest) {
  epoll_event ev{};
  ev.events = interest;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw NetError(std::string("epoll_ctl(MOD): ") + std::strerror(errno));
  }
}

void EpollEventLoop::del_fd(int fd) {
  // The fd may already be closed (EBADF) — deregistration must not throw on
  // teardown paths.
  (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(fd);
}

void EpollEventLoop::poll_io(int timeout_ms) {
  epoll_event events[kMaxEvents];
  const std::uint64_t wait_begin = observer() ? mono_us() : 0;
  const int n = ::epoll_wait(epfd_, events, kMaxEvents, timeout_ms);
  if (observer()) observer()->note_poll_wait(mono_us() - wait_begin);
  if (n < 0 && errno != EINTR) {
    throw NetError(std::string("epoll_wait: ") + std::strerror(errno));
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd()) {
      drain_wake_fd();
      continue;
    }
    // Look the callback up per event: an earlier callback in this batch
    // may have deregistered this fd (e.g. a peer close tearing down a
    // sibling connection).
    auto it = fds_.find(fd);
    if (it == fds_.end()) continue;
    // Copy: the callback may del_fd(fd) (invalidating `it`) or add fds.
    FdCallback cb = it->second;
    cb(events[i].events);
  }
}

}  // namespace crsm::net
