#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace crsm::net {

namespace {

[[noreturn]] void die(const std::string& op) {
  throw NetError(op + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("inet_pton: bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

void Socket::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) die("fcntl");
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  // Latency matters more than segment coalescing for consensus traffic; a
  // failure here (e.g. on a non-TCP test socket) is not fatal.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Socket tcp_listen(const std::string& host, std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!s.valid()) die("socket");
  const int one = 1;
  if (::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    die("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    die("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(s.fd(), backlog) < 0) die("listen");
  return s;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    die("getsockname");
  }
  return ntohs(addr.sin_port);
}

Socket tcp_connect(const std::string& host, std::uint16_t port,
                   bool* in_progress) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!s.valid()) die("socket");
  const sockaddr_in addr = make_addr(host, port);
  const int rc =
      ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    *in_progress = false;
  } else if (errno == EINPROGRESS) {
    *in_progress = true;
  } else {
    // Synchronous refusal (e.g. ECONNREFUSED on loopback): hand back an
    // invalid socket so the caller's retry path runs instead of throwing.
    s.reset();
    *in_progress = false;
  }
  return s;
}

int connect_result(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return errno;
  return err;
}

}  // namespace crsm::net
