#include "net/acceptor.h"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <utility>

namespace {
// How long to stop accepting after a persistent failure (EMFILE/ENFILE):
// long enough to let fds free up, short enough to recover promptly.
constexpr std::uint64_t kAcceptPauseUs = 100'000;
}  // namespace

namespace crsm::net {

Acceptor::Acceptor(EventLoop& loop, const std::string& host, std::uint16_t port)
    : loop_(loop), listen_sock_(tcp_listen(host, port)) {
  port_ = local_port(listen_sock_.fd());
}

Acceptor::~Acceptor() { stop(); }

void Acceptor::start(OnAccept on_accept) {
  on_accept_ = std::move(on_accept);
  loop_.add_fd(listen_sock_.fd(), EPOLLIN,
               [this](std::uint32_t) { handle_readable(); });
  started_ = true;
}

void Acceptor::stop() {
  if (!started_) return;
  started_ = false;
  if (!paused_) loop_.del_fd(listen_sock_.fd());
  paused_ = false;
}

void Acceptor::handle_readable() {
  for (;;) {
    const int fd = ::accept4(listen_sock_.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      on_accept_(Socket(fd));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return;  // queue drained (or one aborted handshake consumed)
    }
    // Persistent failure — typically EMFILE/ENFILE. The backlog keeps the
    // fd readable, so returning here would busy-spin the level-triggered
    // loop at 100% CPU; instead stop accepting briefly and retry.
    pause_and_resume();
    return;
  }
}

void Acceptor::pause_and_resume() {
  if (paused_) return;
  paused_ = true;
  loop_.del_fd(listen_sock_.fd());
  (void)loop_.schedule_after(kAcceptPauseUs, [this] {
    if (!started_ || !paused_) return;
    paused_ = false;
    loop_.add_fd(listen_sock_.fd(), EPOLLIN,
                 [this](std::uint32_t) { handle_readable(); });
  });
}

}  // namespace crsm::net
