// Length-prefixed frame streaming over one non-blocking TCP connection.
//
// Read side: raw socket bytes are appended to a FrameAssembler, which
// reassembles arbitrarily chunked input (1-byte reads, a varint header torn
// across reads, many frames coalesced into one read) back into whole
// frames; complete frames are decoded zero-copy with
// Message::decode_stream_view straight out of the assembler's buffer.
//
// Write side: frames are queued as shared encodings (the WireFrame
// shared_bytes() buffer), so a fan-out queues N references to one
// serialization, and flushed with writev — one syscall covers every pending
// frame the kernel will take.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/message.h"
#include "common/wire_frame.h"
#include "net/event_loop.h"
#include "net/socket.h"

namespace crsm::net {

// Reassembles a byte stream into complete length-prefixed frames. Owns a
// single contiguous buffer; complete_prefix() exposes the longest run of
// whole frames as a view so decoding can stay zero-copy, and consume()
// drops decoded bytes while keeping any partial tail for the next read.
class FrameAssembler {
 public:
  void append(std::string_view bytes) { buf_.append(bytes); }

  // View over every complete frame currently buffered (possibly several,
  // possibly none). Valid until the next append()/consume(). Throws
  // CodecError on a malformed frame header — the caller should drop the
  // connection.
  [[nodiscard]] std::string_view complete_prefix() const {
    std::size_t end = 0;
    for (;;) {
      const std::size_t n = crsm::frame_size(std::string_view(buf_).substr(end));
      if (n == 0) break;
      end += n;
    }
    return std::string_view(buf_).substr(0, end);
  }

  // Drops the first `n` bytes (a decoded complete_prefix).
  void consume(std::size_t n) { buf_.erase(0, n); }

  // Raw buffered bytes (used for the fixed-size hello preamble, which is
  // not framed).
  [[nodiscard]] std::string_view data() const { return buf_; }

  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
};

// The 8-byte connection preamble both ends exchange before frames flow:
// a magic word plus the sender's identity (replica id, or kClientHello for
// a client driver). The acceptor learns who dialed; the dialer learns which
// replica answered.
inline constexpr std::uint32_t kHelloMagic = 0x4352534dU;  // "CRSM"
inline constexpr std::uint32_t kClientHello = 0xFFFFFFFFU;

// The preamble's one wire format, shared by FrameConn and SyncClient.
[[nodiscard]] std::string encode_hello(std::uint32_t id);
// Parses the first 8 bytes of `buf`; returns false on bad magic (the
// caller should drop the connection). `buf` must hold >= 8 bytes.
[[nodiscard]] bool parse_hello(std::string_view buf, std::uint32_t* id);

class FrameConn {
 public:
  using MessageHandler = std::function<void(const Message&)>;
  // `id` is the peer's hello identity (replica id or kClientHello).
  using HelloHandler = std::function<void(std::uint32_t id)>;
  // Fired once, on EOF, I/O error or protocol error; the connection is
  // already deregistered when it runs. The owner should destroy the conn.
  using CloseHandler = std::function<void()>;

  // Takes ownership of a connected non-blocking socket. All methods are
  // loop-thread only.
  FrameConn(EventLoop& loop, Socket sock);
  ~FrameConn();

  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  // Registers with the loop and sends our hello. Inbound frames before the
  // peer's hello arrives are buffered; `on_hello` fires first, then
  // `on_message` once per decoded frame.
  void start(std::uint32_t hello_id, HelloHandler on_hello,
             MessageHandler on_message, CloseHandler on_close);

  // Queues one encoded frame and tries to write immediately. The shared
  // buffer keeps fan-out zero-copy: every conn queues the same encoding.
  void send(std::shared_ptr<const std::string> frame);

  // Attempts to drain the send queue right now (writev until done or
  // EAGAIN). Returns false if the connection died.
  bool flush();

  [[nodiscard]] std::size_t pending_bytes() const { return pending_bytes_; }
  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] int fd() const { return sock_.fd(); }

  // Unsent frames (our hello preamble excluded), for requeueing onto a
  // replacement connection after a reconnect. The partially written head
  // frame is included from offset 0: the receiver discards partial frames
  // on close, so a full resend cannot duplicate. Leaves the queue empty.
  [[nodiscard]] std::deque<std::shared_ptr<const std::string>> take_pending();

  void close();  // deregisters and closes; does NOT fire on_close

 private:
  struct Pending {
    std::shared_ptr<const std::string> buf;
    std::size_t offset = 0;
    bool is_hello = false;
  };

  void handle_events(std::uint32_t events);
  void handle_readable();
  bool write_some();  // one writev pass; false if the conn died
  void update_interest();
  void fail();  // close + fire on_close

  EventLoop& loop_;
  Socket sock_;
  FrameAssembler assembler_;
  std::deque<Pending> out_;
  std::size_t pending_bytes_ = 0;
  bool want_write_ = false;
  bool hello_received_ = false;
  bool closed_ = false;

  HelloHandler on_hello_;
  MessageHandler on_message_;
  CloseHandler on_close_;
};

}  // namespace crsm::net
