// Length-prefixed frame streaming over one non-blocking TCP connection.
//
// Read side: raw socket bytes are appended to a FrameAssembler, which
// reassembles arbitrarily chunked input (1-byte reads, a varint header torn
// across reads, many frames coalesced into one read) back into whole
// frames; complete frames are decoded zero-copy with
// Message::decode_stream_view straight out of the assembler's buffer. On
// the uring backend bytes arrive through a multishot recv stream (no read()
// syscalls); on epoll they are read() off EPOLLIN readiness.
//
// Write side: frames are queued as shared encodings (the WireFrame
// shared_bytes() buffer), so a fan-out queues N references to one
// serialization. In immediate mode every send() flushes; in coalescing
// mode (set_coalescing) frames accumulate until the owner flushes at the
// end of the event-loop pass, so one writev — or one SENDMSG SQE — covers
// every frame queued to this peer during the pass.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/message.h"
#include "common/wire_frame.h"
#include "net/event_loop.h"
#include "net/socket.h"

namespace crsm::net {

// Reassembles a byte stream into complete length-prefixed frames. Owns a
// single contiguous buffer; complete_prefix() exposes the longest run of
// whole frames as a view so decoding can stay zero-copy, and consume()
// drops decoded bytes while keeping any partial tail for the next read.
class FrameAssembler {
 public:
  void append(std::string_view bytes) { buf_.append(bytes); }

  // View over every complete frame currently buffered (possibly several,
  // possibly none). Valid until the next append()/consume(). Throws
  // CodecError on a malformed frame header — the caller should drop the
  // connection.
  [[nodiscard]] std::string_view complete_prefix() const {
    std::size_t end = 0;
    for (;;) {
      const std::size_t n = crsm::frame_size(std::string_view(buf_).substr(end));
      if (n == 0) break;
      end += n;
    }
    return std::string_view(buf_).substr(0, end);
  }

  // Drops the first `n` bytes (a decoded complete_prefix).
  void consume(std::size_t n) { buf_.erase(0, n); }

  // Raw buffered bytes (used for the fixed-size hello preamble, which is
  // not framed).
  [[nodiscard]] std::string_view data() const { return buf_; }

  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
};

// The 8-byte connection preamble both ends exchange before frames flow:
// a magic word plus the sender's identity (replica id, or kClientHello for
// a client driver). The acceptor learns who dialed; the dialer learns which
// replica answered.
inline constexpr std::uint32_t kHelloMagic = 0x4352534dU;  // "CRSM"
inline constexpr std::uint32_t kClientHello = 0xFFFFFFFFU;

// The preamble's one wire format, shared by FrameConn and SyncClient.
[[nodiscard]] std::string encode_hello(std::uint32_t id);
// Parses the first 8 bytes of `buf`; returns false on bad magic (the
// caller should drop the connection). `buf` must hold >= 8 bytes.
[[nodiscard]] bool parse_hello(std::string_view buf, std::uint32_t* id);

// Wire-level flush accounting, shared by every conn of one transport (the
// owner outlives its conns). One "flush" is one successful kernel handoff
// (sendmsg call or completed SQE); frames_flushed / flushes is the achieved
// coalescing factor.
struct WireMetrics {
  std::atomic<std::uint64_t> flushes{0};
  std::atomic<std::uint64_t> frames_flushed{0};
};

class FrameConn {
 public:
  using MessageHandler = std::function<void(const Message&)>;
  // `id` is the peer's hello identity (replica id or kClientHello).
  using HelloHandler = std::function<void(std::uint32_t id)>;
  // Fired once, on EOF, I/O error or protocol error; the connection is
  // already deregistered when it runs. The owner should destroy the conn.
  using CloseHandler = std::function<void()>;

  // Takes ownership of a connected non-blocking socket. All methods are
  // loop-thread only. `metrics`, when given, must outlive the conn.
  FrameConn(EventLoop& loop, Socket sock, WireMetrics* metrics = nullptr);
  ~FrameConn();

  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  // Registers with the loop and sends our hello. Inbound frames before the
  // peer's hello arrives are buffered; `on_hello` fires first, then
  // `on_message` once per decoded frame.
  void start(std::uint32_t hello_id, HelloHandler on_hello,
             MessageHandler on_message, CloseHandler on_close);

  // Coalescing mode: send() only queues, and the owner flushes at pass end
  // (or earlier, when pending_bytes crosses its coalescing budget). Off by
  // default: send() flushes immediately.
  void set_coalescing(bool on) { coalesce_ = on; }

  // Queues one encoded frame (and, unless coalescing, tries to write it
  // immediately). The shared buffer keeps fan-out zero-copy: every conn
  // queues the same encoding.
  void send(std::shared_ptr<const std::string> frame);

  // Commits everything queued and attempts to drain it right now —
  // writev/queued SQEs until done, EAGAIN, or one async send is in flight.
  // Returns false if the connection died.
  bool flush();

  [[nodiscard]] std::size_t pending_bytes() const { return pending_bytes_; }
  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] int fd() const { return sock_.fd(); }

  // Owner-side dedupe flag for per-pass dirty lists.
  [[nodiscard]] bool flush_queued() const { return flush_queued_; }
  void set_flush_queued(bool q) { flush_queued_ = q; }

  // Unsent frames (our hello preamble excluded), for requeueing onto a
  // replacement connection after a reconnect. A partially written head
  // frame is included from offset 0: the receiver discards partial frames
  // on close, so a full resend cannot duplicate. Frames covered by an
  // in-flight async send are NOT returned — they may still reach the wire,
  // so resending could duplicate; like a frame fully written to a socket
  // that then died, they are "sent, possibly lost" under the transport's
  // at-most-once-across-repairs contract. Leaves the queue empty.
  [[nodiscard]] std::deque<std::shared_ptr<const std::string>> take_pending();

  void close();  // deregisters and closes; does NOT fire on_close

 private:
  struct Pending {
    std::shared_ptr<const std::string> buf;
    std::size_t offset = 0;
    bool is_hello = false;
  };
  // Owns everything a queued async send points at (see
  // EventLoop::queue_send's keepalive contract).
  struct SendBatch {
    std::vector<iovec> iov;
    std::vector<std::shared_ptr<const std::string>> bufs;
  };

  // Writes committed entries until drained, EAGAIN, or an async send is in
  // flight. Never touches frames queued-but-not-yet-flushed in coalescing
  // mode: a send completion or EPOLLOUT must not leak them to the wire
  // early (send() alone puts nothing on the wire until flush()).
  bool drain_committed();
  void handle_events(std::uint32_t events);
  void handle_readable();
  // Decodes hello + buffered frames; `eof` fails the conn afterwards.
  void process_inbound(bool eof);
  bool write_some();  // one writev/SQE pass; false if the conn died
  // Shared sendmsg-result handling for the sync and async paths: advances
  // the queue past exactly `n` written bytes (n >= 0) or arms write
  // interest / fails on -errno. Returns false if the conn died.
  bool handle_write_result(ssize_t n);
  void on_send_complete(ssize_t n);
  // Pops exactly `n` written bytes off out_, keeping the unsent tail —
  // a torn writev leaves the head frame at the precise unsent offset.
  void advance_out(std::size_t n);
  void update_interest();
  void fail();  // close + fire on_close

  EventLoop& loop_;
  Socket sock_;
  WireMetrics* metrics_;
  FrameAssembler assembler_;
  std::deque<Pending> out_;
  std::size_t pending_bytes_ = 0;
  // Leading out_ entries eligible for the wire (committed by flush(), or by
  // send() in immediate mode). The coalescing gap out_.size() - committed_
  // is what the owner has queued since the last flush.
  std::size_t committed_ = 0;
  bool coalesce_ = false;
  bool flush_queued_ = false;
  bool recv_stream_ = false;
  bool want_write_ = false;
  bool hello_received_ = false;
  bool closed_ = false;
  std::uint64_t inflight_send_ = 0;   // queue_send id, 0 = none
  std::size_t inflight_entries_ = 0;  // out_ entries the in-flight iov covers

  HelloHandler on_hello_;
  MessageHandler on_message_;
  CloseHandler on_close_;
};

}  // namespace crsm::net
