#include "net/sync_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/wire_frame.h"

namespace crsm::net {

SyncClient::SyncClient(const std::string& host, std::uint16_t port) {
  sock_ = Socket(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock_.valid()) throw NetError("socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad IPv4 address '" + host + "'");
  }
  if (::connect(sock_.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    throw NetError("connect " + host + ":" + std::to_string(port) + ": " +
                   std::strerror(errno));
  }
  set_tcp_nodelay(sock_.fd());

  write_all(encode_hello(kClientHello));

  while (assembler_.buffered() < 8) read_into_assembler(5000);
  std::uint32_t sid;
  if (!parse_hello(assembler_.data(), &sid)) throw NetError("bad server hello");
  assembler_.consume(8);
  server_id_ = sid;
}

void SyncClient::send_request(const Command& cmd) {
  Message m;
  m.type = MsgType::kClientRequest;
  m.cmd = cmd;
  write_all(m.encode());
}

void SyncClient::send_read(const Command& cmd) {
  Message m;
  m.type = MsgType::kClientRead;
  m.cmd = cmd;
  write_all(m.encode());
}

Message SyncClient::read_typed(MsgType want, int timeout_ms) {
  for (;;) {
    const std::string_view frames = assembler_.complete_prefix();
    if (!frames.empty()) {
      std::size_t pos = 0;
      const Message m = Message::decode_stream(frames, &pos);
      assembler_.consume(pos);
      if (m.type == want) return m;
      // A redirect must never be skipped: silently dropping it would turn a
      // mis-routed command into a reply timeout with no diagnosis.
      if (m.type == MsgType::kClientRedirect) return m;
      continue;  // ignore anything else
    }
    read_into_assembler(timeout_ms);
  }
}

Message SyncClient::read_reply(int timeout_ms) {
  return read_typed(MsgType::kClientReply, timeout_ms);
}

Message SyncClient::read_read_reply(int timeout_ms) {
  return read_typed(MsgType::kClientReadReply, timeout_ms);
}

std::string SyncClient::call(const Command& cmd, int timeout_ms) {
  send_request(cmd);
  for (;;) {
    const Message reply = read_reply(timeout_ms);
    if (reply.cmd.client != cmd.client || reply.cmd.seq != cmd.seq) {
      continue;  // stale reply from an earlier (timed out) request
    }
    if (reply.type == MsgType::kClientRedirect) {
      throw WrongGroupError(static_cast<std::uint32_t>(reply.a));
    }
    return reply.blob.str();
  }
}

std::string SyncClient::read_call(const Command& cmd, int timeout_ms) {
  send_read(cmd);
  for (;;) {
    const Message reply = read_read_reply(timeout_ms);
    if (reply.cmd.client != cmd.client || reply.cmd.seq != cmd.seq) continue;
    if (reply.type == MsgType::kClientRedirect) {
      throw WrongGroupError(static_cast<std::uint32_t>(reply.a));
    }
    return reply.blob.str();
  }
}

void SyncClient::write_all(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a server killed mid-conversation must surface EPIPE as
    // a NetError, not SIGPIPE the client process.
    const ssize_t n = ::send(sock_.fd(), bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NetError(std::string("write: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void SyncClient::read_into_assembler(int timeout_ms) {
  if (timeout_ms >= 0) {
    pollfd p{sock_.fd(), POLLIN, 0};
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc == 0) throw NetError("read timeout");
    if (rc < 0) throw NetError(std::string("poll: ") + std::strerror(errno));
  }
  char chunk[16 * 1024];
  const ssize_t n = ::read(sock_.fd(), chunk, sizeof(chunk));
  if (n == 0) throw NetError("server closed connection");
  if (n < 0) {
    if (errno == EINTR) return;
    throw NetError(std::string("read: ") + std::strerror(errno));
  }
  assembler_.append(std::string_view(chunk, static_cast<std::size_t>(n)));
}

}  // namespace crsm::net
