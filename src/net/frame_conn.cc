#include "net/frame_conn.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/codec.h"

namespace crsm::net {

namespace {
constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kMaxIov = 16;
}  // namespace

std::string encode_hello(std::uint32_t id) {
  std::string h(8, '\0');
  std::memcpy(h.data(), &kHelloMagic, 4);
  std::memcpy(h.data() + 4, &id, 4);
  return h;
}

bool parse_hello(std::string_view buf, std::uint32_t* id) {
  std::uint32_t magic;
  std::memcpy(&magic, buf.data(), 4);
  std::memcpy(id, buf.data() + 4, 4);
  return magic == kHelloMagic;
}

FrameConn::FrameConn(EventLoop& loop, Socket sock)
    : loop_(loop), sock_(std::move(sock)) {
  set_tcp_nodelay(sock_.fd());
}

FrameConn::~FrameConn() { close(); }

void FrameConn::start(std::uint32_t hello_id, HelloHandler on_hello,
                      MessageHandler on_message, CloseHandler on_close) {
  on_hello_ = std::move(on_hello);
  on_message_ = std::move(on_message);
  on_close_ = std::move(on_close);
  loop_.add_fd(sock_.fd(), EPOLLIN,
               [this](std::uint32_t events) { handle_events(events); });
  pending_bytes_ += 8;
  out_.push_back(Pending{
      std::make_shared<const std::string>(encode_hello(hello_id)), 0,
      /*is_hello=*/true});
  (void)flush();
}

void FrameConn::send(std::shared_ptr<const std::string> frame) {
  if (closed_ || frame->empty()) return;
  pending_bytes_ += frame->size();
  out_.push_back(Pending{std::move(frame), 0, /*is_hello=*/false});
  (void)flush();
}

bool FrameConn::flush() {
  if (closed_) return false;
  while (!out_.empty()) {
    if (!write_some()) return false;
    if (want_write_) break;  // kernel buffer full; EPOLLOUT armed
  }
  return true;
}

bool FrameConn::write_some() {
  iovec iov[kMaxIov];
  int niov = 0;
  for (const Pending& p : out_) {
    if (niov == kMaxIov) break;
    iov[niov].iov_base =
        const_cast<char*>(p.buf->data() + p.offset);
    iov[niov].iov_len = p.buf->size() - p.offset;
    ++niov;
  }
  if (niov == 0) return true;
  // sendmsg + MSG_NOSIGNAL rather than writev: a peer that died (or was
  // kill -9'd) can reset the connection between our readiness check and
  // this write, and a raw writev would then raise SIGPIPE and kill the
  // whole process instead of surfacing EPIPE to the close path below.
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<std::size_t>(niov);
  const ssize_t n = ::sendmsg(sock_.fd(), &msg, MSG_NOSIGNAL);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      if (!want_write_) {
        want_write_ = true;
        update_interest();
      }
      return true;
    }
    fail();
    return false;
  }
  std::size_t left = static_cast<std::size_t>(n);
  pending_bytes_ -= left;
  while (left > 0) {
    Pending& p = out_.front();
    const std::size_t rest = p.buf->size() - p.offset;
    if (left < rest) {
      p.offset += left;
      left = 0;
    } else {
      left -= rest;
      out_.pop_front();
    }
  }
  if (out_.empty() && want_write_) {
    want_write_ = false;
    update_interest();
  }
  return true;
}

void FrameConn::update_interest() {
  loop_.mod_fd(sock_.fd(), EPOLLIN | (want_write_ ? EPOLLOUT : 0));
}

void FrameConn::handle_events(std::uint32_t events) {
  if (closed_) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    fail();
    return;
  }
  if (events & EPOLLOUT) {
    if (!flush()) return;
  }
  if (events & EPOLLIN) handle_readable();
}

void FrameConn::handle_readable() {
  char chunk[kReadChunk];
  bool eof = false;
  for (;;) {
    const ssize_t n = ::read(sock_.fd(), chunk, sizeof(chunk));
    if (n > 0) {
      assembler_.append(std::string_view(chunk, static_cast<std::size_t>(n)));
      if (n < static_cast<ssize_t>(sizeof(chunk))) break;  // drained
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: deliver the complete frames already buffered (a
    // peer may send its last frames and close immediately), then fail.
    eof = true;
    break;
  }

  if (!hello_received_) {
    if (assembler_.buffered() < 8) {
      if (eof) fail();
      return;
    }
    std::uint32_t id;
    if (!parse_hello(assembler_.data(), &id)) {
      fail();
      return;
    }
    assembler_.consume(8);
    hello_received_ = true;
    if (on_hello_) on_hello_(id);
    if (closed_) return;
  }

  // Decode every complete frame zero-copy out of the assembler's buffer.
  // Handlers must copy anything they retain (Bytes copy-on-retain) and must
  // not destroy the connection from inside the callback (defer via
  // CloseHandler or EventLoop::post).
  try {
    const std::string_view frames = assembler_.complete_prefix();
    std::size_t pos = 0;
    while (pos < frames.size() && !closed_) {
      const Message m = Message::decode_stream_view(frames, &pos);
      if (on_message_) on_message_(m);
    }
    assembler_.consume(pos);
  } catch (const CodecError&) {
    fail();  // corrupt stream: drop the connection
    return;
  }
  if (eof) fail();
}

std::deque<std::shared_ptr<const std::string>> FrameConn::take_pending() {
  std::deque<std::shared_ptr<const std::string>> frames;
  for (Pending& p : out_) {
    if (!p.is_hello) frames.push_back(std::move(p.buf));
  }
  out_.clear();
  pending_bytes_ = 0;
  return frames;
}

void FrameConn::close() {
  if (closed_) return;
  closed_ = true;
  if (sock_.valid()) {
    loop_.del_fd(sock_.fd());
    sock_.reset();
  }
}

void FrameConn::fail() {
  if (closed_) return;
  close();
  if (on_close_) on_close_();
}

}  // namespace crsm::net
