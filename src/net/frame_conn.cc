#include "net/frame_conn.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/codec.h"

namespace crsm::net {

namespace {
constexpr std::size_t kReadChunk = 64 * 1024;
// Frames gathered per kernel handoff. Coalescing batches whole passes into
// one writev, so give it room well past the old per-send fan-out.
constexpr std::size_t kMaxIov = 64;
}  // namespace

std::string encode_hello(std::uint32_t id) {
  std::string h(8, '\0');
  std::memcpy(h.data(), &kHelloMagic, 4);
  std::memcpy(h.data() + 4, &id, 4);
  return h;
}

bool parse_hello(std::string_view buf, std::uint32_t* id) {
  std::uint32_t magic;
  std::memcpy(&magic, buf.data(), 4);
  std::memcpy(id, buf.data() + 4, 4);
  return magic == kHelloMagic;
}

FrameConn::FrameConn(EventLoop& loop, Socket sock, WireMetrics* metrics)
    : loop_(loop), sock_(std::move(sock)), metrics_(metrics) {
  set_tcp_nodelay(sock_.fd());
}

FrameConn::~FrameConn() { close(); }

void FrameConn::start(std::uint32_t hello_id, HelloHandler on_hello,
                      MessageHandler on_message, CloseHandler on_close) {
  on_hello_ = std::move(on_hello);
  on_message_ = std::move(on_message);
  on_close_ = std::move(on_close);
  // Prefer the backend's zero-syscall inbound stream (uring multishot
  // recv); EPOLLIN + read() is the fallback. Either way a poll
  // registration stays armed for write interest and error reporting.
  recv_stream_ =
      loop_.add_recv_stream(sock_.fd(), [this](std::string_view data,
                                               bool eof) {
        if (closed_) return;
        if (!data.empty()) assembler_.append(data);
        process_inbound(eof);
      });
  loop_.add_fd(sock_.fd(), recv_stream_ ? 0 : EPOLLIN,
               [this](std::uint32_t events) { handle_events(events); });
  pending_bytes_ += 8;
  out_.push_back(Pending{
      std::make_shared<const std::string>(encode_hello(hello_id)), 0,
      /*is_hello=*/true});
  (void)flush();
}

void FrameConn::send(std::shared_ptr<const std::string> frame) {
  if (closed_ || frame->empty()) return;
  pending_bytes_ += frame->size();
  out_.push_back(Pending{std::move(frame), 0, /*is_hello=*/false});
  if (!coalesce_) (void)flush();
}

bool FrameConn::flush() {
  if (closed_) return false;
  committed_ = out_.size();
  return drain_committed();
}

bool FrameConn::drain_committed() {
  while (committed_ > 0) {
    if (!write_some()) return false;
    // Kernel buffer full (EPOLLOUT armed) or an async send is in flight
    // (its completion continues the drain).
    if (want_write_ || inflight_send_ != 0) break;
  }
  return true;
}

bool FrameConn::write_some() {
  if (inflight_send_ != 0) return true;
  std::size_t nent = committed_;
  if (nent > kMaxIov) nent = kMaxIov;
  if (nent == 0) return true;

  if (loop_.supports_send_queue()) {
    // Async path: one SENDMSG SQE, submitted with everything else in the
    // next pass's single io_uring_enter. The batch keeps the iov array and
    // frame buffers alive for the kernel even across a teardown.
    auto batch = std::make_shared<SendBatch>();
    batch->iov.reserve(nent);
    batch->bufs.reserve(nent);
    for (const Pending& p : out_) {
      if (batch->iov.size() == nent) break;
      batch->iov.push_back(
          iovec{const_cast<char*>(p.buf->data() + p.offset),
                p.buf->size() - p.offset});
      batch->bufs.push_back(p.buf);
    }
    const iovec* iov = batch->iov.data();
    const std::uint64_t id = loop_.queue_send(
        sock_.fd(), iov, static_cast<int>(nent), batch,
        [this](ssize_t n) { on_send_complete(n); });
    if (id != 0) {
      inflight_send_ = id;
      inflight_entries_ = nent;
      return true;
    }
  }

  iovec iov[kMaxIov];
  int niov = 0;
  for (const Pending& p : out_) {
    if (static_cast<std::size_t>(niov) == nent) break;
    iov[niov].iov_base = const_cast<char*>(p.buf->data() + p.offset);
    iov[niov].iov_len = p.buf->size() - p.offset;
    ++niov;
  }
  // sendmsg + MSG_NOSIGNAL rather than writev: a peer that died (or was
  // kill -9'd) can reset the connection between our readiness check and
  // this write, and a raw writev would then raise SIGPIPE and kill the
  // whole process instead of surfacing EPIPE to the close path below.
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<std::size_t>(niov);
  const ssize_t n = ::sendmsg(sock_.fd(), &msg, MSG_NOSIGNAL);
  return handle_write_result(n < 0 ? -errno : n);
}

bool FrameConn::handle_write_result(ssize_t n) {
  if (n >= 0) {
    if (n > 0) {
      if (metrics_) {
        metrics_->flushes.fetch_add(1, std::memory_order_relaxed);
      }
      advance_out(static_cast<std::size_t>(n));
    }
    if (committed_ == 0 && want_write_) {
      want_write_ = false;
      update_interest();
    }
    return true;
  }
  if (n == -EAGAIN || n == -EWOULDBLOCK || n == -EINTR) {
    if (!want_write_) {
      want_write_ = true;
      update_interest();
    }
    return true;
  }
  fail();
  return false;
}

void FrameConn::on_send_complete(ssize_t n) {
  inflight_send_ = 0;
  inflight_entries_ = 0;
  if (closed_) return;
  if (!handle_write_result(n)) return;
  // A partial write (or committed frames beyond the iov cap) left bytes
  // owed to the wire: keep draining unless the socket just said EAGAIN.
  // Frames queued coalescing while this send was in flight stay queued
  // until their own flush().
  if (committed_ > 0 && !want_write_) (void)drain_committed();
}

void FrameConn::advance_out(std::size_t n) {
  pending_bytes_ -= n;
  std::size_t left = n;
  while (left > 0) {
    Pending& p = out_.front();
    const std::size_t rest = p.buf->size() - p.offset;
    if (left < rest) {
      // Torn write: keep the head frame, advanced to the exact unsent
      // tail — the next writev resumes mid-frame, never resending bytes.
      p.offset += left;
      left = 0;
    } else {
      left -= rest;
      if (metrics_ && !p.is_hello) {
        metrics_->frames_flushed.fetch_add(1, std::memory_order_relaxed);
      }
      out_.pop_front();
      if (committed_ > 0) --committed_;  // written entries were committed
    }
  }
}

void FrameConn::update_interest() {
  const std::uint32_t base = recv_stream_ ? 0 : EPOLLIN;
  loop_.mod_fd(sock_.fd(), base | (want_write_ ? EPOLLOUT : 0));
}

void FrameConn::handle_events(std::uint32_t events) {
  if (closed_) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    fail();
    return;
  }
  if (events & EPOLLOUT) {
    if (!drain_committed()) return;
  }
  if ((events & EPOLLIN) && !recv_stream_) handle_readable();
}

void FrameConn::handle_readable() {
  char chunk[kReadChunk];
  bool eof = false;
  for (;;) {
    const ssize_t n = ::read(sock_.fd(), chunk, sizeof(chunk));
    if (n > 0) {
      assembler_.append(std::string_view(chunk, static_cast<std::size_t>(n)));
      if (n < static_cast<ssize_t>(sizeof(chunk))) break;  // drained
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: deliver the complete frames already buffered (a
    // peer may send its last frames and close immediately), then fail.
    eof = true;
    break;
  }
  process_inbound(eof);
}

void FrameConn::process_inbound(bool eof) {
  if (!hello_received_) {
    if (assembler_.buffered() < 8) {
      if (eof) fail();
      return;
    }
    std::uint32_t id;
    if (!parse_hello(assembler_.data(), &id)) {
      fail();
      return;
    }
    assembler_.consume(8);
    hello_received_ = true;
    if (on_hello_) on_hello_(id);
    if (closed_) return;
  }

  // Decode every complete frame zero-copy out of the assembler's buffer.
  // Handlers must copy anything they retain (Bytes copy-on-retain) and must
  // not destroy the connection from inside the callback (defer via
  // CloseHandler or EventLoop::post).
  try {
    const std::string_view frames = assembler_.complete_prefix();
    std::size_t pos = 0;
    while (pos < frames.size() && !closed_) {
      const Message m = Message::decode_stream_view(frames, &pos);
      if (on_message_) on_message_(m);
    }
    assembler_.consume(pos);
  } catch (const CodecError&) {
    fail();  // corrupt stream: drop the connection
    return;
  }
  if (eof) fail();
}

std::deque<std::shared_ptr<const std::string>> FrameConn::take_pending() {
  std::deque<std::shared_ptr<const std::string>> frames;
  std::size_t i = 0;
  for (Pending& p : out_) {
    // Entries covered by an in-flight async send are "handed to a socket
    // that then died": possibly delivered, so requeueing could duplicate.
    const bool covered = i++ < inflight_entries_;
    if (!covered && !p.is_hello) frames.push_back(std::move(p.buf));
  }
  out_.clear();
  pending_bytes_ = 0;
  committed_ = 0;
  return frames;
}

void FrameConn::close() {
  if (closed_) return;
  closed_ = true;
  if (sock_.valid()) {
    if (recv_stream_) loop_.del_recv_stream(sock_.fd());
    if (inflight_send_ != 0) loop_.discard_send(inflight_send_);
    loop_.del_fd(sock_.fd());
    sock_.reset();
  }
}

void FrameConn::fail() {
  if (closed_) return;
  close();
  if (on_close_) on_close_();
}

}  // namespace crsm::net
