// The io_uring EventLoop backend. Three op families, all identified by a
// monotonically increasing 64-bit user_data id (never a raw fd — ids make
// CQEs from a previous registration of a reused fd harmless):
//
//   kPoll — multishot IORING_OP_POLL_ADD carrying an fd readiness callback
//     (the generic add_fd API, also how EPOLLOUT-style write interest and
//     the wakeup eventfd are served). Rearmed if the kernel ends the
//     multishot sequence.
//   kRecv — multishot IORING_OP_RECV with IOSQE_BUFFER_SELECT into the
//     shared provided-buffer ring: inbound bytes arrive as CQEs with a
//     borrowed pool buffer, no read() syscalls at all.
//   kSend — one IORING_OP_SENDMSG SQE per queued gathered write, with
//     MSG_DONTWAIT so -EAGAIN surfaces to the caller exactly like a
//     synchronous sendmsg would.
//
// All SQEs queued during a pass — sends coalesced by the wire-flush hook,
// rearms, cancels — are handed to the kernel by the single
// io_uring_enter(GETEVENTS|EXT_ARG) at the top of the next pass, which also
// waits for and reaps completions: one syscall per pass in steady state.
#pragma once

#include <sys/socket.h>

#include "net/event_loop.h"
#include "net/uring.h"

namespace crsm::net {

class UringEventLoop final : public EventLoop {
 public:
  // Throws NetError when the kernel/seccomp profile cannot run this
  // backend (setup refused, buffer rings or multishot recv unsupported).
  UringEventLoop();
  ~UringEventLoop() override;

  [[nodiscard]] IoBackend backend() const override {
    return IoBackend::kUring;
  }

  void add_fd(int fd, std::uint32_t interest, FdCallback cb) override;
  void mod_fd(int fd, std::uint32_t interest) override;
  void del_fd(int fd) override;

  [[nodiscard]] bool supports_send_queue() const override { return true; }
  bool add_recv_stream(int fd, RecvCallback cb) override;
  void del_recv_stream(int fd) override;
  std::uint64_t queue_send(int fd, const iovec* iov, int iovcnt,
                           std::shared_ptr<void> keepalive,
                           SendCallback cb) override;
  void discard_send(std::uint64_t id) override;
  void pump_writes() override;

  [[nodiscard]] IoRingStats ring_stats() const override {
    return IoRingStats{ring_.sqe_submits(), ring_.sqes_submitted()};
  }

 protected:
  void poll_io(int timeout_ms) override;
  // Cancels and drains every in-flight op on the loop thread itself: its
  // task context is what the kernel uses for completion work, so file
  // references (listen ports included) are released before run() returns
  // instead of by the asynchronous ring-exit path after the thread dies.
  void on_run_exit() override { ring_.quiesce(); }

 private:
  struct Op {
    enum class Kind : std::uint8_t { kPoll, kRecv, kSend, kWake };
    Kind kind;
    // Deregistered; CQEs still in flight are dropped and the entry is
    // erased at the terminal CQE (no IORING_CQE_F_MORE).
    bool dead = false;
    int fd = -1;
    std::uint32_t mask = 0;  // caller's poll interest
    FdCallback on_events;
    RecvCallback on_data;
    SendCallback on_sent;
    // kSend: sequence of the SENDMSG SQE, so discard_send can neutralize
    // it if it has not yet been handed to the kernel.
    unsigned sqe_seq = 0;
    msghdr msg{};  // kSend: must outlive the SQE (map nodes are stable)
    // kSend: owns the iov array and data buffers until the terminal CQE,
    // even if the issuing connection is destroyed first.
    std::shared_ptr<void> keepalive;
  };

  void arm_poll(std::uint64_t id, const Op& op);
  void arm_recv(std::uint64_t id, const Op& op);
  void queue_cancel(std::uint64_t target);
  void deregister_poll(int fd);
  void dispatch_cqe(const Uring::Cqe& c, bool sends_only);
  void dispatch_poll_cqe(const Uring::Cqe& c, Op& op);
  void dispatch_recv_cqe(const Uring::Cqe& c, Op& op);

  std::unordered_map<std::uint64_t, Op> ops_;
  std::unordered_map<int, std::uint64_t> poll_ops_;  // fd -> live poll op
  std::unordered_map<int, std::uint64_t> recv_ops_;  // fd -> live recv op
  std::uint64_t next_op_ = 1;
  std::uint64_t wake_op_ = 0;

  std::vector<Uring::Cqe> cqes_;      // per-pass scratch
  std::vector<Uring::Cqe> deferred_;  // non-send CQEs reaped by pump_writes

  // Last member: destroyed first, which quiesces every in-flight kernel op
  // before the Op map (send keepalives included) is torn down.
  Uring ring_;
};

}  // namespace crsm::net
