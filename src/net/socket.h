// RAII socket ownership and the small set of BSD-socket helpers the net
// subsystem needs. Everything here is non-blocking-friendly: listeners and
// outbound connects are created O_NONBLOCK so they can be driven by the
// epoll EventLoop without ever stalling a replica's thread.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace crsm::net {

// Thrown for unrecoverable socket-layer failures (bind/listen/setsockopt);
// per-connection I/O errors are reported through callbacks instead, since a
// lost peer is an expected event, not an exception.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

// Move-only owner of a file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { reset(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

void set_nonblocking(int fd);
void set_tcp_nodelay(int fd);

// Binds and listens on host:port (IPv4), SO_REUSEADDR, non-blocking.
// `port` 0 picks an ephemeral port; read it back with local_port().
[[nodiscard]] Socket tcp_listen(const std::string& host, std::uint16_t port,
                                int backlog = 128);

[[nodiscard]] std::uint16_t local_port(int fd);

// Starts a non-blocking connect. On return the socket is either already
// connected (`*in_progress` false, loopback fast path) or mid-handshake
// (`*in_progress` true): wait for EPOLLOUT, then check connect_result().
[[nodiscard]] Socket tcp_connect(const std::string& host, std::uint16_t port,
                                 bool* in_progress);

// SO_ERROR after a non-blocking connect completes; 0 means connected.
[[nodiscard]] int connect_result(int fd);

}  // namespace crsm::net
