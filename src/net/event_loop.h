// Single-threaded event loop: fd readiness callbacks, monotonic timers and
// a thread-safe task queue, in the style of the netbench receivers (one io
// context per thread, eventfd wakeup).
//
// EventLoop is the abstract pass structure — poll for I/O, dispatch fd
// events, drain posted tasks, fire due timers, run the pass-end hook (the
// group-commit fsync point), then run the wire-flush hook (the per-pass
// outbound coalescing point). Two backends implement the I/O step:
//
//   EpollEventLoop — level-triggered epoll_wait, one syscall per socket
//     write (the portable default).
//   UringEventLoop — io_uring with multishot recv into a provided buffer
//     ring and batched sendmsg SQEs, one io_uring_enter per pass.
//
// Threading contract: every callback — fd events, recv streams, send
// completions, timers, posted tasks, hooks — runs on the thread that called
// run(). Only post(), wakeup() and stop() may be called from other threads.
// A NodeRuntime runs its whole replica (protocol reactor included) on this
// one thread, so protocol code keeps the single-threaded execution model it
// has under the simulator and the thread runtime.
#pragma once

#include <sys/types.h>
#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace crsm::net {

using TimerId = std::uint64_t;

// Which kernel interface drives socket readiness and I/O.
enum class IoBackend : std::uint8_t { kEpoll, kUring };

[[nodiscard]] const char* io_backend_name(IoBackend b);
// Parses "epoll"/"uring"; returns false on anything else.
[[nodiscard]] bool parse_io_backend(std::string_view s, IoBackend* out);

// Submission batching counters (all zero on the epoll backend). One
// "submit" is one io_uring_enter that handed SQEs to the kernel; the ratio
// sqes_submitted / sqe_submits is the achieved SQE batch size.
struct IoRingStats {
  std::uint64_t sqe_submits = 0;
  std::uint64_t sqes_submitted = 0;
};

// Pass-phase observer (obs::LoopProfiler implements this). run() stamps the
// phase boundaries of every pass; the backend additionally reports time it
// actually blocked inside the kernel wait, so an observer can split the
// poll phase into idle wait vs fd-dispatch work. All calls are made on the
// loop thread. Timestamps are EventLoop::mono_us().
class LoopObserver {
 public:
  virtual ~LoopObserver() = default;
  virtual void begin_pass(std::uint64_t now_us) = 0;
  virtual void poll_done(std::uint64_t now_us) = 0;   // poll_io returned
  virtual void tasks_done(std::uint64_t now_us) = 0;  // posted + timers done
  virtual void fsync_done(std::uint64_t now_us) = 0;  // pass-end hook done
  virtual void end_pass(std::uint64_t now_us) = 0;    // wire flush done
  // Time blocked in epoll_wait / io_uring_enter within the current pass.
  virtual void note_poll_wait(std::uint64_t wait_us) = 0;
};

class EventLoop {
 public:
  // `events` is the ready-mask (EPOLLIN/EPOLLOUT/EPOLLERR...; the uring
  // backend reports poll results with the same bit values).
  using FdCallback = std::function<void(std::uint32_t events)>;
  // Inbound bytes for a recv stream. `data` views a loop-owned buffer valid
  // only for the duration of the call; `eof` is terminal (stream gone).
  using RecvCallback = std::function<void(std::string_view data, bool eof)>;
  // Result of a queued send: bytes written, or -errno (as from sendmsg with
  // MSG_DONTWAIT, so -EAGAIN means "kernel buffer full", not an error).
  using SendCallback = std::function<void(ssize_t n)>;

  virtual ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] virtual IoBackend backend() const = 0;

  // Registers `fd` for level-triggered readiness callbacks. `interest` is
  // the epoll event mask (EPOLLIN | EPOLLOUT as needed; ERR/HUP are always
  // reported).
  virtual void add_fd(int fd, std::uint32_t interest, FdCallback cb) = 0;
  virtual void mod_fd(int fd, std::uint32_t interest) = 0;
  virtual void del_fd(int fd) = 0;

  // --- Optional zero-syscall-per-read/write fast paths. ------------------
  // Backends without them return false/0 and callers fall back to the
  // readiness + read()/sendmsg() path above.

  // Arms a persistent inbound byte stream on `fd` (uring: multishot recv
  // into the provided buffer ring). Returns false if unsupported — the
  // caller should read() off EPOLLIN readiness instead.
  virtual bool add_recv_stream(int /*fd*/, RecvCallback /*cb*/) {
    return false;
  }
  virtual void del_recv_stream(int /*fd*/) {}

  // True when queue_send below actually queues (saves callers building a
  // keepalive batch just to be told 0).
  [[nodiscard]] virtual bool supports_send_queue() const { return false; }

  // Queues one gathered send (uring: a SENDMSG SQE with MSG_DONTWAIT,
  // submitted in the next pass's single io_uring_enter). `keepalive` must
  // own the iov array and every buffer it points at; the loop holds it
  // until the kernel is done, so a caller torn down mid-send cannot leave
  // the SQE reading freed memory. Returns an id for discard_send(), or 0
  // if unsupported — the caller should sendmsg() synchronously.
  virtual std::uint64_t queue_send(int /*fd*/, const iovec* /*iov*/,
                                   int /*iovcnt*/,
                                   std::shared_ptr<void> /*keepalive*/,
                                   SendCallback /*cb*/) {
    return 0;
  }
  // Drops the callback of an in-flight queued send (the bytes may still hit
  // the wire). For connection teardown with a send outstanding.
  virtual void discard_send(std::uint64_t /*id*/) {}

  // Forces queued sends toward the kernel and dispatches any send
  // completions now, without waiting for the next pass. Loop-thread only;
  // used by backpressure spins that must make write progress mid-pass.
  virtual void pump_writes() {}

  // Thread-safe; zeros on backends without submission batching.
  [[nodiscard]] virtual IoRingStats ring_stats() const { return {}; }

  // One-shot timer; loop-thread only. Returns an id usable with
  // cancel_timer (cancellation is loop-thread only too).
  TimerId schedule_after(std::uint64_t delay_us, std::function<void()> fn);
  void cancel_timer(TimerId id);

  // Thread-safe: enqueues `fn` to run on the loop thread and wakes it.
  void post(std::function<void()> fn);

  // Runs `fn` on the loop thread once per iteration, after the pass's fd
  // events, posted tasks and due timers have all been dispatched and before
  // the loop blocks again. This is the natural group-commit point: work
  // accumulated across one pass (e.g. WAL appends) can be made durable with
  // a single fsync here. Set before run() (or from the loop thread).
  void set_pass_end_hook(std::function<void()> fn) {
    pass_end_hook_ = std::move(fn);
  }

  // Runs after the pass-end hook, last thing in every pass. This is the
  // wire coalescing point: frames queued during the pass — including any
  // released by the pass-end hook at the durability point — are flushed
  // here as one writev/SQE per peer. Ordering matters: running after the
  // fsync hook means a frame held until durable is never on the wire before
  // its WAL record is safe.
  void set_wire_flush_hook(std::function<void()> fn) {
    wire_flush_hook_ = std::move(fn);
  }

  // Installs (or clears, with nullptr) the pass-phase observer. Not owned;
  // must outlive the loop or be cleared first. Set before run() (or from
  // the loop thread).
  void set_observer(LoopObserver* obs) { observer_ = obs; }

  // Runs until stop(). The calling thread becomes the loop thread.
  void run();
  // Thread-safe; run() returns after finishing the current dispatch pass.
  // A stop() issued before run() latches: run() returns immediately.
  void stop();
  void wakeup();

  [[nodiscard]] bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

  // Monotonic microseconds, the loop's timer clock.
  [[nodiscard]] static std::uint64_t mono_us();

 protected:
  EventLoop();  // creates the wakeup eventfd; backends register it

  // One poll-and-dispatch step: block up to `timeout_ms` for I/O, then
  // invoke the ready callbacks (draining the wakeup eventfd itself).
  virtual void poll_io(int timeout_ms) = 0;

  // Called by run() on the loop thread just before it returns. Backends
  // whose kernel-side teardown must happen in the submitter task's context
  // (io_uring: cancel in-flight ops so their file references are released
  // synchronously, not by a deferred exit workqueue) override this.
  virtual void on_run_exit() {}

  [[nodiscard]] int wake_fd() const { return wake_fd_; }
  void drain_wake_fd();

  // For backends: the installed observer (nullptr when none). Backends wrap
  // their blocking kernel wait with mono_us() stamps and report the blocked
  // time via note_poll_wait — only when an observer is installed, so the
  // unobserved hot path pays no extra clock reads.
  [[nodiscard]] LoopObserver* observer() const { return observer_; }

  [[nodiscard]] int next_timeout_ms() const;

 private:
  struct Timer {
    std::uint64_t deadline_us;
    TimerId id;
    bool operator>(const Timer& o) const {
      return deadline_us != o.deadline_us ? deadline_us > o.deadline_us
                                          : id > o.id;
    }
  };

  void drain_posted();
  void fire_due_timers();

  int wake_fd_ = -1;  // eventfd

  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timer_heap_;
  std::unordered_map<TimerId, std::function<void()>> timer_fns_;  // erased = cancelled
  TimerId next_timer_ = 1;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
  std::function<void()> pass_end_hook_;
  std::function<void()> wire_flush_hook_;

  std::atomic<bool> stop_requested_{false};
  std::thread::id loop_thread_;
  LoopObserver* observer_ = nullptr;
};

// True if this kernel/seccomp profile supports everything UringEventLoop
// needs (io_uring_setup, provided buffer rings, multishot recv). Probed
// once and cached.
[[nodiscard]] bool uring_available();

// Test hook: makes uring_available() report false and UringEventLoop
// construction fail, to exercise the fallback path on capable kernels.
void force_uring_unavailable_for_test(bool unavailable);

// Builds the requested backend. If uring is requested but unavailable,
// logs a warning to stderr, sets *fell_back (when non-null) and returns an
// epoll loop — callers always get a working loop.
[[nodiscard]] std::unique_ptr<EventLoop> make_event_loop(
    IoBackend requested, bool* fell_back = nullptr);

}  // namespace crsm::net
