// Single-threaded epoll event loop: fd readiness callbacks, monotonic
// timers and a thread-safe task queue, in the style of the netbench
// epoll receivers (one io context per thread, eventfd wakeup).
//
// Threading contract: every callback — fd events, timers, posted tasks —
// runs on the thread that called run(). Only post(), wakeup() and stop()
// may be called from other threads. A NodeRuntime runs its whole replica
// (protocol reactor included) on this one thread, so protocol code keeps
// the single-threaded execution model it has under the simulator and the
// thread runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

namespace crsm::net {

using TimerId = std::uint64_t;

class EventLoop {
 public:
  // `events` is the ready-mask from epoll (EPOLLIN/EPOLLOUT/EPOLLERR...).
  using FdCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` for edge-less (level-triggered) readiness callbacks.
  // `interest` is the epoll event mask (EPOLLIN | EPOLLOUT as needed).
  void add_fd(int fd, std::uint32_t interest, FdCallback cb);
  void mod_fd(int fd, std::uint32_t interest);
  void del_fd(int fd);

  // One-shot timer; loop-thread only. Returns an id usable with
  // cancel_timer (cancellation is loop-thread only too).
  TimerId schedule_after(std::uint64_t delay_us, std::function<void()> fn);
  void cancel_timer(TimerId id);

  // Thread-safe: enqueues `fn` to run on the loop thread and wakes it.
  void post(std::function<void()> fn);

  // Runs `fn` on the loop thread once per iteration, after the pass's fd
  // events, posted tasks and due timers have all been dispatched and before
  // the loop blocks again. This is the natural group-commit point: work
  // accumulated across one pass (e.g. WAL appends) can be made durable with
  // a single fsync here. Set before run() (or from the loop thread).
  void set_pass_end_hook(std::function<void()> fn) {
    pass_end_hook_ = std::move(fn);
  }

  // Runs until stop(). The calling thread becomes the loop thread.
  void run();
  // Thread-safe; run() returns after finishing the current dispatch pass.
  // A stop() issued before run() latches: run() returns immediately.
  void stop();
  void wakeup();

  [[nodiscard]] bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

  // Monotonic microseconds, the loop's timer clock.
  [[nodiscard]] static std::uint64_t mono_us();

 private:
  struct Timer {
    std::uint64_t deadline_us;
    TimerId id;
    bool operator>(const Timer& o) const {
      return deadline_us != o.deadline_us ? deadline_us > o.deadline_us
                                          : id > o.id;
    }
  };

  void drain_posted();
  void fire_due_timers();
  [[nodiscard]] int next_timeout_ms() const;

  int epfd_ = -1;
  int wake_fd_ = -1;  // eventfd
  std::unordered_map<int, FdCallback> fds_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timer_heap_;
  std::unordered_map<TimerId, std::function<void()>> timer_fns_;  // erased = cancelled
  TimerId next_timer_ = 1;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
  std::function<void()> pass_end_hook_;

  std::atomic<bool> stop_requested_{false};
  std::thread::id loop_thread_;
};

}  // namespace crsm::net
