#include "net/event_loop.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "net/epoll_loop.h"
#include "net/socket.h"
#include "net/uring_loop.h"

namespace crsm::net {

const char* io_backend_name(IoBackend b) {
  switch (b) {
    case IoBackend::kEpoll:
      return "epoll";
    case IoBackend::kUring:
      return "uring";
  }
  return "?";
}

bool parse_io_backend(std::string_view s, IoBackend* out) {
  if (s == "epoll") {
    *out = IoBackend::kEpoll;
    return true;
  }
  if (s == "uring" || s == "io_uring") {
    *out = IoBackend::kUring;
    return true;
  }
  return false;
}

EventLoop::EventLoop() {
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw NetError("eventfd failed");
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

std::uint64_t EventLoop::mono_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TimerId EventLoop::schedule_after(std::uint64_t delay_us,
                                  std::function<void()> fn) {
  const TimerId id = next_timer_++;
  timer_heap_.push(Timer{mono_us() + delay_us, id});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel_timer(TimerId id) { timer_fns_.erase(id); }

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  wakeup();
}

void EventLoop::wakeup() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore short writes.
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_wake_fd() {
  std::uint64_t buf;
  (void)!::read(wake_fd_, &buf, sizeof(buf));
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wakeup();
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lk(posted_mu_);
    tasks.swap(posted_);
  }
  for (auto& t : tasks) t();
}

void EventLoop::fire_due_timers() {
  const std::uint64_t now = mono_us();
  while (!timer_heap_.empty() && timer_heap_.top().deadline_us <= now) {
    const TimerId id = timer_heap_.top().id;
    timer_heap_.pop();
    auto it = timer_fns_.find(id);
    if (it == timer_fns_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timer_heap_.empty()) return 100;  // idle heartbeat
  const std::uint64_t now = mono_us();
  const std::uint64_t dl = timer_heap_.top().deadline_us;
  if (dl <= now) return 0;
  // Round up so a timer never fires early, capped to keep stop() responsive.
  const std::uint64_t ms = (dl - now + 999) / 1000;
  return static_cast<int>(ms > 100 ? 100 : ms);
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  // stop() may legitimately arrive before run() does: a `stop_requested_`
  // latch (instead of a running flag set here) makes that race benign.
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (observer_ == nullptr) {
      poll_io(next_timeout_ms());
      drain_posted();
      fire_due_timers();
      if (pass_end_hook_) pass_end_hook_();
      if (wire_flush_hook_) wire_flush_hook_();
      continue;
    }
    observer_->begin_pass(mono_us());
    poll_io(next_timeout_ms());
    observer_->poll_done(mono_us());
    drain_posted();
    fire_due_timers();
    observer_->tasks_done(mono_us());
    if (pass_end_hook_) pass_end_hook_();
    observer_->fsync_done(mono_us());
    if (wire_flush_hook_) wire_flush_hook_();
    observer_->end_pass(mono_us());
  }
  // Run tasks posted between the final dispatch and stop(), so shutdown
  // work posted from other threads is not silently dropped.
  drain_posted();
  if (pass_end_hook_) pass_end_hook_();
  if (wire_flush_hook_) wire_flush_hook_();
  // Backend teardown that must run on the loop thread, while it still
  // exists as the kernel's submitter task (io_uring binds completion task
  // work — including file-reference puts — to that task; once it exits,
  // releases fall back to an asynchronous kernel workqueue and a restarted
  // node can race EADDRINUSE against its predecessor's listen port).
  on_run_exit();
}

namespace {
std::atomic<bool> g_force_uring_unavailable{false};
}  // namespace

void force_uring_unavailable_for_test(bool unavailable) {
  g_force_uring_unavailable.store(unavailable, std::memory_order_relaxed);
}

bool uring_forced_unavailable() {
  return g_force_uring_unavailable.load(std::memory_order_relaxed);
}

bool uring_available() {
  if (uring_forced_unavailable()) return false;
  // One real probe per process: a throwaway UringEventLoop exercises setup,
  // ring mmaps and buffer-ring registration — everything the backend needs.
  static const bool available = [] {
    try {
      UringEventLoop probe;
      return true;
    } catch (const NetError&) {
      return false;
    }
  }();
  return available;
}

std::unique_ptr<EventLoop> make_event_loop(IoBackend requested,
                                           bool* fell_back) {
  if (fell_back) *fell_back = false;
  if (requested == IoBackend::kUring) {
    try {
      if (uring_forced_unavailable()) {
        throw NetError("io_uring disabled (forced unavailable for test)");
      }
      return std::make_unique<UringEventLoop>();
    } catch (const NetError& e) {
      std::fprintf(stderr,
                   "[crsm] warning: io_uring backend unavailable (%s); "
                   "falling back to epoll\n",
                   e.what());
      if (fell_back) *fell_back = true;
    }
  }
  return std::make_unique<EpollEventLoop>();
}

}  // namespace crsm::net
