#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "net/socket.h"

namespace crsm::net {

namespace {
constexpr int kMaxEvents = 64;
}  // namespace

EventLoop::EventLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw NetError("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epfd_);
    throw NetError("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw NetError("epoll_ctl(wake_fd) failed");
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epfd_ >= 0) ::close(epfd_);
}

std::uint64_t EventLoop::mono_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void EventLoop::add_fd(int fd, std::uint32_t interest, FdCallback cb) {
  epoll_event ev{};
  ev.events = interest;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw NetError(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
  fds_[fd] = std::move(cb);
}

void EventLoop::mod_fd(int fd, std::uint32_t interest) {
  epoll_event ev{};
  ev.events = interest;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw NetError(std::string("epoll_ctl(MOD): ") + std::strerror(errno));
  }
}

void EventLoop::del_fd(int fd) {
  // The fd may already be closed (EBADF) — deregistration must not throw on
  // teardown paths.
  (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(fd);
}

TimerId EventLoop::schedule_after(std::uint64_t delay_us,
                                  std::function<void()> fn) {
  const TimerId id = next_timer_++;
  timer_heap_.push(Timer{mono_us() + delay_us, id});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel_timer(TimerId id) { timer_fns_.erase(id); }

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  wakeup();
}

void EventLoop::wakeup() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore short writes.
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wakeup();
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lk(posted_mu_);
    tasks.swap(posted_);
  }
  for (auto& t : tasks) t();
}

void EventLoop::fire_due_timers() {
  const std::uint64_t now = mono_us();
  while (!timer_heap_.empty() && timer_heap_.top().deadline_us <= now) {
    const TimerId id = timer_heap_.top().id;
    timer_heap_.pop();
    auto it = timer_fns_.find(id);
    if (it == timer_fns_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timer_heap_.empty()) return 100;  // idle heartbeat
  const std::uint64_t now = mono_us();
  const std::uint64_t dl = timer_heap_.top().deadline_us;
  if (dl <= now) return 0;
  // Round up so a timer never fires early, capped to keep stop() responsive.
  const std::uint64_t ms = (dl - now + 999) / 1000;
  return static_cast<int>(ms > 100 ? 100 : ms);
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  epoll_event events[kMaxEvents];
  // stop() may legitimately arrive before run() does: a `stop_requested_`
  // latch (instead of a running flag set here) makes that race benign.
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epfd_, events, kMaxEvents, next_timeout_ms());
    if (n < 0 && errno != EINTR) {
      throw NetError(std::string("epoll_wait: ") + std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t buf;
        (void)!::read(wake_fd_, &buf, sizeof(buf));
        continue;
      }
      // Look the callback up per event: an earlier callback in this batch
      // may have deregistered this fd (e.g. a peer close tearing down a
      // sibling connection).
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;
      // Copy: the callback may del_fd(fd) (invalidating `it`) or add fds.
      FdCallback cb = it->second;
      cb(events[i].events);
    }
    drain_posted();
    fire_due_timers();
    if (pass_end_hook_) pass_end_hook_();
  }
  // Run tasks posted between the final dispatch and stop(), so shutdown
  // work posted from other threads is not silently dropped.
  drain_posted();
  if (pass_end_hook_) pass_end_hook_();
}

}  // namespace crsm::net
