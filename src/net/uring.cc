#include "net/uring.h"

#include <linux/time_types.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "net/socket.h"

namespace crsm::net {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

int sys_io_uring_register(int fd, unsigned opcode, void* arg, unsigned nr) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg,
                                    nr));
}

[[noreturn]] void throw_errno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

unsigned load_acquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

void store_release(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

Uring::Uring(unsigned sq_entries, unsigned cq_entries) {
  params_.flags = IORING_SETUP_CLAMP | IORING_SETUP_CQSIZE;
  params_.cq_entries = cq_entries;
  fd_ = sys_io_uring_setup(sq_entries, &params_);
  if (fd_ < 0) throw_errno("io_uring_setup");

  // EXT_ARG (5.11) carries the per-pass wait timeout; SINGLE_MMAP (5.4)
  // keeps the mapping logic simple. Both predate every kernel with the
  // multishot-recv support the loop needs, so require rather than branch.
  if (!(params_.features & IORING_FEAT_SINGLE_MMAP) ||
      !(params_.features & IORING_FEAT_EXT_ARG)) {
    ::close(fd_);
    fd_ = -1;
    throw NetError("io_uring: kernel lacks SINGLE_MMAP/EXT_ARG features");
  }

  const std::size_t sq_sz =
      params_.sq_off.array + params_.sq_entries * sizeof(unsigned);
  const std::size_t cq_sz =
      params_.cq_off.cqes + params_.cq_entries * sizeof(io_uring_cqe);
  ring_sz_ = sq_sz > cq_sz ? sq_sz : cq_sz;
  ring_ptr_ = ::mmap(nullptr, ring_sz_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQ_RING);
  if (ring_ptr_ == MAP_FAILED) {
    ring_ptr_ = nullptr;
    ::close(fd_);
    fd_ = -1;
    throw_errno("io_uring mmap(rings)");
  }
  sqes_sz_ = params_.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    ::munmap(ring_ptr_, ring_sz_);
    ring_ptr_ = nullptr;
    ::close(fd_);
    fd_ = -1;
    throw_errno("io_uring mmap(sqes)");
  }

  auto* base = static_cast<char*>(ring_ptr_);
  sq_khead_ = reinterpret_cast<unsigned*>(base + params_.sq_off.head);
  sq_ktail_ = reinterpret_cast<unsigned*>(base + params_.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(base + params_.sq_off.ring_mask);
  sq_entries_ = params_.sq_entries;
  sq_array_ = reinterpret_cast<unsigned*>(base + params_.sq_off.array);
  cq_khead_ = reinterpret_cast<unsigned*>(base + params_.cq_off.head);
  cq_ktail_ = reinterpret_cast<unsigned*>(base + params_.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(base + params_.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(base + params_.cq_off.cqes);

  // SQE index i always lives at slot i; fill the indirection array once.
  for (unsigned i = 0; i < sq_entries_; ++i) sq_array_[i] = i;
}

Uring::~Uring() {
  // Provided buffers die with the ring fd; only the pool mapping is ours.
  if (buf_pool_) ::munmap(buf_pool_, buf_pool_sz_);
  if (sqes_) ::munmap(sqes_, sqes_sz_);
  if (ring_ptr_) ::munmap(ring_ptr_, ring_sz_);
  if (fd_ >= 0) ::close(fd_);
}

io_uring_sqe* Uring::get_sqe() {
  if (sqe_tail_ - load_acquire(sq_khead_) == sq_entries_) {
    submit();  // SQ full mid-pass: flush to make room
  }
  io_uring_sqe* sqe = &sqes_[sqe_tail_ & sq_mask_];
  std::memset(sqe, 0, sizeof(*sqe));
  ++sqe_tail_;
  return sqe;
}

void Uring::count_submit(unsigned to_submit) {
  sqe_submits_.fetch_add(1, std::memory_order_relaxed);
  sqes_submitted_.fetch_add(to_submit, std::memory_order_relaxed);
}

unsigned Uring::flush_sqes() {
  unsigned submitted = 0;
  while (sqe_submitted_ != sqe_tail_) {
    const unsigned to_submit = sqe_tail_ - sqe_submitted_;
    const int r = sys_io_uring_enter(fd_, to_submit, 0, 0, nullptr, 0);
    if (r >= 0) {
      // The return value is the number of SQEs the kernel actually
      // consumed — assuming full consumption on EBUSY would silently drop
      // ops (a lost SENDMSG wedges its connection forever) and let a later
      // full-ring flush overwrite the still-unconsumed slots.
      sqe_submitted_ += static_cast<unsigned>(r);
      submitted += static_cast<unsigned>(r);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EBUSY) {
      // CQ ring full (overflow list non-empty): the kernel refuses new
      // SQEs until completions are consumed. Reap into the stash — the
      // next reap() delivers them first — and retry with room freed.
      reap_ring(stash_);
      continue;
    }
    throw_errno("io_uring_enter(submit)");
  }
  return submitted;
}

void Uring::submit() {
  if (sqe_tail_ == sqe_submitted_) return;
  store_release(sq_ktail_, sqe_tail_);
  const unsigned submitted = flush_sqes();
  if (submitted != 0) count_submit(submitted);
}

void Uring::submit_and_wait(int timeout_ms) {
  const unsigned to_submit = sqe_tail_ - sqe_submitted_;
  if (to_submit != 0) store_release(sq_ktail_, sqe_tail_);
  __kernel_timespec ts{};
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
  io_uring_getevents_arg arg{};
  arg.ts = reinterpret_cast<std::uint64_t>(&ts);
  const int r = sys_io_uring_enter(
      fd_, to_submit, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg,
      sizeof(arg));
  unsigned submitted = 0;
  if (r >= 0) {
    // io_uring_enter reports the SQE consume count even when the wait leg
    // was cut short; it can be less than to_submit.
    submitted = static_cast<unsigned>(r);
    sqe_submitted_ += submitted;
  } else if (errno != ETIME && errno != EINTR && errno != EBUSY) {
    throw_errno("io_uring_enter(submit_and_wait)");
  }
  // EBUSY/EINTR (or a partial consume) left SQEs pending: finish the
  // submission now rather than deferring to the next pass — the caller is
  // about to reap, and held-back rearms/sends would stall the loop. The
  // cut-short wait is harmless; poll_io tolerates spurious early returns.
  if (sqe_tail_ != sqe_submitted_) submitted += flush_sqes();
  if (submitted != 0) count_submit(submitted);
}

void Uring::quiesce() {
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->cancel_flags = IORING_ASYNC_CANCEL_ANY | IORING_ASYNC_CANCEL_ALL;
  // Own sentinel, not kProvideUserData: pending buffer-recycle CQEs share
  // that one, and mistaking a recycle for the cancel-all's completion lets
  // quiesce return after one quiet millisecond with ops still in flight.
  sqe->user_data = kCancelUserData;
  submit();
  // Wait for the cancel-all's own CQE, then keep draining until the ring
  // goes quiet: the canceled ops' -ECANCELED CQEs (whose generation is what
  // releases their file references) may post just after it.
  // The canceled ops' -ECANCELED CQEs post via task work on a later enter,
  // so keep entering (1 ms waits) until a quiet interval follows the
  // cancel's completion — returning on the first empty reap would leave the
  // references held.
  bool cancel_seen = false;
  for (int spins = 0; spins < 1000; ++spins) {
    std::vector<Cqe> cqes;
    if (reap(cqes) == 0) {
      __kernel_timespec ts{};
      ts.tv_nsec = 1000000;  // 1 ms
      io_uring_getevents_arg arg{};
      arg.ts = reinterpret_cast<std::uint64_t>(&ts);
      const int r = sys_io_uring_enter(
          fd_, 0, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg,
          sizeof(arg));
      if (r < 0 && errno != ETIME && errno != EINTR) return;
      // A quiet millisecond after the cancel completed: ring is drained.
      if (r < 0 && errno == ETIME && cancel_seen) return;
      continue;
    }
    for (const Cqe& c : cqes) {
      if (c.user_data == kCancelUserData) cancel_seen = true;
    }
  }
}

std::size_t Uring::reap_ring(std::vector<Cqe>& out) {
  unsigned head = *cq_khead_;  // only this thread advances it
  const unsigned tail = load_acquire(cq_ktail_);
  const std::size_t before = out.size();
  for (; head != tail; ++head) {
    const io_uring_cqe& c = cqes_[head & cq_mask_];
    out.push_back(Cqe{c.user_data, c.res, c.flags});
  }
  store_release(cq_khead_, head);
  return out.size() - before;
}

std::size_t Uring::reap(std::vector<Cqe>& out) {
  std::size_t n = 0;
  if (!stash_.empty()) {
    // CQEs reaped early to clear EBUSY submission backpressure — deliver
    // them in completion order, ahead of anything still in the ring.
    n = stash_.size();
    out.insert(out.end(), stash_.begin(), stash_.end());
    stash_.clear();
  }
  return n + reap_ring(out);
}

bool Uring::neutralize_if_unsubmitted(unsigned seq, std::uint64_t user_data) {
  // Unsubmitted window is [sqe_submitted_, sqe_tail_); wrap-safe compare.
  if (seq - sqe_submitted_ >= sqe_tail_ - sqe_submitted_) return false;
  io_uring_sqe* sqe = &sqes_[seq & sq_mask_];
  if (sqe->user_data != user_data) return false;  // not the caller's SQE
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = IORING_OP_NOP;
  sqe->fd = -1;
  sqe->user_data = user_data;  // the NOP's CQE still retires the op
  return true;
}

void Uring::register_buf_ring(unsigned entries, unsigned buf_size,
                              unsigned short bgid) {
  // Classic provided buffers (IORING_OP_PROVIDE_BUFFERS), not the newer
  // IORING_REGISTER_PBUF_RING mapping. Some kernels (observed on a 6.18
  // microVM build) accept the PBUF_RING registration but never see the
  // published tail — every buffer-select op then fails -ENOBUFS with no
  // error at registration time. The provide op completes with a real CQE,
  // so this path is verified synchronously here: a kernel that cannot do
  // buffer selection throws now and the factory falls back to epoll,
  // instead of the loop wedging at the first recv.
  buf_pool_sz_ = static_cast<std::size_t>(entries) * buf_size;
  void* pool = ::mmap(nullptr, buf_pool_sz_, PROT_READ | PROT_WRITE,
                      MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (pool == MAP_FAILED) throw_errno("mmap(buf_pool)");

  buf_pool_ = static_cast<char*>(pool);
  buf_entries_ = entries;
  buf_size_ = buf_size;
  buf_bgid_ = bgid;

  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
  sqe->fd = static_cast<int>(entries);  // number of buffers
  sqe->addr = reinterpret_cast<std::uint64_t>(buf_pool_);
  sqe->len = buf_size;
  sqe->buf_group = bgid;
  sqe->off = 0;  // first bid
  sqe->user_data = kProvideUserData;
  submit();
  // Wait for the provide CQE: nothing else is in flight this early (the
  // loop registers its buffers before arming any I/O).
  for (;;) {
    std::vector<Cqe> cqes;
    if (reap(cqes) == 0) {
      const int r = sys_io_uring_enter(fd_, 0, 1, IORING_ENTER_GETEVENTS,
                                       nullptr, 0);
      if (r < 0 && errno != EINTR) throw_errno("io_uring_enter(getevents)");
      continue;
    }
    for (const Cqe& c : cqes) {
      if (c.user_data != kProvideUserData) continue;  // none expected
      if (c.res < 0) {
        ::munmap(buf_pool_, buf_pool_sz_);
        buf_pool_ = nullptr;
        errno = -c.res;
        throw_errno("io_uring PROVIDE_BUFFERS");
      }
      return;
    }
  }
}

std::string_view Uring::buffer(unsigned short bid, std::size_t len) const {
  return std::string_view(
      buf_pool_ + static_cast<std::size_t>(bid) * buf_size_, len);
}

void Uring::recycle(unsigned short bid) {
  // Re-provide the single consumed buffer. The SQE rides the next submit of
  // the pass, so it reaches the kernel before (or with) any recv rearm
  // queued after it — an -ENOBUFS rearm therefore finds the pool refilled.
  // Its CQE carries the sentinel user_data and is dropped by the dispatcher.
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
  sqe->fd = 1;  // one buffer
  sqe->addr = reinterpret_cast<std::uint64_t>(
      buf_pool_ + static_cast<std::size_t>(bid) * buf_size_);
  sqe->len = buf_size_;
  sqe->buf_group = buf_bgid_;
  sqe->off = bid;
  sqe->user_data = kProvideUserData;
}

}  // namespace crsm::net
