#include "net/uring_loop.h"

#include <sys/epoll.h>
#include <sys/utsname.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "net/socket.h"

namespace crsm::net {

namespace {
// One enter per pass wants room for a full pass of sends + rearms; CQ gets
// headroom for multishot recv bursts (kernel >= 5.5 buffers overflow
// anyway, at a performance cost).
constexpr unsigned kSqEntries = 256;
constexpr unsigned kCqEntries = 4096;
// Provided-buffer pool for multishot recv: 128 x 32 KiB = 4 MiB per loop.
// Buffers are returned the moment the recv callback has consumed them, so
// the pool only has to cover one reaped batch.
constexpr unsigned kBufEntries = 128;
constexpr unsigned kBufSize = 32 * 1024;
constexpr unsigned short kBufGroup = 0;

void require_multishot_recv_kernel() {
  utsname u{};
  if (::uname(&u) != 0) throw NetError("uname failed");
  int major = 0;
  int minor = 0;
  if (std::sscanf(u.release, "%d.%d", &major, &minor) < 1 || major < 6) {
    throw NetError(std::string("kernel ") + u.release +
                   " lacks multishot recv (need >= 6.0)");
  }
}

}  // namespace

UringEventLoop::UringEventLoop()
    : ring_((require_multishot_recv_kernel(), kSqEntries), kCqEntries) {
  ring_.register_buf_ring(kBufEntries, kBufSize, kBufGroup);
  // The wakeup eventfd rides the same multishot-poll machinery as sockets.
  wake_op_ = next_op_++;
  Op op;
  op.kind = Op::Kind::kWake;
  op.fd = wake_fd();
  op.mask = EPOLLIN;
  auto [it, inserted] = ops_.emplace(wake_op_, std::move(op));
  arm_poll(wake_op_, it->second);
}

UringEventLoop::~UringEventLoop() {
  // Cancel and drain any in-flight ops before ring_'s destructor closes
  // the ring fd. For a loop that ran, on_run_exit() already quiesced on the
  // loop thread (where the kernel's completion task work executes — see
  // event_loop.cc); this covers loops that were constructed but never run,
  // whose ops were submitted from this thread.
  ring_.quiesce();
}

void UringEventLoop::arm_poll(std::uint64_t id, const Op& op) {
  io_uring_sqe* sqe = ring_.get_sqe();
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = op.fd;
  sqe->len = IORING_POLL_ADD_MULTI;
  // ERR/HUP are always reported by poll; OR-ing them in keeps the mask
  // nonzero even for a "notify me of errors only" registration.
  sqe->poll32_events = op.mask | EPOLLERR | EPOLLHUP;
  sqe->user_data = id;
}

void UringEventLoop::arm_recv(std::uint64_t id, const Op& op) {
  io_uring_sqe* sqe = ring_.get_sqe();
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = op.fd;
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = kBufGroup;
  sqe->user_data = id;
}

void UringEventLoop::queue_cancel(std::uint64_t target) {
  io_uring_sqe* sqe = ring_.get_sqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->addr = target;
  sqe->user_data = 0;  // completion intentionally unmatched (dropped)
}

void UringEventLoop::add_fd(int fd, std::uint32_t interest, FdCallback cb) {
  const std::uint64_t id = next_op_++;
  Op op;
  op.kind = Op::Kind::kPoll;
  op.fd = fd;
  op.mask = interest;
  op.on_events = std::move(cb);
  auto [it, inserted] = ops_.emplace(id, std::move(op));
  poll_ops_[fd] = id;
  arm_poll(id, it->second);
}

void UringEventLoop::mod_fd(int fd, std::uint32_t interest) {
  auto pit = poll_ops_.find(fd);
  if (pit == poll_ops_.end()) throw NetError("mod_fd: fd not registered");
  auto oit = ops_.find(pit->second);
  if (oit == ops_.end()) throw NetError("mod_fd: poll op missing");
  if (oit->second.mask == interest) return;
  // A multishot poll's mask is fixed at arm time: retire the old op and arm
  // a fresh one. POLL_ADD checks current readiness at arm, so an event that
  // fires into the doomed op's window is re-observed by the new one.
  FdCallback cb = oit->second.on_events;
  oit->second.dead = true;
  queue_cancel(pit->second);
  const std::uint64_t id = next_op_++;
  Op op;
  op.kind = Op::Kind::kPoll;
  op.fd = fd;
  op.mask = interest;
  op.on_events = std::move(cb);
  auto [nit, inserted] = ops_.emplace(id, std::move(op));
  pit->second = id;
  arm_poll(id, nit->second);
}

void UringEventLoop::del_fd(int fd) {
  auto pit = poll_ops_.find(fd);
  if (pit == poll_ops_.end()) return;  // teardown paths may double-del
  auto oit = ops_.find(pit->second);
  if (oit != ops_.end()) {
    oit->second.dead = true;
    queue_cancel(pit->second);
  }
  poll_ops_.erase(pit);
}

bool UringEventLoop::add_recv_stream(int fd, RecvCallback cb) {
  const std::uint64_t id = next_op_++;
  Op op;
  op.kind = Op::Kind::kRecv;
  op.fd = fd;
  op.on_data = std::move(cb);
  auto [it, inserted] = ops_.emplace(id, std::move(op));
  recv_ops_[fd] = id;
  arm_recv(id, it->second);
  return true;
}

void UringEventLoop::del_recv_stream(int fd) {
  auto rit = recv_ops_.find(fd);
  if (rit == recv_ops_.end()) return;
  auto oit = ops_.find(rit->second);
  if (oit != ops_.end()) {
    oit->second.dead = true;
    queue_cancel(rit->second);
  }
  recv_ops_.erase(rit);
}

std::uint64_t UringEventLoop::queue_send(int fd, const iovec* iov, int iovcnt,
                                         std::shared_ptr<void> keepalive,
                                         SendCallback cb) {
  const std::uint64_t id = next_op_++;
  Op op;
  op.kind = Op::Kind::kSend;
  op.fd = fd;
  op.on_sent = std::move(cb);
  op.keepalive = std::move(keepalive);
  auto [it, inserted] = ops_.emplace(id, std::move(op));
  Op& o = it->second;
  o.msg.msg_iov = const_cast<iovec*>(iov);
  o.msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  io_uring_sqe* sqe = ring_.get_sqe();
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(&o.msg);
  // DONTWAIT keeps sendmsg semantics: a full socket buffer completes with
  // -EAGAIN instead of parking the SQE, and the caller arms write interest
  // exactly as on the sync path.
  sqe->msg_flags = MSG_NOSIGNAL | MSG_DONTWAIT;
  sqe->user_data = id;
  o.sqe_seq = ring_.last_sqe_seq();
  return id;
}

void UringEventLoop::discard_send(std::uint64_t id) {
  auto it = ops_.find(id);
  if (it != ops_.end() && it->second.kind == Op::Kind::kSend) {
    it->second.dead = true;
    it->second.on_sent = nullptr;
    // The caller (FrameConn::close) closes the fd right after this call.
    // If the SENDMSG SQE is still queued user-side, it targets the raw fd
    // number: an accept/connect later in the same pass can reuse it before
    // the next io_uring_enter, and the kernel would then write the stale
    // frame batch onto the wrong connection. Rewrite the queued SQE to a
    // NOP (keeping user_data, so its CQE still erases this op). A SQE
    // already handed to the kernel is safe: MSG_DONTWAIT sends complete
    // inline during io_uring_enter, before the fd could have been closed.
    ring_.neutralize_if_unsubmitted(it->second.sqe_seq, id);
  }
}

void UringEventLoop::pump_writes() {
  ring_.submit();
  std::vector<Uring::Cqe> cqes;
  ring_.reap(cqes);
  for (const Uring::Cqe& c : cqes) dispatch_cqe(c, /*sends_only=*/true);
}

void UringEventLoop::poll_io(int timeout_ms) {
  if (!deferred_.empty()) {
    // CQEs a pump_writes reaped mid-pass but could not dispatch (they
    // belong to polls/recvs, not sends): deliver them first and only sweep
    // the ring for new completions, without blocking.
    std::vector<Uring::Cqe> d;
    d.swap(deferred_);
    for (const Uring::Cqe& c : d) dispatch_cqe(c, /*sends_only=*/false);
    timeout_ms = 0;
  }
  const std::uint64_t wait_begin = observer() ? mono_us() : 0;
  ring_.submit_and_wait(timeout_ms);
  if (observer()) observer()->note_poll_wait(mono_us() - wait_begin);
  cqes_.clear();
  ring_.reap(cqes_);
  for (const Uring::Cqe& c : cqes_) dispatch_cqe(c, /*sends_only=*/false);
}

void UringEventLoop::dispatch_cqe(const Uring::Cqe& c, bool sends_only) {
  auto it = ops_.find(c.user_data);
  if (it == ops_.end()) {
    // Stale (op already erased) or a cancel's own completion. A selected
    // buffer must still go back to the pool.
    if (c.flags & IORING_CQE_F_BUFFER) {
      ring_.recycle(
          static_cast<unsigned short>(c.flags >> IORING_CQE_BUFFER_SHIFT));
    }
    return;
  }
  Op& op = it->second;  // node-based map: reference stays valid
  if (sends_only && op.kind != Op::Kind::kSend) {
    deferred_.push_back(c);
    return;
  }
  switch (op.kind) {
    case Op::Kind::kWake: {
      drain_wake_fd();
      if (!(c.flags & IORING_CQE_F_MORE)) arm_poll(c.user_data, op);
      break;
    }
    case Op::Kind::kPoll:
      dispatch_poll_cqe(c, op);
      break;
    case Op::Kind::kRecv:
      dispatch_recv_cqe(c, op);
      break;
    case Op::Kind::kSend: {
      SendCallback cb = std::move(op.on_sent);
      const bool dead = op.dead;
      ops_.erase(it);
      if (!dead && cb) cb(static_cast<ssize_t>(c.res));
      break;
    }
  }
}

void UringEventLoop::deregister_poll(int fd) {
  poll_ops_.erase(fd);
}

void UringEventLoop::dispatch_poll_cqe(const Uring::Cqe& c, Op& op) {
  const std::uint64_t id = c.user_data;
  const bool more = (c.flags & IORING_CQE_F_MORE) != 0;
  if (op.dead || c.res == -ECANCELED) {
    if (!more) ops_.erase(id);
    return;
  }
  const std::uint32_t events =
      c.res >= 0 ? static_cast<std::uint32_t>(c.res)
                 : static_cast<std::uint32_t>(EPOLLERR | EPOLLHUP);
  // Copy: the callback may del_fd/add_fd and mutate the maps.
  FdCallback cb = op.on_events;
  cb(events);
  auto it = ops_.find(id);
  if (it == ops_.end() || more) return;
  if (it->second.dead) {
    ops_.erase(it);
    return;
  }
  if (c.res < 0) {
    // The poll itself broke; callers saw EPOLLERR and are tearing down.
    auto pit = poll_ops_.find(it->second.fd);
    if (pit != poll_ops_.end() && pit->second == id) poll_ops_.erase(pit);
    ops_.erase(it);
    return;
  }
  arm_poll(id, it->second);  // kernel ended the multishot sequence: rearm
}

void UringEventLoop::dispatch_recv_cqe(const Uring::Cqe& c, Op& op) {
  const std::uint64_t id = c.user_data;
  const bool more = (c.flags & IORING_CQE_F_MORE) != 0;
  const bool has_buf = (c.flags & IORING_CQE_F_BUFFER) != 0;
  const auto bid =
      static_cast<unsigned short>(c.flags >> IORING_CQE_BUFFER_SHIFT);
  if (op.dead) {
    if (has_buf) ring_.recycle(bid);
    if (!more) ops_.erase(id);
    return;
  }
  if (c.res > 0 && has_buf) {
    RecvCallback cb = op.on_data;  // copy: callback may mutate the maps
    cb(ring_.buffer(bid, static_cast<std::size_t>(c.res)), false);
    ring_.recycle(bid);
    auto it = ops_.find(id);
    if (it == ops_.end()) return;
    if (it->second.dead) {
      if (!more) ops_.erase(it);
      return;
    }
    if (!more) arm_recv(id, it->second);
    return;
  }
  if (has_buf) ring_.recycle(bid);
  if (c.res == -ENOBUFS) {
    // Pool momentarily exhausted; the buffers come back as this reaped
    // batch is consumed, so rearming is enough.
    if (!more) arm_recv(id, op);
    return;
  }
  // res == 0 (EOF) or a hard error: terminal for the stream.
  RecvCallback cb = std::move(op.on_data);
  auto rit = recv_ops_.find(op.fd);
  if (rit != recv_ops_.end() && rit->second == id) recv_ops_.erase(rit);
  if (more) {
    op.dead = true;
  } else {
    ops_.erase(id);
  }
  cb(std::string_view{}, true);
}

}  // namespace crsm::net
