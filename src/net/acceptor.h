// Listening socket driven by the EventLoop: accepts until EAGAIN on each
// readiness event and hands connected, non-blocking sockets to a callback.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/event_loop.h"
#include "net/socket.h"

namespace crsm::net {

class Acceptor {
 public:
  using OnAccept = std::function<void(Socket&&)>;

  // Binds and listens immediately (so an ephemeral port is known before the
  // loop runs); registration with the loop happens in start().
  Acceptor(EventLoop& loop, const std::string& host, std::uint16_t port);
  ~Acceptor();

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  // Loop-thread only.
  void start(OnAccept on_accept);
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void handle_readable();
  void pause_and_resume();

  EventLoop& loop_;
  Socket listen_sock_;
  std::uint16_t port_ = 0;
  bool started_ = false;
  bool paused_ = false;
  OnAccept on_accept_;
};

}  // namespace crsm::net
