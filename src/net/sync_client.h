// Blocking client-side connection to a crsm node: the driver-side
// counterpart of the node's client path. Speaks the hello preamble plus
// kClientRequest/kClientReply frames over one TCP socket. Used by the
// crsm_client load driver and the TCP integration tests; one instance per
// thread (no internal locking).
#pragma once

#include <cstdint>
#include <string>

#include "common/command.h"
#include "common/message.h"
#include "common/types.h"
#include "net/frame_conn.h"
#include "net/socket.h"

namespace crsm::net {

// Thrown by call()/read_call() when a multi-group node answers with
// kClientRedirect: the command's key belongs to replica group `owner`, and
// nothing was applied. A shard-aware client (ShardedSyncClient) never sees
// this unless its router disagrees with the server's — which is a bug worth
// an exception, not a silent retry loop.
class WrongGroupError : public NetError {
 public:
  WrongGroupError(std::uint32_t owner_group)
      : NetError("command routed to the wrong replica group (owner is group " +
                 std::to_string(owner_group) + ")"),
        owner(owner_group) {}
  std::uint32_t owner;
};

class SyncClient {
 public:
  // Connects (blocking), sends the client hello and waits for the server's
  // hello. Throws NetError on failure.
  SyncClient(const std::string& host, std::uint16_t port);

  // The replica id of the node that answered.
  [[nodiscard]] ReplicaId server_id() const { return server_id_; }

  // Fire-and-forget request.
  void send_request(const Command& cmd);
  // Fire-and-forget read (kClientRead): served at this node once its
  // stability point passes the read timestamp, without a log round.
  void send_read(const Command& cmd);

  // Blocks until the next kClientReply — or kClientRedirect, which always
  // surfaces (check .type) — frame, any client/seq, or the timeout; throws
  // NetError on timeout or disconnect.
  [[nodiscard]] Message read_reply(int timeout_ms = -1);
  // Same, for kClientReadReply frames.
  [[nodiscard]] Message read_read_reply(int timeout_ms = -1);

  // send_request + read replies until one matches (cmd.client, cmd.seq);
  // returns the execution output (reply blob). Throws WrongGroupError if the
  // node bounces the command to another replica group (multi-group nodes).
  [[nodiscard]] std::string call(const Command& cmd, int timeout_ms = -1);
  // send_read + read read-replies until one matches; returns the read's
  // output (the value for kGet, the encoded entry list for kScan). Throws
  // WrongGroupError like call().
  [[nodiscard]] std::string read_call(const Command& cmd, int timeout_ms = -1);

 private:
  // Blocks for the next frame of type `want` — or a kClientRedirect, which
  // always surfaces (callers must check). Anything else is skipped.
  [[nodiscard]] Message read_typed(MsgType want, int timeout_ms);
  void write_all(const std::string& bytes);
  void read_into_assembler(int timeout_ms);  // one blocking read

  Socket sock_;
  FrameAssembler assembler_;
  ReplicaId server_id_ = kNoReplica;
};

}  // namespace crsm::net
