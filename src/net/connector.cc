#include "net/connector.h"

#include <sys/epoll.h>

#include <algorithm>
#include <utility>

namespace crsm::net {

Connector::Connector(EventLoop& loop, std::string host, std::uint16_t port,
                     Options opt)
    : loop_(loop),
      host_(std::move(host)),
      port_(port),
      opt_(opt),
      backoff_us_(opt.initial_backoff_us) {}

Connector::~Connector() { stop(); }

void Connector::start(OnConnected on_connected) {
  stop();
  on_connected_ = std::move(on_connected);
  connecting_ = true;
  backoff_us_ = opt_.initial_backoff_us;
  attempt();
}

void Connector::stop() {
  if (fd_registered_) {
    loop_.del_fd(sock_.fd());
    fd_registered_ = false;
  }
  sock_.reset();
  if (retry_timer_ != 0) {
    loop_.cancel_timer(retry_timer_);
    retry_timer_ = 0;
  }
  connecting_ = false;
}

void Connector::attempt() {
  ++attempts_;
  bool in_progress = false;
  sock_ = tcp_connect(host_, port_, &in_progress);
  if (!sock_.valid()) {
    retry_later();  // synchronous refusal
    return;
  }
  if (!in_progress) {
    // Connected immediately (loopback fast path).
    connecting_ = false;
    on_connected_(std::move(sock_));
    return;
  }
  loop_.add_fd(sock_.fd(), EPOLLOUT, [this](std::uint32_t) { on_writable(); });
  fd_registered_ = true;
}

void Connector::on_writable() {
  loop_.del_fd(sock_.fd());
  fd_registered_ = false;
  if (connect_result(sock_.fd()) != 0) {
    sock_.reset();
    retry_later();
    return;
  }
  connecting_ = false;
  on_connected_(std::move(sock_));
}

void Connector::retry_later() {
  retry_timer_ = loop_.schedule_after(backoff_us_, [this] {
    retry_timer_ = 0;
    if (connecting_) attempt();
  });
  backoff_us_ = std::min(backoff_us_ * 2, opt_.max_backoff_us);
}

}  // namespace crsm::net
