// The portable EventLoop backend: level-triggered epoll_wait readiness,
// with reads/writes issued synchronously by the callbacks (read() loops,
// sendmsg per flush). No recv-stream or queued-send fast paths — callers
// fall back to the readiness API, which this backend serves exactly as the
// pre-uring event loop did.
#pragma once

#include "net/event_loop.h"

namespace crsm::net {

class EpollEventLoop final : public EventLoop {
 public:
  EpollEventLoop();
  ~EpollEventLoop() override;

  [[nodiscard]] IoBackend backend() const override {
    return IoBackend::kEpoll;
  }

  void add_fd(int fd, std::uint32_t interest, FdCallback cb) override;
  void mod_fd(int fd, std::uint32_t interest) override;
  void del_fd(int fd) override;

 protected:
  void poll_io(int timeout_ms) override;

 private:
  int epfd_ = -1;
  std::unordered_map<int, FdCallback> fds_;
};

}  // namespace crsm::net
