// Outbound connection establishment with automatic retry.
//
// A Connector owns the dial-side of one logical link: it attempts a
// non-blocking connect, watches for completion, and on any failure waits an
// exponentially growing backoff (with the EventLoop's timer) before trying
// again — forever, until stop() or success. The owner re-arms it after a
// established connection later dies, which is what gives TcpTransport links
// automatic reconnect.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/event_loop.h"
#include "net/socket.h"

namespace crsm::net {

struct ConnectorOptions {
  std::uint64_t initial_backoff_us = 10'000;  // 10 ms
  std::uint64_t max_backoff_us = 1'000'000;   // 1 s
};

class Connector {
 public:
  using OnConnected = std::function<void(Socket&&)>;
  using Options = ConnectorOptions;

  Connector(EventLoop& loop, std::string host, std::uint16_t port,
            Options opt = {});
  ~Connector();

  Connector(const Connector&) = delete;
  Connector& operator=(const Connector&) = delete;

  // Starts (or restarts, after a connection died) the dial loop.
  // Loop-thread only. Fires `on_connected` exactly once per start() with a
  // connected non-blocking socket.
  void start(OnConnected on_connected);
  void stop();

  [[nodiscard]] bool connecting() const { return connecting_; }
  [[nodiscard]] std::uint64_t attempts() const { return attempts_; }

 private:
  void attempt();
  void on_writable();
  void retry_later();

  EventLoop& loop_;
  const std::string host_;
  const std::uint16_t port_;
  const Options opt_;

  Socket sock_;  // the in-flight attempt
  bool connecting_ = false;
  bool fd_registered_ = false;
  std::uint64_t backoff_us_;
  std::uint64_t attempts_ = 0;
  TimerId retry_timer_ = 0;
  OnConnected on_connected_;
};

}  // namespace crsm::net
