#include "storage/recovery.h"

#include <stdexcept>
#include <unordered_map>

namespace crsm {

namespace {
struct TsHash {
  std::size_t operator()(const Timestamp& ts) const {
    return std::hash<Tick>()(ts.ticks) * 1000003u ^ std::hash<ReplicaId>()(ts.origin);
  }
};
}  // namespace

ReplayResult replay_log(const std::vector<LogRecord>& records) {
  ReplayResult out;
  std::unordered_map<Timestamp, LogRecord, TsHash> staged;
  for (const LogRecord& r : records) {
    switch (r.type) {
      case LogType::kPrepare:
        staged.emplace(r.ts, r);
        break;
      case LogType::kCommit: {
        auto it = staged.find(r.ts);
        if (it == staged.end()) {
          // COMMIT marks are always logged after their PREPARE (Section V-B);
          // a violation means the log is corrupt.
          throw std::runtime_error("commit mark without prepare at ts " +
                                   r.ts.to_string());
        }
        if (r.ts < out.last_commit_ts) {
          throw std::runtime_error("commit marks out of timestamp order");
        }
        out.committed.push_back(std::move(it->second));
        out.last_commit_ts = r.ts;
        staged.erase(it);
        break;
      }
    }
  }
  out.unresolved.reserve(staged.size());
  for (auto& [ts, rec] : staged) out.unresolved.push_back(std::move(rec));
  return out;
}

void replay_and_apply(const std::vector<LogRecord>& records,
                      const std::function<void(const Command&, Timestamp)>& apply) {
  ReplayResult r = replay_log(records);
  for (const LogRecord& rec : r.committed) apply(rec.cmd, rec.ts);
}

}  // namespace crsm
