#include "storage/command_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <unordered_set>

#include "common/codec.h"
#include "common/message.h"

namespace crsm {

namespace {

struct TimestampHash {
  std::size_t operator()(const Timestamp& ts) const {
    return std::hash<Tick>()(ts.ticks) * 1000003u ^ std::hash<ReplicaId>()(ts.origin);
  }
};

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::string encode_framed(const LogRecord& r) {
  std::string body;
  encode_log_record(r, &body);
  std::string framed;
  Encoder e(&framed);
  e.bytes(body);
  return framed;
}

}  // namespace

void filter_uncommitted_above(std::vector<LogRecord>* records, Timestamp bound,
                              const std::function<bool(const Timestamp&)>& keep) {
  std::unordered_set<Timestamp, TimestampHash> committed;
  for (const LogRecord& r : *records) {
    if (r.type == LogType::kCommit) committed.insert(r.ts);
  }
  std::vector<LogRecord> out;
  out.reserve(records->size());
  std::unordered_set<Timestamp, TimestampHash> removed;
  for (LogRecord& r : *records) {
    const bool above = r.ts > bound;
    if (r.type == LogType::kPrepare && above && !committed.contains(r.ts) &&
        !(keep && keep(r.ts))) {
      removed.insert(r.ts);
      continue;
    }
    if (r.type == LogType::kCommit && removed.contains(r.ts)) continue;
    out.push_back(std::move(r));
  }
  *records = std::move(out);
}

void MemLog::remove_uncommitted_above(Timestamp bound,
                                      const std::function<bool(const Timestamp&)>& keep) {
  filter_uncommitted_above(&records_, bound, keep);
}

namespace {
void erase_prefix(std::vector<LogRecord>* records, Timestamp upto) {
  std::erase_if(*records, [upto](const LogRecord& r) { return r.ts <= upto; });
}
}  // namespace

void MemLog::truncate_prefix(Timestamp upto) { erase_prefix(&records_, upto); }

FileLog::FileLog(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw_errno("FileLog open " + path_);

  // Replay the existing file; stop at (and trim) any torn tail.
  std::string contents;
  char buf[1 << 16];
  ::lseek(fd_, 0, SEEK_SET);
  for (;;) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) throw_errno("FileLog read " + path_);
    if (n == 0) break;
    contents.append(buf, static_cast<std::size_t>(n));
  }
  std::size_t pos = 0;
  std::size_t good = 0;
  while (pos < contents.size()) {
    try {
      Decoder frame(std::string_view(contents).substr(pos));
      // The frame body stays a view into `contents`; decode_log_record owns
      // every byte it returns, so nothing dangles past replay.
      Decoder d(frame.bytes_view());
      records_.push_back(decode_log_record(d));
      pos = contents.size() - frame.remaining();
      good = pos;
    } catch (const CodecError&) {
      break;  // torn tail
    }
  }
  if (good != contents.size()) {
    if (::ftruncate(fd_, static_cast<off_t>(good)) != 0) {
      throw_errno("FileLog truncate torn tail " + path_);
    }
  }
}

FileLog::~FileLog() {
  if (fd_ >= 0) ::close(fd_);
}

void FileLog::append(const LogRecord& r) {
  records_.push_back(r);
  const std::string framed = encode_framed(r);
  std::size_t off = 0;
  while (off < framed.size()) {
    ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("FileLog append " + path_);
    }
    off += static_cast<std::size_t>(n);
  }
}

void FileLog::sync() {
  if (::fdatasync(fd_) != 0) throw_errno("FileLog sync " + path_);
}

void FileLog::remove_uncommitted_above(Timestamp bound,
                                       const std::function<bool(const Timestamp&)>& keep) {
  filter_uncommitted_above(&records_, bound, keep);
  rewrite_all();
}

void FileLog::truncate_prefix(Timestamp upto) {
  erase_prefix(&records_, upto);
  rewrite_all();
}

void FileLog::rewrite_all() {
  // Reconfiguration is rare (Section V-C); a full rewrite keeps the format
  // simple and crash-safe enough for this use (write temp, no rename needed
  // since reconfiguration re-derives state from a majority anyway).
  if (::ftruncate(fd_, 0) != 0) throw_errno("FileLog rewrite " + path_);
  ::lseek(fd_, 0, SEEK_END);
  std::string all;
  for (const LogRecord& r : records_) all += encode_framed(r);
  std::size_t off = 0;
  while (off < all.size()) {
    ssize_t n = ::write(fd_, all.data() + off, all.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("FileLog rewrite " + path_);
    }
    off += static_cast<std::size_t>(n);
  }
  sync();
}

}  // namespace crsm
