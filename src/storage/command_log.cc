#include "storage/command_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <unordered_set>

#include "common/codec.h"
#include "common/message.h"

namespace crsm {

namespace {

struct TimestampHash {
  std::size_t operator()(const Timestamp& ts) const {
    return std::hash<Tick>()(ts.ticks) * 1000003u ^ std::hash<ReplicaId>()(ts.origin);
  }
};

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::string encode_framed(const LogRecord& r) {
  std::string body;
  encode_log_record(r, &body);
  std::string framed;
  Encoder e(&framed);
  e.bytes(body);
  return framed;
}

}  // namespace

// Makes a rename in `path`'s directory durable across power loss. Failure
// is ignored: the rename itself succeeded, and a directory that cannot be
// fsynced (some filesystems) still orders the entry eventually.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return;
  (void)::fsync(dfd);
  ::close(dfd);
}

void filter_uncommitted_above(std::vector<LogRecord>* records, Timestamp bound,
                              const std::function<bool(const Timestamp&)>& keep) {
  std::unordered_set<Timestamp, TimestampHash> committed;
  for (const LogRecord& r : *records) {
    if (r.type == LogType::kCommit) committed.insert(r.ts);
  }
  std::vector<LogRecord> out;
  out.reserve(records->size());
  std::unordered_set<Timestamp, TimestampHash> removed;
  for (LogRecord& r : *records) {
    const bool above = r.ts > bound;
    if (r.type == LogType::kPrepare && above && !committed.contains(r.ts) &&
        !(keep && keep(r.ts))) {
      removed.insert(r.ts);
      continue;
    }
    if (r.type == LogType::kCommit && removed.contains(r.ts)) continue;
    out.push_back(std::move(r));
  }
  *records = std::move(out);
}

void MemLog::remove_uncommitted_above(Timestamp bound,
                                      const std::function<bool(const Timestamp&)>& keep) {
  filter_uncommitted_above(&records_, bound, keep);
}

namespace {
void erase_prefix(std::vector<LogRecord>* records, Timestamp upto) {
  std::erase_if(*records, [upto](const LogRecord& r) { return r.ts <= upto; });
}
}  // namespace

void MemLog::truncate_prefix(Timestamp upto) { erase_prefix(&records_, upto); }

void CrashLossyLog::remove_uncommitted_above(
    Timestamp bound, const std::function<bool(const Timestamp&)>& keep) {
  filter_uncommitted_above(&records_, bound, keep);
  // A structural rewrite persists the full surviving content, exactly like
  // FileLog's crash-atomic rewrite_all (+fsync). Merely clamping the
  // watermark instead would slide appended-but-unsynced tail records under
  // it whenever the rewrite removed records from the durable prefix,
  // silently weakening the power-loss model.
  durable_ = records_.size();
}

void CrashLossyLog::truncate_prefix(Timestamp upto) {
  erase_prefix(&records_, upto);
  durable_ = records_.size();  // structural rewrite: see above
}

void CrashLossyLog::drop_unsynced() { records_.resize(durable_); }

FileLog::FileLog(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw_errno("FileLog open " + path_);

  // Replay the existing file; stop at (and trim) any torn tail.
  std::string contents;
  char buf[1 << 16];
  ::lseek(fd_, 0, SEEK_SET);
  for (;;) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) throw_errno("FileLog read " + path_);
    if (n == 0) break;
    contents.append(buf, static_cast<std::size_t>(n));
  }
  std::size_t pos = 0;
  std::size_t good = 0;
  while (pos < contents.size()) {
    try {
      Decoder frame(std::string_view(contents).substr(pos));
      // The frame body stays a view into `contents`; decode_log_record owns
      // every byte it returns, so nothing dangles past replay.
      Decoder d(frame.bytes_view());
      records_.push_back(decode_log_record(d));
      pos = contents.size() - frame.remaining();
      good = pos;
    } catch (const CodecError&) {
      break;  // torn tail
    }
  }
  if (good != contents.size()) {
    if (::ftruncate(fd_, static_cast<off_t>(good)) != 0) {
      throw_errno("FileLog truncate torn tail " + path_);
    }
  }
}

FileLog::~FileLog() {
  if (fd_ >= 0) ::close(fd_);
}

void FileLog::append(const LogRecord& r) {
  records_.push_back(r);
  const std::string framed = encode_framed(r);
  std::size_t off = 0;
  while (off < framed.size()) {
    ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("FileLog append " + path_);
    }
    off += static_cast<std::size_t>(n);
  }
}

void FileLog::sync() {
  if (::fdatasync(fd_) != 0) throw_errno("FileLog sync " + path_);
}

void FileLog::remove_uncommitted_above(Timestamp bound,
                                       const std::function<bool(const Timestamp&)>& keep) {
  filter_uncommitted_above(&records_, bound, keep);
  rewrite_all();
}

void FileLog::truncate_prefix(Timestamp upto) {
  erase_prefix(&records_, upto);
  rewrite_all();
}

void FileLog::rewrite_all() {
  // Rewrites (reconfiguration, checkpoint truncation, recovery pruning) are
  // rare but must be crash-atomic: truncating in place would open a window
  // where a crash wipes the whole fsynced log. Write a temp file, make it
  // durable, rename it over the log, then adopt its fd — a crash leaves
  // either the old bytes or the new, never neither.
  const std::string tmp = path_ + ".rewrite";
  int tfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (tfd < 0) throw_errno("FileLog rewrite open " + tmp);
  std::string all;
  for (const LogRecord& r : records_) all += encode_framed(r);
  std::size_t off = 0;
  while (off < all.size()) {
    ssize_t n = ::write(tfd, all.data() + off, all.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(tfd);
      throw_errno("FileLog rewrite " + tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fdatasync(tfd) != 0) {
    ::close(tfd);
    throw_errno("FileLog rewrite sync " + tmp);
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::close(tfd);
    throw_errno("FileLog rewrite rename " + path_);
  }
  fsync_parent_dir(path_);
  ::close(fd_);
  fd_ = tfd;  // same inode the rename published
}

}  // namespace crsm
