#include "storage/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <system_error>

#include "common/codec.h"
#include "storage/recovery.h"

namespace crsm {

std::string Checkpoint::encode() const {
  std::string out;
  Encoder e(&out);
  e.timestamp(last_applied);
  e.var(epoch);
  e.bytes(state);
  return out;
}

Checkpoint Checkpoint::decode(const std::string& blob) {
  Decoder d(blob);
  Checkpoint cp;
  cp.last_applied = d.timestamp();
  cp.epoch = d.var();
  cp.state = d.bytes();
  if (!d.done()) throw CodecError("trailing bytes in Checkpoint");
  return cp;
}

Checkpoint take_checkpoint(const StateMachine& sm, Timestamp last_applied,
                           Epoch epoch) {
  Checkpoint cp;
  cp.last_applied = last_applied;
  cp.epoch = epoch;
  cp.state = sm.snapshot();
  return cp;
}

void truncate_covered_prefix(CommandLog& log, const Checkpoint& cp) {
  log.truncate_prefix(cp.last_applied);
}

Timestamp recover_with_checkpoint(const std::optional<Checkpoint>& cp,
                                  const CommandLog& log, StateMachine& sm) {
  Timestamp floor = kZeroTimestamp;
  if (cp) {
    sm.restore(cp->state);
    floor = cp->last_applied;
  }
  ReplayResult rr = replay_log(log.records());
  for (const LogRecord& rec : rr.committed) {
    if (rec.ts > floor) sm.apply(rec.cmd);
  }
  return std::max(floor, rr.last_commit_ts);
}

void write_checkpoint_file(const std::string& path, const Checkpoint& cp) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::system_error(errno, std::generic_category(),
                                      "checkpoint open " + tmp);
    const std::string blob = cp.encode();
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) throw std::system_error(errno, std::generic_category(),
                                      "checkpoint write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::system_error(errno, std::generic_category(),
                            "checkpoint rename " + path);
  }
}

std::optional<Checkpoint> read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Checkpoint::decode(blob);
}

}  // namespace crsm
