#include "storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <system_error>

#include "common/codec.h"
#include "storage/recovery.h"

namespace crsm {

std::string Checkpoint::encode() const {
  std::string out;
  Encoder e(&out);
  e.timestamp(last_applied);
  e.var(epoch);
  e.bytes(state);
  return out;
}

Checkpoint Checkpoint::decode(const std::string& blob) {
  Decoder d(blob);
  Checkpoint cp;
  cp.last_applied = d.timestamp();
  cp.epoch = d.var();
  cp.state = d.bytes();
  if (!d.done()) throw CodecError("trailing bytes in Checkpoint");
  return cp;
}

Checkpoint take_checkpoint(const StateMachine& sm, Timestamp last_applied,
                           Epoch epoch) {
  Checkpoint cp;
  cp.last_applied = last_applied;
  cp.epoch = epoch;
  cp.state = sm.snapshot();
  return cp;
}

void truncate_covered_prefix(CommandLog& log, const Checkpoint& cp) {
  log.truncate_prefix(cp.last_applied);
}

Timestamp recover_with_checkpoint(const std::optional<Checkpoint>& cp,
                                  const CommandLog& log, StateMachine& sm) {
  Timestamp floor = kZeroTimestamp;
  if (cp) {
    sm.restore(cp->state);
    floor = cp->last_applied;
  }
  ReplayResult rr = replay_log(log.records());
  for (const LogRecord& rec : rr.committed) {
    if (rec.ts > floor) sm.apply(rec.cmd);
  }
  return std::max(floor, rr.last_commit_ts);
}

void write_checkpoint_file(const std::string& path, const Checkpoint& cp) {
  // Atomic and durable: write temp, fdatasync it *before* the rename (an
  // unsynced rename could publish an empty/partial file across power loss
  // while the caller goes on to truncate the WAL prefix it covers), then
  // rename and fsync the directory.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw std::system_error(errno, std::generic_category(),
                                      "checkpoint open " + tmp);
  const std::string blob = cp.encode();
  std::size_t off = 0;
  while (off < blob.size()) {
    const ssize_t n = ::write(fd, blob.data() + off, blob.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::system_error(err, std::generic_category(),
                              "checkpoint write " + tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fdatasync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(),
                            "checkpoint sync " + tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::system_error(errno, std::generic_category(),
                            "checkpoint rename " + path);
  }
  fsync_parent_dir(path);
}

std::optional<Checkpoint> read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  try {
    return Checkpoint::decode(blob);
  } catch (const CodecError&) {
    // A corrupt checkpoint must not brick the boot: recovery falls back to
    // the WAL plus peer catch-up (which can ship a fresh checkpoint).
    std::fprintf(stderr, "warning: discarding corrupt checkpoint %s\n",
                 path.c_str());
    return std::nullopt;
  }
}

}  // namespace crsm
