#include "storage/replica_storage.h"

#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

namespace crsm {

// --- GroupCommitLog --------------------------------------------------------

GroupCommitLog::GroupCommitLog(std::unique_ptr<CommandLog> inner,
                               bool defer_sync,
                               std::uint64_t test_fsync_delay_us)
    : inner_(std::move(inner)),
      defer_sync_(defer_sync),
      test_fsync_delay_us_(test_fsync_delay_us) {}

void GroupCommitLog::append(const LogRecord& r) {
  inner_->append(r);
  ++batch_appends_;
  appends_.fetch_add(1, std::memory_order_relaxed);
}

void GroupCommitLog::sync() {
  sync_requests_.fetch_add(1, std::memory_order_relaxed);
  sync_pending_ = true;
  if (!defer_sync_) (void)flush();
}

std::size_t GroupCommitLog::flush() {
  if (!sync_pending_) return 0;
  const std::size_t batch = batch_appends_;
  if (test_fsync_delay_us_ != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(test_fsync_delay_us_));
  }
  inner_->sync();
  sync_pending_ = false;
  batch_appends_ = 0;
  syncs_.fetch_add(1, std::memory_order_relaxed);
  if (batch > max_batch_.load(std::memory_order_relaxed)) {
    max_batch_.store(batch, std::memory_order_relaxed);
  }
  return batch;
}

void GroupCommitLog::remove_uncommitted_above(
    Timestamp bound, const std::function<bool(const Timestamp&)>& keep) {
  // FileLog rewrites + syncs the whole file here, so any owed durability
  // point is covered; count the batch as flushed.
  inner_->remove_uncommitted_above(bound, keep);
  sync_pending_ = false;
  batch_appends_ = 0;
  syncs_.fetch_add(1, std::memory_order_relaxed);
}

void GroupCommitLog::truncate_prefix(Timestamp upto) {
  inner_->truncate_prefix(upto);
  sync_pending_ = false;
  batch_appends_ = 0;
  syncs_.fetch_add(1, std::memory_order_relaxed);
}

void GroupCommitLog::fill_stats(StorageStats* out) const {
  out->appends = appends_.load(std::memory_order_relaxed);
  out->sync_requests = sync_requests_.load(std::memory_order_relaxed);
  out->syncs = syncs_.load(std::memory_order_relaxed);
  out->max_batch = max_batch_.load(std::memory_order_relaxed);
}

// --- ReplicaStorage --------------------------------------------------------

ReplicaStorage::ReplicaStorage(StorageOptions opt) : opt_(std::move(opt)) {
  if (durable()) {
    std::filesystem::create_directories(opt_.dir);
    checkpoint_ = read_checkpoint_file(checkpoint_path());
    // Deferred syncs only make sense for a log that actually hits disk.
    log_ = std::make_unique<GroupCommitLog>(
        std::make_unique<FileLog>(wal_path()), opt_.group_commit,
        opt_.test_fsync_delay_us);
  } else {
    log_ = std::make_unique<GroupCommitLog>(std::make_unique<MemLog>(),
                                            /*defer_sync=*/false);
  }
  boot_recovering_ = !log_->records().empty() || checkpoint_.has_value();
}

std::string ReplicaStorage::wal_path() const { return opt_.dir + "/wal.log"; }

std::string ReplicaStorage::checkpoint_path() const {
  return opt_.dir + "/checkpoint.bin";
}

std::string ReplicaStorage::encoded_checkpoint() const {
  return checkpoint_ ? checkpoint_->encode() : std::string();
}

bool ReplicaStorage::restore_into(StateMachine& sm) const {
  if (!checkpoint_) return false;
  sm.restore(checkpoint_->state);
  return true;
}

void ReplicaStorage::install_checkpoint(std::string_view blob,
                                        StateMachine& sm) {
  Checkpoint cp = Checkpoint::decode(std::string(blob));
  sm.restore(cp.state);
  checkpoint_ = std::move(cp);
  // Persist before truncating the covered WAL prefix (same order as
  // note_commit): a crash between the two must leave the prefix in at
  // least one of the checkpoint file or the log, never neither.
  if (durable()) persist_checkpoint(*checkpoint_);
  log_->truncate_prefix(checkpoint_->last_applied);
}

void ReplicaStorage::note_commit(const StateMachine& sm, Timestamp ts) {
  if (!durable() || opt_.checkpoint_every == 0) return;
  if (++commits_since_checkpoint_ < opt_.checkpoint_every) return;
  commits_since_checkpoint_ = 0;
  // `ts` is the commit timestamp of the command just executed; execution is
  // in commit order, so everything at or below it is already applied. The
  // epoch is carried over from the previous checkpoint: the durable runtime
  // runs reconfiguration-free (epoch 0), and recovery only consumes
  // last_applied; plumb the live epoch through ProtocolEnv before enabling
  // reconfig + durability together.
  Checkpoint cp = take_checkpoint(sm, ts, checkpoint_ ? checkpoint_->epoch : 0);
  persist_checkpoint(cp);
  checkpoint_ = std::move(cp);
  truncate_covered_prefix(*log_, *checkpoint_);
}

void ReplicaStorage::persist_checkpoint(const Checkpoint& cp) {
  write_checkpoint_file(checkpoint_path(), cp);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
}

StorageStats ReplicaStorage::stats() const {
  StorageStats s;
  log_->fill_stats(&s);
  s.held_messages = held_messages_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace crsm
