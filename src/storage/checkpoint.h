// Checkpointing (Section V-B): snapshot the state machine so recovery can
// skip replaying the whole log, then truncate the covered log prefix.
#pragma once

#include <optional>
#include <string>

#include "common/types.h"
#include "rsm/state_machine.h"
#include "storage/command_log.h"

namespace crsm {

// A durable snapshot of a replica's applied state.
struct Checkpoint {
  Timestamp last_applied = kZeroTimestamp;  // commit mark covered by `state`
  Epoch epoch = 0;
  std::string state;  // StateMachine::snapshot()

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static Checkpoint decode(const std::string& blob);
};

// Captures a checkpoint of `sm` as of commit timestamp `last_applied`.
// The caller must pass the protocol's current last commit timestamp; all
// commands with ts <= last_applied must already be applied to `sm`.
[[nodiscard]] Checkpoint take_checkpoint(const StateMachine& sm,
                                         Timestamp last_applied, Epoch epoch);

// Removes log records covered by the checkpoint (ts <= last_applied).
// Every PREPARE at or below the last commit mark is necessarily committed
// (commands execute in timestamp order), so nothing recoverable is lost.
void truncate_covered_prefix(CommandLog& log, const Checkpoint& cp);

// Restores `sm` from the checkpoint and replays the remaining log suffix,
// applying committed commands above the checkpoint in timestamp order.
// Returns the resulting last-applied timestamp.
Timestamp recover_with_checkpoint(const std::optional<Checkpoint>& cp,
                                  const CommandLog& log, StateMachine& sm);

// File persistence (atomic via write-to-temp + rename).
void write_checkpoint_file(const std::string& path, const Checkpoint& cp);
[[nodiscard]] std::optional<Checkpoint> read_checkpoint_file(const std::string& path);

}  // namespace crsm
