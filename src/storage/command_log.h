// Stable-storage command log (Section III-A, hard state `Log`).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/log_record.h"
#include "common/types.h"

namespace crsm {

// Append-only log of PREPARE entries and COMMIT marks. PREPARE entries are
// appended in arrival order (not necessarily timestamp order); COMMIT marks
// are appended in timestamp order, and always after the matching PREPARE —
// recovery (Section V-B) depends on both invariants.
//
// `truncate_suffix` exists for reconfiguration (Algorithm 3, line 15): it
// removes PREPARE entries above the decided timestamp that were never
// committed.
class CommandLog {
 public:
  virtual ~CommandLog() = default;

  virtual void append(const LogRecord& r) = 0;
  // Flushes to stable storage; a durability point for PREPAREOK.
  virtual void sync() {}

  [[nodiscard]] virtual const std::vector<LogRecord>& records() const = 0;
  [[nodiscard]] std::size_t size() const { return records().size(); }

  // Removes every kPrepare record with ts > bound whose timestamp does not
  // appear in `keep`, and every kCommit mark for a removed prepare.
  // (Committed entries are never above `bound` when this is called.)
  virtual void remove_uncommitted_above(Timestamp bound,
                                        const std::function<bool(const Timestamp&)>& keep) = 0;

  // Removes every record with ts <= upto. Used after checkpointing: the
  // snapshot covers that prefix, and every PREPARE at or below the last
  // commit mark is necessarily committed (execution is in timestamp order).
  virtual void truncate_prefix(Timestamp upto) = 0;
};

// In-memory log; used by the simulator (the paper ignores disk latency in
// WAN analysis) and by the throughput runtime (the paper logs to memory in
// the local-cluster experiment for the same reason).
class MemLog final : public CommandLog {
 public:
  void append(const LogRecord& r) override { records_.push_back(r); }
  [[nodiscard]] const std::vector<LogRecord>& records() const override { return records_; }
  void remove_uncommitted_above(Timestamp bound,
                                const std::function<bool(const Timestamp&)>& keep) override;
  void truncate_prefix(Timestamp upto) override;

 private:
  std::vector<LogRecord> records_;
};

// In-memory log with power-loss crash semantics, for deterministic
// simulation testing (src/dst). Records appended after the last sync() live
// in the "volatile tail"; a simulated power loss (drop_unsynced, called by
// SimWorld::crash in lossy mode) discards that tail, exactly like a real
// disk losing an un-fsynced page cache. Protocols that sync at their
// durability points (before acking a PREPARE, after a commit mark) survive
// this; a protocol that acks before syncing is caught by the DST durability
// invariant. `set_sync_is_noop(true)` is the deliberate-bug injection used
// to prove the harness catches exactly that class of violation.
class CrashLossyLog final : public CommandLog {
 public:
  void append(const LogRecord& r) override { records_.push_back(r); }
  void sync() override {
    if (!sync_is_noop_) durable_ = records_.size();
  }
  [[nodiscard]] const std::vector<LogRecord>& records() const override { return records_; }
  void remove_uncommitted_above(Timestamp bound,
                                const std::function<bool(const Timestamp&)>& keep) override;
  void truncate_prefix(Timestamp upto) override;

  // Simulated power loss: discards every record appended since the last
  // effective sync().
  void drop_unsynced();
  [[nodiscard]] std::size_t unsynced() const { return records_.size() - durable_; }
  void set_sync_is_noop(bool v) { sync_is_noop_ = v; }

 private:
  std::vector<LogRecord> records_;
  std::size_t durable_ = 0;
  bool sync_is_noop_ = false;
};

// File-backed log with a write-through in-memory mirror. Records are framed
// with a length prefix; a truncated tail (torn write at crash) is tolerated
// and discarded at open.
class FileLog final : public CommandLog {
 public:
  // Opens (creating if absent) and replays the file into memory.
  explicit FileLog(std::string path);
  ~FileLog() override;

  FileLog(const FileLog&) = delete;
  FileLog& operator=(const FileLog&) = delete;

  void append(const LogRecord& r) override;
  void sync() override;
  [[nodiscard]] const std::vector<LogRecord>& records() const override { return records_; }
  void remove_uncommitted_above(Timestamp bound,
                                const std::function<bool(const Timestamp&)>& keep) override;
  void truncate_prefix(Timestamp upto) override;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void rewrite_all();

  std::string path_;
  int fd_ = -1;
  std::vector<LogRecord> records_;
};

// Shared implementation of remove_uncommitted_above over a record vector.
void filter_uncommitted_above(std::vector<LogRecord>* records, Timestamp bound,
                              const std::function<bool(const Timestamp&)>& keep);

// fsyncs the directory containing `path`, making a completed rename in it
// durable. Best-effort: errors are ignored (see the definition).
void fsync_parent_dir(const std::string& path);

}  // namespace crsm
