// Log replay for crash recovery (Section V-B).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/command.h"
#include "common/log_record.h"
#include "common/types.h"

namespace crsm {

// Result of scanning a command log after a crash.
struct ReplayResult {
  // Commands with a COMMIT mark, in timestamp order — safe to execute.
  std::vector<LogRecord> committed;
  // Timestamp of the last commit mark (kZeroTimestamp if none).
  Timestamp last_commit_ts = kZeroTimestamp;
  // PREPARE entries near the tail with no matching COMMIT mark. The
  // recovering replica must consult a majority (RETRIEVECMDS) before
  // executing any of these.
  std::vector<LogRecord> unresolved;
};

// Scans `records` front to back with the paper's hash-table algorithm:
// PREPARE entries are staged by timestamp; each COMMIT mark promotes the
// matching PREPARE to `committed`. COMMIT marks appear in timestamp order,
// so `committed` comes out sorted.
[[nodiscard]] ReplayResult replay_log(const std::vector<LogRecord>& records);

// Convenience: replay and apply every committed command through `apply`.
void replay_and_apply(const std::vector<LogRecord>& records,
                      const std::function<void(const Command&, Timestamp)>& apply);

}  // namespace crsm
