// Per-replica durable storage: the pluggable seam between a runtime
// environment and its command log / checkpoint files.
//
// PR 3's TCP runtime hardwired MemLog into every node, so a killed crsm_node
// lost its log and could never rejoin. ReplicaStorage wires the storage
// layer (FileLog, Checkpoint, Recovery) into the runtimes behind one knob:
// an empty directory means the volatile MemLog of the paper's throughput
// experiments; a directory selects a FileLog WAL plus an atomically written
// checkpoint file, and the replica becomes restartable.
//
// Durability cost is managed with group commit: the protocol requests a
// durability point per PREPARE (CommandLog::sync()), but GroupCommitLog
// defers the fdatasync; the runtime calls flush() once per event-loop pass,
// so every append accumulated during the pass shares a single fsync. The
// runtime must hold any message whose send was requested while a sync is
// pending (sync_pending()) until after flush() — that keeps PREPAREOK
// strictly after the durability point, which is what lets Clock-RSM count a
// command committed once a majority has it stably logged (Section III-A).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "rsm/protocol.h"
#include "rsm/state_machine.h"
#include "storage/checkpoint.h"
#include "storage/command_log.h"

namespace crsm {

struct StorageOptions {
  // Empty: volatile MemLog, no checkpoints (PR 3 behavior, and the paper's
  // local-cluster throughput setup). Non-empty: the replica's durable state
  // lives in this directory (created if absent) as wal.log + checkpoint.bin.
  std::string dir;
  // FileLog only: batch fdatasyncs per runtime pass instead of syncing on
  // every protocol durability request.
  bool group_commit = true;
  // Committed commands between checkpoints (0 = never checkpoint). Each
  // checkpoint truncates the covered log prefix.
  std::uint64_t checkpoint_every = 0;
  // Fault injection (tests only): sleep this long before every fsync batch,
  // emulating a slow or stalling device under this replica's WAL. Multi-group
  // isolation tests stall one group's storage and assert the others keep
  // committing at full speed.
  std::uint64_t test_fsync_delay_us = 0;
};

// Storage-side counters, in the TransportStats mold: sampled from any thread
// while the owning loop mutates them.
struct StorageStats {
  std::uint64_t appends = 0;        // log records appended
  std::uint64_t sync_requests = 0;  // durability points requested (sync())
  std::uint64_t syncs = 0;          // fdatasync batches actually issued
  std::uint64_t max_batch = 0;      // largest appends-per-fsync batch
  std::uint64_t held_messages = 0;  // sends held until the durability point
  std::uint64_t checkpoints = 0;    // checkpoints taken + persisted
};

// CommandLog decorator implementing group commit. In deferred mode, sync()
// only records that a durability point is owed; flush() issues one inner
// sync covering every append since the last flush. In pass-through mode
// (MemLog, or group_commit = false) sync() forwards immediately, so
// protocol code is oblivious either way.
class GroupCommitLog final : public CommandLog {
 public:
  GroupCommitLog(std::unique_ptr<CommandLog> inner, bool defer_sync,
                 std::uint64_t test_fsync_delay_us = 0);

  void append(const LogRecord& r) override;
  void sync() override;
  [[nodiscard]] const std::vector<LogRecord>& records() const override {
    return inner_->records();
  }
  void remove_uncommitted_above(
      Timestamp bound, const std::function<bool(const Timestamp&)>& keep) override;
  void truncate_prefix(Timestamp upto) override;

  // True while a requested durability point has not been made stable yet.
  [[nodiscard]] bool sync_pending() const { return sync_pending_; }
  // Performs the owed inner sync (if any); returns the batch size flushed.
  std::size_t flush();

  [[nodiscard]] const CommandLog& inner() const { return *inner_; }
  void fill_stats(StorageStats* out) const;

 private:
  std::unique_ptr<CommandLog> inner_;
  const bool defer_sync_;
  const std::uint64_t test_fsync_delay_us_;
  bool sync_pending_ = false;
  std::size_t batch_appends_ = 0;  // appends since the last inner sync

  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> sync_requests_{0};
  std::atomic<std::uint64_t> syncs_{0};
  std::atomic<std::uint64_t> max_batch_{0};
};

// One replica's stable storage: log + checkpoint + recovery bookkeeping.
// All methods run on the owning replica's execution thread except stats(),
// which is safe from any thread.
class ReplicaStorage {
 public:
  explicit ReplicaStorage(StorageOptions opt);

  [[nodiscard]] CommandLog& log() { return *log_; }
  [[nodiscard]] bool durable() const { return !opt_.dir.empty(); }
  // True when boot found prior state (a non-empty log or a checkpoint):
  // the hosted protocol should replay and, on a live mesh, catch up.
  [[nodiscard]] bool recovering() const { return boot_recovering_; }

  // --- group commit ---
  [[nodiscard]] bool sync_pending() const { return log_->sync_pending(); }
  void flush() { (void)log_->flush(); }

  // --- checkpoints ---
  [[nodiscard]] Timestamp recovery_floor() const {
    return checkpoint_ ? checkpoint_->last_applied : kZeroTimestamp;
  }
  [[nodiscard]] const std::optional<Checkpoint>& checkpoint() const {
    return checkpoint_;
  }
  // Latest checkpoint, serialized ("" = none) — served to recovering peers.
  [[nodiscard]] std::string encoded_checkpoint() const;
  // Restores `sm` from the boot checkpoint. Returns false if there is none.
  bool restore_into(StateMachine& sm) const;
  // Installs a checkpoint received from a peer during catch-up: restores
  // `sm`, truncates the covered log prefix and (when durable) persists the
  // checkpoint so the next restart starts from it. Throws CodecError on a
  // malformed blob.
  void install_checkpoint(std::string_view blob, StateMachine& sm);
  // Called once per executed command, in execution order. Takes + persists
  // a checkpoint of `sm` every `checkpoint_every` commands (covering `ts`,
  // the command's commit timestamp) and truncates the covered log prefix.
  void note_commit(const StateMachine& sm, Timestamp ts);

  void count_held_message() {
    held_messages_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] StorageStats stats() const;

 private:
  void persist_checkpoint(const Checkpoint& cp);
  [[nodiscard]] std::string wal_path() const;
  [[nodiscard]] std::string checkpoint_path() const;

  StorageOptions opt_;
  std::unique_ptr<GroupCommitLog> log_;
  std::optional<Checkpoint> checkpoint_;
  std::uint64_t commits_since_checkpoint_ = 0;
  bool boot_recovering_ = false;
  std::atomic<std::uint64_t> held_messages_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
};

// The shared storage half of a runtime ProtocolEnv. NodeRuntime and
// RtCluster's replica used to duplicate the same inline `CommandLog&`
// accessor over a hardwired MemLog; both now inherit this base, so the
// pluggable log, the recovery floor and the catch-up checkpoint hook are
// wired identically in every real-clock runtime.
class StorageBackedEnv : public ProtocolEnv {
 public:
  explicit StorageBackedEnv(StorageOptions opt) : storage_(std::move(opt)) {}

  [[nodiscard]] CommandLog& log() final { return storage_.log(); }
  [[nodiscard]] Timestamp recovery_floor() const final {
    return storage_.recovery_floor();
  }
  [[nodiscard]] std::string encoded_checkpoint() const final {
    return storage_.encoded_checkpoint();
  }

  [[nodiscard]] ReplicaStorage& storage() { return storage_; }
  [[nodiscard]] const ReplicaStorage& storage() const { return storage_; }

 protected:
  ReplicaStorage storage_;
};

}  // namespace crsm
