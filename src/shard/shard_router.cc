#include "shard/shard_router.h"

#include <stdexcept>

#include "kv/kv_store.h"

namespace crsm {

ShardRouter::ShardRouter(std::size_t num_shards) : num_shards_(num_shards) {
  if (num_shards == 0) throw std::invalid_argument("ShardRouter: num_shards == 0");
}

ShardId ShardRouter::shard_of_key(std::string_view key) const {
  return static_cast<ShardId>(kv_key_hash(key) % num_shards_);
}

ShardId ShardRouter::shard_of(const Command& cmd) const {
  return shard_of_key(KvRequest::decode(cmd.payload).key);
}

}  // namespace crsm
