// A sharded deployment: N independent replica groups behind one submit API.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/command.h"
#include "common/types.h"
#include "shard/shard_router.h"
#include "sim/sim_world.h"

namespace crsm {

struct ShardedClusterOptions {
  std::size_t num_shards = 1;
  // Template for every group: topology, skew, jitter, logging. Each group
  // gets its own SimWorld with a seed forked from `world.seed`, so groups
  // evolve independently but the whole cluster stays deterministic.
  SimWorldOptions world;
};

// Owns one SimWorld per shard, all running the same protocol and state
// machine factories, and multiplexes client submissions across them via a
// ShardRouter. Groups share nothing — no messages, logs or clocks cross a
// group boundary — which is exactly why aggregate throughput scales with
// the shard count (each group is its own commit pipeline).
//
// Each group runs on its own virtual clock. run_until(t) advances every
// group to time t; because groups are independent this is equivalent to
// running them concurrently.
class ShardedCluster {
 public:
  // Like SimWorld::CommitHook, with the originating shard prepended.
  using CommitHook =
      std::function<void(ShardId, ReplicaId, const Command&, Timestamp, bool)>;

  ShardedCluster(ShardedClusterOptions opt,
                 const SimWorld::ProtocolFactory& protocol_factory,
                 const SimWorld::StateMachineFactory& sm_factory);

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  // Calls start() on every group; must be called once before running.
  void start();

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t replicas_per_shard() const;
  [[nodiscard]] const ShardRouter& router() const { return router_; }
  [[nodiscard]] SimWorld& shard(ShardId s) { return *shards_[s]; }

  // Routes `cmd` by its KV key and enqueues it at replica `home` of the
  // owning group. Returns the group that received it.
  ShardId submit(ReplicaId home, Command cmd);

  // Advances every group's virtual clock to absolute time `t`.
  void run_until(Tick t);

  // Observes commits from every group (set before start()).
  void set_commit_hook(CommitHook hook);

  // Commands committed by group `s` (counted once each, at their origin
  // replica), for per-group throughput accounting.
  [[nodiscard]] std::uint64_t committed(ShardId s) const { return committed_[s]; }
  [[nodiscard]] std::uint64_t total_committed() const;

  // State digest of group `s` (replica 0's state machine). Distinct groups
  // hold disjoint key ranges, so digests evolve independently.
  [[nodiscard]] std::uint64_t shard_digest(ShardId s);

  // Aggregate wire traffic across every group's transport (messages, bytes,
  // drops, encode calls). Groups share nothing, so this is a plain sum.
  [[nodiscard]] TransportStats wire_stats() const;

 private:
  ShardRouter router_;
  std::vector<std::unique_ptr<SimWorld>> shards_;
  std::vector<std::uint64_t> committed_;
  CommitHook hook_;
};

}  // namespace crsm
