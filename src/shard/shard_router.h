// Key-space partitioning across independent replica groups (shards).
//
// Clock-RSM (and the Paxos/Mencius baselines) totally order all commands
// through a single replica group, so one group's commit pipeline caps total
// throughput. The shard layer scales past that limit by running N fully
// independent groups side by side and statically partitioning the KV key
// space among them: commands for different shards never synchronize, so
// aggregate throughput grows with the shard count while per-command commit
// latency stays that of a single group.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/command.h"
#include "common/types.h"

namespace crsm {

// Identifies one replica group in a sharded deployment; dense [0, N).
using ShardId = std::uint32_t;

// Stateless key -> group mapping by stable hashing (kv_key_hash, FNV-1a).
// Deterministic across processes, platforms and runs: every router with the
// same shard count agrees on the owner of every key, so clients, the
// harness and tests can each build their own instance.
class ShardRouter {
 public:
  explicit ShardRouter(std::size_t num_shards);

  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }

  [[nodiscard]] ShardId shard_of_key(std::string_view key) const;

  // Routes a KV command by the key inside its encoded KvRequest payload.
  // Throws CodecError if the payload is not a KvRequest.
  [[nodiscard]] ShardId shard_of(const Command& cmd) const;

 private:
  std::size_t num_shards_;
};

}  // namespace crsm
