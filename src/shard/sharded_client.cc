#include "shard/sharded_client.h"

namespace crsm {

ShardedSyncClient::ShardedSyncClient(
    const std::vector<ShardEndpoint>& endpoints)
    : router_(endpoints.size()) {
  conns_.reserve(endpoints.size());
  for (const ShardEndpoint& e : endpoints) {
    conns_.push_back(std::make_unique<net::SyncClient>(e.host, e.port));
  }
}

std::string ShardedSyncClient::call(const Command& cmd, int timeout_ms) {
  return conns_.at(router_.shard_of(cmd))->call(cmd, timeout_ms);
}

std::string ShardedSyncClient::read_call(const Command& cmd, int timeout_ms) {
  return conns_.at(router_.shard_of(cmd))->read_call(cmd, timeout_ms);
}

}  // namespace crsm
