#include "shard/sharded_cluster.h"

#include <utility>

namespace crsm {

namespace {

// SplitMix64-style fork so per-group seeds are decorrelated even when the
// base seeds of two experiments are adjacent integers.
std::uint64_t fork_seed(std::uint64_t base, std::size_t shard) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ShardedCluster::ShardedCluster(ShardedClusterOptions opt,
                               const SimWorld::ProtocolFactory& protocol_factory,
                               const SimWorld::StateMachineFactory& sm_factory)
    : router_(opt.num_shards), committed_(opt.num_shards, 0) {
  shards_.reserve(opt.num_shards);
  for (std::size_t s = 0; s < opt.num_shards; ++s) {
    SimWorldOptions wopt = opt.world;
    wopt.seed = fork_seed(opt.world.seed, s);
    shards_.push_back(
        std::make_unique<SimWorld>(std::move(wopt), protocol_factory, sm_factory));
    const ShardId sid = static_cast<ShardId>(s);
    shards_.back()->set_commit_hook(
        [this, sid](ReplicaId r, const Command& cmd, Timestamp ts, bool local) {
          if (local) ++committed_[sid];
          if (hook_) hook_(sid, r, cmd, ts, local);
        });
  }
}

void ShardedCluster::start() {
  for (auto& w : shards_) w->start();
}

std::size_t ShardedCluster::replicas_per_shard() const {
  return shards_.front()->num_replicas();
}

ShardId ShardedCluster::submit(ReplicaId home, Command cmd) {
  const ShardId s = router_.shard_of(cmd);
  shards_[s]->submit(home, std::move(cmd));
  return s;
}

void ShardedCluster::run_until(Tick t) {
  for (auto& w : shards_) w->sim().run_until(t);
}

void ShardedCluster::set_commit_hook(CommitHook hook) { hook_ = std::move(hook); }

std::uint64_t ShardedCluster::total_committed() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : committed_) sum += c;
  return sum;
}

std::uint64_t ShardedCluster::shard_digest(ShardId s) {
  return shards_[s]->state_machine(0).state_digest();
}

TransportStats ShardedCluster::wire_stats() const {
  TransportStats sum;
  for (const auto& w : shards_) {
    const TransportStats s = w->network().stats();
    sum.messages_sent += s.messages_sent;
    sum.messages_delivered += s.messages_delivered;
    sum.messages_dropped += s.messages_dropped;
    sum.bytes_sent += s.bytes_sent;
    sum.encode_calls += s.encode_calls;
    sum.backpressure_blocks += s.backpressure_blocks;
  }
  return sum;
}

}  // namespace crsm
