// Shard-aware blocking client: one SyncClient per replica group, commands
// routed by the key inside their KvRequest payload.
//
// The client side of the multi-group runtime (NodeConfig::num_groups). It
// holds a connection to one replica of every group and a ShardRouter built
// with the same group count, so client and servers agree on every key's
// owner by construction — the server-side kClientRedirect check only ever
// fires against clients whose router is stale or wrong. Like SyncClient:
// one instance per thread, no internal locking.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/command.h"
#include "common/types.h"
#include "net/sync_client.h"
#include "shard/shard_router.h"

namespace crsm {

// One replica's client-facing address in one group; index = ShardId.
struct ShardEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

class ShardedSyncClient {
 public:
  // Connects (blocking) to every endpoint; endpoints.size() is the group
  // count. Throws net::NetError on any connection failure.
  explicit ShardedSyncClient(const std::vector<ShardEndpoint>& endpoints);

  [[nodiscard]] std::size_t num_groups() const { return conns_.size(); }
  [[nodiscard]] const ShardRouter& router() const { return router_; }

  // The connection serving group g (for reads at a chosen replica, raw
  // send/recv, or server_id()).
  [[nodiscard]] net::SyncClient& group(ShardId g) { return *conns_.at(g); }

  // Routes by the command's KV key and blocks for the matching reply on the
  // owning group's connection. Throws CodecError if the payload is not a
  // KvRequest, net::WrongGroupError if the server disagrees with the route.
  [[nodiscard]] std::string call(const Command& cmd, int timeout_ms = -1);
  [[nodiscard]] std::string read_call(const Command& cmd, int timeout_ms = -1);

 private:
  ShardRouter router_;
  std::vector<std::unique_ptr<net::SyncClient>> conns_;
};

}  // namespace crsm
