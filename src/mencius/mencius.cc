#include "mencius/mencius.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "storage/recovery.h"

namespace crsm {

MenciusReplica::MenciusReplica(ProtocolEnv& env, std::vector<ReplicaId> replicas)
    : env_(env), replicas_(std::move(replicas)), skip_bound_(replicas_.size(), 0) {
  if (replicas_.empty()) throw std::invalid_argument("empty replica set");
  self_index_ = index_of(env_.self());
  next_own_ = self_index_;
}

std::size_t MenciusReplica::index_of(ReplicaId r) const {
  auto it = std::find(replicas_.begin(), replicas_.end(), r);
  if (it == replicas_.end()) throw std::invalid_argument("replica not in set");
  return static_cast<std::size_t>(it - replicas_.begin());
}

Slot MenciusReplica::next_own_slot_from(Slot at_least) const {
  const Slot n = replicas_.size();
  if (at_least <= self_index_) return self_index_;
  // Smallest s >= at_least with s ≡ self_index (mod n).
  const Slot k = (at_least - self_index_ + n - 1) / n;
  return self_index_ + k * n;
}

void MenciusReplica::broadcast(const Message& m) {
  // Encode-once fan-out via the environment's transport.
  env_.multicast(replicas_, m);
}

void MenciusReplica::start() {
  const auto& records = env_.log().records();
  if (records.empty()) return;
  // Crash recovery: committed slots replay in slot order; unresolved
  // PREPAREs are restaged (a proposed slot must never be executed as a
  // skip); the replica continues as a learner (see the class comment for
  // why neither proposing nor skip-executing is sound after a restart).
  learner_mode_ = true;
  ReplayResult rr = replay_log(records);
  for (const LogRecord& r : rr.committed) {
    ++stats_.executed;
    env_.deliver(r.cmd, r.ts, /*local_origin=*/false);
  }
  if (!rr.committed.empty()) next_exec_ = rr.committed.back().ts.ticks + 1;
  for (const LogRecord& r : rr.unresolved) {
    if (r.ts.ticks < next_exec_) continue;
    SlotState& st = slots_[r.ts.ticks];
    st.cmd = r.cmd;
    st.has_cmd = true;
  }
  Slot floor = next_exec_;
  for (const LogRecord& r : records) floor = std::max(floor, r.ts.ticks + 1);
  next_own_ = std::max(next_own_, next_own_slot_from(floor));
}

void MenciusReplica::submit(Command cmd) {
  if (learner_mode_) {
    // See the class comment: a restarted replica must not propose. The
    // client sees no reply and retries elsewhere (at-least-once).
    (void)cmd;
    ++stats_.rejected;
    return;
  }
  const Slot s = next_own_;
  next_own_ = s + replicas_.size();
  ++stats_.proposed;
  // Write-ahead: the proposal reaches stable storage before any replica can
  // see it, so a crash between broadcast and restart can never lead to the
  // same slot being proposed again with a different command.
  env_.log().append(LogRecord::prepare(Timestamp{s, env_.self()}, cmd));
  env_.log().sync();
  Message m;
  m.type = MsgType::kMenPropose;
  m.slot = s;
  m.cmd = std::move(cmd);
  broadcast(m);  // the owner acknowledges its own proposal via loopback
}

void MenciusReplica::on_message(const Message& m) {
  switch (m.type) {
    case MsgType::kMenPropose:
      handle_propose(m);
      return;
    case MsgType::kMenAck:
      handle_ack(m);
      return;
    default:
      return;
  }
}

void MenciusReplica::handle_propose(const Message& m) {
  if (owner(m.slot) != m.from) return;  // only owners may propose a slot
  const std::size_t from_idx = index_of(m.from);

  if (m.slot >= next_exec_) {
    SlotState& st = slots_[m.slot];
    st.cmd = m.cmd;
    st.has_cmd = true;
    // Our own loopback already hit stable storage in submit() (write-ahead);
    // re-appending would double the WAL and pay a second fsync per proposal.
    if (m.from != env_.self()) {
      env_.log().append(LogRecord::prepare(Timestamp{m.slot, m.from}, m.cmd));
      env_.log().sync();
    }
  }

  // Owners propose their slots in increasing order and announce skips before
  // jumping ahead (FIFO), so every own slot of the sender below this one is
  // already accounted for.
  skip_bound_[from_idx] = std::max(skip_bound_[from_idx], m.slot);

  if (m.from != env_.self()) {
    // Promise to skip our own unused slots below the proposed slot, so the
    // proposer does not wait for rounds we will never use. The promise is
    // carried by the broadcast acknowledgement.
    const Slot own_floor = next_own_slot_from(m.slot);
    if (own_floor > next_own_) {
      stats_.skipped += (own_floor - next_own_) / replicas_.size();
      next_own_ = own_floor;
    }
  }

  Message ack;
  ack.type = MsgType::kMenAck;
  ack.slot = m.slot;
  ack.a = next_own_;  // skip bound: our own slots below this are used/skipped
  broadcast(ack);
  try_execute();
}

void MenciusReplica::handle_ack(const Message& m) {
  const std::size_t from_idx = index_of(m.from);
  skip_bound_[from_idx] = std::max(skip_bound_[from_idx], static_cast<Slot>(m.a));
  if (m.slot >= next_exec_) {
    slots_[m.slot].acks.insert(m.from);
  }
  try_execute();
}

void MenciusReplica::try_execute() {
  for (;;) {
    auto it = slots_.find(next_exec_);
    if (it != slots_.end() && it->second.has_cmd) {
      SlotState& st = it->second;
      if (st.acks.size() < majority(replicas_.size())) return;
      SlotState done = std::move(st);
      slots_.erase(it);
      const ReplicaId own = owner(next_exec_);
      const Timestamp ts{next_exec_, own};
      env_.log().append(LogRecord::commit(ts));
      env_.log().sync();  // durability point for the client reply
      ++next_exec_;
      ++stats_.executed;
      env_.deliver(done.cmd, ts, own == env_.self());
      continue;
    }
    // Unproposed slot: executable as a skip only once its owner promised
    // not to use it. Acknowledgements prove a slot *was* proposed, so a
    // slot with recorded acks (entry present) always waits for its payload:
    // senders announce skips before proposing past them, and channels are
    // FIFO, so a skip bound never overtakes the proposal it covers. That
    // inference needs channel continuity, which a restarted replica lost —
    // in learner mode a missing slot is indistinguishable from a missed
    // proposal, so it is never skipped (the learner stalls at its gap).
    if (it == slots_.end() && !learner_mode_ &&
        skip_bound_[next_exec_ % replicas_.size()] > next_exec_) {
      ++next_exec_;
      continue;
    }
    return;
  }
}

}  // namespace crsm
