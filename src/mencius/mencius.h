// Mencius-bcast baseline (Section IV-C).
//
// Slot ownership rotates round-robin: slot s belongs to replica s mod N.
// Each replica proposes its clients' commands in its own slots. When a
// replica acknowledges a proposal for slot s it also promises to skip its
// own unused slots below s; the promise (a "skip bound") rides on the
// broadcast acknowledgement. A slot executes once it is majority-accepted
// and every smaller slot is known filled (executed or skipped) — which is
// exactly where the delayed-commit problem comes from: a command may wait
// for concurrent commands from other replicas (balanced workloads), or for
// skip promises that take a full round trip (imbalanced workloads).
//
// The paper evaluates Mencius-bcast in failure-free runs only; like the
// paper's implementation, this one does not include Mencius' revocation
// mechanism for crashed coordinators.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/message.h"
#include "common/types.h"
#include "rsm/protocol.h"

namespace crsm {

class MenciusReplica final : public ReplicaProtocol {
 public:
  MenciusReplica(ProtocolEnv& env, std::vector<ReplicaId> replicas);

  // Crash-restart recovery: re-delivers the committed prefix from the log,
  // then rejoins as a *learner*. Without Mencius' revocation mechanism a
  // restarted replica can neither propose nor skip-execute safely:
  //  * proposing may reuse an own slot a pre-crash skip promise already
  //    burned at some peers (the promise is soft state, not in the WAL), so
  //    peers would split between skip and fill;
  //  * skip-executing trusts "skip bound B + FIFO => every used slot < B
  //    was already delivered to me", which a channel discontinuity voids —
  //    the bound jumps over proposals that were delivered only to others.
  // (Both divergences were found by the DST swarm; minimized scenarios are
  // regression tests in tests/dst_test.cc.) A learner still acks — its skip
  // promises let the survivors resume — and still executes contiguously
  // filled slots, but it stalls at the first slot it cannot prove, and
  // rejects new client commands (stats().rejected counts them).
  void start() override;
  void submit(Command cmd) override;
  void on_message(const Message& m) override;
  [[nodiscard]] std::string name() const override { return "Mencius-bcast"; }

  [[nodiscard]] ReplicaId owner(Slot s) const {
    return replicas_[s % replicas_.size()];
  }
  [[nodiscard]] Slot executed_upto() const { return next_exec_; }

  struct Stats {
    std::uint64_t proposed = 0;
    std::uint64_t executed = 0;
    std::uint64_t skipped = 0;
    std::uint64_t rejected = 0;  // submits refused in learner (post-crash) mode
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool learner_mode() const { return learner_mode_; }

 private:
  struct SlotState {
    Command cmd;
    bool has_cmd = false;
    std::set<ReplicaId> acks;
  };

  void handle_propose(const Message& m);
  void handle_ack(const Message& m);
  void try_execute();
  void broadcast(const Message& m);
  [[nodiscard]] std::size_t index_of(ReplicaId r) const;
  // Smallest slot owned by this replica that is >= `at_least`.
  [[nodiscard]] Slot next_own_slot_from(Slot at_least) const;

  ProtocolEnv& env_;
  std::vector<ReplicaId> replicas_;
  std::size_t self_index_ = 0;

  std::map<Slot, SlotState> slots_;  // proposed slots not yet executed
  // skip_bound_[k]: every slot owned by replicas_[k] below this bound that
  // was not proposed is skipped.
  std::vector<Slot> skip_bound_;
  Slot next_own_ = 0;   // smallest own slot not yet used or skipped
  Slot next_exec_ = 0;  // next slot to execute
  bool learner_mode_ = false;  // set by crash recovery; see class comment
  Stats stats_;
};

}  // namespace crsm
