// Closed-form commit latency models (paper Table II, Section IV).
//
// All functions take a one-way LatencyMatrix and return milliseconds.
// median(S) is the element at index floor(|S|/2) of the ascending sort of S,
// where S includes the zero self-distance — exactly the cost of reaching a
// majority quorum.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/topology.h"

namespace crsm {

class LatencyModel {
 public:
  explicit LatencyModel(LatencyMatrix m) : d_(std::move(m)) {}

  [[nodiscard]] const LatencyMatrix& matrix() const { return d_; }
  [[nodiscard]] std::size_t n() const { return d_.size(); }

  // --- building blocks ---
  // 2 * median({d(i,k)}): round trip to a majority from i.
  [[nodiscard]] double majority_rtt(std::size_t i) const;
  // max_k d(i,k): one-way to the farthest replica.
  [[nodiscard]] double max_oneway(std::size_t i) const;
  // max_j median_k(d(j,k) + d(k,i)): worst two-hop majority path into i.
  [[nodiscard]] double prefix_replication(std::size_t i) const;

  // --- Clock-RSM (Algorithm 1 + 2, Table II bottom row) ---
  // Balanced: max(lc1, lc2_best, lc3_worst).
  [[nodiscard]] double clock_rsm_balanced(std::size_t i) const;
  // Imbalanced, moderate/heavy load: max(lc1, lc2_best).
  [[nodiscard]] double clock_rsm_imbalanced(std::size_t i) const;
  // Imbalanced, light load with the CLOCKTIME extension (period delta_ms):
  // max(lc1, lc2_best + delta).
  [[nodiscard]] double clock_rsm_imbalanced_light(std::size_t i, double delta_ms) const;
  // Imbalanced, light load without the extension: 2 * max_oneway.
  [[nodiscard]] double clock_rsm_imbalanced_light_no_ext(std::size_t i) const;

  // --- Multi-Paxos (Table II top row) ---
  [[nodiscard]] double paxos(std::size_t leader, std::size_t i) const;
  // --- Paxos-bcast ---
  // Table II row formula for non-leader replicas:
  // d(i,l) + 2*median({d(l,k)}). This is what the paper plugs into the
  // Figure 7 / Table IV numerical sweeps.
  [[nodiscard]] double paxos_bcast(std::size_t leader, std::size_t i) const;
  // The tighter Section IV-B text derivation:
  // d(i,l) + median_k(d(l,k) + d(k,i)). Matches the simulator exactly.
  [[nodiscard]] double paxos_bcast_precise(std::size_t leader, std::size_t i) const;

  // --- Mencius-bcast ---
  [[nodiscard]] double mencius_bcast_imbalanced(std::size_t i) const;
  // Balanced: [q, q + max_oneway], q = Clock-RSM balanced latency.
  [[nodiscard]] std::pair<double, double> mencius_bcast_balanced(std::size_t i) const;

  // Leader minimizing the mean per-replica latency (how the paper picks the
  // Paxos-bcast leader in the Figure 7 / Table IV sweeps).
  [[nodiscard]] std::size_t best_leader_paxos_bcast() const;
  [[nodiscard]] std::size_t best_leader_paxos() const;

 private:
  LatencyMatrix d_;
};

// Aggregates for the Figure 7 / Table IV sweep over one group size.
struct GroupSweepResult {
  std::size_t group_size = 0;
  std::size_t num_groups = 0;
  // Means over every replica of every group.
  double paxos_bcast_avg_all = 0.0;
  double clock_rsm_avg_all = 0.0;
  // Means over each group's worst replica.
  double paxos_bcast_avg_highest = 0.0;
  double clock_rsm_avg_highest = 0.0;
  // Table IV: replicas where Clock-RSM is lower / not lower than
  // Paxos-bcast, with mean absolute and relative deltas per class.
  double improved_fraction = 0.0;
  double improved_abs_ms = 0.0;   // mean (paxos - clock) over improved
  double improved_rel = 0.0;      // mean (paxos - clock)/paxos over improved
  double regressed_fraction = 0.0;
  double regressed_abs_ms = 0.0;  // mean (clock - paxos) over the rest
  double regressed_rel = 0.0;
};

// Sweeps every k-subset of the sites of `all` (paper: the 7 EC2 sites),
// comparing Clock-RSM (balanced) against Paxos-bcast with its best leader.
[[nodiscard]] GroupSweepResult sweep_groups(const LatencyMatrix& all, std::size_t k);

}  // namespace crsm
