#include "analysis/latency_model.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/stats.h"

namespace crsm {

double LatencyModel::majority_rtt(std::size_t i) const {
  return 2.0 * paper_median(d_.row(i));
}

double LatencyModel::max_oneway(std::size_t i) const {
  return max_of(d_.row(i));
}

double LatencyModel::prefix_replication(std::size_t i) const {
  // max over originators j of the majority (median) of two-hop paths
  // j -> k -> i: the slowest concurrent command's majority replication, as
  // observed from i.
  double worst = 0.0;
  for (std::size_t j = 0; j < n(); ++j) {
    std::vector<double> two_hop(n());
    for (std::size_t k = 0; k < n(); ++k) {
      two_hop[k] = d_.oneway_ms(j, k) + d_.oneway_ms(k, i);
    }
    worst = std::max(worst, paper_median(std::move(two_hop)));
  }
  return worst;
}

double LatencyModel::clock_rsm_balanced(std::size_t i) const {
  return std::max({majority_rtt(i), max_oneway(i), prefix_replication(i)});
}

double LatencyModel::clock_rsm_imbalanced(std::size_t i) const {
  return std::max(majority_rtt(i), max_oneway(i));
}

double LatencyModel::clock_rsm_imbalanced_light(std::size_t i, double delta_ms) const {
  return std::max(majority_rtt(i), max_oneway(i) + delta_ms);
}

double LatencyModel::clock_rsm_imbalanced_light_no_ext(std::size_t i) const {
  return 2.0 * max_oneway(i);
}

double LatencyModel::paxos(std::size_t leader, std::size_t i) const {
  const double base = 2.0 * paper_median(d_.row(leader));
  if (i == leader) return base;
  return 2.0 * d_.oneway_ms(i, leader) + base;
}

double LatencyModel::paxos_bcast(std::size_t leader, std::size_t i) const {
  const double base = 2.0 * paper_median(d_.row(leader));
  if (i == leader) return base;
  return d_.oneway_ms(i, leader) + base;
}

double LatencyModel::paxos_bcast_precise(std::size_t leader, std::size_t i) const {
  if (i == leader) return 2.0 * paper_median(d_.row(leader));
  std::vector<double> two_hop(n());
  for (std::size_t k = 0; k < n(); ++k) {
    two_hop[k] = d_.oneway_ms(leader, k) + d_.oneway_ms(k, i);
  }
  return d_.oneway_ms(i, leader) + paper_median(std::move(two_hop));
}

double LatencyModel::mencius_bcast_imbalanced(std::size_t i) const {
  return 2.0 * max_oneway(i);
}

std::pair<double, double> LatencyModel::mencius_bcast_balanced(std::size_t i) const {
  const double q = clock_rsm_balanced(i);
  return {q, q + max_oneway(i)};
}

namespace {

template <typename PerReplica>
std::size_t best_leader(std::size_t n, PerReplica&& latency_with_leader) {
  std::size_t best = 0;
  double best_avg = std::numeric_limits<double>::max();
  for (std::size_t l = 0; l < n; ++l) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += latency_with_leader(l, i);
    if (sum < best_avg) {
      best_avg = sum;
      best = l;
    }
  }
  return best;
}

}  // namespace

std::size_t LatencyModel::best_leader_paxos_bcast() const {
  return best_leader(n(), [this](std::size_t l, std::size_t i) {
    return paxos_bcast_precise(l, i);
  });
}

std::size_t LatencyModel::best_leader_paxos() const {
  return best_leader(n(), [this](std::size_t l, std::size_t i) {
    return paxos(l, i);
  });
}

GroupSweepResult sweep_groups(const LatencyMatrix& all, std::size_t k) {
  if (k == 0 || k > all.size()) throw std::invalid_argument("bad group size");
  GroupSweepResult out;
  out.group_size = k;

  std::vector<double> paxos_all;
  std::vector<double> clock_all;
  std::vector<double> paxos_highest;
  std::vector<double> clock_highest;
  std::size_t improved = 0;
  std::size_t regressed = 0;
  double improved_abs = 0.0;
  double regressed_abs = 0.0;

  for (const auto& group : combinations(all.size(), k)) {
    ++out.num_groups;
    LatencyModel model(all.submatrix(group));
    const std::size_t leader = model.best_leader_paxos_bcast();
    double pmax = 0.0, cmax = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double p = model.paxos_bcast_precise(leader, i);
      const double c = model.clock_rsm_balanced(i);
      paxos_all.push_back(p);
      clock_all.push_back(c);
      pmax = std::max(pmax, p);
      cmax = std::max(cmax, c);
      if (c < p - 1e-9) {
        ++improved;
        improved_abs += p - c;
      } else {
        ++regressed;
        regressed_abs += c - p;
      }
    }
    paxos_highest.push_back(pmax);
    clock_highest.push_back(cmax);
  }

  out.paxos_bcast_avg_all = mean_of(paxos_all);
  out.clock_rsm_avg_all = mean_of(clock_all);
  out.paxos_bcast_avg_highest = mean_of(paxos_highest);
  out.clock_rsm_avg_highest = mean_of(clock_highest);
  const double total = static_cast<double>(improved + regressed);
  out.improved_fraction = improved / total;
  out.regressed_fraction = regressed / total;
  // Relative deltas are normalized by the overall Paxos-bcast mean, which is
  // how the paper's Table IV percentages are computed (e.g. 3 replicas:
  // 9.9 ms / 158 ms ~= 6.2%).
  if (improved > 0) {
    out.improved_abs_ms = improved_abs / improved;
    out.improved_rel = out.improved_abs_ms / out.paxos_bcast_avg_all;
  }
  if (regressed > 0) {
    out.regressed_abs_ms = regressed_abs / regressed;
    out.regressed_rel = out.regressed_abs_ms / out.paxos_bcast_avg_all;
  }
  return out;
}

}  // namespace crsm
