#include "clock/system_clock.h"

#include <chrono>

namespace crsm {

SystemClock::SystemClock(std::int64_t offset_us) : offset_us_(offset_us) {}

Tick SystemClock::now_us() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  std::int64_t v = us + offset_us_;
  if (v < 0) v = 0;
  Tick t = static_cast<Tick>(v);
  if (t <= last_) t = last_ + 1;
  last_ = t;
  return t;
}

}  // namespace crsm
