// Real monotonic clock used by the multithreaded runtime.
#pragma once

#include "clock/clock_source.h"
#include "common/types.h"

namespace crsm {

// Wraps the OS monotonic clock (the paper uses clock_gettime on Linux with
// NTP keeping wall time loosely synchronized). Within a single process all
// replicas share one time base, so "skew" is zero; an optional fixed offset
// lets tests and the runtime inject skew explicitly.
class SystemClock final : public ClockSource {
 public:
  explicit SystemClock(std::int64_t offset_us = 0);

  [[nodiscard]] Tick now_us() override;

 private:
  std::int64_t offset_us_;
  Tick last_ = 0;
};

}  // namespace crsm
