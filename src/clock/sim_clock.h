// Simulated physical clock with configurable skew and drift.
#pragma once

#include <functional>

#include "clock/clock_source.h"
#include "common/types.h"

namespace crsm {

// Models an NTP-disciplined clock inside the discrete-event simulator.
// local_time = simulation_time * rate + skew, clamped to be strictly
// increasing across reads. Skew models a constant NTP offset; rate models
// oscillator drift (1.0 = perfect).
class SimClock final : public ClockSource {
 public:
  // `sim_now` reads the simulator's current virtual time in microseconds.
  SimClock(std::function<Tick()> sim_now, double skew_us = 0.0, double rate = 1.0);

  [[nodiscard]] Tick now_us() override;

  // Converts a delay expressed in this clock's local time domain to the
  // simulator's time domain (used to honor timer requests under drift).
  [[nodiscard]] Tick local_delay_to_sim(Tick local_delay_us) const;

  [[nodiscard]] double skew_us() const { return skew_us_; }
  [[nodiscard]] double rate() const { return rate_; }

 private:
  std::function<Tick()> sim_now_;
  double skew_us_;
  double rate_;
  Tick last_ = 0;
};

}  // namespace crsm
