// Simulated physical clock with configurable skew and drift.
#pragma once

#include <functional>

#include "clock/clock_source.h"
#include "common/types.h"

namespace crsm {

// Models an NTP-disciplined clock inside the discrete-event simulator.
// local_time = simulation_time * rate + skew, clamped to be strictly
// increasing across reads. Skew models a constant NTP offset; rate models
// oscillator drift (1.0 = perfect).
class SimClock final : public ClockSource {
 public:
  // `sim_now` reads the simulator's current virtual time in microseconds.
  SimClock(std::function<Tick()> sim_now, double skew_us = 0.0, double rate = 1.0);

  [[nodiscard]] Tick now_us() override;

  // Converts a delay expressed in this clock's local time domain to the
  // simulator's time domain (used to honor timer requests under drift).
  [[nodiscard]] Tick local_delay_to_sim(Tick local_delay_us) const;

  [[nodiscard]] double skew_us() const { return skew_us_; }
  [[nodiscard]] double rate() const { return rate_; }

  // Mid-run mutation hooks (DST fault injection). Reads stay strictly
  // increasing: a backward step makes the clock plateau (advance by 1 us per
  // read) until raw time catches up, which is exactly how a monotone-clamped
  // NTP client behaves.
  //
  // step_us(): an NTP-style step of the clock by `delta_us` (may be
  // negative) at the current instant.
  void step_us(double delta_us);
  // set_rate(): changes the oscillator rate without stepping the clock —
  // local time is continuous at the change point, only its slope changes.
  void set_rate(double rate);

 private:
  [[nodiscard]] double raw_now() const;
  void rebase();

  std::function<Tick()> sim_now_;
  double skew_us_;  // initial skew, kept for introspection
  double rate_;
  // Piecewise-linear local time: raw(sim) = local_at_anchor_ +
  // (sim - anchor_sim_) * rate_. Mutations rebase the anchor to "now".
  Tick anchor_sim_ = 0;
  double local_at_anchor_ = 0.0;
  Tick last_ = 0;
};

}  // namespace crsm
