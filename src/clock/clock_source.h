// Loosely synchronized physical clock abstraction (Section II-A).
#pragma once

#include "common/types.h"

namespace crsm {

// A per-replica physical clock. Clock-RSM requires only that (a) each
// replica's clock is monotonically increasing and (b) clocks are *loosely*
// synchronized — correctness never depends on the skew bound, only latency
// does (Section III-B, line 8 wait).
//
// Implementations must guarantee that consecutive calls return strictly
// increasing values; the protocols rely on this to send messages in
// timestamp order over FIFO channels.
class ClockSource {
 public:
  virtual ~ClockSource() = default;

  // Current local physical time in microseconds, strictly increasing across
  // calls on the same replica.
  [[nodiscard]] virtual Tick now_us() = 0;
};

}  // namespace crsm
