#include "clock/sim_clock.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace crsm {

SimClock::SimClock(std::function<Tick()> sim_now, double skew_us, double rate)
    : sim_now_(std::move(sim_now)), skew_us_(skew_us), rate_(rate),
      local_at_anchor_(skew_us) {
  if (!sim_now_) throw std::invalid_argument("SimClock needs a time source");
  if (rate_ <= 0.0) throw std::invalid_argument("clock rate must be positive");
}

double SimClock::raw_now() const {
  return local_at_anchor_ +
         static_cast<double>(sim_now_() - anchor_sim_) * rate_;
}

void SimClock::rebase() {
  const Tick now = sim_now_();
  local_at_anchor_ = raw_now();
  anchor_sim_ = now;
}

void SimClock::step_us(double delta_us) {
  rebase();
  local_at_anchor_ += delta_us;
}

void SimClock::set_rate(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("clock rate must be positive");
  rebase();
  rate_ = rate;
}

Tick SimClock::now_us() {
  const double raw = raw_now();
  // Physical clocks never run backwards and the protocols additionally rely
  // on strict monotonicity across reads (to send in timestamp order).
  Tick t = raw <= 0.0 ? 0 : static_cast<Tick>(raw);
  if (t <= last_) t = last_ + 1;
  last_ = t;
  return t;
}

Tick SimClock::local_delay_to_sim(Tick local_delay_us) const {
  return static_cast<Tick>(std::ceil(static_cast<double>(local_delay_us) / rate_));
}

}  // namespace crsm
