#include "harness/latency_experiment.h"

#include <memory>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "clockrsm/clock_rsm.h"
#include "kv/kv_store.h"
#include "mencius/mencius.h"
#include "paxos/multi_paxos.h"
#include "util/rng.h"

namespace crsm {

LatencyStats LatencyExperimentResult::aggregate() const {
  LatencyStats all;
  for (const LatencyStats& s : per_replica) all.merge(s);
  return all;
}

LatencyStats LatencyExperimentResult::aggregate_reads() const {
  LatencyStats all;
  for (const LatencyStats& s : read_per_replica) all.merge(s);
  return all;
}

namespace {

// One closed-loop client: submit, wait for the reply at the home replica
// (commit for writes, read service for reads), think, repeat.
struct ClientState {
  ClientId id = 0;
  ReplicaId home = 0;
  std::uint64_t next_seq = 1;
  std::uint64_t awaiting_seq = 0;
  bool awaiting_read = false;
  Tick sent_at = 0;
};

}  // namespace

LatencyExperimentResult run_latency_experiment(
    const LatencyExperimentOptions& opt, const SimWorld::ProtocolFactory& factory) {
  const std::size_t n = opt.matrix.size();

  SimWorldOptions wopt;
  wopt.matrix = opt.matrix;
  wopt.seed = opt.seed;
  wopt.jitter_ms = opt.jitter_ms;
  wopt.clock_skew_ms = opt.clock_skew_ms;

  SimWorld world(wopt, factory, [] { return std::make_unique<KvStore>(); });

  LatencyExperimentResult result;
  result.protocol = world.protocol(0).name();
  result.per_replica.resize(n);
  result.read_per_replica.resize(n);

  const Tick warmup_us = static_cast<Tick>(opt.warmup_s * 1e6);
  const Tick end_us = warmup_us + static_cast<Tick>(opt.duration_s * 1e6);

  std::unordered_map<ClientId, ClientState> clients;
  Rng rng = world.rng().fork();

  auto issue = [&world, &rng, &opt](ClientState& c) {
    const std::string key =
        "key-" + std::to_string(rng.uniform_int(0, opt.workload.key_space - 1));
    Command cmd;
    cmd.client = c.id;
    cmd.seq = c.next_seq++;
    c.awaiting_seq = cmd.seq;
    c.sent_at = world.sim().now();
    if (opt.workload.read_fraction > 0.0 &&
        rng.bernoulli(opt.workload.read_fraction)) {
      KvRequest r;
      r.op = KvOp::kGet;
      r.key = key;
      cmd.payload = r.encode();
      c.awaiting_read = true;
      world.submit_read(c.home, std::move(cmd));
      return;
    }
    cmd.payload = KvRequest::sized_put(key, opt.workload.payload_bytes).encode();
    c.awaiting_read = false;
    world.submit(c.home, std::move(cmd));
  };

  // Shared completion path: record the op's latency and schedule the next
  // request after think time.
  auto complete = [&](ClientState& c, bool read) {
    c.awaiting_seq = 0;
    c.awaiting_read = false;
    const Tick now = world.sim().now();
    if (now > warmup_us && now <= end_us) {
      auto& stats = read ? result.read_per_replica : result.per_replica;
      stats[c.home].add(us_to_ms(now - c.sent_at));
      ++(read ? result.total_reads : result.total_commands);
    }
    if (now < end_us) {
      const double think =
          rng.uniform(opt.workload.think_min_ms, opt.workload.think_max_ms);
      const Tick delay = ms_to_us(think);
      ClientId id = c.id;
      world.sim().after(delay, [&clients, &issue, id] {
        auto cit = clients.find(id);
        if (cit != clients.end()) issue(cit->second);
      });
    }
  };

  // Reply handling: when the home replica executes a client's outstanding
  // command, record the commit latency and schedule the next request. A
  // read that rode the log (protocol without local reads) also lands here.
  world.set_commit_hook([&](ReplicaId replica, const Command& cmd, Timestamp,
                            bool local_origin) {
    if (!local_origin) return;
    auto it = clients.find(cmd.client);
    if (it == clients.end()) return;
    ClientState& c = it->second;
    if (replica != c.home || cmd.seq != c.awaiting_seq) return;
    complete(c, c.awaiting_read);
  });

  // Locally served reads (Clock-RSM's stability-based read path).
  world.set_read_hook(
      [&](ReplicaId replica, const Command& cmd, Timestamp, std::string_view) {
        auto it = clients.find(cmd.client);
        if (it == clients.end()) return;
        ClientState& c = it->second;
        if (replica != c.home || cmd.seq != c.awaiting_seq || !c.awaiting_read) {
          return;
        }
        complete(c, true);
      });

  world.start();

  // Create clients with staggered start times to avoid synchronized bursts.
  for (ReplicaId r = 0; r < n; ++r) {
    if (!opt.workload.is_active(r, n)) continue;
    for (std::size_t i = 0; i < opt.workload.clients_per_replica; ++i) {
      const ClientId id = make_client_id(r, i);
      clients.emplace(id, ClientState{.id = id, .home = r});
      const Tick start = ms_to_us(
          rng.uniform(0.0, std::max(opt.workload.think_max_ms, 1.0)));
      world.sim().after(start, [&clients, &issue, id] {
        auto cit = clients.find(id);
        if (cit != clients.end()) issue(cit->second);
      });
    }
  }

  world.sim().run_until(end_us);
  result.messages_sent = world.network().messages_sent();
  return result;
}

SimWorld::ProtocolFactory clock_rsm_factory(std::size_t n, bool clocktime_enabled,
                                            Tick delta_us) {
  ClockRsmOptions o;
  o.clocktime_enabled = clocktime_enabled;
  o.clocktime_delta_us = delta_us;
  return clock_rsm_factory(n, o);
}

SimWorld::ProtocolFactory clock_rsm_factory(std::size_t n,
                                            const ClockRsmOptions& opt) {
  std::vector<ReplicaId> spec(n);
  for (std::size_t i = 0; i < n; ++i) spec[i] = static_cast<ReplicaId>(i);
  return [spec, opt](ProtocolEnv& env, ReplicaId) {
    return std::make_unique<ClockRsmReplica>(env, spec, opt);
  };
}

SimWorld::ProtocolFactory paxos_factory(std::size_t n, ReplicaId leader,
                                        bool broadcast) {
  std::vector<ReplicaId> replicas(n);
  for (std::size_t i = 0; i < n; ++i) replicas[i] = static_cast<ReplicaId>(i);
  const PaxosMode mode = broadcast ? PaxosMode::kBroadcast : PaxosMode::kClassic;
  return [replicas, leader, mode](ProtocolEnv& env, ReplicaId) {
    return std::make_unique<PaxosReplica>(env, replicas, leader, mode);
  };
}

SimWorld::ProtocolFactory mencius_factory(std::size_t n) {
  std::vector<ReplicaId> replicas(n);
  for (std::size_t i = 0; i < n; ++i) replicas[i] = static_cast<ReplicaId>(i);
  return [replicas](ProtocolEnv& env, ReplicaId) {
    return std::make_unique<MenciusReplica>(env, replicas);
  };
}

}  // namespace crsm
