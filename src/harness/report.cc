#include "harness/report.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace crsm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t p = row[c].size(); p < width[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_ms(double ms, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, ms);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_count(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void print_cdf(std::ostream& os, const std::string& label,
               const std::vector<std::pair<double, double>>& cdf) {
  os << "# " << label << " (latency_ms cumulative_percent)\n";
  for (const auto& [lat, frac] : cdf) {
    os << fmt_ms(lat, 2) << ' ' << fmt_ms(frac * 100.0, 1) << '\n';
  }
}

}  // namespace crsm
