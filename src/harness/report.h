// ASCII reporting helpers for benches and examples.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace crsm {

// A simple right-padded ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] std::string fmt_ms(double ms, int precision = 1);
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);
[[nodiscard]] std::string fmt_count(double v, int precision = 1);

// Prints a CDF as "latency_ms cumulative_percent" rows, one series per call
// (gnuplot-ready; mirrors the paper's Figures 3, 4 and 6).
void print_cdf(std::ostream& os, const std::string& label,
               const std::vector<std::pair<double, double>>& cdf);

}  // namespace crsm
