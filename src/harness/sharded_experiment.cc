#include "harness/sharded_experiment.h"

#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "kv/kv_store.h"
#include "util/rng.h"

namespace crsm {

LatencyStats ShardedExperimentResult::aggregate_latency() const {
  LatencyStats all;
  for (const LatencyStats& s : per_shard_latency) all.merge(s);
  return all;
}

namespace {

// One closed-loop client, bound to a single replica group: submit, wait for
// the commit reply at the home replica of that group, think, repeat.
struct ClientState {
  ClientId id = 0;
  ShardId shard = 0;
  ReplicaId home = 0;
  std::uint64_t next_seq = 1;
  std::uint64_t awaiting_seq = 0;
  Tick sent_at = 0;
};

}  // namespace

ShardedExperimentResult run_sharded_experiment(
    const ShardedExperimentOptions& opt, const SimWorld::ProtocolFactory& factory) {
  const std::size_t n = opt.matrix.size();
  const std::size_t shards = opt.num_shards;

  ShardedClusterOptions copt;
  copt.num_shards = shards;
  copt.world.matrix = opt.matrix;
  copt.world.seed = opt.seed;
  copt.world.jitter_ms = opt.jitter_ms;
  copt.world.clock_skew_ms = opt.clock_skew_ms;

  ShardedCluster cluster(copt, factory, [] { return std::make_unique<KvStore>(); });

  ShardedExperimentResult result;
  result.protocol = cluster.shard(0).protocol(0).name();
  result.num_shards = shards;
  result.measured_s = opt.duration_s;
  result.per_shard_latency.resize(shards);
  result.per_shard_commands.assign(shards, 0);

  // Partition the workload key space across groups using the cluster's
  // router, so each group's clients only touch keys that group owns.
  std::vector<std::vector<std::string>> keys_by_shard(shards);
  for (std::size_t k = 0; k < opt.workload.key_space; ++k) {
    std::string key = "key-" + std::to_string(k);
    keys_by_shard[cluster.router().shard_of_key(key)].push_back(std::move(key));
  }
  for (std::size_t s = 0; s < shards; ++s) {
    if (keys_by_shard[s].empty()) {
      throw std::runtime_error(
          "run_sharded_experiment: key_space too small, shard " +
          std::to_string(s) + " owns no keys");
    }
  }

  const Tick warmup_us = static_cast<Tick>(opt.warmup_s * 1e6);
  const Tick end_us = warmup_us + static_cast<Tick>(opt.duration_s * 1e6);

  std::unordered_map<ClientId, ClientState> clients;
  // Per-group client randomness, forked from the experiment seed so adding
  // a group never perturbs the streams of existing groups.
  std::vector<Rng> rngs;
  {
    Rng root(opt.seed ^ 0x5eed5eed5eed5eedULL);
    for (std::size_t s = 0; s < shards; ++s) rngs.push_back(root.fork());
  }

  auto issue = [&](ClientState& c) {
    const std::vector<std::string>& pool = keys_by_shard[c.shard];
    const std::string& key =
        pool[rngs[c.shard].uniform_int(0, pool.size() - 1)];
    Command cmd;
    cmd.client = c.id;
    cmd.seq = c.next_seq++;
    cmd.payload = KvRequest::sized_put(key, opt.workload.payload_bytes).encode();
    c.awaiting_seq = cmd.seq;
    c.sent_at = cluster.shard(c.shard).sim().now();
    const ShardId routed = cluster.submit(c.home, std::move(cmd));
    if (routed != c.shard) {
      throw std::logic_error("run_sharded_experiment: router disagreement");
    }
  };

  cluster.set_commit_hook([&](ShardId shard, ReplicaId replica, const Command& cmd,
                              Timestamp, bool local_origin) {
    if (!local_origin) return;
    auto it = clients.find(cmd.client);
    if (it == clients.end()) return;
    ClientState& c = it->second;
    if (shard != c.shard || replica != c.home || cmd.seq != c.awaiting_seq) return;
    c.awaiting_seq = 0;
    SimWorld& world = cluster.shard(shard);
    const Tick now = world.sim().now();
    if (now > warmup_us && now <= end_us) {
      result.per_shard_latency[shard].add(us_to_ms(now - c.sent_at));
      ++result.per_shard_commands[shard];
      ++result.total_commands;
    }
    if (now < end_us) {
      const double think = rngs[shard].uniform(opt.workload.think_min_ms,
                                               opt.workload.think_max_ms);
      ClientId id = c.id;
      world.sim().after(ms_to_us(think), [&clients, &issue, id] {
        auto cit = clients.find(id);
        if (cit != clients.end()) issue(cit->second);
      });
    }
  });

  cluster.start();

  // Per-group closed-loop populations with staggered start times.
  for (std::size_t s = 0; s < shards; ++s) {
    for (ReplicaId r = 0; r < n; ++r) {
      if (!opt.workload.is_active(r, n)) continue;
      for (std::size_t i = 0; i < opt.workload.clients_per_replica; ++i) {
        const ClientId id =
            make_sharded_client_id(static_cast<std::uint32_t>(s), r, i);
        clients.emplace(id, ClientState{.id = id,
                                        .shard = static_cast<ShardId>(s),
                                        .home = r});
        const Tick start = ms_to_us(
            rngs[s].uniform(0.0, std::max(opt.workload.think_max_ms, 1.0)));
        cluster.shard(s).sim().after(start, [&clients, &issue, id] {
          auto cit = clients.find(id);
          if (cit != clients.end()) issue(cit->second);
        });
      }
    }
  }

  cluster.run_until(end_us);
  return result;
}

}  // namespace crsm
