// Runs a simulated geo-replication latency experiment end to end.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/sim_world.h"
#include "util/stats.h"
#include "util/topology.h"
#include "workload/workload.h"

namespace crsm {

struct ClockRsmOptions;  // clockrsm/clock_rsm.h

struct LatencyExperimentOptions {
  LatencyMatrix matrix;
  WorkloadOptions workload;
  std::uint64_t seed = 1;
  double warmup_s = 2.0;      // simulated seconds discarded
  double duration_s = 30.0;   // simulated seconds measured
  double clock_skew_ms = 2.0; // NTP-like skew, uniform per replica
  double jitter_ms = 0.0;     // network jitter
};

struct LatencyExperimentResult {
  std::string protocol;
  // Commit latency of commands originated at each replica, measured at the
  // originating replica (client-observed minus local RTT, which the paper
  // treats as negligible: ~0.6 ms inside a data center).
  std::vector<LatencyStats> per_replica;
  std::uint64_t total_commands = 0;
  std::uint64_t messages_sent = 0;
  // Read-op latency per home replica, when workload.read_fraction > 0.
  // Clock-RSM serves these from the local stability point; protocols
  // without a local read path answer them through the log, so their read
  // latency matches commit latency.
  std::vector<LatencyStats> read_per_replica;
  std::uint64_t total_reads = 0;

  [[nodiscard]] LatencyStats aggregate() const;
  [[nodiscard]] LatencyStats aggregate_reads() const;
};

// Builds a SimWorld with the given protocol factory, attaches closed-loop
// KV clients per the workload, runs warmup + duration of simulated time and
// returns per-replica commit latency statistics.
[[nodiscard]] LatencyExperimentResult run_latency_experiment(
    const LatencyExperimentOptions& opt, const SimWorld::ProtocolFactory& factory);

// Convenience protocol factories for the four protocols under study.
[[nodiscard]] SimWorld::ProtocolFactory clock_rsm_factory(std::size_t n,
                                                          bool clocktime_enabled = true,
                                                          Tick delta_us = 5'000);
// Full-options variant (durable runtimes enable catchup_on_recovery here).
[[nodiscard]] SimWorld::ProtocolFactory clock_rsm_factory(
    std::size_t n, const ClockRsmOptions& opt);
// clock_rsm_factory(n, {}) would silently pick the bool overload above
// ({} -> false disables CLOCKTIME, starving stability between writes);
// this deleted overload makes the empty braced list ambiguous instead,
// so callers must spell clock_rsm_factory(n, ClockRsmOptions{}).
SimWorld::ProtocolFactory clock_rsm_factory(std::size_t n,
                                            std::nullptr_t) = delete;
[[nodiscard]] SimWorld::ProtocolFactory paxos_factory(std::size_t n, ReplicaId leader,
                                                      bool broadcast);
[[nodiscard]] SimWorld::ProtocolFactory mencius_factory(std::size_t n);

}  // namespace crsm
