// Runs a sharded throughput/latency experiment: N independent replica
// groups, each with its own closed-loop client population over its own
// slice of the key space (the throughput-scaling scenario the single-group
// reproduction cannot express).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shard/sharded_cluster.h"
#include "sim/sim_world.h"
#include "util/stats.h"
#include "util/topology.h"
#include "workload/workload.h"

namespace crsm {

struct ShardedExperimentOptions {
  std::size_t num_shards = 1;
  // Topology of ONE replica group; every group uses the same matrix.
  LatencyMatrix matrix;
  // Client population of ONE group (clients_per_replica at each active
  // replica of each group, so total offered load scales with num_shards).
  WorkloadOptions workload;
  std::uint64_t seed = 1;
  double warmup_s = 1.0;      // simulated seconds discarded
  double duration_s = 10.0;   // simulated seconds measured
  double clock_skew_ms = 2.0;
  double jitter_ms = 0.0;
};

struct ShardedExperimentResult {
  std::string protocol;
  std::size_t num_shards = 0;
  double measured_s = 0.0;
  // Commit latency and committed-command counts per group, measured at the
  // originating replica inside the measurement window.
  std::vector<LatencyStats> per_shard_latency;
  std::vector<std::uint64_t> per_shard_commands;
  std::uint64_t total_commands = 0;

  // Aggregate committed commands per second across all groups.
  [[nodiscard]] double commands_per_sec() const {
    return measured_s > 0 ? static_cast<double>(total_commands) / measured_s : 0.0;
  }
  [[nodiscard]] LatencyStats aggregate_latency() const;
};

// Builds a ShardedCluster with the given protocol factory over KvStores,
// partitions the workload key space across groups with the cluster's
// router, attaches per-group closed-loop clients and runs warmup + duration
// of simulated time.
[[nodiscard]] ShardedExperimentResult run_sharded_experiment(
    const ShardedExperimentOptions& opt, const SimWorld::ProtocolFactory& factory);

}  // namespace crsm
