#include "dst/runner.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "clockrsm/clock_rsm.h"
#include "consensus/single_decree_paxos.h"
#include "harness/latency_experiment.h"
#include "kv/kv_store.h"
#include "rsm/history.h"
#include "sim/sim_world.h"
#include "util/topology.h"
#include "workload/workload.h"

namespace crsm::dst {

namespace {

// Drives the single-decree synod (reconfiguration's PROPOSE/DECIDE
// primitive) as a standalone "protocol": submit() proposes the command's
// payload as the consensus value; the decision is delivered exactly once
// with a fixed timestamp, so the generic trace invariants reduce to "every
// replica that decided, decided the same value". Crash faults are not
// generated for this mode: the synod keeps acceptor state in memory only
// (matching its use inside reconfiguration), so acceptor amnesia is out of
// model — partitions, delays, duplicates and dueling proposers are the
// interesting schedule here.
class ConsensusAdapter final : public ReplicaProtocol {
 public:
  ConsensusAdapter(ProtocolEnv& env, std::vector<ReplicaId> participants)
      : env_(env),
        paxos_(env, std::move(participants), /*instance=*/0,
               [this](const std::string& value) { on_decide(value); },
               /*retry_us=*/400'000) {}

  void submit(Command cmd) override { paxos_.propose(cmd.payload.str()); }

  void on_message(const Message& m) override {
    if (m.epoch != 0) return;
    paxos_.on_message(m);
  }

  [[nodiscard]] std::string name() const override { return "consensus"; }

 private:
  void on_decide(const std::string& value) {
    Command c;
    c.client = 1;
    c.seq = 1;
    c.payload = value;
    env_.deliver(c, Timestamp{1, 0}, /*local_origin=*/false);
  }

  ProtocolEnv& env_;
  SingleDecreePaxos paxos_;
};

SimWorld::ProtocolFactory make_factory(const ScenarioSpec& spec) {
  const std::size_t n = spec.replicas;
  switch (spec.protocol) {
    case Protocol::kClockRsm: {
      ClockRsmOptions o;
      if (spec.reconfig) {
        o.reconfig_enabled = true;
        o.fd_timeout_us = 400'000;
        o.fd_check_interval_us = 100'000;
        o.consensus_retry_us = 300'000;
      } else {
        // Without reconfiguration, plain log replay is not enough: commands
        // committed while a replica was down would leave a permanent hole it
        // later commits around (the stability vector jumps past the gap once
        // heartbeats resume — found by the first swarm runs). Section V-B
        // catch-up fetches the hole from live peers before the replica
        // resumes executing.
        o.catchup_on_recovery = true;
        o.catchup_interval_us = 100'000;
      }
      return clock_rsm_factory(n, o);
    }
    case Protocol::kPaxos:
      return paxos_factory(n, /*leader=*/0, /*broadcast=*/false);
    case Protocol::kPaxosBcast:
      return paxos_factory(n, /*leader=*/0, /*broadcast=*/true);
    case Protocol::kMencius:
      return mencius_factory(n);
    case Protocol::kConsensus: {
      std::vector<ReplicaId> participants(n);
      for (std::size_t i = 0; i < n; ++i) participants[i] = static_cast<ReplicaId>(i);
      return [participants](ProtocolEnv& env, ReplicaId) {
        return std::make_unique<ConsensusAdapter>(env, participants);
      };
    }
  }
  throw std::invalid_argument("unknown protocol");
}

Command make_put(ClientId client, std::uint64_t seq, const std::string& key,
                 const std::string& value) {
  Command c;
  c.client = client;
  c.seq = seq;
  KvRequest r;
  r.op = KvOp::kPut;
  r.key = key;
  r.value = value;
  c.payload = r.encode();
  return c;
}

Command make_get(ClientId client, std::uint64_t seq, const std::string& key) {
  Command c;
  c.client = client;
  c.seq = seq;
  KvRequest r;
  r.op = KvOp::kGet;
  r.key = key;
  c.payload = r.encode();
  return c;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

struct ClientState {
  ReplicaId home = 0;
  std::uint64_t next_seq = 1;
  std::uint64_t awaiting_seq = 0;
  bool awaiting_read = false;
  bool stopped = false;
};

}  // namespace

std::string failure_category(const std::string& failure) {
  const std::size_t colon = failure.find(':');
  return colon == std::string::npos ? failure : failure.substr(0, colon);
}

RunResult run_scenario(const ScenarioSpec& spec) {
  RunResult result;
  std::ostringstream trace;
  trace << "spec " << spec.summary() << '\n';

  SimWorldOptions wopt;
  wopt.matrix = LatencyMatrix::uniform(spec.replicas, spec.latency_ms);
  wopt.seed = spec.seed;
  wopt.jitter_ms = spec.jitter_ms;
  wopt.clock_skew_ms = spec.clock_skew_ms;
  wopt.clock_drift = spec.clock_drift;
  wopt.lossy_crash = spec.lossy_crash;
  wopt.sync_is_noop = spec.sync_is_noop;
  wopt.max_batch_cmds = spec.max_batch_cmds;

  SimWorld w(wopt, make_factory(spec),
             [] { return std::make_unique<KvStore>(); });
  const std::size_t n = spec.replicas;

  // --- client workload -----------------------------------------------------
  HistoryChecker history;
  std::map<ClientId, ClientState> clients;
  Rng load_rng(spec.seed * 0x9e3779b97f4a7c15ULL + 1);

  // Reads go through the local read path, which only Clock-RSM has; for any
  // other protocol submit_read would fall back to riding the log and the
  // read hook below would never fire.
  const bool reads_enabled =
      spec.protocol == Protocol::kClockRsm && spec.read_fraction > 0.0;

  std::function<void(ClientId)> issue = [&](ClientId id) {
    ClientState& c = clients.at(id);
    if (c.stopped || w.sim().now() >= spec.load_until_us) return;
    if (w.crashed(c.home)) {
      // Closed loop against a down home replica: poll until it returns
      // rather than losing the client for the rest of the run.
      w.sim().after(100'000, [&issue, id] { issue(id); });
      return;
    }
    const std::uint64_t seq = c.next_seq++;
    c.awaiting_seq = seq;
    if (reads_enabled && load_rng.bernoulli(spec.read_fraction)) {
      // Half the reads target the client's own write key (read-your-writes
      // pressure), half roam the shared key space.
      const std::string key =
          "k" + std::to_string(load_rng.bernoulli(0.5)
                                   ? id % 7
                                   : load_rng.uniform_int(0, 6));
      c.awaiting_read = true;
      history.on_invoke_read(id, seq, key, w.sim().now());
      w.submit_read(c.home, make_get(id, seq, key));
      // Pending reads are protocol memory, not log entries: a crash of the
      // serving replica silently drops them. Reissue after a generous
      // timeout so the closed loop survives; the abandoned read simply
      // never responds and constrains nothing.
      w.sim().after(2'000'000, [&, id, seq] {
        ClientState& cs = clients.at(id);
        if (cs.awaiting_seq != seq || !cs.awaiting_read) return;
        cs.awaiting_seq = 0;
        cs.awaiting_read = false;
        issue(id);
      });
      return;
    }
    c.awaiting_read = false;
    // Values carry "client:seq" so they are unique per key — the contract
    // the read checker's value->version mapping rests on.
    const std::string key = "k" + std::to_string(id % 7);
    const std::string value =
        std::to_string(id) + ":" + std::to_string(seq);
    history.on_invoke_write(id, seq, key, value, w.sim().now());
    w.submit(c.home, make_put(id, seq, key, value));
  };

  w.set_commit_hook([&](ReplicaId r, const Command& cmd, Timestamp, bool local) {
    if (!local) return;
    auto it = clients.find(cmd.client);
    if (it == clients.end()) return;
    ClientState& c = it->second;
    if (r != c.home || cmd.seq != c.awaiting_seq || c.awaiting_read) return;
    c.awaiting_seq = 0;
    history.on_response(cmd.client, cmd.seq, w.sim().now());
    const Tick think = ms_to_us(load_rng.uniform(0.0, spec.think_max_ms));
    const ClientId id = cmd.client;
    w.sim().after(think, [&issue, id] { issue(id); });
  });

  // Read completions (workload reads and post-quiesce read probes alike)
  // arrive here; reads never show up in commit hooks or execution traces.
  std::map<ClientId, bool> read_probes;  // id -> responded
  w.set_read_hook([&](ReplicaId r, const Command& cmd, Timestamp,
                      std::string_view out) {
    history.on_response_read(cmd.client, cmd.seq, std::string(out),
                             w.sim().now());
    auto pit = read_probes.find(cmd.client);
    if (pit != read_probes.end()) {
      pit->second = true;
      return;
    }
    auto it = clients.find(cmd.client);
    if (it == clients.end()) return;
    ClientState& c = it->second;
    if (r != c.home || cmd.seq != c.awaiting_seq || !c.awaiting_read) return;
    c.awaiting_seq = 0;
    c.awaiting_read = false;
    const Tick think = ms_to_us(load_rng.uniform(0.0, spec.think_max_ms));
    const ClientId id = cmd.client;
    w.sim().after(think, [&issue, id] { issue(id); });
  });

  w.start();

  if (spec.protocol == Protocol::kConsensus) {
    // Dueling proposers: every replica proposes its own value early on.
    for (ReplicaId r = 0; r < n; ++r) {
      w.sim().at(1'000 + 40'000 * r, [&w, r] {
        if (!w.crashed(r)) {
          w.submit(r, make_put(1, 1, "decision", "v" + std::to_string(r)));
        }
      });
    }
  } else {
    for (ReplicaId r = 0; r < n; ++r) {
      for (std::size_t i = 0; i < spec.clients_per_replica; ++i) {
        const ClientId id = make_client_id(r, i);
        clients.emplace(id, ClientState{.home = r});
        const Tick start = ms_to_us(load_rng.uniform(0.0, spec.think_max_ms));
        w.sim().after(start, [&issue, id] { issue(id); });
      }
    }
  }

  // --- fault schedule ------------------------------------------------------
  std::vector<bool> tainted(n, false);
  bool progress_checkable = true;

  for (const FaultEvent& f : spec.faults) {
    w.sim().at(f.at_us, [&, f] {
      // Tolerant application: a shrunk schedule may e.g. drop the crash that
      // preceded a restart. Inapplicable events are skipped, not errors.
      switch (f.kind) {
        case FaultKind::kCrash:
          if (f.a >= n || w.crashed(f.a)) return;
          w.crash(f.a);
          tainted[f.a] = true;
          break;
        case FaultKind::kRestart:
          if (f.a >= n || !w.crashed(f.a)) return;
          w.restart(f.a);
          break;
        // Partitions are injected as link *outages* (queue, flush on heal):
        // that is what the real stack gives a transient partition
        // (TcpTransport reconnect backlogs), and it is the channel model the
        // protocols' safety arguments assume. Blocked-link (lossy) variants
        // exist on SimTransport for hand-written safety studies; see
        // docs/TESTING.md for the divergence they produce.
        case FaultKind::kPartition:
          if (f.a >= n || f.b >= n || f.a == f.b) return;
          w.network().set_outage(f.a, f.b, true);
          tainted[f.a] = tainted[f.b] = true;
          break;
        case FaultKind::kHeal:
          if (f.a >= n || f.b >= n) return;
          w.network().set_outage(f.a, f.b, false);
          break;
        case FaultKind::kOneWay:
          if (f.a >= n || f.b >= n || f.a == f.b) return;
          w.network().set_link_outage(f.a, f.b, true);
          // Both endpoints are suspect afterwards: b missed messages, and a
          // may be ejected by b's failure detector under reconfiguration.
          tainted[f.a] = tainted[f.b] = true;
          break;
        case FaultKind::kOneWayHeal:
          if (f.a >= n || f.b >= n) return;
          w.network().set_link_outage(f.a, f.b, false);
          break;
        case FaultKind::kClockJump:
          if (f.a >= n) return;
          w.clock(f.a).step_us(f.value * 1000.0);
          break;
        case FaultKind::kClockDrift:
          if (f.a >= n || f.value <= 0.0) return;
          w.clock(f.a).set_rate(f.value);
          break;
        case FaultKind::kDelaySpike:
          w.network().set_extra_delay_us(ms_to_us(f.value));
          break;
        case FaultKind::kDelayClear:
          w.network().set_extra_delay_us(0);
          break;
        case FaultKind::kDupStart:
          w.network().set_dup_prob(f.value);
          break;
        case FaultKind::kDupStop:
          w.network().set_dup_prob(0.0);
          break;
        case FaultKind::kDropStart:
          w.network().set_drop_prob(f.value);
          progress_checkable = false;
          break;
        case FaultKind::kDropStop:
          w.network().set_drop_prob(0.0);
          break;
      }
      ++result.faults_applied;
      trace << "apply t=" << w.sim().now() << ' ' << f.to_string() << '\n';
    });
  }

  const bool allow_duplicates = std::any_of(
      spec.faults.begin(), spec.faults.end(),
      [](const FaultEvent& f) { return f.kind == FaultKind::kDupStart; });

  // --- quiesce: heal everything, restart the fallen, then probe ------------
  std::vector<ClientId> probe_ids;
  w.sim().at(spec.quiesce_us, [&] {
    w.network().clear_faults();
    for (ReplicaId r = 0; r < n; ++r) {
      if (w.crashed(r)) {
        w.restart(r);
        trace << "quiesce-restart t=" << w.sim().now() << " replica=" << r << '\n';
      }
    }
    trace << "quiesce t=" << w.sim().now() << '\n';
  });
  if (spec.protocol != Protocol::kConsensus) {
    w.sim().at(spec.quiesce_us + 200'000, [&] {
      for (ReplicaId r = 0; r < n; ++r) {
        if (tainted[r]) continue;
        const ClientId id = make_client_id(r, 1000);
        probe_ids.push_back(id);
        trace << "probe t=" << w.sim().now() << " replica=" << r << '\n';
        w.submit(r, make_put(id, 1, "probe" + std::to_string(r), "alive"));
      }
    });
  }
  if (spec.protocol == Protocol::kClockRsm) {
    // Read probes: after quiesce, every untainted replica must be able to
    // serve a local read — i.e. its stability point must pass a fresh read
    // timestamp. A replica whose reads hang forever is a liveness bug even
    // if its log is healthy. The probes also feed the stale-read checker.
    w.sim().at(spec.quiesce_us + 400'000, [&] {
      for (ReplicaId r = 0; r < n; ++r) {
        if (tainted[r]) continue;
        const ClientId id = make_client_id(r, 2000);
        read_probes.emplace(id, false);
        trace << "read-probe t=" << w.sim().now() << " replica=" << r << '\n';
        const std::string key = "k" + std::to_string(r % 7);
        history.on_invoke_read(id, 1, key, w.sim().now());
        w.submit_read(r, make_get(id, 1, key));
      }
    });
  }

  w.sim().run_until(spec.end_us);

  // --- invariants ----------------------------------------------------------
  auto fail = [&](const std::string& category, const std::string& detail) {
    if (!result.ok) return;  // keep the first violation
    result.ok = false;
    result.failure = category + ": " + detail;
  };

  // Timestamp order: execution is strictly increasing per replica in the
  // lexicographic (ts, sub) — commands batched into one envelope share its
  // timestamp and must execute in envelope order.
  for (ReplicaId r = 0; r < n && result.ok; ++r) {
    const auto& exec = w.execution(r);
    for (std::size_t i = 1; i < exec.size(); ++i) {
      const bool ordered =
          exec[i - 1].ts < exec[i].ts ||
          (exec[i - 1].ts == exec[i].ts && exec[i - 1].sub < exec[i].sub);
      if (!ordered) {
        fail("order", "replica " + std::to_string(r) +
                          " executed out of timestamp order at index " +
                          std::to_string(i) + " (" + exec[i - 1].ts.to_string() +
                          " sub " + std::to_string(exec[i - 1].sub) + " then " +
                          exec[i].ts.to_string() + " sub " +
                          std::to_string(exec[i].sub) + ")");
        break;
      }
    }
  }

  // Prefix agreement: common prefixes never diverge.
  for (ReplicaId a = 0; a < n && result.ok; ++a) {
    for (ReplicaId b = a + 1; b < n && result.ok; ++b) {
      const auto& ea = w.execution(a);
      const auto& eb = w.execution(b);
      const std::size_t common = std::min(ea.size(), eb.size());
      for (std::size_t i = 0; i < common; ++i) {
        if (ea[i].ts != eb[i].ts || !(ea[i].cmd == eb[i].cmd)) {
          fail("agreement",
               "replicas " + std::to_string(a) + " and " + std::to_string(b) +
                   " diverge at index " + std::to_string(i) + ": ts " +
                   ea[i].ts.to_string() + " vs " + eb[i].ts.to_string());
          break;
        }
      }
    }
  }

  // Convergence: replicas no fault ever touched end identical.
  ReplicaId ref = kNoReplica;
  std::size_t longest = 0;
  for (ReplicaId r = 0; r < n; ++r) {
    if (w.execution(r).size() >= longest) {
      // >= so ties pick the highest id deterministically; any maximal trace
      // works since common prefixes agree.
      longest = w.execution(r).size();
      ref = r;
    }
  }
  for (ReplicaId r = 0; r < n && result.ok; ++r) {
    if (tainted[r] || spec.protocol == Protocol::kConsensus) continue;
    for (ReplicaId s = r + 1; s < n; ++s) {
      if (tainted[s]) continue;
      if (w.execution(r).size() != w.execution(s).size()) {
        fail("convergence",
             "untainted replicas " + std::to_string(r) + " and " +
                 std::to_string(s) + " executed " +
                 std::to_string(w.execution(r).size()) + " vs " +
                 std::to_string(w.execution(s).size()) + " commands");
        break;
      }
      if (w.state_machine(r).state_digest() != w.state_machine(s).state_digest()) {
        fail("convergence", "untainted replicas " + std::to_string(r) + " and " +
                                std::to_string(s) + " have different state digests");
        break;
      }
    }
  }

  // Client history: durability + at-most-once + linearizability.
  if (ref != kNoReplica) {
    for (const ExecRecord& rec : w.execution(ref)) {
      history.on_commit(rec.cmd.client, rec.cmd.seq);
    }
  }
  const HistoryChecker::Report hist = history.check(allow_duplicates);
  result.completed_ops = hist.completed;
  if (result.ok && !hist.ok) {
    const std::string cat =
        hist.violation.rfind("stale-read", 0) == 0 ? "stale-read"
        : hist.violation.find("linearizability") == 0 ? "linearizability"
                                                      : "durability";
    fail(cat, hist.violation);
  }

  // Progress: probes commit at every untainted replica.
  if (progress_checkable && result.ok) {
    if (spec.protocol == Protocol::kConsensus) {
      for (ReplicaId r = 0; r < n; ++r) {
        if (tainted[r]) continue;
        if (w.execution(r).empty()) {
          fail("progress", "untainted replica " + std::to_string(r) +
                               " never learned the consensus decision");
          break;
        }
      }
    } else {
      for (ReplicaId r = 0; r < n && result.ok; ++r) {
        if (tainted[r]) continue;
        const auto& exec = w.execution(r);
        for (ClientId probe : probe_ids) {
          const bool found = std::any_of(
              exec.begin(), exec.end(), [probe](const ExecRecord& rec) {
                return rec.cmd.client == probe && rec.cmd.seq == 1;
              });
          if (!found) {
            fail("progress", "probe from replica " +
                                 std::to_string(client_home(probe)) +
                                 " never committed at untainted replica " +
                                 std::to_string(r));
            break;
          }
        }
      }
      // Read probes complete via the read hook, not the commit order.
      for (const auto& [probe, responded] : read_probes) {
        if (!result.ok) break;
        if (!responded) {
          fail("progress", "read probe at untainted replica " +
                               std::to_string(client_home(probe)) +
                               " never served (stability never passed its "
                               "read timestamp)");
        }
      }
    }
  }

  for (ReplicaId r = 0; r < n; ++r) {
    trace << "final replica=" << r << " len=" << w.execution(r).size()
          << " digest=" << hex64(w.state_machine(r).state_digest())
          << " tainted=" << (tainted[r] ? 1 : 0) << '\n';
  }
  // Debug aid (dst_swarm --spec replays): full per-replica execution
  // sequences. Env-gated so swarm traces stay compact; still deterministic.
  if (std::getenv("DST_DUMP_EXEC") != nullptr) {
    for (ReplicaId r = 0; r < n; ++r) {
      trace << "exec replica=" << r;
      if (spec.protocol == Protocol::kClockRsm) {
        const auto& p = static_cast<const ClockRsmReplica&>(w.protocol(r));
        trace << " epoch=" << p.epoch() << " cfg=" << p.config().size()
              << " frozen=" << p.frozen() << " catchup=" << p.catching_up();
      }
      trace << '\n';
      const auto& exec = w.execution(r);
      for (std::size_t i = 0; i < exec.size(); ++i) {
        trace << "  [" << i << "] ts=" << exec[i].ts.to_string()
              << " sub=" << exec[i].sub << " client=" << exec[i].cmd.client
              << " seq=" << exec[i].cmd.seq << " at=" << exec[i].sim_time_us
              << '\n';
      }
    }
  }
  trace << "history invoked=" << hist.invoked << " completed=" << hist.completed
        << " committed=" << hist.committed << " reads=" << hist.reads
        << " reads_completed=" << hist.reads_completed << '\n';
  trace << "result " << (result.ok ? "PASS" : "FAIL " + result.failure) << '\n';
  result.trace = trace.str();
  return result;
}

}  // namespace crsm::dst
