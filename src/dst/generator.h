// Deterministic simulation testing (DST): seeded scenario generation.
//
// generate_scenario(seed) samples a complete ScenarioSpec — cluster size,
// protocol, network shape, clock chaos and a fault schedule — from nothing
// but the seed, so a swarm is fully described by a seed range and any
// failure is replayed by its seed alone.
//
// The sampler is protocol-aware so that generated schedules are *fair*: it
// only emits fault patterns the protocol under test claims to survive.
//  * Crash/restart windows go to Clock-RSM (both recovery modes), Paxos
//    followers and Mencius; never to the fixed Paxos leader (no election)
//    and never to the consensus synod (in-memory acceptor state by design).
//  * Windowed faults (crash, partition, one-way partition, delay spike,
//    duplication) are laid out sequentially — at most one window active at
//    any instant — and always end before the quiesce point.
//  * Clock jumps are bounded (±300 ms, at most two per run) so commit
//    stalls they cause fit inside the post-quiesce drain.
//  * Probabilistic message drops are never generated: without a
//    retransmission layer they make liveness unprovable. Hand-written
//    safety-only specs can still use the drop knobs.
//  * Clock-RSM scenarios are read-heavy (read_fraction in [0.5, 0.95])
//    about a third of the time, biased toward clock jumps and one-way
//    partitions — the schedules most likely to surface a stale local read.
#pragma once

#include <cstdint>
#include <optional>

#include "dst/scenario.h"

namespace crsm::dst {

struct GeneratorOptions {
  // Pin the protocol; otherwise one is sampled per seed.
  std::optional<Protocol> protocol;
  // Harness self-test: generate the scenario with sync_is_noop set, so a
  // crash loses acknowledged state and the durability invariant must fire.
  bool inject_sync_noop_bug = false;
  // Force every Clock-RSM scenario into the read-heavy category (reads
  // sampled in [0.5, 0.95]) instead of the default ~35% chance. Dedicated
  // stale-read hunting (`dst_swarm --read-heavy`).
  bool read_heavy = false;
  // Force every replicating-protocol scenario into the batching category
  // (max_batch_cmds sampled from {4, 8, 16}) instead of the default ~30%
  // chance. Dedicated batch-boundary hunting (`dst_swarm --batching`).
  bool batching = false;
};

[[nodiscard]] ScenarioSpec generate_scenario(std::uint64_t seed,
                                             const GeneratorOptions& opt = {});

}  // namespace crsm::dst
