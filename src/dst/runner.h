// Deterministic simulation testing (DST): scenario execution + invariants.
//
// run_scenario() builds a SimWorld from a ScenarioSpec, drives a closed-loop
// KV workload while applying the spec's fault schedule, force-heals at the
// quiesce point, then checks the protocol-wide invariants:
//
//  * timestamp order    — every replica executes in strictly increasing
//                         timestamp/slot order;
//  * prefix agreement   — any two replicas' execution traces agree on their
//                         common prefix (a replica that missed messages may
//                         lag as a stale learner, but never diverges);
//  * convergence        — replicas untouched by faults end with identical
//                         traces and state digests;
//  * linearizability    — the completed client history respects real time
//                         (rsm/linearizability.h via rsm/history.h);
//  * durability         — every client-acknowledged op survives in the
//                         agreed order, across crashes and restarts;
//  * no stale reads     — local reads (Clock-RSM's stability-based read
//                         path; they never enter the log) return values at
//                         least as new as every write that completed before
//                         the read was invoked, and reads on a key never go
//                         backwards in real time (rsm/history.h);
//  * progress           — probe commands submitted after faults quiesce
//                         commit at every untouched replica, and read
//                         probes at untouched Clock-RSM replicas are served
//                         (skipped when the schedule contains message-drop
//                         windows: there is no retransmission layer, so
//                         drops only make safety-mode scenarios).
//
// Runs are bit-for-bit deterministic: the same spec yields the same
// RunResult::trace, byte for byte. That is the foundation for replaying a
// failing swarm seed and for shrinking its schedule (shrink.h).
#pragma once

#include <cstddef>
#include <string>

#include "dst/scenario.h"

namespace crsm::dst {

struct RunResult {
  bool ok = true;
  // First violated invariant, prefixed with its category ("agreement:",
  // "durability:", "stale-read:", "progress:", ...). The shrinker matches
  // on the category so minimization never drifts to a different failure.
  std::string failure;
  // Deterministic run log: applied faults, probes, per-replica outcomes.
  std::string trace;
  std::size_t completed_ops = 0;
  std::size_t faults_applied = 0;

  explicit operator bool() const { return ok; }
};

[[nodiscard]] RunResult run_scenario(const ScenarioSpec& spec);

// The invariant category of a failure string ("durability" for
// "durability: op(...) ..."); empty for passes.
[[nodiscard]] std::string failure_category(const std::string& failure);

}  // namespace crsm::dst
