#include "dst/shrink.h"

#include <utility>

namespace crsm::dst {

ShrinkResult shrink_scenario(const ScenarioSpec& failing, std::size_t max_attempts) {
  ShrinkResult res;
  res.spec = failing;
  res.run = run_scenario(failing);
  ++res.attempts;
  if (res.run.ok) return res;  // nothing to shrink; caller decides what to do
  const std::string category = failure_category(res.run.failure);

  bool improved = true;
  while (improved && res.attempts < max_attempts) {
    improved = false;
    for (std::size_t i = 0; i < res.spec.faults.size(); ++i) {
      if (res.attempts >= max_attempts) break;
      ScenarioSpec candidate = res.spec;
      candidate.faults.erase(candidate.faults.begin() + static_cast<long>(i));
      RunResult r = run_scenario(candidate);
      ++res.attempts;
      if (!r.ok && failure_category(r.failure) == category) {
        res.spec = std::move(candidate);
        res.run = std::move(r);
        improved = true;
        --i;  // the same index now names the next event
      }
    }
  }
  return res;
}

}  // namespace crsm::dst
