// Deterministic simulation testing (DST): greedy schedule shrinking.
//
// Given a failing scenario, repeatedly tries to delete one fault event at a
// time, keeping a deletion whenever the run still fails with the *same
// invariant category* (failure_category in runner.h) — matching the
// category, not the exact message, keeps minimization from drifting onto an
// unrelated failure while still tolerating cosmetic differences (indices,
// timestamps). The result is a locally minimal schedule: removing any single
// remaining event makes the failure disappear. Runs are deterministic, so
// the minimized spec is a permanent, replayable reproduction.
#pragma once

#include <cstddef>

#include "dst/runner.h"
#include "dst/scenario.h"

namespace crsm::dst {

struct ShrinkResult {
  ScenarioSpec spec;     // minimized scenario (still failing)
  RunResult run;         // its run (run.failure describes the violation)
  std::size_t attempts = 0;  // scenario executions spent shrinking
};

// `failing` must fail when run (the caller typically just ran it); the
// shrink budget bounds the number of candidate executions.
[[nodiscard]] ShrinkResult shrink_scenario(const ScenarioSpec& failing,
                                           std::size_t max_attempts = 400);

}  // namespace crsm::dst
