#include "dst/generator.h"

#include <algorithm>
#include <iterator>
#include <vector>

#include "util/rng.h"

namespace crsm::dst {

namespace {

// Kinds of windowed fault the sampler can lay onto the timeline.
enum class WindowKind {
  kCrashRestart,
  kPartition,
  kOneWay,
  kDelaySpike,
  kDuplicates,
};

bool crash_allowed(Protocol p) {
  return p != Protocol::kConsensus;
}

}  // namespace

ScenarioSpec generate_scenario(std::uint64_t seed, const GeneratorOptions& opt) {
  // Decorrelate neighboring seeds (the Rng is an mt19937_64; similar seeds
  // otherwise start in similar states).
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);

  ScenarioSpec spec;
  spec.seed = seed;
  if (opt.protocol) {
    spec.protocol = *opt.protocol;
  } else {
    constexpr Protocol kMenu[] = {Protocol::kClockRsm, Protocol::kClockRsm,
                                  Protocol::kPaxos,    Protocol::kPaxosBcast,
                                  Protocol::kMencius,  Protocol::kConsensus};
    spec.protocol = kMenu[rng.uniform_int(0, std::size(kMenu) - 1)];
  }
  if (spec.protocol == Protocol::kClockRsm) spec.reconfig = rng.bernoulli(0.5);

  // Read-heavy category: local reads ride the stability point, so the
  // schedules that stress it are the ones that stall or pervert stability —
  // clock jumps and one-way partitions. Only Clock-RSM has a local read
  // path; other protocols' reads would just ride the log.
  bool read_heavy = false;
  if (spec.protocol == Protocol::kClockRsm &&
      (opt.read_heavy || rng.bernoulli(0.35))) {
    read_heavy = true;
    spec.read_fraction = rng.uniform(0.5, 0.95);
  }

  // Batching category: every write path decision (batch cut, envelope
  // split, WAL replay of an envelope record, catch-up of a torn tail) now
  // crosses batch boundaries; crash/partition schedules are what tear them.
  // The consensus synod replicates no commands, so batching is meaningless
  // there. Drawn from its own rng stream so batching is an orthogonal axis:
  // a seed samples the same cluster shape and fault schedule whether or not
  // the category fires (and the same schedules as before the category
  // existed).
  if (spec.protocol != Protocol::kConsensus) {
    Rng batch_rng(seed * 0xa24baed4963ee407ULL + 0x9fb21c651e98df25ULL);
    if (opt.batching || batch_rng.bernoulli(0.3)) {
      constexpr std::size_t kBatchMenu[] = {4, 8, 16};
      spec.max_batch_cmds =
          kBatchMenu[batch_rng.uniform_int(0, std::size(kBatchMenu) - 1)];
    }
  }

  spec.replicas = rng.bernoulli(0.3) ? 5 : 3;
  spec.latency_ms = static_cast<double>(rng.uniform_int(5, 40));
  spec.jitter_ms = rng.bernoulli(0.5) ? rng.uniform(0.0, 3.0) : 0.0;
  spec.clock_skew_ms = rng.uniform(0.0, 3.0);
  spec.clock_drift = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.02) : 0.0;
  spec.lossy_crash = true;
  spec.sync_is_noop = opt.inject_sync_noop_bug;
  spec.clients_per_replica = 2;
  spec.think_max_ms = static_cast<double>(rng.uniform_int(20, 60));
  spec.load_until_us = 2'500'000;
  spec.quiesce_us = 4'000'000;
  spec.end_us = 15'000'000;

  // --- windowed faults: sequential, inside [300ms, quiesce - 300ms] --------
  const Tick window_floor = 300'000;
  const Tick window_ceil = spec.quiesce_us - 300'000;
  Tick cursor = window_floor;
  const std::size_t windows = rng.uniform_int(1, 4);
  for (std::size_t i = 0; i < windows; ++i) {
    const Tick gap = ms_to_us(static_cast<double>(rng.uniform_int(50, 250)));
    const Tick len = ms_to_us(static_cast<double>(rng.uniform_int(300, 800)));
    if (cursor + gap + len >= window_ceil) break;
    const Tick start = cursor + gap;
    const Tick stop = start + len;
    cursor = stop;

    std::vector<WindowKind> menu = {WindowKind::kPartition, WindowKind::kOneWay,
                                    WindowKind::kDelaySpike,
                                    WindowKind::kDuplicates};
    if (crash_allowed(spec.protocol)) {
      // Crashes are the bread-and-butter schedule: over-weight them.
      menu.push_back(WindowKind::kCrashRestart);
      menu.push_back(WindowKind::kCrashRestart);
    }
    if (read_heavy) {
      // One-way partitions starve the victim of CLOCKTIME gossip: its reads
      // must stall, not go stale. Crash/restart of a serving replica kills
      // its queued reads mid-flight.
      menu.push_back(WindowKind::kOneWay);
      if (crash_allowed(spec.protocol)) menu.push_back(WindowKind::kCrashRestart);
    }
    const WindowKind kind = menu[rng.uniform_int(0, menu.size() - 1)];

    auto pick_replica = [&](bool never_leader) {
      const ReplicaId lo = never_leader ? 1 : 0;
      return static_cast<ReplicaId>(
          rng.uniform_int(lo, spec.replicas - 1));
    };
    auto pick_pair = [&](ReplicaId* a, ReplicaId* b) {
      *a = static_cast<ReplicaId>(rng.uniform_int(0, spec.replicas - 1));
      do {
        *b = static_cast<ReplicaId>(rng.uniform_int(0, spec.replicas - 1));
      } while (*b == *a);
    };

    switch (kind) {
      case WindowKind::kCrashRestart: {
        // Never the Paxos leader: with no election, its crash ends progress.
        const bool classic_leader_pinned = spec.protocol == Protocol::kPaxos ||
                                           spec.protocol == Protocol::kPaxosBcast;
        const ReplicaId victim = pick_replica(classic_leader_pinned);
        spec.faults.push_back({start, FaultKind::kCrash, victim, 0, 0.0});
        spec.faults.push_back({stop, FaultKind::kRestart, victim, 0, 0.0});
        break;
      }
      case WindowKind::kPartition: {
        ReplicaId a, b;
        pick_pair(&a, &b);
        spec.faults.push_back({start, FaultKind::kPartition, a, b, 0.0});
        spec.faults.push_back({stop, FaultKind::kHeal, a, b, 0.0});
        break;
      }
      case WindowKind::kOneWay: {
        ReplicaId a, b;
        pick_pair(&a, &b);
        spec.faults.push_back({start, FaultKind::kOneWay, a, b, 0.0});
        spec.faults.push_back({stop, FaultKind::kOneWayHeal, a, b, 0.0});
        break;
      }
      case WindowKind::kDelaySpike: {
        // Bounded below the reconfiguration failure-detector timeout so a
        // slow network is never mistaken for a dead replica.
        const double extra_ms = rng.uniform(5.0, 100.0);
        spec.faults.push_back({start, FaultKind::kDelaySpike, 0, 0, extra_ms});
        spec.faults.push_back({stop, FaultKind::kDelayClear, 0, 0, 0.0});
        break;
      }
      case WindowKind::kDuplicates: {
        const double p = rng.uniform(0.02, 0.15);
        spec.faults.push_back({start, FaultKind::kDupStart, 0, 0, p});
        spec.faults.push_back({stop, FaultKind::kDupStop, 0, 0, 0.0});
        break;
      }
    }
  }

  // --- instantaneous clock chaos, anywhere in the fault span ---------------
  // Read-heavy schedules always get at least one jump: a backward step is
  // the classic way to hand out a non-monotonic read timestamp.
  const std::size_t jumps = read_heavy ? rng.uniform_int(1, 3)
                                       : rng.uniform_int(0, 2);
  for (std::size_t i = 0; i < jumps; ++i) {
    const Tick at =
        window_floor + rng.uniform_int(0, window_ceil - window_floor);
    const ReplicaId a = static_cast<ReplicaId>(rng.uniform_int(0, spec.replicas - 1));
    const double magnitude_ms = rng.uniform(10.0, 300.0);
    const double jump = rng.bernoulli(0.5) ? magnitude_ms : -magnitude_ms;
    spec.faults.push_back({at, FaultKind::kClockJump, a, 0, jump});
  }
  const std::size_t drifts = rng.uniform_int(0, 2);
  for (std::size_t i = 0; i < drifts; ++i) {
    const Tick at =
        window_floor + rng.uniform_int(0, window_ceil - window_floor);
    const ReplicaId a = static_cast<ReplicaId>(rng.uniform_int(0, spec.replicas - 1));
    spec.faults.push_back({at, FaultKind::kClockDrift, a, 0, rng.uniform(0.95, 1.05)});
  }

  std::sort(spec.faults.begin(), spec.faults.end(),
            [](const FaultEvent& x, const FaultEvent& y) { return x.at_us < y.at_us; });
  return spec;
}

}  // namespace crsm::dst
