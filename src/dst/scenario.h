// Deterministic simulation testing (DST): scenario specification.
//
// A ScenarioSpec is a complete, self-contained description of one simulated
// run — cluster shape, protocol, client workload and a schedule of fault
// events — with a line-oriented text encoding. The same spec always produces
// the same run, byte for byte (see runner.h), which is what makes failures
// replayable and shrinkable: `tools/dst_swarm` prints the spec of every
// failing seed, and the shrinker (shrink.h) minimizes it by deleting fault
// events while the failure still reproduces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace crsm::dst {

// Protocols a scenario can exercise. kConsensus drives the single-decree
// Paxos synod (reconfiguration's PROPOSE/DECIDE primitive) directly, with
// one dueling proposal per replica instead of a KV workload.
enum class Protocol : std::uint8_t {
  kClockRsm,
  kPaxos,
  kPaxosBcast,
  kMencius,
  kConsensus,
};

[[nodiscard]] const char* protocol_name(Protocol p);
// Returns true and sets *out when `name` is a known protocol name.
[[nodiscard]] bool protocol_from_name(const std::string& name, Protocol* out);

enum class FaultKind : std::uint8_t {
  kCrash,        // a: replica (power loss under SimWorldOptions::lossy_crash)
  kRestart,      // a: replica (recover from stable storage)
  kPartition,    // a, b: block both directions
  kHeal,         // a, b: unblock both directions
  kOneWay,       // a, b: block a -> b only
  kOneWayHeal,   // a, b: unblock a -> b
  kClockJump,    // a: replica; value: NTP step in ms (may be negative)
  kClockDrift,   // a: replica; value: new oscillator rate (e.g. 1.02)
  kDelaySpike,   // value: extra one-way delay in ms on every link
  kDelayClear,   // remove the delay surcharge
  kDupStart,     // value: per-message duplicate probability
  kDupStop,
  kDropStart,    // value: per-message drop probability (safety-only runs)
  kDropStop,
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  Tick at_us = 0;
  FaultKind kind = FaultKind::kCrash;
  ReplicaId a = 0;
  ReplicaId b = 0;
  double value = 0.0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;

  [[nodiscard]] std::string to_string() const;
};

struct ScenarioSpec {
  Protocol protocol = Protocol::kClockRsm;
  std::size_t replicas = 3;
  std::uint64_t seed = 1;

  // Network and clocks.
  double latency_ms = 10.0;     // uniform one-way latency
  double jitter_ms = 0.0;
  double clock_skew_ms = 2.0;   // initial per-replica skew ~ U(-s, +s)
  double clock_drift = 0.0;     // initial per-replica rate ~ 1 ± U(0, d)

  // Clock-RSM recovery mode: reconfigure around crashes (Algorithm 3) when
  // true; plain log-replay restart when false. Ignored by other protocols.
  bool reconfig = false;

  // Storage model: power-loss crashes (un-synced log tail lost) when true.
  bool lossy_crash = true;
  // Deliberate bug injection (harness self-test): log sync() is a no-op, so
  // crashes lose acknowledged state. A correct protocol + harness MUST fail
  // the durability invariant under this flag.
  bool sync_is_noop = false;

  // Protocol-level command batching at every replica's submit path: client
  // writes enqueued at the same simulated instant replicate as one batch
  // envelope, cut at this many commands. 1 = batching off. Old encoded
  // specs have no max_batch_cmds line and decode to 1 (and encode() omits
  // the line at 1, keeping their encodings byte-identical).
  std::size_t max_batch_cmds = 1;

  // Closed-loop KV workload (ignored by kConsensus).
  std::size_t clients_per_replica = 2;
  double think_max_ms = 30.0;
  // Probability that each client op is a local read (kClientRead path)
  // instead of a put. Only meaningful for kClockRsm, the one protocol with
  // a stability-based read path; other protocols keep it at 0.
  double read_fraction = 0.0;

  // Phases, in simulated time: clients issue until load_until_us; every
  // fault is scheduled before quiesce_us (the runner force-heals at
  // quiesce_us regardless); progress probes are submitted at quiesce_us and
  // must complete by end_us.
  Tick load_until_us = 3'000'000;
  Tick quiesce_us = 5'000'000;
  Tick end_us = 30'000'000;

  std::vector<FaultEvent> faults;

  // One-line human summary ("mencius n=3 seed=7 faults=6 ...").
  [[nodiscard]] std::string summary() const;

  // Text round-trip. decode() throws std::runtime_error on malformed input.
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static ScenarioSpec decode(const std::string& text);
};

}  // namespace crsm::dst
