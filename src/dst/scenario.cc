#include "dst/scenario.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace crsm::dst {

namespace {

struct ProtocolName {
  Protocol p;
  const char* name;
};

constexpr ProtocolName kProtocolNames[] = {
    {Protocol::kClockRsm, "clockrsm"},
    {Protocol::kPaxos, "paxos"},
    {Protocol::kPaxosBcast, "paxos-bcast"},
    {Protocol::kMencius, "mencius"},
    {Protocol::kConsensus, "consensus"},
};

struct FaultKindName {
  FaultKind k;
  const char* name;
};

constexpr FaultKindName kFaultKindNames[] = {
    {FaultKind::kCrash, "crash"},
    {FaultKind::kRestart, "restart"},
    {FaultKind::kPartition, "partition"},
    {FaultKind::kHeal, "heal"},
    {FaultKind::kOneWay, "oneway"},
    {FaultKind::kOneWayHeal, "oneway-heal"},
    {FaultKind::kClockJump, "clock-jump"},
    {FaultKind::kClockDrift, "clock-drift"},
    {FaultKind::kDelaySpike, "delay-spike"},
    {FaultKind::kDelayClear, "delay-clear"},
    {FaultKind::kDupStart, "dup-start"},
    {FaultKind::kDupStop, "dup-stop"},
    {FaultKind::kDropStart, "drop-start"},
    {FaultKind::kDropStop, "drop-stop"},
};

// Doubles print with enough digits to round-trip exactly.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[noreturn]] void parse_error(const std::string& what) {
  throw std::runtime_error("ScenarioSpec::decode: " + what);
}

}  // namespace

const char* protocol_name(Protocol p) {
  for (const auto& [proto, name] : kProtocolNames) {
    if (proto == p) return name;
  }
  return "unknown";
}

bool protocol_from_name(const std::string& name, Protocol* out) {
  for (const auto& [proto, pname] : kProtocolNames) {
    if (name == pname) {
      *out = proto;
      return true;
    }
  }
  return false;
}

const char* fault_kind_name(FaultKind k) {
  for (const auto& [kind, name] : kFaultKindNames) {
    if (kind == k) return name;
  }
  return "unknown";
}

std::string FaultEvent::to_string() const {
  std::ostringstream os;
  os << "fault " << at_us << ' ' << fault_kind_name(kind);
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kRestart:
      os << ' ' << a;
      break;
    case FaultKind::kPartition:
    case FaultKind::kHeal:
    case FaultKind::kOneWay:
    case FaultKind::kOneWayHeal:
      os << ' ' << a << ' ' << b;
      break;
    case FaultKind::kClockJump:
    case FaultKind::kClockDrift:
      os << ' ' << a << ' ' << fmt_double(value);
      break;
    case FaultKind::kDelaySpike:
    case FaultKind::kDupStart:
    case FaultKind::kDropStart:
      os << ' ' << fmt_double(value);
      break;
    case FaultKind::kDelayClear:
    case FaultKind::kDupStop:
    case FaultKind::kDropStop:
      break;
  }
  return os.str();
}

std::string ScenarioSpec::summary() const {
  std::ostringstream os;
  os << protocol_name(protocol) << " n=" << replicas << " seed=" << seed
     << " faults=" << faults.size() << " lat=" << latency_ms << "ms";
  if (reconfig) os << " reconfig";
  if (lossy_crash) os << " lossy-crash";
  if (read_fraction > 0.0) os << " reads=" << read_fraction;
  if (max_batch_cmds > 1) os << " batch=" << max_batch_cmds;
  if (sync_is_noop) os << " BUG:sync-noop";
  return os.str();
}

std::string ScenarioSpec::encode() const {
  std::ostringstream os;
  os << "protocol " << protocol_name(protocol) << '\n'
     << "replicas " << replicas << '\n'
     << "seed " << seed << '\n'
     << "latency_ms " << fmt_double(latency_ms) << '\n'
     << "jitter_ms " << fmt_double(jitter_ms) << '\n'
     << "clock_skew_ms " << fmt_double(clock_skew_ms) << '\n'
     << "clock_drift " << fmt_double(clock_drift) << '\n'
     << "reconfig " << (reconfig ? 1 : 0) << '\n'
     << "lossy_crash " << (lossy_crash ? 1 : 0) << '\n'
     << "sync_is_noop " << (sync_is_noop ? 1 : 0) << '\n'
     << "clients_per_replica " << clients_per_replica << '\n'
     << "think_max_ms " << fmt_double(think_max_ms) << '\n'
     << "read_fraction " << fmt_double(read_fraction) << '\n'
     << "load_until_us " << load_until_us << '\n'
     << "quiesce_us " << quiesce_us << '\n'
     << "end_us " << end_us << '\n';
  // Emitted only when batching is on: pre-batching specs decoded and
  // re-encoded stay byte-identical.
  if (max_batch_cmds > 1) os << "max_batch_cmds " << max_batch_cmds << '\n';
  for (const FaultEvent& f : faults) os << f.to_string() << '\n';
  return os.str();
}

ScenarioSpec ScenarioSpec::decode(const std::string& text) {
  ScenarioSpec spec;
  spec.faults.clear();
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "protocol") {
      std::string name;
      ls >> name;
      if (!protocol_from_name(name, &spec.protocol)) {
        parse_error("unknown protocol '" + name + "'");
      }
    } else if (key == "replicas") {
      ls >> spec.replicas;
    } else if (key == "seed") {
      ls >> spec.seed;
    } else if (key == "latency_ms") {
      ls >> spec.latency_ms;
    } else if (key == "jitter_ms") {
      ls >> spec.jitter_ms;
    } else if (key == "clock_skew_ms") {
      ls >> spec.clock_skew_ms;
    } else if (key == "clock_drift") {
      ls >> spec.clock_drift;
    } else if (key == "reconfig") {
      int v = 0;
      ls >> v;
      spec.reconfig = v != 0;
    } else if (key == "lossy_crash") {
      int v = 0;
      ls >> v;
      spec.lossy_crash = v != 0;
    } else if (key == "sync_is_noop") {
      int v = 0;
      ls >> v;
      spec.sync_is_noop = v != 0;
    } else if (key == "clients_per_replica") {
      ls >> spec.clients_per_replica;
    } else if (key == "think_max_ms") {
      ls >> spec.think_max_ms;
    } else if (key == "read_fraction") {
      ls >> spec.read_fraction;
    } else if (key == "load_until_us") {
      ls >> spec.load_until_us;
    } else if (key == "quiesce_us") {
      ls >> spec.quiesce_us;
    } else if (key == "end_us") {
      ls >> spec.end_us;
    } else if (key == "max_batch_cmds") {
      ls >> spec.max_batch_cmds;
      if (spec.max_batch_cmds == 0) spec.max_batch_cmds = 1;
    } else if (key == "fault") {
      FaultEvent f;
      std::string kind;
      ls >> f.at_us >> kind;
      bool known = false;
      for (const auto& [k, name] : kFaultKindNames) {
        if (kind == name) {
          f.kind = k;
          known = true;
          break;
        }
      }
      if (!known) parse_error("unknown fault kind '" + kind + "'");
      switch (f.kind) {
        case FaultKind::kCrash:
        case FaultKind::kRestart:
          ls >> f.a;
          break;
        case FaultKind::kPartition:
        case FaultKind::kHeal:
        case FaultKind::kOneWay:
        case FaultKind::kOneWayHeal:
          ls >> f.a >> f.b;
          break;
        case FaultKind::kClockJump:
        case FaultKind::kClockDrift:
          ls >> f.a >> f.value;
          break;
        case FaultKind::kDelaySpike:
        case FaultKind::kDupStart:
        case FaultKind::kDropStart:
          ls >> f.value;
          break;
        case FaultKind::kDelayClear:
        case FaultKind::kDupStop:
        case FaultKind::kDropStop:
          break;
      }
      spec.faults.push_back(f);
    } else {
      parse_error("unknown key '" + key + "'");
    }
    if (ls.fail()) parse_error("malformed line '" + line + "'");
  }
  if (spec.replicas == 0) parse_error("replicas must be positive");
  return spec;
}

}  // namespace crsm::dst
