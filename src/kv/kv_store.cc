#include "kv/kv_store.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/codec.h"

namespace crsm {

std::string KvRequest::encode() const {
  std::string out;
  Encoder e(&out);
  e.u8(static_cast<std::uint8_t>(op));
  e.bytes(key);
  if (op == KvOp::kPut) e.bytes(value);
  return out;
}

KvRequest KvRequest::decode(std::string_view payload) {
  Decoder d(payload);
  KvRequest r;
  r.op = static_cast<KvOp>(d.u8());
  if (r.op != KvOp::kPut && r.op != KvOp::kGet && r.op != KvOp::kDel) {
    throw CodecError("bad kv op");
  }
  r.key = d.bytes();
  if (r.op == KvOp::kPut) r.value = d.bytes();
  return r;
}

KvRequest KvRequest::sized_put(const std::string& key, std::size_t payload_bytes) {
  KvRequest r;
  r.op = KvOp::kPut;
  r.key = key;
  // Header: 1 (op) + varint(key len) + key + varint(value len). The varint
  // length prefix grows with the value, so adjust until the size converges
  // (or the target is smaller than the header, in which case return the
  // smallest possible encoding).
  long value_len = 0;
  for (int i = 0; i < 8; ++i) {
    r.value.assign(static_cast<std::size_t>(std::max(0L, value_len)), 'v');
    const long sz = static_cast<long>(r.encode().size());
    const long target = static_cast<long>(payload_bytes);
    if (sz == target || (sz > target && value_len == 0)) break;
    value_len += target - sz;
  }
  return r;
}

std::uint64_t kv_key_hash(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string KvStore::apply(const Command& cmd) {
  const KvRequest r = KvRequest::decode(cmd.payload);
  switch (r.op) {
    case KvOp::kPut:
      map_[r.key] = r.value;
      return "OK";
    case KvOp::kGet: {
      auto it = map_.find(r.key);
      return it == map_.end() ? std::string() : it->second;
    }
    case KvOp::kDel:
      map_.erase(r.key);
      return "OK";
  }
  return {};
}

std::uint64_t KvStore::state_digest() const {
  // Order-independent digest: XOR of per-entry FNV-1a hashes plus size.
  std::uint64_t acc = 0xcbf29ce484222325ULL + map_.size();
  for (const auto& [k, v] : map_) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](const std::string& s) {
      for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
      }
      h ^= 0xff;
      h *= 0x100000001b3ULL;
    };
    mix(k);
    mix(v);
    acc ^= h;
  }
  return acc;
}

const std::string* KvStore::get(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

std::string KvStore::snapshot() const {
  // Deterministic encoding: entries sorted by key.
  std::vector<const std::pair<const std::string, std::string>*> entries;
  entries.reserve(map_.size());
  for (const auto& kv : map_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::string out;
  Encoder e(&out);
  e.var(entries.size());
  for (const auto* kv : entries) {
    e.bytes(kv->first);
    e.bytes(kv->second);
  }
  return out;
}

void KvStore::restore(const std::string& snapshot) {
  Decoder d(snapshot);
  std::unordered_map<std::string, std::string> next;
  const std::uint64_t n = d.var();
  next.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = d.bytes();
    next.emplace(std::move(key), d.bytes());
  }
  if (!d.done()) throw CodecError("trailing bytes in KvStore snapshot");
  map_ = std::move(next);
}

}  // namespace crsm
