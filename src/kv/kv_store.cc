#include "kv/kv_store.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/codec.h"

namespace crsm {

std::string KvRequest::encode() const {
  std::string out;
  Encoder e(&out);
  e.u8(static_cast<std::uint8_t>(op));
  e.bytes(key);
  if (op == KvOp::kPut) e.bytes(value);
  if (op == KvOp::kScan) e.var(scan_limit);
  return out;
}

KvRequest KvRequest::decode(std::string_view payload) {
  Decoder d(payload);
  KvRequest r;
  r.op = static_cast<KvOp>(d.u8());
  if (r.op != KvOp::kPut && r.op != KvOp::kGet && r.op != KvOp::kDel &&
      r.op != KvOp::kScan) {
    throw CodecError("bad kv op");
  }
  r.key = d.bytes();
  if (r.op == KvOp::kPut) r.value = d.bytes();
  if (r.op == KvOp::kScan) r.scan_limit = d.var();
  return r;
}

std::vector<std::pair<std::string, std::string>> KvRequest::decode_scan_result(
    std::string_view blob) {
  Decoder d(blob);
  const std::uint64_t n = d.var();
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = d.bytes();
    out.emplace_back(std::move(key), d.bytes());
  }
  if (!d.done()) throw CodecError("trailing bytes in scan result");
  return out;
}

KvRequest KvRequest::sized_put(const std::string& key, std::size_t payload_bytes) {
  KvRequest r;
  r.op = KvOp::kPut;
  r.key = key;
  // Header: 1 (op) + varint(key len) + key + varint(value len). The varint
  // length prefix grows with the value, so adjust until the size converges
  // (or the target is smaller than the header, in which case return the
  // smallest possible encoding).
  long value_len = 0;
  for (int i = 0; i < 8; ++i) {
    r.value.assign(static_cast<std::size_t>(std::max(0L, value_len)), 'v');
    const long sz = static_cast<long>(r.encode().size());
    const long target = static_cast<long>(payload_bytes);
    if (sz == target || (sz > target && value_len == 0)) break;
    value_len += target - sz;
  }
  return r;
}

std::uint64_t kv_key_hash(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string KvStore::apply(const Command& cmd) {
  const KvRequest r = KvRequest::decode(cmd.payload);
  switch (r.op) {
    case KvOp::kPut:
      ++puts_;
      map_[r.key] = r.value;
      return "OK";
    case KvOp::kGet:
    case KvOp::kScan:
      return read_op(r);
    case KvOp::kDel:
      ++dels_;
      map_.erase(r.key);
      return "OK";
  }
  return {};
}

std::string KvStore::apply_read(const Command& cmd) const {
  const KvRequest r = KvRequest::decode(cmd.payload);
  if (!r.is_read()) return "ERR:write-op-on-read-path";
  return read_op(r);
}

std::string KvStore::read_op(const KvRequest& r) const {
  switch (r.op) {
    case KvOp::kGet: {
      ++gets_;
      auto it = map_.find(r.key);
      return it == map_.end() ? std::string() : it->second;
    }
    case KvOp::kScan:
      ++scans_;
      return scan(r.key, r.scan_limit);
    default:
      return {};
  }
}

std::string KvStore::scan(const std::string& prefix,
                          std::uint64_t limit) const {
  // Deterministic: matching entries sorted by key, truncated to `limit`.
  std::vector<const std::pair<const std::string, std::string>*> entries;
  for (const auto& kv : map_) {
    if (kv.first.compare(0, prefix.size(), prefix) == 0) entries.push_back(&kv);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  if (limit != 0 && entries.size() > limit) entries.resize(limit);
  std::string out;
  Encoder e(&out);
  e.var(entries.size());
  for (const auto* kv : entries) {
    e.bytes(kv->first);
    e.bytes(kv->second);
  }
  return out;
}

std::uint64_t KvStore::state_digest() const {
  // Order-independent digest: XOR of per-entry FNV-1a hashes plus size.
  std::uint64_t acc = 0xcbf29ce484222325ULL + map_.size();
  for (const auto& [k, v] : map_) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](const std::string& s) {
      for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
      }
      h ^= 0xff;
      h *= 0x100000001b3ULL;
    };
    mix(k);
    mix(v);
    acc ^= h;
  }
  return acc;
}

void KvStore::fill_metrics(const obs::MetricSink& sink) const {
  sink("crsm_kv_puts_total", puts_);
  sink("crsm_kv_gets_total", gets_);
  sink("crsm_kv_dels_total", dels_);
  sink("crsm_kv_scans_total", scans_);
  sink("crsm_kv_keys", map_.size());
}

const std::string* KvStore::get(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

std::string KvStore::snapshot() const {
  // Deterministic encoding: entries sorted by key.
  std::vector<const std::pair<const std::string, std::string>*> entries;
  entries.reserve(map_.size());
  for (const auto& kv : map_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::string out;
  Encoder e(&out);
  e.var(entries.size());
  for (const auto* kv : entries) {
    e.bytes(kv->first);
    e.bytes(kv->second);
  }
  return out;
}

void KvStore::restore(const std::string& snapshot) {
  Decoder d(snapshot);
  std::unordered_map<std::string, std::string> next;
  const std::uint64_t n = d.var();
  next.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = d.bytes();
    next.emplace(std::move(key), d.bytes());
  }
  if (!d.done()) throw CodecError("trailing bytes in KvStore snapshot");
  map_ = std::move(next);
}

}  // namespace crsm
