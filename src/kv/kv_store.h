// In-memory replicated key-value store (the paper's evaluation application).
//
// In a sharded deployment (src/shard) each replica group runs its own
// independent KvStore over a disjoint slice of the key space; ShardRouter
// uses kv_key_hash below to decide which group owns a key.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rsm/state_machine.h"

namespace crsm {

// Operations carried in Command::payload.
enum class KvOp : std::uint8_t {
  kPut = 1,
  kGet = 2,
  kDel = 3,
};

struct KvRequest {
  KvOp op = KvOp::kPut;
  std::string key;
  std::string value;  // kPut only

  [[nodiscard]] std::string encode() const;
  // Accepts any byte view (Command::payload converts implicitly).
  [[nodiscard]] static KvRequest decode(std::string_view payload);

  // A kPut whose encoded payload is exactly `payload_bytes` long (padding
  // the value), matching the paper's fixed-size update commands.
  [[nodiscard]] static KvRequest sized_put(const std::string& key,
                                           std::size_t payload_bytes);
};

// Stable 64-bit FNV-1a hash of a key. This is the canonical key hash for
// partitioning the key space across replica groups (ShardRouter); it is
// deterministic across platforms and runs, so every process maps a key to
// the same shard.
[[nodiscard]] std::uint64_t kv_key_hash(std::string_view key);

// Deterministic string -> string map. GETs flow through replication too
// (the paper's clients only issue updates, but the store supports reads for
// the examples).
class KvStore final : public StateMachine {
 public:
  std::string apply(const Command& cmd) override;
  [[nodiscard]] std::uint64_t state_digest() const override;
  [[nodiscard]] std::string snapshot() const override;
  void restore(const std::string& snapshot) override;

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] const std::string* get(const std::string& key) const;

 private:
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace crsm
