// In-memory replicated key-value store (the paper's evaluation application).
//
// In a sharded deployment (src/shard) each replica group runs its own
// independent KvStore over a disjoint slice of the key space; ShardRouter
// uses kv_key_hash below to decide which group owns a key.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rsm/state_machine.h"

namespace crsm {

// Operations carried in Command::payload.
enum class KvOp : std::uint8_t {
  kPut = 1,
  kGet = 2,
  kDel = 3,
  kScan = 4,  // prefix scan; key = prefix, scan_limit = max entries (0 = all)
};

// True for operations that never mutate the store and may be served off the
// local-read path (stability-gated, outside the replicated log).
[[nodiscard]] constexpr bool kv_op_is_read(KvOp op) {
  return op == KvOp::kGet || op == KvOp::kScan;
}

struct KvRequest {
  KvOp op = KvOp::kPut;
  std::string key;  // kScan: the key prefix
  std::string value;  // kPut only
  std::uint64_t scan_limit = 0;  // kScan only; 0 = unbounded

  [[nodiscard]] bool is_read() const { return kv_op_is_read(op); }

  [[nodiscard]] std::string encode() const;
  // Accepts any byte view (Command::payload converts implicitly).
  [[nodiscard]] static KvRequest decode(std::string_view payload);

  // A kPut whose encoded payload is exactly `payload_bytes` long (padding
  // the value), matching the paper's fixed-size update commands.
  [[nodiscard]] static KvRequest sized_put(const std::string& key,
                                           std::size_t payload_bytes);

  // Decodes a kScan output blob back into (key, value) pairs, sorted by key.
  [[nodiscard]] static std::vector<std::pair<std::string, std::string>>
  decode_scan_result(std::string_view blob);
};

// Stable 64-bit FNV-1a hash of a key. This is the canonical key hash for
// partitioning the key space across replica groups (ShardRouter); it is
// deterministic across platforms and runs, so every process maps a key to
// the same shard.
[[nodiscard]] std::uint64_t kv_key_hash(std::string_view key);

// Deterministic string -> string map. Reads (kGet/kScan) are also accepted
// through apply() so protocols without a local-read fast path can still ride
// them through the replicated log; apply_read() serves the same operations
// against the current state without mutating it.
class KvStore final : public StateMachine {
 public:
  std::string apply(const Command& cmd) override;
  [[nodiscard]] std::string apply_read(const Command& cmd) const override;
  [[nodiscard]] std::uint64_t state_digest() const override;
  [[nodiscard]] std::string snapshot() const override;
  void restore(const std::string& snapshot) override;
  void fill_metrics(const obs::MetricSink& sink) const override;

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] const std::string* get(const std::string& key) const;

 private:
  [[nodiscard]] std::string read_op(const KvRequest& r) const;
  [[nodiscard]] std::string scan(const std::string& prefix,
                                 std::uint64_t limit) const;

  std::unordered_map<std::string, std::string> map_;
  // Per-op counts; mutable because reads arrive through const apply_read.
  // Same-thread as every other state-machine entry point (replica context),
  // so plain integers suffice.
  mutable std::uint64_t puts_ = 0;
  mutable std::uint64_t gets_ = 0;
  mutable std::uint64_t dels_ = 0;
  mutable std::uint64_t scans_ = 0;
};

}  // namespace crsm
