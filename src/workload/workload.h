// Closed-loop client workload specification (Section VI-B).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace crsm {

// The paper's EC2 setup: 40 clients per data center issuing 64 B update
// commands in a closed loop with think time uniform in [0, 80] ms. Balanced
// workloads run clients at every replica; imbalanced workloads at one.
//
// In a sharded deployment (src/shard) these options describe the client
// population of ONE replica group: the sharded harness attaches an
// independent closed-loop population per group, each drawing keys only from
// its group's slice of the key space, so total offered load scales with the
// shard count.
struct WorkloadOptions {
  std::size_t clients_per_replica = 40;
  double think_min_ms = 0.0;
  double think_max_ms = 80.0;
  std::size_t payload_bytes = 64;
  std::size_t key_space = 1000;
  // Fraction of ops that are reads (kGet of a uniform-random key), issued
  // through the protocol's read path: Clock-RSM serves them locally once
  // its stability point passes the read timestamp, other protocols fall
  // back to riding the log. 0 is the paper's pure update workload.
  double read_fraction = 0.0;
  // Replicas with clients attached; empty means every replica (balanced).
  std::vector<ReplicaId> active_replicas;

  [[nodiscard]] bool is_active(ReplicaId r, std::size_t num_replicas) const {
    if (active_replicas.empty()) return r < num_replicas;
    for (ReplicaId a : active_replicas) {
      if (a == r) return true;
    }
    return false;
  }
};

// YCSB-style read/write mixes over the same closed loop (workload A is the
// 50/50 update-heavy mix, B the 95/5 read-heavy mix, C read-only).
[[nodiscard]] inline WorkloadOptions ycsb_a() {
  WorkloadOptions w;
  w.read_fraction = 0.5;
  return w;
}
[[nodiscard]] inline WorkloadOptions ycsb_b() {
  WorkloadOptions w;
  w.read_fraction = 0.95;
  return w;
}
[[nodiscard]] inline WorkloadOptions ycsb_c() {
  WorkloadOptions w;
  w.read_fraction = 1.0;
  return w;
}

// Packs (home replica, client index) into a globally unique non-zero id.
// Layout: bits 48..63 shard (0 for unsharded), 32..47 home replica,
// 0..31 index + 1. Each field is masked to its width so an out-of-range
// value wraps within its own field instead of corrupting its neighbors.
[[nodiscard]] constexpr ClientId make_client_id(ReplicaId home, std::size_t idx) {
  return (static_cast<ClientId>(home & 0xffff) << 32) | ((idx + 1) & 0xffffffff);
}
[[nodiscard]] constexpr ReplicaId client_home(ClientId id) {
  return static_cast<ReplicaId>((id >> 32) & 0xffff);
}

// Sharded variant: also encodes the replica group the client is bound to,
// so ids stay unique across the whole ShardedCluster.
[[nodiscard]] constexpr ClientId make_sharded_client_id(std::uint32_t shard,
                                                        ReplicaId home,
                                                        std::size_t idx) {
  return (static_cast<ClientId>(shard & 0xffff) << 48) | make_client_id(home, idx);
}
[[nodiscard]] constexpr std::uint32_t client_shard(ClientId id) {
  return static_cast<std::uint32_t>(id >> 48);
}

}  // namespace crsm
