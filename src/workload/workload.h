// Closed-loop client workload specification (Section VI-B).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace crsm {

// The paper's EC2 setup: 40 clients per data center issuing 64 B update
// commands in a closed loop with think time uniform in [0, 80] ms. Balanced
// workloads run clients at every replica; imbalanced workloads at one.
struct WorkloadOptions {
  std::size_t clients_per_replica = 40;
  double think_min_ms = 0.0;
  double think_max_ms = 80.0;
  std::size_t payload_bytes = 64;
  std::size_t key_space = 1000;
  // Replicas with clients attached; empty means every replica (balanced).
  std::vector<ReplicaId> active_replicas;

  [[nodiscard]] bool is_active(ReplicaId r, std::size_t num_replicas) const {
    if (active_replicas.empty()) return r < num_replicas;
    for (ReplicaId a : active_replicas) {
      if (a == r) return true;
    }
    return false;
  }
};

// Packs (home replica, client index) into a globally unique non-zero id.
[[nodiscard]] constexpr ClientId make_client_id(ReplicaId home, std::size_t idx) {
  return (static_cast<ClientId>(home) << 32) | (idx + 1);
}
[[nodiscard]] constexpr ReplicaId client_home(ClientId id) {
  return static_cast<ReplicaId>(id >> 32);
}

}  // namespace crsm
