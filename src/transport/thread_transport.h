// Real-thread byte-stream transport, extracted from the throughput runtime.
//
// Messages are genuinely serialized to bytes on the sender thread and
// decoded on the receiver thread over per-(sender,receiver) FIFO byte
// queues, so per-command CPU cost scales with command size and message count
// exactly as a socket-based deployment's would (minus the kernel, whose
// copies/checksumming are emulated by a per-byte wire cost).
//
// Hot-path properties:
//  * Fan-out encode-once: a multicast serializes its Message a single time
//    (WireFrame caching); each link then pays only the emulated wire cost
//    and a byte append for its own copy.
//  * Zero-copy receive: poll() decodes frames as views into the pooled
//    per-receiver buffer (Message::decode_stream_view); payload bytes are
//    copied only when a protocol stores them (Bytes copy-on-retain).
//  * Opportunistic sender batching (paper Section VI-A): with
//    `sender_batching`, messages produced during one processing pass are
//    buffered per destination and handed over with a single queue operation
//    at flush().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/message.h"
#include "common/types.h"
#include "transport/transport.h"

namespace crsm {

class ThreadTransport final : public Transport {
 public:
  using Handler = std::function<void(const Message&)>;
  using WakeFn = std::function<void()>;

  struct Options {
    // Emulated network-stack cost, in extra per-byte passes executed on the
    // sender thread for every message. An in-process queue moves a byte for
    // ~1 cheap memcpy, while a real send costs several kernel copies plus
    // checksumming (the paper's local-cluster bottleneck: "message sending
    // and receiving is the major consumer of CPU cycles"). 0 disables.
    unsigned wire_passes_per_byte = 8;
    // Sender-side batching: buffer outbound bytes per destination during a
    // processing pass; flush() hands each buffer over in one queue op.
    bool sender_batching = false;
    // Per-pass coalescing budget: a destination's batch buffer is handed
    // over early once it reaches this many bytes, bounding how much one
    // pass can accumulate (mirrors TcpTransportOptions::max_coalesce_bytes).
    // 0 = unbounded within the pass. Only meaningful with sender_batching.
    std::size_t max_coalesce_bytes = 256 * 1024;
    // Bounded send queue: max bytes buffered per (sender, receiver) link.
    // 0 = unbounded. Over the limit, `overflow` decides: kBlock stalls the
    // sending thread until the receiver drains (backpressure_blocks in
    // stats); kDrop sheds the message (messages_dropped). Self-links are
    // exempt — a replica can always talk to itself.
    std::size_t max_link_bytes = 0;
    BackpressurePolicy overflow = BackpressurePolicy::kBlock;
  };

  ThreadTransport(std::size_t n, Options opt);

  // `on_message` runs on the receiving replica's thread (from poll());
  // `wake` may be called from any sender thread when new bytes arrive.
  void register_replica(ReplicaId id, Handler on_message, WakeFn wake);

  // Called on the sender's thread. Serializes (at most once per frame),
  // pays the emulated wire cost for the destination and enqueues the bytes
  // (or batches them until flush() when sender_batching is on; self-sends
  // always deliver immediately and are drained by the current loop pass).
  void send(ReplicaId from, ReplicaId to, const WireFrame& f) override;

  // Flushes `from`'s per-destination batch buffers (no-op when unbatched).
  // Called on the sender's thread at the end of each processing pass.
  void flush(ReplicaId from);

  // Releases senders blocked on full links (kBlock policy) and makes all
  // subsequent sends bypass the limit. Call before joining replica threads:
  // a receiver that has stopped draining would otherwise hold its senders
  // in the backpressure wait forever.
  void shutdown();

  // Drains all inbound links of `r` on the receiver's thread, decoding
  // frames zero-copy and invoking the registered handler once per message.
  // Returns true if anything was processed. Messages handed to the handler
  // view the pooled receive buffer and must not be retained without a copy.
  bool poll(ReplicaId r);

  [[nodiscard]] std::size_t num_replicas() const { return peers_.size(); }

  [[nodiscard]] TransportStats stats() const override;
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return messages_delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t encode_calls() const {
    return encode_calls_.load(std::memory_order_relaxed);
  }

 private:
  // One inbound FIFO byte queue. Senders append under the mutex; the
  // receiver swaps the buffer out wholesale, which batches decoding
  // opportunistically and recycles buffer capacity back and forth (the
  // "pool": two strings per link alternate between filling and draining).
  // `drained` is signalled after each swap so senders blocked on a full
  // link (bounded queue, kBlock) can resume.
  struct Link {
    std::mutex mu;
    std::string buf;
    std::condition_variable drained;
  };

  struct Peer {
    std::vector<std::unique_ptr<Link>> in;  // indexed by sender id
    // Sender-side batch buffers (one per destination); sender thread only.
    std::vector<std::string> out_bufs;
    // Messages in each batch buffer, for accurate drop accounting.
    std::vector<std::uint64_t> out_counts;
    // Receiver-side drain buffer; receiver thread only. Decoded messages
    // view into it until the next swap.
    std::string scratch;
    Handler handler;
    WakeFn wake;
  };

  void write_link(ReplicaId from, ReplicaId to, std::string_view bytes,
                  std::uint64_t msg_count);

  std::vector<std::unique_ptr<Peer>> peers_;
  Options opt_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_delivered_{0};
  std::atomic<std::uint64_t> encode_calls_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> backpressure_blocks_{0};
  // One wire_flush per link handoff (write_link append); frames_flushed
  // counts the frames it carried, so frames_flushed / wire_flushes is the
  // achieved coalescing factor — comparable with the TCP transport's.
  std::atomic<std::uint64_t> wire_flushes_{0};
  std::atomic<std::uint64_t> frames_flushed_{0};
};

}  // namespace crsm
