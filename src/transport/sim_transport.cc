#include "transport/sim_transport.h"

#include <stdexcept>
#include <utility>

namespace crsm {

SimTransport::SimTransport(Simulator& sim, LatencyMatrix matrix, Rng rng, Options opt)
    : sim_(sim),
      matrix_(std::move(matrix)),
      rng_(rng),
      opt_(opt),
      handlers_(matrix_.size()),
      crashed_(matrix_.size(), false),
      links_(matrix_.size() * matrix_.size()) {}

void SimTransport::register_replica(ReplicaId id, Handler handler) {
  if (id >= handlers_.size()) throw std::out_of_range("register_replica");
  handlers_[id] = std::move(handler);
}

std::size_t SimTransport::link_index(ReplicaId from, ReplicaId to) const {
  return static_cast<std::size_t>(from) * matrix_.size() + to;
}

void SimTransport::send(ReplicaId from, ReplicaId to, const WireFrame& f) {
  if (from >= handlers_.size() || to >= handlers_.size()) {
    throw std::out_of_range("SimTransport::send");
  }
  ++stats_.messages_sent;
  if (opt_.count_bytes) {
    // Fan-out sends share the frame's cached encoding: one encode call, one
    // byte count per destination (matching what each link would carry).
    if (!f.encoded_yet()) ++stats_.encode_calls;
    stats_.bytes_sent += f.bytes().size();
  }

  LinkState& link = links_[link_index(from, to)];
  if (crashed_[from] || crashed_[to] || link.blocked) {
    ++stats_.messages_dropped;
    return;
  }

  Tick arrival = sim_.now() + matrix_.oneway_us(from, to);
  if (opt_.jitter_ms > 0.0 && from != to) {
    arrival += ms_to_us(rng_.uniform(0.0, opt_.jitter_ms));
  }
  // FIFO per link: never deliver before an earlier message on the same link.
  if (arrival <= link.last_arrival) arrival = link.last_arrival + 1;
  link.last_arrival = arrival;

  // All destinations of a multicast share one immutable Message.
  sim_.at(arrival, [this, to, m = f.shared_msg()]() {
    if (crashed_[to] || !handlers_[to]) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    handlers_[to](*m);
  });
}

void SimTransport::crash(ReplicaId id) {
  if (id >= crashed_.size()) throw std::out_of_range("crash");
  crashed_[id] = true;
}

void SimTransport::recover(ReplicaId id) {
  if (id >= crashed_.size()) throw std::out_of_range("recover");
  crashed_[id] = false;
}

bool SimTransport::crashed(ReplicaId id) const {
  if (id >= crashed_.size()) throw std::out_of_range("crashed");
  return crashed_[id];
}

void SimTransport::set_partitioned(ReplicaId a, ReplicaId b, bool blocked) {
  links_[link_index(a, b)].blocked = blocked;
  links_[link_index(b, a)].blocked = blocked;
}

}  // namespace crsm
