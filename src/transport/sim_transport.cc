#include "transport/sim_transport.h"

#include <stdexcept>
#include <utility>

namespace crsm {

SimTransport::SimTransport(Simulator& sim, LatencyMatrix matrix, Rng rng, Options opt)
    : sim_(sim),
      matrix_(std::move(matrix)),
      rng_(rng),
      opt_(opt),
      handlers_(matrix_.size()),
      crashed_(matrix_.size(), false),
      links_(matrix_.size() * matrix_.size()) {}

void SimTransport::register_replica(ReplicaId id, Handler handler) {
  if (id >= handlers_.size()) throw std::out_of_range("register_replica");
  handlers_[id] = std::move(handler);
}

std::size_t SimTransport::link_index(ReplicaId from, ReplicaId to) const {
  return static_cast<std::size_t>(from) * matrix_.size() + to;
}

void SimTransport::send(ReplicaId from, ReplicaId to, const WireFrame& f) {
  if (from >= handlers_.size() || to >= handlers_.size()) {
    throw std::out_of_range("SimTransport::send");
  }
  ++stats_.messages_sent;
  if (opt_.count_bytes) {
    // Fan-out sends share the frame's cached encoding: one encode call, one
    // byte count per destination (matching what each link would carry).
    if (!f.encoded_yet()) ++stats_.encode_calls;
    stats_.bytes_sent += f.bytes().size();
  }

  LinkState& link = links_[link_index(from, to)];
  if (crashed_[from] || crashed_[to] || link.blocked) {
    ++stats_.messages_dropped;
    return;
  }
  if (link.outage) {
    // The link is down but the stack retransmits: queue for the heal.
    link.backlog.push_back(f.shared_msg());
    return;
  }
  // Probabilistic faults never touch self-delivery: a replica's loopback
  // models its local event queue, not a network link.
  if (from != to && drop_prob_ > 0.0 && rng_.bernoulli(drop_prob_)) {
    ++stats_.messages_dropped;
    ++stats_.messages_fault_dropped;
    return;
  }

  const bool duplicate =
      from != to && dup_prob_ > 0.0 && rng_.bernoulli(dup_prob_);
  if (duplicate) ++stats_.messages_duplicated;
  deliver(link, from, to, f.shared_msg());
  if (duplicate) deliver(link, from, to, f.shared_msg());
}

void SimTransport::deliver(LinkState& link, ReplicaId from, ReplicaId to,
                           std::shared_ptr<const Message> m) {
  Tick arrival = sim_.now() + matrix_.oneway_us(from, to);
  if (from != to) arrival += extra_delay_us_;
  if (opt_.jitter_ms > 0.0 && from != to) {
    arrival += ms_to_us(rng_.uniform(0.0, opt_.jitter_ms));
  }
  // FIFO per link: never deliver before an earlier message on the same
  // link; a duplicate arrives immediately after its original.
  if (arrival <= link.last_arrival) arrival = link.last_arrival + 1;
  link.last_arrival = arrival;

  // All destinations of a multicast share one immutable Message.
  sim_.at(arrival, [this, to, m = std::move(m)]() {
    if (crashed_[to] || !handlers_[to]) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    handlers_[to](*m);
  });
}

void SimTransport::crash(ReplicaId id) {
  if (id >= crashed_.size()) throw std::out_of_range("crash");
  crashed_[id] = true;
  // The process died: its own retransmission backlogs die with it. Peers'
  // backlogs *to* the crashed replica survive (their stacks keep retrying),
  // though delivery still checks liveness at arrival time.
  for (std::size_t to = 0; to < crashed_.size(); ++to) {
    links_[link_index(id, static_cast<ReplicaId>(to))].backlog.clear();
  }
}

void SimTransport::recover(ReplicaId id) {
  if (id >= crashed_.size()) throw std::out_of_range("recover");
  crashed_[id] = false;
}

bool SimTransport::crashed(ReplicaId id) const {
  if (id >= crashed_.size()) throw std::out_of_range("crashed");
  return crashed_[id];
}

void SimTransport::set_partitioned(ReplicaId a, ReplicaId b, bool blocked) {
  set_link_blocked(a, b, blocked);
  set_link_blocked(b, a, blocked);
}

void SimTransport::set_link_blocked(ReplicaId from, ReplicaId to, bool blocked) {
  if (from >= handlers_.size() || to >= handlers_.size()) {
    throw std::out_of_range("set_link_blocked");
  }
  links_[link_index(from, to)].blocked = blocked;
}

bool SimTransport::link_blocked(ReplicaId from, ReplicaId to) const {
  if (from >= handlers_.size() || to >= handlers_.size()) {
    throw std::out_of_range("link_blocked");
  }
  return links_[link_index(from, to)].blocked;
}

void SimTransport::set_link_outage(ReplicaId from, ReplicaId to, bool outage) {
  if (from >= handlers_.size() || to >= handlers_.size()) {
    throw std::out_of_range("set_link_outage");
  }
  LinkState& link = links_[link_index(from, to)];
  if (link.outage == outage) return;
  link.outage = outage;
  if (!outage) {
    // Heal: flush the retransmission backlog, in order, ahead of anything
    // sent from now on (deliver()'s FIFO clamp chains the arrivals).
    std::vector<std::shared_ptr<const Message>> backlog;
    backlog.swap(link.backlog);
    for (auto& m : backlog) deliver(link, from, to, std::move(m));
  }
}

void SimTransport::set_outage(ReplicaId a, ReplicaId b, bool outage) {
  set_link_outage(a, b, outage);
  set_link_outage(b, a, outage);
}

void SimTransport::clear_faults() {
  drop_prob_ = 0.0;
  dup_prob_ = 0.0;
  extra_delay_us_ = 0;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    links_[i].blocked = false;
    if (links_[i].outage) {
      const ReplicaId from = static_cast<ReplicaId>(i / matrix_.size());
      const ReplicaId to = static_cast<ReplicaId>(i % matrix_.size());
      set_link_outage(from, to, false);
    }
  }
}

}  // namespace crsm
