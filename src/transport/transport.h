// Transport: the shared wire pipeline under both execution engines.
//
// A Transport moves framed messages between replicas over reliable,
// per-(sender,receiver) FIFO links — the channel model Section II-A assumes.
// Two implementations exist:
//
//  * SimTransport   — discrete-event delivery over a LatencyMatrix with
//                     jitter, crash and partition injection (the simulator).
//  * ThreadTransport — real byte streams between replica threads with an
//                     emulated per-byte network-stack cost (the local-cluster
//                     throughput runtime).
//
// Both consume WireFrames, so a broadcast is serialized at most once no
// matter how many links it fans out to, and both account traffic uniformly
// (TransportStats) so experiments can compare protocols by message and byte
// complexity as well as by encode work.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "common/wire_frame.h"

namespace crsm {

// Uniform traffic accounting. `encode_calls` counts actual Message
// serializations; with fan-out encode-once it is <= messages_sent (for a
// broadcast-heavy protocol, roughly messages_sent / fan-out).
// `messages_dropped` and `backpressure_blocks` surface the bounded
// send-queue policy (below): overload tests assert on them.
struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t encode_calls = 0;
  std::uint64_t backpressure_blocks = 0;
  // Fault-injection accounting (SimTransport DST knobs): messages dropped by
  // the probabilistic drop knob and extra copies delivered by the duplicate
  // knob. Both are also reflected in messages_dropped / messages_delivered.
  std::uint64_t messages_fault_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  // Per-pass wire coalescing (TCP and thread transports): one "flush" is
  // one kernel/queue handoff; frames_flushed / wire_flushes is the achieved
  // frames-per-flush batching factor.
  std::uint64_t wire_flushes = 0;
  std::uint64_t frames_flushed = 0;
  // io_uring submission batching: io_uring_enter calls that submitted SQEs
  // and the SQEs they carried (sqes_submitted / sqe_submits = SQE batch
  // size). Zero on the epoll backend.
  std::uint64_t sqe_submits = 0;
  std::uint64_t sqes_submitted = 0;
  // Times a node asked for the uring backend and was handed epoll instead
  // (kernel/seccomp refused io_uring).
  std::uint64_t uring_fallbacks = 0;
};

// What a bounded send queue does when an outbound link is over its byte
// limit. kBlock applies backpressure to the sender (counted in
// backpressure_blocks); kDrop sheds the message (counted in
// messages_dropped) — the overload-shedding mode for saturation tests.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,
  kDrop,
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends one frame from -> to. FIFO per (from, to) link.
  virtual void send(ReplicaId from, ReplicaId to, const WireFrame& f) = 0;

  // Fan-out: hands the same frame to every destination link in order. The
  // frame is serialized at most once (WireFrame caches its encoding), so the
  // default per-destination loop already encodes once per multicast.
  virtual void multicast(ReplicaId from, const std::vector<ReplicaId>& tos,
                         const WireFrame& f) {
    for (ReplicaId to : tos) send(from, to, f);
  }

  [[nodiscard]] virtual TransportStats stats() const = 0;
};

}  // namespace crsm
