// Simulated wide-area transport with non-uniform latencies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/message.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "transport/transport.h"
#include "util/rng.h"
#include "util/topology.h"

namespace crsm {

// Reliable, per-link FIFO transport over a LatencyMatrix, with optional
// symmetric jitter, crash and partition injection, and traffic accounting
// (used to verify the paper's message-complexity claims).
//
// For deterministic simulation testing (src/dst) the transport additionally
// supports one-way partitions, probabilistic message drop and duplication,
// and a global delay surcharge ("delay spike"). All fault knobs preserve
// per-link FIFO order and consume randomness only while enabled, so runs
// with the knobs off are byte-identical to runs of older builds.
//
// Delivery hands the frame's shared decoded Message to the destination
// handler — one fan-out shares a single Message and (when byte counting is
// on) a single encoding across all N links.
//
// Replica ids are indices into the latency matrix.
class SimTransport final : public Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  struct Options {
    double jitter_ms = 0.0;  // uniform [0, jitter_ms) added per message
    bool count_bytes = false;
  };

  SimTransport(Simulator& sim, LatencyMatrix matrix, Rng rng, Options opt);
  SimTransport(Simulator& sim, LatencyMatrix matrix, Rng rng)
      : SimTransport(sim, std::move(matrix), rng, Options{}) {}

  void register_replica(ReplicaId id, Handler handler);

  // Sends `f` from -> to. Drops it if either endpoint is crashed (at send or
  // delivery time) or the link is partitioned. Delivery preserves FIFO order
  // per (from, to) link even under jitter.
  void send(ReplicaId from, ReplicaId to, const WireFrame& f) override;

  // Convenience for tests and non-fan-out callers.
  void send(ReplicaId from, ReplicaId to, Message m) {
    send(from, to, WireFrame(std::move(m)));
  }

  void crash(ReplicaId id);
  void recover(ReplicaId id);
  [[nodiscard]] bool crashed(ReplicaId id) const;

  // Blocks/unblocks both directions between a and b.
  void set_partitioned(ReplicaId a, ReplicaId b, bool blocked);

  // One-way partition: blocks/unblocks only the from -> to direction.
  // Messages sent while blocked are dropped (not delayed), like a real
  // asymmetric routing failure.
  void set_link_blocked(ReplicaId from, ReplicaId to, bool blocked);
  [[nodiscard]] bool link_blocked(ReplicaId from, ReplicaId to) const;

  // Link outage: while set, messages on the from -> to link are *queued*;
  // ending the outage flushes the backlog in FIFO order. This models what
  // the real stack (TcpTransport's reconnect backlogs, PR 3) gives a
  // transient partition: delay and burstiness, but no loss. Protocols whose
  // safety argument assumes reliable FIFO channels (Clock-RSM's stability
  // rule in particular) are partition-tolerant under outages but NOT under
  // blocked links — the DST runner injects partitions as outages for
  // exactly that reason, and dst/README in docs/TESTING.md shows the
  // commit-around-the-hole divergence that blocked links cause.
  void set_link_outage(ReplicaId from, ReplicaId to, bool outage);
  // Both directions between a and b.
  void set_outage(ReplicaId a, ReplicaId b, bool outage);

  // Probabilistic faults on non-self links. Drop loses the message entirely;
  // duplicate delivers a second copy immediately after the first (FIFO order
  // per link is preserved either way).
  void set_drop_prob(double p) { drop_prob_ = p; }
  void set_dup_prob(double p) { dup_prob_ = p; }

  // Adds `extra_us` to the one-way delay of every non-self message sent from
  // now on (a congestion spike). In-flight messages keep their arrival time.
  void set_extra_delay_us(Tick extra_us) { extra_delay_us_ = extra_us; }

  // Heals every injected fault: link blocks (one- and two-way), drop/dup
  // probabilities and the delay surcharge. Crashed endpoints stay crashed.
  void clear_faults();

  [[nodiscard]] TransportStats stats() const override { return stats_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return stats_.messages_sent; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return stats_.messages_delivered; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return stats_.messages_dropped; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return stats_.bytes_sent; }
  [[nodiscard]] std::uint64_t encode_calls() const { return stats_.encode_calls; }

  [[nodiscard]] const LatencyMatrix& matrix() const { return matrix_; }

 private:
  struct LinkState {
    Tick last_arrival = 0;
    bool blocked = false;
    bool outage = false;
    // Messages queued while the link is in outage, flushed FIFO on heal.
    std::vector<std::shared_ptr<const Message>> backlog;
  };

  [[nodiscard]] std::size_t link_index(ReplicaId from, ReplicaId to) const;
  // Schedules one message on a live link, preserving per-link FIFO order.
  void deliver(LinkState& link, ReplicaId from, ReplicaId to,
               std::shared_ptr<const Message> m);

  Simulator& sim_;
  LatencyMatrix matrix_;
  Rng rng_;
  Options opt_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::vector<LinkState> links_;
  double drop_prob_ = 0.0;
  double dup_prob_ = 0.0;
  Tick extra_delay_us_ = 0;
  TransportStats stats_;
};

}  // namespace crsm
