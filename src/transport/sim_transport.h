// Simulated wide-area transport with non-uniform latencies.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/message.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "transport/transport.h"
#include "util/rng.h"
#include "util/topology.h"

namespace crsm {

// Reliable, per-link FIFO transport over a LatencyMatrix, with optional
// symmetric jitter, crash and partition injection, and traffic accounting
// (used to verify the paper's message-complexity claims).
//
// Delivery hands the frame's shared decoded Message to the destination
// handler — one fan-out shares a single Message and (when byte counting is
// on) a single encoding across all N links.
//
// Replica ids are indices into the latency matrix.
class SimTransport final : public Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  struct Options {
    double jitter_ms = 0.0;  // uniform [0, jitter_ms) added per message
    bool count_bytes = false;
  };

  SimTransport(Simulator& sim, LatencyMatrix matrix, Rng rng, Options opt);
  SimTransport(Simulator& sim, LatencyMatrix matrix, Rng rng)
      : SimTransport(sim, std::move(matrix), rng, Options{}) {}

  void register_replica(ReplicaId id, Handler handler);

  // Sends `f` from -> to. Drops it if either endpoint is crashed (at send or
  // delivery time) or the link is partitioned. Delivery preserves FIFO order
  // per (from, to) link even under jitter.
  void send(ReplicaId from, ReplicaId to, const WireFrame& f) override;

  // Convenience for tests and non-fan-out callers.
  void send(ReplicaId from, ReplicaId to, Message m) {
    send(from, to, WireFrame(std::move(m)));
  }

  void crash(ReplicaId id);
  void recover(ReplicaId id);
  [[nodiscard]] bool crashed(ReplicaId id) const;

  // Blocks/unblocks both directions between a and b.
  void set_partitioned(ReplicaId a, ReplicaId b, bool blocked);

  [[nodiscard]] TransportStats stats() const override { return stats_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return stats_.messages_sent; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return stats_.messages_delivered; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return stats_.messages_dropped; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return stats_.bytes_sent; }
  [[nodiscard]] std::uint64_t encode_calls() const { return stats_.encode_calls; }

  [[nodiscard]] const LatencyMatrix& matrix() const { return matrix_; }

 private:
  struct LinkState {
    Tick last_arrival = 0;
    bool blocked = false;
  };

  [[nodiscard]] std::size_t link_index(ReplicaId from, ReplicaId to) const;

  Simulator& sim_;
  LatencyMatrix matrix_;
  Rng rng_;
  Options opt_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::vector<LinkState> links_;
  TransportStats stats_;
};

}  // namespace crsm
