// Transport over real TCP sockets, driven by the src/net event loop.
//
// One node process hosts one replica; TcpTransport is that replica's view
// of the full mesh. Each unordered replica pair shares exactly one socket
// (the lower id dials, the higher id accepts — with automatic reconnect
// from the dialing side), so per-(from,to) FIFO falls out of TCP byte
// ordering. A single listening port serves both peer links and client
// drivers; an 8-byte hello preamble exchanged on every connection tells the
// acceptor who dialed and tells clients which replica answered.
//
// Hot-path properties, matching the other transports:
//  * Fan-out encode-once: a multicast serializes its Message a single time
//    (WireFrame shared encoding); every peer link queues a reference to the
//    same buffer, and FrameConn's writev hands the kernel each link's copy.
//  * Zero-copy receive: inbound bytes are reassembled (FrameConn) and
//    decoded as views into the connection's receive buffer
//    (Message::decode_stream_view); handlers copy only what they retain.
//  * Uniform accounting: TransportStats counts per-link messages/bytes and
//    per-frame encodes exactly like SimTransport and ThreadTransport.
//
// Send queues are bounded (Options::max_pending_bytes): a connected link
// over its limit either blocks the sender until the kernel drains
// (kBlock — counted) or sheds the frame (kDrop). While a peer link is down,
// frames queue at the transport and are re-sent on reconnect; only frames
// fully written to a socket that then died can be lost, so the channel is
// reliable-FIFO while a connection lives and at-most-once across repairs.
//
// Threading: everything runs on the EventLoop thread, including the
// registered message handler. send()/multicast() from other threads post
// onto the loop (used by in-process harnesses); stats() is thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/message.h"
#include "common/types.h"
#include "net/acceptor.h"
#include "net/connector.h"
#include "net/event_loop.h"
#include "net/frame_conn.h"
#include "transport/transport.h"

namespace crsm {

// One replica's address in the mesh.
struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpTransportOptions {
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;  // 0 = ephemeral; read back with port()
  // Bounded send queue: max bytes pending per peer link (transport queue +
  // connection buffer). 0 = unbounded.
  std::size_t max_pending_bytes = 0;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  // Per-pass wire coalescing budget: frames queued to one peer during an
  // event-loop pass are flushed as one writev/SQE at pass end, or sooner
  // once a connection's pending bytes reach this budget. 0 = off (every
  // send flushes immediately, the pre-coalescing behaviour).
  std::size_t max_coalesce_bytes = 256 * 1024;
  net::ConnectorOptions reconnect;
  // Accepted connections must identify themselves within this window or be
  // dropped — otherwise silent connections (port scanners, wedged peers)
  // would pin fds forever.
  std::uint64_t hello_timeout_us = 10'000'000;
};

class TcpTransport final : public Transport {
 public:
  using Handler = std::function<void(const Message&)>;
  // Client-driver connections (hello id net::kClientHello) are surfaced by
  // connection, so the host can route replies back to the right socket.
  using ClientHandler = std::function<void(std::uint64_t conn, const Message&)>;
  using ClientCloseHandler = std::function<void(std::uint64_t conn)>;
  using Options = TcpTransportOptions;

  // Binds the listener immediately (so an ephemeral port is readable before
  // any thread runs); everything else happens in start().
  TcpTransport(net::EventLoop& loop, ReplicaId self, Options opt);
  ~TcpTransport() override;

  [[nodiscard]] std::uint16_t port() const { return acceptor_.port(); }
  [[nodiscard]] ReplicaId self() const { return self_; }

  void register_handler(Handler on_message) { handler_ = std::move(on_message); }
  void set_client_handlers(ClientHandler on_message, ClientCloseHandler on_close) {
    client_handler_ = std::move(on_message);
    client_close_ = std::move(on_close);
  }

  // Loop-thread only: starts accepting and dials every peer with a higher
  // id than ours (peers[self] is our own entry and is ignored).
  void start(std::vector<TcpPeer> peers);
  // Loop-thread only: closes every connection and stops redialing.
  void shutdown();

  // --- Transport ---
  // `from` must be self(). Callable from any thread; off-loop calls post.
  void send(ReplicaId from, ReplicaId to, const WireFrame& f) override;
  void multicast(ReplicaId from, const std::vector<ReplicaId>& tos,
                 const WireFrame& f) override;
  [[nodiscard]] TransportStats stats() const override;

  void send_to_client(std::uint64_t conn, const WireFrame& f);

  // Live peer links (connected and past the hello), for tests/monitoring.
  [[nodiscard]] std::size_t connected_peers() const;

  [[nodiscard]] std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return messages_delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t encode_calls() const {
    return encode_calls_.load(std::memory_order_relaxed);
  }

 private:
  struct PeerLink {
    TcpPeer addr;
    std::unique_ptr<net::Connector> connector;  // dial side only (self < id)
    std::unique_ptr<net::FrameConn> conn;       // the pair's one socket
    // Frames awaiting a live connection (or requeued after one died).
    std::deque<std::shared_ptr<const std::string>> backlog;
    std::size_t backlog_bytes = 0;
    // Delay before the next redial after an established connection died.
    // Doubles per consecutive death (a connect-then-die cycle — e.g. a
    // miswired mesh answering with the wrong hello — must not churn
    // unthrottled) and resets once a link proves healthy.
    std::uint64_t redial_delay_us = 0;
  };

  // What a live connection is: the peer link it serves or the client id it
  // carries. Looked up per event, so a connection torn down mid-dispatch
  // simply stops routing.
  struct Route {
    bool is_client = false;
    std::uint64_t id = 0;
  };

  [[nodiscard]] bool coalescing() const {
    return opt_.max_coalesce_bytes > 0;
  }
  // Builds a conn wired for this transport's coalescing mode and metrics.
  [[nodiscard]] std::unique_ptr<net::FrameConn> make_conn(net::Socket sock);
  // Queues `c` for the pass-end flush (coalescing mode only; flushes early
  // when the conn crosses the coalescing budget).
  void mark_dirty(net::FrameConn* c);
  // The wire-flush hook: one flush per dirty conn, end of every pass.
  void flush_pass();

  void send_on_loop(ReplicaId to, std::shared_ptr<const std::string> bytes);
  void dial(ReplicaId to);
  void adopt_peer_conn(ReplicaId id, std::unique_ptr<net::FrameConn> conn,
                       bool needs_start);
  void on_accept(net::Socket&& sock);
  void on_conn_message(net::FrameConn* raw, const Message& m);
  void on_conn_closed(net::FrameConn* raw);
  void apply_backpressure(PeerLink& link);
  void bury(std::unique_ptr<net::FrameConn> conn);

  net::EventLoop& loop_;
  const ReplicaId self_;
  const Options opt_;
  net::Acceptor acceptor_;
  bool started_ = false;
  bool shut_down_ = false;

  std::vector<PeerLink> peers_;
  std::unordered_map<net::FrameConn*, Route> routes_;

  // An accepted connection whose hello has not arrived yet. `gen` guards
  // the hello-timeout timer against FrameConn address reuse: the timer
  // only fires teardown when the entry it armed for is still the one live.
  struct PendingConn {
    std::unique_ptr<net::FrameConn> conn;
    std::uint64_t gen = 0;
  };
  std::unordered_map<net::FrameConn*, PendingConn> pending_;
  std::uint64_t accept_gen_ = 0;
  // Client-driver connections, keyed by a stable id.
  std::unordered_map<std::uint64_t, std::unique_ptr<net::FrameConn>> clients_;
  std::uint64_t next_client_id_ = 1;
  // Closed connections awaiting safe (post-callback) destruction.
  std::vector<std::unique_ptr<net::FrameConn>> graveyard_;
  std::atomic<std::size_t> connected_count_{0};
  // Conns with frames queued this pass, flushed by flush_pass(). Scrubbed
  // on bury/shutdown so it never holds a dangling pointer.
  std::vector<net::FrameConn*> dirty_;
  net::WireMetrics wire_metrics_;

  Handler handler_;
  ClientHandler client_handler_;
  ClientCloseHandler client_close_;

  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_delivered_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> encode_calls_{0};
  std::atomic<std::uint64_t> backpressure_blocks_{0};
};

}  // namespace crsm
