#include "transport/thread_transport.h"

#include <stdexcept>
#include <utility>

namespace crsm {

namespace {

// Burns sender-side CPU proportional to message size, standing in for the
// kernel network stack (copies + checksum) a socket-based deployment pays.
std::uint64_t wire_work(std::string_view bytes, unsigned passes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned p = 0; p < passes; ++p) {
    for (unsigned char c : bytes) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace

ThreadTransport::ThreadTransport(std::size_t n, Options opt) : opt_(opt) {
  for (std::size_t i = 0; i < n; ++i) {
    auto p = std::make_unique<Peer>();
    p->out_bufs.resize(n);
    for (std::size_t s = 0; s < n; ++s) p->in.push_back(std::make_unique<Link>());
    peers_.push_back(std::move(p));
  }
}

void ThreadTransport::register_replica(ReplicaId id, Handler on_message,
                                       WakeFn wake) {
  Peer& p = *peers_.at(id);
  p.handler = std::move(on_message);
  p.wake = std::move(wake);
}

void ThreadTransport::send(ReplicaId from, ReplicaId to, const WireFrame& f) {
  if (from >= peers_.size() || to >= peers_.size()) {
    throw std::out_of_range("ThreadTransport::send");
  }
  // Encode-once: the first destination of a fan-out pays the serialization;
  // later destinations reuse the cached bytes.
  const bool fresh = !f.encoded_yet();
  const std::string_view bytes = f.bytes();
  if (fresh) encode_calls_.fetch_add(1, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);

  if (opt_.wire_passes_per_byte > 0 && to != from) {
    // Every destination pays the per-byte stack cost for its own copy, as a
    // real deployment would per socket; only the serialization is shared.
    volatile std::uint64_t sink = wire_work(bytes, opt_.wire_passes_per_byte);
    (void)sink;
  }

  if (opt_.sender_batching && to != from) {
    peers_[from]->out_bufs[to].append(bytes);
    return;
  }
  write_link(from, to, bytes);
}

void ThreadTransport::flush(ReplicaId from) {
  if (!opt_.sender_batching) return;
  auto& bufs = peers_.at(from)->out_bufs;
  for (std::size_t to = 0; to < bufs.size(); ++to) {
    if (bufs[to].empty()) continue;
    write_link(from, static_cast<ReplicaId>(to), bufs[to]);
    bufs[to].clear();  // keeps capacity for the next pass
  }
}

void ThreadTransport::write_link(ReplicaId from, ReplicaId to,
                                 std::string_view bytes) {
  Peer& dst = *peers_[to];
  Link& link = *dst.in[from];
  {
    std::lock_guard<std::mutex> lk(link.mu);
    link.buf.append(bytes);
  }
  // Self-sends are drained by the current loop pass; no wake needed.
  if (to != from && dst.wake) dst.wake();
}

bool ThreadTransport::poll(ReplicaId r) {
  Peer& p = *peers_.at(r);
  bool did_work = false;
  // One link at a time preserves FIFO per (sender, receiver) pair.
  for (auto& link : p.in) {
    {
      std::lock_guard<std::mutex> lk(link->mu);
      p.scratch.swap(link->buf);
    }
    if (p.scratch.empty()) continue;
    std::size_t pos = 0;
    while (pos < p.scratch.size()) {
      // Zero-copy: payloads view `scratch`; protocols copy what they keep.
      const Message m = Message::decode_stream_view(p.scratch, &pos);
      messages_delivered_.fetch_add(1, std::memory_order_relaxed);
      p.handler(m);
    }
    p.scratch.clear();
    did_work = true;
  }
  return did_work;
}

TransportStats ThreadTransport::stats() const {
  TransportStats s;
  s.messages_sent = messages_sent();
  s.messages_delivered = messages_delivered();
  s.bytes_sent = bytes_sent();
  s.encode_calls = encode_calls();
  return s;
}

}  // namespace crsm
