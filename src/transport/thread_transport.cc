#include "transport/thread_transport.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace crsm {

namespace {

// Burns sender-side CPU proportional to message size, standing in for the
// kernel network stack (copies + checksum) a socket-based deployment pays.
std::uint64_t wire_work(std::string_view bytes, unsigned passes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned p = 0; p < passes; ++p) {
    for (unsigned char c : bytes) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace

ThreadTransport::ThreadTransport(std::size_t n, Options opt) : opt_(opt) {
  for (std::size_t i = 0; i < n; ++i) {
    auto p = std::make_unique<Peer>();
    p->out_bufs.resize(n);
    p->out_counts.resize(n, 0);
    for (std::size_t s = 0; s < n; ++s) p->in.push_back(std::make_unique<Link>());
    peers_.push_back(std::move(p));
  }
}

void ThreadTransport::register_replica(ReplicaId id, Handler on_message,
                                       WakeFn wake) {
  Peer& p = *peers_.at(id);
  p.handler = std::move(on_message);
  p.wake = std::move(wake);
}

void ThreadTransport::send(ReplicaId from, ReplicaId to, const WireFrame& f) {
  if (from >= peers_.size() || to >= peers_.size()) {
    throw std::out_of_range("ThreadTransport::send");
  }
  // Encode-once: the first destination of a fan-out pays the serialization;
  // later destinations reuse the cached bytes.
  const bool fresh = !f.encoded_yet();
  const std::string_view bytes = f.bytes();
  if (fresh) encode_calls_.fetch_add(1, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);

  if (opt_.wire_passes_per_byte > 0 && to != from) {
    // Every destination pays the per-byte stack cost for its own copy, as a
    // real deployment would per socket; only the serialization is shared.
    volatile std::uint64_t sink = wire_work(bytes, opt_.wire_passes_per_byte);
    (void)sink;
  }

  if (opt_.sender_batching && to != from) {
    Peer& p = *peers_[from];
    p.out_bufs[to].append(bytes);
    p.out_counts[to] += 1;
    // Coalescing budget: hand over early rather than letting one pass grow
    // an unbounded batch (keeps receiver latency and memory bounded).
    if (opt_.max_coalesce_bytes > 0 &&
        p.out_bufs[to].size() >= opt_.max_coalesce_bytes) {
      write_link(from, to, p.out_bufs[to], p.out_counts[to]);
      p.out_bufs[to].clear();
      p.out_counts[to] = 0;
    }
    return;
  }
  write_link(from, to, bytes, /*msg_count=*/1);
}

void ThreadTransport::flush(ReplicaId from) {
  if (!opt_.sender_batching) return;
  Peer& p = *peers_.at(from);
  for (std::size_t to = 0; to < p.out_bufs.size(); ++to) {
    if (p.out_bufs[to].empty()) continue;
    write_link(from, static_cast<ReplicaId>(to), p.out_bufs[to],
               p.out_counts[to]);
    p.out_bufs[to].clear();  // keeps capacity for the next pass
    p.out_counts[to] = 0;
  }
}

void ThreadTransport::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& peer : peers_) {
    for (auto& link : peer->in) {
      std::lock_guard<std::mutex> lk(link->mu);
      link->drained.notify_all();
    }
  }
}

void ThreadTransport::write_link(ReplicaId from, ReplicaId to,
                                 std::string_view bytes,
                                 std::uint64_t msg_count) {
  Peer& dst = *peers_[to];
  Link& link = *dst.in[from];
  {
    std::unique_lock<std::mutex> lk(link.mu);
    // Bounded queue. Self-links are exempt: the receiver IS the sender, so
    // blocking would deadlock and dropping would wedge the protocol. An
    // empty link always admits, whatever the append's size — otherwise a
    // single frame (or sender batch) larger than the limit could never be
    // sent at all: blocked forever under kBlock, starved under kDrop.
    const std::size_t limit = opt_.max_link_bytes;
    const auto over = [&] {
      return !link.buf.empty() && link.buf.size() + bytes.size() > limit;
    };
    if (limit > 0 && to != from && over() &&
        !shutdown_.load(std::memory_order_acquire)) {
      if (opt_.overflow == BackpressurePolicy::kDrop) {
        messages_dropped_.fetch_add(msg_count, std::memory_order_relaxed);
        return;
      }
      // kBlock: stall this sender until the receiver drains (poll() swaps
      // the buffer out and notifies) or the transport shuts down. The
      // stall is bounded: two replicas back-pressuring each other would
      // otherwise deadlock (a blocked sender never reaches its own poll()),
      // so after the deadline the append proceeds beyond the limit.
      backpressure_blocks_.fetch_add(1, std::memory_order_relaxed);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(1000);
      while (over() && !shutdown_.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() < deadline) {
        link.drained.wait_for(lk, std::chrono::milliseconds(100));
      }
    }
    link.buf.append(bytes);
  }
  wire_flushes_.fetch_add(1, std::memory_order_relaxed);
  frames_flushed_.fetch_add(msg_count, std::memory_order_relaxed);
  // Self-sends are drained by the current loop pass; no wake needed.
  if (to != from && dst.wake) dst.wake();
}

bool ThreadTransport::poll(ReplicaId r) {
  Peer& p = *peers_.at(r);
  bool did_work = false;
  // One link at a time preserves FIFO per (sender, receiver) pair.
  for (auto& link : p.in) {
    {
      std::lock_guard<std::mutex> lk(link->mu);
      p.scratch.swap(link->buf);
    }
    // The link emptied: release any sender blocked on the bounded queue.
    if (opt_.max_link_bytes > 0) link->drained.notify_all();
    if (p.scratch.empty()) continue;
    std::size_t pos = 0;
    while (pos < p.scratch.size()) {
      // Zero-copy: payloads view `scratch`; protocols copy what they keep.
      const Message m = Message::decode_stream_view(p.scratch, &pos);
      messages_delivered_.fetch_add(1, std::memory_order_relaxed);
      p.handler(m);
    }
    p.scratch.clear();
    did_work = true;
  }
  return did_work;
}

TransportStats ThreadTransport::stats() const {
  TransportStats s;
  s.messages_sent = messages_sent();
  s.messages_delivered = messages_delivered();
  s.bytes_sent = bytes_sent();
  s.encode_calls = encode_calls();
  s.messages_dropped = messages_dropped_.load(std::memory_order_relaxed);
  s.backpressure_blocks = backpressure_blocks_.load(std::memory_order_relaxed);
  s.wire_flushes = wire_flushes_.load(std::memory_order_relaxed);
  s.frames_flushed = frames_flushed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace crsm
