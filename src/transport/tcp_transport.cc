#include "transport/tcp_transport.h"

#include <poll.h>

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace crsm {

TcpTransport::TcpTransport(net::EventLoop& loop, ReplicaId self, Options opt)
    : loop_(loop),
      self_(self),
      opt_(std::move(opt)),
      acceptor_(loop, opt_.listen_host, opt_.listen_port) {}

TcpTransport::~TcpTransport() { shutdown(); }

std::unique_ptr<net::FrameConn> TcpTransport::make_conn(net::Socket sock) {
  auto conn =
      std::make_unique<net::FrameConn>(loop_, std::move(sock), &wire_metrics_);
  conn->set_coalescing(coalescing());
  return conn;
}

void TcpTransport::mark_dirty(net::FrameConn* c) {
  if (!coalescing() || c == nullptr || c->closed()) return;
  if (!c->flush_queued()) {
    c->set_flush_queued(true);
    dirty_.push_back(c);
  }
  // Budget guard: a conn that crossed max_coalesce_bytes mid-pass flushes
  // now instead of letting one pass accumulate unbounded wire data. It
  // stays on the dirty list for the pass-end flush of whatever remains.
  if (c->pending_bytes() >= opt_.max_coalesce_bytes) (void)c->flush();
}

void TcpTransport::flush_pass() {
  if (dirty_.empty()) return;
  std::vector<net::FrameConn*> dirty;
  dirty.swap(dirty_);
  for (net::FrameConn* c : dirty) {
    c->set_flush_queued(false);
    // A flush failure fails the conn and runs its close handler inline;
    // bury() defers destruction past this loop, so later entries are at
    // worst closed, never dangling.
    if (!c->closed()) (void)c->flush();
  }
}

void TcpTransport::start(std::vector<TcpPeer> peers) {
  if (started_) return;
  started_ = true;
  peers_.resize(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) peers_[i].addr = peers[i];
  if (coalescing()) {
    // This transport owns the loop's wire-flush slot for its lifetime (one
    // transport per loop); shutdown() releases it.
    loop_.set_wire_flush_hook([this] { flush_pass(); });
  }
  acceptor_.start([this](net::Socket&& s) { on_accept(std::move(s)); });
  // Deterministic dial direction — the lower id dials the higher — gives
  // each unordered pair exactly one socket regardless of startup order.
  for (ReplicaId j = self_ + 1; j < peers_.size(); ++j) dial(j);
}

void TcpTransport::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  if (started_ && coalescing()) loop_.set_wire_flush_hook(nullptr);
  dirty_.clear();
  acceptor_.stop();
  routes_.clear();
  for (PeerLink& link : peers_) {
    if (link.connector) link.connector->stop();
    link.conn.reset();
    link.backlog.clear();
    link.backlog_bytes = 0;
  }
  pending_.clear();
  clients_.clear();
  graveyard_.clear();
  connected_count_.store(0, std::memory_order_relaxed);
}

void TcpTransport::dial(ReplicaId to) {
  PeerLink& link = peers_[to];
  if (!link.connector) {
    link.connector = std::make_unique<net::Connector>(
        loop_, link.addr.host, link.addr.port, opt_.reconnect);
  }
  link.connector->start([this, to](net::Socket&& s) {
    adopt_peer_conn(to, make_conn(std::move(s)), /*needs_start=*/true);
  });
}

void TcpTransport::adopt_peer_conn(ReplicaId id,
                                   std::unique_ptr<net::FrameConn> conn,
                                   bool needs_start) {
  PeerLink& link = peers_[id];
  if (link.conn) {
    // Simultaneous repair (both sides raced): keep the newest socket and
    // requeue whatever the old one had not fully written.
    routes_.erase(link.conn.get());
    auto unsent = link.conn->take_pending();
    while (!unsent.empty()) {
      link.backlog_bytes += unsent.back()->size();
      link.backlog.push_front(std::move(unsent.back()));
      unsent.pop_back();
    }
    connected_count_.fetch_sub(1, std::memory_order_relaxed);
    bury(std::move(link.conn));
  }
  net::FrameConn* raw = conn.get();
  link.conn = std::move(conn);
  routes_[raw] = Route{/*is_client=*/false, id};
  connected_count_.fetch_add(1, std::memory_order_relaxed);
  if (needs_start) {
    // A fresh socket from our Connector. We know who we dialed; a
    // mismatched hello answer means the mesh is miswired — drop and retry
    // rather than corrupt the link. (Accepted sockets were started at
    // accept time and already routed here by their hello, which is itself
    // the proof of a healthy link.)
    raw->start(
        self_,
        [this, raw, id](std::uint32_t hello) {
          if (hello != id) {
            on_conn_closed(raw);
          } else {
            peers_[id].redial_delay_us = 0;
          }
        },
        [this, raw](const Message& m) { on_conn_message(raw, m); },
        [this, raw] { on_conn_closed(raw); });
  } else {
    link.redial_delay_us = 0;
  }
  if (!link.conn || link.conn.get() != raw) return;  // torn down synchronously
  // Flush frames queued while the link was down (FIFO preserved: backlog
  // first, then new sends go straight to the connection).
  while (!link.backlog.empty() && link.conn && !link.conn->closed()) {
    auto frame = std::move(link.backlog.front());
    link.backlog.pop_front();
    link.backlog_bytes -= frame->size();
    link.conn->send(std::move(frame));
    mark_dirty(link.conn.get());
  }
}

void TcpTransport::on_accept(net::Socket&& sock) {
  auto conn = make_conn(std::move(sock));
  net::FrameConn* raw = conn.get();
  const std::uint64_t gen = ++accept_gen_;
  pending_.emplace(raw, PendingConn{std::move(conn), gen});
  // A connection that never says hello is dead weight: drop it after the
  // window. The generation check makes a stale timer (this address reused
  // by a later accept) a no-op.
  (void)loop_.schedule_after(opt_.hello_timeout_us, [this, raw, gen] {
    auto it = pending_.find(raw);
    if (it == pending_.end() || it->second.gen != gen) return;
    bury(std::move(it->second.conn));
    pending_.erase(it);
  });
  raw->start(
      self_,
      [this, raw](std::uint32_t hello) {
        auto it = pending_.find(raw);
        if (it == pending_.end()) return;
        std::unique_ptr<net::FrameConn> owned = std::move(it->second.conn);
        pending_.erase(it);
        if (hello == net::kClientHello) {
          const std::uint64_t conn_id = next_client_id_++;
          routes_[raw] = Route{/*is_client=*/true, conn_id};
          clients_.emplace(conn_id, std::move(owned));
          return;
        }
        if (hello < peers_.size() && hello != self_) {
          adopt_peer_conn(static_cast<ReplicaId>(hello), std::move(owned),
                          /*needs_start=*/false);
          return;
        }
        owned->close();  // nonsense hello
        bury(std::move(owned));
      },
      [this, raw](const Message& m) { on_conn_message(raw, m); },
      [this, raw] { on_conn_closed(raw); });
}

void TcpTransport::on_conn_message(net::FrameConn* raw, const Message& m) {
  auto it = routes_.find(raw);
  if (it == routes_.end()) return;  // torn down mid-batch
  if (it->second.is_client) {
    if (client_handler_) client_handler_(it->second.id, m);
    return;
  }
  messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (handler_) handler_(m);
}

void TcpTransport::on_conn_closed(net::FrameConn* raw) {
  auto pending_it = pending_.find(raw);
  if (pending_it != pending_.end()) {
    bury(std::move(pending_it->second.conn));
    pending_.erase(pending_it);
    return;
  }
  auto route_it = routes_.find(raw);
  if (route_it == routes_.end()) return;
  const Route route = route_it->second;
  routes_.erase(route_it);
  if (route.is_client) {
    auto it = clients_.find(route.id);
    if (it != clients_.end()) {
      bury(std::move(it->second));
      clients_.erase(it);
    }
    if (client_close_) client_close_(route.id);
    return;
  }
  const auto id = static_cast<ReplicaId>(route.id);
  PeerLink& link = peers_[id];
  if (link.conn.get() != raw) return;  // already replaced
  raw->close();
  auto unsent = link.conn->take_pending();
  while (!unsent.empty()) {
    link.backlog_bytes += unsent.back()->size();
    link.backlog.push_front(std::move(unsent.back()));
    unsent.pop_back();
  }
  connected_count_.fetch_sub(1, std::memory_order_relaxed);
  bury(std::move(link.conn));
  // Automatic reconnect: the dial side re-arms its Connector; the accept
  // side waits for the peer to redial. The Connector's own backoff only
  // covers failed connects, so throttle here too — a connection that
  // establishes and then immediately dies (wrong hello, flapping peer)
  // must not redial at line rate.
  if (!shut_down_ && self_ < id) {
    link.redial_delay_us = std::clamp<std::uint64_t>(
        link.redial_delay_us * 2, opt_.reconnect.initial_backoff_us,
        opt_.reconnect.max_backoff_us);
    (void)loop_.schedule_after(link.redial_delay_us, [this, id] {
      if (!shut_down_ && !peers_[id].conn) dial(id);
    });
  }
}

void TcpTransport::bury(std::unique_ptr<net::FrameConn> conn) {
  if (!conn) return;
  conn->close();
  if (conn->flush_queued()) {
    dirty_.erase(std::remove(dirty_.begin(), dirty_.end(), conn.get()),
                 dirty_.end());
  }
  graveyard_.push_back(std::move(conn));
  if (graveyard_.size() == 1) {
    // Destroy once the callback stack that closed it has unwound.
    loop_.post([this] { graveyard_.clear(); });
  }
}

void TcpTransport::send(ReplicaId from, ReplicaId to, const WireFrame& f) {
  if (from != self_ || to >= peers_.size()) {
    throw std::out_of_range("TcpTransport::send: bad replica id");
  }
  const bool fresh = !f.encoded_yet();
  std::shared_ptr<const std::string> bytes = f.shared_bytes();
  if (fresh) encode_calls_.fetch_add(1, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(bytes->size(), std::memory_order_relaxed);

  if (to == self_) {
    // Local delivery skips the wire but keeps the async contract: the
    // handler runs on a later loop pass, never synchronously inside send.
    loop_.post([this, msg = f.shared_msg()] {
      messages_delivered_.fetch_add(1, std::memory_order_relaxed);
      if (handler_) handler_(*msg);
    });
    return;
  }
  if (loop_.on_loop_thread()) {
    send_on_loop(to, std::move(bytes));
  } else {
    loop_.post([this, to, b = std::move(bytes)]() mutable {
      send_on_loop(to, std::move(b));
    });
  }
}

void TcpTransport::multicast(ReplicaId from, const std::vector<ReplicaId>& tos,
                             const WireFrame& f) {
  // The first send() encodes (shared); every further destination reuses the
  // same buffer — one serialization, N link queues.
  for (ReplicaId to : tos) send(from, to, f);
}

void TcpTransport::send_on_loop(ReplicaId to,
                                std::shared_ptr<const std::string> bytes) {
  if (shut_down_) return;
  PeerLink& link = peers_[to];
  const std::size_t limit = opt_.max_pending_bytes;
  // An empty queue always admits, whatever the frame's size — otherwise a
  // single frame larger than the limit could never be sent at all (dropped
  // on every retry, or blocked on a wait that cannot succeed).
  if (!link.conn || link.conn->closed()) {
    // Link down: queue for the reconnect. Blocking here would deadlock the
    // loop that performs the reconnect, so kBlock queues unbounded while
    // disconnected; kDrop sheds as usual.
    if (limit > 0 && opt_.policy == BackpressurePolicy::kDrop &&
        !link.backlog.empty() && link.backlog_bytes + bytes->size() > limit) {
      messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    link.backlog_bytes += bytes->size();
    link.backlog.push_back(std::move(bytes));
    return;
  }
  if (limit > 0 && opt_.policy == BackpressurePolicy::kDrop &&
      link.conn->pending_bytes() > 0 &&
      link.conn->pending_bytes() + bytes->size() > limit) {
    messages_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  link.conn->send(std::move(bytes));
  mark_dirty(link.conn.get());
  if (limit > 0 && opt_.policy == BackpressurePolicy::kBlock &&
      link.conn && link.conn->pending_bytes() > limit) {
    apply_backpressure(link);
  }
}

void TcpTransport::apply_backpressure(PeerLink& link) {
  // The kernel buffer and our queue are both full: stall this sender until
  // the peer drains. This intentionally holds up the loop thread — that is
  // what backpressure means for a single-threaded replica — and bails out
  // if the connection dies underneath us. The stall is bounded: two peers
  // back-pressuring each other would otherwise deadlock (neither loop
  // reads while blocked in here), so after the deadline the frame stays
  // queued beyond the limit and the loop resumes draining both directions.
  backpressure_blocks_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t deadline_us = net::EventLoop::mono_us() + 1'000'000;
  while (!shut_down_ && link.conn && !link.conn->closed() &&
         link.conn->pending_bytes() > opt_.max_pending_bytes &&
         net::EventLoop::mono_us() < deadline_us) {
    pollfd p{link.conn->fd(), POLLOUT, 0};
    (void)::poll(&p, 1, 50);
    if (link.conn && !link.conn->closed()) {
      (void)link.conn->flush();
      // On the uring backend a flush only queues an SQE; pump it to the
      // kernel and take the completion now, or this spin never drains.
      loop_.pump_writes();
    }
  }
}

void TcpTransport::send_to_client(std::uint64_t conn, const WireFrame& f) {
  auto it = clients_.find(conn);
  if (it == clients_.end()) return;  // client went away; reply dropped
  const bool fresh = !f.encoded_yet();
  std::shared_ptr<const std::string> bytes = f.shared_bytes();
  // Client replies are transport traffic like any other: counting all
  // three preserves the documented encode_calls <= messages_sent
  // invariant on reply-heavy nodes.
  if (fresh) encode_calls_.fetch_add(1, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(bytes->size(), std::memory_order_relaxed);
  it->second->send(std::move(bytes));
  mark_dirty(it->second.get());
}

std::size_t TcpTransport::connected_peers() const {
  return connected_count_.load(std::memory_order_relaxed);
}

TransportStats TcpTransport::stats() const {
  TransportStats s;
  s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  s.messages_delivered = messages_delivered_.load(std::memory_order_relaxed);
  s.messages_dropped = messages_dropped_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.encode_calls = encode_calls_.load(std::memory_order_relaxed);
  s.backpressure_blocks = backpressure_blocks_.load(std::memory_order_relaxed);
  s.wire_flushes = wire_metrics_.flushes.load(std::memory_order_relaxed);
  s.frames_flushed =
      wire_metrics_.frames_flushed.load(std::memory_order_relaxed);
  const net::IoRingStats rs = loop_.ring_stats();
  s.sqe_submits = rs.sqe_submits;
  s.sqes_submitted = rs.sqes_submitted;
  return s;
}

}  // namespace crsm
