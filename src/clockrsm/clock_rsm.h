// Clock-RSM replication protocol (paper Algorithms 1, 2 and 3).
//
// A multi-leader state machine replication protocol that totally orders
// commands by loosely synchronized physical clock timestamps. A command
// commits at a replica once (1) a majority of replicas logged it,
// (2) its order is stable — no smaller-timestamped message can still
// arrive — and (3) all smaller-timestamped commands committed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "clockrsm/reconfig.h"
#include "common/message.h"
#include "common/types.h"
#include "consensus/single_decree_paxos.h"
#include "rsm/failure_detector.h"
#include "rsm/protocol.h"

namespace crsm {

// Protocol knobs. This struct is the canonical record of the paper's
// experimental defaults; benches and the harness build on these values
// rather than re-stating them.
struct ClockRsmOptions {
  // Algorithm 2: periodic clock-time broadcast (a lone proposer's latency
  // bound drops from 2*max one-way to ~majority one-way + delta/2).
  // Paper default: enabled with delta = 5 ms in all EC2 experiments
  // (Section VI-B); ablation_clocktime_delta sweeps it.
  bool clocktime_enabled = true;
  Tick clocktime_delta_us = 5'000;

  // Algorithm 3: failure-detector-driven reconfiguration. When enabled,
  // CLOCKTIME doubles as the heartbeat, so clocktime_enabled must be true.
  // The paper's latency/throughput experiments run failure-free with
  // reconfiguration off; Section V only requires the suspicion timeout to
  // exceed the CLOCKTIME interval plus worst-case delivery delay. The
  // timeout/check/retry values below are this reproduction's choices
  // satisfying that constraint for the Table III EC2 topologies (max
  // one-way ~185 ms), not paper-specified constants.
  bool reconfig_enabled = false;
  Tick fd_timeout_us = 600'000;
  Tick fd_check_interval_us = 150'000;
  Tick consensus_retry_us = 400'000;

  // Crash-restart catch-up (Section V-B, specialized for the durable TCP
  // runtime): a replica that boots with prior state (log/checkpoint) replays
  // it, then retrieves the commands it missed from live peers via
  // CATCHUPREQ/CATCHUPREPLY — an open-ended variant of the RETRIEVECMDS
  // log-range fetch — before it resumes committing and accepting clients.
  // Off by default: simulator restart tests keep replay-only behavior, and
  // the reconfiguration path subsumes catch-up via SUSPEND + consensus.
  // Requires a live majority; see docs/OPERATIONS.md.
  bool catchup_on_recovery = false;
  Tick catchup_interval_us = 100'000;  // poll until caught up
};

class ClockRsmReplica final : public ReplicaProtocol {
 public:
  // `spec` is the administrator-fixed replica specification; the initial
  // configuration equals the specification.
  ClockRsmReplica(ProtocolEnv& env, std::vector<ReplicaId> spec,
                  ClockRsmOptions opt = {});

  void start() override;
  void submit(Command cmd) override;
  void on_message(const Message& m) override;
  [[nodiscard]] std::string name() const override { return "Clock-RSM"; }
  void fill_metrics(const obs::MetricSink& sink) const override;

  // Linearizable local reads (rides the paper's stability rule; see
  // docs/ARCHITECTURE.md "Linearizable local reads"). The read is assigned a
  // timestamp from this replica's monotonic send clock and queued; it is
  // served via ProtocolEnv::deliver_read once (1) every *peer's* LatestTV
  // passed the read timestamp — no smaller-timestamped write can still
  // arrive from anyone (our own sends are bounded below by the same counter
  // the read timestamp came from) — and (2) no pending write at or below the
  // read timestamp remains uncommitted. Reads are held, never served stale,
  // while the replica is frozen (reconfiguration), catching up after a
  // crash, or outside the configuration. Queued reads are soft state: a
  // crash drops them and clients retry.
  void submit_read(Command cmd) override;
  [[nodiscard]] bool supports_local_reads() const override { return true; }

  // Manually initiates reconfiguration to `new_config` (subset of Spec).
  // Also invoked automatically on failure suspicion when reconfig_enabled.
  void reconfigure(std::vector<ReplicaId> new_config);

  // --- introspection (tests, harness) ---
  [[nodiscard]] Epoch epoch() const { return epoch_; }
  [[nodiscard]] const std::vector<ReplicaId>& config() const { return config_; }
  [[nodiscard]] const std::vector<ReplicaId>& spec() const { return spec_; }
  [[nodiscard]] Timestamp last_commit_ts() const { return last_commit_ts_; }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] std::size_t pending_read_count() const {
    return pending_reads_.size();
  }
  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] bool catching_up() const { return catching_up_; }
  [[nodiscard]] bool in_config() const;

  struct Stats {
    std::uint64_t committed = 0;
    std::uint64_t prepares_sent = 0;
    std::uint64_t clocktimes_sent = 0;
    std::uint64_t clock_waits = 0;      // line-8 waits actually taken
    std::uint64_t reconfigurations = 0;
    std::uint64_t catchup_rounds = 0;   // CATCHUPREQ broadcasts sent
    std::uint64_t catchup_commits = 0;  // commands committed via catch-up
    std::uint64_t reads_submitted = 0;  // local reads accepted
    std::uint64_t reads_served = 0;     // local reads answered
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    Command cmd;
  };

  // --- Algorithm 1 ---
  void handle_request(Command cmd);
  void handle_prepare(const Message& m);
  void ack_prepare(Timestamp ts, Epoch epoch_at_receipt);
  void handle_prepare_ok(const Message& m);
  void handle_clock_time(const Message& m);
  void maybe_commit();
  [[nodiscard]] bool stable(Timestamp ts) const;

  // --- local read path ---
  void maybe_serve_reads();
  [[nodiscard]] bool read_stable(Tick read_ts) const;

  // --- Algorithm 2 ---
  void arm_clocktime_timer();

  // --- Algorithm 3 ---
  void handle_suspend(const Message& m);
  void handle_suspend_ok(const Message& m);
  void handle_retrieve_cmds(const Message& m);
  void handle_retrieve_reply(const Message& m);
  void on_consensus_decide(Epoch instance, const std::string& blob);
  void try_apply_decisions();
  void apply_decision(Epoch e, const ReconfigDecision& dec);
  void send_retrieve_cmds(Epoch e);
  void finish_decision(Epoch e, const ReconfigDecision& dec,
                       std::map<Timestamp, Command> extra);
  SingleDecreePaxos& consensus(Epoch instance);
  void arm_failure_detector_timer();
  void replay_from_log();

  // --- crash-restart catch-up (durable runtime) ---
  void begin_catchup();
  void send_catchup_request();
  void arm_catchup_timer();
  void handle_catchup_req(const Message& m);
  void handle_catchup_reply(const Message& m);
  void maybe_set_catchup_barrier(bool fallback);
  void maybe_finish_catchup();

  void broadcast(const Message& m);
  [[nodiscard]] Tick next_send_ticks();
  [[nodiscard]] Tick min_latest_tv() const;

  ProtocolEnv& env_;
  ClockRsmOptions opt_;
  // Commit-pipeline tracer, cached from the env at construction (nullptr in
  // untraced environments). Every stamp site checks active() first, so the
  // cost without live spans is one pointer test.
  obs::CommitTracer* tracer_ = nullptr;

  // Hard state (beyond the log, which lives in the env).
  std::vector<ReplicaId> spec_;
  std::vector<ReplicaId> config_;
  Epoch epoch_ = 0;

  // Soft state (Table I). The replication counter tracks *distinct* ackers
  // so duplicate PREPAREOKs (crash-restart re-acks, catch-up staging) are
  // idempotent: majority means a majority of replicas, never a count that a
  // repeated sender could inflate.
  std::map<Timestamp, Pending> pending_;
  std::map<Timestamp, std::set<ReplicaId>> rep_counter_;
  // Reads waiting for their timestamp to become stable, keyed by read
  // timestamp (ticks from next_send_ticks(), so strictly increasing;
  // multimap because the key is a bare tick, defensive against reuse).
  std::multimap<Tick, Command> pending_reads_;
  std::unordered_map<ReplicaId, Tick> latest_tv_;
  Timestamp last_commit_ts_;
  Tick last_sent_ = 0;  // enforces sending in strictly increasing ts order

  // Reconfiguration state.
  bool frozen_ = false;
  bool reconfig_in_progress_ = false;
  Epoch proposed_epoch_ = 0;
  std::vector<ReplicaId> proposed_config_;
  Timestamp proposed_cts_;
  std::set<ReplicaId> suspend_oks_;
  std::map<Timestamp, Command> collected_cmds_;
  // Epochs whose collection *this incarnation* handed its log to (recorded
  // when the SUSPENDOK leaves). Deliberately volatile: after a crash the set
  // is empty, so re-applying an old decision that lists us among its
  // collectors no longer skips the follow-up catch-up — the log that earned
  // the listing died with the previous incarnation (see finish_decision).
  std::set<Epoch> contributed_epochs_;
  std::unordered_map<Epoch, std::unique_ptr<SingleDecreePaxos>> consensus_;
  std::map<Epoch, ReconfigDecision> undelivered_decisions_;
  // Normal-case messages from epochs ahead of ours, in arrival order. A
  // replica whose application of an epoch decision lags (asymmetric links,
  // state-transfer round trips) would otherwise permanently miss the new
  // epoch's first PREPAREs/PREPAREOKs — the decision only covers commands
  // from before it formed — and later commit around the hole.
  // finish_decision replays these on epoch entry; on overflow (extreme lag)
  // it falls back to a catch-up round instead.
  static constexpr std::size_t kFutureBufferCap = 16384;
  std::vector<Message> future_msgs_;
  bool future_overflow_ = false;
  // Crash-restart under reconfiguration: the first decision application
  // that lands us in the configuration runs a catch-up round (see start()).
  bool rejoin_catchup_pending_ = false;

  // State-transfer-in-progress bookkeeping (per pending decision epoch).
  // The fetch completes only after a reply whose server commit bound covers
  // the full range arrived (fetch_complete_seen_); send_retrieve_cmds
  // re-asks periodically until then.
  std::optional<Epoch> fetching_for_epoch_;
  Timestamp fetch_to_;
  std::set<ReplicaId> fetch_replies_;
  bool fetch_complete_seen_ = false;
  std::map<Timestamp, Command> fetched_cmds_;
  std::deque<Command> deferred_submits_;
  std::unique_ptr<FailureDetector> fd_;

  // Catch-up state. The barrier is the highest timestamp any peer had seen
  // when we rejoined: every command that could have been lost to the crash
  // is at or below it, so catch-up may end once last_commit_ts_ passes it.
  bool catching_up_ = false;
  bool catchup_barrier_known_ = false;
  bool catchup_all_replied_ = false;  // barrier built from every peer
  // Catch-up can run several times per instance (crash recovery, rejoin,
  // non-collector decisions); the session token invalidates a cancelled
  // round's timer chain, and polls are counted per round so the
  // majority-fallback grace period applies to each round, not the lifetime.
  std::uint64_t catchup_session_ = 0;
  std::uint64_t catchup_round_polls_ = 0;
  Timestamp catchup_barrier_;
  Timestamp catchup_candidate_barrier_;
  std::set<ReplicaId> catchup_replied_;  // peers whose first reply arrived
  // Our replayed unresolved prepares, pending confirmation that some peer
  // also holds them. One still unconfirmed when catch-up ends never left
  // this machine: it can never reach majority and is dropped (the client
  // retries), or it would head-block pending_ forever.
  std::set<Timestamp> catchup_restaged_;

  Stats stats_;
};

}  // namespace crsm
