#include "clockrsm/clock_rsm.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "storage/recovery.h"

namespace crsm {

namespace {

struct TsHash {
  std::size_t operator()(const Timestamp& ts) const {
    return std::hash<Tick>()(ts.ticks) * 1000003u ^ std::hash<ReplicaId>()(ts.origin);
  }
};

bool contains(const std::vector<ReplicaId>& v, ReplicaId r) {
  return std::find(v.begin(), v.end(), r) != v.end();
}

}  // namespace

ClockRsmReplica::ClockRsmReplica(ProtocolEnv& env, std::vector<ReplicaId> spec,
                                 ClockRsmOptions opt)
    : env_(env), opt_(opt), spec_(std::move(spec)), config_(spec_) {
  if (spec_.empty()) throw std::invalid_argument("empty replica specification");
  if (!contains(spec_, env_.self())) {
    throw std::invalid_argument("replica not in specification");
  }
  if (opt_.reconfig_enabled && !opt_.clocktime_enabled) {
    // CLOCKTIME doubles as the failure detector heartbeat.
    throw std::invalid_argument("reconfig requires the clock-time extension");
  }
  for (ReplicaId r : config_) latest_tv_[r] = 0;
  if (opt_.reconfig_enabled) {
    std::vector<ReplicaId> peers;
    for (ReplicaId r : spec_) {
      if (r != env_.self()) peers.push_back(r);
    }
    fd_ = std::make_unique<FailureDetector>(std::move(peers), opt_.fd_timeout_us);
  }
}

void ClockRsmReplica::start() {
  const bool recovering = !env_.log().records().empty() ||
                          env_.recovery_floor() > kZeroTimestamp;
  if (recovering) replay_from_log();
  if (opt_.clocktime_enabled) arm_clocktime_timer();
  if (opt_.reconfig_enabled) {
    fd_->reset_all(env_.clock_now());
    arm_failure_detector_timer();
    if (recovering) {
      // Reintegration (Section V-B): after replaying the log, rejoin the
      // current configuration via reconfiguration. If epochs advanced while
      // we were down, stale SUSPENDs are answered with the corresponding
      // consensus decisions and we catch up epoch by epoch.
      frozen_ = true;  // do not process normal traffic until reintegrated
      reconfigure(spec_);
    }
  }
}

void ClockRsmReplica::replay_from_log() {
  // Crash recovery (Section V-B): committed commands replay in timestamp
  // order; PREPARE entries without a COMMIT mark stay unresolved until the
  // replica rejoins via reconfiguration (which re-derives them from a
  // majority), so they are intentionally not re-entered into PendingCmds.
  const Timestamp floor = env_.recovery_floor();
  ReplayResult rr = replay_log(env_.log().records());
  for (const LogRecord& r : rr.committed) {
    if (r.ts > floor) env_.deliver(r.cmd, r.ts, /*local_origin=*/false);
  }
  last_commit_ts_ = std::max(floor, rr.last_commit_ts);
  last_sent_ = last_commit_ts_.ticks;
  for (const LogRecord& r : env_.log().records()) {
    if (r.ts.origin == env_.self()) last_sent_ = std::max(last_sent_, r.ts.ticks);
  }
  for (auto& [r, tv] : latest_tv_) tv = std::max(tv, last_commit_ts_.ticks);
}

bool ClockRsmReplica::in_config() const { return contains(config_, env_.self()); }

Tick ClockRsmReplica::next_send_ticks() {
  Tick t = env_.clock_now();
  if (t <= last_sent_) t = last_sent_ + 1;
  last_sent_ = t;
  return t;
}

void ClockRsmReplica::broadcast(const Message& m) {
  // Fan-out goes through the environment's transport, which serializes the
  // message once for all destinations.
  env_.multicast(config_, m);
}

Tick ClockRsmReplica::min_latest_tv() const {
  Tick m = std::numeric_limits<Tick>::max();
  for (ReplicaId r : config_) {
    auto it = latest_tv_.find(r);
    const Tick v = it == latest_tv_.end() ? 0 : it->second;
    m = std::min(m, v);
  }
  return m;
}

// --------------------------------------------------------------------------
// Algorithm 1: replication protocol
// --------------------------------------------------------------------------

void ClockRsmReplica::submit(Command cmd) {
  if (frozen_ || !in_config()) {
    deferred_submits_.push_back(std::move(cmd));
    return;
  }
  handle_request(std::move(cmd));
}

void ClockRsmReplica::handle_request(Command cmd) {
  // Lines 1-3: assign the latest clock time and broadcast PREPARE.
  Message m;
  m.type = MsgType::kPrepare;
  m.epoch = epoch_;
  m.ts = Timestamp{next_send_ticks(), env_.self()};
  m.cmd = std::move(cmd);
  ++stats_.prepares_sent;
  broadcast(m);
}

void ClockRsmReplica::on_message(const Message& m) {
  if (fd_) fd_->heartbeat(m.from, env_.clock_now());

  switch (m.type) {
    // Consensus messages are routed by instance id regardless of epoch.
    case MsgType::kConsPrepare:
    case MsgType::kConsPromise:
    case MsgType::kConsAccept:
    case MsgType::kConsAccepted:
    case MsgType::kConsDecide:
      consensus(m.epoch).on_message(m);
      return;

    case MsgType::kSuspend:
      handle_suspend(m);
      return;
    case MsgType::kSuspendOk:
      handle_suspend_ok(m);
      return;
    case MsgType::kRetrieveCmds:
      handle_retrieve_cmds(m);
      return;
    case MsgType::kRetrieveReply:
      handle_retrieve_reply(m);
      return;

    case MsgType::kPrepare:
    case MsgType::kPrepareOk:
    case MsgType::kClockTime:
      // Normal-case messages are only meaningful within the current epoch
      // (Section V-A: the epoch number lets us ignore messages from older
      // epochs; newer-epoch messages are dropped too — the consensus
      // decision will bring us up to date).
      if (m.epoch != epoch_) {
        if (m.epoch < epoch_) {
          // Help a laggard catch up: answer with the decision that created
          // our current epoch (idempotent; decisions are self-contained).
          auto it = consensus_.find(epoch_);
          if (it != consensus_.end() && it->second->decided()) {
            Message d;
            d.type = MsgType::kConsDecide;
            d.epoch = epoch_;
            d.blob = it->second->decision();
            env_.send(m.from, d);
          }
        }
        return;
      }
      if (m.type == MsgType::kPrepare) {
        handle_prepare(m);
      } else if (m.type == MsgType::kPrepareOk) {
        handle_prepare_ok(m);
      } else {
        handle_clock_time(m);
      }
      return;

    default:
      return;  // not a Clock-RSM message
  }
}

void ClockRsmReplica::handle_prepare(const Message& m) {
  // Line 8 of Algorithm 3: a suspended replica stops processing PREPARE.
  if (frozen_) return;
  if (!contains(config_, m.from)) return;
  if (m.ts <= last_commit_ts_) return;  // defensive: already superseded

  // Lines 4-7.
  pending_.emplace(m.ts, Pending{m.cmd});
  auto& tv = latest_tv_[m.from];
  tv = std::max(tv, m.ts.ticks);
  env_.log().append(LogRecord::prepare(m.ts, m.cmd));
  env_.log().sync();

  // Lines 8-10: wait until ts < Clock, then acknowledge to all replicas.
  // The wait is highly unlikely with reasonably synchronized clocks; it only
  // triggers when the sender's clock runs ahead of ours by more than the
  // one-way network latency.
  const Tick now = env_.clock_now();
  if (now > m.ts.ticks) {
    ack_prepare(m.ts, epoch_);
  } else {
    ++stats_.clock_waits;
    env_.schedule_after(m.ts.ticks - now + 1,
                        [this, ts = m.ts, e = epoch_] { ack_prepare(ts, e); });
  }
  maybe_commit();
}

void ClockRsmReplica::ack_prepare(Timestamp ts, Epoch epoch_at_receipt) {
  if (frozen_ || epoch_ != epoch_at_receipt) return;
  Message ok;
  ok.type = MsgType::kPrepareOk;
  ok.epoch = epoch_;
  ok.ts = ts;
  ok.clock_ts = next_send_ticks();
  broadcast(ok);
}

void ClockRsmReplica::handle_prepare_ok(const Message& m) {
  if (!contains(config_, m.from)) return;
  // Lines 11-13.
  auto& tv = latest_tv_[m.from];
  tv = std::max(tv, m.clock_ts);
  if (m.ts > last_commit_ts_) {
    ++rep_counter_[m.ts];
  }
  maybe_commit();
}

void ClockRsmReplica::handle_clock_time(const Message& m) {
  if (!contains(config_, m.from)) return;
  auto& tv = latest_tv_[m.from];
  tv = std::max(tv, m.clock_ts);
  maybe_commit();
}

bool ClockRsmReplica::stable(Timestamp ts) const {
  // Because every replica sends messages in strictly increasing timestamp
  // order over FIFO links, LatestTV[k] >= ts.ticks means no message (and in
  // particular no PREPARE) with a smaller timestamp can still arrive.
  return ts.ticks <= min_latest_tv();
}

void ClockRsmReplica::maybe_commit() {
  // Lines 14-23: commit the smallest pending timestamp while (1) majority
  // replication, (2) stable order and (3) prefix replication hold. Checking
  // only the head of PendingCmds and executing in timestamp order makes
  // condition (3) inductive.
  while (!pending_.empty()) {
    const auto it = pending_.begin();
    const Timestamp ts = it->first;
    auto rc = rep_counter_.find(ts);
    if (rc == rep_counter_.end() ||
        static_cast<std::size_t>(rc->second) < majority(spec_.size())) {
      break;
    }
    if (!stable(ts)) break;

    Command cmd = std::move(it->second.cmd);
    pending_.erase(it);
    rep_counter_.erase(rc);

    env_.log().append(LogRecord::commit(ts));
    last_commit_ts_ = ts;
    ++stats_.committed;
    env_.deliver(cmd, ts, ts.origin == env_.self());
  }
}

// --------------------------------------------------------------------------
// Algorithm 2: periodic clock time broadcast
// --------------------------------------------------------------------------

void ClockRsmReplica::arm_clocktime_timer() {
  env_.schedule_after(opt_.clocktime_delta_us, [this] {
    if (!frozen_ && in_config()) {
      const Tick now = env_.clock_now();
      const Tick own = latest_tv_[env_.self()];
      if (now >= own + opt_.clocktime_delta_us) {
        Message m;
        m.type = MsgType::kClockTime;
        m.epoch = epoch_;
        m.clock_ts = next_send_ticks();
        ++stats_.clocktimes_sent;
        broadcast(m);
      }
    }
    arm_clocktime_timer();
  });
}

// --------------------------------------------------------------------------
// Algorithm 3: reconfiguration
// --------------------------------------------------------------------------

SingleDecreePaxos& ClockRsmReplica::consensus(Epoch instance) {
  auto it = consensus_.find(instance);
  if (it == consensus_.end()) {
    auto inst = std::make_unique<SingleDecreePaxos>(
        env_, spec_, instance,
        [this, instance](const std::string& blob) {
          on_consensus_decide(instance, blob);
        },
        opt_.consensus_retry_us);
    it = consensus_.emplace(instance, std::move(inst)).first;
  }
  return *it->second;
}

void ClockRsmReplica::reconfigure(std::vector<ReplicaId> new_config) {
  if (reconfig_in_progress_) return;
  for (ReplicaId r : new_config) {
    if (!contains(spec_, r)) throw std::invalid_argument("config not in spec");
  }
  if (new_config.size() < majority(spec_.size())) {
    throw std::invalid_argument("new configuration below majority of spec");
  }
  reconfig_in_progress_ = true;
  proposed_epoch_ = epoch_ + 1;
  proposed_config_ = std::move(new_config);
  proposed_cts_ = last_commit_ts_;
  suspend_oks_.clear();
  collected_cmds_.clear();

  Message m;
  m.type = MsgType::kSuspend;
  m.epoch = proposed_epoch_;
  m.ts = proposed_cts_;
  env_.multicast(spec_, m);
}

void ClockRsmReplica::handle_suspend(const Message& m) {
  if (m.epoch <= epoch_) {
    // Stale reconfigurer (e.g. a recovering replica many epochs behind): if
    // we know the decision of that instance, answer it directly so the
    // sender can catch up.
    auto it = consensus_.find(m.epoch);
    if (it != consensus_.end() && it->second->decided()) {
      Message d;
      d.type = MsgType::kConsDecide;
      d.epoch = m.epoch;
      d.blob = it->second->decision();
      env_.send(m.from, d);
    }
    return;
  }
  // Lines 7-10: freeze the log and hand over everything above cts.
  frozen_ = true;
  Message r;
  r.type = MsgType::kSuspendOk;
  r.epoch = m.epoch;
  std::unordered_set<Timestamp, TsHash> seen;
  for (const LogRecord& rec : env_.log().records()) {
    if (rec.type == LogType::kPrepare && rec.ts > m.ts && seen.insert(rec.ts).second) {
      r.records.push_back(rec);
    }
  }
  env_.send(m.from, r);
}

void ClockRsmReplica::handle_suspend_ok(const Message& m) {
  if (!reconfig_in_progress_ || m.epoch != proposed_epoch_) return;
  if (!suspend_oks_.insert(m.from).second) return;
  for (const LogRecord& rec : m.records) {
    collected_cmds_.emplace(rec.ts, rec.cmd);
  }
  if (suspend_oks_.size() >= majority(spec_.size())) {
    ReconfigDecision dec;
    dec.config = proposed_config_;
    dec.cts = proposed_cts_;
    dec.cmds.reserve(collected_cmds_.size());
    for (const auto& [ts, cmd] : collected_cmds_) {
      dec.cmds.push_back(LogRecord::prepare(ts, cmd));
    }
    consensus(proposed_epoch_).propose(dec.encode());
  }
}

void ClockRsmReplica::handle_retrieve_cmds(const Message& m) {
  // Lines 29-31: return logged commands with from < ts <= to.
  const Timestamp from = m.ts;
  const Timestamp to{m.clock_ts, static_cast<ReplicaId>(m.a)};
  Message r;
  r.type = MsgType::kRetrieveReply;
  r.epoch = m.epoch;
  std::unordered_set<Timestamp, TsHash> seen;
  for (const LogRecord& rec : env_.log().records()) {
    if (rec.type == LogType::kPrepare && rec.ts > from && rec.ts <= to &&
        seen.insert(rec.ts).second) {
      r.records.push_back(rec);
    }
  }
  env_.send(m.from, r);
}

void ClockRsmReplica::handle_retrieve_reply(const Message& m) {
  if (!fetching_for_epoch_ || m.epoch != *fetching_for_epoch_) return;
  if (!fetch_replies_.insert(m.from).second) return;
  for (const LogRecord& rec : m.records) {
    if (rec.ts > last_commit_ts_ && rec.ts <= fetch_to_) {
      fetched_cmds_.emplace(rec.ts, rec.cmd);
    }
  }
  if (fetch_replies_.size() >= majority(spec_.size())) {
    const Epoch e = *fetching_for_epoch_;
    fetching_for_epoch_.reset();
    auto it = undelivered_decisions_.find(e);
    assert(it != undelivered_decisions_.end());
    ReconfigDecision dec = it->second;
    std::map<Timestamp, Command> extra = std::move(fetched_cmds_);
    fetched_cmds_.clear();
    finish_decision(e, dec, std::move(extra));
  }
}

void ClockRsmReplica::on_consensus_decide(Epoch instance, const std::string& blob) {
  if (instance <= epoch_) return;
  undelivered_decisions_[instance] = ReconfigDecision::decode(blob);
  try_apply_decisions();
}

void ClockRsmReplica::try_apply_decisions() {
  if (fetching_for_epoch_) return;  // state transfer in flight
  // Decisions are self-contained (config + cts + all commands above cts from
  // a majority), so when several epochs are pending only the newest matters.
  while (!undelivered_decisions_.empty()) {
    auto it = std::prev(undelivered_decisions_.end());
    const Epoch e = it->first;
    if (e <= epoch_) {
      undelivered_decisions_.clear();
      return;
    }
    ReconfigDecision dec = it->second;
    undelivered_decisions_.clear();
    apply_decision(e, dec);
    return;
  }
}

void ClockRsmReplica::apply_decision(Epoch e, const ReconfigDecision& dec) {
  if (dec.cts > last_commit_ts_) {
    // Lines 12-14: we lag behind the decided timestamp; fetch the missing
    // prefix from a majority before applying the decided commands.
    frozen_ = true;
    fetching_for_epoch_ = e;
    undelivered_decisions_[e] = dec;
    fetch_to_ = dec.cts;
    fetch_replies_.clear();
    fetched_cmds_.clear();
    Message m;
    m.type = MsgType::kRetrieveCmds;
    m.epoch = e;
    m.ts = last_commit_ts_;
    m.clock_ts = dec.cts.ticks;
    m.a = dec.cts.origin;
    env_.multicast(spec_, m);
    return;
  }
  finish_decision(e, dec, {});
}

void ClockRsmReplica::finish_decision(Epoch e, const ReconfigDecision& dec,
                                      std::map<Timestamp, Command> extra) {
  // `extra` holds state-transferred commands in (last_commit_ts, dec.cts];
  // dec.cmds holds every command above dec.cts that could have committed.
  std::map<Timestamp, Command> to_apply = std::move(extra);
  std::unordered_set<Timestamp, TsHash> decided_set;
  for (const LogRecord& rec : dec.cmds) {
    decided_set.insert(rec.ts);
    if (rec.ts > last_commit_ts_) to_apply.emplace(rec.ts, rec.cmd);
  }

  // Line 15: drop uncommitted PREPAREs above cts that did not survive.
  env_.log().remove_uncommitted_above(
      dec.cts, [&decided_set](const Timestamp& ts) { return decided_set.contains(ts); });

  // Lines 16-20: apply the surviving commands in timestamp order.
  std::unordered_set<Timestamp, TsHash> in_log;
  for (const LogRecord& rec : env_.log().records()) {
    if (rec.type == LogType::kPrepare) in_log.insert(rec.ts);
  }
  for (const auto& [ts, cmd] : to_apply) {
    if (ts <= last_commit_ts_) continue;
    if (!in_log.contains(ts)) {
      env_.log().append(LogRecord::prepare(ts, cmd));
      in_log.insert(ts);
    }
    env_.log().append(LogRecord::commit(ts));
    last_commit_ts_ = ts;
    ++stats_.committed;
    env_.deliver(cmd, ts, ts.origin == env_.self());
  }
  env_.log().sync();

  // Lines 21-24: install the new epoch and configuration.
  epoch_ = e;
  config_ = dec.config;
  ++stats_.reconfigurations;
  latest_tv_.clear();
  const Tick base = std::max(last_commit_ts_.ticks, dec.cts.ticks);
  for (ReplicaId r : config_) latest_tv_[r] = base;
  last_sent_ = std::max(last_sent_, base);
  pending_.clear();
  rep_counter_.clear();
  frozen_ = false;
  reconfig_in_progress_ = false;
  suspend_oks_.clear();
  collected_cmds_.clear();
  if (fd_) fd_->reset_all(env_.clock_now());

  if (in_config()) {
    // Resume processing queued client requests.
    while (!deferred_submits_.empty()) {
      Command c = std::move(deferred_submits_.front());
      deferred_submits_.pop_front();
      handle_request(std::move(c));
    }
  } else if (opt_.reconfig_enabled) {
    // We were removed (e.g. falsely suspected, or we are rejoining after
    // recovery): ask to be added back.
    std::vector<ReplicaId> cfg = config_;
    cfg.push_back(env_.self());
    std::sort(cfg.begin(), cfg.end());
    reconfigure(std::move(cfg));
  }
}

void ClockRsmReplica::arm_failure_detector_timer() {
  env_.schedule_after(opt_.fd_check_interval_us, [this] {
    if (!frozen_ && !reconfig_in_progress_ && in_config()) {
      const Tick now = env_.clock_now();
      std::vector<ReplicaId> next;
      bool changed = false;
      for (ReplicaId r : config_) {
        if (r != env_.self() && fd_->is_suspect(r, now)) {
          changed = true;
        } else {
          next.push_back(r);
        }
      }
      if (changed && next.size() >= majority(spec_.size())) {
        reconfigure(std::move(next));
      }
    }
    arm_failure_detector_timer();
  });
}

}  // namespace crsm
