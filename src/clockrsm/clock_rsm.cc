#include "clockrsm/clock_rsm.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include <cstdio>
#include <cstdlib>

#include "common/codec.h"
#include "obs/trace.h"
#include "storage/checkpoint.h"
#include "storage/recovery.h"

namespace crsm {

namespace {

struct TsHash {
  std::size_t operator()(const Timestamp& ts) const {
    return std::hash<Tick>()(ts.ticks) * 1000003u ^ std::hash<ReplicaId>()(ts.origin);
  }
};

bool contains(const std::vector<ReplicaId>& v, ReplicaId r) {
  return std::find(v.begin(), v.end(), r) != v.end();
}

// Timestamps with a COMMIT mark in `records` (catch-up serving/recovery
// needs to tell genuinely committed prepares from stale ones).
std::unordered_set<Timestamp, TsHash> commit_marks(
    const std::vector<LogRecord>& records) {
  std::unordered_set<Timestamp, TsHash> marks;
  for (const LogRecord& r : records) {
    if (r.type == LogType::kCommit) marks.insert(r.ts);
  }
  return marks;
}

// Env-gated stderr trace of reconfiguration decisions (CRSM_DEBUG_RECONFIG):
// DST swarm failures in this machinery are subtle interleavings, and seeing
// propose/finish with cts, command counts and commit state per replica is
// how the divergences in docs/TESTING.md were diagnosed.
bool debug_reconfig() {
  static const bool on = std::getenv("CRSM_DEBUG_RECONFIG") != nullptr;
  return on;
}

// CRSM_DEBUG_READS traces the pending-read drain: each attempt prints the
// head read timestamp against the stability vector and the pending-write
// head — the two conditions that hold a read — which is how the staged-entry
// head-block fixed in handle_catchup_reply was found.
bool debug_reads() {
  static const bool on = std::getenv("CRSM_DEBUG_READS") != nullptr;
  return on;
}

}  // namespace

ClockRsmReplica::ClockRsmReplica(ProtocolEnv& env, std::vector<ReplicaId> spec,
                                 ClockRsmOptions opt)
    : env_(env), opt_(opt), tracer_(env.tracer()), spec_(std::move(spec)),
      config_(spec_) {
  if (spec_.empty()) throw std::invalid_argument("empty replica specification");
  if (!contains(spec_, env_.self())) {
    throw std::invalid_argument("replica not in specification");
  }
  if (opt_.reconfig_enabled && !opt_.clocktime_enabled) {
    // CLOCKTIME doubles as the failure detector heartbeat.
    throw std::invalid_argument("reconfig requires the clock-time extension");
  }
  for (ReplicaId r : config_) latest_tv_[r] = 0;
  if (opt_.reconfig_enabled) {
    std::vector<ReplicaId> peers;
    for (ReplicaId r : spec_) {
      if (r != env_.self()) peers.push_back(r);
    }
    fd_ = std::make_unique<FailureDetector>(std::move(peers), opt_.fd_timeout_us);
  }
}

void ClockRsmReplica::start() {
  const bool recovering = !env_.log().records().empty() ||
                          env_.recovery_floor() > kZeroTimestamp;
  if (recovering) replay_from_log();
  if (opt_.clocktime_enabled) arm_clocktime_timer();
  if (opt_.reconfig_enabled) {
    fd_->reset_all(env_.clock_now());
    arm_failure_detector_timer();
    if (recovering) {
      // Reintegration (Section V-B): after replaying the log, rejoin the
      // current configuration via reconfiguration. If epochs advanced while
      // we were down, stale SUSPENDs are answered with the corresponding
      // consensus decisions and we catch up epoch by epoch.
      //
      // Reconfiguration alone is not enough: when the cluster's epoch never
      // advanced past ours, the rejoin terminates by (re)applying an old
      // decision that pre-dates our crash and re-derives nothing — but
      // survivors may have committed commands during our downtime
      // (including our own unresolved tail, which they had acked). The
      // first decision application that lands us in the configuration
      // therefore follows up with a catch-up round (found by DST; the
      // minimized scenario is a regression test in tests/dst_test.cc).
      frozen_ = true;  // do not process normal traffic until reintegrated
      rejoin_catchup_pending_ = true;
      reconfigure(spec_);
    }
  } else if (recovering && opt_.catchup_on_recovery) {
    begin_catchup();
  }
}

void ClockRsmReplica::replay_from_log() {
  // Crash recovery (Section V-B): committed commands replay in timestamp
  // order; PREPARE entries without a COMMIT mark stay unresolved until the
  // replica rejoins via reconfiguration (which re-derives them from a
  // majority), so they are intentionally not re-entered into PendingCmds.
  const Timestamp floor = env_.recovery_floor();
  ReplayResult rr = replay_log(env_.log().records());
  for (const LogRecord& r : rr.committed) {
    if (r.ts > floor) env_.deliver(r.cmd, r.ts, /*local_origin=*/false);
  }
  last_commit_ts_ = std::max(floor, rr.last_commit_ts);
  last_sent_ = last_commit_ts_.ticks;
  for (const LogRecord& r : env_.log().records()) {
    if (r.ts.origin == env_.self()) last_sent_ = std::max(last_sent_, r.ts.ticks);
  }
  for (auto& [r, tv] : latest_tv_) tv = std::max(tv, last_commit_ts_.ticks);
}

bool ClockRsmReplica::in_config() const { return contains(config_, env_.self()); }

Tick ClockRsmReplica::next_send_ticks() {
  Tick t = env_.clock_now();
  if (t <= last_sent_) t = last_sent_ + 1;
  last_sent_ = t;
  return t;
}

void ClockRsmReplica::broadcast(const Message& m) {
  // Fan-out goes through the environment's transport, which serializes the
  // message once for all destinations.
  env_.multicast(config_, m);
}

Tick ClockRsmReplica::min_latest_tv() const {
  Tick m = std::numeric_limits<Tick>::max();
  for (ReplicaId r : config_) {
    auto it = latest_tv_.find(r);
    const Tick v = it == latest_tv_.end() ? 0 : it->second;
    m = std::min(m, v);
  }
  return m;
}

// --------------------------------------------------------------------------
// Algorithm 1: replication protocol
// --------------------------------------------------------------------------

void ClockRsmReplica::submit(Command cmd) {
  if (frozen_ || catching_up_ || !in_config()) {
    deferred_submits_.push_back(std::move(cmd));
    return;
  }
  handle_request(std::move(cmd));
}

void ClockRsmReplica::submit_read(Command cmd) {
  // The read timestamp comes from the same monotonic counter that stamps
  // our outgoing messages: it exceeds every timestamp this replica has sent
  // (and, transitively, the timestamp of every write whose commit anywhere
  // depended on one of our acks or clock gossips), so a read invoked after a
  // write completed is always ordered after that write.
  const Tick rts = next_send_ticks();
  ++stats_.reads_submitted;
  pending_reads_.emplace(rts, std::move(cmd));
  maybe_serve_reads();
}

bool ClockRsmReplica::read_stable(Tick read_ts) const {
  // Like stable(), but the replica's own entry is exempt: our future sends
  // are bounded below by last_sent_, which the read timestamp already
  // reserved, so no local write can ever be assigned a smaller timestamp.
  // Waiting for our own CLOCKTIME to loop back would only add latency.
  for (ReplicaId r : config_) {
    if (r == env_.self()) continue;
    auto it = latest_tv_.find(r);
    if ((it == latest_tv_.end() ? 0 : it->second) < read_ts) return false;
  }
  return true;
}

void ClockRsmReplica::maybe_serve_reads() {
  if (debug_reads() && !pending_reads_.empty()) {
    std::string tvs;
    for (ReplicaId r : config_) {
      auto it = latest_tv_.find(r);
      tvs += std::to_string(r) + "=" +
             std::to_string(it == latest_tv_.end() ? 0 : it->second) + " ";
    }
    std::fprintf(stderr,
                 "[r%u] serve_reads rts=%llu frozen=%d catchup=%d tv: %s "
                 "pending_head=%llu\n",
                 env_.self(),
                 static_cast<unsigned long long>(pending_reads_.begin()->first),
                 frozen_ ? 1 : 0, catching_up_ ? 1 : 0, tvs.c_str(),
                 static_cast<unsigned long long>(
                     pending_.empty() ? 0 : pending_.begin()->first.ticks));
  }
  // Held, not served stale: a frozen replica's state may be about to be
  // rewritten by a reconfiguration decision, and a catching-up replica's
  // state misses commands lost to its crash. A replica outside the
  // configuration receives no stability gossip at all.
  if (frozen_ || catching_up_ || !in_config()) return;
  while (!pending_reads_.empty()) {
    const auto it = pending_reads_.begin();
    const Tick rts = it->first;
    // (1) No smaller-timestamped write can still arrive from any peer.
    if (!read_stable(rts)) break;
    // (2) Every write already pending at or below the read timestamp has
    // executed here (maybe_commit drains in timestamp order, so checking
    // the head suffices).
    if (!pending_.empty() && pending_.begin()->first.ticks <= rts) break;
    Command cmd = std::move(it->second);
    pending_reads_.erase(it);
    ++stats_.reads_served;
    if (tracer_ != nullptr && tracer_->active()) {
      // Read-path "stability wait satisfied" point.
      tracer_->stamp(cmd.client, cmd.seq, obs::Stage::kStable,
                     obs::trace_now_us());
    }
    env_.deliver_read(cmd, Timestamp{rts, env_.self()});
  }
}

void ClockRsmReplica::handle_request(Command cmd) {
  // Lines 1-3: assign the latest clock time and broadcast PREPARE.
  Message m;
  m.type = MsgType::kPrepare;
  m.epoch = epoch_;
  m.ts = Timestamp{next_send_ticks(), env_.self()};
  if (tracer_ != nullptr && tracer_->active()) {
    // From here on the command is known protocol-wide by its timestamp;
    // later stamp sites (ack quorum, commit scan) key by it.
    tracer_->bind_ts(cmd.client, cmd.seq, m.ts);
  }
  m.cmd = std::move(cmd);
  ++stats_.prepares_sent;
  broadcast(m);
  if (tracer_ != nullptr && tracer_->active()) {
    tracer_->stamp_ts(m.ts, obs::Stage::kBroadcast, obs::trace_now_us());
  }
}

void ClockRsmReplica::on_message(const Message& m) {
  if (fd_) fd_->heartbeat(m.from, env_.clock_now());

  switch (m.type) {
    // Consensus messages are routed by instance id regardless of epoch.
    case MsgType::kConsPrepare:
    case MsgType::kConsPromise:
    case MsgType::kConsAccept:
    case MsgType::kConsAccepted:
    case MsgType::kConsDecide:
      consensus(m.epoch).on_message(m);
      return;

    case MsgType::kSuspend:
      handle_suspend(m);
      return;
    case MsgType::kSuspendOk:
      handle_suspend_ok(m);
      return;
    case MsgType::kRetrieveCmds:
      handle_retrieve_cmds(m);
      return;
    case MsgType::kRetrieveReply:
      handle_retrieve_reply(m);
      return;

    // Catch-up is epoch-agnostic like the retrieve machinery: a recovering
    // replica's epoch may lag the group's.
    case MsgType::kCatchupReq:
      handle_catchup_req(m);
      return;
    case MsgType::kCatchupReply:
      handle_catchup_reply(m);
      return;

    case MsgType::kPrepare:
    case MsgType::kPrepareOk:
    case MsgType::kClockTime:
      // Normal-case messages are only meaningful within the current epoch
      // (Section V-A: the epoch number lets us ignore messages from older
      // epochs). Newer-epoch PREPARE/PREPAREOK are *buffered*, not dropped:
      // the consensus decision brings us up to date about everything before
      // it formed, but commands proposed in the new epoch while our
      // application of the decision lagged are covered by nothing else —
      // dropping them leaves a hole this replica would later commit around
      // (found by DST; minimized scenario in tests/dst_test.cc). CLOCKTIME
      // is pure stability gossip and safe to drop: fresh ones arrive every
      // delta.
      if (m.epoch != epoch_) {
        if (m.epoch > epoch_ && m.type != MsgType::kClockTime) {
          if (future_msgs_.size() < kFutureBufferCap) {
            future_msgs_.push_back(m);  // copy-on-retain owns the payload
          } else {
            future_overflow_ = true;
          }
        }
        if (m.epoch < epoch_) {
          // Help a laggard catch up: answer with the decision that created
          // our current epoch (idempotent; decisions are self-contained).
          auto it = consensus_.find(epoch_);
          if (it != consensus_.end() && it->second->decided()) {
            Message d;
            d.type = MsgType::kConsDecide;
            d.epoch = epoch_;
            d.blob = it->second->decision();
            env_.send(m.from, d);
          }
        }
        return;
      }
      if (m.type == MsgType::kPrepare) {
        handle_prepare(m);
      } else if (m.type == MsgType::kPrepareOk) {
        handle_prepare_ok(m);
      } else {
        handle_clock_time(m);
      }
      return;

    default:
      return;  // not a Clock-RSM message
  }
}

void ClockRsmReplica::handle_prepare(const Message& m) {
  // Line 8 of Algorithm 3: a suspended replica stops processing PREPARE.
  if (frozen_) return;
  if (!contains(config_, m.from)) return;
  if (m.ts <= last_commit_ts_) return;  // defensive: already superseded

  // Lines 4-7.
  pending_.emplace(m.ts, Pending{m.cmd});
  auto& tv = latest_tv_[m.from];
  tv = std::max(tv, m.ts.ticks);
  env_.log().append(LogRecord::prepare(m.ts, m.cmd));
  env_.log().sync();
  if (tracer_ != nullptr && m.ts.origin == env_.self() && tracer_->active()) {
    // Own PREPARE looped back: the origin's WAL record is (group-commit
    // pending) durable from here.
    tracer_->stamp_ts(m.ts, obs::Stage::kWalAppend, obs::trace_now_us());
  }

  // Lines 8-10: wait until ts < Clock, then acknowledge to all replicas.
  // The wait is highly unlikely with reasonably synchronized clocks; it only
  // triggers when the sender's clock runs ahead of ours by more than the
  // one-way network latency.
  const Tick now = env_.clock_now();
  if (now > m.ts.ticks) {
    ack_prepare(m.ts, epoch_);
  } else {
    ++stats_.clock_waits;
    env_.schedule_after(m.ts.ticks - now + 1,
                        [this, ts = m.ts, e = epoch_] { ack_prepare(ts, e); });
  }
  maybe_commit();
}

void ClockRsmReplica::ack_prepare(Timestamp ts, Epoch epoch_at_receipt) {
  if (frozen_ || epoch_ != epoch_at_receipt) return;
  Message ok;
  ok.type = MsgType::kPrepareOk;
  ok.epoch = epoch_;
  ok.ts = ts;
  ok.clock_ts = next_send_ticks();
  broadcast(ok);
}

void ClockRsmReplica::handle_prepare_ok(const Message& m) {
  if (!contains(config_, m.from)) return;
  // Lines 11-13.
  auto& tv = latest_tv_[m.from];
  tv = std::max(tv, m.clock_ts);
  if (m.ts > last_commit_ts_) {
    auto& ackers = rep_counter_[m.ts];
    ackers.insert(m.from);
    if (tracer_ != nullptr && m.ts.origin == env_.self() &&
        ackers.size() >= majority(spec_.size()) && tracer_->active()) {
      tracer_->stamp_ts(m.ts, obs::Stage::kQuorumAck, obs::trace_now_us());
    }
  }
  maybe_commit();
}

void ClockRsmReplica::handle_clock_time(const Message& m) {
  if (!contains(config_, m.from)) return;
  auto& tv = latest_tv_[m.from];
  tv = std::max(tv, m.clock_ts);
  maybe_commit();
}

bool ClockRsmReplica::stable(Timestamp ts) const {
  // Because every replica sends messages in strictly increasing timestamp
  // order over FIFO links, LatestTV[k] >= ts.ticks means no message (and in
  // particular no PREPARE) with a smaller timestamp can still arrive.
  return ts.ticks <= min_latest_tv();
}

void ClockRsmReplica::maybe_commit() {
  // A suspended replica must not commit: suspension (Algorithm 3 line 8)
  // halts normal-case processing *as a whole*. Gating only handle_prepare
  // is not enough — PREPAREOK/CLOCKTIME still advance LatestTV, and a
  // frozen replica that discards concurrent PREPAREs while committing its
  // pending queue on that fresher stability info executes around commands
  // it never saw (found by DST: a partition outage healing mid-suspension
  // flushes exactly that message mix). The decision's command set replays
  // the suspended window consistently instead (finish_decision clears
  // pending_ and re-derives from a majority).
  if (frozen_) return;
  // A replica still catching up after a crash must not execute: commands it
  // missed while down may order below its pending head, and only the
  // catch-up replies can reveal them.
  if (catching_up_) return;
  // Lines 14-23: commit the smallest pending timestamp while (1) majority
  // replication, (2) stable order and (3) prefix replication hold. Checking
  // only the head of PendingCmds and executing in timestamp order makes
  // condition (3) inductive.
  while (!pending_.empty()) {
    const auto it = pending_.begin();
    const Timestamp ts = it->first;
    if (ts <= last_commit_ts_) {
      // Superseded while pending (e.g. committed through catch-up, or
      // covered by an installed checkpoint): executing it now would break
      // timestamp order. Drop it.
      pending_.erase(it);
      rep_counter_.erase(ts);
      continue;
    }
    auto rc = rep_counter_.find(ts);
    if (rc == rep_counter_.end() || rc->second.size() < majority(spec_.size())) {
      break;
    }
    if (!stable(ts)) break;
    if (tracer_ != nullptr && ts.origin == env_.self() && tracer_->active()) {
      tracer_->stamp_ts(ts, obs::Stage::kStable, obs::trace_now_us());
    }

    if (debug_reconfig()) {
      std::string who;
      for (ReplicaId r : rc->second) who += std::to_string(r) + ",";
      std::fprintf(stderr, "[r%u] normal-commit ts=%s ackers=%s clock=%llu\n",
                   env_.self(), ts.to_string().c_str(), who.c_str(),
                   static_cast<unsigned long long>(env_.clock_now()));
    }
    Command cmd = std::move(it->second.cmd);
    pending_.erase(it);
    rep_counter_.erase(rc);

    env_.log().append(LogRecord::commit(ts));
    // Durability point for the client reply: the commit mark must survive a
    // crash, or a restarted replica would replay a shorter history than the
    // one it acknowledged (caught by the DST durability invariant under
    // power-loss crash semantics).
    env_.log().sync();
    last_commit_ts_ = ts;
    ++stats_.committed;
    env_.deliver(cmd, ts, ts.origin == env_.self());
  }
  // Stability just advanced (or the blocking pending head committed):
  // queued reads may now be servable. Every stability-advancing message
  // (PREPARE, PREPAREOK, CLOCKTIME) funnels through here.
  maybe_serve_reads();
}

// --------------------------------------------------------------------------
// Algorithm 2: periodic clock time broadcast
// --------------------------------------------------------------------------

void ClockRsmReplica::arm_clocktime_timer() {
  env_.schedule_after(opt_.clocktime_delta_us, [this] {
    if (!frozen_ && in_config()) {
      const Tick now = env_.clock_now();
      const Tick own = latest_tv_[env_.self()];
      if (now >= own + opt_.clocktime_delta_us) {
        Message m;
        m.type = MsgType::kClockTime;
        m.epoch = epoch_;
        m.clock_ts = next_send_ticks();
        ++stats_.clocktimes_sent;
        broadcast(m);
      }
    }
    arm_clocktime_timer();
  });
}

// --------------------------------------------------------------------------
// Algorithm 3: reconfiguration
// --------------------------------------------------------------------------

SingleDecreePaxos& ClockRsmReplica::consensus(Epoch instance) {
  auto it = consensus_.find(instance);
  if (it == consensus_.end()) {
    auto inst = std::make_unique<SingleDecreePaxos>(
        env_, spec_, instance,
        [this, instance](const std::string& blob) {
          on_consensus_decide(instance, blob);
        },
        opt_.consensus_retry_us);
    it = consensus_.emplace(instance, std::move(inst)).first;
  }
  return *it->second;
}

void ClockRsmReplica::reconfigure(std::vector<ReplicaId> new_config) {
  if (reconfig_in_progress_) return;
  for (ReplicaId r : new_config) {
    if (!contains(spec_, r)) throw std::invalid_argument("config not in spec");
  }
  if (new_config.size() < majority(spec_.size())) {
    throw std::invalid_argument("new configuration below majority of spec");
  }
  if (debug_reconfig()) {
    std::fprintf(stderr, "[r%u] propose e=%llu ncfg=%zu last_commit=%s clock=%llu\n",
                 env_.self(), static_cast<unsigned long long>(epoch_ + 1),
                 new_config.size(), last_commit_ts_.to_string().c_str(),
                 static_cast<unsigned long long>(env_.clock_now()));
  }
  reconfig_in_progress_ = true;
  proposed_epoch_ = epoch_ + 1;
  proposed_config_ = std::move(new_config);
  proposed_cts_ = last_commit_ts_;
  suspend_oks_.clear();
  collected_cmds_.clear();

  Message m;
  m.type = MsgType::kSuspend;
  m.epoch = proposed_epoch_;
  m.ts = proposed_cts_;
  env_.multicast(spec_, m);
}

void ClockRsmReplica::handle_suspend(const Message& m) {
  if (m.epoch <= epoch_) {
    // Stale reconfigurer (e.g. a recovering replica many epochs behind): if
    // we know the decision of that instance, answer it directly so the
    // sender can catch up.
    auto it = consensus_.find(m.epoch);
    if (it != consensus_.end() && it->second->decided()) {
      Message d;
      d.type = MsgType::kConsDecide;
      d.epoch = m.epoch;
      d.blob = it->second->decision();
      env_.send(m.from, d);
    }
    return;
  }
  // Lines 7-10: freeze the log and hand over everything above cts.
  frozen_ = true;
  Message r;
  r.type = MsgType::kSuspendOk;
  r.epoch = m.epoch;
  std::unordered_set<Timestamp, TsHash> seen;
  for (const LogRecord& rec : env_.log().records()) {
    if (rec.type == LogType::kPrepare && rec.ts > m.ts && seen.insert(rec.ts).second) {
      r.records.push_back(rec);
    }
  }
  env_.send(m.from, r);
  contributed_epochs_.insert(m.epoch);
}

void ClockRsmReplica::handle_suspend_ok(const Message& m) {
  if (!reconfig_in_progress_ || m.epoch != proposed_epoch_) return;
  if (!suspend_oks_.insert(m.from).second) return;
  for (const LogRecord& rec : m.records) {
    collected_cmds_.emplace(rec.ts, rec.cmd);
  }
  if (suspend_oks_.size() >= majority(spec_.size())) {
    ReconfigDecision dec;
    dec.config = proposed_config_;
    dec.cts = proposed_cts_;
    dec.cmds.reserve(collected_cmds_.size());
    for (const auto& [ts, cmd] : collected_cmds_) {
      dec.cmds.push_back(LogRecord::prepare(ts, cmd));
    }
    dec.collectors.assign(suspend_oks_.begin(), suspend_oks_.end());
    consensus(proposed_epoch_).propose(dec.encode());
  }
}

void ClockRsmReplica::handle_retrieve_cmds(const Message& m) {
  // Lines 29-31: return logged commands with from < ts <= to.
  //
  // The requester executes everything we hand back as committed (it is
  // fetching the prefix under a decision's cts), so only prepares with an
  // actual COMMIT mark may be served: an unmarked prepare may be an orphan
  // that was superseded without ever committing anywhere, and handing it
  // out would make the fetcher execute a command the rest of the cluster
  // never will (found by DST: an orphaned proposal surviving a catch-up's
  // majority fallback was later state-transferred back to its own origin
  // rejoining after a crash). The reply carries our commit bound; commits
  // are gap-free in timestamp order, so a bound covering the range proves
  // the served set is the *complete* committed range.
  const Timestamp from = m.ts;
  const Timestamp to{m.clock_ts, static_cast<ReplicaId>(m.a)};
  Message r;
  r.type = MsgType::kRetrieveReply;
  r.epoch = m.epoch;
  r.ts = last_commit_ts_;
  const auto marks = commit_marks(env_.log().records());
  std::unordered_set<Timestamp, TsHash> seen;
  for (const LogRecord& rec : env_.log().records()) {
    if (rec.type != LogType::kPrepare || rec.ts <= from || rec.ts > to) continue;
    if (!marks.contains(rec.ts)) continue;
    if (seen.insert(rec.ts).second) {
      r.records.push_back(rec);
    }
  }
  env_.send(m.from, r);
}

void ClockRsmReplica::handle_retrieve_reply(const Message& m) {
  if (!fetching_for_epoch_ || m.epoch != *fetching_for_epoch_) return;
  if (!fetch_replies_.insert(m.from).second) return;
  if (m.ts >= fetch_to_) fetch_complete_seen_ = true;
  for (const LogRecord& rec : m.records) {
    if (rec.ts > last_commit_ts_ && rec.ts <= fetch_to_) {
      fetched_cmds_.emplace(rec.ts, rec.cmd);
    }
  }
  // Completion needs a majority AND at least one server whose commit bound
  // covered the whole range — only that proves no committed command in
  // (last_commit, cts] is missing from the union (servers behind the range
  // serve committed subsets). apply_decision's retry timer keeps asking
  // until such a server exists; the decision's cts is some replica's commit
  // bound, so one always will.
  if (fetch_complete_seen_ && fetch_replies_.size() >= majority(spec_.size())) {
    const Epoch e = *fetching_for_epoch_;
    fetching_for_epoch_.reset();
    auto it = undelivered_decisions_.find(e);
    assert(it != undelivered_decisions_.end());
    ReconfigDecision dec = it->second;
    std::map<Timestamp, Command> extra = std::move(fetched_cmds_);
    fetched_cmds_.clear();
    finish_decision(e, dec, std::move(extra));
  }
}

// --------------------------------------------------------------------------
// Crash-restart catch-up (Section V-B, durable runtime)
//
// A replica that rebooted from its WAL has the committed prefix it synced
// before the crash, but may have lost in-flight PREPAREs (frames written to
// its dead socket) and the PREPAREOKs that replicated them. Peers can commit
// such a command without resending it to us — replication already reached a
// majority, and stability only needs our post-restart CLOCKTIME — so replay
// alone cannot rebuild the total order. Catch-up closes the gap with an
// open-ended RETRIEVECMDS-style fetch: peers return every PREPARE above our
// last commit plus their own commit bound (all their log entries at or below
// the bound are committed, in timestamp order), and we poll until our commit
// timestamp passes the barrier — the highest timestamp any peer had seen
// when we rejoined, which bounds everything the crash could have lost.
// While catching up we keep logging and acking new PREPAREs (peers stay
// unblocked; nothing new can be lost over the fresh connections) but defer
// local execution and client submissions.
// --------------------------------------------------------------------------

void ClockRsmReplica::begin_catchup() {
  if (catching_up_) return;  // a round is already in flight
  bool has_peer = false;
  for (ReplicaId r : config_) has_peer |= (r != env_.self());
  if (!has_peer) return;  // single-replica group: replay was everything
  catching_up_ = true;
  // Fresh barrier per round: catch-up may run more than once per instance
  // (crash recovery, post-rejoin, future-buffer overflow). The session
  // token kills any timer chain a cancelled round left behind; the poll
  // counter gives each round its own fallback grace period.
  ++catchup_session_;
  catchup_round_polls_ = 0;
  catchup_barrier_known_ = false;
  catchup_all_replied_ = false;
  catchup_barrier_ = kZeroTimestamp;
  catchup_candidate_barrier_ = kZeroTimestamp;
  catchup_replied_.clear();
  // Re-stage the replayed log's unresolved tail (PREPAREs with no COMMIT
  // mark) and re-announce it. If a peer also holds one of these it can now
  // reach majority again and commit — essential when *several* replicas
  // restart together and all soft state (replication counters) was lost.
  // Re-acking is idempotent: the counter tracks distinct ackers.
  const auto marks = commit_marks(env_.log().records());
  for (const LogRecord& rec : env_.log().records()) {
    if (rec.type != LogType::kPrepare || rec.ts <= last_commit_ts_ ||
        marks.contains(rec.ts) || pending_.contains(rec.ts)) {
      continue;
    }
    pending_.emplace(rec.ts, Pending{rec.cmd});
    catchup_restaged_.insert(rec.ts);
    ack_prepare(rec.ts, epoch_);
  }
  send_catchup_request();
  arm_catchup_timer();
}

void ClockRsmReplica::send_catchup_request() {
  Message m;
  m.type = MsgType::kCatchupReq;
  m.epoch = epoch_;
  m.ts = last_commit_ts_;
  std::vector<ReplicaId> peers;
  for (ReplicaId r : config_) {
    if (r != env_.self()) peers.push_back(r);
  }
  env_.multicast(peers, m);
  ++stats_.catchup_rounds;
}

void ClockRsmReplica::arm_catchup_timer() {
  env_.schedule_after(opt_.catchup_interval_us, [this, session = catchup_session_] {
    if (!catching_up_ || session != catchup_session_) return;
    // Barrier fallback: if some peer never answers (it crashed too), settle
    // for a majority of replies after a grace period instead of hanging.
    constexpr std::uint64_t kFallbackPolls = 20;
    ++catchup_round_polls_;
    maybe_set_catchup_barrier(catchup_round_polls_ >= kFallbackPolls);
    maybe_finish_catchup();
    if (!catching_up_ || session != catchup_session_) return;
    send_catchup_request();
    arm_catchup_timer();
  });
}

void ClockRsmReplica::handle_catchup_req(const Message& m) {
  // Read-only over our log; served even while frozen or catching up
  // ourselves — several replicas restarting together must be able to feed
  // each other, or a full-cluster restart would deadlock. The requester
  // treats every record at or below our commit bound as committed, so only
  // prepares with an actual COMMIT mark may travel below the bound: a
  // replica mid-recovery can hold stale pre-crash prepares under an
  // already-advanced bound that never committed anywhere.
  Message r;
  r.type = MsgType::kCatchupReply;
  r.epoch = epoch_;
  r.ts = last_commit_ts_;
  const auto marks = commit_marks(env_.log().records());
  std::unordered_set<Timestamp, TsHash> seen;
  for (const LogRecord& rec : env_.log().records()) {
    if (rec.type != LogType::kPrepare || rec.ts <= m.ts) continue;
    if (rec.ts <= last_commit_ts_ && !marks.contains(rec.ts)) continue;
    if (seen.insert(rec.ts).second) r.records.push_back(rec);
  }
  if (env_.recovery_floor() > m.ts) {
    // Our log was truncated past the requested range; the checkpoint stands
    // in for the missing committed prefix.
    r.blob = env_.encoded_checkpoint();
    r.a = r.blob.empty() ? 0 : 1;
  }
  env_.send(m.from, r);
}

void ClockRsmReplica::handle_catchup_reply(const Message& m) {
  if (!catching_up_) return;

  // The barrier only grows from *first* replies: anything a later reply
  // adds arrived over the fresh (reliable) connections and is not at risk.
  //
  // It covers peers' COMMIT bounds, not their open prepares: every command
  // committed anywhere is at or under some peer's bound (all-replied case)
  // or majority-logged and therefore staged below (fallback case), while
  // open prepares the replies carry are staged into pending_ and acked —
  // once staged they can never be committed *around*, so they need not
  // commit before catch-up ends. Waiting for them would deadlock when
  // several replicas catch up at once: each would defer exactly the
  // commits the others' barriers wait for.
  const Timestamp peer_bound = m.ts;
  for (const LogRecord& rec : m.records) {
    catchup_restaged_.erase(rec.ts);  // a peer holds it too: not an orphan
  }
  if (catchup_replied_.insert(m.from).second) {
    catchup_candidate_barrier_ = std::max(catchup_candidate_barrier_, peer_bound);
    maybe_set_catchup_barrier(/*fallback=*/false);
  }

  // A checkpoint replaces the committed prefix our peer's log no longer
  // holds (and anything we replayed below it). Everything the snapshot
  // covers must leave the soft state too: a pending entry at or below the
  // new commit floor is already executed inside the snapshot, and running
  // it again through maybe_commit would re-execute it out of order.
  if (m.a == 1 && !m.blob.empty()) {
    // The covered timestamp leads the encoding; peek it without decoding
    // the (potentially large) snapshot twice — install does the full parse.
    Decoder peek(m.blob.view());
    const Timestamp cp_last_applied = peek.timestamp();
    if (cp_last_applied > last_commit_ts_) {
      env_.install_checkpoint(m.blob.view());
      last_commit_ts_ = cp_last_applied;
      pending_.erase(pending_.begin(),
                     pending_.upper_bound(last_commit_ts_));
      rep_counter_.erase(rep_counter_.begin(),
                         rep_counter_.upper_bound(last_commit_ts_));
    }
  }

  std::unordered_set<Timestamp, TsHash> in_log;
  for (const LogRecord& rec : env_.log().records()) {
    if (rec.type == LogType::kPrepare) in_log.insert(rec.ts);
  }
  // Split the fetched prepares at the responder's commit bound: everything
  // at or below it is committed in timestamp order (the peer's log holds no
  // uncommitted entry under its last commit), the rest is still open.
  std::map<Timestamp, Command> committed;
  std::map<Timestamp, Command> open;
  for (const LogRecord& rec : m.records) {
    if (rec.type != LogType::kPrepare) continue;
    (rec.ts <= m.ts ? committed : open).emplace(rec.ts, rec.cmd);
  }
  bool appended = false;
  for (const auto& [ts, cmd] : committed) {
    if (ts <= last_commit_ts_) continue;
    if (!in_log.contains(ts)) {
      env_.log().append(LogRecord::prepare(ts, cmd));
      in_log.insert(ts);
    }
    appended = true;
    if (debug_reconfig()) {
      std::fprintf(stderr, "[r%u] catchup-commit ts=%s from=%u bound=%s\n",
                   env_.self(), ts.to_string().c_str(), m.from,
                   m.ts.to_string().c_str());
    }
    env_.log().append(LogRecord::commit(ts));
    last_commit_ts_ = ts;
    ++stats_.committed;
    ++stats_.catchup_commits;
    pending_.erase(ts);
    rep_counter_.erase(ts);
    env_.deliver(cmd, ts, ts.origin == env_.self());
  }
  // Open entries are staged like a normal PREPARE and acked: when several
  // replicas recover together the pre-crash replication counters are gone,
  // so these re-acks are what lets an in-flight command reach majority
  // again (idempotent — the counter tracks distinct ackers). As in
  // handle_prepare, the durability request precedes the ack, so a durable
  // environment holds the PREPAREOK until the append is actually stable.
  //
  // The responder counts as an acker of every open entry its reply carries:
  // the reply is read from its log, and a stably logged PREPARE is exactly
  // what a PREPAREOK attests. This substitutes for the acks broadcast while
  // we were down (lost with the crash) — without it, a staged entry whose
  // live peers already hold a majority would wait here for re-acks that are
  // never coming, head-blocking maybe_commit at this replica forever while
  // the rest of the cluster commits it and moves on.
  for (const auto& [ts, cmd] : open) {
    if (ts <= last_commit_ts_) continue;
    rep_counter_[ts].insert(m.from);
    if (pending_.contains(ts)) continue;
    if (!in_log.contains(ts)) {
      env_.log().append(LogRecord::prepare(ts, cmd));
      in_log.insert(ts);
      appended = true;
    }
    pending_.emplace(ts, Pending{cmd});
    env_.log().sync();
    appended = false;  // the sync request covers everything appended so far
    ack_prepare(ts, epoch_);
  }
  // One trailing durability request when commits were appended without a
  // subsequent open-entry sync; skipped entirely for an empty reply (no
  // pointless fdatasync per poll round).
  if (appended) env_.log().sync();
  maybe_finish_catchup();
}

void ClockRsmReplica::maybe_set_catchup_barrier(bool fallback) {
  if (catchup_barrier_known_) return;
  std::size_t peers = 0;
  for (ReplicaId r : config_) peers += (r != env_.self()) ? 1 : 0;
  const bool all = catchup_replied_.size() >= peers;
  const bool quorum = catchup_replied_.size() + 1 >= majority(spec_.size());
  if (all || (fallback && quorum)) {
    catchup_barrier_known_ = true;
    catchup_all_replied_ = all;
    catchup_barrier_ = catchup_candidate_barrier_;
  }
}

void ClockRsmReplica::maybe_finish_catchup() {
  if (!catching_up_ || !catchup_barrier_known_) return;
  if (last_commit_ts_ < catchup_barrier_) return;
  catching_up_ = false;
  // Orphans: re-staged prepares no reply confirmed exist only on this
  // machine. They can never reach majority (peers may even have committed
  // past them), so left pending they would head-block maybe_commit forever.
  // Drop them — their clients retry (at-least-once). Only with replies from
  // *every* peer is "no one else has it" actually known; under the
  // majority fallback a silent peer might still hold (and later commit) the
  // entry, so there the conservative choice is to keep it pending.
  std::set<Timestamp> dropped;
  if (catchup_all_replied_) {
    for (const Timestamp& ts : catchup_restaged_) {
      if (ts <= last_commit_ts_ || !pending_.contains(ts)) continue;
      pending_.erase(ts);
      rep_counter_.erase(ts);
      dropped.insert(ts);
    }
  }
  catchup_restaged_.clear();
  // Restore the committed-prefix invariant: a pre-crash PREPARE of ours that
  // no majority saw has no COMMIT mark but may now sit below last_commit_ts_
  // (or is a dropped orphan above it); it must not linger, or a later
  // catch-up/retrieve served from this log would hand it out again. Only
  // rewrite the log when such a record actually exists — a FileLog rewrite
  // is a full rewrite.
  const auto marks = commit_marks(env_.log().records());
  bool stale = false;
  for (const LogRecord& rec : env_.log().records()) {
    if (rec.type == LogType::kPrepare && !marks.contains(rec.ts) &&
        (rec.ts <= last_commit_ts_ || dropped.contains(rec.ts))) {
      stale = true;
      break;
    }
  }
  if (stale) {
    env_.log().remove_uncommitted_above(
        kZeroTimestamp, [this, &dropped](const Timestamp& ts) {
          return ts > last_commit_ts_ && !dropped.contains(ts);
        });
  }
  const Tick base = last_commit_ts_.ticks;
  for (auto& [r, tv] : latest_tv_) tv = std::max(tv, base);
  last_sent_ = std::max(last_sent_, base);
  catchup_replied_.clear();
  while (!deferred_submits_.empty()) {
    Command c = std::move(deferred_submits_.front());
    deferred_submits_.pop_front();
    handle_request(std::move(c));
  }
  maybe_commit();
  // Reads held during catch-up now observe the recovered state.
  maybe_serve_reads();
}

void ClockRsmReplica::on_consensus_decide(Epoch instance, const std::string& blob) {
  if (instance <= epoch_) return;
  undelivered_decisions_[instance] = ReconfigDecision::decode(blob);
  try_apply_decisions();
}

void ClockRsmReplica::try_apply_decisions() {
  if (fetching_for_epoch_) return;  // state transfer in flight
  // Decisions are self-contained (config + cts + all commands above cts from
  // a majority), so when several epochs are pending only the newest matters.
  while (!undelivered_decisions_.empty()) {
    auto it = std::prev(undelivered_decisions_.end());
    const Epoch e = it->first;
    if (e <= epoch_) {
      undelivered_decisions_.clear();
      return;
    }
    ReconfigDecision dec = it->second;
    undelivered_decisions_.clear();
    apply_decision(e, dec);
    return;
  }
}

void ClockRsmReplica::apply_decision(Epoch e, const ReconfigDecision& dec) {
  if (dec.cts > last_commit_ts_) {
    // Lines 12-14: we lag behind the decided timestamp; fetch the missing
    // prefix from a majority before applying the decided commands.
    frozen_ = true;
    fetching_for_epoch_ = e;
    undelivered_decisions_[e] = dec;
    fetch_to_ = dec.cts;
    fetch_replies_.clear();
    fetched_cmds_.clear();
    fetch_complete_seen_ = false;
    send_retrieve_cmds(e);
    return;
  }
  finish_decision(e, dec, {});
}

void ClockRsmReplica::send_retrieve_cmds(Epoch e) {
  Message m;
  m.type = MsgType::kRetrieveCmds;
  m.epoch = e;
  m.ts = last_commit_ts_;
  m.clock_ts = fetch_to_.ticks;
  m.a = fetch_to_.origin;
  env_.multicast(spec_, m);
  // Keep asking until some server's commit bound covers the range (see
  // handle_retrieve_reply): servers still catching up toward cts answer
  // with partial content at first. Duplicate replies are deduplicated by
  // sender, so retries are idempotent.
  env_.schedule_after(opt_.consensus_retry_us, [this, e] {
    if (fetching_for_epoch_ && *fetching_for_epoch_ == e) {
      fetch_replies_.clear();
      send_retrieve_cmds(e);
    }
  });
}

void ClockRsmReplica::finish_decision(Epoch e, const ReconfigDecision& dec,
                                      std::map<Timestamp, Command> extra) {
  if (debug_reconfig()) {
    std::fprintf(stderr,
                 "[r%u] finish e=%llu cts=%s cmds=%zu extra=%zu last_commit=%s "
                 "ncfg=%zu pending=%zu clock=%llu\n",
                 env_.self(), static_cast<unsigned long long>(e),
                 dec.cts.to_string().c_str(), dec.cmds.size(), extra.size(),
                 last_commit_ts_.to_string().c_str(), dec.config.size(),
                 pending_.size(), static_cast<unsigned long long>(env_.clock_now()));
  }

  // `extra` holds state-transferred commands in (last_commit_ts, dec.cts];
  // dec.cmds holds every command above dec.cts that could have committed.
  std::map<Timestamp, Command> to_apply = std::move(extra);
  std::unordered_set<Timestamp, TsHash> decided_set;
  for (const LogRecord& rec : dec.cmds) {
    decided_set.insert(rec.ts);
    if (rec.ts > last_commit_ts_) to_apply.emplace(rec.ts, rec.cmd);
  }

  // Line 15: drop uncommitted PREPAREs above cts that did not survive.
  env_.log().remove_uncommitted_above(
      dec.cts, [&decided_set](const Timestamp& ts) { return decided_set.contains(ts); });

  // Lines 16-20: apply the surviving commands in timestamp order.
  std::unordered_set<Timestamp, TsHash> in_log;
  for (const LogRecord& rec : env_.log().records()) {
    if (rec.type == LogType::kPrepare) in_log.insert(rec.ts);
  }
  for (const auto& [ts, cmd] : to_apply) {
    if (ts <= last_commit_ts_) continue;
    if (!in_log.contains(ts)) {
      env_.log().append(LogRecord::prepare(ts, cmd));
      in_log.insert(ts);
    }
    env_.log().append(LogRecord::commit(ts));
    last_commit_ts_ = ts;
    ++stats_.committed;
    env_.deliver(cmd, ts, ts.origin == env_.self());
  }
  env_.log().sync();

  // Lines 21-24: install the new epoch and configuration.
  epoch_ = e;
  config_ = dec.config;
  ++stats_.reconfigurations;
  latest_tv_.clear();
  const Tick base = std::max(last_commit_ts_.ticks, dec.cts.ticks);
  for (ReplicaId r : config_) latest_tv_[r] = base;
  last_sent_ = std::max(last_sent_, base);
  pending_.clear();
  rep_counter_.clear();
  frozen_ = false;
  reconfig_in_progress_ = false;
  suspend_oks_.clear();
  collected_cmds_.clear();
  if (fd_) fd_->reset_all(env_.clock_now());

  // A catch-up round that started before this decision is now stale: its
  // staged open entries, barrier and orphan bookkeeping may be exactly what
  // the decision just truncated, and letting it keep re-staging and
  // re-acking them can resurrect a dead command at a subset of replicas
  // (found by DST: three independently catching-up replicas re-acked a
  // decision-wiped proposal back to a fake majority). Cancel it — the
  // trigger below starts a fresh round, against post-truncation logs, when
  // one is still needed.
  catching_up_ = false;
  catchup_restaged_.clear();
  catchup_replied_.clear();
  catchup_barrier_known_ = false;
  catchup_all_replied_ = false;

  // Ways this application can be blind to committed commands:
  //  * first decision since a crash-restart (see start()) — survivors may
  //    have committed during our downtime;
  //  * we were not among the decision's collectors — it was formed without
  //    our log, and anything proposed between its collection and our (late)
  //    application is covered by nothing we hold; the pending_ clear above
  //    may just have wiped exactly those entries.
  // Either way, recover from peers before executing past the gap. This must
  // start BEFORE the buffered-message replay below: catch-up defers
  // execution (maybe_commit gates on catching_up_), so a buffered
  // PREPAREOK quorum cannot make us commit around a hole the catch-up is
  // about to repair. The collectors themselves (a majority) never defer
  // here, so catch-up always completes.
  //
  // Being listed in dec.collectors only counts if *this incarnation* handed
  // its log to the collection: a restarted replica replaying the decisions
  // of epochs it slept through may find its pre-crash self among the
  // collectors, but that log is gone and covers nothing committed since the
  // collection formed. A rejoin applies those decisions in sequence, and
  // each application cancels the in-flight catch-up and clears pending_ —
  // honoring the stale listing here let the last one wipe the catch-up's
  // staged entries without starting a replacement, and the replica then
  // committed around the wiped commands forever (found by DST; minimized
  // scenario pinned in tests/dst_test.cc). Live collectors keep the
  // exemption, so the majority-progress argument above is unchanged.
  const bool collector = contains(dec.collectors, env_.self()) &&
                         contributed_epochs_.contains(e);
  if (rejoin_catchup_pending_ || !collector) {
    rejoin_catchup_pending_ = false;
    begin_catchup();
  }

  // Replay normal-case messages that arrived for this epoch before we
  // entered it (see the buffer in on_message). They are handled exactly as
  // if they arrived now, in their original order — without this, a replica
  // whose decision application lagged (asymmetric links, state-transfer
  // round trips) permanently loses the new epoch's first commands and
  // later commits around the hole (found by DST; see docs/TESTING.md).
  std::vector<Message> buffered;
  buffered.swap(future_msgs_);
  for (Message& bm : buffered) {
    if (bm.epoch == epoch_) {
      on_message(bm);
    } else if (bm.epoch > epoch_) {
      future_msgs_.push_back(std::move(bm));  // still ahead of us
    }
  }
  if (future_overflow_) {
    // The buffer could not hold everything we missed: fall back to a
    // catch-up round, which re-derives the gap from peers' logs (no-op if
    // one is already in flight).
    future_overflow_ = false;
    begin_catchup();
  }

  if (in_config()) {
    // Resume processing queued client requests. While catching up they stay
    // deferred; maybe_finish_catchup drains the queue when it ends.
    while (!catching_up_ && !deferred_submits_.empty()) {
      Command c = std::move(deferred_submits_.front());
      deferred_submits_.pop_front();
      handle_request(std::move(c));
    }
  } else if (opt_.reconfig_enabled) {
    // We were removed (e.g. falsely suspected, or we are rejoining after
    // recovery): ask to be added back.
    std::vector<ReplicaId> cfg = config_;
    cfg.push_back(env_.self());
    std::sort(cfg.begin(), cfg.end());
    reconfigure(std::move(cfg));
  }
  // Reads held while frozen resume against the post-decision state (no-op
  // when we left the configuration or a catch-up round is now running).
  maybe_serve_reads();
}

void ClockRsmReplica::arm_failure_detector_timer() {
  env_.schedule_after(opt_.fd_check_interval_us, [this] {
    if (!frozen_ && !reconfig_in_progress_ && in_config()) {
      const Tick now = env_.clock_now();
      std::vector<ReplicaId> next;
      bool changed = false;
      for (ReplicaId r : config_) {
        if (r != env_.self() && fd_->is_suspect(r, now)) {
          changed = true;
        } else {
          next.push_back(r);
        }
      }
      if (changed && next.size() >= majority(spec_.size())) {
        reconfigure(std::move(next));
      }
    }
    arm_failure_detector_timer();
  });
}

void ClockRsmReplica::fill_metrics(const obs::MetricSink& sink) const {
  sink("crsm_proto_committed_total", stats_.committed);
  sink("crsm_proto_prepares_sent_total", stats_.prepares_sent);
  sink("crsm_proto_clocktimes_sent_total", stats_.clocktimes_sent);
  sink("crsm_proto_clock_waits_total", stats_.clock_waits);
  sink("crsm_proto_reconfigurations_total", stats_.reconfigurations);
  sink("crsm_proto_catchup_rounds_total", stats_.catchup_rounds);
  sink("crsm_proto_catchup_commits_total", stats_.catchup_commits);
  sink("crsm_proto_reads_submitted_total", stats_.reads_submitted);
  sink("crsm_proto_reads_served_total", stats_.reads_served);
  sink("crsm_proto_pending", pending_.size());
  sink("crsm_proto_pending_reads", pending_reads_.size());
  sink("crsm_proto_epoch", epoch_);
}

}  // namespace crsm
