#include "clockrsm/reconfig.h"

#include "common/codec.h"
#include "common/message.h"

namespace crsm {

std::string ReconfigDecision::encode() const {
  std::string out;
  Encoder e(&out);
  e.var(config.size());
  for (ReplicaId r : config) e.u32(r);
  e.timestamp(cts);
  e.var(cmds.size());
  for (const LogRecord& r : cmds) encode_log_record(r, &out);
  e.var(collectors.size());
  for (ReplicaId r : collectors) e.u32(r);
  return out;
}

ReconfigDecision ReconfigDecision::decode(std::string_view blob) {
  Decoder d(blob);
  ReconfigDecision out;
  const std::uint64_t nc = d.var();
  out.config.reserve(nc);
  for (std::uint64_t i = 0; i < nc; ++i) out.config.push_back(d.u32());
  out.cts = d.timestamp();
  const std::uint64_t nr = d.var();
  out.cmds.reserve(nr);
  for (std::uint64_t i = 0; i < nr; ++i) out.cmds.push_back(decode_log_record(d));
  const std::uint64_t nk = d.var();
  out.collectors.reserve(nk);
  for (std::uint64_t i = 0; i < nk; ++i) out.collectors.push_back(d.u32());
  if (!d.done()) throw CodecError("trailing bytes in ReconfigDecision");
  return out;
}

}  // namespace crsm
