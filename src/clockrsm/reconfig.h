// Reconfiguration decision value agreed on by consensus (Algorithm 3).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/log_record.h"
#include "common/types.h"

namespace crsm {

// The value proposed at line 6 of Algorithm 3 and decided at line 11:
// the next configuration, the reconfigurer's last commit timestamp, and the
// union of commands (PREPARE entries with ts > cts) collected from a
// majority of Spec — every command that could have been committed.
struct ReconfigDecision {
  std::vector<ReplicaId> config;
  Timestamp cts;
  std::vector<LogRecord> cmds;  // kPrepare records, any order

  friend bool operator==(const ReconfigDecision&, const ReconfigDecision&) = default;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static ReconfigDecision decode(std::string_view blob);
};

}  // namespace crsm
