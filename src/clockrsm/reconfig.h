// Reconfiguration decision value agreed on by consensus (Algorithm 3).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/log_record.h"
#include "common/types.h"

namespace crsm {

// The value proposed at line 6 of Algorithm 3 and decided at line 11:
// the next configuration, the reconfigurer's last commit timestamp, and the
// union of commands (PREPARE entries with ts > cts) collected from a
// majority of Spec — every command that could have been committed.
struct ReconfigDecision {
  std::vector<ReplicaId> config;
  Timestamp cts;
  std::vector<LogRecord> cmds;  // kPrepare records, any order
  // The replicas whose SUSPENDOK logs formed `cmds` (the proposer plus the
  // majority that answered its SUSPEND). A member of this set has, by
  // construction, nothing in its log or pending queue the decision does not
  // cover. A replica *outside* it applies the decision late and blind — any
  // command proposed between the collection and its application is covered
  // by nothing it holds — so it must run a catch-up round before resuming
  // execution (see ClockRsmReplica::finish_decision).
  std::vector<ReplicaId> collectors;

  friend bool operator==(const ReconfigDecision&, const ReconfigDecision&) = default;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static ReconfigDecision decode(std::string_view blob);
};

}  // namespace crsm
