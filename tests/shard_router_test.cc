// Shard layer: deterministic routing, full shard coverage, and state
// isolation between replica groups.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clockrsm/clock_rsm.h"
#include "kv/kv_store.h"
#include "shard/shard_router.h"
#include "shard/sharded_cluster.h"
#include "test_util.h"
#include "util/topology.h"

namespace crsm::test {
namespace {

TEST(ShardRouter, DeterministicAcrossInstancesAndCalls) {
  const ShardRouter a(4), b(4);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const ShardId s = a.shard_of_key(key);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, a.shard_of_key(key)) << "unstable across calls: " << key;
    EXPECT_EQ(s, b.shard_of_key(key)) << "instances disagree: " << key;
  }
}

TEST(ShardRouter, SingleShardTakesEverything) {
  const ShardRouter r(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.shard_of_key("key-" + std::to_string(i)), 0u);
  }
}

TEST(ShardRouter, AllShardsReachable) {
  for (const std::size_t n : {2u, 4u, 8u}) {
    const ShardRouter r(n);
    std::set<ShardId> seen;
    for (int i = 0; i < 1000; ++i) {
      seen.insert(r.shard_of_key("key-" + std::to_string(i)));
    }
    EXPECT_EQ(seen.size(), n) << n << " shards, only " << seen.size()
                              << " reachable from 1000 keys";
  }
}

TEST(ShardRouter, CommandRoutingMatchesKeyRouting) {
  const ShardRouter r(4);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    Command cmd = kv_put(/*client=*/1, /*seq=*/i + 1, key, "v");
    EXPECT_EQ(r.shard_of(cmd), r.shard_of_key(key));
  }
}

TEST(ShardRouter, RejectsZeroShards) {
  EXPECT_THROW(ShardRouter(0), std::invalid_argument);
}

// Picks a key owned by `want` under the given router.
std::string key_in_shard(const ShardRouter& r, ShardId want) {
  for (int i = 0;; ++i) {
    std::string key = "iso-" + std::to_string(i);
    if (r.shard_of_key(key) == want) return key;
  }
}

TEST(ShardedCluster, DigestIsolationBetweenGroups) {
  ShardedClusterOptions opts;
  opts.num_shards = 2;
  opts.world.matrix = LatencyMatrix::uniform(3, 10.0);
  opts.world.seed = 7;
  opts.world.count_bytes = true;  // so wire_stats() below counts encodes

  std::vector<ReplicaId> spec = {0, 1, 2};
  ShardedCluster cluster(
      opts,
      [&spec](ProtocolEnv& env, ReplicaId) {
        return std::make_unique<ClockRsmReplica>(env, spec);
      },
      kv_factory());
  cluster.start();

  const std::uint64_t empty_digest = KvStore().state_digest();
  ASSERT_EQ(cluster.shard_digest(0), empty_digest);
  ASSERT_EQ(cluster.shard_digest(1), empty_digest);

  // Write a key owned by group 0: only group 0's digest may change.
  const std::string k0 = key_in_shard(cluster.router(), 0);
  ASSERT_EQ(cluster.submit(0, kv_put(1, 1, k0, "zero")), 0u);
  cluster.run_until(ms_to_us(500.0));
  EXPECT_NE(cluster.shard_digest(0), empty_digest);
  EXPECT_EQ(cluster.shard_digest(1), empty_digest);
  EXPECT_EQ(cluster.committed(0), 1u);
  EXPECT_EQ(cluster.committed(1), 0u);

  // Then a key owned by group 1: group 0's digest must not move.
  const std::uint64_t digest0 = cluster.shard_digest(0);
  const std::string k1 = key_in_shard(cluster.router(), 1);
  ASSERT_EQ(cluster.submit(1, kv_put(2, 1, k1, "one")), 1u);
  cluster.run_until(ms_to_us(1000.0));
  EXPECT_EQ(cluster.shard_digest(0), digest0);
  EXPECT_NE(cluster.shard_digest(1), empty_digest);
  EXPECT_EQ(cluster.total_committed(), 2u);

  // Within each group, all replicas still agree.
  expect_agreement(cluster.shard(0));
  expect_agreement(cluster.shard(1));

  // Cluster-wide wire accounting sums the per-group transports; with the
  // encode-once pipeline, frames (encode calls) stay strictly below link
  // messages on these 3-replica broadcast groups.
  const TransportStats ws = cluster.wire_stats();
  EXPECT_EQ(ws.messages_sent,
            cluster.shard(0).network().messages_sent() +
                cluster.shard(1).network().messages_sent());
  EXPECT_GT(ws.encode_calls, 0u);
  EXPECT_LT(ws.encode_calls, ws.messages_sent);
  EXPECT_GT(ws.bytes_sent, 0u);
}

}  // namespace
}  // namespace crsm::test
