// Shared helpers for protocol tests.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/latency_experiment.h"
#include "kv/kv_store.h"
#include "sim/sim_world.h"
#include "util/topology.h"

namespace crsm::test {

// Triangle topology with the given one-way latencies (ms).
inline LatencyMatrix tri(double ab, double ac, double bc) {
  LatencyMatrix m(3);
  m.set_oneway_ms(0, 1, ab);
  m.set_oneway_ms(0, 2, ac);
  m.set_oneway_ms(1, 2, bc);
  return m;
}

// The paper's three-replica deployment {CA, VA, IR}.
inline LatencyMatrix ec2_three() {
  return ec2_matrix().submatrix({0, 1, 2});
}

// The paper's five-replica deployment {CA, VA, IR, JP, SG}.
inline LatencyMatrix ec2_five() {
  return ec2_matrix().submatrix({0, 1, 2, 3, 4});
}

inline SimWorldOptions world_opts(LatencyMatrix m, std::uint64_t seed = 1) {
  SimWorldOptions o;
  o.matrix = std::move(m);
  o.seed = seed;
  return o;
}

inline SimWorld::StateMachineFactory kv_factory() {
  return [] { return std::make_unique<KvStore>(); };
}

inline Command kv_put(ClientId client, std::uint64_t seq, const std::string& key,
                      const std::string& value) {
  Command c;
  c.client = client;
  c.seq = seq;
  KvRequest r;
  r.op = KvOp::kPut;
  r.key = key;
  r.value = value;
  c.payload = r.encode();
  return c;
}

inline Command kv_get(ClientId client, std::uint64_t seq,
                      const std::string& key) {
  Command c;
  c.client = client;
  c.seq = seq;
  KvRequest r;
  r.op = KvOp::kGet;
  r.key = key;
  c.payload = r.encode();
  return c;
}

inline Command kv_scan(ClientId client, std::uint64_t seq,
                       const std::string& prefix, std::uint64_t limit = 0) {
  Command c;
  c.client = client;
  c.seq = seq;
  KvRequest r;
  r.op = KvOp::kScan;
  r.key = prefix;
  r.scan_limit = limit;
  c.payload = r.encode();
  return c;
}

// Asserts every live replica executed the same command sequence (same
// commands, same order) and that the state machines agree.
inline void expect_agreement(SimWorld& w) {
  ReplicaId ref_id = kNoReplica;
  for (ReplicaId r = 0; r < w.num_replicas(); ++r) {
    if (!w.crashed(r)) {
      ref_id = r;
      break;
    }
  }
  ASSERT_NE(ref_id, kNoReplica) << "no live replica";
  const auto& ref = w.execution(ref_id);
  for (ReplicaId r = ref_id + 1; r < w.num_replicas(); ++r) {
    if (w.crashed(r)) continue;
    const auto& exec = w.execution(r);
    ASSERT_EQ(exec.size(), ref.size()) << "replica " << r << " diverged in length";
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(exec[i].ts, ref[i].ts) << "replica " << r << " order differs at " << i;
      EXPECT_EQ(exec[i].cmd, ref[i].cmd) << "replica " << r << " cmd differs at " << i;
    }
    EXPECT_EQ(w.state_machine(r).state_digest(), w.state_machine(ref_id).state_digest())
        << "replica " << r << " state digest differs";
  }
}

// Asserts executions are totally ordered by timestamp at each replica.
inline void expect_timestamp_order(SimWorld& w) {
  for (ReplicaId r = 0; r < w.num_replicas(); ++r) {
    const auto& exec = w.execution(r);
    for (std::size_t i = 1; i < exec.size(); ++i) {
      EXPECT_LT(exec[i - 1].ts, exec[i].ts)
          << "replica " << r << " executed out of timestamp order at " << i;
    }
  }
}

}  // namespace crsm::test
