// Fuzz tests for the framed wire stream: concatenated, truncated and
// bit-flipped frame sequences for every message type, plus socket-style
// adversarial chunking (1-byte reads, headers torn across reads, coalesced
// frames) through the FrameConn reassembly path (FrameAssembler). The
// decoder must either round-trip faithfully or throw CodecError — never
// read out of bounds (the CI sanitizer job backs that claim) and never
// surface any other failure mode. Both the owning decoder (decode_stream)
// and the zero-copy transport decoder (decode_stream_view) are exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "common/batch.h"
#include "common/codec.h"
#include "common/message.h"
#include "common/wire_frame.h"
#include "net/frame_conn.h"
#include "util/rng.h"

namespace crsm {
namespace {

// The canonical list from message.h: generated from the same X-macro as the
// MsgType enum itself, so a new message type is fuzzed here automatically.
using crsm::kAllMsgTypes;

std::string random_bytes(Rng& rng, std::size_t max_len) {
  std::string s(rng.uniform_int(0, max_len), '\0');
  for (char& c : s) c = static_cast<char>(rng.uniform_int(0, 255));
  return s;
}

Message random_message(Rng& rng, MsgType type) {
  Message m;
  m.type = type;
  m.from = static_cast<ReplicaId>(rng.uniform_int(0, 100));
  m.epoch = rng.uniform_int(0, 1'000'000);
  m.ts = Timestamp{rng.uniform_int(0, ~0ULL >> 1),
                   static_cast<ReplicaId>(rng.uniform_int(0, 100))};
  m.clock_ts = rng.uniform_int(0, ~0ULL >> 1);
  m.slot = rng.uniform_int(0, 1'000'000'000);
  m.a = rng.uniform_int(0, ~0ULL >> 1);
  m.b = rng.uniform_int(0, ~0ULL >> 1);
  m.cmd.client = rng.uniform_int(0, ~0ULL >> 1);
  m.cmd.seq = rng.uniform_int(0, ~0ULL >> 1);
  m.cmd.payload = random_bytes(rng, 120);
  const std::size_t nrec = rng.uniform_int(0, 3);
  for (std::size_t i = 0; i < nrec; ++i) {
    Command c;
    c.client = rng.uniform_int(1, 100);
    c.seq = rng.uniform_int(1, 100);
    c.payload = random_bytes(rng, 40);
    const Timestamp ts{rng.uniform_int(0, 1'000'000),
                       static_cast<ReplicaId>(rng.uniform_int(0, 10))};
    if (rng.bernoulli(0.7)) {
      m.records.push_back(LogRecord::prepare(ts, std::move(c)));
    } else {
      m.records.push_back(LogRecord::commit(ts));
    }
  }
  const std::size_t ncmds = rng.uniform_int(0, 4);
  for (std::size_t i = 0; i < ncmds; ++i) {
    Command c;
    c.client = rng.uniform_int(1, 100);
    c.seq = rng.uniform_int(1, 100);
    c.payload = random_bytes(rng, 60);
    m.cmds.push_back(std::move(c));
  }
  m.blob = random_bytes(rng, 150);
  return m;
}

// Decodes as many messages as the stream yields with the chosen decoder.
// Throws CodecError on malformed input; anything else is a test failure.
std::vector<Message> drain(std::string_view stream, bool view_mode) {
  std::vector<Message> out;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    Message m = view_mode ? Message::decode_stream_view(stream, &pos)
                          : Message::decode_stream(stream, &pos);
    if (view_mode) {
      // Retain semantics: storing a copy owns the bytes (what protocols do).
      out.push_back(m);
    } else {
      out.push_back(std::move(m));
    }
  }
  return out;
}

class FrameStreamFuzz : public ::testing::TestWithParam<MsgType> {};

TEST_P(FrameStreamFuzz, ConcatenatedStreamsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t k = rng.uniform_int(1, 6);
    std::vector<Message> originals;
    std::string stream;
    for (std::size_t i = 0; i < k; ++i) {
      originals.push_back(random_message(rng, GetParam()));
      originals.back().encode(&stream);
    }
    for (bool view_mode : {false, true}) {
      const std::vector<Message> decoded = drain(stream, view_mode);
      ASSERT_EQ(decoded.size(), originals.size());
      std::string reencoded;
      for (const Message& m : decoded) m.encode(&reencoded);
      // Byte-level fixed point: re-encoding reproduces the exact stream.
      EXPECT_EQ(reencoded, stream) << "view_mode=" << view_mode;
    }
  }
}

TEST_P(FrameStreamFuzz, TruncationAtEveryOffsetThrowsOrYieldsPrefix) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 193 + 5);
  std::vector<std::string> frames;
  std::string stream;
  for (int i = 0; i < 3; ++i) {
    const Message m = random_message(rng, GetParam());
    frames.push_back(m.encode());
    stream += frames.back();
  }
  // Frame boundaries, where a cut is a clean prefix rather than an error.
  std::vector<std::size_t> boundaries = {0};
  for (const std::string& f : frames) boundaries.push_back(boundaries.back() + f.size());

  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    for (bool view_mode : {false, true}) {
      const std::string_view prefix = std::string_view(stream).substr(0, cut);
      std::size_t whole = 0;  // frames fully contained in the prefix
      while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) ++whole;
      if (cut == boundaries[whole]) {
        // Clean boundary: the prefix is a valid shorter stream.
        EXPECT_EQ(drain(prefix, view_mode).size(), whole);
      } else {
        // Mid-frame cut: decoding the complete frames succeeds, then the
        // torn tail must throw CodecError (not crash, not read OOB).
        std::size_t pos = 0;
        for (std::size_t i = 0; i < whole; ++i) {
          (void)(view_mode ? Message::decode_stream_view(prefix, &pos)
                           : Message::decode_stream(prefix, &pos));
        }
        EXPECT_THROW((void)(view_mode ? Message::decode_stream_view(prefix, &pos)
                                      : Message::decode_stream(prefix, &pos)),
                     CodecError)
            << "cut at " << cut << " view_mode=" << view_mode;
      }
    }
  }
}

TEST_P(FrameStreamFuzz, BitFlipsEitherDecodeOrThrowCodecError) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 29);
  for (int iter = 0; iter < 200; ++iter) {
    std::string stream;
    const std::size_t k = rng.uniform_int(1, 3);
    for (std::size_t i = 0; i < k; ++i) {
      random_message(rng, GetParam()).encode(&stream);
    }
    const std::size_t byte = rng.uniform_int(0, stream.size() - 1);
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    stream[byte] = static_cast<char>(static_cast<unsigned char>(stream[byte]) ^
                                     (1u << bit));
    for (bool view_mode : {false, true}) {
      try {
        const std::vector<Message> decoded = drain(stream, view_mode);
        // Corruption may still parse (e.g. a flipped payload byte): the
        // result must at least re-encode without crashing.
        std::string reencoded;
        for (const Message& m : decoded) m.encode(&reencoded);
      } catch (const CodecError&) {
        // The only acceptable failure mode.
      }
    }
  }
}

// --- Socket-style reassembly (FrameConn's FrameAssembler) ------------------

// Feeds `stream` into a FrameAssembler in the given chunk sizes, decoding
// (and retaining, view-mode copy-on-retain) every frame as soon as it
// completes — exactly what FrameConn does per read() burst.
std::vector<Message> drain_chunked(std::string_view stream,
                                   const std::vector<std::size_t>& chunks) {
  net::FrameAssembler assembler;
  std::vector<Message> out;
  std::size_t fed = 0;
  for (std::size_t chunk : chunks) {
    assembler.append(stream.substr(fed, chunk));
    fed += std::min(chunk, stream.size() - fed);
    const std::string_view ready = assembler.complete_prefix();
    std::size_t pos = 0;
    while (pos < ready.size()) {
      const Message m = Message::decode_stream_view(ready, &pos);
      out.push_back(m);  // copy, not move: copy-on-retain owns the payloads
    }
    assembler.consume(pos);
  }
  EXPECT_EQ(fed, stream.size()) << "test bug: chunks must cover the stream";
  EXPECT_EQ(assembler.buffered(), 0u) << "partial frame left after full feed";
  return out;
}

void expect_round_trip(const std::vector<Message>& decoded,
                       std::string_view stream, const char* mode) {
  std::string reencoded;
  for (const Message& m : decoded) m.encode(&reencoded);
  EXPECT_EQ(reencoded, stream) << "chunking mode: " << mode;
}

TEST_P(FrameStreamFuzz, AdversarialChunkingReassembles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 257 + 11);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t k = rng.uniform_int(1, 5);
    std::string stream;
    for (std::size_t i = 0; i < k; ++i) {
      random_message(rng, GetParam()).encode(&stream);
    }

    // 1-byte reads: every frame header is torn byte by byte.
    expect_round_trip(
        drain_chunked(stream, std::vector<std::size_t>(stream.size(), 1)),
        stream, "one-byte");

    // Everything coalesced into a single read.
    expect_round_trip(drain_chunked(stream, {stream.size()}), stream,
                      "coalesced");

    // Header split from body: 1 byte (half the varint header when the frame
    // is >127 bytes, the whole header otherwise), then the rest.
    if (stream.size() > 1) {
      expect_round_trip(drain_chunked(stream, {1, stream.size() - 1}), stream,
                        "header-split");
    }

    // Random chunk sizes, biased small so header tears are common.
    std::vector<std::size_t> chunks;
    std::size_t covered = 0;
    while (covered < stream.size()) {
      const std::size_t c = rng.uniform_int(1, 7);
      chunks.push_back(c);
      covered += c;
    }
    expect_round_trip(drain_chunked(stream, chunks), stream, "random");
  }
}

// --- Coalesced multi-frame streams -----------------------------------------
//
// A coalescing transport flushes every frame queued to one peer during an
// event-loop pass as a single writev / SENDMSG SQE, so the receiver sees
// long mixed-type bursts arrive in one read — or, under a torn writev plus
// small socket buffers, sliced at arbitrary offsets that respect nothing
// about frame boundaries. These tests build such a burst (many frames,
// every message type interleaved, exactly the bytes one coalesced flush
// would emit) and replay it through the FrameAssembler under the nastiest
// chunkings.

struct CoalescedBurst {
  std::string stream;                   // the coalesced writev payload
  std::vector<std::size_t> boundaries;  // start offset of every frame
};

CoalescedBurst make_coalesced_burst(Rng& rng, std::size_t frames) {
  CoalescedBurst b;
  for (std::size_t i = 0; i < frames; ++i) {
    b.boundaries.push_back(b.stream.size());
    // Cycle through every message type: a real pass coalesces whatever the
    // protocol queued — PREPAREs, ACKs, client replies — into one flush.
    const MsgType type = kAllMsgTypes[i % kNumMsgTypes];
    random_message(rng, type).encode(&b.stream);
  }
  return b;
}

TEST(CoalescedStreamFuzz, MixedTypeBurstSurvivesOneByteReads) {
  Rng rng(0xC0A1E5CE);
  const CoalescedBurst b = make_coalesced_burst(rng, 48);
  expect_round_trip(
      drain_chunked(b.stream, std::vector<std::size_t>(b.stream.size(), 1)),
      b.stream, "coalesced one-byte");
}

TEST(CoalescedStreamFuzz, TornHeaderAtEveryFrameBoundary) {
  Rng rng(0xBADC0DE);
  const CoalescedBurst b = make_coalesced_burst(rng, 32);
  // Chunk boundaries land one byte past every frame start, so every frame's
  // varint length header is torn across two reads — the worst case a torn
  // writev of a coalesced burst can produce.
  std::vector<std::size_t> chunks;
  std::size_t prev = 0;
  for (std::size_t i = 1; i < b.boundaries.size(); ++i) {
    const std::size_t cut = b.boundaries[i] + 1;  // 1 byte into the header
    chunks.push_back(cut - prev);
    prev = cut;
  }
  chunks.push_back(b.stream.size() - prev);
  expect_round_trip(drain_chunked(b.stream, chunks), b.stream,
                    "torn-header-every-frame");
}

TEST(CoalescedStreamFuzz, RandomSlicesOfLargeBurstsReassemble) {
  Rng rng(0x5EED5);
  for (int iter = 0; iter < 8; ++iter) {
    const CoalescedBurst b =
        make_coalesced_burst(rng, rng.uniform_int(16, 64));
    // Whole burst in one read — the common case when the receiver's read
    // buffer covers the flush.
    expect_round_trip(drain_chunked(b.stream, {b.stream.size()}), b.stream,
                      "coalesced single-read");
    // Random slicing with sizes spanning sub-header to multi-frame, so a
    // single chunk can end mid-header, mid-body, or swallow several frames.
    std::vector<std::size_t> chunks;
    std::size_t covered = 0;
    while (covered < b.stream.size()) {
      const std::size_t c = rng.bernoulli(0.5)
                                ? rng.uniform_int(1, 3)
                                : rng.uniform_int(50, 400);
      chunks.push_back(c);
      covered += c;
    }
    expect_round_trip(drain_chunked(b.stream, chunks), b.stream,
                      "coalesced random-slices");
  }
}

TEST(FrameAssemblerFuzz, PartialTailSurvivesUntilCompleted) {
  Rng rng(99);
  Message m = random_message(rng, MsgType::kSuspendOk);
  const std::string frame = m.encode();
  ASSERT_GT(frame.size(), 4u);

  net::FrameAssembler assembler;
  // Feed all but the last byte: nothing must complete.
  assembler.append(std::string_view(frame).substr(0, frame.size() - 1));
  EXPECT_TRUE(assembler.complete_prefix().empty());
  EXPECT_EQ(assembler.buffered(), frame.size() - 1);
  // The final byte completes exactly one frame.
  assembler.append(std::string_view(frame).substr(frame.size() - 1));
  const std::string_view ready = assembler.complete_prefix();
  EXPECT_EQ(ready.size(), frame.size());
  std::size_t pos = 0;
  const Message decoded = Message::decode_stream_view(ready, &pos);
  std::string reencoded;
  decoded.encode(&reencoded);
  EXPECT_EQ(reencoded, frame);
}

// --- Batched PREPARE frames ------------------------------------------------
//
// With command batching on, a PREPARE's command is a batch envelope: its
// payload is itself an encoded kCmdBatch frame (common/batch.h). The outer
// codec treats that payload as opaque bytes, so the nested frame is only
// decoded at execution time by split_batch(). Two corruption surfaces: the
// socket can tear or flip the outer PREPARE, and a torn WAL tail or disk
// corruption can feed split_batch a damaged envelope. Both must fail stop
// with CodecError — never read out of bounds, never yield a partial batch.

Command random_batch_envelope(Rng& rng, std::size_t n, std::size_t max_payload) {
  std::vector<Command> members;
  for (std::size_t i = 0; i < n; ++i) {
    Command c;
    c.client = rng.uniform_int(1, 100);
    c.seq = rng.uniform_int(1, 1'000'000);
    c.payload = random_bytes(rng, max_payload);
    members.push_back(std::move(c));
  }
  return make_batch(members, static_cast<ReplicaId>(rng.uniform_int(0, 10)),
                    rng.uniform_int(0, 1'000'000));
}

Message batched_prepare(Rng& rng, const Command& envelope) {
  Message m;
  m.type = MsgType::kPrepare;
  m.from = static_cast<ReplicaId>(rng.uniform_int(0, 10));
  m.epoch = rng.uniform_int(0, 100);
  m.ts = Timestamp{rng.uniform_int(1, 1'000'000),
                   static_cast<ReplicaId>(rng.uniform_int(0, 10))};
  m.cmd = envelope;
  return m;
}

// Offset of the member-count varint inside an encoded envelope payload.
// Envelope layout (Message::encode): varint frame length, then the body —
// u8 type, u32 from, varint epoch, varint count, members. make_batch always
// writes epoch 0 and a count < 128, so the count is one byte; the assertion
// in the caller pins that assumption against future layout drift.
std::size_t batch_count_offset(std::string_view payload) {
  std::size_t i = 0;
  while ((static_cast<unsigned char>(payload[i]) & 0x80) != 0) ++i;  // frame len
  ++i;
  i += 1 + 4;  // u8 type + u32 from
  while ((static_cast<unsigned char>(payload[i]) & 0x80) != 0) ++i;  // epoch
  ++i;
  return i;
}

TEST(BatchedPrepareFuzz, EnvelopeSurvivesOuterRoundTrip) {
  Rng rng(0xBA7C4ED);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = rng.uniform_int(1, 16);
    std::vector<Command> members;
    for (std::size_t i = 0; i < n; ++i) {
      Command c;
      c.client = rng.uniform_int(1, 100);
      c.seq = rng.uniform_int(1, 1'000'000);
      c.payload = random_bytes(rng, 80);
      members.push_back(std::move(c));
    }
    const Command env = make_batch(members, 3, iter);
    const std::string stream = batched_prepare(rng, env).encode();
    for (bool view_mode : {false, true}) {
      const std::vector<Message> decoded = drain(stream, view_mode);
      ASSERT_EQ(decoded.size(), 1u);
      // The envelope that comes off the wire splits back into exactly the
      // member commands that went in, in order.
      EXPECT_EQ(split_batch(decoded[0].cmd), members);
    }
  }
}

TEST(BatchedPrepareFuzz, TruncationMidEnvelopeThrows) {
  Rng rng(0x7EA4);
  const Command env = random_batch_envelope(rng, 8, 60);
  const std::string stream = batched_prepare(rng, env).encode();
  // Any mid-frame cut — including every offset inside the nested envelope
  // bytes — must throw CodecError from the outer decoder.
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    for (bool view_mode : {false, true}) {
      std::size_t pos = 0;
      EXPECT_THROW(
          (void)(view_mode
                     ? Message::decode_stream_view(
                           std::string_view(stream).substr(0, cut), &pos)
                     : Message::decode_stream(
                           std::string_view(stream).substr(0, cut), &pos)),
          CodecError)
          << "cut at " << cut;
    }
  }
}

TEST(BatchedPrepareFuzz, TruncatedEnvelopePayloadFailsStopInSplit) {
  // A torn WAL tail can persist a prefix of an envelope payload. Replay
  // hands that prefix to split_batch, which must throw — a partial batch
  // must never execute.
  Rng rng(0x70A2);
  const Command env = random_batch_envelope(rng, 8, 60);
  const std::string_view full = env.payload.view();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Command torn = env;
    torn.payload = std::string(full.substr(0, cut));
    EXPECT_THROW((void)split_batch(torn), CodecError) << "cut at " << cut;
  }
}

TEST(BatchedPrepareFuzz, BitFlippedCommandCountFailsStopOrParses) {
  Rng rng(0xB17F11);
  const Command env = random_batch_envelope(rng, 8, 40);
  const std::string_view payload = env.payload.view();
  const std::size_t off = batch_count_offset(payload);
  ASSERT_EQ(static_cast<unsigned char>(payload[off]), 8u)
      << "count varint not where the layout comment says";
  for (int bit = 0; bit < 8; ++bit) {
    Command corrupt = env;
    std::string raw(payload);
    raw[off] = static_cast<char>(static_cast<unsigned char>(raw[off]) ^
                                 (1u << bit));
    corrupt.payload = std::move(raw);
    try {
      // A flipped count either still parses (count landed on a value the
      // remaining bytes happen to satisfy — then the trailing-byte check or
      // member decode catches the mismatch) or throws. Never OOB; the CI
      // sanitizer job backs that claim.
      (void)split_batch(corrupt);
    } catch (const CodecError&) {
      // The only acceptable failure mode.
    }
  }
}

TEST(BatchedPrepareFuzz, ImplausibleCommandCountThrowsBeforeAllocating) {
  // Two near-empty members, count byte rewritten to 127: far more commands
  // than the remaining bytes could hold. The decoder's plausibility guard
  // must reject it up front instead of reserving storage for a length the
  // attacker chose.
  Rng rng(0x1337);
  const Command env = random_batch_envelope(rng, 2, 0);
  const std::size_t off = batch_count_offset(env.payload.view());
  Command corrupt = env;
  std::string raw(env.payload.view());
  ASSERT_EQ(static_cast<unsigned char>(raw[off]), 2u);
  raw[off] = 0x7f;
  corrupt.payload = std::move(raw);
  EXPECT_THROW((void)split_batch(corrupt), CodecError);
}

TEST(BatchedPrepareFuzz, ZeroCommandCountFailsStop) {
  Rng rng(0x0);
  const Command env = random_batch_envelope(rng, 2, 20);
  const std::size_t off = batch_count_offset(env.payload.view());
  Command corrupt = env;
  std::string raw(env.payload.view());
  raw[off] = 0;
  corrupt.payload = std::move(raw);
  // An envelope with zero members is never produced (singletons ship bare);
  // decoding one is corruption, not a degenerate batch.
  EXPECT_THROW((void)split_batch(corrupt), CodecError);
}

TEST(BatchedPrepareFuzz, OneByteReadsAcrossBatchBoundaries) {
  // A coalesced flush of batched PREPAREs interleaved with acks, sliced one
  // byte per read: every envelope boundary and every member boundary inside
  // each envelope is torn across reads. Reassembly must reproduce each
  // envelope byte-for-byte, and each reassembled envelope must split into
  // its original members.
  Rng rng(0x1B17E);
  std::string stream;
  std::vector<std::vector<Command>> expected_members;
  for (int i = 0; i < 24; ++i) {
    if (i % 3 == 2) {
      // Interleave non-batched traffic, as a real pass would.
      random_message(rng, MsgType::kPrepareOk).encode(&stream);
      continue;
    }
    const std::size_t n = rng.uniform_int(1, 16);
    std::vector<Command> members;
    for (std::size_t j = 0; j < n; ++j) {
      Command c;
      c.client = rng.uniform_int(1, 100);
      c.seq = rng.uniform_int(1, 1'000'000);
      c.payload = random_bytes(rng, 64);
      members.push_back(std::move(c));
    }
    const Command env = make_batch(members, static_cast<ReplicaId>(i % 5),
                                   static_cast<std::uint64_t>(i));
    batched_prepare(rng, env).encode(&stream);
    expected_members.push_back(std::move(members));
  }

  const std::vector<Message> decoded =
      drain_chunked(stream, std::vector<std::size_t>(stream.size(), 1));
  expect_round_trip(decoded, stream, "batched one-byte");
  std::size_t batch_idx = 0;
  for (const Message& m : decoded) {
    if (m.type != MsgType::kPrepare) continue;
    ASSERT_TRUE(is_batch(m.cmd));
    ASSERT_LT(batch_idx, expected_members.size());
    EXPECT_EQ(split_batch(m.cmd), expected_members[batch_idx]);
    ++batch_idx;
  }
  EXPECT_EQ(batch_idx, expected_members.size());
}

INSTANTIATE_TEST_SUITE_P(AllTypes, FrameStreamFuzz,
                         ::testing::ValuesIn(kAllMsgTypes),
                         [](const auto& info) {
                           std::string s = msg_type_name(info.param);
                           for (char& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace crsm
