// Determinism: identical seeds must produce bit-identical simulations —
// the property that makes every figure in EXPERIMENTS.md reproducible and
// failure scenarios replayable.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clockrsm/clock_rsm.h"
#include "test_util.h"
#include "util/rng.h"

namespace crsm {
namespace {

using test::kv_factory;
using test::kv_put;
using test::world_opts;

struct RunResult {
  std::vector<std::vector<ExecRecord>> executions;
  std::uint64_t messages;
  std::uint64_t events;
  std::vector<std::uint64_t> digests;
};

RunResult run_once(std::uint64_t seed, const SimWorld::ProtocolFactory& factory) {
  SimWorldOptions o = world_opts(test::ec2_five(), seed);
  o.clock_skew_ms = 3.0;
  o.clock_drift = 0.001;
  o.jitter_ms = 2.0;
  SimWorld w(o, factory, kv_factory());
  w.start();
  Rng rng(seed + 5);
  std::vector<std::uint64_t> seq(5, 1);
  for (int i = 0; i < 60; ++i) {
    const auto r = static_cast<ReplicaId>(rng.uniform_int(0, 4));
    const Tick at = ms_to_us(rng.uniform(0.0, 800.0));
    const std::uint64_t s = seq[r]++;
    w.sim().after(at, [&w, r, s] {
      w.submit(r, kv_put(make_client_id(r, 0), s, "k" + std::to_string(s % 9),
                         std::to_string(s)));
    });
  }
  w.sim().run_until(ms_to_us(20'000.0));

  RunResult res;
  for (ReplicaId r = 0; r < 5; ++r) {
    res.executions.push_back(w.execution(r));
    res.digests.push_back(w.state_machine(r).state_digest());
  }
  res.messages = w.network().messages_sent();
  res.events = w.sim().executed();
  return res;
}

TEST(Determinism, IdenticalSeedsProduceIdenticalRuns) {
  const auto factory = clock_rsm_factory(5);
  const RunResult a = run_once(1234, factory);
  const RunResult b = run_once(1234, factory);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.digests, b.digests);
  for (ReplicaId r = 0; r < 5; ++r) {
    ASSERT_EQ(a.executions[r].size(), b.executions[r].size()) << "replica " << r;
    for (std::size_t i = 0; i < a.executions[r].size(); ++i) {
      EXPECT_EQ(a.executions[r][i].ts, b.executions[r][i].ts);
      EXPECT_EQ(a.executions[r][i].cmd, b.executions[r][i].cmd);
      EXPECT_EQ(a.executions[r][i].sim_time_us, b.executions[r][i].sim_time_us)
          << "commit times diverged at replica " << r << " index " << i;
    }
  }
}

TEST(Determinism, DifferentSeedsProduceDifferentSchedules) {
  const auto factory = clock_rsm_factory(5);
  const RunResult a = run_once(1, factory);
  const RunResult b = run_once(2, factory);
  // Same workload *logic* but different jitter/skew/think draws: the
  // fine-grained schedules must differ.
  EXPECT_NE(a.events, b.events);
}

TEST(Determinism, HoldsUnderFailureInjection) {
  ClockRsmOptions opt;
  opt.reconfig_enabled = true;
  opt.fd_timeout_us = 400'000;
  opt.fd_check_interval_us = 100'000;
  std::vector<ReplicaId> spec = {0, 1, 2, 3, 4};
  auto factory = [&spec, opt](ProtocolEnv& env, ReplicaId) {
    return std::make_unique<ClockRsmReplica>(env, spec, opt);
  };

  auto run = [&](std::uint64_t seed) {
    SimWorldOptions o = world_opts(LatencyMatrix::uniform(5, 12.0), seed);
    o.clock_skew_ms = 2.0;
    o.jitter_ms = 1.0;
    SimWorld w(o, factory, kv_factory());
    w.start();
    for (int i = 0; i < 10; ++i) {
      w.sim().after(ms_to_us(50.0 * i), [&w, i] {
        w.submit(static_cast<ReplicaId>(i % 5),
                 kv_put(1, i + 1, "k", std::to_string(i)));
      });
    }
    w.sim().after(ms_to_us(600.0), [&w] { w.crash(4); });
    w.sim().run_until(ms_to_us(10'000.0));
    std::vector<std::uint64_t> digests;
    for (ReplicaId r = 0; r < 4; ++r) {
      digests.push_back(w.state_machine(r).state_digest());
    }
    return std::pair(digests, w.network().messages_sent());
  };

  const auto a = run(77);
  const auto b = run(77);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace crsm
