// Message-level unit tests for the Paxos and Mencius baselines.
#include <gtest/gtest.h>

#include "mencius/mencius.h"
#include "mock_env.h"
#include "paxos/multi_paxos.h"

namespace crsm {
namespace {

using test::MockEnv;

const std::vector<ReplicaId> kAll = {0, 1, 2};

Command cmd(std::uint64_t seq) {
  Command c;
  c.client = 3;
  c.seq = seq;
  c.payload = "x";
  return c;
}

// --- Paxos ---

TEST(PaxosUnit, NonLeaderForwardsToLeader) {
  MockEnv env(2);
  PaxosReplica replica(env, kAll, /*leader=*/0, PaxosMode::kClassic);
  replica.submit(cmd(1));
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0].to, 0u);
  EXPECT_EQ(env.sent[0].msg.type, MsgType::kForward);
  EXPECT_EQ(env.sent[0].msg.a, 2u);  // origin rides along for the reply
}

TEST(PaxosUnit, LeaderAssignsConsecutiveSlots) {
  MockEnv env(0);
  PaxosReplica leader(env, kAll, 0, PaxosMode::kClassic);
  leader.submit(cmd(1));
  leader.submit(cmd(2));
  const auto p2a = env.sent_of(MsgType::kPhase2a);
  ASSERT_EQ(p2a.size(), 6u);  // two broadcasts of three
  EXPECT_EQ(p2a[0].msg.slot, 0u);
  EXPECT_EQ(p2a[3].msg.slot, 1u);
}

TEST(PaxosUnit, AcceptorLogsAndAcksLeaderOnlyInClassic) {
  MockEnv env(1);
  PaxosReplica acceptor(env, kAll, 0, PaxosMode::kClassic);
  Message m;
  m.type = MsgType::kPhase2a;
  m.from = 0;
  m.slot = 0;
  m.a = 2;
  m.cmd = cmd(1);
  acceptor.on_message(m);
  EXPECT_EQ(env.log().size(), 1u);
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0].to, 0u);
  EXPECT_EQ(env.sent[0].msg.type, MsgType::kPhase2b);
}

TEST(PaxosUnit, AcceptorBroadcastsAckInBcastMode) {
  MockEnv env(1);
  PaxosReplica acceptor(env, kAll, 0, PaxosMode::kBroadcast);
  Message m;
  m.type = MsgType::kPhase2a;
  m.from = 0;
  m.slot = 0;
  m.a = 2;
  m.cmd = cmd(1);
  acceptor.on_message(m);
  EXPECT_EQ(env.count_sent(MsgType::kPhase2b), 3u);
}

TEST(PaxosUnit, ExecutionWaitsForPayloadWhenAcksOutrunPhase2a) {
  MockEnv env(2);
  PaxosReplica replica(env, kAll, 0, PaxosMode::kBroadcast);
  Message b;
  b.type = MsgType::kPhase2b;
  b.slot = 0;
  b.from = 0;
  replica.on_message(b);
  b.from = 1;
  replica.on_message(b);
  EXPECT_TRUE(env.delivered.empty());  // majority acked but no command yet
  Message a;
  a.type = MsgType::kPhase2a;
  a.from = 0;
  a.slot = 0;
  a.a = 0;
  a.cmd = cmd(1);
  replica.on_message(a);
  ASSERT_EQ(env.delivered.size(), 1u);
  EXPECT_FALSE(env.delivered[0].local_origin);
}

TEST(PaxosUnit, SlotsExecuteInOrderEvenWhenLaterCommitsFirst) {
  MockEnv env(1);
  PaxosReplica replica(env, kAll, 0, PaxosMode::kClassic);
  for (Slot s : {0u, 1u}) {
    Message a;
    a.type = MsgType::kPhase2a;
    a.from = 0;
    a.slot = s;
    a.a = 0;
    a.cmd = cmd(s + 1);
    replica.on_message(a);
  }
  Message c;
  c.type = MsgType::kCommitNotify;
  c.from = 0;
  c.slot = 1;
  replica.on_message(c);
  EXPECT_TRUE(env.delivered.empty());  // slot 0 not yet committed
  c.slot = 0;
  replica.on_message(c);
  ASSERT_EQ(env.delivered.size(), 2u);
  EXPECT_EQ(env.delivered[0].cmd, cmd(1));
  EXPECT_EQ(env.delivered[1].cmd, cmd(2));
}

TEST(PaxosUnit, StaleAcksForExecutedSlotsAreIgnored) {
  MockEnv env(0);
  PaxosReplica leader(env, kAll, 0, PaxosMode::kClassic);
  leader.submit(cmd(1));
  Message a;  // loop back our own 2a
  a.type = MsgType::kPhase2a;
  a.from = 0;
  a.slot = 0;
  a.a = 0;
  a.cmd = cmd(1);
  leader.on_message(a);
  Message b;
  b.type = MsgType::kPhase2b;
  b.slot = 0;
  b.from = 0;
  leader.on_message(b);
  b.from = 1;
  leader.on_message(b);
  ASSERT_EQ(env.delivered.size(), 1u);
  EXPECT_TRUE(env.delivered[0].local_origin);
  b.from = 2;  // straggler ack after execution: no double delivery
  leader.on_message(b);
  EXPECT_EQ(env.delivered.size(), 1u);
}

// --- Mencius ---

TEST(MenciusUnit, ProposesInOwnSlotsOnly) {
  MockEnv env(1);
  MenciusReplica replica(env, kAll);
  replica.submit(cmd(1));
  replica.submit(cmd(2));
  const auto props = env.sent_of(MsgType::kMenPropose);
  ASSERT_EQ(props.size(), 6u);
  EXPECT_EQ(props[0].msg.slot, 1u);  // own slots of replica 1: 1, 4, 7...
  EXPECT_EQ(props[3].msg.slot, 4u);
}

TEST(MenciusUnit, AckCarriesSkipPromise) {
  MockEnv env(2);
  MenciusReplica replica(env, kAll);
  Message p;
  p.type = MsgType::kMenPropose;
  p.from = 1;
  p.slot = 4;  // replica 1's second slot
  p.cmd = cmd(1);
  replica.on_message(p);
  const auto acks = env.sent_of(MsgType::kMenAck);
  ASSERT_EQ(acks.size(), 3u);  // broadcast
  EXPECT_EQ(acks[0].msg.slot, 4u);
  // Replica 2 promises to skip its own slots below 4 (slot 2): its next own
  // slot is now 5.
  EXPECT_EQ(acks[0].msg.a, 5u);
  EXPECT_EQ(replica.stats().skipped, 1u);
}

TEST(MenciusUnit, SkippedSlotsExecuteWithoutPayload) {
  MockEnv env(0);
  MenciusReplica replica(env, kAll);
  // Proposal for slot 2 (owned by replica 2) arrives with slots 0,1 unused.
  Message p;
  p.type = MsgType::kMenPropose;
  p.from = 2;
  p.slot = 2;
  p.cmd = cmd(1);
  replica.on_message(p);
  // Acks from a majority; their skip bounds cover slots 0 and 1.
  Message a;
  a.type = MsgType::kMenAck;
  a.slot = 2;
  a.from = 1;
  a.a = 4;  // replica 1 skips slot 1
  replica.on_message(a);
  a.from = 0;
  a.a = 3;  // we (replica 0) skip slot 0
  replica.on_message(a);
  a.from = 2;
  a.a = 5;
  replica.on_message(a);
  ASSERT_EQ(env.delivered.size(), 1u);
  EXPECT_EQ(env.delivered[0].ts.ticks, 2u);  // slots 0,1 skipped silently
  EXPECT_EQ(replica.executed_upto(), 3u);
}

TEST(MenciusUnit, ProposedSlotNeverSkippedEvenIfBoundPassesIt) {
  MockEnv env(0);
  MenciusReplica replica(env, kAll);
  // Proposal for slot 1 exists (entry recorded) but lacks majority acks.
  Message p;
  p.type = MsgType::kMenPropose;
  p.from = 1;
  p.slot = 1;
  p.cmd = cmd(1);
  replica.on_message(p);
  // A later ack raises replica 1's bound beyond slot 1.
  Message a;
  a.type = MsgType::kMenAck;
  a.slot = 4;
  a.from = 1;
  a.a = 7;
  replica.on_message(a);
  // Slot 0 (ours, unproposed) is not skippable without our own promise, and
  // slot 1 must wait for acks: nothing executes.
  EXPECT_TRUE(env.delivered.empty());
}

TEST(MenciusUnit, OwnerAcksItsOwnProposalViaLoopback) {
  MockEnv env(0);
  MenciusReplica replica(env, kAll);
  replica.submit(cmd(1));
  // Loop back our own proposal: we ack it ourselves.
  Message p = env.sent_of(MsgType::kMenPropose)[0].msg;
  env.clear_sent();
  replica.on_message(p);
  const auto acks = env.sent_of(MsgType::kMenAck);
  ASSERT_EQ(acks.size(), 3u);
  EXPECT_EQ(acks[0].msg.slot, 0u);
}

}  // namespace
}  // namespace crsm
