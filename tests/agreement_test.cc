// Property-based agreement tests: every protocol, several topologies and
// seeds, randomized concurrent workloads. Verifies the core SMR contract —
// all replicas execute the same commands in the same order and reach the
// same state — plus per-origin client-session order (a prerequisite for
// linearizability given commands are ordered after their submission).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>

#include "test_util.h"
#include "util/rng.h"

namespace crsm {
namespace {

using test::expect_agreement;
using test::kv_factory;
using test::kv_put;
using test::world_opts;

enum class Proto { kClockRsm, kClockRsmNoExt, kPaxos, kPaxosBcast, kMencius };

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kClockRsm: return "ClockRsm";
    case Proto::kClockRsmNoExt: return "ClockRsmNoExt";
    case Proto::kPaxos: return "Paxos";
    case Proto::kPaxosBcast: return "PaxosBcast";
    case Proto::kMencius: return "Mencius";
  }
  return "?";
}

enum class Topo { kUniform, kEc2Three, kEc2Five, kSkewedTri };

const char* topo_name(Topo t) {
  switch (t) {
    case Topo::kUniform: return "Uniform5x25ms";
    case Topo::kEc2Three: return "Ec2CaVaIr";
    case Topo::kEc2Five: return "Ec2FiveSites";
    case Topo::kSkewedTri: return "SkewedTriangle";
  }
  return "?";
}

LatencyMatrix topo_matrix(Topo t) {
  switch (t) {
    case Topo::kUniform: return LatencyMatrix::uniform(5, 25.0);
    case Topo::kEc2Three: return test::ec2_three();
    case Topo::kEc2Five: return test::ec2_five();
    case Topo::kSkewedTri: return test::tri(5.0, 90.0, 88.0);
  }
  return LatencyMatrix::uniform(3, 10.0);
}

SimWorld::ProtocolFactory proto_factory(Proto p, std::size_t n) {
  switch (p) {
    case Proto::kClockRsm: return clock_rsm_factory(n, true, 5'000);
    case Proto::kClockRsmNoExt: return clock_rsm_factory(n, false);
    case Proto::kPaxos: return paxos_factory(n, 0, false);
    case Proto::kPaxosBcast: return paxos_factory(n, 0, true);
    case Proto::kMencius: return mencius_factory(n);
  }
  return nullptr;
}

using Param = std::tuple<Proto, Topo, std::uint64_t>;

class AgreementTest : public ::testing::TestWithParam<Param> {};

TEST_P(AgreementTest, RandomConcurrentWorkloadAgreesEverywhere) {
  const auto [proto, topo, seed] = GetParam();
  LatencyMatrix m = topo_matrix(topo);
  const std::size_t n = m.size();

  SimWorldOptions o = world_opts(std::move(m), seed);
  o.clock_skew_ms = 2.0;
  SimWorld w(o, proto_factory(proto, n), kv_factory());
  w.start();

  // Randomized workload: every replica submits commands at random times.
  // Sequence numbers are assigned in submission-time order per replica so
  // the client-session-order check below is meaningful.
  Rng rng(seed * 1000003 + 17);
  struct Sub {
    Tick at;
    ReplicaId r;
    std::string key;
  };
  std::vector<Sub> subs;
  for (int i = 0; i < 120; ++i) {
    subs.push_back(Sub{ms_to_us(rng.uniform(0.0, 1'500.0)),
                       static_cast<ReplicaId>(rng.uniform_int(0, n - 1)),
                       "key-" + std::to_string(rng.uniform_int(0, 20))});
  }
  std::stable_sort(subs.begin(), subs.end(),
                   [](const Sub& a, const Sub& b) { return a.at < b.at; });
  std::size_t total = 0;
  std::vector<std::uint64_t> next_seq(n, 1);
  for (const Sub& s : subs) {
    const std::uint64_t seq = next_seq[s.r]++;
    w.sim().after(s.at, [&w, s, seq] {
      w.submit(s.r, kv_put(make_client_id(s.r, 0), seq, s.key, std::to_string(seq)));
    });
    ++total;
  }
  w.sim().run_until(ms_to_us(30'000.0));

  ASSERT_EQ(w.execution(0).size(), total)
      << proto_name(proto) << " lost commands on " << topo_name(topo);
  expect_agreement(w);

  // Client-session order: commands from the same origin execute in
  // submission (sequence) order.
  std::map<ClientId, std::uint64_t> last_seq;
  for (const ExecRecord& e : w.execution(0)) {
    auto [it, inserted] = last_seq.emplace(e.cmd.client, e.cmd.seq);
    if (!inserted) {
      EXPECT_LT(it->second, e.cmd.seq) << "client session order violated";
      it->second = e.cmd.seq;
    }
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [proto, topo, seed] = info.param;
  return std::string(proto_name(proto)) + "_" + topo_name(topo) + "_s" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, AgreementTest,
    ::testing::Combine(::testing::Values(Proto::kClockRsm, Proto::kClockRsmNoExt,
                                         Proto::kPaxos, Proto::kPaxosBcast,
                                         Proto::kMencius),
                       ::testing::Values(Topo::kUniform, Topo::kEc2Three,
                                         Topo::kEc2Five, Topo::kSkewedTri),
                       ::testing::Values(1u, 2u, 3u)),
    param_name);

// Heavier jitter + drift stress for Clock-RSM specifically: the protocol's
// FIFO/monotonicity reasoning must hold under delivery-time noise.
class ClockRsmStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClockRsmStressTest, JitterAndDriftAndSkew) {
  SimWorldOptions o = world_opts(test::ec2_five(), GetParam());
  o.clock_skew_ms = 25.0;
  o.clock_drift = 0.005;
  o.jitter_ms = 10.0;
  SimWorld w(o, clock_rsm_factory(5), kv_factory());
  w.start();

  Rng rng(GetParam() * 97 + 3);
  std::vector<std::uint64_t> next_seq(5, 1);
  for (int i = 0; i < 200; ++i) {
    const auto r = static_cast<ReplicaId>(rng.uniform_int(0, 4));
    const Tick at = ms_to_us(rng.uniform(0.0, 2'000.0));
    const std::uint64_t seq = next_seq[r]++;
    w.sim().after(at, [&w, r, seq] {
      w.submit(r, kv_put(make_client_id(r, 0), seq, "k" + std::to_string(seq % 7),
                         std::to_string(seq)));
    });
  }
  w.sim().run_until(ms_to_us(60'000.0));
  ASSERT_EQ(w.execution(0).size(), 200u);
  expect_agreement(w);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockRsmStressTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace crsm
