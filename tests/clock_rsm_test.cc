// Protocol tests for Clock-RSM (Algorithms 1 and 2) in the simulator.
#include <gtest/gtest.h>

#include <memory>

#include "clockrsm/clock_rsm.h"
#include "storage/recovery.h"
#include "test_util.h"

namespace crsm {
namespace {

using test::expect_agreement;
using test::expect_timestamp_order;
using test::kv_factory;
using test::kv_put;
using test::world_opts;

SimWorld::ProtocolFactory factory(std::size_t n, bool clocktime = true,
                                  Tick delta_us = 5'000) {
  return clock_rsm_factory(n, clocktime, delta_us);
}

TEST(ClockRsm, SingleCommandCommitsEverywhere) {
  SimWorld w(world_opts(LatencyMatrix::uniform(3, 20.0)), factory(3), kv_factory());
  w.start();
  w.submit(0, kv_put(1, 1, "k", "v"));
  w.sim().run_until(ms_to_us(500.0));
  for (ReplicaId r = 0; r < 3; ++r) {
    ASSERT_EQ(w.execution(r).size(), 1u) << "replica " << r;
    EXPECT_EQ(w.execution(r)[0].cmd.seq, 1u);
  }
  expect_agreement(w);
}

TEST(ClockRsm, RepliesOnlyAtOriginReplica) {
  SimWorld w(world_opts(LatencyMatrix::uniform(3, 20.0)), factory(3), kv_factory());
  int replies = 0;
  ReplicaId reply_replica = kNoReplica;
  w.set_commit_hook([&](ReplicaId r, const Command&, Timestamp, bool local) {
    if (local) {
      ++replies;
      reply_replica = r;
    }
  });
  w.start();
  w.submit(2, kv_put(1, 1, "k", "v"));
  w.sim().run_until(ms_to_us(500.0));
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(reply_replica, 2u);
}

TEST(ClockRsm, ConcurrentCommandsTotallyOrdered) {
  SimWorld w(world_opts(test::ec2_five(), /*seed=*/3), factory(5), kv_factory());
  w.start();
  // Every replica proposes concurrently, repeatedly.
  for (int round = 0; round < 20; ++round) {
    for (ReplicaId r = 0; r < 5; ++r) {
      w.sim().after(ms_to_us(10.0 * round), [&w, r, round] {
        w.submit(r, kv_put(make_client_id(r, 0), round + 1,
                           "k" + std::to_string(r), std::to_string(round)));
      });
    }
  }
  w.sim().run_until(ms_to_us(5'000.0));
  ASSERT_EQ(w.execution(0).size(), 100u);
  expect_agreement(w);
  expect_timestamp_order(w);
}

TEST(ClockRsm, CommitLatencyMatchesMajorityRttOnUniformTopology) {
  // Uniform 20 ms one-way, 5 replicas: lc1 = 2*20, lc2 = 20, lc3 <= 40.
  // A lone command with the CLOCKTIME extension commits in ~max(40, 20+5).
  SimWorld w(world_opts(LatencyMatrix::uniform(5, 20.0)), factory(5), kv_factory());
  Tick committed_at = 0;
  w.set_commit_hook([&](ReplicaId, const Command&, Timestamp, bool local) {
    if (local) committed_at = w.sim().now();
  });
  w.start();
  Tick sent_at = ms_to_us(100.0);
  w.sim().after(sent_at, [&] { w.submit(0, kv_put(1, 1, "k", "v")); });
  w.sim().run_until(ms_to_us(1'000.0));
  ASSERT_GT(committed_at, 0u);
  const double latency_ms = us_to_ms(committed_at - sent_at);
  EXPECT_GE(latency_ms, 40.0);
  EXPECT_LE(latency_ms, 50.0);  // 2*median + slack for the Δ=5ms extension
}

TEST(ClockRsm, StallsWithoutClockTimeUnderLoneCommand) {
  // Without Algorithm 2 and with no other traffic, a lone command cannot
  // become stable until the other replicas' PREPAREOKs carry their clocks:
  // it needs the full 2*max round trip (paper: imbalanced light load,
  // no extension -> 2*max one-way).
  SimWorld w(world_opts(LatencyMatrix::uniform(3, 50.0)),
             factory(3, /*clocktime=*/false), kv_factory());
  Tick committed_at = 0;
  w.set_commit_hook([&](ReplicaId, const Command&, Timestamp, bool local) {
    if (local) committed_at = w.sim().now();
  });
  w.start();
  w.submit(0, kv_put(1, 1, "k", "v"));
  w.sim().run_until(ms_to_us(2'000.0));
  ASSERT_GT(committed_at, 0u);
  EXPECT_NEAR(us_to_ms(committed_at), 100.0, 2.0);  // 2 * max one-way
}

TEST(ClockRsm, ClockTimeExtensionBoundsLoneCommandLatency) {
  // With the extension (delta = 5 ms), the same lone command commits in
  // roughly max(2*median, max + delta) = max(100, 55) = 100?? No: uniform
  // topology, 3 replicas: 2*median = 2*50 = 100 and max = 50. The majority
  // round trip dominates either way; use asymmetric topology instead:
  // d(0,1) = 10, d(0,2) = 100, d(1,2) = 100.
  // Without extension: 2*max = 200. With: max(2*10, 100 + delta) ~ 105.
  SimWorld w(world_opts(test::tri(10.0, 100.0, 100.0)),
             factory(3, /*clocktime=*/true, /*delta_us=*/5'000), kv_factory());
  Tick committed_at = 0;
  w.set_commit_hook([&](ReplicaId, const Command&, Timestamp, bool local) {
    if (local) committed_at = w.sim().now();
  });
  w.start();
  const Tick sent_at = ms_to_us(50.0);
  w.sim().after(sent_at, [&] { w.submit(0, kv_put(1, 1, "k", "v")); });
  w.sim().run_until(ms_to_us(2'000.0));
  ASSERT_GT(committed_at, 0u);
  const double latency_ms = us_to_ms(committed_at - sent_at);
  EXPECT_GE(latency_ms, 100.0);
  EXPECT_LE(latency_ms, 112.0);
}

TEST(ClockRsm, TimestampTiesBrokenByReplicaId) {
  // With zero latency to self and identical clocks, two replicas can assign
  // the same tick; the replica id must break the tie deterministically.
  SimWorld w(world_opts(LatencyMatrix::uniform(3, 15.0)), factory(3), kv_factory());
  w.start();
  // Submit at exactly the same simulated instant at two replicas.
  w.submit(0, kv_put(make_client_id(0, 0), 1, "a", "x"));
  w.submit(1, kv_put(make_client_id(1, 0), 1, "a", "y"));
  w.sim().run_until(ms_to_us(500.0));
  ASSERT_EQ(w.execution(0).size(), 2u);
  expect_agreement(w);
  // Final value identical everywhere (the later timestamp wins).
  const std::string* v0 = static_cast<KvStore&>(w.state_machine(0)).get("a");
  ASSERT_NE(v0, nullptr);
  for (ReplicaId r = 1; r < 3; ++r) {
    const std::string* v = static_cast<KvStore&>(w.state_machine(r)).get("a");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, *v0);
  }
}

TEST(ClockRsm, ToleratesLargeClockSkew) {
  // Correctness must not depend on synchronization precision (Section II-A).
  // 200 ms skew >> 20 ms latency forces the line-8 wait path.
  SimWorldOptions o = world_opts(LatencyMatrix::uniform(3, 20.0), 11);
  o.clock_skew_ms = 200.0;
  SimWorld w(o, factory(3), kv_factory());
  w.start();
  for (int i = 0; i < 10; ++i) {
    for (ReplicaId r = 0; r < 3; ++r) {
      w.sim().after(ms_to_us(30.0 * i), [&w, r, i] {
        w.submit(r, kv_put(make_client_id(r, 0), i + 1, "k", "v"));
      });
    }
  }
  w.sim().run_until(ms_to_us(10'000.0));
  ASSERT_EQ(w.execution(0).size(), 30u);
  expect_agreement(w);
  expect_timestamp_order(w);
}

TEST(ClockRsm, ClockDriftDoesNotBreakAgreement) {
  SimWorldOptions o = world_opts(LatencyMatrix::uniform(5, 20.0), 13);
  o.clock_skew_ms = 5.0;
  o.clock_drift = 0.01;  // 1% oscillator error, far beyond real hardware
  SimWorld w(o, factory(5), kv_factory());
  w.start();
  for (int i = 0; i < 10; ++i) {
    for (ReplicaId r = 0; r < 5; ++r) {
      w.sim().after(ms_to_us(25.0 * i),
                    [&w, r, i] { w.submit(r, kv_put(make_client_id(r, 0), i + 1,
                                                    "k" + std::to_string(i), "v")); });
    }
  }
  w.sim().run_until(ms_to_us(10'000.0));
  ASSERT_EQ(w.execution(0).size(), 50u);
  expect_agreement(w);
}

TEST(ClockRsm, MessageComplexityIsQuadratic) {
  // One command: 1 PREPARE broadcast (N msgs) + N PREPAREOK broadcasts
  // (N^2) => N + N^2 protocol messages, plus CLOCKTIME noise.
  SimWorld w(world_opts(LatencyMatrix::uniform(5, 20.0)),
             factory(5, /*clocktime=*/false), kv_factory());
  w.start();
  w.submit(0, kv_put(1, 1, "k", "v"));
  w.sim().run_until(ms_to_us(500.0));
  EXPECT_EQ(w.network().messages_sent(), 5u + 25u);
}

TEST(ClockRsm, CommitMarksAppendedInTimestampOrder) {
  SimWorld w(world_opts(test::ec2_five(), 17), factory(5), kv_factory());
  w.start();
  for (int i = 0; i < 10; ++i) {
    for (ReplicaId r = 0; r < 5; ++r) {
      w.sim().after(ms_to_us(15.0 * i), [&w, r, i] {
        w.submit(r, kv_put(make_client_id(r, 0), i + 1, "x", "y"));
      });
    }
  }
  w.sim().run_until(ms_to_us(5'000.0));
  for (ReplicaId r = 0; r < 5; ++r) {
    Timestamp prev = kZeroTimestamp;
    for (const LogRecord& rec : w.log(r).records()) {
      if (rec.type != LogType::kCommit) continue;
      EXPECT_LT(prev, rec.ts) << "commit marks out of order at replica " << r;
      prev = rec.ts;
    }
  }
}

TEST(ClockRsm, PrepareLoggedBeforeCommitMark) {
  SimWorld w(world_opts(LatencyMatrix::uniform(3, 10.0)), factory(3), kv_factory());
  w.start();
  for (int i = 0; i < 5; ++i) w.submit(0, kv_put(1, i + 1, "k", "v"));
  w.sim().run_until(ms_to_us(1'000.0));
  for (ReplicaId r = 0; r < 3; ++r) {
    // replay_log throws if any COMMIT mark lacks a preceding PREPARE.
    EXPECT_NO_THROW((void)replay_log(w.log(r).records()));
  }
}

TEST(ClockRsm, RestartReplaysLogDeterministically) {
  SimWorld w(world_opts(LatencyMatrix::uniform(3, 10.0)), factory(3), kv_factory());
  w.start();
  for (int i = 0; i < 8; ++i) w.submit(0, kv_put(1, i + 1, "k" + std::to_string(i), "v"));
  w.sim().run_until(ms_to_us(1'000.0));
  ASSERT_EQ(w.execution(2).size(), 8u);
  const auto digest_before = w.state_machine(2).state_digest();

  w.crash(2);
  w.sim().run_until(ms_to_us(1'100.0));
  w.restart(2);
  w.sim().run_until(ms_to_us(1'200.0));

  EXPECT_EQ(w.execution(2).size(), 8u);  // rebuilt by replay
  EXPECT_EQ(w.state_machine(2).state_digest(), digest_before);
  expect_agreement(w);
}

TEST(ClockRsm, SurvivingMajorityKeepsCommittingAfterSilentCrash) {
  // With Spec = 5 and one crashed replica, commits continue: majority
  // replication needs 3 of 5 and stable order only consults Config... which
  // still contains the crashed replica, so progress requires removing it
  // (reconfiguration, tested separately). Here we verify the protocol does
  // NOT commit while a Config member is silent — the documented stall that
  // motivates Section V.
  SimWorld w(world_opts(LatencyMatrix::uniform(5, 10.0)), factory(5), kv_factory());
  w.start();
  w.sim().run_until(ms_to_us(100.0));
  w.crash(4);
  std::size_t committed_before = w.execution(0).size();
  w.submit(0, kv_put(1, 1, "k", "v"));
  w.sim().run_until(ms_to_us(2'000.0));
  EXPECT_EQ(w.execution(0).size(), committed_before)
      << "must stall while a Config member is silent";
}

TEST(ClockRsm, LoneCommandStatsCountWaits) {
  SimWorldOptions o = world_opts(LatencyMatrix::uniform(3, 5.0), 23);
  o.clock_skew_ms = 100.0;  // skew >> latency forces line-8 waits
  SimWorld w(o, factory(3), kv_factory());
  w.start();
  // Submit from every replica: whichever clock runs ahead, some receiver's
  // clock is behind the sender's timestamp by more than the 5 ms latency.
  for (ReplicaId r = 0; r < 3; ++r) {
    w.submit(r, kv_put(make_client_id(r, 0), 1, "k", "v"));
  }
  w.sim().run_until(ms_to_us(3'000.0));
  std::uint64_t waits = 0;
  for (ReplicaId r = 0; r < 3; ++r) {
    waits += static_cast<ClockRsmReplica&>(w.protocol(r)).stats().clock_waits;
  }
  EXPECT_GT(waits, 0u);
  ASSERT_EQ(w.execution(0).size(), 3u);
}

}  // namespace
}  // namespace crsm
