// Tests for checkpointing (Section V-B): snapshot, log truncation, recovery
// from checkpoint + log suffix, and integration with the simulated cluster.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "clockrsm/clock_rsm.h"
#include "kv/kv_store.h"
#include "storage/checkpoint.h"
#include "test_util.h"

namespace crsm {
namespace {

using test::expect_agreement;
using test::kv_factory;
using test::kv_put;
using test::world_opts;

KvStore store_with(const std::vector<std::pair<std::string, std::string>>& kvs) {
  KvStore kv;
  std::uint64_t seq = 0;
  for (const auto& [k, v] : kvs) {
    kv.apply(kv_put(1, ++seq, k, v));
  }
  return kv;
}

TEST(KvSnapshot, RoundTripPreservesStateAndDigest) {
  KvStore a = store_with({{"x", "1"}, {"y", "2"}, {"z", "3"}});
  KvStore b;
  b.restore(a.snapshot());
  EXPECT_EQ(b.state_digest(), a.state_digest());
  ASSERT_NE(b.get("y"), nullptr);
  EXPECT_EQ(*b.get("y"), "2");
  EXPECT_EQ(b.size(), 3u);
}

TEST(KvSnapshot, DeterministicAcrossInsertionOrders) {
  KvStore a = store_with({{"x", "1"}, {"y", "2"}});
  KvStore b = store_with({{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(KvSnapshot, RestoreReplacesExistingState) {
  KvStore a = store_with({{"only", "this"}});
  KvStore b = store_with({{"stale", "entry"}, {"other", "junk"}});
  b.restore(a.snapshot());
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.get("stale"), nullptr);
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  const KvStore kv = store_with({{"a", "b"}});
  const Checkpoint cp = take_checkpoint(kv, Timestamp{99, 2}, 7);
  const Checkpoint rt = Checkpoint::decode(cp.encode());
  EXPECT_EQ(rt, cp);
  EXPECT_EQ(rt.last_applied, (Timestamp{99, 2}));
  EXPECT_EQ(rt.epoch, 7u);
}

TEST(Checkpoint, TruncatesCoveredPrefix) {
  MemLog log;
  log.append(LogRecord::prepare(Timestamp{1, 0}, kv_put(1, 1, "a", "1")));
  log.append(LogRecord::commit(Timestamp{1, 0}));
  log.append(LogRecord::prepare(Timestamp{2, 1}, kv_put(1, 2, "b", "2")));
  log.append(LogRecord::commit(Timestamp{2, 1}));
  log.append(LogRecord::prepare(Timestamp{3, 0}, kv_put(1, 3, "c", "3")));

  const KvStore kv = store_with({{"a", "1"}, {"b", "2"}});
  const Checkpoint cp = take_checkpoint(kv, Timestamp{2, 1}, 0);
  truncate_covered_prefix(log, cp);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].ts, (Timestamp{3, 0}));
}

TEST(Checkpoint, RecoveryAppliesSuffixAboveFloor) {
  // Checkpoint covers ts <= (2,1); log holds the suffix.
  const KvStore base = store_with({{"a", "1"}, {"b", "2"}});
  const Checkpoint cp = take_checkpoint(base, Timestamp{2, 1}, 0);

  MemLog log;
  log.append(LogRecord::prepare(Timestamp{3, 0}, kv_put(1, 3, "c", "3")));
  log.append(LogRecord::commit(Timestamp{3, 0}));

  KvStore recovered;
  const Timestamp last = recover_with_checkpoint(cp, log, recovered);
  EXPECT_EQ(last, (Timestamp{3, 0}));
  EXPECT_EQ(recovered.size(), 3u);
  ASSERT_NE(recovered.get("c"), nullptr);
  EXPECT_EQ(*recovered.get("c"), "3");
}

TEST(Checkpoint, RecoveryWithoutCheckpointReplaysEverything) {
  MemLog log;
  log.append(LogRecord::prepare(Timestamp{1, 0}, kv_put(1, 1, "a", "1")));
  log.append(LogRecord::commit(Timestamp{1, 0}));
  KvStore recovered;
  const Timestamp last = recover_with_checkpoint(std::nullopt, log, recovered);
  EXPECT_EQ(last, (Timestamp{1, 0}));
  EXPECT_EQ(recovered.size(), 1u);
}

TEST(Checkpoint, FilePersistenceRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("crsm_cp_" + std::to_string(::getpid()));
  const KvStore kv = store_with({{"k", "v"}});
  const Checkpoint cp = take_checkpoint(kv, Timestamp{42, 1}, 3);
  write_checkpoint_file(path.string(), cp);
  const auto loaded = read_checkpoint_file(path.string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, cp);
  std::filesystem::remove(path);
  EXPECT_FALSE(read_checkpoint_file(path.string()).has_value());
}

// --- integration with the simulated cluster ---

SimWorld::ProtocolFactory crsm_factory(std::size_t n) {
  return clock_rsm_factory(n);
}

TEST(CheckpointIntegration, RestartFromCheckpointMatchesFullReplay) {
  SimWorld w(world_opts(LatencyMatrix::uniform(3, 10.0)), crsm_factory(3),
             kv_factory());
  w.start();
  for (int i = 0; i < 12; ++i) {
    w.submit(0, kv_put(1, i + 1, "k" + std::to_string(i % 4), std::to_string(i)));
  }
  w.sim().run_until(ms_to_us(1'000.0));
  ASSERT_EQ(w.execution(2).size(), 12u);
  const auto digest = w.state_machine(2).state_digest();

  auto& p2 = static_cast<ClockRsmReplica&>(w.protocol(2));
  w.take_checkpoint(2, p2.last_commit_ts(), p2.epoch());
  EXPECT_TRUE(w.has_checkpoint(2));
  EXPECT_TRUE(w.log(2).records().empty());  // fully covered

  w.crash(2);
  w.restart(2);
  w.sim().run_until(ms_to_us(1'100.0));
  // State restored from the snapshot, no replayed deliveries needed.
  EXPECT_EQ(w.state_machine(2).state_digest(), digest);
  EXPECT_TRUE(w.execution(2).empty());

  // The recovered replica keeps participating: new commands still commit.
  w.submit(2, kv_put(2, 1, "after", "cp"));
  w.sim().run_until(ms_to_us(2'000.0));
  EXPECT_EQ(w.execution(2).size(), 1u);
  EXPECT_EQ(w.execution(0).size(), 13u);
  EXPECT_EQ(w.state_machine(2).state_digest(), w.state_machine(0).state_digest());
}

TEST(CheckpointIntegration, CheckpointPlusLogSuffixRecovers) {
  SimWorld w(world_opts(LatencyMatrix::uniform(3, 10.0)), crsm_factory(3),
             kv_factory());
  w.start();
  for (int i = 0; i < 6; ++i) w.submit(0, kv_put(1, i + 1, "a", std::to_string(i)));
  w.sim().run_until(ms_to_us(500.0));
  auto& p2 = static_cast<ClockRsmReplica&>(w.protocol(2));
  w.take_checkpoint(2, p2.last_commit_ts(), p2.epoch());

  // More commands after the checkpoint land in the log suffix.
  for (int i = 6; i < 10; ++i) w.submit(0, kv_put(1, i + 1, "a", std::to_string(i)));
  w.sim().run_until(ms_to_us(1'000.0));
  ASSERT_EQ(w.execution(0).size(), 10u);
  const auto digest = w.state_machine(0).state_digest();

  w.crash(2);
  w.restart(2);
  w.sim().run_until(ms_to_us(1'200.0));
  EXPECT_EQ(w.state_machine(2).state_digest(), digest);
  EXPECT_EQ(w.execution(2).size(), 4u);  // only the suffix is re-delivered
}

TEST(CheckpointIntegration, LogPrefixActuallyShrinks) {
  SimWorld w(world_opts(LatencyMatrix::uniform(3, 10.0)), crsm_factory(3),
             kv_factory());
  w.start();
  for (int i = 0; i < 20; ++i) w.submit(0, kv_put(1, i + 1, "k", "v"));
  w.sim().run_until(ms_to_us(1'500.0));
  const std::size_t before = w.log(1).size();
  auto& p1 = static_cast<ClockRsmReplica&>(w.protocol(1));
  w.take_checkpoint(1, p1.last_commit_ts(), p1.epoch());
  EXPECT_LT(w.log(1).size(), before);
}

}  // namespace
}  // namespace crsm
