// Cross-validation: the discrete-event simulator against the closed-form
// latency models of Section IV, across EC2 and randomized topologies.
//
// For the leader-based protocols the formulas are exact, so simulated means
// must match tightly. For Clock-RSM the balanced formula is a worst-case
// over concurrent proposals, so the simulated mean must fall between the
// imbalanced (lower) and balanced (upper) predictions. For Mencius-bcast
// the paper gives the range [q, q + max one-way].
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/latency_model.h"
#include "test_util.h"
#include "util/rng.h"

namespace crsm {
namespace {

LatencyMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  LatencyMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set_oneway_ms(i, j, rng.uniform(10.0, 150.0));
    }
  }
  return m;
}

struct TopoParam {
  std::string name;
  LatencyMatrix matrix;
};

std::vector<TopoParam> topologies() {
  return {
      {"Ec2Three", test::ec2_three()},
      {"Ec2Five", test::ec2_five()},
      {"Uniform5", LatencyMatrix::uniform(5, 30.0)},
      {"Random5a", random_matrix(5, 101)},
      {"Random5b", random_matrix(5, 202)},
      {"Random7", random_matrix(7, 303)},
  };
}

class ModelVsSimTest : public ::testing::TestWithParam<TopoParam> {
 protected:
  LatencyExperimentOptions options() const {
    LatencyExperimentOptions o;
    o.matrix = GetParam().matrix;
    o.workload.clients_per_replica = 20;
    o.duration_s = 8.0;
    o.warmup_s = 1.5;
    o.clock_skew_ms = 1.0;
    o.seed = 9;
    return o;
  }
};

TEST_P(ModelVsSimTest, PaxosClassicMatchesFormula) {
  const LatencyExperimentOptions opt = options();
  LatencyModel model(opt.matrix);
  const std::size_t leader = model.best_leader_paxos();
  const auto r = run_latency_experiment(
      opt, paxos_factory(opt.matrix.size(), static_cast<ReplicaId>(leader), false));
  for (std::size_t i = 0; i < opt.matrix.size(); ++i) {
    ASSERT_FALSE(r.per_replica[i].empty()) << "replica " << i;
    EXPECT_NEAR(r.per_replica[i].mean(), model.paxos(leader, i), 6.0)
        << "replica " << i;
  }
}

TEST_P(ModelVsSimTest, PaxosBcastMatchesPreciseFormula) {
  const LatencyExperimentOptions opt = options();
  LatencyModel model(opt.matrix);
  const std::size_t leader = model.best_leader_paxos_bcast();
  const auto r = run_latency_experiment(
      opt, paxos_factory(opt.matrix.size(), static_cast<ReplicaId>(leader), true));
  for (std::size_t i = 0; i < opt.matrix.size(); ++i) {
    ASSERT_FALSE(r.per_replica[i].empty()) << "replica " << i;
    EXPECT_NEAR(r.per_replica[i].mean(), model.paxos_bcast_precise(leader, i), 6.0)
        << "replica " << i;
  }
}

TEST_P(ModelVsSimTest, ClockRsmBetweenImbalancedAndBalancedBounds) {
  const LatencyExperimentOptions opt = options();
  LatencyModel model(opt.matrix);
  const auto r =
      run_latency_experiment(opt, clock_rsm_factory(opt.matrix.size()));
  for (std::size_t i = 0; i < opt.matrix.size(); ++i) {
    ASSERT_FALSE(r.per_replica[i].empty()) << "replica " << i;
    const double mean = r.per_replica[i].mean();
    EXPECT_GE(mean, model.clock_rsm_imbalanced(i) - 4.0) << "replica " << i;
    EXPECT_LE(mean, model.clock_rsm_balanced(i) + 10.0) << "replica " << i;
  }
}

TEST_P(ModelVsSimTest, MenciusWithinDelayedCommitRange) {
  const LatencyExperimentOptions opt = options();
  LatencyModel model(opt.matrix);
  const auto r = run_latency_experiment(opt, mencius_factory(opt.matrix.size()));
  for (std::size_t i = 0; i < opt.matrix.size(); ++i) {
    ASSERT_FALSE(r.per_replica[i].empty()) << "replica " << i;
    const auto [lo, hi] = model.mencius_bcast_balanced(i);
    const double mean = r.per_replica[i].mean();
    EXPECT_GE(mean, lo - 6.0) << "replica " << i;
    EXPECT_LE(mean, hi + 10.0) << "replica " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, ModelVsSimTest,
                         ::testing::ValuesIn(topologies()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace crsm
