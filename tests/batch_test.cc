// Protocol-level command batching: the batch envelope (common/batch.h) and
// the real runtime's cut rules (runtime/node.cc). A NodeRuntime with
// --max-batch-cmds > 1 accumulates write commands arriving within one
// event-loop pass and replicates them as one envelope command — one
// PREPARE, one timestamp/ack round, one WAL record — then splits the
// envelope at execution and fans replies out per member. These tests pin
// the cut rules (count cap, byte cap, pass-end flush, singleton fallback),
// per-command reply ordering inside a batch, the cmds-per-PREPARE
// accounting, and WAL replay of envelope records across a kill -9
// mid-batch. Cluster cases run under both io backends.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "clockrsm/clock_rsm.h"
#include "common/batch.h"
#include "common/codec.h"
#include "kv/kv_store.h"
#include "runtime/tcp_cluster.h"
#include "storage/command_log.h"
#include "storage/recovery.h"
#include "test_util.h"
#include "workload/workload.h"

namespace crsm {
namespace {

using net::IoBackend;
using test::kv_factory;
using test::kv_put;

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline =
                               std::chrono::milliseconds(15000)) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// --- the envelope itself ---------------------------------------------------

std::vector<Command> some_members(std::size_t n) {
  std::vector<Command> members;
  for (std::size_t i = 0; i < n; ++i) {
    members.push_back(kv_put(make_client_id(0, i), i + 1,
                             "k" + std::to_string(i), std::to_string(i)));
  }
  return members;
}

TEST(BatchEnvelope, SplitReturnsMembersInOrder) {
  const std::vector<Command> members = some_members(5);
  const Command env = make_batch(members, /*origin=*/2, /*counter=*/7);
  EXPECT_TRUE(is_batch(env));
  EXPECT_EQ(env.client, kBatchClient);
  EXPECT_EQ(split_batch(env), members);
}

TEST(BatchEnvelope, SeqPacksOriginAndCounter) {
  const Command a = make_batch(some_members(1), 3, 41);
  const Command b = make_batch(some_members(1), 3, 42);
  const Command c = make_batch(some_members(1), 4, 41);
  // Distinct (origin, counter) pairs yield distinct envelope identities, so
  // concurrent origins can never mint colliding envelopes.
  EXPECT_NE(a.seq, b.seq);
  EXPECT_NE(a.seq, c.seq);
  EXPECT_EQ(a.seq >> 40, 3u);
  EXPECT_EQ(c.seq >> 40, 4u);
}

TEST(BatchEnvelope, MemberCommandsAreNeverBatches) {
  // Real client ids come from make_client_id and can't reach the sentinel.
  for (const Command& m : some_members(4)) EXPECT_FALSE(is_batch(m));
}

TEST(BatchEnvelope, SplitRejectsNonEnvelopePayload) {
  Command fake;
  fake.client = kBatchClient;  // sentinel, but payload is not an envelope
  fake.seq = 1;
  fake.payload = std::string("not a frame");
  EXPECT_THROW((void)split_batch(fake), CodecError);
}

TEST(BatchEnvelope, SplitRejectsWrongMessageType) {
  // A well-formed frame of the wrong type must not split: only kCmdBatch
  // payloads are envelopes.
  Message m;
  m.type = MsgType::kClockTime;
  m.from = 0;
  Command fake;
  fake.client = kBatchClient;
  fake.seq = 1;
  fake.payload = m.encode();
  EXPECT_THROW((void)split_batch(fake), CodecError);
}

// --- cut rules on the real runtime -----------------------------------------

class BatchClusterTest : public ::testing::TestWithParam<IoBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == IoBackend::kUring && !net::uring_available()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }
  TcpClusterOptions opts(std::size_t max_cmds, std::size_t max_bytes) const {
    TcpClusterOptions o;
    o.io_backend = GetParam();
    o.max_batch_cmds = max_cmds;
    o.max_batch_bytes = max_bytes;
    return o;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, BatchClusterTest,
    ::testing::Values(IoBackend::kEpoll, IoBackend::kUring),
    [](const ::testing::TestParamInfo<IoBackend>& info) {
      return std::string(net::io_backend_name(info.param));
    });

// A lone command must not wait for a full batch: the pass-end flush ships
// it immediately, as a bare command (submissions == cmds == 1, so no
// envelope overhead was paid).
TEST_P(BatchClusterTest, PassEndFlushShipsLoneCommandPromptly) {
  TcpCluster cluster(3, clock_rsm_factory(3), kv_factory(),
                     opts(/*max_cmds=*/16, /*max_bytes=*/256 * 1024));
  std::atomic<int> replies{0};
  cluster.set_reply_hook([&](ReplicaId, const Command&) { ++replies; });
  cluster.start();
  const auto t0 = std::chrono::steady_clock::now();
  cluster.submit(0, kv_put(make_client_id(0, 0), 1, "k", "v"));
  ASSERT_TRUE(eventually([&] { return replies.load() == 1; }));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Generous bound: the flush is per event-loop pass, not per timer, so a
  // singleton commits in network round-trip time, never "when 16 arrive".
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  const NodeRuntime::BatchStats bs = cluster.batch_stats();
  EXPECT_EQ(bs.cmds, 1u);
  EXPECT_EQ(bs.submissions, 1u);
  cluster.stop();
}

// Under a burst, the count cap amortizes: strictly fewer protocol
// submissions than commands (cmds/PREPARE > 1), everything still commits
// everywhere and replies fan out per member.
TEST_P(BatchClusterTest, BurstAmortizesSubmissionsUnderCountCap) {
  TcpCluster cluster(3, clock_rsm_factory(3), kv_factory(),
                     opts(/*max_cmds=*/8, /*max_bytes=*/256 * 1024));
  std::atomic<int> replies{0};
  cluster.set_reply_hook([&](ReplicaId, const Command&) { ++replies; });
  cluster.start();
  // Keep pouring bursts until at least one pass batched two commands into
  // one submission: scheduling decides how many posts a pass picks up, so
  // a single fixed-size burst cannot deterministically assert batching.
  int submitted = 0;
  ASSERT_TRUE(eventually([&] {
    for (int i = 0; i < 50; ++i) {
      ++submitted;
      cluster.submit(0, kv_put(make_client_id(0, 0), submitted, "k",
                               std::to_string(submitted)));
    }
    const NodeRuntime::BatchStats bs = cluster.batch_stats();
    return bs.submissions > 0 && bs.submissions < bs.cmds;
  }));
  ASSERT_TRUE(eventually([&] { return replies.load() == submitted; }));
  ASSERT_TRUE(eventually([&] {
    const auto n = static_cast<std::uint64_t>(submitted);
    return cluster.executed(0) == n && cluster.executed(1) == n &&
           cluster.executed(2) == n;
  }));
  const NodeRuntime::BatchStats bs = cluster.batch_stats();
  cluster.stop();
  EXPECT_EQ(bs.cmds, static_cast<std::uint64_t>(submitted));
  EXPECT_LT(bs.submissions, bs.cmds) << "no pass ever cut a multi-command batch";
}

// The byte cap cuts before overflow: with a cap smaller than one payload,
// every cut is a singleton and ships bare — submissions == cmds exactly,
// deterministically, no matter how the loop coalesces the burst.
TEST_P(BatchClusterTest, ByteCapForcesSingletonCuts) {
  TcpCluster cluster(3, clock_rsm_factory(3), kv_factory(),
                     opts(/*max_cmds=*/16, /*max_bytes=*/64));
  std::atomic<int> replies{0};
  cluster.set_reply_hook([&](ReplicaId, const Command&) { ++replies; });
  cluster.start();
  constexpr int kOps = 30;
  const std::string big(200, 'x');  // each payload alone exceeds the cap
  for (int i = 1; i <= kOps; ++i) {
    cluster.submit(0, kv_put(make_client_id(0, 0), i, "k", big));
  }
  ASSERT_TRUE(eventually([&] { return replies.load() == kOps; }));
  const NodeRuntime::BatchStats bs = cluster.batch_stats();
  cluster.stop();
  EXPECT_EQ(bs.cmds, static_cast<std::uint64_t>(kOps));
  // An oversized command still ships (alone); the cap bounds envelope size,
  // it never wedges or drops commands.
  EXPECT_EQ(bs.submissions, static_cast<std::uint64_t>(kOps));
}

// Replies inside and across batches preserve per-client submission order:
// members execute in envelope order, envelopes commit in timestamp order,
// and both fan replies out through the same ordered path.
TEST_P(BatchClusterTest, RepliesPreservePerClientOrderAcrossBatches) {
  TcpCluster cluster(3, clock_rsm_factory(3), kv_factory(),
                     opts(/*max_cmds=*/8, /*max_bytes=*/256 * 1024));
  std::mutex mu;
  std::vector<std::uint64_t> reply_seqs;
  std::vector<std::vector<std::uint64_t>> exec_seqs(3);
  cluster.set_reply_hook([&](ReplicaId, const Command& cmd) {
    std::lock_guard<std::mutex> lk(mu);
    reply_seqs.push_back(cmd.seq);
  });
  cluster.set_commit_hook([&](ReplicaId r, const Command& cmd, Timestamp, bool) {
    std::lock_guard<std::mutex> lk(mu);
    exec_seqs[r].push_back(cmd.seq);
  });
  cluster.start();
  constexpr int kOps = 120;
  for (int i = 1; i <= kOps; ++i) {
    cluster.submit(0, kv_put(make_client_id(0, 0), i, "k", std::to_string(i)));
  }
  ASSERT_TRUE(eventually([&] {
    std::lock_guard<std::mutex> lk(mu);
    return reply_seqs.size() == kOps && exec_seqs[1].size() == kOps;
  }));
  cluster.stop();
  std::lock_guard<std::mutex> lk(mu);
  for (std::size_t i = 1; i < reply_seqs.size(); ++i) {
    ASSERT_LT(reply_seqs[i - 1], reply_seqs[i])
        << "reply order broke at index " << i;
  }
  // The commit hook sees member commands (never envelopes), in the same
  // per-client order at every replica.
  for (ReplicaId r = 0; r < 3; ++r) {
    ASSERT_EQ(exec_seqs[r].size(), static_cast<std::size_t>(kOps));
    for (std::size_t i = 1; i < exec_seqs[r].size(); ++i) {
      ASSERT_LT(exec_seqs[r][i - 1], exec_seqs[r][i])
          << "replica " << r << " executed out of order at " << i;
    }
  }
}

// --- WAL replay and catch-up of envelope records ---------------------------

class DurableBatchTest : public ::testing::TestWithParam<IoBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == IoBackend::kUring && !net::uring_available()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
    std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = std::filesystem::temp_directory_path() /
           ("crsm_batch_test_" + std::to_string(::getpid()) + "_" + name);
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  TcpClusterOptions opts() const {
    TcpClusterOptions o;
    o.io_backend = GetParam();
    o.log_dir = dir_.string();
    o.max_batch_cmds = 16;
    return o;
  }
  TcpCluster::ProtocolFactory factory() const {
    ClockRsmOptions o;
    o.catchup_on_recovery = true;
    o.catchup_interval_us = 30'000;
    return clock_rsm_factory(3, o);
  }

  std::filesystem::path dir_;
};

INSTANTIATE_TEST_SUITE_P(
    Backends, DurableBatchTest,
    ::testing::Values(IoBackend::kEpoll, IoBackend::kUring),
    [](const ::testing::TestParamInfo<IoBackend>& info) {
      return std::string(net::io_backend_name(info.param));
    });

// kill -9 mid-batch: the victim's WAL may end in a torn tail, but replay
// must parse cleanly, every committed record that is an envelope must split
// into its members (a torn envelope must never reach `committed`), and the
// restarted replica must catch up to the same state.
TEST_P(DurableBatchTest, KillMidBatchWalReplaysAndCatchesUp) {
  TcpCluster cluster(3, factory(), kv_factory(), opts());
  std::atomic<int> replies{0};
  cluster.set_reply_hook([&](ReplicaId, const Command&) { ++replies; });
  cluster.start();

  // Open-loop burst at two origins so the victim is mid-pipeline — batches
  // in flight, WAL appends racing the kill — when it dies.
  std::atomic<bool> stop_load{false};
  std::atomic<int> submitted{0};
  std::vector<std::thread> load;
  for (ReplicaId r = 0; r < 2; ++r) {
    load.emplace_back([&, r] {
      int seq = 0;
      while (!stop_load.load()) {
        cluster.submit(r, kv_put(make_client_id(r, 0), ++seq, "k" + std::to_string(r),
                                 std::to_string(seq)));
        ++submitted;
        if (seq % 64 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  ASSERT_TRUE(eventually([&] { return cluster.executed(2) >= 100; }));
  cluster.kill(2);  // mid-burst, no goodbye

  // The dead node's WAL parses and replays cleanly despite the abrupt end.
  {
    FileLog wal((dir_ / "node-2" / "wal.log").string());
    const ReplayResult rr = replay_log(wal.records());
    EXPECT_FALSE(rr.committed.empty());
    std::size_t member_cmds = 0;
    for (std::size_t i = 0; i < rr.committed.size(); ++i) {
      if (i > 0) EXPECT_LT(rr.committed[i - 1].ts, rr.committed[i].ts);
      if (is_batch(rr.committed[i].cmd)) {
        // A committed envelope is whole: split never throws, members intact.
        const std::vector<Command> members = split_batch(rr.committed[i].cmd);
        EXPECT_GE(members.size(), 2u);
        member_cmds += members.size();
      } else {
        ++member_cmds;
      }
    }
    // The victim had executed >= 100 member commands before the kill and
    // commit marks cover what executed.
    EXPECT_GE(member_cmds, 100u);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cluster.restart(2);
  stop_load = true;
  for (auto& t : load) t.join();

  // Every acknowledged command commits everywhere, the restarted replica
  // included, and states converge.
  ASSERT_TRUE(eventually([&] { return replies.load() >= submitted.load(); }));
  ASSERT_TRUE(eventually([&] {
    const std::uint64_t n = cluster.executed(0);
    return n > 0 && cluster.executed(1) == n && cluster.executed(2) == n;
  })) << "executed: " << cluster.executed(0) << "/" << cluster.executed(1)
      << "/" << cluster.executed(2);
  ASSERT_TRUE(eventually([&] {
    return cluster.node(0).state_digest() == cluster.node(2).state_digest() &&
           cluster.node(1).state_digest() == cluster.node(2).state_digest();
  }));
  cluster.stop();
}

// Batched commands survive a whole-cluster power cycle: every replica's WAL
// holds envelope records, every replica replays them (splitting at apply)
// and digests agree afterwards.
TEST_P(DurableBatchTest, WholeClusterRestartReplaysEnvelopeRecords) {
  TcpCluster cluster(3, factory(), kv_factory(), opts());
  std::atomic<int> replies{0};
  cluster.set_reply_hook([&](ReplicaId, const Command&) { ++replies; });
  cluster.start();
  constexpr int kOps = 60;
  for (int i = 1; i <= kOps; ++i) {
    cluster.submit(0, kv_put(make_client_id(0, 0), i, "k" + std::to_string(i % 7),
                             std::to_string(i)));
  }
  ASSERT_TRUE(eventually([&] {
    return replies.load() == kOps && cluster.executed(0) == kOps &&
           cluster.executed(1) == kOps && cluster.executed(2) == kOps;
  }));
  const std::uint64_t digest_before = cluster.node(0).state_digest();

  for (ReplicaId r = 0; r < 3; ++r) cluster.kill(r);
  for (ReplicaId r = 0; r < 3; ++r) cluster.restart(r);

  // Recovery replays the envelope WAL records through the same split path;
  // the rebuilt state must equal the pre-crash state at every replica.
  ASSERT_TRUE(eventually([&] {
    for (ReplicaId r = 0; r < 3; ++r) {
      if (cluster.node(r).state_digest() != digest_before) return false;
    }
    return true;
  }));
  cluster.stop();
}

}  // namespace
}  // namespace crsm
